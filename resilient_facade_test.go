package llpmst

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestResilientFacade exercises the public resilient surface: a shared
// runner answering verified solves, the one-shot RunResilient helper, and
// the typed overload rejection.
func TestResilientFacade(t *testing.T) {
	g, err := NewGraph(6, []Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 3},
		{U: 3, V: 4, W: 4}, {U: 4, V: 5, W: 5}, {U: 5, V: 0, W: 6},
		{U: 0, V: 3, W: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := Kruskal(g)

	r := NewResilientRunner(ResilientConfig{Workers: 2, VerifyRate: 1})
	res, err := r.Solve(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Forest.Equal(oracle) {
		t.Fatalf("runner forest differs from Kruskal: %v vs %v", res.Forest, oracle)
	}
	if !res.Verified {
		t.Fatal("VerifyRate 1 did not verify the winner")
	}
	if st := r.Stats(); st.Solves != 1 {
		t.Fatalf("stats did not count the solve: %+v", st)
	}
	if err := r.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	res, err = RunResilient(context.Background(), g, ResilientConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Forest.Equal(oracle) {
		t.Fatal("RunResilient forest differs from Kruskal")
	}

	// A runner with an impossibly small memory budget sheds with the typed
	// sentinel.
	tiny := NewResilientRunner(ResilientConfig{MemoryBudgetBytes: 1})
	if _, err := tiny.Solve(context.Background(), g); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	var oe *OverloadError
	if _, err := tiny.Solve(context.Background(), g); !errors.As(err, &oe) || oe.Reason != "memory" {
		t.Fatalf("want *OverloadError with memory reason, got %v", err)
	}

	// A pre-expired deadline surfaces as a typed context error.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := NewResilientRunner(ResilientConfig{}).Solve(ctx, g); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}
