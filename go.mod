module llpmst

go 1.22
