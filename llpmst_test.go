package llpmst

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	g, err := NewGraph(4, []Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 3}, {U: 3, V: 0, W: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := MinimumSpanningForest(g, Options{})
	if f.Weight != 6 || len(f.EdgeIDs) != 3 || !f.Spanning() {
		t.Fatalf("MST wrong: %v", f)
	}
	if err := VerifyMinimum(g, f); err != nil {
		t.Fatal(err)
	}
}

func TestMinimumSpanningForestAlgorithmSelection(t *testing.T) {
	g := GenerateRMAT(8, 8, WeightUniform, 1)
	seq := MinimumSpanningForest(g, Options{Workers: 1})
	par := MinimumSpanningForest(g, Options{Workers: 4})
	if !seq.Equal(par) {
		t.Fatal("1-worker and 4-worker paths disagree")
	}
	if err := VerifyMinimum(g, seq); err != nil {
		t.Fatal(err)
	}
}

func TestAllPublicAlgorithmsAgree(t *testing.T) {
	g := GenerateRoadNetwork(24, 24, 0.25, 3)
	oracle := Kruskal(g)
	forests := map[string]*Forest{
		"prim":           Prim(g),
		"llp-prim":       LLPPrim(g, Options{}),
		"llp-prim-par":   LLPPrimParallel(g, Options{Workers: 3}),
		"boruvka":        Boruvka(g),
		"par-boruvka":    ParallelBoruvka(g, Options{Workers: 3}),
		"llp-boruvka":    LLPBoruvka(g, Options{Workers: 3}),
		"filter-kruskal": FilterKruskal(g, Options{Workers: 3}),
	}
	for name, f := range forests {
		if !f.Equal(oracle) {
			t.Errorf("%s disagrees with kruskal", name)
		}
		if err := CheckForest(g, f); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	for _, alg := range Algorithms() {
		f, err := Run(alg, g, Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !f.Equal(oracle) {
			t.Errorf("Run(%s) disagrees with kruskal", alg)
		}
	}
}

func TestGraphIORoundTripsThroughPublicAPI(t *testing.T) {
	g := GenerateErdosRenyi(100, 300, WeightInteger, 5)
	dir := t.TempDir()

	binPath := filepath.Join(dir, "g.llpg")
	if err := SaveBinary(binPath, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadBinary(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if !Kruskal(g2).Equal(Kruskal(g)) {
		t.Fatal("binary round trip changed the MSF")
	}
	// LoadGraph sniffing: binary.
	g3, err := LoadGraph(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumEdges() != g.NumEdges() {
		t.Fatal("LoadGraph(binary) lost edges")
	}
	// LoadGraph sniffing: DIMACS text.
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g); err != nil {
		t.Fatal(err)
	}
	grPath := filepath.Join(dir, "g.gr")
	if err := os.WriteFile(grPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	g4, err := LoadGraph(grPath)
	if err != nil {
		t.Fatal(err)
	}
	if g4.NumEdges() != g.NumEdges() {
		t.Fatal("LoadGraph(dimacs) lost edges")
	}
	if _, err := LoadGraph(filepath.Join(dir, "missing.gr")); err == nil {
		t.Fatal("loaded a nonexistent file")
	}
}

func TestShortestPathsPublicAPI(t *testing.T) {
	g, err := NewGraph(3, []Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}, {U: 0, V: 2, W: 10}})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []LLPMode{LLPAsync, LLPRound, LLPSequential} {
		d := ShortestPaths(mode, 2, g, 0)
		if d[0] != 0 || d[1] != 2 || d[2] != 5 {
			t.Fatalf("mode %v: distances %v", mode, d)
		}
	}
}

func TestConnectedComponentsPublicAPI(t *testing.T) {
	g, err := NewGraph(5, []Edge{{U: 0, V: 1, W: 1}, {U: 3, V: 4, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	l := ConnectedComponents(LLPAsync, 2, g)
	if l[0] != 0 || l[1] != 0 || l[2] != 2 || l[3] != 3 || l[4] != 3 {
		t.Fatalf("labels %v", l)
	}
}

func TestSolveLLPCustomPredicate(t *testing.T) {
	// Users can plug their own predicates into the engine: round each cell
	// up to the next multiple of k.
	pred := &roundUp{vals: []int{1, 5, 6, 0, 13}, k: 5}
	st := SolveLLP(LLPSequential, 1, pred)
	want := []int{5, 5, 10, 0, 15}
	for i, v := range pred.vals {
		if v != want[i] {
			t.Fatalf("vals[%d] = %d, want %d", i, v, want[i])
		}
	}
	if st.Advances == 0 {
		t.Fatal("no advances")
	}
}

type roundUp struct {
	vals []int
	k    int
}

func (r *roundUp) N() int { return len(r.vals) }
func (r *roundUp) Forbidden(j int) bool {
	return r.vals[j] != 0 && r.vals[j]%r.k != 0
}
func (r *roundUp) Advance(j int) { r.vals[j]++ }

func TestGeneratorsThroughPublicAPI(t *testing.T) {
	geo := GenerateGeometric(500, 2*GeometricConnectivityRadius(500), 9)
	if !geo.Connected() {
		t.Fatal("geometric graph disconnected")
	}
	stats := geo.ComputeStats()
	if stats.Vertices != 500 {
		t.Fatalf("stats: %+v", stats)
	}
	road := GenerateRoadNetwork(16, 16, 0.2, 1)
	if got := road.ComputeStats().AvgDegree; math.Abs(got-2.4) > 0.8 {
		t.Fatalf("road avg degree %v not road-like", got)
	}
	if _, err := NewGraphWorkers(4, 10, []Edge{{U: 0, V: 9, W: 1}}); err != nil {
		t.Fatal(err)
	}
}
