package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"llpmst"
)

func seedGraph(t *testing.T, dir string) string {
	t.Helper()
	g := llpmst.GenerateErdosRenyi(80, 300, llpmst.WeightInteger, 3)
	path := filepath.Join(dir, "seed.llpg")
	if err := llpmst.SaveBinary(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConvertChainPreservesMSFWeight(t *testing.T) {
	dir := t.TempDir()
	seed := seedGraph(t, dir)
	orig, err := llpmst.LoadGraph(seed)
	if err != nil {
		t.Fatal(err)
	}
	wantWeight := llpmst.Kruskal(orig).Weight

	// llpg -> gr -> mtx -> metis -> llpg, asserting the MSF weight is
	// invariant across the whole chain (weights here are integers so every
	// format represents them exactly).
	chain := []string{"a.gr", "b.mtx", "c.metis", "d.llpg"}
	in := seed
	for _, name := range chain {
		out := filepath.Join(dir, name)
		var buf bytes.Buffer
		if err := run([]string{"-i", in, "-o", out}, &buf); err != nil {
			t.Fatalf("%s -> %s: %v", in, out, err)
		}
		if !strings.Contains(buf.String(), "->") {
			t.Fatalf("no confirmation: %s", buf.String())
		}
		in = out
	}
	final, err := llpmst.LoadGraph(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := llpmst.Kruskal(final).Weight; got != wantWeight {
		t.Fatalf("MSF weight changed across conversions: %g -> %g", wantWeight, got)
	}
	if final.NumVertices() != orig.NumVertices() {
		t.Fatal("vertex count changed")
	}
}

func TestConvertFormatOverride(t *testing.T) {
	dir := t.TempDir()
	seed := seedGraph(t, dir)
	out := filepath.Join(dir, "weird.dat")
	var buf bytes.Buffer
	if err := run([]string{"-i", seed, "-o", out, "-to", "dimacs", "-stats"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "n=80") {
		t.Fatalf("stats missing: %s", buf.String())
	}
	// Read it back with an input override.
	back := filepath.Join(dir, "back.llpg")
	if err := run([]string{"-i", out, "-from", "dimacs", "-o", back}, &buf); err != nil {
		t.Fatal(err)
	}
}

func TestConvertErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("missing args accepted")
	}
	if err := run([]string{"-i", "x.unknown", "-o", "y.gr"}, &buf); err == nil {
		t.Fatal("unknown input extension accepted")
	}
	if err := run([]string{"-i", "x.gr", "-o", "y.unknown"}, &buf); err == nil {
		t.Fatal("unknown output extension accepted")
	}
	if err := run([]string{"-i", "/missing.gr", "-o", "y.gr"}, &buf); err == nil {
		t.Fatal("missing input accepted")
	}
	dir := t.TempDir()
	seed := seedGraph(t, dir)
	if err := run([]string{"-i", seed, "-o", "/nonexistent-dir/out.gr"}, &buf); err == nil {
		t.Fatal("unwritable output accepted")
	}
	if err := run([]string{"-i", seed, "-o", filepath.Join(dir, "o.gr"), "-from", "bogus"}, &buf); err == nil {
		t.Fatal("bogus format override accepted")
	}
}
