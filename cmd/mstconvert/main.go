// Command mstconvert converts graphs between the supported interchange
// formats: DIMACS .gr, Matrix Market .mtx, METIS .graph/.metis, and the
// compact binary .llpg. Formats are chosen by file extension, overridable
// with -from/-to.
//
// Usage:
//
//	mstconvert -i usa-road.gr -o usa-road.llpg
//	mstconvert -i web.mtx -o web.metis
//	mstconvert -i g.llpg -o g.gr -stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"llpmst"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mstconvert:", err)
		os.Exit(1)
	}
}

func formatOf(path, override string) (string, error) {
	if override != "" {
		return override, nil
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".gr", ".dimacs":
		return "dimacs", nil
	case ".mtx":
		return "mtx", nil
	case ".graph", ".metis":
		return "metis", nil
	case ".llpg", ".bin":
		return "binary", nil
	}
	return "", fmt.Errorf("cannot infer format of %q; use -from/-to (dimacs|mtx|metis|binary)", path)
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mstconvert", flag.ContinueOnError)
	var (
		in    = fs.String("i", "", "input path")
		out   = fs.String("o", "", "output path")
		from  = fs.String("from", "", "input format override: dimacs|mtx|metis|binary")
		to    = fs.String("to", "", "output format override: dimacs|mtx|metis|binary")
		stats = fs.Bool("stats", false, "print the graph's morphology summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("-i and -o are required")
	}
	inFmt, err := formatOf(*in, *from)
	if err != nil {
		return err
	}
	outFmt, err := formatOf(*out, *to)
	if err != nil {
		return err
	}

	src, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer src.Close()
	var g *llpmst.Graph
	switch inFmt {
	case "dimacs":
		g, err = llpmst.ReadDIMACS(src)
	case "mtx":
		g, err = llpmst.ReadMatrixMarket(src)
	case "metis":
		g, err = llpmst.ReadMETIS(src)
	case "binary":
		g, err = llpmst.LoadGraph(*in)
	default:
		return fmt.Errorf("unknown input format %q", inFmt)
	}
	if err != nil {
		return err
	}
	if *stats {
		fmt.Fprintln(stdout, g.ComputeStats())
	}

	dst, err := os.Create(*out)
	if err != nil {
		return err
	}
	switch outFmt {
	case "dimacs":
		err = llpmst.WriteDIMACS(dst, g)
	case "mtx":
		err = llpmst.WriteMatrixMarket(dst, g)
	case "metis":
		err = llpmst.WriteMETIS(dst, g)
	case "binary":
		err = llpmst.WriteBinaryGraph(dst, g)
	default:
		dst.Close()
		return fmt.Errorf("unknown output format %q", outFmt)
	}
	if err != nil {
		dst.Close()
		return err
	}
	if err := dst.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s (%s) -> %s (%s): n=%d m=%d\n",
		*in, inFmt, *out, outFmt, g.NumVertices(), g.NumEdges())
	return nil
}
