// Command mstverify loads a graph, computes its minimum spanning forest
// with a chosen algorithm, cross-checks it against a second algorithm, and
// certifies minimality with the O((n+m) log n) cycle-property verifier.
//
// Usage:
//
//	mstverify -graph road.llpg
//	mstverify -graph road.gr -alg llp-boruvka -against prim -workers 8
//	mstverify -graph dense.llpg -alg semi-boruvka -against kruskal
//
// Exits non-zero if any check fails.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"llpmst"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mstverify:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mstverify", flag.ContinueOnError)
	var (
		path    = fs.String("graph", "", "input graph (.llpg binary or DIMACS .gr)")
		alg     = fs.String("alg", "llp-boruvka", "algorithm to certify")
		against = fs.String("against", "kruskal", "cross-check algorithm")
		workers = fs.Int("workers", 0, "worker count (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("-graph is required")
	}
	g, err := llpmst.LoadGraph(*path)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "loaded %s: %s\n", *path, g.ComputeStats())

	opts := llpmst.Options{Workers: *workers}
	start := time.Now()
	f, err := runAlg(*alg, g, opts, stdout)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s: %s in %v\n", *alg, f, time.Since(start))

	ref, err := runAlg(*against, g, opts, stdout)
	if err != nil {
		return err
	}
	if !f.Equal(ref) {
		return fmt.Errorf("forest differs from %s (weights %g vs %g)", *against, f.Weight, ref.Weight)
	}
	fmt.Fprintf(stdout, "cross-check vs %s: identical edge sets\n", *against)

	start = time.Now()
	if err := llpmst.VerifyMinimum(g, f); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "cycle-property certificate: minimal (verified in %v)\n", time.Since(start))
	return nil
}

// runAlg computes the forest for one algorithm name. "ghs" is special: it
// runs the distributed protocol on the simulated network and materializes
// the elected edge ids as a Forest, so the same cross-check and
// cycle-property certificate apply to the distributed result.
func runAlg(alg string, g *llpmst.Graph, opts llpmst.Options, stdout io.Writer) (*llpmst.Forest, error) {
	if alg == "ghs" {
		ids, stats, err := llpmst.DistributedMSF(g)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(stdout, "ghs simulation: %d phases, %d rounds, %d messages\n",
			stats.Phases, stats.Rounds, stats.Messages)
		return llpmst.ForestFromEdgeIDs(g, ids), nil
	}
	return llpmst.Run(llpmst.Algorithm(alg), g, opts)
}
