package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"llpmst"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	g := llpmst.GenerateRoadNetwork(16, 16, 0.3, 5)
	path := filepath.Join(t.TempDir(), "g.llpg")
	if err := llpmst.SaveBinary(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestVerifyHappyPath(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	if err := run([]string{"-graph", path}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"loaded", "identical edge sets", "certificate: minimal"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestVerifyEveryAlgorithmPair(t *testing.T) {
	path := writeTestGraph(t)
	for _, alg := range []string{"prim", "llp-prim", "llp-prim-par", "boruvka-par", "kkt", "filter-kruskal"} {
		var out bytes.Buffer
		if err := run([]string{"-graph", path, "-alg", alg, "-against", "boruvka", "-workers", "2"}, &out); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
}

// The distributed protocol's elected forest must pass the same cross-check
// and cycle-property certificate as the shared-memory algorithms; the
// command must exit cleanly (run returns nil) exactly when it does.
func TestVerifyGHS(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	if err := run([]string{"-graph", path, "-alg", "ghs", "-against", "kruskal"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ghs simulation:", "identical edge sets", "certificate: minimal"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestVerifyErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("missing -graph accepted")
	}
	if err := run([]string{"-graph", "/nope.llpg"}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
	path := writeTestGraph(t)
	if err := run([]string{"-graph", path, "-alg", "bogus"}, &out); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
	if err := run([]string{"-graph", path, "-against", "bogus"}, &out); err == nil {
		t.Fatal("bogus cross-check algorithm accepted")
	}
}
