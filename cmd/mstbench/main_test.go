package main

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	for _, exp := range []string{"tableI", "fig2", "work"} {
		var out bytes.Buffer
		if err := run([]string{"-exp", exp, "-scale", "test", "-trials", "1"}, &out); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.Contains(out.String(), "==") {
			t.Fatalf("%s: no table rendered:\n%s", exp, out.String())
		}
	}
}

func TestRunFig3CustomThreads(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "fig3", "-scale", "test", "-trials", "1", "-threads", "1,2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig. 3") {
		t.Fatal("missing Fig. 3 table")
	}
}

func TestRunCSVExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rows.csv")
	var out bytes.Buffer
	if err := run([]string{"-exp", "fig2", "-scale", "test", "-trials", "1", "-csv", path}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 7 { // header + 6 fig2 rows
		t.Fatalf("%d CSV records, want 7", len(records))
	}
	if records[0][0] != "experiment" || records[1][0] != "fig2" {
		t.Fatalf("CSV content wrong: %v", records[:2])
	}
}

func TestRunConvergenceArtifacts(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	rounds := filepath.Join(dir, "rounds.csv")
	var out bytes.Buffer
	if err := run([]string{"-exp", "conv", "-scale", "test", "-trials", "1",
		"-chrome-trace", trace, "-round-csv", rounds}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Convergence") {
		t.Fatalf("no convergence table rendered:\n%s", out.String())
	}

	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tf); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	for _, ev := range tf.TraceEvents {
		phases[ev.Ph]++
	}
	for _, ph := range []string{"M", "X", "i"} {
		if phases[ph] == 0 {
			t.Errorf("chrome trace has no %q events (%v)", ph, phases)
		}
	}

	f, err := os.Open(rounds)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) < 2 {
		t.Fatalf("round CSV has %d records, want header + rows", len(records))
	}
	header := strings.Join(records[0], ",")
	for _, col := range []string{"round", "start_ms", "dur_ms"} {
		if !strings.Contains(header, col) {
			t.Errorf("round CSV header %q missing %q", header, col)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "bogus", "-scale", "test"}, &out); err == nil {
		t.Fatal("bogus experiment accepted")
	}
	if err := run([]string{"-scale", "bogus"}, &out); err == nil {
		t.Fatal("bogus scale accepted")
	}
	if err := run([]string{"-exp", "fig3", "-scale", "test", "-threads", "x"}, &out); err == nil {
		t.Fatal("bogus threads accepted")
	}
	if err := run([]string{"-exp", "fig2", "-scale", "test", "-trials", "1", "-csv", "/nonexistent-dir/x.csv"}, &out); err == nil {
		t.Fatal("unwritable CSV path accepted")
	}
}
