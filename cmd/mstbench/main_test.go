package main

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	for _, exp := range []string{"tableI", "fig2", "work"} {
		var out bytes.Buffer
		if err := run([]string{"-exp", exp, "-scale", "test", "-trials", "1"}, &out); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
		if !strings.Contains(out.String(), "==") {
			t.Fatalf("%s: no table rendered:\n%s", exp, out.String())
		}
	}
}

func TestRunFig3CustomThreads(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "fig3", "-scale", "test", "-trials", "1", "-threads", "1,2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Fig. 3") {
		t.Fatal("missing Fig. 3 table")
	}
}

func TestRunCSVExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rows.csv")
	var out bytes.Buffer
	if err := run([]string{"-exp", "fig2", "-scale", "test", "-trials", "1", "-csv", path}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	records, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 7 { // header + 6 fig2 rows
		t.Fatalf("%d CSV records, want 7", len(records))
	}
	if records[0][0] != "experiment" || records[1][0] != "fig2" {
		t.Fatalf("CSV content wrong: %v", records[:2])
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "bogus", "-scale", "test"}, &out); err == nil {
		t.Fatal("bogus experiment accepted")
	}
	if err := run([]string{"-scale", "bogus"}, &out); err == nil {
		t.Fatal("bogus scale accepted")
	}
	if err := run([]string{"-exp", "fig3", "-scale", "test", "-threads", "x"}, &out); err == nil {
		t.Fatal("bogus threads accepted")
	}
	if err := run([]string{"-exp", "fig2", "-scale", "test", "-trials", "1", "-csv", "/nonexistent-dir/x.csv"}, &out); err == nil {
		t.Fatal("unwritable CSV path accepted")
	}
}
