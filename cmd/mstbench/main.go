// Command mstbench regenerates the tables and figures of the paper's
// evaluation (§VII) on synthetic stand-ins for its datasets.
//
// Usage:
//
//	mstbench -exp all                     # every experiment at default scale
//	mstbench -exp fig3 -scale m -trials 5 # Fig. 3 on ~260k-vertex graphs
//	mstbench -exp fig4 -low 4 -high 32
//	mstbench -exp all -csv results.csv    # also dump machine-readable rows
//	mstbench -exp perf -json-out .        # snapshot BENCH_perf.json for the trajectory
//
// Experiments: tableI, fig2, fig3, fig4, sizesweep, ablation, work, perf,
// semi (semiring vs pointer-based Boruvka across a density sweep), conv,
// dist, chaos (also via -chaos, seeded by -chaos-seed), hedge (also via
// -hedge: tail latency through the resilient runner, with and without
// hedging), all.
// Scales: test (~1k vertices), s (~65k), m (~260k), l (~1M).
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"llpmst/internal/bench"
	"llpmst/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mstbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mstbench", flag.ContinueOnError)
	var (
		exp        = fs.String("exp", "all", "experiment: tableI|fig2|fig3|fig4|sizesweep|ablation|work|perf|semi|conv|dist|chaos|hedge|all")
		scale      = fs.String("scale", "s", "dataset scale: test|s|m|l")
		trials     = fs.Int("trials", 3, "trials per cell (best time is reported)")
		threads    = fs.String("threads", "", "comma-separated worker counts for fig3 (default 1,2,4,8,16,32)")
		low        = fs.Int("low", 4, "low worker count for fig4")
		high       = fs.Int("high", 32, "high worker count for fig4")
		workers    = fs.Int("workers", 8, "worker count for sizesweep and ablation")
		csvPath    = fs.String("csv", "", "also write timing rows as CSV to this path")
		jsonOut    = fs.String("json-out", "", "also write one machine-readable BENCH_<experiment>.json per executed experiment into this directory")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile of the experiments to this path")
		memProf    = fs.String("memprofile", "", "write a heap profile after the experiments to this path")
		timeout    = fs.Duration("timeout", 0, "cancel the run after this duration (0 = no limit); a timed-out run still reports completed rows")
		traceOut   = fs.String("trace-out", "", "write the runtime phase timeline (spans, counters, gauge maxima) as JSON to this path")
		chromeOut  = fs.String("chrome-trace", "", "write a Chrome Trace Event JSON (load in Perfetto/chrome://tracing; one track per worker, round markers) to this path")
		roundCSV   = fs.String("round-csv", "", "write the per-round convergence series (counter deltas and gauge samples per round) as CSV to this path")
		pprofSrv   = fs.String("pprof", "", "serve net/http/pprof plus live /metrics (Prometheus) and /progress (JSON) on this address (e.g. localhost:6060) for the duration of the run")
		chaos      = fs.Bool("chaos", false, "also run the distributed protocol over a lossy network (drop=0.2 dup=0.1 reorder) and report recovery costs")
		chaosSeed  = fs.Int64("chaos-seed", 1, "fault-injection seed for -chaos (identical seeds reproduce identical runs)")
		hedge      = fs.Bool("hedge", false, "also route the bench loop through the resilient runner and report p50/p95/p99 tail latency with and without hedging")
		hedgeIters = fs.Int("hedge-iters", 40, "solves per dataset and mode for -hedge")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var rec *obs.Recording
	if *traceOut != "" {
		rec = obs.NewRecording()
	}
	// The flight recorder powers the event-level exports (-chrome-trace,
	// -round-csv) and the live /metrics + /progress endpoints; it is only
	// constructed when one of those consumers is active, so plain runs keep
	// the free Nop collector.
	var flight *obs.FlightRecorder
	if *chromeOut != "" || *roundCSV != "" || *pprofSrv != "" {
		flight = obs.NewFlightRecorder(0, 0)
	}
	var col obs.Collector
	switch {
	case rec != nil && flight != nil:
		col = obs.Tee(rec, flight)
	case rec != nil:
		col = rec
	case flight != nil:
		col = flight
	}
	if col != nil {
		ctx = obs.NewContext(ctx, col)
	}
	if *pprofSrv != "" {
		// A private mux (not http.DefaultServeMux directly) so repeated runs
		// in one process never double-register handlers; pprof's handlers
		// live on the default mux and are reached through the fallthrough.
		mux := http.NewServeMux()
		if flight != nil {
			mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
				flight.WritePrometheus(w)
			})
			mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				flight.WriteProgress(w)
			})
		}
		mux.Handle("/", http.DefaultServeMux)
		srv := &http.Server{Addr: *pprofSrv, Handler: mux}
		go srv.ListenAndServe()
		defer srv.Close()
		fmt.Fprintf(stdout, "pprof: serving http://%s/debug/pprof/ (+ /metrics, /progress)\n", *pprofSrv)
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				return
			}
			runtime.GC()
			pprof.WriteHeapProfile(f)
			f.Close()
		}()
	}

	sc, err := bench.ParseScale(*scale)
	if err != nil {
		return err
	}
	var threadList []int
	if *threads != "" {
		for _, part := range strings.Split(*threads, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || p < 1 {
				return fmt.Errorf("bad -threads entry %q", part)
			}
			threadList = append(threadList, p)
		}
	}

	fmt.Fprintf(stdout, "mstbench: scale=%s trials=%d GOMAXPROCS=%d\n", sc, *trials, runtime.GOMAXPROCS(0))
	fmt.Fprintf(stdout, "note: absolute times are host-dependent; the paper's claims are about curve shapes.\n")

	var all []bench.Result
	ran := false
	step := func(name string, f func() ([]bench.Result, error)) error {
		if *exp != "all" && *exp != name {
			return nil
		}
		ran = true
		rs, err := f()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		all = append(all, rs...)
		return nil
	}
	steps := []struct {
		name string
		f    func() ([]bench.Result, error)
	}{
		{"tableI", func() ([]bench.Result, error) { return bench.TableI(stdout, sc) }},
		{"fig2", func() ([]bench.Result, error) { return bench.Fig2Ctx(ctx, stdout, sc, *trials) }},
		{"fig3", func() ([]bench.Result, error) { return bench.Fig3Ctx(ctx, stdout, sc, *trials, threadList) }},
		{"fig4", func() ([]bench.Result, error) { return bench.Fig4Ctx(ctx, stdout, sc, *trials, *low, *high) }},
		{"sizesweep", func() ([]bench.Result, error) { return bench.SizeSweepCtx(ctx, stdout, sc, *trials, *workers) }},
		{"ablation", func() ([]bench.Result, error) { return bench.AblationCtx(ctx, stdout, sc, *trials, *workers) }},
		{"perf", func() ([]bench.Result, error) { return bench.PerfCtx(ctx, stdout, sc, *trials) }},
		{"semi", func() ([]bench.Result, error) { return bench.SemiCtx(ctx, stdout, sc, *trials) }},
		{"conv", func() ([]bench.Result, error) { return bench.ConvergenceCtx(ctx, stdout, sc, *workers) }},
		{"dist", func() ([]bench.Result, error) {
			rows, err := bench.DistributedCtx(ctx, stdout, sc)
			if err != nil {
				return nil, err
			}
			out := make([]bench.Result, 0, len(rows))
			for _, r := range rows {
				out = append(out, bench.Result{
					Experiment: "dist", Dataset: r.Dataset, Algorithm: "ghs",
					Edges: r.Edges,
				})
			}
			return out, nil
		}},
		{"work", func() ([]bench.Result, error) {
			rows, err := bench.WorkCtx(ctx, stdout, sc)
			if err != nil {
				return nil, err
			}
			out := make([]bench.Result, 0, len(rows))
			for _, r := range rows {
				out = append(out, bench.Result{
					Experiment: "work", Dataset: r.Dataset, Algorithm: r.Algorithm,
				})
			}
			return out, nil
		}},
	}
	if *hedge || *exp == "hedge" {
		steps = append(steps, struct {
			name string
			f    func() ([]bench.Result, error)
		}{"hedge", func() ([]bench.Result, error) {
			rows, err := bench.HedgeCtx(ctx, stdout, sc, *hedgeIters, *workers, *chaosSeed)
			if err != nil {
				return nil, err
			}
			out := make([]bench.Result, 0, len(rows))
			for _, r := range rows {
				out = append(out, bench.Result{
					Experiment: "hedge", Dataset: r.Dataset,
					Algorithm: "resilient-" + r.Mode, Workers: *workers,
					Millis: r.P99Ms, MedianMs: r.P50Ms,
				})
			}
			return out, nil
		}})
	}
	if *chaos || *exp == "chaos" {
		steps = append(steps, struct {
			name string
			f    func() ([]bench.Result, error)
		}{"chaos", func() ([]bench.Result, error) {
			rows, err := bench.ChaosCtx(ctx, stdout, sc, *chaosSeed)
			if err != nil {
				return nil, err
			}
			out := make([]bench.Result, 0, len(rows))
			for _, r := range rows {
				out = append(out, bench.Result{
					Experiment: "chaos", Dataset: r.Dataset, Algorithm: "ghs-chaos",
					Edges: r.Edges, Speedup: r.RoundFactor,
				})
			}
			return out, nil
		}})
	}
	for _, s := range steps {
		if err := step(s.name, s.f); err != nil {
			// A -timeout expiry is a requested stop, not a failure: report
			// the rows completed so far and still write -csv/-trace-out.
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				fmt.Fprintf(stdout, "\ntimeout: %v — stopping after %d completed rows\n", err, len(all))
				break
			}
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	if *csvPath != "" {
		if err := writeCSV(*csvPath, all); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nwrote %d rows to %s\n", len(all), *csvPath)
	}
	if *jsonOut != "" {
		paths, err := bench.WriteJSONReports(*jsonOut, all)
		if err != nil {
			return err
		}
		for _, p := range paths {
			fmt.Fprintf(stdout, "wrote %s\n", p)
		}
	}
	if rec != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := rec.WriteTimeline(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d spans to %s\n", len(rec.Spans()), *traceOut)
	}
	if flight != nil {
		if *chromeOut != "" {
			if err := writeTo(*chromeOut, flight.WriteChromeTrace); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote chrome trace (%d events, %d dropped) to %s\n",
				flight.Recorded(), flight.Dropped(), *chromeOut)
		}
		if *roundCSV != "" {
			if err := writeTo(*roundCSV, flight.WriteRoundCSV); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %d round segments to %s\n", len(flight.RoundSeries()), *roundCSV)
		}
	}
	return nil
}

// writeTo streams one exporter into a freshly created file.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeCSV(path string, rows []bench.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write([]string{"experiment", "dataset", "algorithm", "workers", "millis", "speedup", "edges", "weight"}); err != nil {
		f.Close()
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.Experiment, r.Dataset, r.Algorithm,
			strconv.Itoa(r.Workers),
			strconv.FormatFloat(r.Millis, 'f', 3, 64),
			strconv.FormatFloat(r.Speedup, 'f', 3, 64),
			strconv.Itoa(r.Edges),
			strconv.FormatFloat(r.Weight, 'g', -1, 64),
		}
		if err := w.Write(rec); err != nil {
			f.Close()
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
