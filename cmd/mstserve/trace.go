// Request tracing: the middleware that roots a trace per request, the
// /traces serving endpoints, and the round-summary bridge from a
// per-request flight recorder into the trace's span tree.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"llpmst/internal/obs"
)

// statusWriter captures the status code a handler writes so the middleware
// can log and meter it after the handler returns.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// roundEventCap bounds the per-request flight recorder handed to deep-traced
// (inbound sampled flag) requests: 4096 events is a few hundred Boruvka
// rounds with counters, in ~128 KiB that dies with the request.
const roundEventCap = 1 << 12

// gatedRecorder wraps a per-request FlightRecorder so it can be read after
// the response goes out. A hedge-loser leg outlives the handler and keeps
// recording; FlightRecorder reads are only safe once writers stop. The
// RWMutex establishes that edge: writers hold RLock per event, close takes
// the write lock, flips the gate, and reads the series — late events from
// losers are dropped at the gate instead of racing the read.
type gatedRecorder struct {
	mu     sync.RWMutex
	rec    *obs.FlightRecorder
	closed bool
}

func (g *gatedRecorder) Span(name string) func() {
	g.mu.RLock()
	if g.closed {
		g.mu.RUnlock()
		return func() {}
	}
	end := g.rec.Span(name)
	g.mu.RUnlock()
	return func() {
		g.mu.RLock()
		if !g.closed {
			end()
		}
		g.mu.RUnlock()
	}
}

func (g *gatedRecorder) Count(c obs.Counter, delta int64) {
	g.mu.RLock()
	if !g.closed {
		g.rec.Count(c, delta)
	}
	g.mu.RUnlock()
}

func (g *gatedRecorder) Gauge(gg obs.Gauge, v int64) {
	g.mu.RLock()
	if !g.closed {
		g.rec.Gauge(gg, v)
	}
	g.mu.RUnlock()
}

func (g *gatedRecorder) Round(r int64) {
	g.mu.RLock()
	if !g.closed {
		g.rec.Round(r)
	}
	g.mu.RUnlock()
}

// close shuts the gate and returns the recorded round series. Safe to call
// exactly once; events arriving afterwards are discarded.
func (g *gatedRecorder) close() []obs.RoundStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.closed = true
	return g.rec.RoundSeries()
}

// maxRoundSpans caps how many per-round child spans the round summary adds
// to a trace; the span array is the trace's scarce resource and the solve's
// own spans have first claim on it.
const maxRoundSpans = 32

// traced wraps a route handler with the request-scoped tracing spine:
//
//   - an inbound W3C traceparent header is honored (same trace ID, caller's
//     span as root parent; the sampled flag forces the trace to be kept),
//     otherwise a fresh trace ID is minted;
//   - the response echoes the trace ID in a traceparent header, so callers
//     can correlate and CI can assert propagation;
//   - the root span's ref rides req.Context() — registry, resilient, and
//     stream layers hang their child spans off it;
//   - an inbound sampled flag additionally attaches a per-request flight
//     recorder whose round marks become an "algorithm rounds" child span;
//   - after the handler returns: status/tenant attrs, SetError on 5xx (a
//     tail-sample keep), RED metrics, and one structured log line.
func (s *server) traced(pattern string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		tid, parent, flags, _ := obs.ParseTraceparent(req.Header.Get(obs.TraceparentHeader))
		root := s.traces.StartTrace(pattern, tid, parent, flags)
		ctx := req.Context()
		var rec *gatedRecorder
		if root.Valid() {
			w.Header().Set(obs.TraceparentHeader, obs.FormatTraceparent(root.TraceID(), root.ID(), flags))
			ctx = obs.ContextWithTrace(ctx, root.Ref())
			if flags&obs.FlagSampled != 0 {
				// Deep trace: give the request its own flight recorder so the
				// solve's round marks can be folded into the span tree. It
				// tees with the server-wide recorder inside the layers, and is
				// gated because hedge-loser legs outlive the handler.
				rec = &gatedRecorder{rec: obs.NewFlightRecorder(1, roundEventCap)}
				ctx = obs.NewContext(ctx, rec)
			}
		}
		sw := &statusWriter{ResponseWriter: w}
		h(sw, req.WithContext(ctx))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		dur := time.Since(start)

		// Capture the ID before Finish: sealing may recycle the slot, after
		// which the handle's ID accessor races the next trace.
		logID := root.TraceID()
		if root.Valid() {
			if rec != nil {
				attachRounds(root, rec.close(), start)
			}
			root.SetInt("status", int64(sw.status))
			root.SetAttr("tenant", tenantFor(req))
			if sw.status >= 500 {
				root.SetErrorString(http.StatusText(sw.status))
			}
		}
		root.Finish()
		s.httpm.Observe(pattern, sw.status, dur, logID)

		lvl := slog.LevelInfo
		if sw.status >= 500 {
			lvl = slog.LevelWarn
		}
		s.log.LogAttrs(req.Context(), lvl, "request",
			slog.String("method", req.Method),
			slog.String("route", pattern),
			slog.Int("status", sw.status),
			slog.String("tenant", tenantFor(req)),
			slog.Duration("duration", dur),
			obs.TraceAttr(logID),
		)
	}
}

// attachRounds folds the per-request flight recorder's round segments into
// the trace as an "algorithm.rounds" span with one child per round. The
// recorder's origin is the request start, so segment offsets translate
// directly to wall-clock span times.
func attachRounds(root obs.Span, series []obs.RoundStats, origin time.Time) {
	if len(series) == 0 {
		return
	}
	sum := root.Ref().StartAt("algorithm.rounds", origin.Add(series[0].Start))
	if !sum.Valid() {
		return
	}
	sum.SetInt("rounds", int64(len(series)))
	n := len(series)
	if n > maxRoundSpans {
		sum.SetInt("rounds_truncated", int64(n-maxRoundSpans))
		n = maxRoundSpans
	}
	for _, rs := range series[:n] {
		sp := sum.Ref().StartAt(fmt.Sprintf("round %d", rs.Round), origin.Add(rs.Start))
		sp.EndAt(origin.Add(rs.End))
	}
	sum.EndAt(origin.Add(series[len(series)-1].End))
}

// traceIndexReply is the GET /traces body: three views over the kept ring
// plus the store's lifetime sampling stats.
type traceIndexReply struct {
	Recent  []obs.TraceSummary  `json:"recent"`
	Slowest []obs.TraceSummary  `json:"slowest"`
	Errored []obs.TraceSummary  `json:"errored"`
	Stats   obs.TraceStoreStats `json:"stats"`
}

// traceIndexLimit bounds each view in the /traces index.
const traceIndexLimit = 50

func (s *server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	sums := s.traces.Summaries() // newest first
	reply := traceIndexReply{
		Recent:  clampTraces(sums),
		Slowest: make([]obs.TraceSummary, len(sums)),
		Stats:   s.traces.Stats(),
	}
	copy(reply.Slowest, sums)
	sort.SliceStable(reply.Slowest, func(i, j int) bool {
		return reply.Slowest[i].DurMS > reply.Slowest[j].DurMS
	})
	reply.Slowest = clampTraces(reply.Slowest)
	for _, t := range sums {
		if t.Error {
			reply.Errored = append(reply.Errored, t)
		}
	}
	reply.Errored = clampTraces(reply.Errored)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(reply)
}

func clampTraces(ts []obs.TraceSummary) []obs.TraceSummary {
	if len(ts) > traceIndexLimit {
		return ts[:traceIndexLimit]
	}
	return ts
}

// handleTraceByID serves one kept trace: JSON span tree by default,
// Chrome-trace JSON (load into Perfetto / chrome://tracing) with
// ?format=chrome.
func (s *server) handleTraceByID(w http.ResponseWriter, req *http.Request) {
	tid, ok := obs.ParseTraceID(req.PathValue("id"))
	if !ok {
		http.Error(w, "bad trace id (want 32 lowercase hex digits)", http.StatusBadRequest)
		return
	}
	d, ok := s.traces.Get(tid)
	if !ok {
		http.Error(w, "trace not kept (still open, sampled out, or evicted)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if req.URL.Query().Get("format") == "chrome" {
		_ = d.WriteChromeTrace(w)
		return
	}
	_ = d.WriteJSON(w)
}

// writeTraceStoreMetrics appends the trace store's sampling stats to the
// Prometheus export.
func writeTraceStoreMetrics(w io.Writer, st obs.TraceStoreStats, kept int) {
	fmt.Fprintln(w, "# HELP llpmst_trace_total Lifetime trace store stats by kind.")
	fmt.Fprintln(w, "# TYPE llpmst_trace_total counter")
	for _, kv := range []struct {
		kind string
		v    int64
	}{
		{"started", st.Started},
		{"dropped_no_slot", st.DroppedNoSlot},
		{"finished", st.Finished},
		{"kept", st.Kept},
		{"kept_forced", st.KeptForced},
		{"kept_error", st.KeptError},
		{"kept_slow", st.KeptSlow},
		{"kept_sampled", st.KeptSampled},
	} {
		fmt.Fprintf(w, "llpmst_trace_total{kind=%q} %d\n", kv.kind, kv.v)
	}
	fmt.Fprintln(w, "# HELP llpmst_trace_kept Traces currently resident in the kept ring.")
	fmt.Fprintln(w, "# TYPE llpmst_trace_kept gauge")
	fmt.Fprintf(w, "llpmst_trace_kept %d\n", kept)
}
