package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"llpmst/internal/graph"
	"llpmst/internal/mst"
	"llpmst/internal/stream"
)

func jsonReq(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeJSON[T any](t *testing.T, rec *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding %q: %v", rec.Body.String(), err)
	}
	return v
}

func TestStreamCreateUpdateForest(t *testing.T) {
	h := testServer(t, nil).handler()

	// Create: 201, then an identical re-create acks with 200.
	rec := jsonReq(t, h, http.MethodPut, "/streams/s1", map[string]int{"vertices": 6})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	if rec := jsonReq(t, h, http.MethodPut, "/streams/s1", map[string]int{"vertices": 6}); rec.Code != http.StatusOK {
		t.Fatalf("idempotent create: %d %s", rec.Code, rec.Body)
	}
	// Shape mismatch: 409.
	if rec := jsonReq(t, h, http.MethodPut, "/streams/s1", map[string]int{"vertices": 7}); rec.Code != http.StatusConflict {
		t.Fatalf("conflicting create: %d %s", rec.Code, rec.Body)
	}
	// Bad ids and bodies: 400.
	if rec := jsonReq(t, h, http.MethodPut, "/streams/bad%2Fid", map[string]int{"vertices": 4}); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad id: %d", rec.Code)
	}
	if rec := jsonReq(t, h, http.MethodPut, "/streams/s2", map[string]int{"vertices": 0}); rec.Code != http.StatusBadRequest {
		t.Fatalf("zero vertices: %d", rec.Code)
	}

	// Apply a batch; the reply carries the canonical forest shape.
	up := updateRequest{Batch: 1, Ops: []stream.Op{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 5}, {U: 3, V: 4, W: 1},
	}}
	rec = jsonReq(t, h, http.MethodPost, "/streams/s1/update", up)
	if rec.Code != http.StatusOK {
		t.Fatalf("update: %d %s", rec.Code, rec.Body)
	}
	res := decodeJSON[stream.ApplyResult](t, rec)
	if res.Inserted != 4 || res.ForestEdges != 3 || res.Trees != 3 || res.Weight != 4 {
		t.Fatalf("apply result: %+v", res)
	}

	// Retrying the same batch ID is a duplicate ack, not a re-apply.
	rec = jsonReq(t, h, http.MethodPost, "/streams/s1/update", up)
	if res := decodeJSON[stream.ApplyResult](t, rec); !res.Duplicate {
		t.Fatalf("retry not duplicate: %+v", res)
	}

	// A delete with a forced replacement: dropping (0,1) pulls in (0,2).
	rec = jsonReq(t, h, http.MethodPost, "/streams/s1/update", updateRequest{
		Batch: 2, Ops: []stream.Op{{Delete: true, U: 0, V: 1, W: 1}},
	})
	if res := decodeJSON[stream.ApplyResult](t, rec); res.Deleted != 1 || res.Weight != 8 {
		t.Fatalf("delete result: %+v", res)
	}

	// Forest endpoint agrees with a from-scratch Kruskal oracle.
	rec = jsonReq(t, h, http.MethodGet, "/streams/s1/forest", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("forest: %d %s", rec.Code, rec.Body)
	}
	forest := decodeJSON[streamForestReply](t, rec)
	oracle := mst.Kruskal(graph.MustFromEdges(1, 6, []graph.Edge{
		{U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 5}, {U: 3, V: 4, W: 1},
	}))
	wantWeight := oracle.Weight
	if forest.LastBatch != 2 || forest.Weight != wantWeight || len(forest.Forest) != len(oracle.EdgeIDs) {
		t.Fatalf("forest reply %+v, oracle weight %v with %d edges", forest, wantWeight, len(oracle.EdgeIDs))
	}

	// Validation errors surface as 400 with the op pinpointed.
	rec = jsonReq(t, h, http.MethodPost, "/streams/s1/update", updateRequest{
		Batch: 3, Ops: []stream.Op{{U: 0, V: 99, W: 1}},
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid op: %d %s", rec.Code, rec.Body)
	}
	// Unknown stream: 404 on update and forest.
	if rec := jsonReq(t, h, http.MethodPost, "/streams/nope/update", up); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown update: %d", rec.Code)
	}
	if rec := jsonReq(t, h, http.MethodGet, "/streams/nope/forest", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown forest: %d", rec.Code)
	}

	// Listing and stats.
	rec = jsonReq(t, h, http.MethodGet, "/streams", nil)
	var rows []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &rows); err != nil || len(rows) != 1 {
		t.Fatalf("list: %s (err=%v)", rec.Body, err)
	}
	rec = jsonReq(t, h, http.MethodGet, "/streams/s1", nil)
	info := decodeJSON[streamInfoReply](t, rec)
	if info.Vertices != 6 || info.LastBatch != 2 || info.Batches != 2 || info.Duplicates != 1 {
		t.Fatalf("info: %+v", info)
	}

	// Delete: 204, then 404.
	if rec := jsonReq(t, h, http.MethodDelete, "/streams/s1", nil); rec.Code != http.StatusNoContent {
		t.Fatalf("delete stream: %d", rec.Code)
	}
	if rec := jsonReq(t, h, http.MethodDelete, "/streams/s1", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("double delete: %d", rec.Code)
	}
}

// TestStreamPersistenceAcrossServers drives batches into a durable stream,
// tears the server down (without a graceful close — engines just drop), and
// checks a second server over the same directory recovers every batch.
func TestStreamPersistenceAcrossServers(t *testing.T) {
	dir := t.TempDir()
	mutate := func(cfg *serverConfig) {
		cfg.streams = streamConfig{dir: dir, sync: stream.SyncAlways, snapshotEvery: 3}
	}
	h := testServer(t, mutate).handler()
	if rec := jsonReq(t, h, http.MethodPut, "/streams/durable", map[string]int{"vertices": 8}); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	var lastWeight float64
	for b := 1; b <= 10; b++ {
		ops := []stream.Op{
			{U: uint32(b % 8), V: uint32((b + 3) % 8), W: float32(b)},
		}
		rec := jsonReq(t, h, http.MethodPost, "/streams/durable/update", updateRequest{Batch: uint64(b), Ops: ops})
		if rec.Code != http.StatusOK {
			t.Fatalf("batch %d: %d %s", b, rec.Code, rec.Body)
		}
		lastWeight = decodeJSON[stream.ApplyResult](t, rec).Weight
	}

	// Second server, same directory: recovery replays snapshot + WAL.
	h2 := testServer(t, mutate).handler()
	rec := jsonReq(t, h2, http.MethodGet, "/streams/durable/forest", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("recovered forest: %d %s", rec.Code, rec.Body)
	}
	forest := decodeJSON[streamForestReply](t, rec)
	if forest.LastBatch != 10 || forest.Weight != lastWeight {
		t.Fatalf("recovered %+v, want last_batch=10 weight=%v", forest, lastWeight)
	}
	info := decodeJSON[streamInfoReply](t, jsonReq(t, h2, http.MethodGet, "/streams/durable", nil))
	if info.Recovery == nil || info.Recovery.Torn {
		t.Fatalf("recovery report: %+v", info.Recovery)
	}
	// The recovered stream accepts the next batch and duplicates still ack.
	rec = jsonReq(t, h2, http.MethodPost, "/streams/durable/update", updateRequest{Batch: 10})
	if res := decodeJSON[stream.ApplyResult](t, rec); !res.Duplicate {
		t.Fatalf("retry after recovery: %+v", res)
	}
	rec = jsonReq(t, h2, http.MethodPost, "/streams/durable/update", updateRequest{
		Batch: 11, Ops: []stream.Op{{U: 0, V: 7, W: 0.5}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch 11 after recovery: %d %s", rec.Code, rec.Body)
	}
}

// TestHealthzRecoveringWindow pins the health gate: before recovery finishes
// /healthz and stream routes answer 503 "recovering"; after, 200 "ok".
func TestHealthzRecoveringWindow(t *testing.T) {
	srv := newServer(serverConfig{
		workers: 1, deadline: time.Second, maxBody: 1 << 20,
		streams: streamConfig{recoverHold: 50 * time.Millisecond},
	})
	h := srv.handler()

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec
	}
	rec := get("/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz before recovery: %d", rec.Code)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil || health.Status != "recovering" {
		t.Fatalf("healthz body %q (err=%v)", rec.Body, err)
	}
	if rec := get("/streams"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("streams before recovery: %d", rec.Code)
	}
	if rec := jsonReq(t, h, http.MethodPut, "/streams/x", map[string]int{"vertices": 4}); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("create before recovery: %d", rec.Code)
	}

	done := make(chan struct{})
	go func() {
		srv.streams.recoverAll(func(string, ...any) {})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("recovery never finished")
	}
	rec = get("/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz after recovery: %d %s", rec.Code, rec.Body)
	}
	if rec := jsonReq(t, h, http.MethodPut, "/streams/x", map[string]int{"vertices": 4}); rec.Code != http.StatusCreated {
		t.Fatalf("create after recovery: %d %s", rec.Code, rec.Body)
	}
}

// TestStreamRecoveryScanSkipsJunk puts non-stream junk in the stream dir;
// recovery must skip it and still recover the real stream.
func TestStreamRecoveryScanSkipsJunk(t *testing.T) {
	dir := t.TempDir()
	mutate := func(cfg *serverConfig) {
		cfg.streams = streamConfig{dir: dir, sync: stream.SyncOff}
	}
	h := testServer(t, mutate).handler()
	if rec := jsonReq(t, h, http.MethodPut, "/streams/real", map[string]int{"vertices": 4}); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d", rec.Code)
	}
	if rec := jsonReq(t, h, http.MethodPost, "/streams/real/update", updateRequest{
		Batch: 1, Ops: []stream.Op{{U: 0, V: 1, W: 2}},
	}); rec.Code != http.StatusOK {
		t.Fatalf("update: %d", rec.Code)
	}

	// Junk: a stray file, a dir without meta, a dir with a bad meta.
	if err := os.WriteFile(filepath.Join(dir, "strayfile"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"no-meta", "bad-meta"} {
		if err := os.MkdirAll(filepath.Join(dir, d), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "bad-meta", "meta.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	h2 := testServer(t, mutate).handler()
	rows := decodeJSON[[]map[string]any](t, jsonReq(t, h2, http.MethodGet, "/streams", nil))
	if len(rows) != 1 || rows[0]["id"] != "real" {
		t.Fatalf("recovered streams: %v", rows)
	}
	forest := decodeJSON[streamForestReply](t, jsonReq(t, h2, http.MethodGet, "/streams/real/forest", nil))
	if forest.LastBatch != 1 || len(forest.Forest) != 1 {
		t.Fatalf("recovered forest: %+v", forest)
	}
}
