package main

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"llpmst/internal/gen"
	"llpmst/internal/graph"
	"llpmst/internal/obs"
)

// dimacsBody renders a small test graph in DIMACS form.
func dimacsBody(t *testing.T) []byte {
	t.Helper()
	g := gen.ErdosRenyi(1, 60, 240, gen.WeightUniform, 11)
	var buf bytes.Buffer
	if err := graph.WriteDIMACS(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// fetchTrace polls GET /traces/{id} until the trace seals: hedge losers can
// hold a trace open briefly after the response goes out.
func fetchTrace(t *testing.T, h http.Handler, id string) obs.TraceData {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/traces/"+id, nil))
		if rec.Code == http.StatusOK {
			var d obs.TraceData
			if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
				t.Fatalf("trace body: %v\n%s", err, rec.Body.String())
			}
			return d
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("trace %s never became fetchable", id)
	return obs.TraceData{}
}

func spanNames(d obs.TraceData) map[string]int {
	names := make(map[string]int)
	for _, sp := range d.Spans {
		names[sp.Name]++
	}
	return names
}

func TestSolveHonorsAndEchoesTraceparent(t *testing.T) {
	h := testServer(t, nil).handler()
	inTID := obs.NewTraceID()
	inbound := obs.FormatTraceparent(inTID, obs.SpanID{0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4}, obs.FlagSampled)

	req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(dimacsBody(t)))
	req.Header.Set("traceparent", inbound)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("solve: status %d: %s", rec.Code, rec.Body.String())
	}

	echo := rec.Header().Get("traceparent")
	gotTID, _, flags, ok := obs.ParseTraceparent(echo)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", echo)
	}
	if gotTID != inTID {
		t.Fatalf("response trace ID %v, want inbound %v", gotTID, inTID)
	}
	if flags&obs.FlagSampled == 0 {
		t.Fatalf("response flags %#x lost the sampled bit", flags)
	}

	d := fetchTrace(t, h, inTID.String())
	names := spanNames(d)
	if names["POST /solve"] != 1 {
		t.Fatalf("trace missing HTTP root span: %v", names)
	}
	if names["resilient.solve"] != 1 || names["resilient.leg"] < 1 {
		t.Fatalf("trace missing resilient spans: %v", names)
	}
	// The sampled flag also buys a per-request round summary from the
	// flight recorder.
	if names["algorithm.rounds"] != 1 {
		t.Fatalf("deep trace missing algorithm.rounds summary: %v", names)
	}
	if d.KeepReason != "forced" {
		t.Fatalf("keep reason %q, want forced (inbound sampled flag)", d.KeepReason)
	}

	// ?format=chrome renders the same trace for Perfetto.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/traces/"+inTID.String()+"?format=chrome", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("chrome format: status %d", rec.Code)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatalf("chrome trace is empty")
	}

	// The index lists the trace under recent.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/traces", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/traces: status %d", rec.Code)
	}
	var idx traceIndexReply
	if err := json.Unmarshal(rec.Body.Bytes(), &idx); err != nil {
		t.Fatalf("/traces body: %v", err)
	}
	var found bool
	for _, s := range idx.Recent {
		if s.TraceID == inTID.String() {
			found = true
		}
	}
	if !found {
		t.Fatalf("/traces recent does not list %s", inTID)
	}
}

func TestRegistrySolveTraceShowsCacheProvenance(t *testing.T) {
	h := testServer(t, nil).handler()
	if rec := do(h, http.MethodPut, "/graphs/g1", dimacsBody(t), nil); rec.Code != http.StatusCreated {
		t.Fatalf("put graph: status %d: %s", rec.Code, rec.Body.String())
	}

	solve := func() obs.TraceData {
		tid := obs.NewTraceID()
		hdr := map[string]string{"traceparent": obs.FormatTraceparent(tid, obs.SpanID{1}, obs.FlagSampled)}
		if rec := do(h, http.MethodPost, "/graphs/g1/solve", nil, hdr); rec.Code != http.StatusOK {
			t.Fatalf("registry solve: status %d: %s", rec.Code, rec.Body.String())
		}
		return fetchTrace(t, h, tid.String())
	}

	cacheAttr := func(d obs.TraceData) any {
		t.Helper()
		for _, sp := range d.Spans {
			if sp.Name == "registry.solve" {
				return sp.Attrs["cache"]
			}
		}
		t.Fatalf("trace has no registry.solve span: %+v", d.Spans)
		return nil
	}

	first := solve()
	if got := cacheAttr(first); got != "miss" {
		t.Fatalf("first solve cache attr = %v, want miss", got)
	}
	if names := spanNames(first); names["registry.flight"] != 1 {
		t.Fatalf("miss trace missing registry.flight span: %v", names)
	}
	second := solve()
	if got := cacheAttr(second); got != "hit" {
		t.Fatalf("second solve cache attr = %v, want hit", got)
	}
}

func TestRequestLogCarriesTraceID(t *testing.T) {
	var logBuf bytes.Buffer
	var mu sync.Mutex
	srv := testServer(t, func(cfg *serverConfig) {
		cfg.logW = &syncWriter{mu: &mu, w: &logBuf}
		cfg.logFormat = "json"
	})
	h := srv.handler()

	tid := obs.NewTraceID()
	req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(dimacsBody(t)))
	req.Header.Set("traceparent", obs.FormatTraceparent(tid, obs.SpanID{1}, 0))
	req.Header.Set("X-API-Key", "team-a")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("solve: status %d", rec.Code)
	}

	mu.Lock()
	line := logBuf.String()
	mu.Unlock()
	var entry map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &entry); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, line)
	}
	if entry["msg"] != "request" || entry["method"] != "POST" || entry["route"] != "POST /solve" {
		t.Fatalf("log line fields wrong: %v", entry)
	}
	if entry["status"] != float64(200) || entry["tenant"] != "team-a" {
		t.Fatalf("log line status/tenant wrong: %v", entry)
	}
	if entry["trace_id"] != tid.String() {
		t.Fatalf("log line trace_id = %v, want %s", entry["trace_id"], tid)
	}
	if entry["level"] != "INFO" {
		t.Fatalf("2xx logged at %v, want INFO", entry["level"])
	}
}

func TestRequestLogLevelThreshold(t *testing.T) {
	var logBuf bytes.Buffer
	var mu sync.Mutex
	srv := testServer(t, func(cfg *serverConfig) {
		cfg.logW = &syncWriter{mu: &mu, w: &logBuf}
		cfg.logLevel = slog.LevelWarn
	})
	h := srv.handler()

	// A 404 logs at Info, which a warn threshold suppresses.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/graphs/missing", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("missing graph: status %d", rec.Code)
	}
	mu.Lock()
	got := logBuf.String()
	mu.Unlock()
	if got != "" {
		t.Fatalf("-log-level=warn still logged a 404: %q", got)
	}
}

// syncWriter serializes writes; slog handlers already lock, but the test
// reads the buffer from the request goroutine's sibling.
type syncWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func TestMetricsContentTypeAndREDSeries(t *testing.T) {
	h := testServer(t, nil).handler()
	if rec := postGraph(t, h, "/solve", dimacsBody(t)); rec.Code != http.StatusOK {
		t.Fatalf("solve: status %d", rec.Code)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("metrics Content-Type = %q, want the 0.0.4 exposition type with charset", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`llpmst_http_requests_total{route="POST /solve",code="2xx"} 1`,
		`llpmst_http_request_duration_seconds_count{route="POST /solve"} 1`,
		`llpmst_trace_total{kind="started"}`,
		`llpmst_trace_total{kind="finished"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q\n%s", want, body)
		}
	}
}

func TestBadTraceIDAndUnknownTrace(t *testing.T) {
	h := testServer(t, nil).handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/traces/nope", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed trace id: status %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/traces/"+obs.NewTraceID().String(), nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown trace id: status %d, want 404", rec.Code)
	}
}
