package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"llpmst/internal/fault"
	"llpmst/internal/gen"
	"llpmst/internal/graph"
	"llpmst/internal/mst"
	"llpmst/internal/resilient"
)

func testServer(t *testing.T, mutate func(*serverConfig)) *server {
	t.Helper()
	cfg := serverConfig{
		workers:     2,
		deadline:    10 * time.Second,
		maxDeadline: 30 * time.Second,
		maxBody:     64 << 20,
		resilient:   resilient.Config{Workers: 2, VerifyRate: 1},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return newServer(cfg)
}

func postGraph(t *testing.T, h http.Handler, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestSolveDIMACSAndBinary(t *testing.T) {
	g := gen.ErdosRenyi(1, 200, 800, gen.WeightUniform, 3)
	oracle := mst.Kruskal(g)

	var dimacs, bin bytes.Buffer
	if err := graph.WriteDIMACS(&dimacs, g); err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}

	h := testServer(t, nil).handler()
	for name, body := range map[string][]byte{"dimacs": dimacs.Bytes(), "binary": bin.Bytes()} {
		rec := postGraph(t, h, "/solve?edges=1", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, rec.Code, rec.Body.String())
		}
		var reply solveReply
		if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
			t.Fatalf("%s: bad json: %v", name, err)
		}
		if reply.Vertices != g.NumVertices() || reply.Edges != g.NumEdges() {
			t.Fatalf("%s: echoed wrong graph size: %+v", name, reply)
		}
		if reply.ForestEdges != len(oracle.EdgeIDs) || reply.Weight != oracle.Weight {
			t.Fatalf("%s: forest differs from oracle: %+v", name, reply)
		}
		if len(reply.EdgeIDs) != len(oracle.EdgeIDs) {
			t.Fatalf("%s: ?edges=1 returned %d ids, want %d", name, len(reply.EdgeIDs), len(oracle.EdgeIDs))
		}
		// The returned ids must be verifiable: rebuild and check.
		f := mst.ForestFromEdgeIDs(g, reply.EdgeIDs)
		if err := mst.CheckForest(g, f); err != nil {
			t.Fatalf("%s: returned edge ids are unsound: %v", name, err)
		}
	}
}

func TestSolveRejectsGarbageAndWrongMethod(t *testing.T) {
	h := testServer(t, nil).handler()
	if rec := postGraph(t, h, "/solve", []byte("this is not a graph")); rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d", rec.Code)
	}
	if rec := postGraph(t, h, "/solve", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty body: status %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/solve", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /solve: status %d", rec.Code)
	}
}

func TestSolveBadDeadlineParam(t *testing.T) {
	g := gen.ErdosRenyi(1, 50, 150, gen.WeightUniform, 4)
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	h := testServer(t, nil).handler()
	if rec := postGraph(t, h, "/solve?deadline=yesterday", buf.Bytes()); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad deadline: status %d: %s", rec.Code, rec.Body.String())
	}
	if rec := postGraph(t, h, "/solve?deadline=5s", buf.Bytes()); rec.Code != http.StatusOK {
		t.Fatalf("good deadline: status %d: %s", rec.Code, rec.Body.String())
	}
}

func TestHealthzFlipsWhenDraining(t *testing.T) {
	s := testServer(t, nil)
	h := s.handler()

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"status":"ok"`) {
		t.Fatalf("healthy: status %d body %s", rec.Code, rec.Body.String())
	}

	s.draining.Store(true)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), `"status":"draining"`) {
		t.Fatalf("draining: status %d body %s", rec.Code, rec.Body.String())
	}

	// Draining also sheds new solves with a Retry-After.
	rec = postGraph(t, h, "/solve", []byte("GPLL"))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("solve while draining: status %d", rec.Code)
	}
}

func TestMetricsReportBreakersAndRunnerStats(t *testing.T) {
	g := gen.ErdosRenyi(1, 100, 400, gen.WeightUniform, 5)
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	s := testServer(t, nil)
	h := s.handler()
	if rec := postGraph(t, h, "/solve", buf.Bytes()); rec.Code != http.StatusOK {
		t.Fatalf("solve: status %d: %s", rec.Code, rec.Body.String())
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"llpmst_breaker_state{algorithm=",
		"llpmst_breaker_trips_total{algorithm=",
		`llpmst_resilient_total{kind="solves"} 1`,
		"llpmst_events_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics payload missing %q:\n%s", want, body)
		}
	}
}

func TestSolveShedsUnderConcurrencyLimit(t *testing.T) {
	g := gen.ErdosRenyi(1, 50, 150, gen.WeightUniform, 6)
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	s := testServer(t, func(cfg *serverConfig) {
		cfg.resilient.MaxConcurrent = 1
		// Every leg stalls ~1-2s, so the slot-holding solve below stays in
		// flight long enough for the second request to be shed.
		cfg.resilient.Chaos = &resilient.Chaos{
			Plan: fault.Plan{Seed: 1, Default: fault.Probs{Delay: 1, MaxDelay: 2}},
			Unit: time.Second,
		}
	})
	// Exhaust the single admission slot with a stalled solve, then watch
	// HTTP shed.
	release := grabSlot(t, s)
	defer release()
	rec := postGraph(t, s.handler(), "/solve", buf.Bytes())
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("want 503 when the gate is full, got %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// grabSlot occupies the runner's only admission slot with a genuine
// concurrent solve (stalled by the server's chaos config) and returns a
// func that waits for it to finish.
func grabSlot(t *testing.T, s *server) (release func()) {
	t.Helper()
	g := gen.ErdosRenyi(1, 400, 1600, gen.WeightUniform, 7)
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	started := make(chan struct{})
	go func() {
		defer close(done)
		req := httptest.NewRequest(http.MethodPost, "/solve?deadline=10s", bytes.NewReader(buf.Bytes()))
		rec := httptest.NewRecorder()
		close(started)
		s.handler().ServeHTTP(rec, req)
	}()
	<-started
	// Wait until the in-flight solve actually holds the slot.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.runner.Stats().Solves > 0 {
			break
		}
		select {
		case <-done:
			return func() {}
		default:
		}
		time.Sleep(100 * time.Microsecond)
	}
	return func() { <-done }
}
