package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"llpmst/internal/fault"
	"llpmst/internal/gen"
	"llpmst/internal/graph"
	"llpmst/internal/mst"
	"llpmst/internal/resilient"
)

func testServer(t *testing.T, mutate func(*serverConfig)) *server {
	t.Helper()
	cfg := serverConfig{
		workers:     2,
		deadline:    10 * time.Second,
		maxDeadline: 30 * time.Second,
		maxBody:     64 << 20,
		logW:        io.Discard, // request log is asserted via a buffer where a test cares
		resilient:   resilient.Config{Workers: 2, VerifyRate: 1},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv := newServer(cfg)
	// Run stream recovery synchronously so handlers are ready immediately;
	// the recovering-window test builds its server without this.
	srv.streams.recoverAll(t.Logf)
	return srv
}

func postGraph(t *testing.T, h http.Handler, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestSolveDIMACSAndBinary(t *testing.T) {
	g := gen.ErdosRenyi(1, 200, 800, gen.WeightUniform, 3)
	oracle := mst.Kruskal(g)

	var dimacs, bin bytes.Buffer
	if err := graph.WriteDIMACS(&dimacs, g); err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}

	h := testServer(t, nil).handler()
	for name, body := range map[string][]byte{"dimacs": dimacs.Bytes(), "binary": bin.Bytes()} {
		rec := postGraph(t, h, "/solve?edges=1", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, rec.Code, rec.Body.String())
		}
		var reply solveReply
		if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
			t.Fatalf("%s: bad json: %v", name, err)
		}
		if reply.Vertices != g.NumVertices() || reply.Edges != g.NumEdges() {
			t.Fatalf("%s: echoed wrong graph size: %+v", name, reply)
		}
		if reply.ForestEdges != len(oracle.EdgeIDs) || reply.Weight != oracle.Weight {
			t.Fatalf("%s: forest differs from oracle: %+v", name, reply)
		}
		if len(reply.EdgeIDs) != len(oracle.EdgeIDs) {
			t.Fatalf("%s: ?edges=1 returned %d ids, want %d", name, len(reply.EdgeIDs), len(oracle.EdgeIDs))
		}
		// The returned ids must be verifiable: rebuild and check.
		f := mst.ForestFromEdgeIDs(g, reply.EdgeIDs)
		if err := mst.CheckForest(g, f); err != nil {
			t.Fatalf("%s: returned edge ids are unsound: %v", name, err)
		}
	}
}

func TestSolveRejectsGarbageAndWrongMethod(t *testing.T) {
	h := testServer(t, nil).handler()
	if rec := postGraph(t, h, "/solve", []byte("this is not a graph")); rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d", rec.Code)
	}
	if rec := postGraph(t, h, "/solve", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty body: status %d", rec.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/solve", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /solve: status %d", rec.Code)
	}
}

func TestSolveBadDeadlineParam(t *testing.T) {
	g := gen.ErdosRenyi(1, 50, 150, gen.WeightUniform, 4)
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	h := testServer(t, nil).handler()
	if rec := postGraph(t, h, "/solve?deadline=yesterday", buf.Bytes()); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad deadline: status %d: %s", rec.Code, rec.Body.String())
	}
	if rec := postGraph(t, h, "/solve?deadline=5s", buf.Bytes()); rec.Code != http.StatusOK {
		t.Fatalf("good deadline: status %d: %s", rec.Code, rec.Body.String())
	}
}

func TestHealthzFlipsWhenDraining(t *testing.T) {
	s := testServer(t, nil)
	h := s.handler()

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"status":"ok"`) {
		t.Fatalf("healthy: status %d body %s", rec.Code, rec.Body.String())
	}

	s.draining.Store(true)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), `"status":"draining"`) {
		t.Fatalf("draining: status %d body %s", rec.Code, rec.Body.String())
	}

	// Draining also sheds new solves with a Retry-After.
	rec = postGraph(t, h, "/solve", []byte("GPLL"))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("solve while draining: status %d", rec.Code)
	}
}

func TestMetricsReportBreakersAndRunnerStats(t *testing.T) {
	g := gen.ErdosRenyi(1, 100, 400, gen.WeightUniform, 5)
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	s := testServer(t, nil)
	h := s.handler()
	if rec := postGraph(t, h, "/solve", buf.Bytes()); rec.Code != http.StatusOK {
		t.Fatalf("solve: status %d: %s", rec.Code, rec.Body.String())
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"llpmst_breaker_state{algorithm=",
		"llpmst_breaker_trips_total{algorithm=",
		`llpmst_resilient_total{kind="solves"} 1`,
		"llpmst_events_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics payload missing %q:\n%s", want, body)
		}
	}
}

func TestSolveShedsUnderConcurrencyLimit(t *testing.T) {
	g := gen.ErdosRenyi(1, 50, 150, gen.WeightUniform, 6)
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	s := testServer(t, func(cfg *serverConfig) {
		cfg.resilient.MaxConcurrent = 1
		// Every leg stalls ~1-2s, so the slot-holding solve below stays in
		// flight long enough for the second request to be shed.
		cfg.resilient.Chaos = &resilient.Chaos{
			Plan: fault.Plan{Seed: 1, Default: fault.Probs{Delay: 1, MaxDelay: 2}},
			Unit: time.Second,
		}
	})
	// Exhaust the single admission slot with a stalled solve, then watch
	// HTTP shed.
	release := grabSlot(t, s)
	defer release()
	rec := postGraph(t, s.handler(), "/solve", buf.Bytes())
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("want 503 when the gate is full, got %d: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
}

// grabSlot occupies the runner's only admission slot with a genuine
// concurrent solve (stalled by the server's chaos config) and returns a
// func that waits for it to finish.
func grabSlot(t *testing.T, s *server) (release func()) {
	t.Helper()
	g := gen.ErdosRenyi(1, 400, 1600, gen.WeightUniform, 7)
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	started := make(chan struct{})
	go func() {
		defer close(done)
		req := httptest.NewRequest(http.MethodPost, "/solve?deadline=10s", bytes.NewReader(buf.Bytes()))
		rec := httptest.NewRecorder()
		close(started)
		s.handler().ServeHTTP(rec, req)
	}()
	<-started
	// Wait until the in-flight solve actually holds the slot.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.runner.Stats().Solves > 0 {
			break
		}
		select {
		case <-done:
			return func() {}
		default:
		}
		time.Sleep(100 * time.Microsecond)
	}
	return func() { <-done }
}

// TestEveryRouteMethodMatrix pins the method-scoping behaviour for the
// whole route table: allowed methods never yield 405, every other method
// yields 405 with an Allow header — not the 404 the old mux produced.
func TestEveryRouteMethodMatrix(t *testing.T) {
	h := testServer(t, nil).handler()
	routes := []struct {
		path    string
		allowed map[string]bool
	}{
		{"/solve", map[string]bool{http.MethodPost: true}},
		{"/graphs", map[string]bool{http.MethodGet: true, http.MethodHead: true}},
		{"/graphs/some-id", map[string]bool{http.MethodPut: true, http.MethodGet: true, http.MethodHead: true, http.MethodDelete: true}},
		{"/graphs/some-id/solve", map[string]bool{http.MethodPost: true}},
		{"/streams", map[string]bool{http.MethodGet: true, http.MethodHead: true}},
		{"/streams/some-id", map[string]bool{http.MethodPut: true, http.MethodGet: true, http.MethodHead: true, http.MethodDelete: true}},
		{"/streams/some-id/update", map[string]bool{http.MethodPost: true}},
		{"/streams/some-id/forest", map[string]bool{http.MethodGet: true, http.MethodHead: true}},
		{"/streams/some-id/promote", map[string]bool{http.MethodPost: true}},
		{"/replica/some-id/connect", map[string]bool{http.MethodPost: true}},
		{"/replica/some-id/ship", map[string]bool{http.MethodPost: true}},
		{"/replica/some-id/snapshot", map[string]bool{http.MethodPost: true}},
		{"/replica/some-id/hw", map[string]bool{http.MethodGet: true, http.MethodHead: true}},
		{"/traces", map[string]bool{http.MethodGet: true, http.MethodHead: true}},
		{"/traces/some-id", map[string]bool{http.MethodGet: true, http.MethodHead: true}},
		{"/healthz", map[string]bool{http.MethodGet: true, http.MethodHead: true}},
		{"/metrics", map[string]bool{http.MethodGet: true, http.MethodHead: true}},
	}
	methods := []string{
		http.MethodGet, http.MethodHead, http.MethodPost,
		http.MethodPut, http.MethodDelete, http.MethodPatch,
	}
	for _, rt := range routes {
		for _, method := range methods {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(method, rt.path, nil))
			if rt.allowed[method] {
				// Allowed methods reach their handler; the status may still
				// be 404 (unregistered id) or 400, but never 405.
				if rec.Code == http.StatusMethodNotAllowed {
					t.Errorf("%s %s: status %d for an allowed method", method, rt.path, rec.Code)
				}
				continue
			}
			if rec.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", method, rt.path, rec.Code)
			}
			if rec.Header().Get("Allow") == "" {
				t.Errorf("%s %s: 405 without an Allow header", method, rt.path)
			}
		}
	}
	// Unknown routes are still 404, whatever the method.
	for _, method := range methods {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(method, "/nope", nil))
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s /nope: status %d, want 404", method, rec.Code)
		}
	}
}

// do runs one request against the handler and returns the recorder.
func do(h http.Handler, method, path string, body []byte, header map[string]string) *httptest.ResponseRecorder {
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	for k, v := range header {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func encodeBinary(t *testing.T, g *graph.CSR) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRegistryEndpointsLifecycle(t *testing.T) {
	g := gen.ErdosRenyi(1, 150, 600, gen.WeightUniform, 11)
	oracle := mst.Kruskal(g)
	body := encodeBinary(t, g)
	h := testServer(t, nil).handler()

	// Register.
	rec := do(h, http.MethodPut, "/graphs/road", body, nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("put: status %d: %s", rec.Code, rec.Body.String())
	}
	var info struct {
		ID       string `json:"id"`
		Version  uint64 `json:"version"`
		Vertices int    `json:"vertices"`
		Edges    int    `json:"edges"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.ID != "road" || info.Version != 1 || info.Vertices != g.NumVertices() || info.Edges != g.NumEdges() {
		t.Fatalf("put reply: %+v", info)
	}

	// Read back, individually and in the listing.
	if rec := do(h, http.MethodGet, "/graphs/road", nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("get: status %d", rec.Code)
	}
	rec = do(h, http.MethodGet, "/graphs", nil, nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"id":"road"`) {
		t.Fatalf("list: status %d body %s", rec.Code, rec.Body.String())
	}

	// Solve: first fresh, second cached, both the oracle forest.
	for i, wantCached := range []bool{false, true} {
		rec := do(h, http.MethodPost, "/graphs/road/solve", nil, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("solve %d: status %d: %s", i, rec.Code, rec.Body.String())
		}
		var reply registrySolveReply
		if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
			t.Fatal(err)
		}
		if reply.GraphID != "road" || reply.GraphVersion != 1 || reply.Cached != wantCached {
			t.Fatalf("solve %d provenance: %+v", i, reply)
		}
		if reply.Weight != oracle.Weight || reply.ForestEdges != len(oracle.EdgeIDs) {
			t.Fatalf("solve %d forest differs from oracle: %+v", i, reply)
		}
	}

	// Re-register: version bumps, cache entry dies, old version is gone.
	if rec := do(h, http.MethodPut, "/graphs/road", body, nil); rec.Code != http.StatusCreated {
		t.Fatalf("re-put: status %d", rec.Code)
	}
	rec = do(h, http.MethodPost, "/graphs/road/solve", nil, nil)
	var reply registrySolveReply
	if err := json.Unmarshal(rec.Body.Bytes(), &reply); err != nil {
		t.Fatal(err)
	}
	if reply.GraphVersion != 2 || reply.Cached {
		t.Fatalf("solve after re-put: %+v", reply)
	}
	if rec := do(h, http.MethodPost, "/graphs/road/solve?version=1", nil, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("superseded version: status %d", rec.Code)
	}
	if rec := do(h, http.MethodPost, "/graphs/road/solve?version=2", nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("pinned current version: status %d", rec.Code)
	}

	// Errors: bad body, bad version, unknown ids, then delete.
	if rec := do(h, http.MethodPut, "/graphs/bad", []byte("junk"), nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("junk put: status %d", rec.Code)
	}
	if rec := do(h, http.MethodPost, "/graphs/road/solve?version=zero", nil, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad version param: status %d", rec.Code)
	}
	if rec := do(h, http.MethodGet, "/graphs/missing", nil, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("get missing: status %d", rec.Code)
	}
	if rec := do(h, http.MethodPost, "/graphs/missing/solve", nil, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("solve missing: status %d", rec.Code)
	}
	if rec := do(h, http.MethodDelete, "/graphs/road", nil, nil); rec.Code != http.StatusNoContent {
		t.Fatalf("delete: status %d", rec.Code)
	}
	if rec := do(h, http.MethodDelete, "/graphs/road", nil, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("double delete: status %d", rec.Code)
	}
}

func TestRegistryPutFromGraphDir(t *testing.T) {
	g := gen.ErdosRenyi(1, 80, 240, gen.WeightUniform, 12)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "g.llpg"), encodeBinary(t, g), 0o644); err != nil {
		t.Fatal(err)
	}

	// With -graph-dir unset, server-side loading is rejected.
	h := testServer(t, nil).handler()
	if rec := do(h, http.MethodPut, "/graphs/disk?path=g.llpg", nil, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("path without -graph-dir: status %d", rec.Code)
	}

	h = testServer(t, func(cfg *serverConfig) { cfg.graphDir = dir }).handler()
	rec := do(h, http.MethodPut, "/graphs/disk?path=g.llpg", nil, nil)
	if rec.Code != http.StatusCreated {
		t.Fatalf("disk put: status %d: %s", rec.Code, rec.Body.String())
	}
	if rec := do(h, http.MethodGet, "/graphs/disk", nil, nil); rec.Code != http.StatusOK {
		t.Fatalf("get after disk put: status %d", rec.Code)
	}
	// Escapes are rejected before touching the filesystem; misses are 404.
	if rec := do(h, http.MethodPut, "/graphs/evil?path=..%2Fsecret", nil, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("escaping path: status %d", rec.Code)
	}
	if rec := do(h, http.MethodPut, "/graphs/gone?path=missing.llpg", nil, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("missing file: status %d", rec.Code)
	}
}

func TestRegistrySolveQuota(t *testing.T) {
	g := gen.ErdosRenyi(1, 60, 180, gen.WeightUniform, 13)
	h := testServer(t, func(cfg *serverConfig) {
		cfg.quotaRate = 0.001 // one token, refilling ~every 17 minutes
		cfg.quotaBurst = 1
	}).handler()
	if rec := do(h, http.MethodPut, "/graphs/q", encodeBinary(t, g), nil); rec.Code != http.StatusCreated {
		t.Fatalf("put: status %d", rec.Code)
	}

	alice := map[string]string{"X-API-Key": "alice"}
	if rec := do(h, http.MethodPost, "/graphs/q/solve", nil, alice); rec.Code != http.StatusOK {
		t.Fatalf("first solve: status %d: %s", rec.Code, rec.Body.String())
	}
	rec := do(h, http.MethodPost, "/graphs/q/solve", nil, alice)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota solve: status %d, want 429", rec.Code)
	}
	retry, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Fatalf("429 Retry-After %q, want integral seconds >= 1", rec.Header().Get("Retry-After"))
	}
	// Alice's exhaustion does not touch Bob (cache hit, but still metered).
	if rec := do(h, http.MethodPost, "/graphs/q/solve", nil, map[string]string{"X-API-Key": "bob"}); rec.Code != http.StatusOK {
		t.Fatalf("other tenant: status %d", rec.Code)
	}
}

// TestRegistrySolveCollapsesParallelRequests is the HTTP-level mirror of
// the CI serve-smoke assertion: 50 parallel solves of a hot graph perform
// exactly one underlying solve, however the requests interleave (joiners
// share the flight, stragglers hit the completed cache).
func TestRegistrySolveCollapsesParallelRequests(t *testing.T) {
	g := gen.ErdosRenyi(1, 200, 800, gen.WeightUniform, 14)
	oracle := mst.Kruskal(g)
	s := testServer(t, nil)
	h := s.handler()
	if rec := do(h, http.MethodPut, "/graphs/hot", encodeBinary(t, g), nil); rec.Code != http.StatusCreated {
		t.Fatalf("put: status %d", rec.Code)
	}

	const parallel = 50
	var wg sync.WaitGroup
	codes := make([]int, parallel)
	weights := make([]float64, parallel)
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := do(h, http.MethodPost, "/graphs/hot/solve", nil, nil)
			codes[i] = rec.Code
			var reply registrySolveReply
			if rec.Code == http.StatusOK {
				if err := json.Unmarshal(rec.Body.Bytes(), &reply); err == nil {
					weights[i] = reply.Weight
				}
			}
		}(i)
	}
	wg.Wait()

	for i := 0; i < parallel; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if weights[i] != oracle.Weight {
			t.Fatalf("request %d: weight %g, want %g", i, weights[i], oracle.Weight)
		}
	}
	st := s.reg.Stats()
	if st.Solves != 1 {
		t.Fatalf("underlying solves = %d, want exactly 1 (stats %+v)", st.Solves, st)
	}
	if st.Hits+st.Shared != parallel-1 {
		t.Fatalf("hits(%d) + shared(%d) != %d", st.Hits, st.Shared, parallel-1)
	}

	// The collapse is visible in /metrics, as the CI smoke test asserts.
	rec := do(h, http.MethodGet, "/metrics", nil, nil)
	if !strings.Contains(rec.Body.String(), `llpmst_registry_total{kind="solves"} 1`) {
		t.Fatalf("metrics missing the collapsed solve count:\n%s", rec.Body.String())
	}
}

// TestRegistryEndpointsShedWhileDraining pins the drain behaviour of the
// mutating registry routes.
func TestRegistryEndpointsShedWhileDraining(t *testing.T) {
	s := testServer(t, nil)
	h := s.handler()
	s.draining.Store(true)
	for _, rt := range []struct{ method, path string }{
		{http.MethodPut, "/graphs/x"},
		{http.MethodPost, "/graphs/x/solve"},
	} {
		rec := do(h, rt.method, rt.path, nil, nil)
		if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
			t.Fatalf("%s %s while draining: status %d", rt.method, rt.path, rec.Code)
		}
	}
}
