// Command mstserve serves minimum-spanning-forest solves over HTTP through
// the resilient execution engine: every request passes admission control,
// per-algorithm circuit breakers, hedged portfolio execution, a sampled
// verification gate, and — when the portfolio is exhausted — the sequential
// Kruskal fallback.
//
// Endpoints:
//
//	POST /solve    graph in the body (binary .llpg or DIMACS .gr, sniffed
//	               by magic); ?deadline=2s overrides the default budget,
//	               ?edges=1 includes the forest's edge ids in the reply
//	GET  /healthz  200 while serving, 503 once draining
//	GET  /metrics  Prometheus text: flight-recorder counters and spans,
//	               breaker states, and runner lifetime stats
//
// SIGTERM/SIGINT starts a graceful drain: /healthz flips to 503 so load
// balancers stop routing, in-flight solves (and their hedge losers) finish,
// and the process exits 0.
//
// The -chaos-* flags inject seeded panics and delays into portfolio legs
// (never the fallback) for resilience drills:
//
//	mstserve -addr :8080 -chaos-panic 0.2 -chaos-seed 7
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"llpmst/internal/fault"
	"llpmst/internal/graph"
	"llpmst/internal/mst"
	"llpmst/internal/obs"
	"llpmst/internal/resilient"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mstserve:", err)
		os.Exit(1)
	}
}

// serverConfig is everything run parses from flags, separated so tests can
// build servers directly.
type serverConfig struct {
	workers     int
	deadline    time.Duration
	maxDeadline time.Duration
	maxBody     int64
	resilient   resilient.Config
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mstserve", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8080", "listen address")
		workers       = fs.Int("workers", 0, "per-solve worker count (0 = GOMAXPROCS)")
		deadline      = fs.Duration("deadline", 30*time.Second, "default per-request solve budget")
		maxDeadline   = fs.Duration("max-deadline", 5*time.Minute, "cap on client-requested ?deadline")
		maxBody       = fs.Int64("max-body", 256<<20, "largest accepted request body in bytes")
		primary       = fs.String("primary", "", "primary algorithm (empty = auto by density)")
		backup        = fs.String("backup", "", "backup algorithm (empty = auto complement)")
		hedgeDelay    = fs.Duration("hedge-delay", 0, "fixed hedge delay (0 = adaptive from learned tails)")
		noHedge       = fs.Bool("no-hedge", false, "disable hedging; backup runs only after the primary fails")
		verifyRate    = fs.Float64("verify-rate", 0.05, "fraction of wins additionally checked with VerifyMinimum")
		maxConc       = fs.Int("max-concurrent", 0, "admitted solves in flight (0 = 2x GOMAXPROCS, <0 = unbounded)")
		memBudget     = fs.Int64("mem-budget", 0, "scratch-memory admission budget in bytes (0 = unlimited)")
		tripAfter     = fs.Int("breaker-trip", 3, "consecutive failures that open an algorithm's breaker")
		cooldown      = fs.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker waits before probing")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget after SIGTERM")
		chaosSeed     = fs.Int64("chaos-seed", 1, "seed for the chaos fault plan")
		chaosPanic    = fs.Float64("chaos-panic", 0, "probability a portfolio leg panics")
		chaosDelay    = fs.Float64("chaos-delay", 0, "probability a portfolio leg stalls")
		chaosMaxDelay = fs.Int("chaos-max-delay", 4, "stall length bound, in chaos units")
		chaosUnit     = fs.Duration("chaos-unit", 2*time.Millisecond, "duration of one chaos stall unit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, name := range []string{*primary, *backup} {
		if name != "" && !knownAlgorithm(mst.Algorithm(name)) {
			return fmt.Errorf("unknown algorithm %q (known: %v)", name, mst.Algorithms())
		}
	}

	cfg := serverConfig{
		workers:     *workers,
		deadline:    *deadline,
		maxDeadline: *maxDeadline,
		maxBody:     *maxBody,
		resilient: resilient.Config{
			Primary:           mst.Algorithm(*primary),
			Backup:            mst.Algorithm(*backup),
			Workers:           *workers,
			HedgeDelay:        *hedgeDelay,
			DisableHedge:      *noHedge,
			VerifyRate:        *verifyRate,
			MaxConcurrent:     *maxConc,
			MemoryBudgetBytes: *memBudget,
			BreakerTripAfter:  *tripAfter,
			BreakerCooldown:   *cooldown,
		},
	}
	if *chaosPanic > 0 || *chaosDelay > 0 {
		cfg.resilient.Chaos = &resilient.Chaos{
			Plan: fault.Plan{
				Seed:    *chaosSeed,
				Default: fault.Probs{Drop: *chaosPanic, Delay: *chaosDelay, MaxDelay: *chaosMaxDelay},
			},
			Unit: *chaosUnit,
		}
		fmt.Fprintf(stdout, "chaos enabled: panic=%.2f delay=%.2f seed=%d\n", *chaosPanic, *chaosDelay, *chaosSeed)
	}

	srv := newServer(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.handler()}
	fmt.Fprintf(stdout, "mstserve listening on %s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(stdout, "signal %v: draining\n", sig)
	}

	srv.draining.Store(true)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := srv.runner.Drain(ctx); err != nil {
		return fmt.Errorf("leg drain: %w", err)
	}
	st := srv.runner.Stats()
	fmt.Fprintf(stdout, "drained: %d solves, %d shed, %d hedges (%d won), %d fallbacks\n",
		st.Solves, st.Shed, st.HedgesLaunched, st.HedgeWins, st.FallbacksUsed)
	return nil
}

func knownAlgorithm(alg mst.Algorithm) bool {
	for _, a := range mst.Algorithms() {
		if a == alg {
			return true
		}
	}
	return false
}

// server bundles the resilient runner with its flight recorder and drain
// state.
type server struct {
	cfg      serverConfig
	runner   *resilient.Runner
	flight   *obs.FlightRecorder
	draining atomic.Bool
}

func newServer(cfg serverConfig) *server {
	flight := obs.NewFlightRecorder(1, 1<<16)
	rcfg := cfg.resilient
	rcfg.Observer = flight
	if cfg.deadline > 0 {
		rcfg.DefaultDeadline = cfg.deadline
	}
	return &server{cfg: cfg, runner: resilient.New(rcfg), flight: flight}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// solveReply is the /solve response body.
type solveReply struct {
	Vertices    int      `json:"vertices"`
	Edges       int      `json:"edges"`
	ForestEdges int      `json:"forest_edges"`
	Weight      float64  `json:"weight"`
	Algorithm   string   `json:"algorithm"`
	Hedged      bool     `json:"hedged"`
	HedgeWon    bool     `json:"hedge_won"`
	Fallback    bool     `json:"fallback_used"`
	Verified    bool     `json:"verified"`
	Attempts    int      `json:"attempts"`
	ElapsedMS   float64  `json:"elapsed_ms"`
	EdgeIDs     []uint32 `json:"edge_ids,omitempty"`
}

func (s *server) handleSolve(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST a graph (.llpg binary or DIMACS .gr) to /solve", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	g, err := s.readGraph(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	budget := s.cfg.deadline
	if raw := req.URL.Query().Get("deadline"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			http.Error(w, fmt.Sprintf("bad deadline %q", raw), http.StatusBadRequest)
			return
		}
		budget = d
	}
	if s.cfg.maxDeadline > 0 && budget > s.cfg.maxDeadline {
		budget = s.cfg.maxDeadline
	}
	ctx := req.Context()
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}

	res, err := s.runner.Solve(ctx, g)
	switch {
	case err == nil:
	case errors.Is(err, resilient.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
		return
	case errors.Is(err, context.Canceled):
		// The client went away; the status code is for the log line only.
		http.Error(w, err.Error(), 499)
		return
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	reply := solveReply{
		Vertices:    g.NumVertices(),
		Edges:       g.NumEdges(),
		ForestEdges: len(res.Forest.EdgeIDs),
		Weight:      res.Forest.Weight,
		Algorithm:   string(res.Algorithm),
		Hedged:      res.Hedged,
		HedgeWon:    res.HedgeWon,
		Fallback:    res.FallbackUsed,
		Verified:    res.Verified,
		Attempts:    res.Attempts,
		ElapsedMS:   float64(res.Elapsed) / float64(time.Millisecond),
	}
	if req.URL.Query().Get("edges") == "1" {
		reply.EdgeIDs = res.Forest.EdgeIDs
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(reply)
}

// readGraph sniffs the body's leading magic bytes: the binary format's
// "GPLL" header selects ReadBinary, anything else is parsed as DIMACS.
func (s *server) readGraph(req *http.Request) (*graph.CSR, error) {
	body := bufio.NewReaderSize(http.MaxBytesReader(nil, req.Body, s.cfg.maxBody), 1<<16)
	magic, err := body.Peek(4)
	if err != nil && len(magic) == 0 {
		return nil, fmt.Errorf("empty request body: %v", err)
	}
	if bytes.Equal(magic, []byte("GPLL")) {
		return graph.ReadBinary(s.cfg.workers, body)
	}
	return graph.ReadDIMACS(s.cfg.workers, body)
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	st := s.runner.Stats()
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"status\":%q,\"solves\":%d,\"shed\":%d}\n", status, st.Solves, st.Shed)
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	var buf bytes.Buffer
	if err := s.flight.WritePrometheus(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeBreakerMetrics(&buf, s.runner)
	writeRunnerMetrics(&buf, s.runner.Stats())
	_, _ = w.Write(buf.Bytes())
}

// writeBreakerMetrics appends per-algorithm breaker gauges to the
// flight-recorder export.
func writeBreakerMetrics(w io.Writer, r *resilient.Runner) {
	brs := r.Breakers()
	if len(brs) == 0 {
		return
	}
	fmt.Fprintln(w, "# HELP llpmst_breaker_state Circuit breaker position per algorithm (0=closed, 1=open, 2=half-open).")
	fmt.Fprintln(w, "# TYPE llpmst_breaker_state gauge")
	for _, b := range brs {
		fmt.Fprintf(w, "llpmst_breaker_state{algorithm=%q} %d\n", string(b.Algorithm), int(b.State))
	}
	fmt.Fprintln(w, "# HELP llpmst_breaker_trips_total Lifetime breaker open transitions per algorithm.")
	fmt.Fprintln(w, "# TYPE llpmst_breaker_trips_total counter")
	for _, b := range brs {
		fmt.Fprintf(w, "llpmst_breaker_trips_total{algorithm=%q} %d\n", string(b.Algorithm), b.Trips)
	}
}

// writeRunnerMetrics appends the runner's lifetime stats.
func writeRunnerMetrics(w io.Writer, st resilient.Stats) {
	fmt.Fprintln(w, "# HELP llpmst_resilient_total Lifetime resilient-runner stats by kind.")
	fmt.Fprintln(w, "# TYPE llpmst_resilient_total counter")
	for _, kv := range []struct {
		kind string
		v    int64
	}{
		{"solves", st.Solves},
		{"shed", st.Shed},
		{"legs_launched", st.LegsLaunched},
		{"hedges_launched", st.HedgesLaunched},
		{"hedge_wins", st.HedgeWins},
		{"fallbacks_used", st.FallbacksUsed},
		{"verify_failures", st.VerifyFailures},
		{"breaker_trips", st.BreakerTrips},
		{"losers_cancelled", st.LosersCancelled},
		{"losers_completed", st.LosersCompleted},
	} {
		fmt.Fprintf(w, "llpmst_resilient_total{kind=%q} %d\n", kv.kind, kv.v)
	}
}
