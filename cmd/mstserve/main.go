// Command mstserve serves minimum-spanning-forest solves over HTTP through
// the resilient execution engine: every request passes admission control,
// per-algorithm circuit breakers, hedged portfolio execution, a sampled
// verification gate, and — when the portfolio is exhausted — the sequential
// Kruskal fallback.
//
// Endpoints:
//
//	POST   /solve             one-shot: graph in the body (binary .llpg or
//	                          DIMACS .gr, sniffed by magic); ?deadline=2s
//	                          overrides the default budget, ?edges=1
//	                          includes the forest's edge ids in the reply
//	PUT    /graphs/{id}       register (or re-register, bumping the
//	                          version) a named graph: body as for /solve,
//	                          or ?path=rel.llpg to load server-side from
//	                          -graph-dir
//	GET    /graphs            list registered graphs
//	GET    /graphs/{id}       one graph's metadata
//	DELETE /graphs/{id}       unregister
//	POST   /graphs/{id}/solve solve a registered graph through the
//	                          version-keyed, singleflight-deduplicated
//	                          result cache; ?version= pins a version,
//	                          ?edges=1 as above. Tenant identity comes
//	                          from the X-API-Key header; per-tenant token
//	                          buckets (-quota-rate/-quota-burst) reject
//	                          over-quota tenants with 429 + Retry-After.
//	PUT    /streams/{id}      create a durable edge stream: body
//	                          {"vertices":N}; 201 on create, 200 if it
//	                          already exists with the same shape, 409 on
//	                          a shape mismatch
//	POST   /streams/{id}/update apply one batch of edge inserts/deletes:
//	                          body {"batch":ID,"ops":[{"delete":bool,
//	                          "u":..,"v":..,"w":..},...]}; batch IDs are
//	                          client-assigned and strictly increasing, so
//	                          retrying an acknowledged ID is idempotent
//	GET    /streams/{id}/forest the maintained minimum spanning forest;
//	                          ?min_batch=K is the read-your-writes fence:
//	                          a replica still behind batch K answers 503 +
//	                          Retry-After instead of a stale forest
//	GET    /streams           list streams
//	GET    /streams/{id}      one stream's stats, last recovery report,
//	                          and (under -replica-role) replication state
//	DELETE /streams/{id}      close the stream and delete its WAL/snapshot
//	POST   /streams/{id}/promote flip a follower stream to primary duty:
//	                          it stops accepting replicated records (the
//	                          deposed primary gets 410 and gives up) and
//	                          starts accepting client writes
//	POST   /replica/{id}/connect  replication handshake (follower role):
//	                          body {"vertices":N}; creates the stream when
//	                          missing and returns the high-water mark
//	POST   /replica/{id}/ship?prev=P  ingest one framed WAL record; 409
//	                          when the follower is not at P (the primary
//	                          re-runs catch-up), fsync'd before the ack
//	POST   /replica/{id}/snapshot ingest a full snapshot (catch-up past
//	                          the primary's WAL retention, or divergence)
//	GET    /replica/{id}/hw   heartbeat: refresh the lease clock and
//	                          report the follower's high-water mark
//	GET    /traces            trace index: recent, slowest, and errored
//	                          kept traces plus tail-sampling stats
//	GET    /traces/{id}       one kept trace's span tree as JSON;
//	                          ?format=chrome emits Chrome-trace JSON for
//	                          Perfetto / chrome://tracing
//	GET    /healthz           200 while serving; 503 while replaying
//	                          stream WALs at startup ("recovering") and
//	                          once draining ("draining")
//	GET    /metrics           Prometheus text: flight-recorder counters
//	                          and spans, breaker states, runner lifetime
//	                          stats, registry/cache/quota counters,
//	                          per-route RED series, trace-store sampling
//	                          stats, and per-stream gauges
//
// Every route is method-scoped: a wrong-method hit on a known route gets
// 405 with an Allow header, not 404.
//
// Every request runs under a trace: an inbound W3C traceparent header is
// honored (and echoed on the response), registry/resilient/stream layers
// contribute child spans, and the tail-sampling trace store (-trace-*)
// always keeps errored and slow-tail traces. One structured log line per
// request (-log-format, -log-level) carries the trace ID.
//
// SIGTERM/SIGINT starts a graceful drain: /healthz flips to 503 so load
// balancers stop routing, in-flight solves (and their hedge losers) finish,
// and the process exits 0.
//
// The -replica-* flags replicate every stream's WAL across servers. A
// primary (-replica-role=primary -replica-followers=http://b:8081,...)
// ships each batch's WAL record to its followers and, under
// -replica-quorum=quorum|all, acknowledges the write only once enough
// copies are fsync'd — otherwise the batch is rolled back locally and the
// client gets 503 + Retry-After (the same batch ID is safe to retry). A
// follower (-replica-role=follower) ingests records, rejects client
// writes with 503 until POST /streams/{id}/promote, and reports itself
// orphaned once the primary has been silent longer than -replica-lease.
//
// The -chaos-* flags inject seeded panics and delays into portfolio legs
// (never the fallback) for resilience drills:
//
//	mstserve -addr :8080 -chaos-panic 0.2 -chaos-seed 7
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"llpmst/internal/fault"
	"llpmst/internal/graph"
	"llpmst/internal/mst"
	"llpmst/internal/obs"
	"llpmst/internal/registry"
	"llpmst/internal/replica"
	"llpmst/internal/resilient"
	"llpmst/internal/stream"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mstserve:", err)
		os.Exit(1)
	}
}

// serverConfig is everything run parses from flags, separated so tests can
// build servers directly.
type serverConfig struct {
	workers     int
	deadline    time.Duration
	maxDeadline time.Duration
	maxBody     int64
	graphDir    string
	registryMem int64
	quotaRate   float64
	quotaBurst  float64
	traceCap    int
	traceSpans  int
	traceSample float64
	logFormat   string
	logLevel    slog.Level
	// logW receives the structured request log; nil means os.Stderr. Tests
	// inject a buffer here.
	logW      io.Writer
	resilient resilient.Config
	streams   streamConfig
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mstserve", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8080", "listen address")
		workers       = fs.Int("workers", 0, "per-solve worker count (0 = GOMAXPROCS)")
		deadline      = fs.Duration("deadline", 30*time.Second, "default per-request solve budget")
		maxDeadline   = fs.Duration("max-deadline", 5*time.Minute, "cap on client-requested ?deadline")
		maxBody       = fs.Int64("max-body", 256<<20, "largest accepted request body in bytes")
		graphDir      = fs.String("graph-dir", "", "directory server-side graph loads (?path=) may read from (empty = disabled)")
		registryMem   = fs.Int64("registry-mem", 0, "LRU bound on resident registered-graph bytes (0 = unbounded)")
		quotaRate     = fs.Float64("quota-rate", 0, "per-tenant solve quota in requests/second (0 = unlimited)")
		quotaBurst    = fs.Float64("quota-burst", 0, "per-tenant quota burst capacity (0 = max(1, rate))")
		primary       = fs.String("primary", "", "primary algorithm (empty = auto by density)")
		backup        = fs.String("backup", "", "backup algorithm (empty = auto complement)")
		hedgeDelay    = fs.Duration("hedge-delay", 0, "fixed hedge delay (0 = adaptive from learned tails)")
		noHedge       = fs.Bool("no-hedge", false, "disable hedging; backup runs only after the primary fails")
		verifyRate    = fs.Float64("verify-rate", 0.05, "fraction of wins additionally checked with VerifyMinimum")
		maxConc       = fs.Int("max-concurrent", 0, "admitted solves in flight (0 = 2x GOMAXPROCS, <0 = unbounded)")
		memBudget     = fs.Int64("mem-budget", 0, "scratch-memory admission budget in bytes (0 = unlimited)")
		tripAfter     = fs.Int("breaker-trip", 3, "consecutive failures that open an algorithm's breaker")
		cooldown      = fs.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker waits before probing")
		drainTimeout  = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget after SIGTERM")
		chaosSeed     = fs.Int64("chaos-seed", 1, "seed for the chaos fault plan")
		chaosPanic    = fs.Float64("chaos-panic", 0, "probability a portfolio leg panics")
		chaosDelay    = fs.Float64("chaos-delay", 0, "probability a portfolio leg stalls")
		chaosMaxDelay = fs.Int("chaos-max-delay", 4, "stall length bound, in chaos units")
		chaosUnit     = fs.Duration("chaos-unit", 2*time.Millisecond, "duration of one chaos stall unit")
		streamDir     = fs.String("stream-dir", "", "directory for stream WALs and snapshots (empty = streams are in-memory only)")
		streamSync    = fs.String("stream-sync", "always", "stream WAL fsync policy: always, interval, or off")
		streamSyncInt = fs.Duration("stream-sync-interval", 100*time.Millisecond, "flush period under -stream-sync=interval")
		snapshotEvery = fs.Int("snapshot-every", 1024, "batches between stream snapshot compactions (0 = default)")
		recoverHold   = fs.Duration("stream-recover-hold", 0, "artificially stretch startup recovery (drill knob for observing the 503 window)")
		traceCap      = fs.Int("trace-capacity", 512, "tail-sampled traces kept in memory")
		traceSpans    = fs.Int("trace-spans", 128, "span slots per trace (excess spans are counted, not stored)")
		traceSample   = fs.Float64("trace-sample", 0.1, "probability a healthy fast trace is kept anyway (errors and the slow tail are always kept)")
		logFormat     = fs.String("log-format", "text", "request log encoding: text or json")
		logLevel      = fs.String("log-level", "info", "request log threshold: debug, info, warn, or error")
		replicaRole   = fs.String("replica-role", "", "stream replication role: primary, follower, or empty (standalone)")
		replicaFoll   = fs.String("replica-followers", "", "comma-separated follower base URLs, e.g. http://host:8081 (primary role only)")
		replicaQuorum = fs.String("replica-quorum", "none", "copies required before a write acks: none, quorum, or all")
		replicaAckTO  = fs.Duration("replica-ack-timeout", 5*time.Second, "per-follower bound on one ship or heartbeat call")
		replicaHB     = fs.Duration("replica-heartbeat", time.Second, "liveness probe cadence for current followers")
		replicaLease  = fs.Duration("replica-lease", 3*time.Second, "primary silence a follower tolerates before reporting itself orphaned")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		return err
	}
	if *logFormat != "text" && *logFormat != "json" {
		return fmt.Errorf("unknown log format %q (want text or json)", *logFormat)
	}
	syncPolicy, err := stream.ParseSyncPolicy(*streamSync)
	if err != nil {
		return err
	}
	replicaLevel, err := replica.ParseLevel(*replicaQuorum)
	if err != nil {
		return err
	}
	rcfg := replicaConfig{
		role:       *replicaRole,
		level:      replicaLevel,
		ackTimeout: *replicaAckTO,
		heartbeat:  *replicaHB,
		lease:      *replicaLease,
	}
	for _, base := range strings.Split(*replicaFoll, ",") {
		if base = strings.TrimSpace(base); base != "" {
			rcfg.followers = append(rcfg.followers, strings.TrimRight(base, "/"))
		}
	}
	if err := rcfg.validate(); err != nil {
		return err
	}
	for _, name := range []string{*primary, *backup} {
		if name != "" && !knownAlgorithm(mst.Algorithm(name)) {
			return fmt.Errorf("unknown algorithm %q (known: %v)", name, mst.Algorithms())
		}
	}

	cfg := serverConfig{
		workers:     *workers,
		deadline:    *deadline,
		maxDeadline: *maxDeadline,
		maxBody:     *maxBody,
		graphDir:    *graphDir,
		registryMem: *registryMem,
		quotaRate:   *quotaRate,
		quotaBurst:  *quotaBurst,
		traceCap:    *traceCap,
		traceSpans:  *traceSpans,
		traceSample: *traceSample,
		logFormat:   *logFormat,
		logLevel:    level,
		streams: streamConfig{
			dir:           *streamDir,
			sync:          syncPolicy,
			syncInterval:  *streamSyncInt,
			snapshotEvery: *snapshotEvery,
			workers:       *workers,
			recoverHold:   *recoverHold,
			replica:       rcfg,
		},
		resilient: resilient.Config{
			Primary:           mst.Algorithm(*primary),
			Backup:            mst.Algorithm(*backup),
			Workers:           *workers,
			HedgeDelay:        *hedgeDelay,
			DisableHedge:      *noHedge,
			VerifyRate:        *verifyRate,
			MaxConcurrent:     *maxConc,
			MemoryBudgetBytes: *memBudget,
			BreakerTripAfter:  *tripAfter,
			BreakerCooldown:   *cooldown,
		},
	}
	if *chaosPanic > 0 || *chaosDelay > 0 {
		cfg.resilient.Chaos = &resilient.Chaos{
			Plan: fault.Plan{
				Seed:    *chaosSeed,
				Default: fault.Probs{Drop: *chaosPanic, Delay: *chaosDelay, MaxDelay: *chaosMaxDelay},
			},
			Unit: *chaosUnit,
		}
		fmt.Fprintf(stdout, "chaos enabled: panic=%.2f delay=%.2f seed=%d\n", *chaosPanic, *chaosDelay, *chaosSeed)
	}

	srv := newServer(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.handler()}
	fmt.Fprintf(stdout, "mstserve listening on %s\n", ln.Addr())
	// Stream recovery runs alongside serving: /healthz and stream routes
	// answer 503 until every persisted stream has been replayed.
	go srv.streams.recoverAll(func(format string, args ...any) {
		fmt.Fprintf(stdout, format+"\n", args...)
	})

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(stdout, "signal %v: draining\n", sig)
	}

	srv.draining.Store(true)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := srv.reg.Drain(ctx); err != nil {
		return fmt.Errorf("registry drain: %w", err)
	}
	if err := srv.runner.Drain(ctx); err != nil {
		return fmt.Errorf("leg drain: %w", err)
	}
	// Streams close last: HTTP traffic has stopped, so each engine can take
	// its final fsync and release its WAL cleanly.
	if err := srv.streams.closeAll(); err != nil {
		return fmt.Errorf("stream close: %w", err)
	}
	st := srv.runner.Stats()
	fmt.Fprintf(stdout, "drained: %d solves, %d shed, %d hedges (%d won), %d fallbacks\n",
		st.Solves, st.Shed, st.HedgesLaunched, st.HedgeWins, st.FallbacksUsed)
	return nil
}

func knownAlgorithm(alg mst.Algorithm) bool {
	for _, a := range mst.Algorithms() {
		if a == alg {
			return true
		}
	}
	return false
}

// server bundles the resilient runner, the graph registry, the flight
// recorder, the tracing spine (trace store, RED metrics, request log), and
// drain state.
type server struct {
	cfg      serverConfig
	runner   *resilient.Runner
	reg      *registry.Registry
	flight   *obs.FlightRecorder
	traces   *obs.TraceStore
	httpm    *obs.HTTPMetrics
	log      *slog.Logger
	streams  *streamManager
	draining atomic.Bool
}

func newServer(cfg serverConfig) *server {
	flight := obs.NewFlightRecorder(1, 1<<16)
	rcfg := cfg.resilient
	rcfg.Observer = flight
	if cfg.deadline > 0 {
		rcfg.DefaultDeadline = cfg.deadline
	}
	runner := resilient.New(rcfg)
	reg := registry.New(registry.Config{
		Solver:            runner,
		Workers:           cfg.workers,
		MemoryBudgetBytes: cfg.registryMem,
		SolveTimeout:      cfg.deadline,
		DefaultQuota:      registry.Quota{Rate: cfg.quotaRate, Burst: cfg.quotaBurst},
		Observer:          flight,
	})
	scfg := cfg.streams
	scfg.observer = flight
	if scfg.workers == 0 {
		scfg.workers = cfg.workers
	}
	traces := obs.NewTraceStore(obs.TraceStoreConfig{
		Capacity:   cfg.traceCap,
		SpanCap:    cfg.traceSpans,
		SampleRate: cfg.traceSample,
	})
	logW := cfg.logW
	if logW == nil {
		logW = os.Stderr
	}
	logger, err := obs.NewLogger(logW, cfg.logFormat, cfg.logLevel)
	if err != nil {
		// run() validates the flag; a direct construction with a bad format
		// falls back to text rather than failing the server.
		logger, _ = obs.NewLogger(logW, "", cfg.logLevel)
	}
	streams := newStreamManager(scfg)
	// Replication state changes (follower connected / current / demoted)
	// go through the structured request log.
	streams.logf = func(format string, args ...any) {
		logger.Info(fmt.Sprintf(format, args...))
	}
	return &server{
		cfg:     cfg,
		runner:  runner,
		reg:     reg,
		flight:  flight,
		traces:  traces,
		httpm:   obs.NewHTTPMetrics(),
		log:     logger,
		streams: streams,
	}
}

// handler builds the method-scoped route table. Method scoping is what
// turns a wrong-method hit on a known route into 405 + Allow instead of
// the 404 (or, worse, a 200 from a GET-assuming handler) it used to get.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	// Every route goes through the tracing middleware keyed by its pattern,
	// so the route label in metrics and logs is the registration string, not
	// a high-cardinality concrete path.
	for _, rt := range []struct {
		pattern string
		h       http.HandlerFunc
	}{
		{"POST /solve", s.handleSolve},
		{"PUT /graphs/{id}", s.handlePutGraph},
		{"GET /graphs/{id}", s.handleGetGraph},
		{"DELETE /graphs/{id}", s.handleDeleteGraph},
		{"GET /graphs", s.handleListGraphs},
		{"POST /graphs/{id}/solve", s.handleRegistrySolve},
		{"PUT /streams/{id}", s.handlePutStream},
		{"GET /streams/{id}", s.handleGetStream},
		{"DELETE /streams/{id}", s.handleDeleteStream},
		{"GET /streams", s.handleListStreams},
		{"POST /streams/{id}/update", s.handleStreamUpdate},
		{"GET /streams/{id}/forest", s.handleStreamForest},
		{"POST /streams/{id}/promote", s.handleStreamPromote},
		{"POST /replica/{id}/connect", s.handleReplicaConnect},
		{"POST /replica/{id}/ship", s.handleReplicaShip},
		{"POST /replica/{id}/snapshot", s.handleReplicaSnapshot},
		{"GET /replica/{id}/hw", s.handleReplicaHW},
		{"GET /traces", s.handleTraces},
		{"GET /traces/{id}", s.handleTraceByID},
		{"GET /healthz", s.handleHealthz},
		{"GET /metrics", s.handleMetrics},
	} {
		mux.HandleFunc(rt.pattern, s.traced(rt.pattern, rt.h))
	}
	return mux
}

// solveReply is the /solve response body.
type solveReply struct {
	Vertices    int      `json:"vertices"`
	Edges       int      `json:"edges"`
	ForestEdges int      `json:"forest_edges"`
	Weight      float64  `json:"weight"`
	Algorithm   string   `json:"algorithm"`
	Hedged      bool     `json:"hedged"`
	HedgeWon    bool     `json:"hedge_won"`
	Fallback    bool     `json:"fallback_used"`
	Verified    bool     `json:"verified"`
	Attempts    int      `json:"attempts"`
	ElapsedMS   float64  `json:"elapsed_ms"`
	EdgeIDs     []uint32 `json:"edge_ids,omitempty"`
}

func (s *server) handleSolve(w http.ResponseWriter, req *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	g, err := s.readGraph(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	budget, err := s.solveBudget(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx := req.Context()
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}

	res, err := s.runner.Solve(ctx, g)
	if err != nil {
		writeSolveError(w, err)
		return
	}

	reply := newSolveReply(g.NumVertices(), g.NumEdges(), res)
	if req.URL.Query().Get("edges") == "1" {
		reply.EdgeIDs = res.Forest.EdgeIDs
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(reply)
}

func newSolveReply(n, m int, res resilient.Result) solveReply {
	return solveReply{
		Vertices:    n,
		Edges:       m,
		ForestEdges: len(res.Forest.EdgeIDs),
		Weight:      res.Forest.Weight,
		Algorithm:   string(res.Algorithm),
		Hedged:      res.Hedged,
		HedgeWon:    res.HedgeWon,
		Fallback:    res.FallbackUsed,
		Verified:    res.Verified,
		Attempts:    res.Attempts,
		ElapsedMS:   float64(res.Elapsed) / float64(time.Millisecond),
	}
}

// solveBudget resolves the request's solve deadline: the server default,
// overridden by ?deadline=, capped at -max-deadline.
func (s *server) solveBudget(req *http.Request) (time.Duration, error) {
	budget := s.cfg.deadline
	if raw := req.URL.Query().Get("deadline"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			return 0, fmt.Errorf("bad deadline %q", raw)
		}
		budget = d
	}
	if s.cfg.maxDeadline > 0 && budget > s.cfg.maxDeadline {
		budget = s.cfg.maxDeadline
	}
	return budget, nil
}

// rejectDraining sheds the request with 503 + Retry-After once the server
// is draining; it reports whether it wrote a response.
func (s *server) rejectDraining(w http.ResponseWriter) bool {
	if !s.draining.Load() {
		return false
	}
	w.Header().Set("Retry-After", "1")
	http.Error(w, "draining", http.StatusServiceUnavailable)
	return true
}

// writeSolveError maps a solve pipeline error onto an HTTP status: quota
// 429 (with Retry-After), overload 503 (with Retry-After), missing graph
// 404, deadline 504, client-gone 499, anything else 500.
func writeSolveError(w http.ResponseWriter, err error) {
	var qe *registry.QuotaError
	switch {
	case errors.As(err, &qe):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(qe.RetryAfter)))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, resilient.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, registry.ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		// The client went away; the status code is for the log line only.
		http.Error(w, err.Error(), 499)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// retryAfterSeconds rounds a retry hint up to whole seconds, at least 1 —
// Retry-After carries integral seconds.
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// readGraph parses the request body (binary .llpg or DIMACS .gr, sniffed
// by magic) under the configured body limit.
func (s *server) readGraph(req *http.Request) (*graph.CSR, error) {
	return registry.Decode(s.cfg.workers, http.MaxBytesReader(nil, req.Body, s.cfg.maxBody))
}

// tenantFor resolves the request's tenant identity for quota accounting:
// the X-API-Key header when present, else the shared anonymous bucket.
func tenantFor(req *http.Request) string {
	if key := req.Header.Get("X-API-Key"); key != "" {
		return key
	}
	return "anonymous"
}

// handlePutGraph registers (or re-registers) a named graph from the
// request body, or — with ?path= and -graph-dir configured — from a file
// on the server's disk.
func (s *server) handlePutGraph(w http.ResponseWriter, req *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	id := req.PathValue("id")
	var info registry.GraphInfo
	var err error
	if rel := req.URL.Query().Get("path"); rel != "" {
		info, err = s.putFromDisk(id, rel)
	} else {
		info, err = s.reg.PutData(id, http.MaxBytesReader(nil, req.Body, s.cfg.maxBody))
	}
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, os.ErrNotExist) {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	_ = json.NewEncoder(w).Encode(info)
}

// putFromDisk loads a graph file from inside -graph-dir. The relative path
// must stay inside the directory; anything else is rejected before touching
// the filesystem.
func (s *server) putFromDisk(id, rel string) (registry.GraphInfo, error) {
	if s.cfg.graphDir == "" {
		return registry.GraphInfo{}, errors.New("server-side graph loading is disabled (start with -graph-dir)")
	}
	if !filepath.IsLocal(rel) {
		return registry.GraphInfo{}, fmt.Errorf("path %q escapes the graph directory", rel)
	}
	f, err := os.Open(filepath.Join(s.cfg.graphDir, rel))
	if err != nil {
		return registry.GraphInfo{}, err
	}
	defer f.Close()
	return s.reg.PutData(id, f)
}

func (s *server) handleGetGraph(w http.ResponseWriter, req *http.Request) {
	info, err := s.reg.Get(req.PathValue("id"))
	if err != nil {
		writeSolveError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(info)
}

func (s *server) handleDeleteGraph(w http.ResponseWriter, req *http.Request) {
	if err := s.reg.Delete(req.PathValue("id")); err != nil {
		writeSolveError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) handleListGraphs(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.reg.List())
}

// registrySolveReply is the /graphs/{id}/solve response body: the one-shot
// reply plus cache provenance.
type registrySolveReply struct {
	solveReply
	GraphID      string `json:"graph_id"`
	GraphVersion uint64 `json:"graph_version"`
	Cached       bool   `json:"cached"`
	Shared       bool   `json:"shared"`
}

// handleRegistrySolve answers a solve of a registered graph through the
// registry's quota gate, result cache, and singleflight group.
func (s *server) handleRegistrySolve(w http.ResponseWriter, req *http.Request) {
	if s.rejectDraining(w) {
		return
	}
	var version uint64
	if raw := req.URL.Query().Get("version"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil || v == 0 {
			http.Error(w, fmt.Sprintf("bad version %q", raw), http.StatusBadRequest)
			return
		}
		version = v
	}
	budget, err := s.solveBudget(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx := req.Context()
	if budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, budget)
		defer cancel()
	}

	res, err := s.reg.Solve(ctx, tenantFor(req), req.PathValue("id"), version, registry.SolveOptions{})
	if err != nil {
		writeSolveError(w, err)
		return
	}
	reply := registrySolveReply{
		solveReply:   newSolveReply(res.Vertices, res.Edges, res.Result),
		GraphID:      res.GraphID,
		GraphVersion: res.Version,
		Cached:       res.Cached,
		Shared:       res.Shared,
	}
	if req.URL.Query().Get("edges") == "1" {
		reply.EdgeIDs = res.Forest.EdgeIDs
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(reply)
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	st := s.runner.Stats()
	status := "ok"
	code := http.StatusOK
	if !s.streams.ready.Load() {
		// Startup recovery is still replaying stream WALs: keep load
		// balancers away until every acknowledged batch is back.
		status = "recovering"
		code = http.StatusServiceUnavailable
	}
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	if code == http.StatusServiceUnavailable {
		// Both 503 windows are transient (recovery finishes, the drained
		// process restarts); tell pollers when to come back.
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"status\":%q,\"solves\":%d,\"shed\":%d}\n", status, st.Solves, st.Shed)
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	// The Prometheus text exposition format requires the charset parameter;
	// scrapers are lenient but conformance checkers are not.
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var buf bytes.Buffer
	if err := s.flight.WritePrometheus(&buf); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeBreakerMetrics(&buf, s.runner)
	writeRunnerMetrics(&buf, s.runner.Stats())
	writeRegistryMetrics(&buf, s.reg.Stats())
	_ = s.httpm.WritePrometheus(&buf)
	writeTraceStoreMetrics(&buf, s.traces.Stats(), s.traces.KeptCount())
	writeStreamMetrics(&buf, s.streams)
	writeReplicaMetrics(&buf, s.streams)
	_, _ = w.Write(buf.Bytes())
}

// writeRegistryMetrics appends the graph registry's resident-state gauges
// and lifetime cache/quota counters.
func writeRegistryMetrics(w io.Writer, st registry.Stats) {
	fmt.Fprintln(w, "# HELP llpmst_registry_gauge Graph registry resident state by kind.")
	fmt.Fprintln(w, "# TYPE llpmst_registry_gauge gauge")
	fmt.Fprintf(w, "llpmst_registry_gauge{kind=\"graphs\"} %d\n", st.Graphs)
	fmt.Fprintf(w, "llpmst_registry_gauge{kind=\"resident_bytes\"} %d\n", st.ResidentBytes)
	fmt.Fprintf(w, "llpmst_registry_gauge{kind=\"cached_results\"} %d\n", st.CachedResults)
	fmt.Fprintln(w, "# HELP llpmst_registry_total Lifetime graph registry stats by kind.")
	fmt.Fprintln(w, "# TYPE llpmst_registry_total counter")
	for _, kv := range []struct {
		kind string
		v    int64
	}{
		{"puts", st.Puts},
		{"cache_hits", st.Hits},
		{"cache_misses", st.Misses},
		{"singleflight_shared", st.Shared},
		{"solves", st.Solves},
		{"evictions", st.Evictions},
		{"quota_shed", st.QuotaShed},
	} {
		fmt.Fprintf(w, "llpmst_registry_total{kind=%q} %d\n", kv.kind, kv.v)
	}
}

// writeBreakerMetrics appends per-algorithm breaker gauges to the
// flight-recorder export.
func writeBreakerMetrics(w io.Writer, r *resilient.Runner) {
	brs := r.Breakers()
	if len(brs) == 0 {
		return
	}
	fmt.Fprintln(w, "# HELP llpmst_breaker_state Circuit breaker position per algorithm (0=closed, 1=open, 2=half-open).")
	fmt.Fprintln(w, "# TYPE llpmst_breaker_state gauge")
	for _, b := range brs {
		fmt.Fprintf(w, "llpmst_breaker_state{algorithm=%q} %d\n", string(b.Algorithm), int(b.State))
	}
	fmt.Fprintln(w, "# HELP llpmst_breaker_trips_total Lifetime breaker open transitions per algorithm.")
	fmt.Fprintln(w, "# TYPE llpmst_breaker_trips_total counter")
	for _, b := range brs {
		fmt.Fprintf(w, "llpmst_breaker_trips_total{algorithm=%q} %d\n", string(b.Algorithm), b.Trips)
	}
}

// writeRunnerMetrics appends the runner's lifetime stats.
func writeRunnerMetrics(w io.Writer, st resilient.Stats) {
	fmt.Fprintln(w, "# HELP llpmst_resilient_total Lifetime resilient-runner stats by kind.")
	fmt.Fprintln(w, "# TYPE llpmst_resilient_total counter")
	for _, kv := range []struct {
		kind string
		v    int64
	}{
		{"solves", st.Solves},
		{"shed", st.Shed},
		{"legs_launched", st.LegsLaunched},
		{"hedges_launched", st.HedgesLaunched},
		{"hedge_wins", st.HedgeWins},
		{"fallbacks_used", st.FallbacksUsed},
		{"verify_failures", st.VerifyFailures},
		{"breaker_trips", st.BreakerTrips},
		{"losers_cancelled", st.LosersCancelled},
		{"losers_completed", st.LosersCompleted},
	} {
		fmt.Fprintf(w, "llpmst_resilient_total{kind=%q} %d\n", kv.kind, kv.v)
	}
}
