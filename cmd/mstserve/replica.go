package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"llpmst/internal/obs"
	"llpmst/internal/registry"
	"llpmst/internal/replica"
	"llpmst/internal/stream"
)

// replicaConfig is the -replica-* flag bundle. An empty role is a
// standalone server: no replication machinery is attached to streams at
// all.
type replicaConfig struct {
	role       string // "", "primary", or "follower"
	followers  []string
	level      replica.Level
	ackTimeout time.Duration
	heartbeat  time.Duration
	// lease is how long a follower tolerates silence from its primary
	// before reporting itself orphaned (lease_expired in stream info and
	// metrics). Promotion stays an explicit operator action.
	lease time.Duration
}

func (c replicaConfig) validate() error {
	switch c.role {
	case "", "primary", "follower":
	default:
		return fmt.Errorf("unknown replica role %q (want primary, follower, or empty)", c.role)
	}
	if c.role != "primary" && len(c.followers) > 0 {
		return errors.New("-replica-followers requires -replica-role=primary")
	}
	if c.role == "primary" && c.level != replica.ReplicateNone && len(c.followers) == 0 {
		return fmt.Errorf("-replica-quorum=%v requires at least one -replica-followers URL", c.level)
	}
	if c.role != "primary" && c.level != replica.ReplicateNone {
		return errors.New("-replica-quorum requires -replica-role=primary")
	}
	return nil
}

// attachReplication wires a freshly opened engine into this server's
// replication role: a primary gets a replica.Primary (which installs the
// engine's ack gate and starts follower maintenance loops), a follower
// gets a replica.Acceptor (the ingest side of the protocol). Standalone
// servers attach nothing. Called with m.mu held.
func (m *streamManager) attachReplication(id string, e *stream.Engine) error {
	switch m.cfg.replica.role {
	case "primary":
		specs := make([]replica.FollowerSpec, len(m.cfg.replica.followers))
		for i, base := range m.cfg.replica.followers {
			specs[i] = replica.FollowerSpec{
				Name: base,
				Dial: replica.HTTPDialer(base, id, m.replicaClient),
			}
		}
		p, err := replica.NewPrimary(e, replica.Config{
			Stream:     id,
			Level:      m.cfg.replica.level,
			AckTimeout: m.cfg.replica.ackTimeout,
			Heartbeat:  m.cfg.replica.heartbeat,
			Observer:   m.cfg.observer,
			Logf:       m.logf,
		}, specs)
		if err != nil {
			return err
		}
		m.primaries[id] = p
	case "follower":
		m.acceptors[id] = replica.NewAcceptor(e)
	}
	return nil
}

func (m *streamManager) primary(id string) *replica.Primary {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.primaries[id]
}

func (m *streamManager) acceptor(id string) *replica.Acceptor {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.acceptors[id]
}

// replicationInfo is the optional replication section of a stream's info
// reply: which role this server plays for the stream and how the other
// side of the protocol looks from here.
type replicationInfo struct {
	Role    string `json:"role"`
	Level   string `json:"level,omitempty"`
	Need    int    `json:"need,omitempty"`
	Healthy bool   `json:"healthy,omitempty"`
	// Followers is the primary's view of each follower.
	Followers []replica.FollowerStatus `json:"followers,omitempty"`
	// Promoted / SinceContactMS / LeaseExpired describe a follower.
	Promoted       bool    `json:"promoted,omitempty"`
	SinceContactMS float64 `json:"since_contact_ms,omitempty"`
	LeaseExpired   bool    `json:"lease_expired,omitempty"`
}

func (m *streamManager) replicationInfo(id string) *replicationInfo {
	switch m.cfg.replica.role {
	case "primary":
		p := m.primary(id)
		if p == nil {
			return nil
		}
		return &replicationInfo{
			Role:      "primary",
			Level:     p.Level().String(),
			Need:      p.Need(),
			Healthy:   p.Healthy(),
			Followers: p.Status(),
		}
	case "follower":
		a := m.acceptor(id)
		if a == nil {
			return nil
		}
		info := &replicationInfo{Role: "follower", Promoted: a.Promoted()}
		if since, ok := a.SinceContact(); ok {
			info.SinceContactMS = float64(since) / float64(time.Millisecond)
			info.LeaseExpired = m.cfg.replica.lease > 0 && since > m.cfg.replica.lease
		}
		return info
	}
	return nil
}

// --- follower-side protocol handlers ---
//
// These speak the wire format replica.HTTPConn expects: every response
// body is {"high_water":N} on success or {"error":"..."} on failure, with
// 409 reserved for contiguity violations (the primary re-runs catch-up)
// and 410 for "this follower is promoted" (the primary gives up on it).

type replicaReply struct {
	HighWater uint64 `json:"high_water"`
}

func writeReplicaJSONError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// writeReplicaError maps acceptor/engine errors onto protocol statuses.
func writeReplicaError(w http.ResponseWriter, err error) {
	var be *stream.BatchError
	switch {
	case errors.Is(err, stream.ErrOutOfOrder):
		writeReplicaJSONError(w, http.StatusConflict, err)
	case errors.Is(err, replica.ErrPromoted):
		writeReplicaJSONError(w, http.StatusGone, err)
	case errors.As(err, &be):
		writeReplicaJSONError(w, http.StatusBadRequest, err)
	case errors.Is(err, stream.ErrClosed), errors.Is(err, stream.ErrCrashed):
		w.Header().Set("Retry-After", "1")
		writeReplicaJSONError(w, http.StatusServiceUnavailable, err)
	default:
		writeReplicaJSONError(w, http.StatusInternalServerError, err)
	}
}

func writeReplicaHW(w http.ResponseWriter, hw uint64) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(replicaReply{HighWater: hw})
}

// replicaAcceptor resolves the acceptor a protocol request targets, or
// writes the error. Only follower-mode servers expose the ingest side.
func (s *server) replicaAcceptor(w http.ResponseWriter, req *http.Request) *replica.Acceptor {
	if s.cfg.streams.replica.role != "follower" {
		writeReplicaJSONError(w, http.StatusNotFound,
			fmt.Errorf("this server is not a replication follower (role %q)", s.cfg.streams.replica.role))
		return nil
	}
	a := s.streams.acceptor(req.PathValue("id"))
	if a == nil {
		writeReplicaJSONError(w, http.StatusNotFound, errStreamNotFound)
		return nil
	}
	return a
}

// handleReplicaConnect is the session handshake. It creates the stream on
// the follower when it does not exist yet — the primary's maintenance loop
// is what propagates stream creation across the cluster.
func (s *server) handleReplicaConnect(w http.ResponseWriter, req *http.Request) {
	if s.rejectDraining(w) || s.rejectNotReady(w) {
		return
	}
	if s.cfg.streams.replica.role != "follower" {
		writeReplicaJSONError(w, http.StatusNotFound,
			fmt.Errorf("this server is not a replication follower (role %q)", s.cfg.streams.replica.role))
		return
	}
	id := req.PathValue("id")
	if err := registry.ValidateID(id); err != nil {
		writeReplicaJSONError(w, http.StatusBadRequest, err)
		return
	}
	var body struct {
		Vertices int `json:"vertices"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(nil, req.Body, 1<<20)).Decode(&body); err != nil {
		writeReplicaJSONError(w, http.StatusBadRequest, fmt.Errorf("bad body: %w", err))
		return
	}
	if _, _, err := s.streams.create(id, body.Vertices); err != nil {
		writeReplicaJSONError(w, http.StatusBadRequest, err)
		return
	}
	a := s.streams.acceptor(id)
	if a == nil {
		writeReplicaJSONError(w, http.StatusInternalServerError, errors.New("stream has no acceptor"))
		return
	}
	hw, err := a.Connect(body.Vertices)
	if err != nil {
		writeReplicaError(w, err)
		return
	}
	writeReplicaHW(w, hw)
}

// handleReplicaShip ingests one framed WAL record at ?prev=P.
func (s *server) handleReplicaShip(w http.ResponseWriter, req *http.Request) {
	if s.rejectDraining(w) || s.rejectNotReady(w) {
		return
	}
	a := s.replicaAcceptor(w, req)
	if a == nil {
		return
	}
	prev, err := strconv.ParseUint(req.URL.Query().Get("prev"), 10, 64)
	if err != nil {
		writeReplicaJSONError(w, http.StatusBadRequest, fmt.Errorf("bad prev: %w", err))
		return
	}
	rec, err := io.ReadAll(http.MaxBytesReader(nil, req.Body, s.cfg.maxBody))
	if err != nil {
		writeReplicaJSONError(w, http.StatusBadRequest, err)
		return
	}
	hw, err := a.Ship(prev, rec)
	if err != nil {
		writeReplicaError(w, err)
		return
	}
	writeReplicaHW(w, hw)
}

// handleReplicaSnapshot replaces the follower's stream state wholesale —
// the catch-up path when the primary compacted its log past this
// follower's mark, or when the follower's log diverged.
func (s *server) handleReplicaSnapshot(w http.ResponseWriter, req *http.Request) {
	if s.rejectDraining(w) || s.rejectNotReady(w) {
		return
	}
	a := s.replicaAcceptor(w, req)
	if a == nil {
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(nil, req.Body, s.cfg.maxBody))
	if err != nil {
		writeReplicaJSONError(w, http.StatusBadRequest, err)
		return
	}
	hw, err := a.InstallSnapshot(data)
	if err != nil {
		writeReplicaError(w, err)
		return
	}
	writeReplicaHW(w, hw)
}

// handleReplicaHW is the heartbeat: it refreshes the follower's lease
// clock and reports its high-water mark.
func (s *server) handleReplicaHW(w http.ResponseWriter, req *http.Request) {
	if s.rejectNotReady(w) {
		return
	}
	a := s.replicaAcceptor(w, req)
	if a == nil {
		return
	}
	hw, err := a.Heartbeat()
	if err != nil {
		writeReplicaError(w, err)
		return
	}
	writeReplicaHW(w, hw)
}

// handleStreamPromote flips a follower stream to primary duty: it stops
// accepting replicated records (the deposed primary gets 410 and gives
// up) and starts accepting client writes. Idempotent.
func (s *server) handleStreamPromote(w http.ResponseWriter, req *http.Request) {
	if s.rejectDraining(w) || s.rejectNotReady(w) {
		return
	}
	if s.cfg.streams.replica.role != "follower" {
		http.Error(w, fmt.Sprintf("stream is not a replication follower (role %q)", s.cfg.streams.replica.role),
			http.StatusBadRequest)
		return
	}
	id := req.PathValue("id")
	a := s.streams.acceptor(id)
	if a == nil {
		http.Error(w, errStreamNotFound.Error(), http.StatusNotFound)
		return
	}
	hw := a.Promote()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		ID        string `json:"id"`
		Promoted  bool   `json:"promoted"`
		HighWater uint64 `json:"high_water"`
	}{ID: id, Promoted: true, HighWater: hw})
}

// rejectFollower sheds client writes against an unpromoted follower
// stream: until an operator promotes it, the only legal write path is the
// replication protocol. Reports whether it wrote a response.
func (s *server) rejectFollower(w http.ResponseWriter, id string) bool {
	if s.cfg.streams.replica.role != "follower" {
		return false
	}
	a := s.streams.acceptor(id)
	if a == nil || a.Promoted() {
		return false
	}
	w.Header().Set("Retry-After", "1")
	http.Error(w, "stream is a replication follower: read-only until promoted", http.StatusServiceUnavailable)
	return true
}

// writeReplicaMetrics appends replication gauges to the Prometheus export:
// the primary's per-follower progress and the follower's promotion/lease
// state.
func writeReplicaMetrics(w io.Writer, m *streamManager) {
	if m.cfg.replica.role == "" {
		return
	}
	ids := m.ids()
	if len(ids) == 0 {
		return
	}
	fmt.Fprintln(w, "# HELP llpmst_replica_gauge Per-stream replication state by kind.")
	fmt.Fprintln(w, "# TYPE llpmst_replica_gauge gauge")
	if m.cfg.replica.role == "primary" {
		fmt.Fprintln(w, "# HELP llpmst_replica_follower The primary's view of each follower by kind.")
		fmt.Fprintln(w, "# TYPE llpmst_replica_follower gauge")
	}
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	for _, id := range ids {
		info := m.replicationInfo(id)
		if info == nil {
			continue
		}
		esc := obs.PromEscape(id)
		switch info.Role {
		case "primary":
			fmt.Fprintf(w, "llpmst_replica_gauge{stream=\"%s\",kind=\"need\"} %d\n", esc, info.Need)
			fmt.Fprintf(w, "llpmst_replica_gauge{stream=\"%s\",kind=\"healthy\"} %g\n", esc, b2f(info.Healthy))
			for _, f := range info.Followers {
				fesc := obs.PromEscape(f.Name)
				for _, kv := range []struct {
					kind string
					v    float64
				}{
					{"connected", b2f(f.Connected)},
					{"current", b2f(f.Current)},
					{"high_water", float64(f.HighWater)},
					{"reconnects", float64(f.Reconnects)},
					{"catchup_records", float64(f.CatchupRecords)},
					{"catchup_snapshots", float64(f.CatchupSnapshots)},
				} {
					fmt.Fprintf(w, "llpmst_replica_follower{stream=\"%s\",follower=\"%s\",kind=%q} %g\n",
						esc, fesc, kv.kind, kv.v)
				}
			}
		case "follower":
			fmt.Fprintf(w, "llpmst_replica_gauge{stream=\"%s\",kind=\"promoted\"} %g\n", esc, b2f(info.Promoted))
			fmt.Fprintf(w, "llpmst_replica_gauge{stream=\"%s\",kind=\"lease_expired\"} %g\n", esc, b2f(info.LeaseExpired))
		}
	}
}
