package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"llpmst/internal/obs"
	"llpmst/internal/registry"
	"llpmst/internal/replica"
	"llpmst/internal/stream"
)

// streamConfig is the -stream-* flag bundle: where stream WALs and snapshots
// live, how eagerly they fsync, and how often they compact.
type streamConfig struct {
	dir           string
	sync          stream.SyncPolicy
	syncInterval  time.Duration
	snapshotEvery int
	workers       int
	// recoverHold artificially stretches startup recovery so drills can
	// observe the 503 "recovering" health window.
	recoverHold time.Duration
	observer    obs.Collector
	// replica is this server's replication role; see replicaConfig.
	replica replicaConfig
}

// streamManager owns every live stream engine. Until startup recovery has
// replayed all on-disk streams, ready is false and stream traffic (plus
// /healthz) answers 503 — a restarted server never serves a forest that is
// still missing acknowledged batches.
type streamManager struct {
	cfg     streamConfig
	mu      sync.Mutex
	engines map[string]*stream.Engine
	reports map[string]*stream.RecoveryReport
	ready   atomic.Bool

	// Replication role state: a primary server keeps one replica.Primary
	// per stream (ack gate + follower maintenance loops), a follower
	// server one replica.Acceptor per stream (the protocol's ingest side).
	primaries map[string]*replica.Primary
	acceptors map[string]*replica.Acceptor
	// replicaClient is shared by every HTTPDialer; per-call deadlines come
	// from the primary's AckTimeout contexts.
	replicaClient *http.Client
	// logf receives follower state-change lines; never nil.
	logf func(format string, args ...any)
}

// streamMeta is the tiny per-stream sidecar that records what the WAL alone
// cannot: the vertex-set size the stream was created with.
type streamMeta struct {
	Vertices int `json:"vertices"`
}

func newStreamManager(cfg streamConfig) *streamManager {
	return &streamManager{
		cfg:           cfg,
		engines:       make(map[string]*stream.Engine),
		reports:       make(map[string]*stream.RecoveryReport),
		primaries:     make(map[string]*replica.Primary),
		acceptors:     make(map[string]*replica.Acceptor),
		replicaClient: &http.Client{},
		logf:          func(string, ...any) {},
	}
}

// recoverAll replays every persisted stream and then opens the gate. It runs
// once, at startup, on its own goroutine; errors disable the stream rather
// than the server.
func (m *streamManager) recoverAll(logf func(format string, args ...any)) {
	if m.cfg.dir != "" {
		entries, err := os.ReadDir(m.cfg.dir)
		if err != nil && !os.IsNotExist(err) {
			logf("stream recovery: reading %s: %v", m.cfg.dir, err)
		}
		for _, ent := range entries {
			if !ent.IsDir() {
				continue
			}
			id := ent.Name()
			if err := registry.ValidateID(id); err != nil {
				logf("stream recovery: skipping %q: %v", id, err)
				continue
			}
			meta, err := readStreamMeta(filepath.Join(m.cfg.dir, id))
			if err != nil {
				logf("stream recovery: skipping %q: %v", id, err)
				continue
			}
			e, rep, err := stream.Open(m.engineConfig(id, meta.Vertices))
			if err != nil {
				logf("stream recovery: %q: %v", id, err)
				continue
			}
			m.mu.Lock()
			m.engines[id] = e
			m.reports[id] = rep
			aerr := m.attachReplication(id, e)
			m.mu.Unlock()
			if aerr != nil {
				logf("stream recovery: %q: replication: %v", id, aerr)
			}
			logf("stream %q recovered: last_batch=%d replayed=%d torn=%v", id, rep.LastBatch, rep.ReplayedBatches, rep.Torn)
		}
	}
	if m.cfg.recoverHold > 0 {
		time.Sleep(m.cfg.recoverHold)
	}
	m.ready.Store(true)
}

func (m *streamManager) engineConfig(id string, vertices int) stream.Config {
	cfg := stream.Config{
		Vertices:      vertices,
		Sync:          m.cfg.sync,
		SyncInterval:  m.cfg.syncInterval,
		SnapshotEvery: m.cfg.snapshotEvery,
		Workers:       m.cfg.workers,
		Observer:      m.cfg.observer,
	}
	if m.cfg.dir != "" {
		cfg.Dir = filepath.Join(m.cfg.dir, id)
	}
	return cfg
}

func readStreamMeta(dir string) (streamMeta, error) {
	data, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return streamMeta{}, err
	}
	var meta streamMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return streamMeta{}, fmt.Errorf("meta.json: %w", err)
	}
	if meta.Vertices <= 0 {
		return streamMeta{}, fmt.Errorf("meta.json: vertex count %d must be positive", meta.Vertices)
	}
	return meta, nil
}

// create opens (or idempotently re-opens) a stream. created reports whether a
// new stream came into being; an existing stream with a different vertex
// count is a conflict.
func (m *streamManager) create(id string, vertices int) (e *stream.Engine, created bool, err error) {
	if vertices <= 0 {
		return nil, false, fmt.Errorf("vertex count %d must be positive", vertices)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.engines[id]; ok {
		if e.Vertices() != vertices {
			return nil, false, errStreamConflict{id: id, have: e.Vertices(), want: vertices}
		}
		return e, false, nil
	}
	if m.cfg.dir != "" {
		sdir := filepath.Join(m.cfg.dir, id)
		if err := os.MkdirAll(sdir, 0o755); err != nil {
			return nil, false, err
		}
		meta, _ := json.Marshal(streamMeta{Vertices: vertices})
		if err := os.WriteFile(filepath.Join(sdir, "meta.json"), meta, 0o644); err != nil {
			return nil, false, err
		}
	}
	e, rep, err := stream.Open(m.engineConfig(id, vertices))
	if err != nil {
		return nil, false, err
	}
	if err := m.attachReplication(id, e); err != nil {
		e.Close()
		return nil, false, err
	}
	m.engines[id] = e
	m.reports[id] = rep
	return e, true, nil
}

type errStreamConflict struct {
	id         string
	have, want int
}

func (e errStreamConflict) Error() string {
	return fmt.Sprintf("stream %q has %d vertices, not %d", e.id, e.have, e.want)
}

var errStreamNotFound = errors.New("stream not found")

func (m *streamManager) get(id string) (*stream.Engine, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.engines[id]; ok {
		return e, nil
	}
	return nil, errStreamNotFound
}

// remove closes a stream and deletes its on-disk state.
func (m *streamManager) remove(id string) error {
	m.mu.Lock()
	e, ok := m.engines[id]
	p := m.primaries[id]
	delete(m.engines, id)
	delete(m.reports, id)
	delete(m.primaries, id)
	delete(m.acceptors, id)
	m.mu.Unlock()
	if !ok {
		return errStreamNotFound
	}
	// The replication layer detaches first so the engine's final close
	// does not race a gate call or a catch-up ship.
	if p != nil {
		p.Close()
	}
	if err := e.Close(); err != nil {
		return err
	}
	if m.cfg.dir != "" {
		return os.RemoveAll(filepath.Join(m.cfg.dir, id))
	}
	return nil
}

// closeAll flushes and closes every engine — the final stage of a graceful
// drain, after HTTP traffic has stopped.
func (m *streamManager) closeAll() error {
	m.mu.Lock()
	engines := make([]*stream.Engine, 0, len(m.engines))
	for _, e := range m.engines {
		engines = append(engines, e)
	}
	primaries := make([]*replica.Primary, 0, len(m.primaries))
	for _, p := range m.primaries {
		primaries = append(primaries, p)
	}
	m.engines = make(map[string]*stream.Engine)
	m.primaries = make(map[string]*replica.Primary)
	m.acceptors = make(map[string]*replica.Acceptor)
	m.mu.Unlock()
	var first error
	for _, p := range primaries {
		p.Close()
	}
	for _, e := range engines {
		if err := e.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (m *streamManager) ids() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.engines))
	for id := range m.engines {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// --- HTTP handlers ---

// rejectNotReady gates stream traffic on recovery: a 503 with Retry-After
// tells clients (and the load balancer) to come back when replay is done.
func (s *server) rejectNotReady(w http.ResponseWriter) bool {
	if s.streams.ready.Load() {
		return false
	}
	w.Header().Set("Retry-After", "1")
	http.Error(w, "recovering", http.StatusServiceUnavailable)
	return true
}

// streamInfoReply describes one stream: current shape plus how its last
// recovery went.
type streamInfoReply struct {
	ID          string  `json:"id"`
	Vertices    int     `json:"vertices"`
	LiveEdges   int     `json:"live_edges"`
	ForestEdges int     `json:"forest_edges"`
	Trees       int     `json:"trees"`
	Weight      float64 `json:"weight"`
	LastBatch   uint64  `json:"last_batch"`
	Batches     uint64  `json:"batches"`
	Duplicates  uint64  `json:"duplicates"`
	Swaps       uint64  `json:"swaps"`
	Recomputes  uint64  `json:"recomputes"`
	Snapshots   uint64  `json:"snapshots"`

	Recovery    *stream.RecoveryReport `json:"recovery,omitempty"`
	Replication *replicationInfo       `json:"replication,omitempty"`
}

func (s *server) streamInfo(id string, e *stream.Engine) streamInfoReply {
	st := e.Stats()
	s.streams.mu.Lock()
	rep := s.streams.reports[id]
	s.streams.mu.Unlock()
	return streamInfoReply{
		ID:          id,
		Vertices:    e.Vertices(),
		LiveEdges:   st.LiveEdges,
		ForestEdges: st.ForestEdges,
		Trees:       st.Trees,
		Weight:      st.Weight,
		LastBatch:   st.LastBatch,
		Batches:     st.Batches,
		Duplicates:  st.Duplicates,
		Swaps:       st.Swaps,
		Recomputes:  st.Recomputes,
		Snapshots:   st.Snapshots,
		Recovery:    rep,
		Replication: s.streams.replicationInfo(id),
	}
}

// handlePutStream creates a stream (201), idempotently acknowledges an
// existing identical one (200), or rejects a shape mismatch (409).
func (s *server) handlePutStream(w http.ResponseWriter, req *http.Request) {
	if s.rejectDraining(w) || s.rejectNotReady(w) {
		return
	}
	id := req.PathValue("id")
	if err := registry.ValidateID(id); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var body struct {
		Vertices int `json:"vertices"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(nil, req.Body, 1<<20)).Decode(&body); err != nil {
		http.Error(w, "bad body: "+err.Error(), http.StatusBadRequest)
		return
	}
	e, created, err := s.streams.create(id, body.Vertices)
	if err != nil {
		status := http.StatusBadRequest
		var conflict errStreamConflict
		if errors.As(err, &conflict) {
			status = http.StatusConflict
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if created {
		w.WriteHeader(http.StatusCreated)
	}
	_ = json.NewEncoder(w).Encode(s.streamInfo(id, e))
}

// updateRequest is the POST /streams/{id}/update body. Batch IDs are client
// assigned and strictly increasing; retrying an acknowledged ID is safe and
// answers duplicate=true without re-applying.
type updateRequest struct {
	Batch uint64      `json:"batch"`
	Ops   []stream.Op `json:"ops"`
}

func (s *server) handleStreamUpdate(w http.ResponseWriter, req *http.Request) {
	if s.rejectDraining(w) || s.rejectNotReady(w) || s.rejectFollower(w, req.PathValue("id")) {
		return
	}
	e, err := s.streams.get(req.PathValue("id"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	var body updateRequest
	if err := json.NewDecoder(http.MaxBytesReader(nil, req.Body, s.cfg.maxBody)).Decode(&body); err != nil {
		http.Error(w, "bad body: "+err.Error(), http.StatusBadRequest)
		return
	}
	res, err := e.ApplyCtx(req.Context(), stream.Batch{ID: body.Batch, Ops: body.Ops})
	if err != nil {
		writeStreamError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(res)
}

// writeStreamError maps engine errors onto HTTP statuses: malformed batches
// 400, a degraded replication quorum 503 with Retry-After (the batch is
// durable nowhere and the same ID may be retried once quorum recovers), a
// closed or crashed engine 503 (the stream needs a restart to recover),
// anything else 500.
func writeStreamError(w http.ResponseWriter, err error) {
	var be *stream.BatchError
	var de *replica.DegradedError
	switch {
	case errors.As(err, &be):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case errors.As(err, &de):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, stream.ErrClosed), errors.Is(err, stream.ErrCrashed):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// streamForestReply is the GET /streams/{id}/forest body: the maintained
// canonical MSF.
type streamForestReply struct {
	ID        string       `json:"id"`
	Vertices  int          `json:"vertices"`
	LiveEdges int          `json:"live_edges"`
	Trees     int          `json:"trees"`
	Weight    float64      `json:"weight"`
	LastBatch uint64       `json:"last_batch"`
	Forest    []forestEdge `json:"forest"`
}

type forestEdge struct {
	U uint32  `json:"u"`
	V uint32  `json:"v"`
	W float32 `json:"w"`
}

func (s *server) handleStreamForest(w http.ResponseWriter, req *http.Request) {
	if s.rejectNotReady(w) {
		return
	}
	id := req.PathValue("id")
	e, err := s.streams.get(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	st := e.Stats()
	// ?min_batch=K is the read-your-writes fence: a client that had batch K
	// acknowledged (by the primary) can demand a replica that has caught up
	// at least that far; a stale one answers 503 + Retry-After instead of
	// silently serving an older forest.
	if raw := req.URL.Query().Get("min_batch"); raw != "" {
		k, perr := strconv.ParseUint(raw, 10, 64)
		if perr != nil {
			http.Error(w, fmt.Sprintf("bad min_batch %q", raw), http.StatusBadRequest)
			return
		}
		if st.LastBatch < k {
			w.Header().Set("Retry-After", "1")
			http.Error(w, fmt.Sprintf("stream %q is at batch %d, behind requested %d", id, st.LastBatch, k),
				http.StatusServiceUnavailable)
			return
		}
	}
	forest := e.Forest()
	reply := streamForestReply{
		ID:        id,
		Vertices:  e.Vertices(),
		LiveEdges: st.LiveEdges,
		Trees:     st.Trees,
		Weight:    st.Weight,
		LastBatch: st.LastBatch,
		Forest:    make([]forestEdge, len(forest)),
	}
	for i, ed := range forest {
		reply.Forest[i] = forestEdge{U: ed.U, V: ed.V, W: ed.W}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(reply)
}

func (s *server) handleGetStream(w http.ResponseWriter, req *http.Request) {
	if s.rejectNotReady(w) {
		return
	}
	id := req.PathValue("id")
	e, err := s.streams.get(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.streamInfo(id, e))
}

func (s *server) handleListStreams(w http.ResponseWriter, _ *http.Request) {
	if s.rejectNotReady(w) {
		return
	}
	ids := s.streams.ids()
	type row struct {
		ID        string `json:"id"`
		Vertices  int    `json:"vertices"`
		LastBatch uint64 `json:"last_batch"`
	}
	rows := make([]row, 0, len(ids))
	for _, id := range ids {
		if e, err := s.streams.get(id); err == nil {
			rows = append(rows, row{ID: id, Vertices: e.Vertices(), LastBatch: e.LastBatch()})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(rows)
}

func (s *server) handleDeleteStream(w http.ResponseWriter, req *http.Request) {
	if s.rejectDraining(w) || s.rejectNotReady(w) {
		return
	}
	if err := s.streams.remove(req.PathValue("id")); err != nil {
		if errors.Is(err, errStreamNotFound) {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// writeStreamMetrics appends per-stream engine gauges to the Prometheus
// export. Stream IDs are client-chosen strings, so the label value goes
// through PromEscape — a quote or newline in an ID must not be able to
// break the exposition format.
func writeStreamMetrics(w io.Writer, m *streamManager) {
	ids := m.ids()
	if len(ids) == 0 {
		return
	}
	fmt.Fprintln(w, "# HELP llpmst_stream_gauge Per-stream engine state by kind.")
	fmt.Fprintln(w, "# TYPE llpmst_stream_gauge gauge")
	for _, id := range ids {
		e, err := m.get(id)
		if err != nil {
			continue
		}
		st := e.Stats()
		esc := obs.PromEscape(id)
		for _, kv := range []struct {
			kind string
			v    float64
		}{
			{"live_edges", float64(st.LiveEdges)},
			{"forest_edges", float64(st.ForestEdges)},
			{"trees", float64(st.Trees)},
			{"weight", st.Weight},
			{"last_batch", float64(st.LastBatch)},
			{"batches", float64(st.Batches)},
			{"recomputes", float64(st.Recomputes)},
			{"snapshots", float64(st.Snapshots)},
		} {
			fmt.Fprintf(w, "llpmst_stream_gauge{stream=\"%s\",kind=%q} %g\n", esc, kv.kind, kv.v)
		}
	}
}
