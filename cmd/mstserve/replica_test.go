package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"llpmst/internal/replica"
	"llpmst/internal/resilient"
	"llpmst/internal/stream"
)

// replicaCluster is one primary mstserve and two follower mstserves wired
// over real HTTP.
type replicaCluster struct {
	primary   *server
	followers []*server
	followerH []http.Handler
}

// newReplicaCluster starts nfollowers follower servers (each behind an
// httptest listener) and one primary configured to replicate to them at
// the given quorum level. Cleanup closes the primary's stream layer first
// so its maintenance loops stop before the follower listeners go away.
func newReplicaCluster(t *testing.T, nfollowers int, quorum replica.Level) *replicaCluster {
	t.Helper()
	c := &replicaCluster{}
	var urls []string
	for i := 0; i < nfollowers; i++ {
		fsrv := newServer(serverConfig{
			workers: 2, deadline: 10 * time.Second, maxBody: 64 << 20, logW: io.Discard,
			resilient: resilient.Config{Workers: 2},
			streams: streamConfig{
				dir: t.TempDir(), sync: stream.SyncAlways,
				replica: replicaConfig{role: "follower", lease: 250 * time.Millisecond},
			},
		})
		fsrv.streams.recoverAll(t.Logf)
		ts := httptest.NewServer(fsrv.handler())
		t.Cleanup(ts.Close)
		t.Cleanup(func() { fsrv.streams.closeAll() })
		c.followers = append(c.followers, fsrv)
		c.followerH = append(c.followerH, fsrv.handler())
		urls = append(urls, ts.URL)
	}
	c.primary = newServer(serverConfig{
		workers: 2, deadline: 10 * time.Second, maxBody: 64 << 20, logW: io.Discard,
		resilient: resilient.Config{Workers: 2},
		streams: streamConfig{
			dir: t.TempDir(), sync: stream.SyncAlways,
			replica: replicaConfig{
				role: "primary", followers: urls, level: quorum,
				ackTimeout: 5 * time.Second, heartbeat: 5 * time.Millisecond,
			},
		},
	})
	c.primary.streams.recoverAll(t.Logf)
	// Registered last so it runs first: the primary's follower loops must
	// stop before the follower listeners shut down.
	t.Cleanup(func() { c.primary.streams.closeAll() })
	return c
}

func (c *replicaCluster) waitHealthy(t *testing.T, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		p := c.primary.streams.primary(id)
		if p != nil && p.Healthy() {
			allCurrent := true
			for _, f := range p.Status() {
				if !f.Current {
					allCurrent = false
				}
			}
			if allCurrent {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never became healthy for %q", id)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func sortedForest(f []forestEdge) []forestEdge {
	out := append([]forestEdge(nil), f...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].W != out[j].W {
			return out[i].W < out[j].W
		}
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// TestReplicatedClusterFailover drives the full operator story over HTTP:
// create on the primary propagates to followers, quorum-acked writes are
// immediately readable on any follower through the ?min_batch= fence,
// follower writes are rejected until promotion, and after promoting a
// follower the deposed primary's writes degrade to 503 while the new
// primary accepts the stream's next batch.
func TestReplicatedClusterFailover(t *testing.T) {
	c := newReplicaCluster(t, 2, replica.ReplicateAll)
	ph := c.primary.handler()

	if rec := jsonReq(t, ph, http.MethodPut, "/streams/rep", map[string]int{"vertices": 8}); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	c.waitHealthy(t, "rep")

	// Followers learned the stream from the replication handshake, not a
	// client PUT.
	for i, fh := range c.followerH {
		if rec := do(fh, http.MethodGet, "/streams/rep", nil, nil); rec.Code != http.StatusOK {
			t.Fatalf("follower %d has no stream: %d %s", i, rec.Code, rec.Body)
		}
	}

	batches := [][]stream.Op{
		{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 5}},
		{{U: 3, V: 4, W: 1}, {U: 2, V: 3, W: 4}},
		{{U: 0, V: 2, W: 5, Delete: true}, {U: 5, V: 6, W: 3}},
	}
	for i, ops := range batches {
		rec := jsonReq(t, ph, http.MethodPost, "/streams/rep/update", updateRequest{Batch: uint64(i + 1), Ops: ops})
		if rec.Code != http.StatusOK {
			t.Fatalf("batch %d: %d %s", i+1, rec.Code, rec.Body)
		}
	}

	// Quorum=all means the ack implies both followers are durable at batch
	// 3: the read-your-writes fence must pass right now, no polling.
	want := decodeJSON[streamForestReply](t, do(ph, http.MethodGet, "/streams/rep/forest", nil, nil))
	for i, fh := range c.followerH {
		rec := do(fh, http.MethodGet, "/streams/rep/forest?min_batch=3", nil, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("follower %d behind an acked write: %d %s", i, rec.Code, rec.Body)
		}
		got := decodeJSON[streamForestReply](t, rec)
		if got.LastBatch != 3 || got.Weight != want.Weight || len(got.Forest) != len(want.Forest) {
			t.Fatalf("follower %d forest mismatch: got %+v want %+v", i, got, want)
		}
		gf, wf := sortedForest(got.Forest), sortedForest(want.Forest)
		for j := range gf {
			if gf[j] != wf[j] {
				t.Fatalf("follower %d forest edge %d: got %+v want %+v", i, j, gf[j], wf[j])
			}
		}
	}

	// A fence the replica cannot satisfy answers 503 + Retry-After.
	rec := do(c.followerH[0], http.MethodGet, "/streams/rep/forest?min_batch=99", nil, nil)
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("unsatisfiable fence: %d retry-after %q", rec.Code, rec.Header().Get("Retry-After"))
	}
	if rec := do(c.followerH[0], http.MethodGet, "/streams/rep/forest?min_batch=nope", nil, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad fence value: %d", rec.Code)
	}

	// Client writes against an unpromoted follower are shed.
	rec = jsonReq(t, c.followerH[0], http.MethodPost, "/streams/rep/update",
		updateRequest{Batch: 4, Ops: []stream.Op{{U: 6, V: 7, W: 1}}})
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("follower write: %d retry-after %q", rec.Code, rec.Header().Get("Retry-After"))
	}

	// Stream info reports each side's role.
	pinfo := decodeJSON[streamInfoReply](t, do(ph, http.MethodGet, "/streams/rep", nil, nil))
	if pinfo.Replication == nil || pinfo.Replication.Role != "primary" ||
		pinfo.Replication.Need != 3 || !pinfo.Replication.Healthy || len(pinfo.Replication.Followers) != 2 {
		t.Fatalf("primary replication info: %+v", pinfo.Replication)
	}
	finfo := decodeJSON[streamInfoReply](t, do(c.followerH[0], http.MethodGet, "/streams/rep", nil, nil))
	if finfo.Replication == nil || finfo.Replication.Role != "follower" || finfo.Replication.Promoted {
		t.Fatalf("follower replication info: %+v", finfo.Replication)
	}

	// Promote follower 0. Idempotent: promoting again is still 200.
	for i := 0; i < 2; i++ {
		rec = do(c.followerH[0], http.MethodPost, "/streams/rep/promote", nil, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("promote (try %d): %d %s", i, rec.Code, rec.Body)
		}
		pr := decodeJSON[struct {
			HighWater uint64 `json:"high_water"`
		}](t, rec)
		if pr.HighWater != 3 {
			t.Fatalf("promoted at high-water %d, want 3", pr.HighWater)
		}
	}

	// The new primary accepts the stream's next batch...
	rec = jsonReq(t, c.followerH[0], http.MethodPost, "/streams/rep/update",
		updateRequest{Batch: 4, Ops: []stream.Op{{U: 6, V: 7, W: 1}}})
	if rec.Code != http.StatusOK {
		t.Fatalf("write after promote: %d %s", rec.Code, rec.Body)
	}
	// ...and the deposed primary's next write cannot reach ReplicateAll
	// quorum (the promoted follower answers 410): typed degraded 503.
	rec = jsonReq(t, ph, http.MethodPost, "/streams/rep/update",
		updateRequest{Batch: 4, Ops: []stream.Op{{U: 4, V: 5, W: 9}}})
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("deposed primary write: %d retry-after %q body %s", rec.Code, rec.Header().Get("Retry-After"), rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "degraded") {
		t.Fatalf("deposed primary write error is not the degraded error: %s", rec.Body)
	}
	// The rolled-back batch is durable nowhere on the deposed primary.
	if got := decodeJSON[streamInfoReply](t, do(ph, http.MethodGet, "/streams/rep", nil, nil)); got.LastBatch != 3 {
		t.Fatalf("deposed primary high-water %d after rejected write, want 3", got.LastBatch)
	}

	// Metrics: the primary exports per-follower progress, the follower its
	// promotion flag.
	body := do(ph, http.MethodGet, "/metrics", nil, nil).Body.String()
	for _, wantM := range []string{
		`llpmst_replica_gauge{stream="rep",kind="need"} 3`,
		`llpmst_replica_follower{stream="rep",follower=`,
	} {
		if !strings.Contains(body, wantM) {
			t.Fatalf("primary metrics missing %q:\n%s", wantM, body)
		}
	}
	fbody := do(c.followerH[0], http.MethodGet, "/metrics", nil, nil).Body.String()
	if !strings.Contains(fbody, `llpmst_replica_gauge{stream="rep",kind="promoted"} 1`) {
		t.Fatalf("follower metrics missing promoted gauge:\n%s", fbody)
	}
}

// TestReplicaLagFenceCatchesUp runs at quorum none — acks do not wait for
// followers — and shows the fence doing its real job: the follower may
// briefly answer 503 for an acked batch, then converges and serves it.
func TestReplicaLagFenceCatchesUp(t *testing.T) {
	c := newReplicaCluster(t, 1, replica.ReplicateNone)
	ph := c.primary.handler()
	if rec := jsonReq(t, ph, http.MethodPut, "/streams/lag", map[string]int{"vertices": 6}); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	for i := 0; i < 5; i++ {
		rec := jsonReq(t, ph, http.MethodPost, "/streams/lag/update",
			updateRequest{Batch: uint64(i + 1), Ops: []stream.Op{{U: uint32(i), V: uint32(i + 1), W: float32(i + 1)}}})
		if rec.Code != http.StatusOK {
			t.Fatalf("batch %d: %d %s", i+1, rec.Code, rec.Body)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec := do(c.followerH[0], http.MethodGet, "/streams/lag/forest?min_batch=5", nil, nil)
		if rec.Code == http.StatusOK {
			got := decodeJSON[streamForestReply](t, rec)
			if got.LastBatch < 5 {
				t.Fatalf("fence passed at high-water %d", got.LastBatch)
			}
			break
		}
		if rec.Code != http.StatusServiceUnavailable && rec.Code != http.StatusNotFound {
			t.Fatalf("fence wait: unexpected %d %s", rec.Code, rec.Body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %d %s", rec.Code, rec.Body)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestHealthzRetryAfterWindows pins Retry-After on both 503 health
// windows: startup recovery and draining.
func TestHealthzRetryAfterWindows(t *testing.T) {
	srv := newServer(serverConfig{
		workers: 2, deadline: time.Second, maxBody: 1 << 20, logW: io.Discard,
		resilient: resilient.Config{Workers: 2},
	})
	h := srv.handler()

	rec := do(h, http.MethodGet, "/healthz", nil, nil)
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), `"status":"recovering"`) {
		t.Fatalf("recovering: %d %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") != "1" {
		t.Fatalf("recovering 503 Retry-After = %q, want \"1\"", rec.Header().Get("Retry-After"))
	}

	srv.streams.recoverAll(t.Logf)
	rec = do(h, http.MethodGet, "/healthz", nil, nil)
	if rec.Code != http.StatusOK || rec.Header().Get("Retry-After") != "" {
		t.Fatalf("healthy: %d Retry-After %q", rec.Code, rec.Header().Get("Retry-After"))
	}

	srv.draining.Store(true)
	rec = do(h, http.MethodGet, "/healthz", nil, nil)
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") != "1" {
		t.Fatalf("draining: %d Retry-After %q", rec.Code, rec.Header().Get("Retry-After"))
	}
}

// TestReplicaRoleValidation covers the flag bundle's self-checks and the
// role gating on the protocol and promote endpoints.
func TestReplicaRoleValidation(t *testing.T) {
	for _, tc := range []struct {
		cfg replicaConfig
		ok  bool
	}{
		{replicaConfig{}, true},
		{replicaConfig{role: "primary", followers: []string{"http://x"}}, true},
		{replicaConfig{role: "primary", followers: []string{"http://x"}, level: replica.ReplicateAll}, true},
		{replicaConfig{role: "follower"}, true},
		{replicaConfig{role: "leader"}, false},
		{replicaConfig{role: "follower", followers: []string{"http://x"}}, false},
		{replicaConfig{role: "primary", level: replica.ReplicateQuorum}, false},
		{replicaConfig{role: "follower", level: replica.ReplicateAll}, false},
		{replicaConfig{level: replica.ReplicateQuorum}, false},
	} {
		if err := tc.cfg.validate(); (err == nil) != tc.ok {
			t.Errorf("validate(%+v) = %v, want ok=%v", tc.cfg, err, tc.ok)
		}
	}

	// A standalone server neither accepts the protocol nor promotes.
	h := testServer(t, nil).handler()
	if rec := jsonReq(t, h, http.MethodPut, "/streams/s", map[string]int{"vertices": 4}); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d", rec.Code)
	}
	if rec := do(h, http.MethodPost, "/streams/s/promote", nil, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("promote on standalone: %d", rec.Code)
	}
	if rec := jsonReq(t, h, http.MethodPost, "/replica/s/connect", map[string]int{"vertices": 4}); rec.Code != http.StatusNotFound {
		t.Fatalf("connect on standalone: %d %s", rec.Code, rec.Body)
	}
	if rec := do(h, http.MethodGet, "/replica/s/hw", nil, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("hw on standalone: %d", rec.Code)
	}

	// A follower 404s promote/protocol hits for streams it has never seen.
	fsrv := testServer(t, func(cfg *serverConfig) {
		cfg.streams.replica = replicaConfig{role: "follower"}
	})
	fh := fsrv.handler()
	if rec := do(fh, http.MethodPost, "/streams/ghost/promote", nil, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("promote unknown stream: %d", rec.Code)
	}
	if rec := do(fh, http.MethodGet, "/replica/ghost/hw", nil, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("hw unknown stream: %d", rec.Code)
	}
	// Connect creates the stream, then rejects a handshake whose vertex
	// count disagrees with it.
	if rec := jsonReq(t, fh, http.MethodPost, "/replica/fresh/connect", map[string]int{"vertices": 4}); rec.Code != http.StatusOK {
		t.Fatalf("connect creating stream: %d %s", rec.Code, rec.Body)
	}
	if rec := jsonReq(t, fh, http.MethodPost, "/replica/fresh/connect", map[string]int{"vertices": 9}); rec.Code != http.StatusBadRequest {
		t.Fatalf("mismatched handshake: %d %s", rec.Code, rec.Body)
	}
	// A bad ?prev and a garbage record are both client errors.
	if rec := do(fh, http.MethodPost, "/replica/fresh/ship?prev=x", []byte("junk"), nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad prev: %d", rec.Code)
	}
	if rec := do(fh, http.MethodPost, "/replica/fresh/ship?prev=0", []byte("junk"), nil); rec.Code == http.StatusOK {
		t.Fatalf("garbage record accepted: %d", rec.Code)
	}
}
