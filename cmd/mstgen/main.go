// Command mstgen generates benchmark graphs and writes them to disk in the
// compact binary format (.llpg) or DIMACS text (.gr).
//
// Usage:
//
//	mstgen -type rmat -scale 16 -ef 16 -o rmat16.llpg
//	mstgen -type road -width 512 -height 512 -extra 0.2 -o road.gr
//	mstgen -type geo -n 65536 -o geo.llpg
//	mstgen -type er -n 65536 -m 1048576 -o er.llpg
//
// Add -stats to print the generated graph's morphology summary.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"llpmst"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mstgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mstgen", flag.ContinueOnError)
	var (
		typ    = fs.String("type", "rmat", "generator: rmat|road|geo|er")
		out    = fs.String("o", "", "output path (.llpg binary or .gr DIMACS); empty = stats only")
		seed   = fs.Int64("seed", 42, "generator seed")
		stats  = fs.Bool("stats", false, "print morphology summary")
		scale  = fs.Int("scale", 14, "rmat: log2 of vertex count")
		ef     = fs.Int("ef", 16, "rmat: edge factor")
		intW   = fs.Bool("intweights", false, "rmat/er: integer weights instead of uniform floats")
		width  = fs.Int("width", 256, "road: grid width")
		height = fs.Int("height", 256, "road: grid height")
		extra  = fs.Float64("extra", 0.2, "road: non-tree grid edge keep probability")
		n      = fs.Int("n", 1<<14, "geo/er: vertex count")
		m      = fs.Int("m", 1<<17, "er: edge count")
		radius = fs.Float64("radius", 0, "geo: connection radius (0 = 2x connectivity radius)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	wk := llpmst.WeightUniform
	if *intW {
		wk = llpmst.WeightInteger
	}
	var g *llpmst.Graph
	switch *typ {
	case "rmat":
		g = llpmst.GenerateRMAT(*scale, *ef, wk, *seed)
	case "road":
		g = llpmst.GenerateRoadNetwork(*width, *height, *extra, *seed)
	case "geo":
		r := *radius
		if r <= 0 {
			r = 2 * llpmst.GeometricConnectivityRadius(*n)
		}
		g = llpmst.GenerateGeometric(*n, r, *seed)
	case "er":
		g = llpmst.GenerateErdosRenyi(*n, *m, wk, *seed)
	default:
		return fmt.Errorf("unknown -type %q", *typ)
	}

	if *stats || *out == "" {
		fmt.Fprintln(stdout, g.ComputeStats())
	}
	if *out == "" {
		return nil
	}
	switch {
	case strings.HasSuffix(*out, ".gr"):
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := llpmst.WriteDIMACS(f, g); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	default:
		if err := llpmst.SaveBinary(*out, g); err != nil {
			return err
		}
	}
	fmt.Fprintf(stdout, "wrote %s (n=%d m=%d)\n", *out, g.NumVertices(), g.NumEdges())
	return nil
}
