package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"llpmst"
)

func TestRunStatsOnly(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-type", "road", "-width", "16", "-height", "16"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "n=256") {
		t.Fatalf("stats missing: %s", out.String())
	}
}

func TestRunWritesBinaryAndDIMACS(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"g.llpg", "g.gr"} {
		path := filepath.Join(dir, name)
		var out bytes.Buffer
		err := run([]string{"-type", "er", "-n", "64", "-m", "256", "-o", path}, &out)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out.String(), "wrote "+path) {
			t.Fatalf("missing confirmation: %s", out.String())
		}
		g, err := llpmst.LoadGraph(path)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumVertices() != 64 {
			t.Fatalf("%s: n=%d", name, g.NumVertices())
		}
	}
}

func TestRunAllGeneratorTypes(t *testing.T) {
	for _, typ := range []string{"rmat", "road", "geo", "er"} {
		var out bytes.Buffer
		args := []string{"-type", typ, "-scale", "8", "-n", "256", "-m", "1024", "-width", "16", "-height", "16", "-stats"}
		if err := run(args, &out); err != nil {
			t.Fatalf("%s: %v", typ, err)
		}
		if out.Len() == 0 {
			t.Fatalf("%s: no output", typ)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-type", "bogus"}, &out); err == nil {
		t.Fatal("bogus type accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-type", "er", "-n", "8", "-m", "16", "-o", "/nonexistent-dir/x.llpg"}, &out); err == nil {
		t.Fatal("unwritable path accepted")
	}
}

func TestRunIntWeights(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "int.llpg")
	var out bytes.Buffer
	if err := run([]string{"-type", "er", "-n", "32", "-m", "128", "-intweights", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	g, err := llpmst.LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if e.W != float32(int64(e.W)) {
			t.Fatalf("non-integer weight %v", e.W)
		}
	}
}
