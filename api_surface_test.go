package llpmst

// Coverage for the public wrappers whose underlying implementations are
// tested in internal packages: each is exercised once end-to-end here so
// the exported API surface itself is verified.

import (
	"bytes"
	"context"
	"testing"
)

func TestAPIGeneratorsSmallWorldAndBA(t *testing.T) {
	sw := GenerateSmallWorld(400, 6, 0.2, 1)
	if sw.NumVertices() != 400 || sw.NumEdges() == 0 {
		t.Fatal("small world wrong")
	}
	ba := GeneratePreferentialAttachment(400, 3, 1)
	if !ba.Connected() {
		t.Fatal("BA graph disconnected")
	}
	oracle := Kruskal(ba)
	if f := LLPPrimAsync(ba, Options{Workers: 3}); !f.Equal(oracle) {
		t.Fatal("LLPPrimAsync disagrees")
	}
}

func TestAPIDistributedMSF(t *testing.T) {
	g := GenerateRoadNetwork(12, 12, 0.3, 4)
	ids, stats, err := DistributedMSF(g)
	if err != nil {
		t.Fatal(err)
	}
	want := Kruskal(g)
	if len(ids) != len(want.EdgeIDs) {
		t.Fatalf("%d edges, want %d", len(ids), len(want.EdgeIDs))
	}
	for i := range ids {
		if ids[i] != want.EdgeIDs[i] {
			t.Fatal("distributed edge set differs")
		}
	}
	if stats.Phases == 0 || stats.Messages == 0 {
		t.Fatalf("stats empty: %+v", stats)
	}
}

func TestAPIMarketClearing(t *testing.T) {
	prices, assign := MarketClearingPrices([][]int64{
		{5, 1}, {5, 2},
	})
	if len(prices) != 2 || len(assign) != 2 {
		t.Fatal("sizes wrong")
	}
	// Both want item 0; its price must rise above 0.
	if prices[0] == 0 {
		t.Fatalf("competitive item price stayed 0: %v", prices)
	}
	if assign[0] == assign[1] {
		t.Fatal("both buyers assigned the same item")
	}
}

func TestAPISolveLLPPriority(t *testing.T) {
	g := GenerateRoadNetwork(10, 10, 0.3, 5)
	// The exported priority entry point, with a custom wrapper predicate is
	// exercised in internal tests; here use it through ShortestPathsDijkstra
	// plus a direct call.
	d1 := ShortestPathsDijkstra(2, g, 0)
	d2 := ShortestPaths(LLPSequential, 1, g, 0)
	for v := range d1 {
		if d1[v] != d2[v] {
			t.Fatalf("dijkstra driver differs at %d", v)
		}
	}
}

func TestAPIMatrixMarketAndMETIS(t *testing.T) {
	g := GenerateErdosRenyi(60, 200, WeightInteger, 6)
	oracleWeight := Kruskal(g).Weight

	var mtx bytes.Buffer
	if err := WriteMatrixMarket(&mtx, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadMatrixMarket(&mtx)
	if err != nil {
		t.Fatal(err)
	}
	if w := Kruskal(g2).Weight; w != oracleWeight {
		t.Fatalf("mtx round trip changed MSF weight: %g vs %g", w, oracleWeight)
	}

	var metis bytes.Buffer
	if err := WriteMETIS(&metis, g); err != nil {
		t.Fatal(err)
	}
	g3, err := ReadMETIS(&metis)
	if err != nil {
		t.Fatal(err)
	}
	if w := Kruskal(g3).Weight; w != oracleWeight {
		t.Fatalf("metis round trip changed MSF weight: %g vs %g", w, oracleWeight)
	}

	var bin bytes.Buffer
	if err := WriteBinaryGraph(&bin, g); err != nil {
		t.Fatal(err)
	}
	if bin.Len() == 0 {
		t.Fatal("empty binary output")
	}
}

func TestAPITraceStoreRoundTrip(t *testing.T) {
	tid, parent, flags, ok := ParseTraceparent(
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	if !ok {
		t.Fatal("traceparent did not parse")
	}
	st := NewTraceStore(TraceStoreConfig{Capacity: 4})
	root := st.StartTrace("api.solve", tid, parent, flags)
	if !root.Valid() {
		t.Fatal("no trace slot available")
	}
	if got := FormatTraceparent(root.TraceID(), root.ID(), flags); len(got) != 55 {
		t.Fatalf("traceparent %q has length %d, want 55", got, len(got))
	}
	ctx := ContextWithTrace(context.Background(), root.Ref())
	ref := TraceRefFromContext(ctx)
	if !ref.Valid() || ref.TraceID() != tid {
		t.Fatalf("context ref = %+v, want trace %v", ref, tid)
	}
	child := ref.Start("api.child")
	child.SetInt("edges", 42)
	child.End()
	root.Finish()

	// The inbound sampled flag forces a tail-sample keep.
	d, ok := st.Get(tid)
	if !ok {
		t.Fatal("sampled trace was not kept")
	}
	if d.KeepReason != "forced" || len(d.Spans) != 2 {
		t.Fatalf("kept trace = reason %q with %d spans, want forced with 2",
			d.KeepReason, len(d.Spans))
	}
	var buf bytes.Buffer
	if err := d.WriteChromeTrace(&buf); err != nil || buf.Len() == 0 {
		t.Fatalf("chrome export: err=%v len=%d", err, buf.Len())
	}
}
