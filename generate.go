package llpmst

import "llpmst/internal/gen"

// WeightKind selects how generated edge weights are drawn.
type WeightKind = gen.WeightKind

// Weight distributions for the generators.
const (
	// WeightUniform draws float32 weights uniformly from [0, 1).
	WeightUniform = gen.WeightUniform
	// WeightInteger draws integer-valued weights from [1, 10000], matching
	// DIMACS road files (and introducing ties, which the canonical edge-id
	// tie-break resolves).
	WeightInteger = gen.WeightInteger
)

// GenerateRMAT generates a Graph500-style Kronecker graph with 2^scale
// vertices and edgeFactor*2^scale edges (the paper's graph500-s25-ef16
// family). Deterministic in seed.
func GenerateRMAT(scale, edgeFactor int, wk WeightKind, seed int64) *Graph {
	return gen.RMAT(0, scale, edgeFactor, wk, seed)
}

// GenerateRoadNetwork generates a road-like graph on a width x height grid:
// a random spanning tree plus each remaining grid edge with probability
// extra (average degree about 2+2*extra; the USA road network's is ~2.4).
// Always connected; deterministic in seed.
func GenerateRoadNetwork(width, height int, extra float64, seed int64) *Graph {
	return gen.RoadNetwork(0, width, height, extra, seed)
}

// GenerateGeometric generates a random geometric graph: n points in the
// unit square joined when within the given radius, weighted by scaled
// Euclidean distance. See GeometricConnectivityRadius for a radius that
// makes the result connected with high probability.
func GenerateGeometric(n int, radius float64, seed int64) *Graph {
	return gen.Geometric(0, n, radius, seed)
}

// GeometricConnectivityRadius returns a radius making GenerateGeometric(n)
// connected with high probability.
func GeometricConnectivityRadius(n int) float64 { return gen.ConnectivityRadius(n) }

// GenerateErdosRenyi generates a G(n, m) random graph with uniformly random
// endpoints (self-loops dropped). Deterministic in seed.
func GenerateErdosRenyi(n, m int, wk WeightKind, seed int64) *Graph {
	return gen.ErdosRenyi(0, n, m, wk, seed)
}

// GenerateSmallWorld generates a Watts-Strogatz small-world graph: a ring
// lattice with k neighbors per vertex, each edge rewired with probability
// beta. Deterministic in seed.
func GenerateSmallWorld(n, k int, beta float64, seed int64) *Graph {
	return gen.SmallWorld(0, n, k, beta, seed)
}

// GeneratePreferentialAttachment generates a Barabási-Albert graph: each
// arriving vertex attaches m edges degree-proportionally. Connected by
// construction; deterministic in seed.
func GeneratePreferentialAttachment(n, m int, seed int64) *Graph {
	return gen.PreferentialAttachment(0, n, m, seed)
}
