package llpmst

// End-to-end integration tests: generate → persist → reload → solve with
// every algorithm → cross-check → certify, across morphologies and worker
// counts, all through the public API.

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
)

func TestEndToEndPipeline(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
	}{
		{"road", GenerateRoadNetwork(40, 40, 0.25, 101)},
		{"rmat", GenerateRMAT(10, 8, WeightUniform, 102)},
		{"rmat-ties", GenerateRMAT(9, 8, WeightInteger, 103)},
		{"geo", GenerateGeometric(1200, 2*GeometricConnectivityRadius(1200), 104)},
		{"er", GenerateErdosRenyi(1500, 6000, WeightInteger, 105)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Persist and reload through both formats.
			dir := t.TempDir()
			binPath := filepath.Join(dir, "g.llpg")
			if err := SaveBinary(binPath, tc.g); err != nil {
				t.Fatal(err)
			}
			g, err := LoadGraph(binPath)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := WriteDIMACS(&buf, tc.g); err != nil {
				t.Fatal(err)
			}
			gText, err := ReadDIMACS(&buf)
			if err != nil {
				t.Fatal(err)
			}
			// The reloaded graphs must yield the same MSF weight (edge ids
			// may be renumbered by text round trips; weight is invariant).
			oracle := Kruskal(g)
			if w := Kruskal(gText).Weight; w != oracle.Weight {
				t.Fatalf("text round trip changed MSF weight: %g vs %g", w, oracle.Weight)
			}
			// Every algorithm, several worker counts, identical forests.
			for _, workers := range []int{1, 3, 7} {
				for _, alg := range Algorithms() {
					f, err := Run(alg, g, Options{Workers: workers})
					if err != nil {
						t.Fatal(err)
					}
					if !f.Equal(oracle) {
						t.Fatalf("%s/%dw differs from oracle", alg, workers)
					}
				}
			}
			// Certify minimality once.
			if err := VerifyMinimum(g, oracle); err != nil {
				t.Fatal(err)
			}
			// The incremental maintainer fed the same edges converges to the
			// same weight.
			inc := NewIncrementalMSF(g.NumVertices())
			for _, e := range g.Edges() {
				if _, err := inc.Insert(e.U, e.V, e.W); err != nil {
					t.Fatal(err)
				}
			}
			if inc.Weight() != oracle.Weight {
				t.Fatalf("incremental weight %g, oracle %g", inc.Weight(), oracle.Weight)
			}
		})
	}
}

func TestEndToEndDeterminismAcrossRuns(t *testing.T) {
	g := GenerateRMAT(11, 8, WeightUniform, 7)
	ref := LLPPrimParallel(g, Options{Workers: 5})
	for i := 0; i < 5; i++ {
		if !LLPPrimParallel(g, Options{Workers: 5}).Equal(ref) {
			t.Fatal("LLPPrimParallel nondeterministic output")
		}
		if !LLPBoruvka(g, Options{Workers: 5}).Equal(ref) {
			t.Fatal("LLPBoruvka disagrees")
		}
		if !ParallelBoruvka(g, Options{Workers: 5}).Equal(ref) {
			t.Fatal("ParallelBoruvka disagrees")
		}
		if !KKT(g, Options{Seed: int64(i)}).Equal(ref) {
			t.Fatal("KKT disagrees")
		}
	}
}

func TestEndToEndWorkMetricsThroughPublicAPI(t *testing.T) {
	g := GenerateRoadNetwork(32, 32, 0.2, 9)
	var prim, llpPrim WorkMetrics
	if _, err := Run(AlgPrim, g, Options{Metrics: &prim}); err != nil {
		t.Fatal(err)
	}
	LLPPrim(g, Options{Metrics: &llpPrim})
	if llpPrim.HeapOps() >= prim.HeapOps() {
		t.Fatalf("public API metrics: llp-prim heap ops %d not below prim %d",
			llpPrim.HeapOps(), prim.HeapOps())
	}
	if llpPrim.String() == "" {
		t.Fatal("empty metrics string")
	}
}

func TestEndToEndLLPInstancesAgree(t *testing.T) {
	g := GenerateRoadNetwork(24, 24, 0.3, 11)
	base := ShortestPaths(LLPSequential, 1, g, 0)
	for _, mode := range []LLPMode{LLPAsync, LLPRound} {
		d := ShortestPaths(mode, 4, g, 0)
		for v := range d {
			if d[v] != base[v] {
				t.Fatalf("mode %v: dist[%d] differs", mode, v)
			}
		}
	}
	dij := ShortestPathsDijkstra(4, g, 0)
	for v := range dij {
		if dij[v] != base[v] {
			t.Fatalf("dijkstra driver: dist[%d] differs", v)
		}
	}
}

func TestEndToEndStableMarriagePublicAPI(t *testing.T) {
	n := 16
	prefM := make([][]uint32, n)
	prefW := make([][]uint32, n)
	for i := 0; i < n; i++ {
		prefM[i] = make([]uint32, n)
		prefW[i] = make([]uint32, n)
		for k := 0; k < n; k++ {
			prefM[i][k] = uint32(k)
			prefW[i][k] = uint32((i + k) % n)
		}
	}
	match := StableMarriage(LLPAsync, 4, prefM, prefW)
	if !IsStableMatching(prefM, prefW, match) {
		t.Fatal("unstable matching")
	}
}

func ExampleMinimumSpanningForest() {
	g, _ := NewGraph(4, []Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 3}, {U: 3, V: 0, W: 4},
	})
	f := MinimumSpanningForest(g, Options{Workers: 1})
	fmt.Println(f)
	// Output: forest{n=4 edges=3 trees=1 weight=6}
}
