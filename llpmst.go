// Package llpmst computes minimum spanning trees and forests with the
// parallel algorithms of "Parallel Minimum Spanning Tree Algorithms via
// Lattice Linear Predicate Detection" (Alves & Garg, 2022): LLP-Prim and
// LLP-Boruvka, alongside the classical baselines they are measured against
// (Prim, Boruvka, parallel Boruvka, Kruskal, Filter-Kruskal).
//
// # Quick start
//
//	g, err := llpmst.NewGraph(4, []llpmst.Edge{
//		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 3}, {U: 3, V: 0, W: 4},
//	})
//	if err != nil { ... }
//	f := llpmst.MinimumSpanningForest(g, llpmst.Options{})
//	fmt.Println(f.Weight, f.EdgeIDs)
//
// # Choosing an algorithm
//
// MinimumSpanningForest picks per the paper's conclusion: LLP-Prim for one
// worker (it beats Prim single-threaded by reducing heap work), LLP-Boruvka
// when several workers are available (Boruvka-family algorithms scale
// near-linearly and dominate at high core counts). Call a specific
// algorithm directly, or Run with an Algorithm constant, to override.
//
// All algorithms return the same, unique forest: ties between equal weights
// are broken by canonical edge id, the paper's "make weights unique by
// incorporating identities" device.
//
// # The LLP framework
//
// The generic engine (the paper's Algorithm 1) is exposed through
// LLPPredicate and SolveLLP; ShortestPaths and ConnectedComponents are two
// non-MST instances included to show the framework's breadth.
package llpmst

import (
	"context"
	"io"
	"os"
	"slices"

	"llpmst/internal/dist"
	"llpmst/internal/fault"
	"llpmst/internal/graph"
	"llpmst/internal/llp"
	"llpmst/internal/mst"
	"llpmst/internal/obs"
	"llpmst/internal/par"
	"llpmst/internal/registry"
	"llpmst/internal/resilient"
)

// Edge is one undirected weighted edge: endpoints U, V and a finite,
// non-negative weight W.
type Edge = graph.Edge

// Graph is an immutable undirected weighted graph in CSR form.
type Graph = graph.CSR

// Stats summarizes a graph's shape; see (*Graph).ComputeStats.
type Stats = graph.Stats

// Forest is a minimum spanning forest: sorted canonical edge ids, total
// weight, and tree count.
type Forest = mst.Forest

// Options configures worker counts and the ablation switches of the LLP
// algorithms. The zero value uses GOMAXPROCS workers and the paper-default
// configuration.
type Options = mst.Options

// Algorithm names one of the implemented MSF algorithms, for use with Run.
type Algorithm = mst.Algorithm

// WorkMetrics counts machine-independent operations (heap traffic, early
// fixes, contraction rounds, ...). Set Options.Metrics to collect them —
// they quantify the paper's mechanism claims, e.g. that LLP-Prim performs
// fewer heap operations than Prim.
type WorkMetrics = mst.WorkMetrics

// Workspace is a reusable arena for the parallel algorithms' O(n+m) scratch
// state. Set Options.Workspace to reach O(1) steady-state allocations across
// repeated runs; one Workspace serves one run at a time. See mst.Workspace.
type Workspace = mst.Workspace

// NewWorkspace returns an empty Workspace; buffers grow lazily on first use.
func NewWorkspace() *Workspace { return mst.NewWorkspace() }

// The implemented algorithms (see Run).
const (
	AlgPrim            = mst.AlgPrim
	AlgPrimLazy        = mst.AlgPrimLazy
	AlgLLPPrim         = mst.AlgLLPPrim
	AlgLLPPrimParallel = mst.AlgLLPPrimParallel
	AlgLLPPrimAsync    = mst.AlgLLPPrimAsync
	AlgBoruvka         = mst.AlgBoruvka
	AlgParallelBoruvka = mst.AlgParallelBoruvka
	AlgLLPBoruvka      = mst.AlgLLPBoruvka
	AlgSemiringBoruvka = mst.AlgSemiringBoruvka
	AlgKruskal         = mst.AlgKruskal
	AlgFilterKruskal   = mst.AlgFilterKruskal
	AlgKKT             = mst.AlgKKT
)

// Algorithms lists every implemented algorithm.
func Algorithms() []Algorithm { return mst.Algorithms() }

// NewGraph builds a graph with n vertices from an undirected edge list.
// Self-loops are dropped; parallel edges are kept. Endpoints must be < n and
// weights finite and non-negative. The edge list is retained; do not modify
// it afterwards.
func NewGraph(n int, edges []Edge) (*Graph, error) {
	return graph.FromEdges(0, n, edges)
}

// NewGraphWorkers is NewGraph with an explicit builder worker count.
func NewGraphWorkers(workers, n int, edges []Edge) (*Graph, error) {
	return graph.FromEdges(workers, n, edges)
}

// MinimumSpanningForest computes the minimum spanning forest with the
// algorithm the paper's conclusion recommends for the configured worker
// count: LLP-Prim for a single worker, LLP-Boruvka otherwise.
func MinimumSpanningForest(g *Graph, opts Options) *Forest {
	f, _ := minimumSpanningForest(g, opts)
	return f
}

// MinimumSpanningForestCtx is MinimumSpanningForest with cooperative
// cancellation: ctx is polled throughout the run, and a cancelled run
// returns promptly with the partial forest built so far (always a subset of
// the canonical MSF) and an error wrapping ctx.Err(). Test with
// errors.Is(err, context.Canceled) or context.DeadlineExceeded.
func MinimumSpanningForestCtx(ctx context.Context, g *Graph, opts Options) (*Forest, error) {
	opts.Ctx = ctx
	return minimumSpanningForest(g, opts)
}

func minimumSpanningForest(g *Graph, opts Options) (*Forest, error) {
	if opts.Workers == 1 {
		return mst.LLPPrim(g, opts)
	}
	return mst.LLPBoruvka(g, opts)
}

// Run computes the minimum spanning forest with the named algorithm.
func Run(alg Algorithm, g *Graph, opts Options) (*Forest, error) {
	return mst.Run(alg, g, opts)
}

// RunCtx is Run with cooperative cancellation (see
// MinimumSpanningForestCtx for the cancellation contract). The ctx
// argument takes precedence over opts.Ctx.
func RunCtx(ctx context.Context, alg Algorithm, g *Graph, opts Options) (*Forest, error) {
	return mst.RunCtx(ctx, alg, g, opts)
}

// Prim runs the classical Prim's algorithm (indexed heap, Algorithm 2).
func Prim(g *Graph) *Forest { return mst.Prim(g) }

// LLPPrim runs the sequential LLP-Prim (Algorithm 5, 1 thread).
func LLPPrim(g *Graph, opts Options) *Forest { f, _ := mst.LLPPrim(g, opts); return f }

// LLPPrimParallel runs LLP-Prim with the bag R processed in parallel
// frontier waves.
func LLPPrimParallel(g *Graph, opts Options) *Forest { f, _ := mst.LLPPrimParallel(g, opts); return f }

// LLPPrimAsync runs LLP-Prim with the bag R processed by an asynchronous
// work-stealing scheduler (the Galois-style schedule the paper's
// implementation uses).
func LLPPrimAsync(g *Graph, opts Options) *Forest { f, _ := mst.LLPPrimAsync(g, opts); return f }

// Boruvka runs the sequential Boruvka's algorithm (Algorithm 3).
func Boruvka(g *Graph) *Forest { return mst.Boruvka(g) }

// ParallelBoruvka runs the GBBS-style parallel Boruvka baseline.
func ParallelBoruvka(g *Graph, opts Options) *Forest { f, _ := mst.ParallelBoruvka(g, opts); return f }

// LLPBoruvka runs LLP-Boruvka (Algorithm 6).
func LLPBoruvka(g *Graph, opts Options) *Forest { f, _ := mst.LLPBoruvka(g, opts); return f }

// SemiringBoruvka runs the sparse-matrix (GraphBLAS-style) Boruvka backend:
// per-round min-edge selection as a min-plus semiring SpMV over the packed
// (weight, id) keys, with no atomics in the row-reduction loop. It produces
// the same unique MSF as every other algorithm here, and is the portfolio's
// preferred backend on very dense graphs.
func SemiringBoruvka(g *Graph, opts Options) *Forest { f, _ := mst.SemiringBoruvka(g, opts); return f }

// Kruskal runs the classical Kruskal's algorithm.
func Kruskal(g *Graph) *Forest { return mst.Kruskal(g) }

// KKT runs the Karger-Klein-Tarjan randomized expected-linear-time MSF
// algorithm (the §III lineage the paper targets for future comparison).
// Reproducible via Options.Seed; the output is the same canonical forest
// for every seed.
func KKT(g *Graph, opts Options) *Forest { return mst.KKT(g, opts) }

// FilterKruskal runs the parallel filter-Kruskal variant.
func FilterKruskal(g *Graph, opts Options) *Forest { return mst.FilterKruskal(g, opts) }

// Observer receives runtime observability events from a run: phase spans,
// scheduler counters (pushes, pops, steals), contraction-round and
// pointer-jumping counters, and gauges (queue depth, frontier size, live
// edges). Set Options.Observer, or attach one to a context with
// WithObserver. Implementations must be safe for concurrent use; the
// default (nil) observer costs nothing on the hot paths.
type Observer = obs.Collector

// ObsCounter and ObsGauge identify the monotonic counters and level gauges
// reported to an Observer; their String methods give stable names
// ("sched.push", "rounds", "queue.depth", ...).
type (
	ObsCounter = obs.Counter
	ObsGauge   = obs.Gauge
)

// RecordingObserver is an Observer that accumulates everything in memory:
// per-span wall-clock timeline, counter totals, and gauge maxima. Safe for
// concurrent use; see NewRecordingObserver.
type RecordingObserver = obs.Recording

// NewRecordingObserver returns an empty RecordingObserver. Query it with
// Counter/GaugeMax/Spans after the run, or serialize the whole capture with
// WriteTimeline (the payload behind mstbench -trace-out).
func NewRecordingObserver() *RecordingObserver { return obs.NewRecording() }

// WithObserver returns a context carrying col. Runs that receive the
// context (RunCtx, MinimumSpanningForestCtx, or Options.Ctx) report to col
// without needing Options.Observer set — useful when the context already
// flows through the call stack.
func WithObserver(ctx context.Context, col Observer) context.Context {
	return obs.NewContext(ctx, col)
}

// FlightRecorder is an always-on, allocation-free Observer: per-worker ring
// buffers of timestamped events (spans, counter deltas, gauge samples, round
// markers) with worker and round attribution. After — or during — a run,
// query RoundSeries for per-round convergence data (live edges, pointer-jump
// work, early-fix vs heap traffic), SpanSummaries for log-bucket latency
// digests, or export the capture with WriteChromeTrace (Perfetto-loadable,
// one track per worker), WritePrometheus / WriteProgress (the payloads
// behind mstbench's /metrics and /progress endpoints), and WriteRoundCSV.
type FlightRecorder = obs.FlightRecorder

// RoundStats is one round's segment of a FlightRecorder capture: counter
// deltas and last gauge samples between consecutive round markers.
type RoundStats = obs.RoundStats

// SpanSummary is a FlightRecorder latency digest for one span name: count,
// total, and p50/p95/p99 from log-2 nanosecond buckets.
type SpanSummary = obs.SpanSummary

// NewFlightRecorder returns a FlightRecorder with one event ring per worker
// (plus one for the driver). workers <= 0 sizes for GOMAXPROCS; eventCap <= 0
// picks the default per-ring capacity. Rings overwrite oldest events when
// full, so a recorder is safe to leave attached to unbounded work.
func NewFlightRecorder(workers, eventCap int) *FlightRecorder {
	return obs.NewFlightRecorder(workers, eventCap)
}

// The observer counter and gauge identities most useful with a
// FlightRecorder's RoundSeries: contraction and pointer-jumping work for the
// Boruvka family, early-fix vs heap traffic for the Prim family.
const (
	CtrRounds       = obs.CtrRounds
	CtrJumpRounds   = obs.CtrJumpRounds
	CtrJumpAdvances = obs.CtrJumpAdvances
	CtrEarlyFix     = obs.CtrEarlyFix
	CtrHeapPush     = obs.CtrHeapPush
	CtrHeapPop      = obs.CtrHeapPop

	GaugeLiveEdges = obs.GaugeLiveEdges
	GaugeFrontier  = obs.GaugeFrontier
	GaugeHeapSize  = obs.GaugeHeapSize
)

// TraceID is a 128-bit W3C trace-context trace ID.
type TraceID = obs.TraceID

// SpanID is a 64-bit W3C trace-context span ID.
type SpanID = obs.SpanID

// TraceRef is a lightweight handle for opening child spans of an existing
// span; the zero TraceRef is a valid no-op.
type TraceRef = obs.TraceRef

// Span is one open span of a request trace. Spans are value handles into a
// TraceStore's pre-allocated storage; the zero Span is a valid no-op.
type Span = obs.Span

// TraceStore is a fixed-memory tail-sampling trace store: traces are
// recorded unconditionally and the keep/drop decision runs at completion,
// when the duration and error status are known. Errored traces and the
// slow tail are always kept; the rest are coin-flipped at SampleRate.
type TraceStore = obs.TraceStore

// TraceStoreConfig sizes a TraceStore; the zero value picks usable
// defaults. See obs.TraceStoreConfig.
type TraceStoreConfig = obs.TraceStoreConfig

// TraceStoreStats counts a TraceStore's sampling decisions.
type TraceStoreStats = obs.TraceStoreStats

// TraceData is a kept trace's exportable span tree; TraceSummary is its
// index row. TraceData's WriteJSON and WriteChromeTrace render it for
// humans (the latter loads into Perfetto / chrome://tracing).
type (
	TraceData    = obs.TraceData
	TraceSummary = obs.TraceSummary
)

// NewTraceStore builds a TraceStore; all trace and span memory is
// allocated up front, so the recording fast path stays allocation-free.
func NewTraceStore(cfg TraceStoreConfig) *TraceStore { return obs.NewTraceStore(cfg) }

// ParseTraceparent parses a W3C traceparent header value.
func ParseTraceparent(s string) (tid TraceID, parent SpanID, flags byte, ok bool) {
	return obs.ParseTraceparent(s)
}

// FormatTraceparent renders a W3C traceparent header value.
func FormatTraceparent(tid TraceID, span SpanID, flags byte) string {
	return obs.FormatTraceparent(tid, span, flags)
}

// ContextWithTrace returns ctx carrying ref; the library's serving layers
// (registry, resilient runner, stream engine) open their child spans under
// whatever trace ref the context carries.
func ContextWithTrace(ctx context.Context, ref TraceRef) context.Context {
	return obs.ContextWithTrace(ctx, ref)
}

// TraceRefFromContext returns the trace ref carried by ctx, or the no-op
// zero TraceRef.
func TraceRefFromContext(ctx context.Context) TraceRef { return obs.TraceRefFromContext(ctx) }

// IncrementalMSF maintains a minimum spanning forest under online edge
// insertions; see NewIncrementalMSF.
type IncrementalMSF = mst.Incremental

// NewIncrementalMSF creates an empty incremental minimum-spanning-forest
// maintainer over n vertices. Each Insert either ignores the new edge, adds
// it, or swaps it for the heaviest edge on the cycle it closes, so the
// maintained forest is always the canonical MSF of everything inserted.
func NewIncrementalMSF(n int) *IncrementalMSF { return mst.NewIncremental(n) }

// DistSimStats reports a distributed run's costs: Boruvka phases,
// synchronous message rounds, and total messages.
type DistSimStats = dist.SimStats

// DistributedMSF computes the minimum spanning forest with a GHS-style
// protocol on a simulated synchronous message-passing network: nodes know
// only their incident edges and communicate over them. Returns the chosen
// edge ids (sorted) and the simulation's phase/round/message counts. The
// elected forest is the same canonical MSF every other algorithm returns.
func DistributedMSF(g *Graph) ([]uint32, DistSimStats, error) {
	ids, stats, err := dist.MSF(g)
	if err != nil {
		return nil, stats, err
	}
	slices.Sort(ids)
	return ids, stats, nil
}

// FaultPlan schedules what goes wrong on a faulty distributed run: per-arc
// message drop/duplicate/delay/reorder probabilities (FaultProbs) and node
// crash schedules (FaultCrash). The zero plan injects nothing. Identical
// plans (seed included) reproduce identical runs.
type (
	FaultPlan  = fault.Plan
	FaultProbs = fault.Probs
	FaultCrash = fault.Crash
)

// PartitionError is returned by DistributedMSFFaulty when crash-stop
// failures make part of the graph permanently unreachable. It names the
// dead nodes, the live vertices stranded with them, and the sound partial
// forest elected before the partition.
type PartitionError = dist.PartitionError

// PanicError is the typed error a worker panic inside the parallel runtime
// is converted to: it carries the panic value, the work-item index, and the
// captured stack. Algorithms that hit one still return a sound partial
// forest alongside an error wrapping the PanicError.
type PanicError = par.PanicError

// ResilientRunner is the resilient execution engine: admission control
// (bounded concurrency + memory budget), per-algorithm circuit breakers,
// hedged portfolio execution with adaptive delays, a sampling verification
// gate, and a sequential Kruskal fallback. Safe for concurrent use; one
// runner serves a whole process.
type (
	ResilientRunner = resilient.Runner
	ResilientConfig = resilient.Config
	ResilientResult = resilient.Result
	ResilientStats  = resilient.Stats
	ResilientChaos  = resilient.Chaos
	BreakerStatus   = resilient.BreakerStatus
	BreakerState    = resilient.BreakerState
)

// OverloadError is the typed rejection admission control returns when a
// solve would exceed the runner's concurrency or memory budget; it unwraps
// to ErrOverloaded, so errors.Is(err, ErrOverloaded) matches any shed.
type OverloadError = resilient.OverloadError

// ErrOverloaded is the sentinel every admission-control rejection matches.
var ErrOverloaded = resilient.ErrOverloaded

// NewResilientRunner builds a resilient runner from cfg. The zero Config is
// serviceable: adaptive hedging, an auto-picked portfolio, breakers
// tripping after 3 consecutive failures, and a 2×GOMAXPROCS admission gate.
func NewResilientRunner(cfg ResilientConfig) *ResilientRunner { return resilient.New(cfg) }

// RunResilient answers one solve through a fresh default-configured
// resilient runner and waits for its hedge legs to drain — a convenience
// for one-shot callers; services should build one NewResilientRunner and
// share it.
func RunResilient(ctx context.Context, g *Graph, cfg ResilientConfig) (ResilientResult, error) {
	r := resilient.New(cfg)
	res, err := r.Solve(ctx, g)
	_ = r.Drain(context.Background())
	return res, err
}

// GraphRegistry is the named-graph registry behind mstserve's /graphs
// endpoints: immutable versioned CSR snapshots under an LRU memory bound,
// a version-keyed result cache fronted by singleflight (concurrent misses
// for the same graph collapse into one solve), and per-tenant token-bucket
// quotas. Safe for concurrent use; one registry serves a whole process.
type (
	GraphRegistry        = registry.Registry
	GraphRegistryConfig  = registry.Config
	GraphInfo            = registry.GraphInfo
	RegistrySolveOptions = registry.SolveOptions
	RegistrySolveResult  = registry.SolveResult
	RegistryStats        = registry.Stats
	TenantQuota          = registry.Quota
)

// GraphNotFoundError and QuotaError are the registry's typed failures;
// they unwrap to ErrGraphNotFound and ErrQuotaExceeded respectively, so
// errors.Is works across the facade.
type (
	GraphNotFoundError = registry.NotFoundError
	QuotaError         = registry.QuotaError
)

// Registry sentinel errors: a solve or lookup of an unknown (or
// superseded) graph matches ErrGraphNotFound; a solve rejected by a
// tenant's token bucket matches ErrQuotaExceeded.
var (
	ErrGraphNotFound = registry.ErrNotFound
	ErrQuotaExceeded = registry.ErrQuotaExceeded
)

// NewGraphRegistry builds a graph registry from cfg. The zero Config is
// serviceable for caching alone (no solver: Put/Get/Snapshot work and
// Solve reports it unconfigured); production registries set Solver — a
// *ResilientRunner satisfies the interface directly — plus a memory
// budget and quotas.
func NewGraphRegistry(cfg GraphRegistryConfig) *GraphRegistry { return registry.New(cfg) }

// DistributedMSFFaulty is DistributedMSF over a lossy network driven by
// plan: messages drop, duplicate, arrive late or reordered, and nodes crash
// per the schedule, while a reliable transport (sequence numbers, acks,
// retransmission with backoff) masks the damage. Any schedule that
// eventually delivers retransmissions and has no permanent crash yields
// exactly the canonical MSF. Permanent crashes partition the run: the
// result is a sound partial forest and the error unwraps to a
// *PartitionError. DistSimStats additionally reports retransmissions and
// injected fault counts.
func DistributedMSFFaulty(g *Graph, plan FaultPlan) ([]uint32, DistSimStats, error) {
	ids, stats, err := dist.RunGHSFaulty(context.Background(), g, plan)
	slices.Sort(ids)
	return ids, stats, err
}

// ForestFromEdgeIDs materializes a Forest from raw edge ids, e.g. the ids a
// distributed run elects. The ids are trusted to form a forest; use
// CheckForest to verify.
func ForestFromEdgeIDs(g *Graph, ids []uint32) *Forest {
	return mst.ForestFromEdgeIDs(g, ids)
}

// CheckForest verifies structural validity of a forest (acyclic, spanning,
// consistent bookkeeping) without checking minimality.
func CheckForest(g *Graph, f *Forest) error { return mst.CheckForest(g, f) }

// VerifyMinimum verifies that f is the minimum spanning forest of g via the
// cycle property in O((n+m) log n).
func VerifyMinimum(g *Graph, f *Forest) error { return mst.VerifyMinimum(g, f) }

// ReadDIMACS parses a DIMACS shortest-path (.gr) file, the format of the
// paper's road-network dataset.
func ReadDIMACS(r io.Reader) (*Graph, error) { return graph.ReadDIMACS(0, r) }

// WriteDIMACS writes g in DIMACS .gr format.
func WriteDIMACS(w io.Writer, g *Graph) error { return graph.WriteDIMACS(w, g) }

// LoadGraph reads a graph from a file: .gr (DIMACS) or the compact binary
// .llpg format, chosen by extension sniffing (binary magic).
func LoadGraph(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// The binary magic 0x4c4c5047 serializes little-endian as "GPLL".
	var magic [4]byte
	_, readErr := io.ReadFull(f, magic[:])
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if readErr == nil && magic == [4]byte{'G', 'P', 'L', 'L'} {
		return graph.ReadBinary(0, f)
	}
	return graph.ReadDIMACS(0, f)
}

// ReadMatrixMarket parses a Matrix Market coordinate file (.mtx) into an
// undirected weighted graph.
func ReadMatrixMarket(r io.Reader) (*Graph, error) { return graph.ReadMatrixMarket(0, r) }

// WriteMatrixMarket writes g as a symmetric Matrix Market coordinate file.
func WriteMatrixMarket(w io.Writer, g *Graph) error { return graph.WriteMatrixMarket(w, g) }

// ReadMETIS parses a METIS adjacency file into an undirected weighted graph
// (fmt codes 0 and 001).
func ReadMETIS(r io.Reader) (*Graph, error) { return graph.ReadMETIS(0, r) }

// WriteMETIS writes g in METIS adjacency format with integer edge weights.
func WriteMETIS(w io.Writer, g *Graph) error { return graph.WriteMETIS(w, g) }

// WriteBinaryGraph writes g to w in the compact binary .llpg format.
func WriteBinaryGraph(w io.Writer, g *Graph) error { return graph.WriteBinary(w, g) }

// SaveBinary writes g to path in the compact binary format for fast reload.
func SaveBinary(path string, g *Graph) error { return graph.SaveBinary(path, g) }

// LoadBinary reads a graph written by SaveBinary.
func LoadBinary(path string) (*Graph, error) { return graph.LoadBinary(0, path) }

// LLPPredicate is a lattice-linear predicate for the generic LLP engine
// (the paper's Algorithm 1); see SolveLLP.
type LLPPredicate = llp.Predicate

// LLPMode selects the LLP driver: LLPAsync (barrier-free parallel, the
// default), LLPRound (barrier-synchronized rounds) or LLPSequential.
type LLPMode = llp.Mode

// LLP driver modes.
const (
	LLPAsync      = llp.ModeAsync
	LLPRound      = llp.ModeRound
	LLPSequential = llp.ModeSequential
)

// LLPStats reports rounds and advances performed by a driver.
type LLPStats = llp.Stats

// SolveLLP runs the generic LLP algorithm: repeatedly advance every
// forbidden index until none remains. The final state lives in the
// predicate's own storage.
func SolveLLP(mode LLPMode, workers int, pred LLPPredicate) LLPStats {
	return llp.Run(mode, workers, pred)
}

// ShortestPaths computes single-source shortest path distances with the
// LLP-Bellman-Ford instance (+inf for unreachable vertices).
func ShortestPaths(mode LLPMode, workers int, g *Graph, source uint32) []float64 {
	d, _ := llp.SolveShortestPaths(mode, workers, g, source)
	return d
}

// LLPPriorityPredicate extends LLPPredicate with an advance-target
// priority; see SolveLLPPriority.
type LLPPriorityPredicate = llp.PriorityPredicate

// SolveLLPPriority runs the LLP algorithm advancing, each round, only the
// forbidden indices within delta of the minimum priority. With delta == 0
// this is the evaluation order that turns LLP-Bellman-Ford into Dijkstra's
// algorithm (the derivation the paper's reference [15] describes).
func SolveLLPPriority(workers int, pred LLPPriorityPredicate, delta uint64) LLPStats {
	return llp.RunPriority(workers, pred, delta)
}

// ShortestPathsDijkstra computes single-source shortest paths with the
// priority-ordered LLP driver at delta == 0: each reachable vertex settles
// in exactly one advance, Dijkstra's order.
func ShortestPathsDijkstra(workers int, g *Graph, source uint32) []float64 {
	d, _ := llp.SolveShortestPathsDijkstra(workers, g, source)
	return d
}

// ShortestPathsDeltaStepping computes single-source shortest paths with
// bucketed delta-stepping on the ordered work scheduler: buckets of width
// delta run in parallel, in bucket order — the practical point between the
// Bellman-Ford sweeps and Dijkstra's strict order.
func ShortestPathsDeltaStepping(workers int, g *Graph, source uint32, delta float32) []float64 {
	return llp.DeltaStepping(workers, g, source, delta)
}

// ConnectedComponents labels each vertex with the smallest vertex id in its
// component, using the LLP min-label instance.
func ConnectedComponents(mode LLPMode, workers int, g *Graph) []uint32 {
	l, _ := llp.SolveComponents(mode, workers, g)
	return l
}

// StableMarriage computes the man-optimal stable matching with the LLP
// Gale-Shapley instance (§III: one of the problems derivable from the LLP
// algorithm). prefM[m] and prefW[w] are full preference lists (best first);
// the result maps each man to his matched woman.
func StableMarriage(mode LLPMode, workers int, prefM, prefW [][]uint32) []uint32 {
	match, _ := llp.SolveStableMarriage(mode, workers, prefM, prefW)
	return match
}

// IsStableMatching reports whether match is a perfect matching with no
// blocking pair under the given preferences.
func IsStableMatching(prefM, prefW [][]uint32, match []uint32) bool {
	return llp.IsStableMatching(prefM, prefW, match)
}

// MarketClearingPrices computes the componentwise-minimum Walrasian prices
// for a square market (value[b][i] = buyer b's integer valuation of item i)
// with the LLP Demange-Gale-Sotomayor ascending auction (§III's last listed
// LLP-derivable problem). Returns the prices and a clearing assignment
// (buyer -> item, -1 for priced-out buyers).
func MarketClearingPrices(value [][]int64) ([]int64, []int32) {
	p, a, _ := llp.SolveMarketClearing(value)
	return p, a
}
