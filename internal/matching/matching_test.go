package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMaxMatchingBasics(t *testing.T) {
	// Perfect matching on a 3x3 cycle-ish graph.
	b := Bipartite{NL: 3, NR: 3, Adj: [][]uint32{{0, 1}, {1, 2}, {2, 0}}}
	matchL, matchR := MaxMatching(b)
	for l, r := range matchL {
		if r < 0 {
			t.Fatalf("left %d unmatched", l)
		}
		if matchR[r] != int32(l) {
			t.Fatal("matchL/matchR inconsistent")
		}
	}
	// Empty graph.
	e := Bipartite{NL: 2, NR: 2, Adj: [][]uint32{{}, {}}}
	mL, _ := MaxMatching(e)
	if mL[0] != -1 || mL[1] != -1 {
		t.Fatal("matched in an empty graph")
	}
	// Degenerate sizes.
	z := Bipartite{NL: 0, NR: 0, Adj: nil}
	MaxMatching(z)
}

func TestMaxMatchingIsActuallyMatching(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl, nr := 1+rng.Intn(20), 1+rng.Intn(20)
		b := Bipartite{NL: nl, NR: nr, Adj: make([][]uint32, nl)}
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				if rng.Intn(4) == 0 {
					b.Adj[l] = append(b.Adj[l], uint32(r))
				}
			}
		}
		matchL, matchR := MaxMatching(b)
		usedR := map[int32]bool{}
		for l, r := range matchL {
			if r < 0 {
				continue
			}
			if usedR[r] {
				return false // right vertex matched twice
			}
			usedR[r] = true
			// Edge must exist.
			ok := false
			for _, rr := range b.Adj[l] {
				if int32(rr) == r {
					ok = true
				}
			}
			if !ok || matchR[r] != int32(l) {
				return false
			}
		}
		// Maximality (weak check): no trivially augmentable pair.
		for l := 0; l < nl; l++ {
			if matchL[l] >= 0 {
				continue
			}
			for _, r := range b.Adj[l] {
				if matchR[r] < 0 {
					return false // free edge ignored: not maximum
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHallViolatorIsConstricted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		b := Bipartite{NL: n, NR: n, Adj: make([][]uint32, n)}
		for l := 0; l < n; l++ {
			for r := 0; r < n; r++ {
				if rng.Intn(4) == 0 {
					b.Adj[l] = append(b.Adj[l], uint32(r))
				}
			}
		}
		matchL, matchR := MaxMatching(b)
		unmatched := 0
		for l := 0; l < n; l++ {
			if matchL[l] < 0 {
				unmatched++
			}
		}
		left, right := HallViolator(b, matchL, matchR)
		if unmatched == 0 {
			return left == nil && right == nil
		}
		// Constriction: |N(S)| < |S|, and right == N(S) exactly for the
		// demanding members of S.
		if len(right) >= len(left) {
			return false
		}
		inRight := map[uint32]bool{}
		for _, r := range right {
			inRight[r] = true
		}
		for _, l := range left {
			for _, r := range b.Adj[l] {
				if !inRight[r] {
					return false // neighborhood not closed
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
