// Package matching provides bipartite maximum matching (Hopcroft-Karp) and
// Hall-violator extraction — the combinatorial substrate of the LLP market-
// clearing-price instance (the Demange-Gale-Sotomayor auction the paper's
// reference [15] derives from the LLP algorithm).
package matching

// Bipartite is a bipartite graph between nL left and nR right vertices,
// given as adjacency lists from the left side.
type Bipartite struct {
	NL, NR int
	Adj    [][]uint32 // Adj[l] = right neighbors of left vertex l
}

// MaxMatching computes a maximum matching with Hopcroft-Karp. Returns
// matchL (for each left vertex, its right partner or -1) and matchR.
func MaxMatching(b Bipartite) (matchL, matchR []int32) {
	matchL = make([]int32, b.NL)
	matchR = make([]int32, b.NR)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	const inf = int32(1) << 30
	dist := make([]int32, b.NL)
	queue := make([]int32, 0, b.NL)

	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < b.NL; l++ {
			if matchL[l] < 0 {
				dist[l] = 0
				queue = append(queue, int32(l))
			} else {
				dist[l] = inf
			}
		}
		found := false
		for head := 0; head < len(queue); head++ {
			l := queue[head]
			for _, r := range b.Adj[l] {
				next := matchR[r]
				if next < 0 {
					found = true
				} else if dist[next] == inf {
					dist[next] = dist[l] + 1
					queue = append(queue, next)
				}
			}
		}
		return found
	}
	var dfs func(l int32) bool
	dfs = func(l int32) bool {
		for _, r := range b.Adj[l] {
			next := matchR[r]
			if next < 0 || (dist[next] == dist[l]+1 && dfs(next)) {
				matchL[l] = int32(r)
				matchR[r] = l
				return true
			}
		}
		dist[l] = inf
		return false
	}
	for bfs() {
		for l := int32(0); int(l) < b.NL; l++ {
			if matchL[l] < 0 {
				dfs(l)
			}
		}
	}
	return matchL, matchR
}

// HallViolator returns, for a bipartite graph with no perfect matching of
// the left side, a constricted left set S (|N(S)| < |S|) and its right
// neighborhood N(S): the left vertices reachable from some unmatched left
// vertex by alternating paths, and their neighbors. Returns nil, nil if
// every left vertex is matched (no violator).
func HallViolator(b Bipartite, matchL, matchR []int32) (left []uint32, right []uint32) {
	visitedL := make([]bool, b.NL)
	visitedR := make([]bool, b.NR)
	queue := make([]int32, 0)
	for l := 0; l < b.NL; l++ {
		if matchL[l] < 0 {
			visitedL[l] = true
			queue = append(queue, int32(l))
		}
	}
	if len(queue) == 0 {
		return nil, nil
	}
	for head := 0; head < len(queue); head++ {
		l := queue[head]
		for _, r := range b.Adj[l] {
			if visitedR[r] {
				continue
			}
			visitedR[r] = true
			if next := matchR[r]; next >= 0 && !visitedL[next] {
				visitedL[next] = true
				queue = append(queue, next)
			}
		}
	}
	for l := 0; l < b.NL; l++ {
		if visitedL[l] {
			left = append(left, uint32(l))
		}
	}
	for r := 0; r < b.NR; r++ {
		if visitedR[r] {
			right = append(right, uint32(r))
		}
	}
	return left, right
}
