package obs

// Counter identifies a monotonic count. Algorithms add to these through
// Collector.Count; which counters fire depends on the algorithm (see the
// constants' comments).
type Counter uint8

// The defined counters.
const (
	// CtrSchedPush counts items pushed into scheduler work queues
	// (sched.ForEachAsync and friends).
	CtrSchedPush Counter = iota
	// CtrSchedPop counts items popped from a worker's own queue.
	CtrSchedPop
	// CtrSchedSteal counts successful steal operations (batches, not items).
	CtrSchedSteal
	// CtrSchedLevels counts priority levels opened by ForEachOrdered.
	CtrSchedLevels
	// CtrRounds counts outer contraction rounds (Boruvka family).
	CtrRounds
	// CtrJumpRounds counts LLP pointer-jumping sweeps (LLP-Boruvka).
	CtrJumpRounds
	// CtrJumpAdvances counts pointer-jump advance operations (LLP-Boruvka).
	CtrJumpAdvances
	// CtrHeapPush counts priority-queue insertions (Prim family).
	CtrHeapPush
	// CtrHeapPop counts priority-queue removals (Prim family).
	CtrHeapPop
	// CtrEarlyFix counts vertices fixed through a minimum-weight edge
	// without heap traffic (LLP-Prim's "second way").
	CtrEarlyFix
	// CtrGHSPhases counts Boruvka phases of the distributed GHS protocol.
	CtrGHSPhases
	// CtrGHSMessages counts messages delivered by the simulated network.
	CtrGHSMessages
	// CtrGHSRetransmits counts transport retransmissions of unacked
	// messages on a lossy network (dist.FaultyNetwork).
	CtrGHSRetransmits
	// CtrFaultDropped counts messages dropped by the fault injector.
	CtrFaultDropped
	// CtrFaultDuplicated counts messages duplicated by the fault injector.
	CtrFaultDuplicated
	// CtrFaultDelayed counts messages delayed by the fault injector.
	CtrFaultDelayed
	// CtrSchedPanics counts worker panics recovered by the schedulers and
	// converted into PanicError results.
	CtrSchedPanics
	// CtrHedgeLaunched counts backup algorithms launched by the resilient
	// runner after the hedge delay expired.
	CtrHedgeLaunched
	// CtrHedgeWon counts hedged solves where the backup beat the primary.
	CtrHedgeWon
	// CtrBreakerOpen counts circuit-breaker trips (closed/half-open -> open).
	CtrBreakerOpen
	// CtrAdmitShed counts requests shed by admission control (concurrency or
	// memory budget).
	CtrAdmitShed
	// CtrVerifyFailed counts verification-gate failures (CheckForest or a
	// sampled VerifyMinimum rejecting a produced forest).
	CtrVerifyFailed
	// CtrFallbackUsed counts solves answered by the sequential Kruskal
	// fallback after the portfolio failed.
	CtrFallbackUsed
	// CtrRegistryPut counts graph registrations (new ids and version bumps).
	CtrRegistryPut
	// CtrRegistryHit counts solve requests answered from the registry's
	// completed-result cache.
	CtrRegistryHit
	// CtrRegistryMiss counts solve requests that found no cached result and
	// no in-flight solve to join.
	CtrRegistryMiss
	// CtrRegistrySolve counts underlying solver calls launched by the
	// registry (each collapses any number of concurrent requests).
	CtrRegistrySolve
	// CtrRegistryShared counts solve requests that joined an in-flight
	// singleflight solve instead of launching their own.
	CtrRegistryShared
	// CtrRegistryEvict counts graph snapshots evicted by the registry's LRU
	// memory bound.
	CtrRegistryEvict
	// CtrQuotaShed counts solve requests rejected by per-tenant quotas.
	CtrQuotaShed
	// CtrStreamBatch counts update batches applied by a streaming engine.
	CtrStreamBatch
	// CtrStreamSwap counts forest edge replacements (an insert evicting a
	// heavier cycle edge, or a delete relinking across the cut).
	CtrStreamSwap
	// CtrStreamRecompute counts deletes that exceeded the replacement-scan
	// budget and fell back to recomputing the affected component.
	CtrStreamRecompute
	// CtrWALAppend counts records appended to a write-ahead log.
	CtrWALAppend
	// CtrWALFsync counts fsync calls issued by a write-ahead log.
	CtrWALFsync
	// CtrRecoverReplayed counts WAL batches re-applied during recovery.
	CtrRecoverReplayed
	// CtrRecoverTorn counts torn or corrupt WAL tails detected (and
	// truncated) during recovery.
	CtrRecoverTorn
	// CtrSemiSpmvRows counts matrix rows reduced by the semiring backend's
	// min-plus SpMV sweeps (one row per live component per round).
	CtrSemiSpmvRows
	// CtrSemiSpmvArcs counts packed keys streamed by those row reductions
	// (two per live edge per round: an edge appears in both endpoint rows).
	CtrSemiSpmvArcs
	// CtrSemiShards counts cache-sized row shards handed to the work-
	// stealing scheduler by the semiring backend's SpMV phases.
	CtrSemiShards
	// CtrReplicaShip counts WAL records shipped to followers (commit-path
	// and catch-up shipping both count).
	CtrReplicaShip
	// CtrReplicaAck counts batches acknowledged at the configured
	// replication quorum.
	CtrReplicaAck
	// CtrReplicaDegraded counts writes rejected because the replica set
	// could not reach quorum (the stream is read-only until it heals).
	CtrReplicaDegraded
	// CtrReplicaCatchupRecords counts WAL records re-shipped by follower
	// catch-up (as opposed to the synchronous commit path).
	CtrReplicaCatchupRecords
	// CtrReplicaCatchupSnapshots counts full snapshot installs shipped to
	// followers whose high-water mark fell behind the compacted WAL.
	CtrReplicaCatchupSnapshots
	// CtrReplicaReconnects counts follower transport (re)connections.
	CtrReplicaReconnects

	// NumCounters is the number of defined counters (array sizing).
	NumCounters
)

// String names the counter for reports.
func (c Counter) String() string {
	switch c {
	case CtrSchedPush:
		return "sched.push"
	case CtrSchedPop:
		return "sched.pop"
	case CtrSchedSteal:
		return "sched.steal"
	case CtrSchedLevels:
		return "sched.levels"
	case CtrRounds:
		return "rounds"
	case CtrJumpRounds:
		return "jump.rounds"
	case CtrJumpAdvances:
		return "jump.advances"
	case CtrHeapPush:
		return "heap.push"
	case CtrHeapPop:
		return "heap.pop"
	case CtrEarlyFix:
		return "earlyfix"
	case CtrGHSPhases:
		return "ghs.phases"
	case CtrGHSMessages:
		return "ghs.messages"
	case CtrGHSRetransmits:
		return "ghs.retransmits"
	case CtrFaultDropped:
		return "fault.dropped"
	case CtrFaultDuplicated:
		return "fault.duplicated"
	case CtrFaultDelayed:
		return "fault.delayed"
	case CtrSchedPanics:
		return "sched.panics"
	case CtrHedgeLaunched:
		return "hedge.launched"
	case CtrHedgeWon:
		return "hedge.won"
	case CtrBreakerOpen:
		return "breaker.open"
	case CtrAdmitShed:
		return "admit.shed"
	case CtrVerifyFailed:
		return "verify.failed"
	case CtrFallbackUsed:
		return "fallback.used"
	case CtrRegistryPut:
		return "registry.put"
	case CtrRegistryHit:
		return "registry.cache.hit"
	case CtrRegistryMiss:
		return "registry.cache.miss"
	case CtrRegistrySolve:
		return "registry.solve"
	case CtrRegistryShared:
		return "registry.singleflight.shared"
	case CtrRegistryEvict:
		return "registry.evict"
	case CtrQuotaShed:
		return "quota.shed"
	case CtrStreamBatch:
		return "stream.batch"
	case CtrStreamSwap:
		return "stream.swap"
	case CtrStreamRecompute:
		return "stream.recompute"
	case CtrWALAppend:
		return "wal.append"
	case CtrWALFsync:
		return "wal.fsync"
	case CtrRecoverReplayed:
		return "recover.replayed"
	case CtrRecoverTorn:
		return "recover.torn"
	case CtrSemiSpmvRows:
		return "semi.spmv.rows"
	case CtrSemiSpmvArcs:
		return "semi.spmv.arcs"
	case CtrSemiShards:
		return "semi.shards"
	case CtrReplicaShip:
		return "replica.ship"
	case CtrReplicaAck:
		return "replica.ack"
	case CtrReplicaDegraded:
		return "replica.degraded"
	case CtrReplicaCatchupRecords:
		return "replica.catchup.records"
	case CtrReplicaCatchupSnapshots:
		return "replica.catchup.snapshots"
	case CtrReplicaReconnects:
		return "replica.reconnects"
	}
	return "counter(?)"
}

// Gauge identifies an instantaneous level. Collectors are free to keep the
// last value, the maximum, or a full series; Recording keeps the maximum,
// the useful summary for capacity questions ("how deep did queues get").
type Gauge uint8

// The defined gauges.
const (
	// GaugeQueueDepth is a scheduler worker's local queue depth.
	GaugeQueueDepth Gauge = iota
	// GaugeFrontier is the size of a parallel wave/frontier.
	GaugeFrontier
	// GaugeLiveEdges is the surviving edge count entering a contraction
	// round.
	GaugeLiveEdges
	// GaugeHeapSize is the priority-queue size at a wave boundary (Prim
	// family).
	GaugeHeapSize
	// GaugeGHSActive is the number of still-active nodes entering a GHS
	// phase.
	GaugeGHSActive
	// GaugeReplicaLag is how many batches the furthest-behind follower
	// trails the primary's high-water mark, sampled at each quorum ack.
	GaugeReplicaLag

	// NumGauges is the number of defined gauges (array sizing).
	NumGauges
)

// String names the gauge for reports.
func (g Gauge) String() string {
	switch g {
	case GaugeQueueDepth:
		return "sched.queue_depth"
	case GaugeFrontier:
		return "frontier"
	case GaugeLiveEdges:
		return "live_edges"
	case GaugeHeapSize:
		return "heap.size"
	case GaugeGHSActive:
		return "ghs.active"
	case GaugeReplicaLag:
		return "replica.lag"
	}
	return "gauge(?)"
}

// Tracer receives named phase spans. Span is called at phase start and the
// returned func at phase end; implementations timestamp both sides.
// Span names should be stable literals ("mwe", "contract", ...) so that
// no-op calls do not allocate.
type Tracer interface {
	// Span opens a named phase and returns the closer for it.
	Span(name string) (end func())
}

// Collector is a Tracer that additionally receives counters and gauges.
// Implementations must be safe for concurrent use: scheduler workers flush
// into one shared Collector.
type Collector interface {
	Tracer
	// Count adds delta (which may be negative for corrections, though the
	// runtime only emits non-negative deltas) to counter c.
	Count(c Counter, delta int64)
	// Gauge reports an observed instantaneous value of g.
	Gauge(g Gauge, v int64)
}

// nopEnd is the shared span closer returned by Nop, so Span never
// allocates.
var nopEnd = func() {}

// Nop is the free Collector: every method is empty. The zero value is
// ready to use.
type Nop struct{}

// Span implements Tracer with a shared, empty closer.
func (Nop) Span(string) func() { return nopEnd }

// Count implements Collector by discarding the count.
func (Nop) Count(Counter, int64) {}

// Gauge implements Collector by discarding the value.
func (Nop) Gauge(Gauge, int64) {}

// Or returns col if non-nil and the Nop collector otherwise, so call sites
// can instrument unconditionally.
func Or(col Collector) Collector {
	if col == nil {
		return Nop{}
	}
	return col
}

// RoundMarker is implemented by collectors that segment their event stream
// into algorithm rounds (waves, contraction rounds, GHS phases). Collectors
// that only keep totals ignore round structure and need not implement it.
type RoundMarker interface {
	// Round declares that round r is starting now.
	Round(r int64)
}

// MarkRound tells col that round r is starting, if col tracks rounds, and
// is free otherwise. Round numbering is per-run and may restart; round-
// aware collectors segment chronologically rather than keying on r.
func MarkRound(col Collector, r int64) {
	if m, ok := col.(RoundMarker); ok {
		m.Round(r)
	}
}

// WorkerAttributor is implemented by collectors that can attribute events
// to individual workers (the FlightRecorder's per-worker shards).
type WorkerAttributor interface {
	// Worker returns a Collector whose events carry worker id w.
	Worker(w int) Collector
}

// ForWorker returns col's view attributed to worker w when col supports
// attribution, and col itself otherwise — callers instrument per-worker
// code unconditionally and pay nothing when attribution is off.
func ForWorker(col Collector, w int) Collector {
	if a, ok := col.(WorkerAttributor); ok {
		return a.Worker(w)
	}
	return col
}

// tee fans every Collector call out to two collectors, forwarding round
// marks and worker attribution to whichever side supports them.
type tee struct {
	a, b Collector
}

// Tee returns a Collector that forwards to both a and b. Nil or Nop sides
// collapse, so Tee(col, Nop{}) == col. The combined Span allocates one
// closure per call; use Tee for driver-level plumbing (mstbench combining a
// Recording with a FlightRecorder), not on per-item hot paths.
func Tee(a, b Collector) Collector {
	if a == nil || a == (Nop{}) {
		return Or(b)
	}
	if b == nil || b == (Nop{}) {
		return a
	}
	return tee{a, b}
}

// Span implements Tracer by opening the span on both sides.
func (t tee) Span(name string) func() {
	ea, eb := t.a.Span(name), t.b.Span(name)
	return func() { ea(); eb() }
}

// Count implements Collector on both sides.
func (t tee) Count(c Counter, delta int64) {
	t.a.Count(c, delta)
	t.b.Count(c, delta)
}

// Gauge implements Collector on both sides.
func (t tee) Gauge(g Gauge, v int64) {
	t.a.Gauge(g, v)
	t.b.Gauge(g, v)
}

// Round implements RoundMarker on whichever sides track rounds.
func (t tee) Round(r int64) {
	MarkRound(t.a, r)
	MarkRound(t.b, r)
}

// Worker implements WorkerAttributor by attributing both sides.
func (t tee) Worker(w int) Collector {
	return tee{ForWorker(t.a, w), ForWorker(t.b, w)}
}
