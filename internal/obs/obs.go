package obs

// Counter identifies a monotonic count. Algorithms add to these through
// Collector.Count; which counters fire depends on the algorithm (see the
// constants' comments).
type Counter uint8

// The defined counters.
const (
	// CtrSchedPush counts items pushed into scheduler work queues
	// (sched.ForEachAsync and friends).
	CtrSchedPush Counter = iota
	// CtrSchedPop counts items popped from a worker's own queue.
	CtrSchedPop
	// CtrSchedSteal counts successful steal operations (batches, not items).
	CtrSchedSteal
	// CtrSchedLevels counts priority levels opened by ForEachOrdered.
	CtrSchedLevels
	// CtrRounds counts outer contraction rounds (Boruvka family).
	CtrRounds
	// CtrJumpRounds counts LLP pointer-jumping sweeps (LLP-Boruvka).
	CtrJumpRounds
	// CtrJumpAdvances counts pointer-jump advance operations (LLP-Boruvka).
	CtrJumpAdvances
	// CtrHeapPush counts priority-queue insertions (Prim family).
	CtrHeapPush
	// CtrHeapPop counts priority-queue removals (Prim family).
	CtrHeapPop
	// CtrEarlyFix counts vertices fixed through a minimum-weight edge
	// without heap traffic (LLP-Prim's "second way").
	CtrEarlyFix
	// CtrGHSPhases counts Boruvka phases of the distributed GHS protocol.
	CtrGHSPhases
	// CtrGHSMessages counts messages delivered by the simulated network.
	CtrGHSMessages
	// CtrGHSRetransmits counts transport retransmissions of unacked
	// messages on a lossy network (dist.FaultyNetwork).
	CtrGHSRetransmits
	// CtrFaultDropped counts messages dropped by the fault injector.
	CtrFaultDropped
	// CtrFaultDuplicated counts messages duplicated by the fault injector.
	CtrFaultDuplicated
	// CtrFaultDelayed counts messages delayed by the fault injector.
	CtrFaultDelayed
	// CtrSchedPanics counts worker panics recovered by the schedulers and
	// converted into PanicError results.
	CtrSchedPanics

	// NumCounters is the number of defined counters (array sizing).
	NumCounters
)

// String names the counter for reports.
func (c Counter) String() string {
	switch c {
	case CtrSchedPush:
		return "sched.push"
	case CtrSchedPop:
		return "sched.pop"
	case CtrSchedSteal:
		return "sched.steal"
	case CtrSchedLevels:
		return "sched.levels"
	case CtrRounds:
		return "rounds"
	case CtrJumpRounds:
		return "jump.rounds"
	case CtrJumpAdvances:
		return "jump.advances"
	case CtrHeapPush:
		return "heap.push"
	case CtrHeapPop:
		return "heap.pop"
	case CtrEarlyFix:
		return "earlyfix"
	case CtrGHSPhases:
		return "ghs.phases"
	case CtrGHSMessages:
		return "ghs.messages"
	case CtrGHSRetransmits:
		return "ghs.retransmits"
	case CtrFaultDropped:
		return "fault.dropped"
	case CtrFaultDuplicated:
		return "fault.duplicated"
	case CtrFaultDelayed:
		return "fault.delayed"
	case CtrSchedPanics:
		return "sched.panics"
	}
	return "counter(?)"
}

// Gauge identifies an instantaneous level. Collectors are free to keep the
// last value, the maximum, or a full series; Recording keeps the maximum,
// the useful summary for capacity questions ("how deep did queues get").
type Gauge uint8

// The defined gauges.
const (
	// GaugeQueueDepth is a scheduler worker's local queue depth.
	GaugeQueueDepth Gauge = iota
	// GaugeFrontier is the size of a parallel wave/frontier.
	GaugeFrontier
	// GaugeLiveEdges is the surviving edge count entering a contraction
	// round.
	GaugeLiveEdges

	// NumGauges is the number of defined gauges (array sizing).
	NumGauges
)

// String names the gauge for reports.
func (g Gauge) String() string {
	switch g {
	case GaugeQueueDepth:
		return "sched.queue_depth"
	case GaugeFrontier:
		return "frontier"
	case GaugeLiveEdges:
		return "live_edges"
	}
	return "gauge(?)"
}

// Tracer receives named phase spans. Span is called at phase start and the
// returned func at phase end; implementations timestamp both sides.
// Span names should be stable literals ("mwe", "contract", ...) so that
// no-op calls do not allocate.
type Tracer interface {
	// Span opens a named phase and returns the closer for it.
	Span(name string) (end func())
}

// Collector is a Tracer that additionally receives counters and gauges.
// Implementations must be safe for concurrent use: scheduler workers flush
// into one shared Collector.
type Collector interface {
	Tracer
	// Count adds delta (which may be negative for corrections, though the
	// runtime only emits non-negative deltas) to counter c.
	Count(c Counter, delta int64)
	// Gauge reports an observed instantaneous value of g.
	Gauge(g Gauge, v int64)
}

// nopEnd is the shared span closer returned by Nop, so Span never
// allocates.
var nopEnd = func() {}

// Nop is the free Collector: every method is empty. The zero value is
// ready to use.
type Nop struct{}

// Span implements Tracer with a shared, empty closer.
func (Nop) Span(string) func() { return nopEnd }

// Count implements Collector by discarding the count.
func (Nop) Count(Counter, int64) {}

// Gauge implements Collector by discarding the value.
func (Nop) Gauge(Gauge, int64) {}

// Or returns col if non-nil and the Nop collector otherwise, so call sites
// can instrument unconditionally.
func Or(col Collector) Collector {
	if col == nil {
		return Nop{}
	}
	return col
}
