// tracestore.go: fixed-memory, tail-sampling storage for request traces.
//
// The store owns a fixed population of trace slots (MaxActive + Capacity,
// each with a pre-allocated span array) that circulate between three places
// and are never freed or grown:
//
//	free list --StartTrace--> active (held by a request) --seal/keep--> ring
//	    ^                                   |                            |
//	    +---------------seal/drop-----------+------------ring evict------+
//
// The keep/drop decision runs at trace *completion* (tail sampling), under
// the store mutex, exactly once per trace — at the unique transition of the
// packed state word to (finished && open == 0):
//
//	keep if the inbound traceparent carried the sampled flag (forced),
//	  or any span recorded an error,
//	  or the trace's duration lands in a log-2 bucket strictly above the
//	    configured slow quantile of all completed traces (p99 by default),
//	  or a coin flip at SampleRate says so.
//
// Because the ring only ever holds *sealed* traces and live traces sit
// outside it, ring overwrite can never clobber an unfinished trace; slot
// exhaustion degrades StartTrace to a counted no-op instead.
//
// The un-sampled fast path — StartTrace, span Start/End, Finish, seal-drop —
// performs zero heap allocations (asserted by TestTraceUnsampledPathZeroAllocs).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"math/rand/v2"
	"sort"
	"sync"
	"time"
)

// TraceStoreConfig configures a TraceStore. The zero value gets defaults.
type TraceStoreConfig struct {
	// Capacity is the number of kept (sealed, sampled-in) traces retained in
	// the ring; the oldest is evicted when full. Default 256.
	Capacity int
	// MaxActive bounds how many traces can be in flight beyond the ring's
	// free slots; StartTrace returns a no-op handle when the pool is
	// exhausted. Default 128.
	MaxActive int
	// SpanCap is the number of span slots per trace; spans beyond it are
	// dropped (counted). Default 128.
	SpanCap int
	// SampleRate is the probability a trace that is neither forced, errored,
	// nor slow is kept anyway. Default 0 (pure tail sampling).
	SampleRate float64
	// SlowQuantile selects the "slow tail" that is always kept: a trace is
	// slow if its duration's log-2 bucket is strictly above the bucket
	// holding this quantile of all completed traces. Default 0.99.
	SlowQuantile float64
	// SlowWarmup is how many traces must complete before the slow-tail rule
	// activates (the quantile estimate is meaningless on an empty
	// histogram). Default 64.
	SlowWarmup int

	// Now overrides the clock (tests). Default time.Now.
	Now func() time.Time
	// RandFloat overrides the sampling coin (tests). Default math/rand/v2.
	RandFloat func() float64
}

func (c *TraceStoreConfig) setDefaults() {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.MaxActive <= 0 {
		c.MaxActive = 128
	}
	if c.SpanCap <= 0 {
		c.SpanCap = 128
	}
	if c.SlowQuantile <= 0 || c.SlowQuantile >= 1 {
		c.SlowQuantile = 0.99
	}
	if c.SlowWarmup <= 0 {
		c.SlowWarmup = 64
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.RandFloat == nil {
		c.RandFloat = rand.Float64
	}
}

// TraceStoreStats is a snapshot of the store's lifetime counters.
type TraceStoreStats struct {
	Started       int64 // traces begun
	DroppedNoSlot int64 // StartTrace calls refused for want of a free slot
	Finished      int64 // traces sealed
	Kept          int64 // sealed traces retained in the ring
	KeptForced    int64 //   ... because the inbound traceparent was sampled
	KeptError     int64 //   ... because a span recorded an error
	KeptSlow      int64 //   ... because the duration was in the slow tail
	KeptSampled   int64 //   ... by the SampleRate coin
}

// TraceStore is a fixed-memory tail-sampling trace store. Safe for
// concurrent use.
type TraceStore struct {
	cfg TraceStoreConfig

	mu   sync.Mutex
	free []*Trace
	// ring of kept traces: ring[(head-1+len)%len] is the newest; count is
	// how many entries are populated.
	ring  []*Trace
	head  int
	count int
	byID  map[TraceID]*Trace

	// log-2 histogram of completed-trace durations (bucket = bits.Len64(ns)),
	// feeding the slow-tail quantile.
	durHist  [65]int64
	durCount int64

	stats TraceStoreStats
}

// NewTraceStore builds a store; all trace and span memory is allocated here.
func NewTraceStore(cfg TraceStoreConfig) *TraceStore {
	cfg.setDefaults()
	st := &TraceStore{
		cfg:  cfg,
		ring: make([]*Trace, cfg.Capacity),
		byID: make(map[TraceID]*Trace, cfg.Capacity),
	}
	total := cfg.Capacity + cfg.MaxActive
	st.free = make([]*Trace, 0, total)
	for i := 0; i < total; i++ {
		st.free = append(st.free, &Trace{
			store: st,
			spans: make([]SpanRec, cfg.SpanCap),
		})
	}
	return st
}

func (st *TraceStore) nowNS() int64 { return st.cfg.Now().UnixNano() }

// StartTrace begins a trace and returns its root span. id may be the zero
// TraceID to mint a fresh one (the usual case), or an inbound W3C trace ID
// to continue a distributed trace; parent is then the inbound parent span
// ID. flags are the inbound W3C trace flags: FlagSampled forces the trace
// to be kept at seal time. If the slot pool is exhausted the returned Span
// is a no-op and the refusal is counted.
//
// The caller must Finish the returned root span exactly once.
func (st *TraceStore) StartTrace(name string, id TraceID, parent SpanID, flags byte) Span {
	t := st.pop()
	if t == nil {
		return Span{}
	}
	if id.IsZero() {
		id = NewTraceID()
	}
	nowNS := st.nowNS()
	t.id = id
	t.flags = flags
	t.startNS = nowNS
	t.durNS = 0
	t.reason = ""
	t.errored.Store(false)
	t.nspans.Store(1)
	gen := uint32(t.state.Load() >> 32)
	// Exclusive owner until the handle escapes: plain Store is fine, and it
	// sets open=1 for the root span's hold.
	t.state.Store(uint64(gen)<<32 | 1)
	sid := newSpanID()
	t.spans[0] = SpanRec{ID: sid, Parent: parent, Name: name, StartNS: nowNS}
	return Span{t: t, gen: gen, idx: 0, id: sid}
}

func (st *TraceStore) pop() *Trace {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.stats.Started++
	n := len(st.free)
	if n == 0 {
		st.stats.Started--
		st.stats.DroppedNoSlot++
		return nil
	}
	t := st.free[n-1]
	st.free[n-1] = nil
	st.free = st.free[:n-1]
	return t
}

// seal runs the tail-sampling decision for a completed trace. Called exactly
// once per trace lifetime, by whichever goroutine drove the packed state to
// (finished && open == 0).
func (st *TraceStore) seal(t *Trace) {
	st.mu.Lock()
	defer st.mu.Unlock()

	st.stats.Finished++
	bkt := durBucket(t.durNS)
	st.durHist[bkt]++
	st.durCount++

	reason := ""
	switch {
	case t.flags&FlagSampled != 0:
		reason = "forced"
		st.stats.KeptForced++
	case t.errored.Load():
		reason = "error"
		st.stats.KeptError++
	case st.durCount >= int64(st.cfg.SlowWarmup) && bkt > st.slowBucketLocked():
		reason = "slow"
		st.stats.KeptSlow++
	case st.cfg.SampleRate > 0 && st.cfg.RandFloat() < st.cfg.SampleRate:
		reason = "sampled"
		st.stats.KeptSampled++
	}
	if reason == "" {
		st.recycleLocked(t)
		return
	}
	t.reason = reason
	st.stats.Kept++
	if st.count == len(st.ring) {
		// Evict the oldest kept trace; its slot goes back to the free list.
		old := st.ring[st.head]
		st.ring[st.head] = nil
		st.count--
		st.recycleLocked(old)
	}
	st.ring[st.head] = t
	st.head = (st.head + 1) % len(st.ring)
	st.count++
	st.byID[t.id] = t
}

// recycleLocked returns a sealed (or evicted) trace slot to the free list,
// bumping its generation so every outstanding handle goes stale.
func (st *TraceStore) recycleLocked(t *Trace) {
	delete(st.byID, t.id)
	gen := uint32(t.state.Load()>>32) + 1
	t.state.Store(uint64(gen) << 32)
	st.free = append(st.free, t)
}

// durBucket maps a duration in ns to its log-2 histogram bucket.
func durBucket(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	return bits.Len64(uint64(ns))
}

// slowBucketLocked returns the histogram bucket containing the configured
// slow quantile of completed-trace durations. A trace is "slow" if its own
// bucket is strictly greater — so under perfectly uniform latency nothing
// is slow, and a genuine tail (>= one bucket above the p99 mass) is always
// kept.
func (st *TraceStore) slowBucketLocked() int {
	want := int64(float64(st.durCount)*st.cfg.SlowQuantile) + 1
	if want > st.durCount {
		want = st.durCount
	}
	var cum int64
	for b, n := range st.durHist {
		cum += n
		if cum >= want {
			return b
		}
	}
	return len(st.durHist) - 1
}

// Stats returns a snapshot of the store's lifetime counters.
func (st *TraceStore) Stats() TraceStoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats
}

// KeptCount returns how many sealed traces the ring currently retains.
func (st *TraceStore) KeptCount() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.count
}

// SpanData is the serving-side view of one span.
type SpanData struct {
	SpanID  string         `json:"span_id"`
	Parent  string         `json:"parent_span_id,omitempty"`
	Name    string         `json:"name"`
	StartNS int64          `json:"start_unix_ns"`
	DurMS   float64        `json:"duration_ms"`
	Error   string         `json:"error,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// TraceData is the serving-side view of one kept trace.
type TraceData struct {
	TraceID      string     `json:"trace_id"`
	Name         string     `json:"name"`
	StartNS      int64      `json:"start_unix_ns"`
	DurMS        float64    `json:"duration_ms"`
	Error        bool       `json:"error"`
	KeepReason   string     `json:"keep_reason"`
	DroppedSpans int        `json:"dropped_spans,omitempty"`
	Spans        []SpanData `json:"spans"`
}

// TraceSummary is one row of the trace index.
type TraceSummary struct {
	TraceID string  `json:"trace_id"`
	Name    string  `json:"name"`
	StartNS int64   `json:"start_unix_ns"`
	DurMS   float64 `json:"duration_ms"`
	Error   bool    `json:"error"`
	Reason  string  `json:"keep_reason"`
	Spans   int     `json:"spans"`
}

// Get returns a copy of the kept trace with the given ID. Traces become
// visible only once sealed and kept; in-flight or sampled-out traces report
// ok=false.
func (st *TraceStore) Get(id TraceID) (TraceData, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	t, ok := st.byID[id]
	if !ok {
		return TraceData{}, false
	}
	return snapshotLocked(t), true
}

// Summaries returns the kept traces, newest first.
func (st *TraceStore) Summaries() []TraceSummary {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]TraceSummary, 0, st.count)
	for i := 0; i < st.count; i++ {
		// Walk backwards from the newest entry.
		idx := (st.head - 1 - i + 2*len(st.ring)) % len(st.ring)
		t := st.ring[idx]
		if t == nil {
			continue
		}
		n := int(t.nspans.Load())
		if n > len(t.spans) {
			n = len(t.spans)
		}
		out = append(out, TraceSummary{
			TraceID: t.id.String(),
			Name:    t.spans[0].Name,
			StartNS: t.startNS,
			DurMS:   float64(t.durNS) / 1e6,
			Error:   t.errored.Load(),
			Reason:  t.reason,
			Spans:   n,
		})
	}
	return out
}

func snapshotLocked(t *Trace) TraceData {
	n := int(t.nspans.Load())
	if n > len(t.spans) {
		n = len(t.spans)
	}
	d := TraceData{
		TraceID:      t.id.String(),
		Name:         t.spans[0].Name,
		StartNS:      t.startNS,
		DurMS:        float64(t.durNS) / 1e6,
		Error:        t.errored.Load(),
		KeepReason:   t.reason,
		DroppedSpans: t.droppedSpans(),
		Spans:        make([]SpanData, 0, n),
	}
	for i := 0; i < n; i++ {
		rec := &t.spans[i]
		sd := SpanData{
			SpanID:  rec.ID.String(),
			Name:    rec.Name,
			StartNS: rec.StartNS,
			DurMS:   float64(rec.DurNS) / 1e6,
			Error:   rec.Err,
		}
		if !rec.Parent.IsZero() {
			sd.Parent = rec.Parent.String()
		}
		if rec.NAttrs > 0 {
			sd.Attrs = make(map[string]any, rec.NAttrs)
			for a := int32(0); a < rec.NAttrs; a++ {
				at := rec.Attrs[a]
				if at.IsInt {
					sd.Attrs[at.Key] = at.Int
				} else {
					sd.Attrs[at.Key] = at.Str
				}
			}
		}
		d.Spans = append(d.Spans, sd)
	}
	return d
}

// WriteJSON writes the trace as indented JSON.
func (d TraceData) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteChromeTrace writes the trace in Chrome Trace Event JSON (the same
// format the FlightRecorder exports), loadable in Perfetto or
// chrome://tracing. Spans are complete ("X") events; overlapping spans
// (hedged legs racing, singleflight leader vs waiter) are laid out on
// separate greedy-assigned lanes so nothing visually collides. Timestamps
// are microseconds relative to the trace start.
func (d TraceData) WriteChromeTrace(w io.Writer) error {
	spans := make([]SpanData, len(d.Spans))
	copy(spans, d.Spans)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartNS < spans[j].StartNS })

	out := make([]chromeEvent, 0, len(spans)+2)
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "trace " + d.TraceID},
	})

	// Greedy lane assignment: each span goes on the first lane whose last
	// span has already ended.
	var laneEnd []int64
	for _, s := range spans {
		startNS := s.StartNS - d.StartNS
		endNS := startNS + int64(s.DurMS*1e6)
		lane := -1
		for l, e := range laneEnd {
			if e <= startNS {
				lane = l
				break
			}
		}
		if lane == -1 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
			out = append(out, chromeEvent{
				Name: "thread_name", Ph: "M", PID: 1, TID: lane,
				Args: map[string]any{"name": fmt.Sprintf("lane %d", lane)},
			})
		}
		laneEnd[lane] = endNS

		args := map[string]any{"span_id": s.SpanID}
		if s.Parent != "" {
			args["parent_span_id"] = s.Parent
		}
		if s.Error != "" {
			args["error"] = s.Error
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		out = append(out, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			TS:   float64(startNS) / 1e3,
			Dur:  float64(s.DurMS) * 1e3,
			PID:  1,
			TID:  lane,
			Args: args,
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}
