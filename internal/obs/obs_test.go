package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// The load-bearing property: instrumenting a hot path against the no-op
// collector adds zero allocations. Algorithms call through the Collector
// interface unconditionally, so this is what keeps tracing free when off.
func TestNopZeroAllocs(t *testing.T) {
	var col Collector = Nop{}
	allocs := testing.AllocsPerRun(1000, func() {
		end := col.Span("phase")
		col.Count(CtrSchedPush, 1)
		col.Count(CtrRounds, 3)
		col.Gauge(GaugeQueueDepth, 17)
		end()
	})
	if allocs != 0 {
		t.Fatalf("no-op collector hot path allocates: %v allocs/op", allocs)
	}
}

func TestOr(t *testing.T) {
	if _, ok := Or(nil).(Nop); !ok {
		t.Fatal("Or(nil) is not Nop")
	}
	rec := NewRecording()
	if Or(rec) != rec {
		t.Fatal("Or(non-nil) did not pass through")
	}
}

func TestRecordingCountersAndGauges(t *testing.T) {
	rec := NewRecording()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rec.Count(CtrSchedPush, 2)
				rec.Gauge(GaugeQueueDepth, int64(w*100+i))
			}
		}(w)
	}
	wg.Wait()
	if got := rec.Counter(CtrSchedPush); got != 1600 {
		t.Fatalf("counter = %d, want 1600", got)
	}
	if got := rec.GaugeMax(GaugeQueueDepth); got != 799 {
		t.Fatalf("gauge max = %d, want 799", got)
	}
	if got := rec.Counter(CtrSchedPop); got != 0 {
		t.Fatalf("untouched counter = %d, want 0", got)
	}
}

func TestRecordingSpansAndTimeline(t *testing.T) {
	rec := NewRecording()
	end := rec.Span("outer")
	inner := rec.Span("inner")
	time.Sleep(time.Millisecond)
	inner()
	end()
	rec.Count(CtrRounds, 4)
	rec.Gauge(GaugeLiveEdges, 123)

	spans := rec.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Completion order: inner closes first.
	if spans[0].Name != "inner" || spans[1].Name != "outer" {
		t.Fatalf("span order: %v", spans)
	}
	if spans[0].Dur <= 0 {
		t.Fatalf("inner span duration %v, want > 0", spans[0].Dur)
	}

	var buf bytes.Buffer
	if err := rec.WriteTimeline(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Spans []struct {
			Name    string  `json:"name"`
			StartUS float64 `json:"start_us"`
			DurUS   float64 `json:"dur_us"`
		} `json:"spans"`
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges_max"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("timeline is not valid JSON: %v\n%s", err, buf.String())
	}
	// Timeline order: sorted by start offset, so outer comes first.
	if len(decoded.Spans) != 2 || decoded.Spans[0].Name != "outer" {
		t.Fatalf("timeline spans: %+v", decoded.Spans)
	}
	if decoded.Counters["rounds"] != 4 {
		t.Fatalf("timeline counters: %+v", decoded.Counters)
	}
	if decoded.Gauges["live_edges"] != 123 {
		t.Fatalf("timeline gauges: %+v", decoded.Gauges)
	}
}

func TestContextCarriesCollector(t *testing.T) {
	if _, ok := FromContext(nil).(Nop); !ok {
		t.Fatal("FromContext(nil) is not Nop")
	}
	if _, ok := FromContext(context.Background()).(Nop); !ok {
		t.Fatal("FromContext(plain ctx) is not Nop")
	}
	rec := NewRecording()
	ctx := NewContext(context.Background(), rec)
	if FromContext(ctx) != rec {
		t.Fatal("collector did not round-trip through context")
	}
}

// TestEnumNames is the exhaustiveness gate for the counter/gauge enums: a
// newly added value must get a name (else it silently prints "counter(?)"
// in every report) and must not reuse an existing one (else two series
// merge in Prometheus/CSV output).
func TestEnumNames(t *testing.T) {
	ctrNames := make(map[string]Counter, NumCounters)
	for c := Counter(0); c < NumCounters; c++ {
		name := c.String()
		if name == "counter(?)" {
			t.Fatalf("counter %d has no name", c)
		}
		if prev, dup := ctrNames[name]; dup {
			t.Fatalf("counters %d and %d share the name %q", prev, c, name)
		}
		ctrNames[name] = c
	}
	if NumCounters.String() != "counter(?)" {
		t.Fatalf("NumCounters is not a real counter but stringifies to %q", NumCounters.String())
	}
	gaugeNames := make(map[string]Gauge, NumGauges)
	for g := Gauge(0); g < NumGauges; g++ {
		name := g.String()
		if name == "gauge(?)" {
			t.Fatalf("gauge %d has no name", g)
		}
		if prev, dup := gaugeNames[name]; dup {
			t.Fatalf("gauges %d and %d share the name %q", prev, g, name)
		}
		gaugeNames[name] = g
	}
	if NumGauges.String() != "gauge(?)" {
		t.Fatalf("NumGauges is not a real gauge but stringifies to %q", NumGauges.String())
	}
}
