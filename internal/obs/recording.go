package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Recording is a Collector that accumulates counters (atomic adds), keeps
// per-gauge maxima, and records every span with wall-clock start/duration.
// It is safe for concurrent use from any number of workers. The zero value
// is NOT ready; use NewRecording (span timestamps are relative to the
// recording's origin so timelines start at zero).
type Recording struct {
	origin   time.Time
	counters [NumCounters]atomic.Int64
	gauges   [NumGauges]atomic.Int64 // maxima

	mu    sync.Mutex
	spans []SpanRecord
}

// SpanRecord is one completed phase: name plus start offset and duration
// relative to the recording's origin. Start and Dur are time.Durations, so
// direct JSON serialization yields nanoseconds — the tags say so.
// (WriteTimeline converts to microseconds and tags those fields start_us/
// dur_us; the two paths previously disagreed on units under the same tag.)
type SpanRecord struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_ns"`
	Dur   time.Duration `json:"dur_ns"`
}

// NewRecording returns an empty recording whose timeline origin is now.
func NewRecording() *Recording {
	return &Recording{origin: time.Now()}
}

// Span implements Tracer: it timestamps the phase open and records the
// completed span when the returned closer runs.
func (r *Recording) Span(name string) func() {
	start := time.Since(r.origin)
	return func() {
		end := time.Since(r.origin)
		r.mu.Lock()
		r.spans = append(r.spans, SpanRecord{Name: name, Start: start, Dur: end - start})
		r.mu.Unlock()
	}
}

// Count implements Collector with an atomic add.
func (r *Recording) Count(c Counter, delta int64) {
	r.counters[c].Add(delta)
}

// Gauge implements Collector, retaining the maximum observed value.
func (r *Recording) Gauge(g Gauge, v int64) {
	for {
		cur := r.gauges[g].Load()
		if v <= cur || r.gauges[g].CompareAndSwap(cur, v) {
			return
		}
	}
}

// Counter returns the accumulated total for c.
func (r *Recording) Counter(c Counter) int64 { return r.counters[c].Load() }

// GaugeMax returns the maximum value observed for g (0 if never reported).
func (r *Recording) GaugeMax(g Gauge) int64 { return r.gauges[g].Load() }

// Spans returns a copy of the completed spans in completion order.
func (r *Recording) Spans() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, len(r.spans))
	copy(out, r.spans)
	return out
}

// timelineJSON is the serialized form of WriteTimeline.
type timelineJSON struct {
	Spans    []spanJSON       `json:"spans"`
	Counters map[string]int64 `json:"counters"`
	Gauges   map[string]int64 `json:"gauges_max"`
}

type spanJSON struct {
	Name    string  `json:"name"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
}

// WriteTimeline writes the phase timeline plus counter/gauge summaries as
// indented JSON: spans sorted by start offset with microsecond start/
// duration, counters and gauge maxima keyed by their String names (zero
// entries omitted). This is the payload behind mstbench's -trace-out flag.
func (r *Recording) WriteTimeline(w io.Writer) error {
	spans := r.Spans()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	out := timelineJSON{
		Spans:    make([]spanJSON, 0, len(spans)),
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
	}
	for _, s := range spans {
		out.Spans = append(out.Spans, spanJSON{
			Name:    s.Name,
			StartUS: float64(s.Start) / float64(time.Microsecond),
			DurUS:   float64(s.Dur) / float64(time.Microsecond),
		})
	}
	for c := Counter(0); c < NumCounters; c++ {
		if v := r.Counter(c); v != 0 {
			out.Counters[c.String()] = v
		}
	}
	for g := Gauge(0); g < NumGauges; g++ {
		if v := r.GaugeMax(g); v != 0 {
			out.Gauges[g.String()] = v
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
