package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// The acceptance gate for the tentpole: with the recorder ENABLED, the hot
// path — counter deltas, gauge samples, span begin/end, round marks —
// allocates nothing. Ring slots are claimed with one atomic add and filled
// in place; span end closures are cached per cursor after first use.
func TestFlightRecorderZeroAllocs(t *testing.T) {
	rec := NewFlightRecorder(2, 1<<10)
	cur := rec.Worker(1)
	allocs := testing.AllocsPerRun(1000, func() {
		end := cur.Span("phase")
		cur.Count(CtrSchedPush, 1)
		cur.Count(CtrRounds, 3)
		cur.Gauge(GaugeQueueDepth, 17)
		MarkRound(cur, 4)
		end()
	})
	if allocs != 0 {
		t.Fatalf("flight recorder hot path allocates: %v allocs/op", allocs)
	}
	// The driver facade must be just as free.
	var col Collector = rec
	allocs = testing.AllocsPerRun(1000, func() {
		end := col.Span("driver-phase")
		col.Count(CtrHeapPop, 2)
		col.Gauge(GaugeHeapSize, 9)
		end()
	})
	if allocs != 0 {
		t.Fatalf("driver facade hot path allocates: %v allocs/op", allocs)
	}
}

func TestFlightRecorderWorkerAttribution(t *testing.T) {
	rec := NewFlightRecorder(3, 256)
	rec.Count(CtrRounds, 1) // driver track
	rec.Worker(0).Count(CtrSchedPop, 10)
	rec.Worker(1).Count(CtrSchedPop, 20)
	rec.Worker(2).Count(CtrSchedPop, 30)
	rec.Worker(5).Count(CtrSchedPop, 1)    // folds to 5 % 3 == worker 2
	rec.Worker(-1).Count(CtrSchedPop, 100) // driver again

	if got := rec.Counter(CtrSchedPop); got != 161 {
		t.Fatalf("total sched.pop = %d, want 161", got)
	}
	if got := rec.CounterWorker(CtrSchedPop, 1); got != 20 {
		t.Fatalf("worker 1 sched.pop = %d, want 20", got)
	}
	if got := rec.CounterWorker(CtrSchedPop, 2); got != 31 {
		t.Fatalf("worker 2 sched.pop = %d, want 31 (folded)", got)
	}
	if got := rec.CounterWorker(CtrSchedPop, -1); got != 100 {
		t.Fatalf("driver sched.pop = %d, want 100", got)
	}

	workers := map[int16]bool{}
	for _, e := range rec.Events() {
		workers[e.Worker] = true
	}
	for _, w := range []int16{-1, 0, 1, 2} {
		if !workers[w] {
			t.Fatalf("no events attributed to worker %d (saw %v)", w, workers)
		}
	}
}

func TestFlightRecorderGauges(t *testing.T) {
	rec := NewFlightRecorder(2, 256)
	rec.Worker(0).Gauge(GaugeFrontier, 50)
	rec.Worker(1).Gauge(GaugeFrontier, 90)
	rec.Worker(0).Gauge(GaugeFrontier, 10)

	if got := rec.GaugeMax(GaugeFrontier); got != 90 {
		t.Fatalf("gauge max = %d, want 90", got)
	}
	if v, ok := rec.GaugeLast(GaugeFrontier); !ok || v != 10 {
		t.Fatalf("gauge last = %d,%v, want 10,true", v, ok)
	}
	if _, ok := rec.GaugeLast(GaugeLiveEdges); ok {
		t.Fatal("never-sampled gauge reports ok")
	}
}

func TestFlightRecorderRingWrap(t *testing.T) {
	rec := NewFlightRecorder(1, 64) // tiny ring
	cur := rec.Worker(0)
	const n = 1000
	for i := 0; i < n; i++ {
		cur.Count(CtrSchedPush, 1)
	}
	// Aggregates are exact despite overflow.
	if got := rec.Counter(CtrSchedPush); got != n {
		t.Fatalf("counter after wrap = %d, want %d", got, n)
	}
	if got := rec.Dropped(); got != n-64 {
		t.Fatalf("dropped = %d, want %d", got, n-64)
	}
	if got := rec.Recorded(); got != n {
		t.Fatalf("recorded = %d, want %d", got, n)
	}
	// The surviving events are exactly the newest 64, contiguous.
	events := rec.Events()
	if len(events) != 64 {
		t.Fatalf("surviving events = %d, want 64", len(events))
	}
	for i, e := range events {
		if want := uint64(n - 64 + i); e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, want)
		}
	}
}

func TestFlightRecorderRoundSeries(t *testing.T) {
	rec := NewFlightRecorder(1, 1024)
	// Simulate two Boruvka rounds: marker, live-edge gauge, counter work.
	MarkRound(rec, 1)
	rec.Gauge(GaugeLiveEdges, 100)
	rec.Count(CtrJumpAdvances, 7)
	MarkRound(rec, 2)
	rec.Gauge(GaugeLiveEdges, 40)
	rec.Gauge(GaugeLiveEdges, 38) // last sample wins within the segment
	rec.Count(CtrJumpAdvances, 3)

	series := rec.RoundSeries()
	if len(series) != 2 {
		t.Fatalf("got %d round segments, want 2: %+v", len(series), series)
	}
	if series[0].Round != 1 || series[1].Round != 2 {
		t.Fatalf("round numbers: %d, %d", series[0].Round, series[1].Round)
	}
	if v, ok := series[0].Gauge(GaugeLiveEdges); !ok || v != 100 {
		t.Fatalf("round 1 live edges = %d,%v", v, ok)
	}
	if v, ok := series[1].Gauge(GaugeLiveEdges); !ok || v != 38 {
		t.Fatalf("round 2 live edges = %d,%v (want last sample 38)", v, ok)
	}
	if series[0].Counter(CtrJumpAdvances) != 7 || series[1].Counter(CtrJumpAdvances) != 3 {
		t.Fatalf("per-round jump advances: %d, %d",
			series[0].Counter(CtrJumpAdvances), series[1].Counter(CtrJumpAdvances))
	}
	if _, ok := series[0].Gauge(GaugeFrontier); ok {
		t.Fatal("unsampled gauge reports seen")
	}
}

// Round numbering restarting (a second algorithm run on the same recorder)
// must produce new segments, not merge into the earlier ones.
func TestFlightRecorderRoundSeriesRestart(t *testing.T) {
	rec := NewFlightRecorder(1, 1024)
	MarkRound(rec, 1)
	rec.Count(CtrRounds, 1)
	MarkRound(rec, 2)
	rec.Count(CtrRounds, 1)
	MarkRound(rec, 1) // second run restarts numbering
	rec.Count(CtrRounds, 1)

	series := rec.RoundSeries()
	if len(series) != 3 {
		t.Fatalf("got %d segments, want 3 (restart must not merge): %+v", len(series), series)
	}
	if series[2].Round != 1 {
		t.Fatalf("restarted segment round = %d, want 1", series[2].Round)
	}
}

func TestFlightRecorderSpanSummaries(t *testing.T) {
	rec := NewFlightRecorder(1, 1024)
	cur := rec.Worker(0)
	for i := 0; i < 20; i++ {
		end := cur.Span("work")
		time.Sleep(100 * time.Microsecond)
		end()
	}
	s, ok := rec.SpanSummary("work")
	if !ok {
		t.Fatal("span summary missing")
	}
	if s.Count != 20 {
		t.Fatalf("span count = %d, want 20", s.Count)
	}
	if s.Sum < 2*time.Millisecond {
		t.Fatalf("span sum = %v, want >= 2ms", s.Sum)
	}
	if s.P50 <= 0 || s.P95 < s.P50 || s.P99 < s.P95 {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
	}
	if _, ok := rec.SpanSummary("never-opened"); ok {
		t.Fatal("summary for unknown span reports ok")
	}
	all := rec.SpanSummaries()
	if len(all) != 1 || all[0].Name != "work" {
		t.Fatalf("summaries: %+v", all)
	}
}

// Span names beyond the intern table's capacity share the overflow bucket
// instead of growing without bound.
func TestFlightRecorderSpanNameOverflow(t *testing.T) {
	rec := NewFlightRecorder(1, 4096)
	names := make([]byte, 0, 8)
	for i := 0; i < maxSpanNames+20; i++ {
		names = append(names[:0], "span-"...)
		rec.Span(string(append(names, byte('a'+i%26), byte('a'+i/26))))()
	}
	var overflow bool
	for _, s := range rec.SpanSummaries() {
		if s.Name == "~overflow" {
			overflow = true
		}
	}
	if !overflow {
		t.Fatal("overflow bucket never used despite > maxSpanNames names")
	}
}

func TestFlightRecorderChromeTrace(t *testing.T) {
	rec := NewFlightRecorder(2, 1024)
	MarkRound(rec, 1)
	end := rec.Worker(0).Span("mwe")
	rec.Worker(0).Gauge(GaugeFrontier, 10)
	end()
	MarkRound(rec, 2)
	rec.Worker(1).Span("contract")()

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var sawThreadNames, sawSpan0, sawSpan1, sawRound int
	for _, e := range decoded.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "thread_name":
			sawThreadNames++
		case e.Ph == "X" && e.Name == "mwe" && e.TID == 1: // worker 0 → tid 1
			sawSpan0++
		case e.Ph == "X" && e.Name == "contract" && e.TID == 2:
			sawSpan1++
		case e.Ph == "i" && strings.HasPrefix(e.Name, "round "):
			sawRound++
		}
	}
	if sawThreadNames != 3 { // driver + 2 workers
		t.Fatalf("thread_name metadata events = %d, want 3", sawThreadNames)
	}
	if sawSpan0 != 1 || sawSpan1 != 1 {
		t.Fatalf("span X events on worker tracks: %d, %d (want 1, 1)", sawSpan0, sawSpan1)
	}
	if sawRound != 2 {
		t.Fatalf("round instant events = %d, want 2", sawRound)
	}
}

func TestFlightRecorderPrometheus(t *testing.T) {
	rec := NewFlightRecorder(2, 1024)
	rec.Worker(0).Count(CtrSchedPush, 5)
	rec.Worker(1).Gauge(GaugeQueueDepth, 7)
	rec.Span("phase")()

	var buf bytes.Buffer
	if err := rec.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	// Structural validity of the exposition format: every non-comment line
	// is `name{labels} value` or `name value`, every family has TYPE.
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE llpmst_events_total counter",
		`llpmst_events_total{counter="sched.push",worker="0"} 5`,
		`llpmst_gauge_last{gauge="sched.queue_depth",worker="1"} 7`,
		`llpmst_gauge_max{gauge="sched.queue_depth",worker="1"} 7`,
		"# TYPE llpmst_span_duration_seconds histogram",
		`llpmst_span_duration_seconds_count{span="phase"} 1`,
		`le="+Inf"`,
		"llpmst_events_dropped_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestFlightRecorderProgressJSON(t *testing.T) {
	rec := NewFlightRecorder(1, 1024)
	MarkRound(rec, 3)
	rec.Count(CtrRounds, 3)
	rec.Gauge(GaugeLiveEdges, 42)
	rec.Span("phase")()

	var buf bytes.Buffer
	if err := rec.WriteProgress(&buf); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Round    int64            `json:"round"`
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
		Spans    []struct {
			Name  string `json:"name"`
			Count int64  `json:"count"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("progress is not valid JSON: %v\n%s", err, buf.String())
	}
	if snap.Round != 3 {
		t.Fatalf("round = %d, want 3", snap.Round)
	}
	if snap.Counters["rounds"] != 3 {
		t.Fatalf("counters: %+v", snap.Counters)
	}
	if snap.Gauges["live_edges"] != 42 {
		t.Fatalf("gauges: %+v", snap.Gauges)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "phase" || snap.Spans[0].Count != 1 {
		t.Fatalf("spans: %+v", snap.Spans)
	}
}

func TestFlightRecorderRoundCSV(t *testing.T) {
	rec := NewFlightRecorder(1, 1024)
	MarkRound(rec, 1)
	rec.Gauge(GaugeLiveEdges, 100)
	rec.Count(CtrJumpAdvances, 4)
	MarkRound(rec, 2)
	rec.Gauge(GaugeLiveEdges, 30)

	var buf bytes.Buffer
	if err := rec.WriteRoundCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2 rows:\n%s", len(lines), buf.String())
	}
	header := strings.Split(lines[0], ",")
	if header[0] != "segment" || header[1] != "round" {
		t.Fatalf("csv header: %v", header)
	}
	// Only columns with data appear; jump_advances and live_edges must,
	// ghs_messages must not.
	if !strings.Contains(lines[0], "jump_advances") || !strings.Contains(lines[0], "live_edges") {
		t.Fatalf("csv header missing active columns: %s", lines[0])
	}
	if strings.Contains(lines[0], "ghs_messages") {
		t.Fatalf("csv header includes inactive column: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,1,") || !strings.HasPrefix(lines[2], "1,2,") {
		t.Fatalf("csv rows:\n%s", buf.String())
	}
	// Every row has the header's column count.
	for _, line := range lines[1:] {
		if got := len(strings.Split(line, ",")); got != len(header) {
			t.Fatalf("row has %d columns, header has %d: %s", got, len(header), line)
		}
	}
}

// Satellite: the -race stress test. Many goroutines hammer one recorder's
// counters/gauges through per-worker cursors and the shared facade; totals
// must be exact (no lost counts) and each shard's surviving sequence
// numbers must be the contiguous newest suffix of a monotone sequence.
func TestFlightRecorderConcurrentStress(t *testing.T) {
	const (
		workers  = 8
		perW     = 2000
		eventCap = 1 << 15 // large enough that nothing drops
	)
	rec := NewFlightRecorder(workers, eventCap)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cur := rec.Worker(w)
			for i := 0; i < perW; i++ {
				end := cur.Span("stress")
				cur.Count(CtrSchedPush, 1)
				cur.Count(CtrSchedPop, 2)
				cur.Gauge(GaugeQueueDepth, int64(i))
				end()
			}
		}(w)
	}
	// The driver facade is hit concurrently too (Count/Gauge are the
	// concurrent-safe subset; spans stay per-cursor).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < perW; i++ {
			rec.Count(CtrRounds, 1)
		}
	}()
	wg.Wait()

	if got := rec.Counter(CtrSchedPush); got != workers*perW {
		t.Fatalf("sched.push = %d, want %d (lost counts)", got, workers*perW)
	}
	if got := rec.Counter(CtrSchedPop); got != 2*workers*perW {
		t.Fatalf("sched.pop = %d, want %d", got, 2*workers*perW)
	}
	if got := rec.Counter(CtrRounds); got != perW {
		t.Fatalf("rounds = %d, want %d", got, perW)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("dropped %d events despite capacity", rec.Dropped())
	}

	// Per-shard sequence numbers are contiguous and monotone.
	perShard := map[int16][]uint64{}
	for _, e := range rec.Events() {
		perShard[e.Worker] = append(perShard[e.Worker], e.Seq)
	}
	for w, seqs := range perShard {
		for i := 1; i < len(seqs); i++ {
			if seqs[i] != seqs[i-1]+1 {
				t.Fatalf("worker %d: seq %d follows %d (not contiguous)", w, seqs[i], seqs[i-1])
			}
		}
		if seqs[0] != 0 {
			t.Fatalf("worker %d: first surviving seq = %d, want 0 (nothing dropped)", w, seqs[0])
		}
	}
	// Each worker recorded 5 events per iteration: begin, count, count,
	// gauge, end.
	for w := 0; w < workers; w++ {
		if got := len(perShard[int16(w)]); got != 5*perW {
			t.Fatalf("worker %d recorded %d events, want %d", w, got, 5*perW)
		}
	}
}

// The Recording compatibility facade gets the same concurrent hammering
// (same satellite): totals exact, span list complete.
func TestRecordingConcurrentStress(t *testing.T) {
	rec := NewRecording()
	const workers, perW = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				end := rec.Span("stress")
				rec.Count(CtrEarlyFix, 1)
				rec.Gauge(GaugeFrontier, int64(w*perW+i))
				end()
			}
		}(w)
	}
	wg.Wait()
	if got := rec.Counter(CtrEarlyFix); got != workers*perW {
		t.Fatalf("earlyfix = %d, want %d", got, workers*perW)
	}
	if got := rec.GaugeMax(GaugeFrontier); got != workers*perW-1 {
		t.Fatalf("frontier max = %d, want %d", got, workers*perW-1)
	}
	if got := len(rec.Spans()); got != workers*perW {
		t.Fatalf("spans = %d, want %d", got, workers*perW)
	}
}

func TestTee(t *testing.T) {
	a, b := NewFlightRecorder(1, 256), NewRecording()
	col := Tee(a, b)
	col.Count(CtrRounds, 2)
	col.Gauge(GaugeLiveEdges, 9)
	col.Span("both")()
	MarkRound(col, 1)

	if a.Counter(CtrRounds) != 2 || b.Counter(CtrRounds) != 2 {
		t.Fatalf("tee counts: %d, %d", a.Counter(CtrRounds), b.Counter(CtrRounds))
	}
	if a.GaugeMax(GaugeLiveEdges) != 9 || b.GaugeMax(GaugeLiveEdges) != 9 {
		t.Fatal("tee gauges diverge")
	}
	if _, ok := a.SpanSummary("both"); !ok {
		t.Fatal("tee span missing on flight side")
	}
	if len(b.Spans()) != 1 {
		t.Fatal("tee span missing on recording side")
	}
	if a.CurrentRound() != 1 {
		t.Fatal("tee did not forward round mark")
	}
	// Worker attribution flows through the tee to the side that supports it.
	ForWorker(col, 0).Count(CtrSchedPop, 3)
	if a.CounterWorker(CtrSchedPop, 0) != 3 {
		t.Fatal("tee did not forward worker attribution")
	}
	if b.Counter(CtrSchedPop) != 3 {
		t.Fatal("tee dropped unattributed side")
	}

	// Degenerate sides collapse.
	if Tee(nil, b) != Collector(b) {
		t.Fatal("Tee(nil, b) != b")
	}
	if Tee(a, Nop{}) != Collector(a) {
		t.Fatal("Tee(a, Nop) != a")
	}
	if _, ok := Tee(nil, nil).(Nop); !ok {
		t.Fatal("Tee(nil, nil) is not Nop")
	}
}

// MarkRound/ForWorker against a collector that supports neither must be
// free and safe.
func TestMarkRoundForWorkerOnPlainCollector(t *testing.T) {
	rec := NewRecording()
	MarkRound(rec, 7) // no-op: Recording keeps totals only
	if got := ForWorker(rec, 3); got != Collector(rec) {
		t.Fatal("ForWorker on plain collector did not pass through")
	}
	var nop Collector = Nop{}
	MarkRound(nop, 1)
	if got := ForWorker(nop, 0); got != nop {
		t.Fatal("ForWorker(Nop) did not pass through")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		MarkRound(nop, 2)
		_ = ForWorker(nop, 1)
	})
	if allocs != 0 {
		t.Fatalf("MarkRound/ForWorker on Nop allocates: %v", allocs)
	}
}
