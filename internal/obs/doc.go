// Package obs is the observability layer of the parallel runtime: named
// phase timers (spans) and machine-level scheduler/algorithm counters and
// gauges, behind pluggable Tracer/Collector interfaces.
//
// # Zero cost when nobody listens
//
// The design constraint is that instrumentation must be free when nobody is
// listening: algorithms call through a Collector unconditionally, and the
// no-op implementation (Nop, returned by Or for a nil Collector) costs a
// dynamic dispatch to an empty method — no allocation, no time syscalls, no
// atomics. The hot paths therefore never branch on "is tracing enabled";
// they accumulate worker-local counts and flush once per worker, so even a
// live Recording collector perturbs the measured run only at quiescence
// points.
//
// Counters and gauges are small enums, not strings, so recording them is an
// array-indexed atomic add and the zero-allocation property is checkable
// with testing.AllocsPerRun (see obs_test.go). This matters doubly now that
// the algorithms advertise O(1) steady-state allocations with a reused
// mst.Workspace: an observer that allocated per event would break that
// contract from the outside.
//
// # Plugging in
//
// Set mst.Options.Observer, or attach a Collector to a context with
// NewContext (surfaced as llpmst.WithObserver) so runs that already receive
// the context report without extra plumbing. Recording is the in-memory
// reference implementation: per-span wall-clock timeline, counter totals,
// gauge maxima, serializable as the JSON timeline behind mstbench
// -trace-out. The counter totals are cross-checked against mst.WorkMetrics
// in the test suite, so the two telemetry channels cannot drift apart.
package obs
