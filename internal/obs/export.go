package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// Exporters for the FlightRecorder: Chrome Trace Event JSON (Perfetto /
// chrome://tracing), Prometheus text exposition, a live progress snapshot
// (JSON), and a per-round CSV for convergence plots. All four read only the
// recorder's atomics and ring snapshots, so they are safe to call while a
// run is in flight; mid-run output is a consistent sample, post-run output
// is exact (modulo ring overflow, which is reported, never silent).

// chromeEvent is one entry of the Trace Event Format's traceEvents array.
// Only the fields the format requires for each phase kind are emitted.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`    // instant-event scope
	Args map[string]any `json:"args,omitempty"` // metadata / counter values
}

// chromeTID maps a recorded worker id to a Chrome trace thread id: the
// driver track (worker -1) becomes tid 0, worker w becomes tid w+1.
func chromeTID(worker int16) int { return int(worker) + 1 }

// WriteChromeTrace writes the recorder's surviving events as Chrome Trace
// Event JSON: one named thread track per worker plus a driver track, spans
// as complete ("X") events, round markers as global instant events, and
// gauge samples as counter ("C") series. Load the output in Perfetto or
// chrome://tracing.
//
// Spans are emitted from EvSpanEnd events, which carry their duration —
// pairing begin/end across a wrapped ring would drop or corrupt spans,
// whereas a surviving end event is always self-contained.
func (r *FlightRecorder) WriteChromeTrace(w io.Writer) error {
	events := r.Events()
	out := make([]chromeEvent, 0, len(events)+len(r.cursors)+1)

	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "llpmst"},
	})
	out = append(out, chromeEvent{
		Name: "thread_name", Ph: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "driver"},
	})
	for i := 1; i < len(r.cursors); i++ {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: i,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", i-1)},
		})
	}

	for _, e := range events {
		switch e.Kind {
		case EvSpanEnd:
			start := e.TS - e.Value
			if start < 0 {
				start = 0
			}
			out = append(out, chromeEvent{
				Name: r.SpanName(e.ID),
				Ph:   "X",
				TS:   float64(start) / 1e3,
				Dur:  float64(e.Value) / 1e3,
				PID:  1,
				TID:  chromeTID(e.Worker),
				Args: map[string]any{"round": e.Round},
			})
		case EvRound:
			out = append(out, chromeEvent{
				Name: fmt.Sprintf("round %d", e.Value),
				Ph:   "i",
				TS:   float64(e.TS) / 1e3,
				PID:  1,
				TID:  chromeTID(e.Worker),
				S:    "g",
			})
		case EvGauge:
			out = append(out, chromeEvent{
				Name: Gauge(e.ID).String(),
				Ph:   "C",
				TS:   float64(e.TS) / 1e3,
				PID:  1,
				TID:  chromeTID(e.Worker),
				Args: map[string]any{"value": e.Value},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}

// promEscape escapes a Prometheus label value.
func promEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promWorker renders a worker id as a label value ("driver" for -1).
func promWorker(i int) string {
	if i == 0 {
		return "driver"
	}
	return fmt.Sprintf("%d", i-1)
}

// WritePrometheus writes the recorder's aggregates in Prometheus text
// exposition format (version 0.0.4): per-worker counter totals, last and
// max gauge samples, span-duration histograms with cumulative log-2
// buckets, and the recorded/dropped event totals. Reads only atomics, so
// serving this from an HTTP handler during a run is safe and cheap.
func (r *FlightRecorder) WritePrometheus(w io.Writer) error {
	var b strings.Builder

	b.WriteString("# HELP llpmst_events_total Counter deltas accumulated per worker.\n")
	b.WriteString("# TYPE llpmst_events_total counter\n")
	for c := Counter(0); c < NumCounters; c++ {
		for i := range r.shards {
			v := r.shards[i].counters[c].Load()
			if v == 0 {
				continue
			}
			fmt.Fprintf(&b, "llpmst_events_total{counter=%q,worker=%q} %d\n",
				promEscape(c.String()), promWorker(i), v)
		}
	}

	b.WriteString("# HELP llpmst_gauge_last Most recent gauge sample per worker.\n")
	b.WriteString("# TYPE llpmst_gauge_last gauge\n")
	for g := Gauge(0); g < NumGauges; g++ {
		for i := range r.shards {
			if r.shards[i].gaugeTS[g].Load() == 0 {
				continue
			}
			fmt.Fprintf(&b, "llpmst_gauge_last{gauge=%q,worker=%q} %d\n",
				promEscape(g.String()), promWorker(i), r.shards[i].gaugeLast[g].Load())
		}
	}

	b.WriteString("# HELP llpmst_gauge_max Maximum gauge sample per worker.\n")
	b.WriteString("# TYPE llpmst_gauge_max gauge\n")
	for g := Gauge(0); g < NumGauges; g++ {
		for i := range r.shards {
			if r.shards[i].gaugeTS[g].Load() == 0 {
				continue
			}
			fmt.Fprintf(&b, "llpmst_gauge_max{gauge=%q,worker=%q} %d\n",
				promEscape(g.String()), promWorker(i), r.shards[i].gaugeMax[g].Load())
		}
	}

	b.WriteString("# HELP llpmst_span_duration_seconds Span latency histogram (log-2 nanosecond buckets).\n")
	b.WriteString("# TYPE llpmst_span_duration_seconds histogram\n")
	names := r.names.snapshot()
	for id, name := range names {
		h := &r.hists[id]
		count := h.count.Load()
		if count == 0 {
			continue
		}
		label := promEscape(name)
		var cum int64
		for bkt := 0; bkt < histBuckets; bkt++ {
			n := h.buckets[bkt].Load()
			if n == 0 {
				continue
			}
			cum += n
			upper := float64(int64(1)<<uint(bkt)) / 1e9
			fmt.Fprintf(&b, "llpmst_span_duration_seconds_bucket{span=%q,le=%q} %d\n",
				label, fmt.Sprintf("%g", upper), cum)
		}
		fmt.Fprintf(&b, "llpmst_span_duration_seconds_bucket{span=%q,le=\"+Inf\"} %d\n", label, count)
		fmt.Fprintf(&b, "llpmst_span_duration_seconds_sum{span=%q} %g\n",
			label, float64(h.sumNS.Load())/1e9)
		fmt.Fprintf(&b, "llpmst_span_duration_seconds_count{span=%q} %d\n", label, count)
	}

	b.WriteString("# HELP llpmst_events_recorded_total Events written into the flight-recorder rings.\n")
	b.WriteString("# TYPE llpmst_events_recorded_total counter\n")
	fmt.Fprintf(&b, "llpmst_events_recorded_total %d\n", r.Recorded())
	b.WriteString("# HELP llpmst_events_dropped_total Events overwritten by ring wrap-around.\n")
	b.WriteString("# TYPE llpmst_events_dropped_total counter\n")
	fmt.Fprintf(&b, "llpmst_events_dropped_total %d\n", r.Dropped())

	_, err := io.WriteString(w, b.String())
	return err
}

// progressSnapshot is the JSON shape served at /progress: a one-glance view
// of a run in flight.
type progressSnapshot struct {
	ElapsedMS float64          `json:"elapsed_ms"`
	Round     int64            `json:"round"`
	Recorded  uint64           `json:"events_recorded"`
	Dropped   uint64           `json:"events_dropped"`
	Counters  map[string]int64 `json:"counters"`
	Gauges    map[string]int64 `json:"gauges"`
	Spans     []progressSpan   `json:"spans"`
}

type progressSpan struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	SumMS float64 `json:"sum_ms"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// WriteProgress writes a live JSON snapshot: elapsed time, current round,
// nonzero counter totals, latest gauge samples, and span latency digests.
func (r *FlightRecorder) WriteProgress(w io.Writer) error {
	snap := progressSnapshot{
		ElapsedMS: float64(r.now()) / 1e6,
		Round:     r.CurrentRound(),
		Recorded:  r.Recorded(),
		Dropped:   r.Dropped(),
		Counters:  make(map[string]int64),
		Gauges:    make(map[string]int64),
	}
	for c := Counter(0); c < NumCounters; c++ {
		if v := r.Counter(c); v != 0 {
			snap.Counters[c.String()] = v
		}
	}
	for g := Gauge(0); g < NumGauges; g++ {
		if v, ok := r.GaugeLast(g); ok {
			snap.Gauges[g.String()] = v
		}
	}
	for _, s := range r.SpanSummaries() {
		snap.Spans = append(snap.Spans, progressSpan{
			Name:  s.Name,
			Count: s.Count,
			SumMS: float64(s.Sum) / 1e6,
			P50MS: float64(s.P50) / 1e6,
			P95MS: float64(s.P95) / 1e6,
			P99MS: float64(s.P99) / 1e6,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// WriteRoundCSV writes the RoundSeries as CSV for convergence plots: one
// row per round segment with the segment's bounds plus a column for every
// counter or gauge that is nonzero anywhere in the series (so CSVs stay
// narrow: a Boruvka run does not drag along GHS columns). Columns appear in
// enum order, counters before gauges.
func (r *FlightRecorder) WriteRoundCSV(w io.Writer) error {
	series := r.RoundSeries()

	var ctrCols []Counter
	for c := Counter(0); c < NumCounters; c++ {
		for i := range series {
			if series[i].Counters[c] != 0 {
				ctrCols = append(ctrCols, c)
				break
			}
		}
	}
	var gCols []Gauge
	for g := Gauge(0); g < NumGauges; g++ {
		for i := range series {
			if series[i].GaugeSeen[g] {
				gCols = append(gCols, g)
				break
			}
		}
	}

	var b strings.Builder
	b.WriteString("segment,round,start_ms,dur_ms")
	for _, c := range ctrCols {
		b.WriteByte(',')
		b.WriteString(csvName(c.String()))
	}
	for _, g := range gCols {
		b.WriteByte(',')
		b.WriteString(csvName(g.String()))
	}
	b.WriteByte('\n')

	for i, rs := range series {
		fmt.Fprintf(&b, "%d,%d,%.3f,%.3f", i, rs.Round,
			float64(rs.Start)/float64(time.Millisecond),
			float64(rs.End-rs.Start)/float64(time.Millisecond))
		for _, c := range ctrCols {
			fmt.Fprintf(&b, ",%d", rs.Counters[c])
		}
		for _, g := range gCols {
			if rs.GaugeSeen[g] {
				fmt.Fprintf(&b, ",%d", rs.Gauges[g])
			} else {
				b.WriteByte(',')
			}
		}
		b.WriteByte('\n')
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// csvName makes an enum name CSV-header-friendly (dots to underscores).
func csvName(s string) string { return strings.ReplaceAll(s, ".", "_") }
