package obs

import (
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder.
//
// Recording (recording.go) answers "what were the totals": counter sums,
// gauge maxima, a flat span timeline. The paper's empirical claims, though,
// are about convergence *dynamics* — how fast LLP-Prim's early-fixing bag
// drains, how many pointer-jumping sweeps each LLP-Boruvka contraction
// round needs — and reproducing those curves requires the individual
// samples, attributed to the worker and the round that produced them. The
// FlightRecorder captures exactly that: per-worker sharded, fixed-capacity
// ring buffers of typed events, written with one uncontended atomic claim
// and zero allocations, plus always-current atomic aggregates (counter
// totals, last/max gauge values, log-bucket span-duration histograms) that
// live HTTP endpoints can read while a run is in flight.
//
// Overflow policy: each shard's ring holds the most recent EventCap events;
// older ones are overwritten (Dropped reports how many). Aggregates are
// exact regardless of overflow — only the event-by-event replay is bounded.

// EventKind discriminates the typed events in a shard's ring.
type EventKind uint8

// The event kinds.
const (
	// EvCount is a counter delta: ID is the Counter, Value the delta.
	EvCount EventKind = iota + 1
	// EvGauge is a gauge sample: ID is the Gauge, Value the sample.
	EvGauge
	// EvSpanBegin opens a span: ID is the interned span name.
	EvSpanBegin
	// EvSpanEnd closes a span: ID is the interned span name, Value the
	// duration in nanoseconds.
	EvSpanEnd
	// EvRound is a round marker: Value is the round number (see MarkRound).
	EvRound
)

// Event is one recorded telemetry sample. The struct is exactly 32 bytes so
// ring writes stay within one or two cache lines.
type Event struct {
	// TS is the event time in nanoseconds since the recorder's origin.
	TS int64
	// Value is the kind-specific payload (delta, sample, duration, round).
	Value int64
	// Seq is the per-shard monotone sequence number of the event.
	Seq uint64
	// Round is the round number current when the event was recorded.
	Round int32
	// Worker is the worker the event is attributed to (-1 for the driver).
	Worker int16
	// Kind discriminates the payload.
	Kind EventKind
	// ID is the Counter, Gauge, or interned span name, per Kind.
	ID uint8
}

// DefaultEventCap is the per-shard ring capacity when NewFlightRecorder is
// given eventCap <= 0: 16384 events * 32 bytes = 512 KiB per worker shard.
const DefaultEventCap = 1 << 14

// maxSpanNames bounds the span-name intern table; name 63 is the shared
// overflow bucket, so a runaway caller degrades to coarse attribution
// instead of growing without bound.
const maxSpanNames = 64

// histBuckets is the number of log2(ns) duration buckets: bucket i counts
// durations d with bits.Len64(d) == i, i.e. d in [2^(i-1), 2^i). Bucket 47
// (~1.6 days) absorbs everything longer.
const histBuckets = 48

// shard is one worker's event ring plus its always-current aggregates.
// Only hot fields live near the claim cursor; the trailing pad keeps
// adjacent shards' cursors and counter cells off each other's cache lines.
type shard struct {
	head atomic.Uint64 // total events ever claimed; ring slot = seq & mask
	_    [56]byte      // the claim cursor gets a cache line to itself

	buf    []Event
	mask   uint64
	worker int16

	counters  [NumCounters]atomic.Int64
	gaugeLast [NumGauges]atomic.Int64
	gaugeMax  [NumGauges]atomic.Int64
	gaugeTS   [NumGauges]atomic.Int64 // TS of the last sample (0 = never)

	_ [64]byte // isolate this shard's aggregates from the next shard's head
}

// spanHist is a log-bucket duration histogram, shared across workers for
// one span name (span ends are per-phase, not per-item, so the shared
// atomics see no meaningful contention).
type spanHist struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func (h *spanHist) observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	b := bits.Len64(uint64(ns))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
	h.sumNS.Add(ns)
	h.count.Add(1)
}

// quantile returns the upper bound (2^bucket nanoseconds) of the bucket
// containing the q-th quantile, 0 when the histogram is empty.
func (h *spanHist) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	want := int64(q * float64(total))
	if want < 1 {
		want = 1
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		cum += h.buckets[b].Load()
		if cum >= want {
			if b >= 63 {
				return time.Duration(int64(^uint64(0) >> 1))
			}
			return time.Duration(int64(1) << uint(b))
		}
	}
	return time.Duration(int64(1) << (histBuckets - 1))
}

// nameTable interns span names to small ids. Lookups of known names take a
// read lock and allocate nothing; the first sighting of a new name takes
// the write lock once. Names beyond maxSpanNames-1 share the overflow id.
type nameTable struct {
	mu    sync.RWMutex
	ids   map[string]uint8
	names []string
}

func (t *nameTable) id(name string) uint8 {
	t.mu.RLock()
	id, ok := t.ids[name]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[name]; ok {
		return id
	}
	if len(t.names) >= maxSpanNames-1 {
		return maxSpanNames - 1 // shared overflow bucket
	}
	id = uint8(len(t.names))
	t.ids[name] = id
	t.names = append(t.names, name)
	return id
}

// name returns the interned name for id ("~overflow" for the shared
// overflow bucket, which has no single name).
func (t *nameTable) name(id uint8) string {
	if id == maxSpanNames-1 {
		return "~overflow"
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(id) < len(t.names) {
		return t.names[id]
	}
	return "~unknown"
}

func (t *nameTable) snapshot() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, len(t.names))
	copy(out, t.names)
	return out
}

// Cursor is one worker's attributed view of a FlightRecorder: a Collector
// whose events carry that worker's id. Count, Gauge, and Round are safe for
// concurrent use from any number of goroutines (slots are claimed with an
// atomic add); Span open/close tracking is per-cursor state, so spans on
// one cursor must come from one goroutine at a time — exactly the runtime's
// usage, where each scheduler worker holds its own cursor.
type Cursor struct {
	rec *FlightRecorder
	s   *shard

	// Span bookkeeping: open start times and cached end closures, one per
	// interned span name. Closures are built on first use, so steady-state
	// Span calls return a cached func and allocate nothing.
	open [maxSpanNames]int64
	ends [maxSpanNames]func()
}

// Span implements Tracer: it records an EvSpanBegin now and an EvSpanEnd
// (carrying the duration, which also feeds the span's log-bucket histogram)
// when the returned closer runs.
func (c *Cursor) Span(name string) func() {
	id := c.rec.names.id(name)
	c.open[id] = c.rec.now()
	c.rec.record(c.s, EvSpanBegin, id, 0)
	end := c.ends[id]
	if end == nil {
		end = func() {
			dur := c.rec.now() - c.open[id]
			c.rec.hists[id].observe(dur)
			c.rec.record(c.s, EvSpanEnd, id, dur)
		}
		c.ends[id] = end
	}
	return end
}

// Count implements Collector: the delta lands in the shard's running total
// and in the ring as an EvCount event.
func (c *Cursor) Count(ctr Counter, delta int64) {
	c.s.counters[ctr].Add(delta)
	c.rec.record(c.s, EvCount, uint8(ctr), delta)
}

// Gauge implements Collector, retaining both the last and the maximum
// sample and appending an EvGauge event.
func (c *Cursor) Gauge(g Gauge, v int64) {
	s := c.s
	s.gaugeLast[g].Store(v)
	s.gaugeTS[g].Store(c.rec.now() + 1) // +1 so TS 0 still reads as "seen"
	for {
		cur := s.gaugeMax[g].Load()
		if v <= cur || s.gaugeMax[g].CompareAndSwap(cur, v) {
			break
		}
	}
	c.rec.record(s, EvGauge, uint8(g), v)
}

// Round implements RoundMarker: it advances the recorder's current round
// (attributed to subsequent events from every worker) and drops an EvRound
// marker on this cursor's track.
func (c *Cursor) Round(r int64) {
	c.rec.round.Store(r)
	c.rec.record(c.s, EvRound, 0, r)
}

// FlightRecorder is the sharded, ring-buffered Collector. Construct with
// NewFlightRecorder; the zero value is not usable. The recorder itself
// implements Collector (events attributed to the driver track, worker -1),
// RoundMarker, and WorkerAttributor — pass it as Options.Observer or carry
// it on a context and the runtime's ForWorker calls pick up per-worker
// attribution automatically.
type FlightRecorder struct {
	origin  time.Time
	round   atomic.Int64
	shards  []shard  // shards[0] = driver, shards[1..] = workers
	cursors []Cursor // parallel to shards
	names   nameTable
	hists   [maxSpanNames]spanHist
}

// NewFlightRecorder returns a recorder with one driver shard plus workers
// worker shards (GOMAXPROCS when workers <= 0; worker ids are folded modulo
// the shard count, so any id is accepted). eventCap is the per-shard ring
// capacity, rounded up to a power of two (DefaultEventCap when <= 0).
func NewFlightRecorder(workers, eventCap int) *FlightRecorder {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if eventCap <= 0 {
		eventCap = DefaultEventCap
	}
	capPow := 1
	for capPow < eventCap {
		capPow <<= 1
	}
	r := &FlightRecorder{
		origin: time.Now(),
		shards: make([]shard, workers+1),
		names:  nameTable{ids: make(map[string]uint8, maxSpanNames)},
	}
	r.cursors = make([]Cursor, workers+1)
	for i := range r.shards {
		s := &r.shards[i]
		s.buf = make([]Event, capPow)
		s.mask = uint64(capPow - 1)
		s.worker = int16(i - 1) // shard 0 is the driver, worker -1
		r.cursors[i] = Cursor{rec: r, s: s}
	}
	return r
}

// now is the event clock: nanoseconds since the recorder's origin.
func (r *FlightRecorder) now() int64 { return int64(time.Since(r.origin)) }

// record claims the next ring slot with one uncontended atomic add and
// fills it in place — no allocation, no lock, no shared cache line with
// other shards.
func (r *FlightRecorder) record(s *shard, k EventKind, id uint8, v int64) {
	seq := s.head.Add(1) - 1
	s.buf[seq&s.mask] = Event{
		TS:     r.now(),
		Value:  v,
		Seq:    seq,
		Round:  int32(r.round.Load()),
		Worker: s.worker,
		Kind:   k,
		ID:     id,
	}
}

// Worker implements WorkerAttributor: it returns the cursor whose events
// are attributed to worker w (w < 0 selects the driver track). Cursors are
// preallocated, so this is an index, not an allocation.
func (r *FlightRecorder) Worker(w int) Collector {
	if w < 0 {
		return &r.cursors[0]
	}
	return &r.cursors[1+w%(len(r.cursors)-1)]
}

// driver is the cursor behind the recorder's own Collector facade.
func (r *FlightRecorder) driver() *Cursor { return &r.cursors[0] }

// Span implements Tracer on the driver track. See Cursor.Span for the
// concurrency contract; unattributed concurrent span pairs should use
// per-worker cursors (ForWorker) instead.
func (r *FlightRecorder) Span(name string) func() { return r.driver().Span(name) }

// Count implements Collector on the driver track (safe for concurrent use).
func (r *FlightRecorder) Count(c Counter, delta int64) { r.driver().Count(c, delta) }

// Gauge implements Collector on the driver track (safe for concurrent use).
func (r *FlightRecorder) Gauge(g Gauge, v int64) { r.driver().Gauge(g, v) }

// Round implements RoundMarker on the driver track.
func (r *FlightRecorder) Round(rn int64) { r.driver().Round(rn) }

// CurrentRound returns the most recently marked round number.
func (r *FlightRecorder) CurrentRound() int64 { return r.round.Load() }

// Counter returns the accumulated total for c across all shards.
func (r *FlightRecorder) Counter(c Counter) int64 {
	var t int64
	for i := range r.shards {
		t += r.shards[i].counters[c].Load()
	}
	return t
}

// CounterWorker returns worker w's share of counter c (w < 0: the driver).
func (r *FlightRecorder) CounterWorker(c Counter, w int) int64 {
	i := 0
	if w >= 0 {
		i = 1 + w%(len(r.cursors)-1)
	}
	return r.shards[i].counters[c].Load()
}

// GaugeMax returns the maximum sample of g across all shards (0 if never
// sampled).
func (r *FlightRecorder) GaugeMax(g Gauge) int64 {
	var m int64
	for i := range r.shards {
		if v := r.shards[i].gaugeMax[g].Load(); v > m {
			m = v
		}
	}
	return m
}

// GaugeLast returns the most recent sample of g across all shards and
// whether g was ever sampled.
func (r *FlightRecorder) GaugeLast(g Gauge) (int64, bool) {
	var v, best int64
	seen := false
	for i := range r.shards {
		ts := r.shards[i].gaugeTS[g].Load()
		if ts > best {
			best = ts
			v = r.shards[i].gaugeLast[g].Load()
			seen = true
		}
	}
	return v, seen
}

// Recorded returns the total number of events ever recorded, and Dropped
// how many of them have been overwritten by ring wrap-around.
func (r *FlightRecorder) Recorded() uint64 {
	var t uint64
	for i := range r.shards {
		t += r.shards[i].head.Load()
	}
	return t
}

// Dropped returns the number of recorded events no longer in the rings.
func (r *FlightRecorder) Dropped() uint64 {
	var t uint64
	for i := range r.shards {
		s := &r.shards[i]
		if h := s.head.Load(); h > uint64(len(s.buf)) {
			t += h - uint64(len(s.buf))
		}
	}
	return t
}

// Events returns a merged snapshot of every shard's surviving events,
// sorted by timestamp (sequence number breaking ties within a shard).
// In-flight slots — claimed but not yet fully written — are filtered by
// their stale sequence numbers, so a snapshot taken mid-run is a consistent
// sample; for exact replay, snapshot after the run has joined.
func (r *FlightRecorder) Events() []Event {
	var out []Event
	for i := range r.shards {
		s := &r.shards[i]
		head := s.head.Load()
		n := uint64(len(s.buf))
		lo := uint64(0)
		if head > n {
			lo = head - n
		}
		for seq := lo; seq < head; seq++ {
			e := s.buf[seq&s.mask]
			if e.Seq == seq && e.Kind != 0 {
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		if out[i].Worker != out[j].Worker {
			return out[i].Worker < out[j].Worker
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// SpanName returns the interned span name behind an EvSpanBegin/EvSpanEnd
// event's ID.
func (r *FlightRecorder) SpanName(id uint8) string { return r.names.name(id) }

// SpanSummary is the latency digest of one span name: how many times it
// closed, total time inside it, and log-bucket quantiles.
type SpanSummary struct {
	Name          string
	Count         int64
	Sum           time.Duration
	P50, P95, P99 time.Duration
}

// SpanSummary returns the digest for one span name and whether that span
// ever closed.
func (r *FlightRecorder) SpanSummary(name string) (SpanSummary, bool) {
	for id, n := range r.names.snapshot() {
		if n == name {
			h := &r.hists[id]
			if h.count.Load() == 0 {
				return SpanSummary{Name: name}, false
			}
			return r.summarize(uint8(id), name), true
		}
	}
	return SpanSummary{Name: name}, false
}

// SpanSummaries returns digests for every span name that closed at least
// once, sorted by name.
func (r *FlightRecorder) SpanSummaries() []SpanSummary {
	names := r.names.snapshot()
	var out []SpanSummary
	for id, n := range names {
		if r.hists[id].count.Load() > 0 {
			out = append(out, r.summarize(uint8(id), n))
		}
	}
	if r.hists[maxSpanNames-1].count.Load() > 0 {
		out = append(out, r.summarize(maxSpanNames-1, "~overflow"))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (r *FlightRecorder) summarize(id uint8, name string) SpanSummary {
	h := &r.hists[id]
	return SpanSummary{
		Name:  name,
		Count: h.count.Load(),
		Sum:   time.Duration(h.sumNS.Load()),
		P50:   h.quantile(0.50),
		P95:   h.quantile(0.95),
		P99:   h.quantile(0.99),
	}
}

// RoundStats aggregates one round segment of the event stream: the counter
// deltas and final gauge samples between two consecutive round markers.
type RoundStats struct {
	// Round is the number the segment's opening marker carried.
	Round int64
	// Start and End bound the segment on the recorder's timeline.
	Start, End time.Duration
	// Counters holds the summed counter deltas recorded in the segment.
	Counters [NumCounters]int64
	// Gauges holds each gauge's last sample in the segment; GaugeSeen says
	// whether the gauge was sampled at all (Gauges is 0 otherwise).
	Gauges    [NumGauges]int64
	GaugeSeen [NumGauges]bool
}

// Counter returns the segment's delta for c.
func (rs *RoundStats) Counter(c Counter) int64 { return rs.Counters[c] }

// Gauge returns the segment's last sample of g and whether g was sampled.
func (rs *RoundStats) Gauge(g Gauge) (int64, bool) { return rs.Gauges[g], rs.GaugeSeen[g] }

// RoundSeries converts the surviving event stream into per-round segments:
// the stream is walked in time order and cut at every round marker
// (MarkRound), so successive algorithm runs that restart their round
// numbering yield successive segments rather than merged rounds. A leading
// segment before the first marker is included only when it recorded
// counters or gauges. This is the view behind the convergence curves:
// live edges per Boruvka round, jump advances per sweep, early-fix vs
// heap-pop mix per LLP-Prim wave.
func (r *FlightRecorder) RoundSeries() []RoundStats {
	events := r.Events()
	var out []RoundStats
	var cur *RoundStats
	content := false // current segment recorded at least one count/gauge
	open := func(round int64, ts int64) {
		out = append(out, RoundStats{Round: round, Start: time.Duration(ts), End: time.Duration(ts)})
		cur = &out[len(out)-1]
		content = false
	}
	for _, e := range events {
		if e.Kind == EvRound {
			if cur != nil && !content && cur.Round == 0 && len(out) == 1 {
				out = out[:0] // drop the empty pre-round prologue
			}
			open(e.Value, e.TS)
			continue
		}
		if cur == nil {
			open(0, e.TS)
		}
		if time.Duration(e.TS) > cur.End {
			cur.End = time.Duration(e.TS)
		}
		switch e.Kind {
		case EvCount:
			cur.Counters[e.ID] += e.Value
			content = true
		case EvGauge:
			cur.Gauges[e.ID] = e.Value
			cur.GaugeSeen[e.ID] = true
			content = true
		}
	}
	if cur != nil && !content && cur.Round == 0 && len(out) == 1 {
		out = out[:0]
	}
	return out
}
