// red.go: per-route RED metrics (Rate, Errors, Duration) for the HTTP
// serving layer, with exemplar trace IDs linking the slowest observation per
// route back to the trace store.
//
// One routeMetrics per registered route pattern; the route set is fixed at
// mux construction so the map is effectively read-only after warmup and
// observations touch only atomics (plus the exemplar mutex, uncontended in
// practice). Latency reuses the flight recorder's log-2-bucket spanHist, so
// the p50/p95/p99 digests on /metrics are computed the same way as the
// algorithm-span digests of PR 4.
package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// PromEscape escapes a Prometheus label value per the text exposition
// format: backslash, double quote, and newline. Any user-controlled string
// (graph IDs, stream IDs, routes) must pass through it before being
// interpolated into a label.
func PromEscape(s string) string { return promEscape(s) }

// HTTPMetrics aggregates per-route RED series. Safe for concurrent use.
type HTTPMetrics struct {
	mu     sync.RWMutex
	routes map[string]*routeMetrics
}

type routeMetrics struct {
	route   string
	byClass [6]atomic.Int64 // status/100: index 1..5, 0 = unknown
	hist    spanHist

	// Exemplar: the slowest observation since the last export that carried
	// a trace ID, so dashboards can jump from a latency spike to the exact
	// trace. Reset on WritePrometheus.
	exMu  sync.Mutex
	exID  TraceID
	exNS  int64
	exSet bool
}

// NewHTTPMetrics returns an empty registry of per-route series.
func NewHTTPMetrics() *HTTPMetrics {
	return &HTTPMetrics{routes: make(map[string]*routeMetrics)}
}

func (m *HTTPMetrics) route(pattern string) *routeMetrics {
	m.mu.RLock()
	r := m.routes[pattern]
	m.mu.RUnlock()
	if r != nil {
		return r
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if r = m.routes[pattern]; r == nil {
		r = &routeMetrics{route: pattern}
		m.routes[pattern] = r
	}
	return r
}

// Observe records one served request. tid may be the zero TraceID when the
// request was not traced (slot exhaustion); it is then skipped for exemplar
// purposes.
func (m *HTTPMetrics) Observe(pattern string, status int, d time.Duration, tid TraceID) {
	r := m.route(pattern)
	class := status / 100
	if class < 1 || class > 5 {
		class = 0
	}
	r.byClass[class].Add(1)
	ns := int64(d)
	r.hist.observe(ns)
	if !tid.IsZero() {
		r.exMu.Lock()
		if !r.exSet || ns > r.exNS {
			r.exID, r.exNS, r.exSet = tid, ns, true
		}
		r.exMu.Unlock()
	}
}

// WritePrometheus appends the RED series in text exposition format 0.0.4:
//
//	llpmst_http_requests_total{route,code}            counter per status class
//	llpmst_http_request_errors_total{route}           counter (5xx)
//	llpmst_http_request_duration_seconds{route}       log-2 bucket histogram
//	llpmst_http_request_duration_quantile_seconds{route,q}  p50/p95/p99 digest
//	llpmst_http_request_exemplar_seconds{route,trace_id}    slowest-recent trace
//
// The exemplar is emitted as its own series (not an OpenMetrics inline
// exemplar) because /metrics advertises the 0.0.4 content type, whose
// parsers reject the "# {...}" exemplar syntax. Reading an exemplar resets
// it, so each scrape sees the slowest trace of its own interval.
func (m *HTTPMetrics) WritePrometheus(w io.Writer) error {
	m.mu.RLock()
	routes := make([]*routeMetrics, 0, len(m.routes))
	for _, r := range m.routes {
		routes = append(routes, r)
	}
	m.mu.RUnlock()
	// Deterministic output order.
	for i := 1; i < len(routes); i++ {
		for j := i; j > 0 && routes[j-1].route > routes[j].route; j-- {
			routes[j-1], routes[j] = routes[j], routes[j-1]
		}
	}

	var b strings.Builder
	b.WriteString("# HELP llpmst_http_requests_total Requests served per route and status class.\n")
	b.WriteString("# TYPE llpmst_http_requests_total counter\n")
	for _, r := range routes {
		label := promEscape(r.route)
		for class := 1; class <= 5; class++ {
			if v := r.byClass[class].Load(); v != 0 {
				fmt.Fprintf(&b, "llpmst_http_requests_total{route=\"%s\",code=\"%dxx\"} %d\n",
					label, class, v)
			}
		}
	}

	b.WriteString("# HELP llpmst_http_request_errors_total Requests that ended in a 5xx per route.\n")
	b.WriteString("# TYPE llpmst_http_request_errors_total counter\n")
	for _, r := range routes {
		fmt.Fprintf(&b, "llpmst_http_request_errors_total{route=\"%s\"} %d\n",
			promEscape(r.route), r.byClass[5].Load())
	}

	b.WriteString("# HELP llpmst_http_request_duration_seconds Request latency histogram (log-2 nanosecond buckets).\n")
	b.WriteString("# TYPE llpmst_http_request_duration_seconds histogram\n")
	for _, r := range routes {
		label := promEscape(r.route)
		count := r.hist.count.Load()
		if count == 0 {
			continue
		}
		var cum int64
		for bkt := 0; bkt < histBuckets; bkt++ {
			n := r.hist.buckets[bkt].Load()
			if n == 0 {
				continue
			}
			cum += n
			upper := float64(int64(1)<<uint(bkt)) / 1e9
			fmt.Fprintf(&b, "llpmst_http_request_duration_seconds_bucket{route=\"%s\",le=\"%g\"} %d\n",
				label, upper, cum)
		}
		fmt.Fprintf(&b, "llpmst_http_request_duration_seconds_bucket{route=\"%s\",le=\"+Inf\"} %d\n", label, count)
		fmt.Fprintf(&b, "llpmst_http_request_duration_seconds_sum{route=\"%s\"} %g\n",
			label, float64(r.hist.sumNS.Load())/1e9)
		fmt.Fprintf(&b, "llpmst_http_request_duration_seconds_count{route=\"%s\"} %d\n", label, count)
	}

	b.WriteString("# HELP llpmst_http_request_duration_quantile_seconds Log-2 bucket upper bound containing the quantile.\n")
	b.WriteString("# TYPE llpmst_http_request_duration_quantile_seconds gauge\n")
	for _, r := range routes {
		if r.hist.count.Load() == 0 {
			continue
		}
		label := promEscape(r.route)
		for _, q := range [...]float64{0.5, 0.95, 0.99} {
			fmt.Fprintf(&b, "llpmst_http_request_duration_quantile_seconds{route=\"%s\",q=\"%g\"} %g\n",
				label, q, float64(r.hist.quantile(q))/1e9)
		}
	}

	// The exemplar family (and its header) appears only when a scrape
	// interval actually saw a traced request: exemplars are read-and-reset.
	wroteExemplarHeader := false
	for _, r := range routes {
		r.exMu.Lock()
		id, ns, set := r.exID, r.exNS, r.exSet
		r.exSet = false
		r.exMu.Unlock()
		if !set {
			continue
		}
		if !wroteExemplarHeader {
			b.WriteString("# HELP llpmst_http_request_exemplar_seconds Slowest traced request since the last scrape, labeled with its trace ID.\n")
			b.WriteString("# TYPE llpmst_http_request_exemplar_seconds gauge\n")
			wroteExemplarHeader = true
		}
		fmt.Fprintf(&b, "llpmst_http_request_exemplar_seconds{route=\"%s\",trace_id=\"%s\"} %g\n",
			promEscape(r.route), id.String(), float64(ns)/1e9)
	}

	_, err := io.WriteString(w, b.String())
	return err
}
