package obs

import (
	"strings"
	"testing"
	"time"
)

func TestHTTPMetricsPrometheus(t *testing.T) {
	m := NewHTTPMetrics()
	tid := NewTraceID()
	m.Observe("POST /solve", 200, 5*time.Millisecond, tid)
	m.Observe("POST /solve", 200, 50*time.Millisecond, tid)
	m.Observe("POST /solve", 500, 2*time.Millisecond, TraceID{})
	m.Observe("GET /healthz", 200, time.Millisecond, TraceID{})

	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`llpmst_http_requests_total{route="POST /solve",code="2xx"} 2`,
		`llpmst_http_requests_total{route="POST /solve",code="5xx"} 1`,
		`llpmst_http_request_errors_total{route="POST /solve"} 1`,
		`llpmst_http_request_duration_seconds_count{route="POST /solve"} 3`,
		`llpmst_http_request_duration_quantile_seconds{route="POST /solve",q="0.99"}`,
		`llpmst_http_request_exemplar_seconds{route="POST /solve",trace_id="` + tid.String() + `"}`,
		`llpmst_http_requests_total{route="GET /healthz",code="2xx"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q\n%s", want, out)
		}
	}

	// The exemplar is read-and-reset: a second scrape with no new traffic
	// must not repeat it.
	b.Reset()
	_ = m.WritePrometheus(&b)
	if strings.Contains(b.String(), "llpmst_http_request_exemplar_seconds") {
		t.Errorf("exemplar survived a scrape without new traffic:\n%s", b.String())
	}
}

func TestPromEscape(t *testing.T) {
	in := "a\"b\\c\nd"
	want := `a\"b\\c\nd`
	if got := PromEscape(in); got != want {
		t.Fatalf("PromEscape(%q) = %q, want %q", in, got, want)
	}
}
