package obs

import "context"

// ctxKey is the private context key for a Collector.
type ctxKey struct{}

// NewContext returns a context carrying col, for call chains (the bench
// harness, the distributed simulator) where threading an explicit Collector
// parameter through every layer would be noise.
func NewContext(ctx context.Context, col Collector) context.Context {
	return context.WithValue(ctx, ctxKey{}, col)
}

// FromContext returns the Collector carried by ctx, or Nop when ctx is nil
// or carries none — callers can always instrument against the result.
func FromContext(ctx context.Context) Collector {
	if ctx != nil {
		if col, ok := ctx.Value(ctxKey{}).(Collector); ok && col != nil {
			return col
		}
	}
	return Nop{}
}
