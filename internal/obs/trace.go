// trace.go: request-scoped distributed-tracing spans with W3C trace-context
// propagation.
//
// This file is the request-granularity counterpart to the flight recorder
// (flight.go). The flight recorder answers "where did the *algorithm* spend
// its time" with per-worker, per-round events; the trace layer answers "where
// did *this request* spend its time" with a span tree that crosses layers:
// HTTP root -> registry (cache hit/miss, singleflight link) -> resilient
// (admission, hedged legs) -> stream (WAL append, fsync) -> algorithm round
// summary.
//
// Design constraints, mirroring the flight recorder's discipline:
//
//   - Zero steady-state allocations on the un-sampled path. Spans are written
//     into pre-allocated per-trace slots claimed with one atomic add; span
//     handles (Span, TraceRef) are plain values.
//   - Safe against late emitters. Hedged losers in internal/resilient keep
//     running briefly after the winning response is sent; a loser must never
//     write into a trace slot that has been recycled for a new request. Every
//     trace slot carries a packed atomic state word [gen:32|fin:1|open:31]:
//     starting a span CAS-increments the open count only if the generation
//     matches and the trace is not finished, so stale handles degrade to
//     no-ops instead of corrupting a recycled slot.
//   - Tail sampling. The keep/drop decision happens at trace *completion*
//     (see tracestore.go), so "keep all errors and the p99-slow tail" is
//     decidable exactly, not guessed up front.
package obs

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// TraceID is a 128-bit W3C trace-context trace ID.
type TraceID [16]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String returns the 32-hex-digit form. It allocates; serving and logging
// paths only.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// ParseTraceID parses the 32-hex-digit lowercase form ("" and the all-zero
// ID are rejected, matching the W3C rule).
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 || !isHexLower(s) {
		return TraceID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	if id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}

// SpanID is a 64-bit W3C trace-context span (parent) ID.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String returns the 16-hex-digit form. It allocates.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// NewTraceID returns a random non-zero trace ID.
func NewTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		a, b := rand.Uint64(), rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
			id[8+i] = byte(b >> (8 * i))
		}
	}
	return id
}

func newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		a := rand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
		}
	}
	return id
}

// TraceparentHeader is the canonical W3C trace-context header name.
const TraceparentHeader = "traceparent"

// FlagSampled is the W3C trace-flags bit meaning "the caller sampled this
// trace". The trace store honors it as a force-keep: a trace that arrives
// with an explicit sampled flag is never dropped by tail sampling.
const FlagSampled byte = 0x01

// ParseTraceparent parses a W3C traceparent header of the form
// "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>". It returns
// ok=false for malformed values, unknown lengths, or the all-zero IDs the
// spec forbids.
func ParseTraceparent(s string) (tid TraceID, parent SpanID, flags byte, ok bool) {
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tid, parent, 0, false
	}
	// Version: two lowercase hex digits, 0xff is invalid per spec. We accept
	// any other version and parse the version-00 prefix fields.
	if !isHexLower(s[0:2]) || s[0:2] == "ff" {
		return tid, parent, 0, false
	}
	if !isHexLower(s[3:35]) || !isHexLower(s[36:52]) || !isHexLower(s[53:55]) {
		return tid, parent, 0, false
	}
	if _, err := hex.Decode(tid[:], []byte(s[3:35])); err != nil {
		return tid, parent, 0, false
	}
	if _, err := hex.Decode(parent[:], []byte(s[36:52])); err != nil {
		return tid, parent, 0, false
	}
	var fb [1]byte
	if _, err := hex.Decode(fb[:], []byte(s[53:55])); err != nil {
		return tid, parent, 0, false
	}
	if tid.IsZero() || parent.IsZero() {
		return tid, parent, 0, false
	}
	return tid, parent, fb[0], true
}

func isHexLower(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// FormatTraceparent renders a version-00 traceparent header value.
func FormatTraceparent(tid TraceID, span SpanID, flags byte) string {
	var buf [55]byte
	buf[0], buf[1], buf[2] = '0', '0', '-'
	hex.Encode(buf[3:35], tid[:])
	buf[35] = '-'
	hex.Encode(buf[36:52], span[:])
	buf[52] = '-'
	hex.Encode(buf[53:55], []byte{flags})
	return string(buf[:])
}

// MaxSpanAttrs is the fixed number of attribute slots per span. Attributes
// beyond it are dropped silently; span producers in this repo stay well under
// the cap.
const MaxSpanAttrs = 8

// Attr is one span attribute: either a string or an int64 value.
type Attr struct {
	Key   string
	Str   string
	Int   int64
	IsInt bool
}

// SpanRec is the fixed-size in-slot record of one span. Records live in a
// per-trace array sized at store construction; they are claimed by atomic
// index and each record is written by exactly one goroutine until the trace
// seals.
type SpanRec struct {
	ID      SpanID
	Parent  SpanID
	Name    string
	StartNS int64 // unix nanoseconds
	DurNS   int64
	Err     string
	NAttrs  int32
	Attrs   [MaxSpanAttrs]Attr
}

// Packed trace lifecycle state: [generation:32 | finished:1 | open:31].
//
//   - generation guards against stale handles: every recycle of the slot
//     bumps it, so a TraceRef/Span held across a recycle can no longer
//     acquire the slot.
//   - open counts in-flight spans. Starting a span increments it (CAS, so
//     the generation and finished checks are atomic with the claim); ending
//     a span decrements it.
//   - finished is set exactly once when the root span finishes. The trace
//     seals (tail-sampling decision runs) at the unique transition to
//     (finished && open == 0) — either at Finish itself or at the last
//     straggler span's End.
const (
	traceFinBit   = uint64(1) << 31
	traceOpenMask = traceFinBit - 1
)

// Trace is one in-flight or kept trace. Traces live in fixed slots owned by
// a TraceStore and are recycled; user code never constructs one directly and
// only touches it through Span / TraceRef value handles.
type Trace struct {
	store *TraceStore

	state   atomic.Uint64
	nspans  atomic.Int32
	errored atomic.Bool // any span recorded an error; forces tail-sample keep

	id      TraceID
	flags   byte // inbound W3C trace flags (FlagSampled forces keep)
	startNS int64
	durNS   int64  // written by Finish, read after seal
	reason  string // keep reason, written under store.mu at seal
	spans   []SpanRec
}

// dropped returns how many span starts overflowed the per-trace span cap.
func (t *Trace) droppedSpans() int {
	n := int(t.nspans.Load()) - len(t.spans)
	if n < 0 {
		return 0
	}
	return n
}

// acquire registers a new in-flight span if gen matches and the trace is not
// finished. Returns false (caller must no-op) otherwise.
func (t *Trace) acquire(gen uint32) bool {
	for {
		s := t.state.Load()
		if uint32(s>>32) != gen || s&traceFinBit != 0 {
			return false
		}
		if t.state.CompareAndSwap(s, s+1) {
			return true
		}
	}
}

// release ends one in-flight span; if the trace is finished and this was the
// last open span, the releasing goroutine seals the trace.
func (t *Trace) release() {
	s := t.state.Add(^uint64(0)) // open--
	if s&traceFinBit != 0 && s&traceOpenMask == 0 {
		t.store.seal(t)
	}
}

// TraceRef is a value handle naming a position in a trace's span tree:
// "trace t at generation gen, under parent span parent". It is what flows
// through contexts and across layer boundaries. The zero TraceRef is a valid
// no-op: every operation on it does nothing, so un-traced requests pay no
// branches beyond a nil check.
type TraceRef struct {
	t      *Trace
	gen    uint32
	parent SpanID
}

// Valid reports whether the ref points at a trace slot. A valid ref can
// still be stale (its generation passed); stale refs degrade to no-ops.
func (r TraceRef) Valid() bool { return r.t != nil }

// TraceID returns the trace's ID. Only meaningful while the caller holds an
// open span in the trace (i.e. between Start and End of the span the ref was
// derived from); the zero ref returns the zero ID.
func (r TraceRef) TraceID() TraceID {
	if r.t == nil {
		return TraceID{}
	}
	return r.t.id
}

// SpanID returns the parent span ID this ref points under.
func (r TraceRef) SpanID() SpanID { return r.parent }

// Start begins a child span under the ref's parent. On a zero or stale ref
// it returns a no-op Span.
func (r TraceRef) Start(name string) Span {
	if r.t == nil {
		return Span{}
	}
	return r.startAt(name, r.t.store.nowNS())
}

// StartAt is Start with an explicit start time; used to inject
// retrospectively-known intervals (e.g. flight-recorder round summaries)
// into the tree. Pair with EndAt.
func (r TraceRef) StartAt(name string, at time.Time) Span {
	if r.t == nil {
		return Span{}
	}
	return r.startAt(name, at.UnixNano())
}

func (r TraceRef) startAt(name string, nowNS int64) Span {
	t := r.t
	if !t.acquire(r.gen) {
		return Span{}
	}
	idx := t.nspans.Add(1) - 1
	if int(idx) >= len(t.spans) {
		// Span cap overflow: the span is dropped but the open-count hold is
		// real, so End still releases and sealing stays correct.
		return Span{t: t, gen: r.gen, idx: -1}
	}
	id := newSpanID()
	t.spans[idx] = SpanRec{ID: id, Parent: r.parent, Name: name, StartNS: nowNS}
	return Span{t: t, gen: r.gen, idx: idx, id: id}
}

// Span is a value handle on one in-flight span. The zero Span is a no-op.
// A span must be ended exactly once, by any goroutine. SetAttr/SetInt/
// SetError must be called by one goroutine at a time and strictly before
// the trace seals — normally that means before End, by the owning
// goroutine; the one sanctioned exception is a caller that received the
// ended span over a channel (so the sends are ordered) annotating it before
// the root span finishes, e.g. the hedge race marking its winner.
type Span struct {
	t   *Trace
	gen uint32
	idx int32
	id  SpanID
}

// Valid reports whether the span records anything (false for no-op spans
// from zero refs, stale refs, or span-cap overflow).
func (s Span) Valid() bool { return s.t != nil && s.idx >= 0 }

// ID returns the span's ID (zero for no-op spans).
func (s Span) ID() SpanID { return s.id }

// TraceID returns the owning trace's ID; only meaningful while the span is
// open.
func (s Span) TraceID() TraceID {
	if s.t == nil {
		return TraceID{}
	}
	return s.t.id
}

// Ref returns a TraceRef for starting children under this span.
func (s Span) Ref() TraceRef {
	if s.t == nil {
		return TraceRef{}
	}
	return TraceRef{t: s.t, gen: s.gen, parent: s.id}
}

// SetAttr attaches a string attribute. Owner goroutine only, before End.
func (s Span) SetAttr(key, val string) {
	if !s.Valid() {
		return
	}
	rec := &s.t.spans[s.idx]
	if int(rec.NAttrs) >= MaxSpanAttrs {
		return
	}
	rec.Attrs[rec.NAttrs] = Attr{Key: key, Str: val}
	rec.NAttrs++
}

// SetInt attaches an integer attribute. Owner goroutine only, before End.
func (s Span) SetInt(key string, val int64) {
	if !s.Valid() {
		return
	}
	rec := &s.t.spans[s.idx]
	if int(rec.NAttrs) >= MaxSpanAttrs {
		return
	}
	rec.Attrs[rec.NAttrs] = Attr{Key: key, Int: val, IsInt: true}
	rec.NAttrs++
}

// SetError records an error on the span and marks the whole trace errored,
// which forces the tail sampler to keep it.
func (s Span) SetError(err error) {
	if err == nil {
		return
	}
	s.SetErrorString(err.Error())
}

// SetErrorString is SetError for a pre-rendered message.
func (s Span) SetErrorString(msg string) {
	if !s.Valid() {
		return
	}
	s.t.spans[s.idx].Err = msg
	s.t.errored.Store(true)
}

// End finishes the span at the store clock's now.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.endNS(s.t.store.nowNS())
	s.t.release()
}

// EndAt is End with an explicit end time; pair with StartAt.
func (s Span) EndAt(at time.Time) {
	if s.t == nil {
		return
	}
	s.endNS(at.UnixNano())
	s.t.release()
}

func (s Span) endNS(nowNS int64) {
	if s.idx < 0 {
		return
	}
	rec := &s.t.spans[s.idx]
	rec.DurNS = nowNS - rec.StartNS
}

// Finish ends the root span and marks the trace finished. The trace seals —
// and becomes visible in the store, if kept — as soon as the last open span
// ends (immediately, if the root is the last). Only the Span returned by
// TraceStore.StartTrace should be Finished.
func (s Span) Finish() {
	t := s.t
	if t == nil {
		return
	}
	nowNS := t.store.nowNS()
	s.endNS(nowNS)
	t.durNS = nowNS - t.startNS
	for {
		st := t.state.Load()
		if uint32(st>>32) != s.gen || st&traceFinBit != 0 {
			return
		}
		// Set finished and release the root's own open hold in one step.
		ns := (st | traceFinBit) - 1
		if t.state.CompareAndSwap(st, ns) {
			if ns&traceOpenMask == 0 {
				t.store.seal(t)
			}
			return
		}
	}
}

type traceCtxKey struct{}

// ContextWithTrace returns a context carrying the trace ref. Layers below
// recover it with TraceRefFromContext; an absent or zero ref makes all span
// operations no-ops.
func ContextWithTrace(ctx context.Context, ref TraceRef) context.Context {
	if !ref.Valid() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, ref)
}

// TraceRefFromContext returns the trace ref carried by ctx, or the zero
// (no-op) ref.
func TraceRefFromContext(ctx context.Context) TraceRef {
	if ctx == nil {
		return TraceRef{}
	}
	ref, _ := ctx.Value(traceCtxKey{}).(TraceRef)
	return ref
}
