// log.go: structured logging glue. The serving layer logs through log/slog;
// the helpers here build handlers from the -log-format / -log-level flag
// values and standardize how a trace ID rides on every line, so a log line
// and the /traces/{id} artifact for the same request are joinable on
// trace_id.
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// TraceIDKey is the slog attribute key every request-scoped log line
// carries.
const TraceIDKey = "trace_id"

// ParseLogLevel maps a -log-level flag value (debug, info, warn, error;
// case-insensitive) to a slog level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
}

// NewLogger builds a slog.Logger writing to w in the given format ("text"
// or "json") at the given level.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
}

// TraceAttr renders a trace ID as a slog attribute; the zero ID renders as
// the empty string so un-traced lines stay greppable by the same key.
func TraceAttr(id TraceID) slog.Attr {
	if id.IsZero() {
		return slog.String(TraceIDKey, "")
	}
	return slog.String(TraceIDKey, id.String())
}
