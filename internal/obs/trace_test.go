package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid := NewTraceID()
	sid := newSpanID()
	hdr := FormatTraceparent(tid, sid, FlagSampled)
	if len(hdr) != 55 {
		t.Fatalf("traceparent length = %d, want 55 (%q)", len(hdr), hdr)
	}
	gotTID, gotSID, flags, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected its own Format output", hdr)
	}
	if gotTID != tid || gotSID != sid || flags != FlagSampled {
		t.Fatalf("round trip: got (%v, %v, %#x), want (%v, %v, %#x)",
			gotTID, gotSID, flags, tid, sid, FlagSampled)
	}
}

func TestTraceparentRejectsInvalid(t *testing.T) {
	valid := FormatTraceparent(NewTraceID(), newSpanID(), 0)
	bad := []string{
		"",
		valid[:54],                  // too short
		valid + "0",                 // too long
		strings.ToUpper(valid),      // uppercase hex
		"ff" + valid[2:],            // version ff is reserved
		"zz" + valid[2:],            // non-hex version
		valid[:3] + "_" + valid[4:], // corrupted dash position
		"00-00000000000000000000000000000000-" + valid[36:], // zero trace ID
		valid[:36] + "0000000000000000-00",                  // zero span ID
	}
	for _, s := range bad {
		if _, _, _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) = ok, want rejection", s)
		}
	}
}

func TestParseTraceID(t *testing.T) {
	tid := NewTraceID()
	got, ok := ParseTraceID(tid.String())
	if !ok || got != tid {
		t.Fatalf("ParseTraceID(%q) = (%v, %v), want (%v, true)", tid.String(), got, ok, tid)
	}
	for _, s := range []string{"", "abc", strings.ToUpper(tid.String()), strings.Repeat("0", 32), tid.String() + "00"} {
		if _, ok := ParseTraceID(s); ok {
			t.Errorf("ParseTraceID(%q) = ok, want rejection", s)
		}
	}
}

// fakeClock is a hand-advanced clock for deterministic durations.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// run completes one trace of the given duration on st and reports whether
// it was kept.
func runTrace(st *TraceStore, clk *fakeClock, d time.Duration, flags byte, fail bool) TraceID {
	root := st.StartTrace("test", TraceID{}, SpanID{}, flags)
	id := root.TraceID()
	if fail {
		root.SetErrorString("boom")
	}
	clk.Advance(d)
	root.Finish()
	return id
}

func TestTraceTailSamplingKeepRules(t *testing.T) {
	clk := newFakeClock()
	st := NewTraceStore(TraceStoreConfig{
		Capacity: 8, MaxActive: 4, SampleRate: 0,
		SlowWarmup: 1 << 30, // slow rule disabled for this test
		Now:        clk.Now,
	})

	plain := runTrace(st, clk, time.Millisecond, 0, false)
	if _, ok := st.Get(plain); ok {
		t.Fatalf("plain fast trace was kept; want tail-sampled out")
	}
	forced := runTrace(st, clk, time.Millisecond, FlagSampled, false)
	if d, ok := st.Get(forced); !ok || d.KeepReason != "forced" {
		t.Fatalf("forced trace: kept=%v reason=%q, want kept/forced", ok, d.KeepReason)
	}
	errored := runTrace(st, clk, time.Millisecond, 0, true)
	if d, ok := st.Get(errored); !ok || d.KeepReason != "error" || !d.Error {
		t.Fatalf("errored trace: kept=%v reason=%q error=%v, want kept/error/true", ok, d.KeepReason, d.Error)
	}

	stats := st.Stats()
	if stats.Finished != 3 || stats.Kept != 2 || stats.KeptForced != 1 || stats.KeptError != 1 {
		t.Fatalf("stats = %+v, want finished=3 kept=2 forced=1 error=1", stats)
	}
}

func TestTraceSampleRateCoin(t *testing.T) {
	clk := newFakeClock()
	coin := 0.99 // above rate: drop
	st := NewTraceStore(TraceStoreConfig{
		Capacity: 8, SampleRate: 0.5, SlowWarmup: 1 << 30,
		Now:       clk.Now,
		RandFloat: func() float64 { return coin },
	})
	if id := runTrace(st, clk, time.Millisecond, 0, false); st.KeptCount() != 0 {
		t.Fatalf("coin above rate kept trace %v", id)
	}
	coin = 0.01 // below rate: keep
	id := runTrace(st, clk, time.Millisecond, 0, false)
	if d, ok := st.Get(id); !ok || d.KeepReason != "sampled" {
		t.Fatalf("coin below rate: kept=%v reason=%q, want kept/sampled", ok, d.KeepReason)
	}
}

func TestTraceSlowTailAlwaysKept(t *testing.T) {
	clk := newFakeClock()
	st := NewTraceStore(TraceStoreConfig{
		Capacity: 8, SampleRate: 0, SlowQuantile: 0.9, SlowWarmup: 8,
		Now: clk.Now,
	})
	for i := 0; i < 20; i++ {
		runTrace(st, clk, time.Millisecond, 0, false)
	}
	slow := runTrace(st, clk, 100*time.Millisecond, 0, false)
	d, ok := st.Get(slow)
	if !ok || d.KeepReason != "slow" {
		t.Fatalf("100ms trace after 20x 1ms: kept=%v reason=%q, want kept/slow", ok, d.KeepReason)
	}
	if st.Stats().KeptSlow != 1 {
		t.Fatalf("KeptSlow = %d, want 1", st.Stats().KeptSlow)
	}
}

func TestTraceUniformLatencyKeepsNothingSlow(t *testing.T) {
	clk := newFakeClock()
	st := NewTraceStore(TraceStoreConfig{
		Capacity: 8, SampleRate: 0, SlowQuantile: 0.9, SlowWarmup: 8,
		Now: clk.Now,
	})
	// Identical durations: every trace lands in the quantile's own bucket,
	// and "slow" requires a strictly greater bucket.
	for i := 0; i < 50; i++ {
		runTrace(st, clk, time.Millisecond, 0, false)
	}
	if n := st.KeptCount(); n != 0 {
		t.Fatalf("uniform latency kept %d traces; want 0", n)
	}
}

func TestTraceRingOverwriteNeverLosesLiveTrace(t *testing.T) {
	clk := newFakeClock()
	st := NewTraceStore(TraceStoreConfig{
		Capacity: 2, MaxActive: 2, SampleRate: 0, SlowWarmup: 1 << 30,
		Now: clk.Now,
	})

	// A live (unfinished) trace sits outside the ring, so ring churn can
	// never reclaim its slot.
	live := st.StartTrace("live", TraceID{}, SpanID{}, 0)
	liveID := live.TraceID()
	child := live.Ref().Start("work")

	// Churn the ring well past capacity: every kept trace evicts an older
	// one once the ring is full.
	for i := 0; i < 10; i++ {
		runTrace(st, clk, time.Millisecond, FlagSampled, false)
	}

	clk.Advance(5 * time.Millisecond)
	child.SetErrorString("late failure")
	child.End()
	live.Finish()

	d, ok := st.Get(liveID)
	if !ok {
		t.Fatalf("live trace %v lost during ring churn", liveID)
	}
	if d.KeepReason != "error" || len(d.Spans) != 2 {
		t.Fatalf("live trace: reason=%q spans=%d, want error/2", d.KeepReason, len(d.Spans))
	}
}

func TestTraceSlotExhaustionDegradesToNoop(t *testing.T) {
	st := NewTraceStore(TraceStoreConfig{Capacity: 1, MaxActive: 1, SlowWarmup: 1 << 30})
	a := st.StartTrace("a", TraceID{}, SpanID{}, 0)
	b := st.StartTrace("b", TraceID{}, SpanID{}, 0)
	c := st.StartTrace("c", TraceID{}, SpanID{}, 0)
	if !a.Valid() || !b.Valid() {
		t.Fatalf("first two traces should get slots")
	}
	if c.Valid() {
		t.Fatalf("third trace got a slot from a 2-slot pool")
	}
	// The no-op handle must absorb the full span API.
	c.SetAttr("k", "v")
	sp := c.Ref().Start("child")
	sp.End()
	c.Finish()
	if got := st.Stats().DroppedNoSlot; got != 1 {
		t.Fatalf("DroppedNoSlot = %d, want 1", got)
	}
	a.Finish()
	b.Finish()
	if d := st.StartTrace("d", TraceID{}, SpanID{}, 0); !d.Valid() {
		t.Fatalf("slots not recycled after traces finished")
	}
}

func TestTraceSpanOverflowCounted(t *testing.T) {
	st := NewTraceStore(TraceStoreConfig{Capacity: 4, SpanCap: 4, SlowWarmup: 1 << 30})
	root := st.StartTrace("root", TraceID{}, SpanID{}, FlagSampled)
	for i := 0; i < 10; i++ {
		sp := root.Ref().Start("child")
		sp.SetAttr("k", "v") // must not crash on overflowed spans
		sp.End()
	}
	id := root.TraceID()
	root.Finish()
	d, ok := st.Get(id)
	if !ok {
		t.Fatalf("forced trace not kept")
	}
	if len(d.Spans) != 4 {
		t.Fatalf("stored spans = %d, want SpanCap = 4", len(d.Spans))
	}
	if d.DroppedSpans != 7 { // 1 root + 10 children = 11 started, 4 stored
		t.Fatalf("DroppedSpans = %d, want 7", d.DroppedSpans)
	}
}

func TestTraceStaleHandlesAfterRecycle(t *testing.T) {
	st := NewTraceStore(TraceStoreConfig{Capacity: 2, MaxActive: 1, SlowWarmup: 1 << 30})
	root := st.StartTrace("root", TraceID{}, SpanID{}, 0)
	ref := root.Ref()
	root.Finish() // dropped and recycled: generation bumps

	// The recycled slot is immediately reused by a new trace; stale handles
	// from the old incarnation must not touch it.
	next := st.StartTrace("next", TraceID{}, SpanID{}, FlagSampled)
	if sp := ref.Start("stale"); sp.Valid() {
		t.Fatalf("stale ref opened a span on a recycled slot")
	}
	nextID := next.TraceID()
	next.Finish()
	d, ok := st.Get(nextID)
	if !ok || len(d.Spans) != 1 || d.Spans[0].Name != "next" {
		t.Fatalf("new incarnation corrupted by stale handle: kept=%v spans=%+v", ok, d.Spans)
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	st := NewTraceStore(TraceStoreConfig{Capacity: 4, SpanCap: 1024, SlowWarmup: 1 << 30})
	root := st.StartTrace("root", TraceID{}, SpanID{}, FlagSampled)
	const workers = 8
	const perWorker = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := root.Ref().Start("leg")
				sp.SetAttr("k", "v")
				sp.SetInt("i", int64(i))
				sp.End()
			}
		}()
	}
	wg.Wait()
	id := root.TraceID()
	root.Finish()
	d, ok := st.Get(id)
	if !ok {
		t.Fatalf("trace not kept")
	}
	if want := 1 + workers*perWorker; len(d.Spans)+d.DroppedSpans != want {
		t.Fatalf("spans stored %d + dropped %d != started %d", len(d.Spans), d.DroppedSpans, want)
	}
}

func TestTraceUnsampledPathZeroAllocs(t *testing.T) {
	st := NewTraceStore(TraceStoreConfig{
		Capacity: 16, SampleRate: 0, SlowWarmup: 1 << 30,
	})
	allocs := testing.AllocsPerRun(200, func() {
		root := st.StartTrace("POST /solve", TraceID{}, SpanID{}, 0)
		sp := root.Ref().Start("resilient.solve")
		sp.SetAttr("alg", "llp-boruvka")
		sp.SetInt("attempts", 1)
		sp.End()
		root.SetInt("status", 200)
		root.Finish()
	})
	if allocs != 0 {
		t.Fatalf("unsampled trace path allocates %.1f per op, want 0", allocs)
	}
}

func TestTraceSummariesNewestFirst(t *testing.T) {
	clk := newFakeClock()
	st := NewTraceStore(TraceStoreConfig{Capacity: 8, SlowWarmup: 1 << 30, Now: clk.Now})
	var ids []TraceID
	for i := 0; i < 3; i++ {
		ids = append(ids, runTrace(st, clk, time.Millisecond, FlagSampled, false))
	}
	sums := st.Summaries()
	if len(sums) != 3 {
		t.Fatalf("got %d summaries, want 3", len(sums))
	}
	for i, s := range sums {
		if want := ids[len(ids)-1-i].String(); s.TraceID != want {
			t.Fatalf("summary[%d] = %s, want %s (newest first)", i, s.TraceID, want)
		}
	}
}

func TestTraceChromeExport(t *testing.T) {
	clk := newFakeClock()
	st := NewTraceStore(TraceStoreConfig{Capacity: 4, SlowWarmup: 1 << 30, Now: clk.Now})
	root := st.StartTrace("POST /solve", TraceID{}, SpanID{}, FlagSampled)
	sp := root.Ref().Start("resilient.solve")
	clk.Advance(2 * time.Millisecond)
	sp.End()
	id := root.TraceID()
	root.Finish()

	d, ok := st.Get(id)
	if !ok {
		t.Fatalf("trace not kept")
	}
	var buf bytes.Buffer
	if err := d.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var complete int
	for _, e := range doc.TraceEvents {
		if e["ph"] == "X" {
			complete++
		}
	}
	if complete != 2 {
		t.Fatalf("chrome trace has %d complete events, want 2:\n%s", complete, buf.String())
	}
}
