package gen

import (
	"testing"

	"llpmst/internal/graph"
)

func TestRMATShape(t *testing.T) {
	g := RMAT(2, 10, 16, WeightUniform, 42)
	if g.NumVertices() != 1024 {
		t.Fatalf("n = %d, want 1024", g.NumVertices())
	}
	// Self-loops are dropped, so m <= ef*n, but RMAT rarely loses more than
	// a few percent to loops.
	if g.NumEdges() < 14000 || g.NumEdges() > 16384 {
		t.Fatalf("m = %d, want ~16384", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Kronecker graphs are skewed: max degree far above average.
	s := g.ComputeStats()
	if float64(s.MaxDegree) < 4*s.AvgDegree {
		t.Fatalf("max degree %d not skewed vs avg %.1f; not scale-free-ish", s.MaxDegree, s.AvgDegree)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(1, 8, 8, WeightUniform, 7)
	b := RMAT(4, 8, 8, WeightUniform, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("RMAT not deterministic across worker counts")
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
	c := RMAT(1, 8, 8, WeightUniform, 8)
	same := c.NumEdges() == a.NumEdges()
	if same {
		ec := c.Edges()
		for i := range ea {
			if ea[i] != ec[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRoadNetworkConnectedAndSparse(t *testing.T) {
	g := RoadNetwork(2, 64, 64, 0.2, 1)
	if g.NumVertices() != 4096 {
		t.Fatalf("n = %d, want 4096", g.NumVertices())
	}
	if !g.Connected() {
		t.Fatal("road network must be connected (spanning tree included)")
	}
	s := g.ComputeStats()
	if s.AvgDegree < 2.0 || s.AvgDegree > 3.2 {
		t.Fatalf("avg degree %.2f outside road-like range [2.0, 3.2]", s.AvgDegree)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRoadNetworkZeroExtraIsTree(t *testing.T) {
	g := RoadNetwork(1, 16, 16, 0, 3)
	if g.NumEdges() != g.NumVertices()-1 {
		t.Fatalf("m = %d, want n-1 = %d", g.NumEdges(), g.NumVertices()-1)
	}
	if !g.Connected() {
		t.Fatal("tree must be connected")
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(2, 1000, 8000, WeightInteger, 5)
	if g.NumVertices() != 1000 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() < 7900 || g.NumEdges() > 8000 {
		t.Fatalf("m = %d, want ~8000", g.NumEdges())
	}
	// Integer weights land in [1, 10000].
	for _, e := range g.Edges()[:100] {
		if e.W < 1 || e.W > 10000 || e.W != float32(int(e.W)) {
			t.Fatalf("non-integer weight %v", e.W)
		}
	}
}

func TestGeometricConnectedAtConnectivityRadius(t *testing.T) {
	n := 2000
	g := Geometric(2, n, 2*ConnectivityRadius(n), 9)
	if g.NumVertices() != n {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if !g.Connected() {
		t.Fatal("geometric graph at 2x connectivity radius should be connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := g.ComputeStats()
	if s.AvgDegree < 4 {
		t.Fatalf("avg degree %.1f suspiciously low for r=2*rc", s.AvgDegree)
	}
}

func TestConnectivityRadiusEdgeCases(t *testing.T) {
	if ConnectivityRadius(0) != 1 || ConnectivityRadius(1) != 1 {
		t.Fatal("degenerate n should return radius 1")
	}
	if r := ConnectivityRadius(1000000); r <= 0 || r >= 0.1 {
		t.Fatalf("radius %v implausible for n=1e6", r)
	}
}

func TestPath(t *testing.T) {
	g := Path(5, nil)
	if g.NumEdges() != 4 || !g.Connected() {
		t.Fatal("bad path")
	}
	g2 := Path(3, []float32{7, 9})
	if g2.Edge(0).W != 7 || g2.Edge(1).W != 9 {
		t.Fatal("custom weights ignored")
	}
}

func TestCycleStarCompleteTree(t *testing.T) {
	c := Cycle(10, 1)
	if c.NumEdges() != 10 || !c.Connected() {
		t.Fatal("bad cycle")
	}
	s := Star(10)
	if s.NumEdges() != 9 || s.Degree(0) != 9 {
		t.Fatal("bad star")
	}
	k := Complete(8, 2)
	if k.NumEdges() != 28 {
		t.Fatalf("K8 has %d edges, want 28", k.NumEdges())
	}
	bt := BinaryTree(31, 3)
	if bt.NumEdges() != 30 || !bt.Connected() {
		t.Fatal("bad binary tree")
	}
}

func TestPaperFigure1(t *testing.T) {
	g := PaperFigure1()
	if g.NumVertices() != 5 || g.NumEdges() != 7 {
		t.Fatal("wrong paper graph")
	}
	if g.TotalWeight() != 41 {
		t.Fatalf("total weight %v, want 41", g.TotalWeight())
	}
}

func TestDisconnected(t *testing.T) {
	g := Disconnected(4, 10, 1)
	if _, c := g.Components(); c != 4 {
		t.Fatalf("components = %d, want 4", c)
	}
	if g.Connected() {
		t.Fatal("should be disconnected")
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(10, 3, 1)
	if g.NumVertices() != 40 || !g.Connected() {
		t.Fatalf("caterpillar n=%d connected=%v", g.NumVertices(), g.Connected())
	}
	// 30 leaves with degree 1.
	ones := 0
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		if g.Degree(v) == 1 {
			ones++
		}
	}
	if ones != 30 {
		t.Fatalf("%d degree-1 vertices, want 30", ones)
	}
}

func BenchmarkRMATScale14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := RMAT(0, 14, 16, WeightUniform, 42)
		_ = g
	}
}

func BenchmarkRoadNetwork256(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = RoadNetwork(0, 256, 256, 0.2, 42)
	}
}

var _ = graph.Edge{} // keep the import explicit for documentation
