package gen

import (
	"math/rand"

	"llpmst/internal/graph"
)

// Special graph families with known minimum spanning trees, used as test
// oracles and edge-case workloads.

// Path returns the path graph 0-1-2-...-n-1 with the given weights (length
// n-1); if weights is nil, weight i+1 is used for edge (i, i+1). Its MST is
// the whole graph.
func Path(n int, weights []float32) *graph.CSR {
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		w := float32(i + 1)
		if weights != nil {
			w = weights[i]
		}
		edges = append(edges, graph.Edge{U: uint32(i), V: uint32(i + 1), W: w})
	}
	return graph.MustFromEdges(1, n, edges)
}

// Cycle returns the n-cycle with distinct weights 1..n; its MST is the cycle
// minus the heaviest edge, with weight n(n-1)/2... minus nothing: total
// weight 1+2+...+(n-1).
func Cycle(n int, seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{
			U: uint32(i), V: uint32((i + 1) % n), W: float32(perm[i] + 1),
		}
	}
	return graph.MustFromEdges(1, n, edges)
}

// Star returns the star with center 0 and spokes weighted 1..n-1. Its MST is
// the whole graph.
func Star(n int) *graph.CSR {
	edges := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: 0, V: uint32(i), W: float32(i)})
	}
	return graph.MustFromEdges(1, n, edges)
}

// Complete returns the complete graph K_n with distinct pseudo-random
// weights. Intended for small n only (m = n(n-1)/2).
func Complete(n int, seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	m := n * (n - 1) / 2
	perm := rng.Perm(m)
	edges := make([]graph.Edge, 0, m)
	k := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: uint32(i), V: uint32(j), W: float32(perm[k] + 1)})
			k++
		}
	}
	return graph.MustFromEdges(1, n, edges)
}

// PaperFigure1 returns the 5-vertex example graph from Fig. 1 of the paper
// (vertices a..e = 0..4). Its unique MST is {2, 3, 4, 7} with total weight
// 16.
func PaperFigure1() *graph.CSR {
	return graph.MustFromEdges(1, 5, []graph.Edge{
		{U: 0, V: 2, W: 4}, {U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 3},
		{U: 1, V: 3, W: 7}, {U: 2, V: 3, W: 9}, {U: 2, V: 4, W: 11},
		{U: 3, V: 4, W: 2},
	})
}

// Disconnected returns a graph of k identical random components, each a
// cycle of size sz with a chord; used to exercise minimum spanning *forest*
// code paths.
func Disconnected(k, sz int, seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	n := k * sz
	for c := 0; c < k; c++ {
		base := uint32(c * sz)
		for i := 0; i < sz; i++ {
			edges = append(edges, graph.Edge{
				U: base + uint32(i), V: base + uint32((i+1)%sz),
				W: float32(1 + rng.Intn(1000)),
			})
		}
		if sz > 3 {
			edges = append(edges, graph.Edge{
				U: base, V: base + uint32(sz/2), W: float32(1 + rng.Intn(1000)),
			})
		}
	}
	return graph.MustFromEdges(1, n, edges)
}

// Caterpillar returns a path of length spine with leg leaves hanging off
// each spine vertex; a shape with many degree-1 vertices that stresses the
// MWE early-fixing path of LLP-Prim (every leaf's unique edge is an MWE).
func Caterpillar(spine, legs int, seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	n := spine * (1 + legs)
	var edges []graph.Edge
	for i := 0; i+1 < spine; i++ {
		edges = append(edges, graph.Edge{U: uint32(i), V: uint32(i + 1), W: float32(1000 + rng.Intn(1000))})
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			edges = append(edges, graph.Edge{U: uint32(i), V: uint32(next), W: float32(1 + rng.Intn(999))})
			next++
		}
	}
	return graph.MustFromEdges(1, n, edges)
}

// BinaryTree returns a complete binary tree on n vertices (vertex i's parent
// is (i-1)/2) with pseudo-random distinct weights. Its MST is itself.
func BinaryTree(n int, seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	edges := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{
			U: uint32((i - 1) / 2), V: uint32(i), W: float32(perm[i-1] + 1),
		})
	}
	return graph.MustFromEdges(1, n, edges)
}
