package gen

import "testing"

func TestSmallWorld(t *testing.T) {
	g := SmallWorld(1, 2000, 6, 0.1, 5)
	if g.NumVertices() != 2000 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Ring lattice base: ~n*k/2 edges (self-loops from rewiring may drop a
	// few).
	if g.NumEdges() < 5900 || g.NumEdges() > 6000 {
		t.Fatalf("m = %d, want ~6000", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// beta=0: pure ring lattice, exactly k-regular, connected.
	ring := SmallWorld(1, 500, 4, 0, 1)
	if !ring.Connected() {
		t.Fatal("ring lattice disconnected")
	}
	for v := uint32(0); v < 500; v++ {
		if ring.Degree(v) != 4 {
			t.Fatalf("ring degree %d at %d, want 4", ring.Degree(v), v)
		}
	}
	// Odd k is rounded up.
	odd := SmallWorld(1, 100, 3, 0, 2)
	if odd.Degree(0) != 4 {
		t.Fatalf("odd k handled wrong: degree %d", odd.Degree(0))
	}
}

func TestSmallWorldDeterministic(t *testing.T) {
	a := SmallWorld(1, 300, 6, 0.3, 9)
	b := SmallWorld(2, 300, 6, 0.3, 9)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("not deterministic")
	}
	for i := range a.Edges() {
		if a.Edge(uint32(i)) != b.Edge(uint32(i)) {
			t.Fatal("edges differ across worker counts")
		}
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g := PreferentialAttachment(1, 3000, 3, 7)
	if g.NumVertices() != 3000 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if !g.Connected() {
		t.Fatal("BA graph must be connected by construction")
	}
	s := g.ComputeStats()
	// Power-law-ish: hub degree far above average.
	if float64(s.MaxDegree) < 5*s.AvgDegree {
		t.Fatalf("max degree %d vs avg %.1f: no hubs", s.MaxDegree, s.AvgDegree)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPreferentialAttachmentSmall(t *testing.T) {
	// n smaller than the seed clique.
	g := PreferentialAttachment(1, 3, 5, 1)
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("tiny BA: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	// m < 1 clamps to 1.
	g2 := PreferentialAttachment(1, 50, 0, 2)
	if !g2.Connected() {
		t.Fatal("m=0 clamp broken")
	}
}
