package gen

import (
	"math/rand"

	"llpmst/internal/graph"
)

// Additional random-graph models rounding out the morphology zoo: the
// Watts-Strogatz small-world model (high clustering, low diameter — the
// "social network" morphology the paper's introduction motivates) and the
// Barabási-Albert preferential-attachment model (power-law degrees by
// growth, a structured alternative to R-MAT's skew).

// SmallWorld generates a Watts-Strogatz graph: a ring where every vertex
// connects to its k nearest neighbors (k even), with each edge's far
// endpoint rewired uniformly at random with probability beta. Weights are
// uniform in [0, 1). Deterministic in seed.
func SmallWorld(p int, n, k int, beta float64, seed int64) *graph.CSR {
	if k%2 != 0 {
		k++
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, n*k/2)
	for v := 0; v < n; v++ {
		for d := 1; d <= k/2; d++ {
			u := uint32(v)
			w := uint32((v + d) % n)
			if rng.Float64() < beta {
				// Rewire: keep u, draw a fresh far endpoint.
				w = uint32(rng.Intn(n))
			}
			edges = append(edges, graph.Edge{U: u, V: w, W: rng.Float32()})
		}
	}
	return graph.MustFromEdges(p, n, edges)
}

// PreferentialAttachment generates a Barabási-Albert graph: vertices arrive
// one at a time and attach m edges to existing vertices with probability
// proportional to current degree (realized by sampling uniformly from the
// edge-endpoint list). Weights are uniform in [0, 1). The result is
// connected by construction. Deterministic in seed.
func PreferentialAttachment(p int, n, m int, seed int64) *graph.CSR {
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, n*m)
	// endpoints holds every edge endpoint seen so far; sampling uniformly
	// from it is degree-proportional sampling.
	endpoints := make([]uint32, 0, 2*n*m)
	// Seed clique on the first m+1 vertices.
	seedSize := m + 1
	if seedSize > n {
		seedSize = n
	}
	for i := 0; i < seedSize; i++ {
		for j := i + 1; j < seedSize; j++ {
			edges = append(edges, graph.Edge{U: uint32(i), V: uint32(j), W: rng.Float32()})
			endpoints = append(endpoints, uint32(i), uint32(j))
		}
	}
	for v := seedSize; v < n; v++ {
		attached := map[uint32]bool{}
		for len(attached) < m {
			var target uint32
			if len(endpoints) == 0 {
				target = uint32(rng.Intn(v))
			} else {
				target = endpoints[rng.Intn(len(endpoints))]
			}
			if attached[target] {
				// Resample; duplicates would become parallel edges that add
				// nothing to attachment count.
				if len(attached) >= v { // degenerate small v: accept fewer
					break
				}
				continue
			}
			attached[target] = true
			edges = append(edges, graph.Edge{U: uint32(v), V: target, W: rng.Float32()})
			endpoints = append(endpoints, uint32(v), target)
		}
	}
	return graph.MustFromEdges(p, n, edges)
}
