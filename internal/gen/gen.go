// Package gen generates the benchmark graph families used in the paper's
// evaluation (§VII, Table I) and in the test suite.
//
// The paper measures on two datasets we cannot ship: the 23.9M-vertex USA
// road network (DIMACS USA-road-d.USA) and the Graph500 scale-25 Kronecker
// graph. This package builds synthetic stand-ins from the same generator
// families — an R-MAT/Kronecker generator with the Graph500 parameters, and
// a road-network generator that reproduces the morphology the paper's
// analysis depends on (low average degree, high diameter, local edges) — at
// configurable scales. DESIGN.md §3 records the substitution argument.
//
// All generators are deterministic functions of their seed.
package gen

import (
	"math"
	"math/rand"

	"llpmst/internal/graph"
)

// WeightKind selects how edge weights are drawn.
type WeightKind int

const (
	// WeightUniform draws float32 weights uniformly from [0, 1).
	WeightUniform WeightKind = iota
	// WeightInteger draws integer-valued float32 weights from [1, 10000],
	// matching DIMACS road files where weights are travel times/distances.
	// Integer weights introduce many ties, exercising the (weight, edge id)
	// total order.
	WeightInteger
)

func (k WeightKind) draw(rng *rand.Rand) float32 {
	switch k {
	case WeightInteger:
		return float32(1 + rng.Intn(10000))
	default:
		return rng.Float32()
	}
}

// RMAT generates a Graph500-style Kronecker graph with 2^scale vertices and
// edgeFactor * 2^scale undirected edges, built with p workers. Quadrant
// probabilities are the Graph500 reference values A=0.57, B=0.19, C=0.19
// (D = 0.05). Self-loops are dropped by the builder; duplicate edges are
// kept, as in the raw Graph500 edge lists.
func RMAT(p int, scale, edgeFactor int, wk WeightKind, seed int64) *graph.CSR {
	n := 1 << scale
	m := edgeFactor * n
	rng := rand.New(rand.NewSource(seed))
	const a, b, c = 0.57, 0.19, 0.19
	edges := make([]graph.Edge, m)
	for i := range edges {
		var u, v int
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// quadrant (0,0): no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		edges[i] = graph.Edge{U: uint32(u), V: uint32(v), W: wk.draw(rng)}
	}
	return graph.MustFromEdges(p, n, edges)
}

// RoadNetwork generates a road-like graph on a width x height grid: a random
// spanning tree of the 4-neighbor grid plus each remaining grid edge with
// probability extra. The result is always connected, has average degree
// about 2 + 2*extra (the USA road network's is ~2.4), and long diameter —
// the morphology §VII.C credits for LLP-Prim's limited parallelism on road
// graphs. Weights are perturbed Manhattan distances (integer-valued), like
// DIMACS travel times.
func RoadNetwork(p int, width, height int, extra float64, seed int64) *graph.CSR {
	n := width * height
	rng := rand.New(rand.NewSource(seed))
	id := func(x, y int) uint32 { return uint32(y*width + x) }
	// All 4-neighbor grid edges.
	type ge struct{ u, v uint32 }
	all := make([]ge, 0, 2*n)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			if x+1 < width {
				all = append(all, ge{id(x, y), id(x+1, y)})
			}
			if y+1 < height {
				all = append(all, ge{id(x, y), id(x, y+1)})
			}
		}
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	// Random spanning tree via union-find; every non-tree edge is kept with
	// probability extra.
	parent := make([]uint32, n)
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(x uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	edges := make([]graph.Edge, 0, int(float64(len(all))*(extra+0.6)))
	for _, e := range all {
		ru, rv := find(e.u), find(e.v)
		keep := false
		if ru != rv {
			parent[ru] = rv
			keep = true
		} else if rng.Float64() < extra {
			keep = true
		}
		if keep {
			// Perturbed unit distance, scaled to integers: 1000 +- 40%.
			w := float32(600 + rng.Intn(800))
			edges = append(edges, graph.Edge{U: e.u, V: e.v, W: w})
		}
	}
	return graph.MustFromEdges(p, n, edges)
}

// ErdosRenyi generates a G(n, m) random multigraph with p workers: m edges
// with independently uniform endpoints. Self-loops are dropped by the
// builder, so the edge count may come out slightly under m.
func ErdosRenyi(p int, n, m int, wk WeightKind, seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			U: uint32(rng.Intn(n)),
			V: uint32(rng.Intn(n)),
			W: wk.draw(rng),
		}
	}
	return graph.MustFromEdges(p, n, edges)
}

// Geometric generates a random geometric graph: n points uniform in the unit
// square, an edge between every pair within distance radius, weighted by the
// (scaled) Euclidean distance perturbed so weights are distinct-ish. Uses a
// cell grid so construction is O(n + m) in expectation. Dense local
// clustering makes this the "more edges per vertex" morphology where §VII.C
// expects LLP-Prim to profit most.
func Geometric(p int, n int, radius float64, seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = rng.Float64(), rng.Float64()
	}
	cells := int(1 / radius)
	if cells < 1 {
		cells = 1
	}
	cell := func(x float64) int {
		c := int(x * float64(cells))
		if c >= cells {
			c = cells - 1
		}
		return c
	}
	buckets := make([][]uint32, cells*cells)
	for i := 0; i < n; i++ {
		b := cell(ys[i])*cells + cell(xs[i])
		buckets[b] = append(buckets[b], uint32(i))
	}
	r2 := radius * radius
	var edges []graph.Edge
	for cy := 0; cy < cells; cy++ {
		for cx := 0; cx < cells; cx++ {
			home := buckets[cy*cells+cx]
			// Pairs within the home cell.
			for i := 0; i < len(home); i++ {
				for j := i + 1; j < len(home); j++ {
					edges = appendGeoEdge(edges, xs, ys, home[i], home[j], r2)
				}
			}
			// Pairs against forward neighbor cells (E, S, SE, SW) so each
			// cell pair is visited once.
			for _, d := range [][2]int{{1, 0}, {0, 1}, {1, 1}, {-1, 1}} {
				nx, ny := cx+d[0], cy+d[1]
				if nx < 0 || nx >= cells || ny >= cells {
					continue
				}
				other := buckets[ny*cells+nx]
				for _, u := range home {
					for _, v := range other {
						edges = appendGeoEdge(edges, xs, ys, u, v, r2)
					}
				}
			}
		}
	}
	return graph.MustFromEdges(p, n, edges)
}

func appendGeoEdge(edges []graph.Edge, xs, ys []float64, u, v uint32, r2 float64) []graph.Edge {
	dx, dy := xs[u]-xs[v], ys[u]-ys[v]
	d2 := dx*dx + dy*dy
	if d2 > r2 || (u == v) {
		return edges
	}
	w := float32(math.Sqrt(d2) * 1000)
	return append(edges, graph.Edge{U: u, V: v, W: w})
}

// ConnectivityRadius returns a radius that makes Geometric(n) connected with
// high probability: sqrt(2 * ln(n) / (pi * n)).
func ConnectivityRadius(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Sqrt(2 * math.Log(float64(n)) / (math.Pi * float64(n)))
}
