package resilient

import (
	"context"
	"fmt"
	"sync"
	"time"

	"llpmst/internal/fault"
	"llpmst/internal/mst"
)

// Chaos injects failures into the runner's portfolio legs for soak testing,
// reusing the internal/fault machinery (and its seeded determinism): a
// fault.Plan's per-arc probabilities are reinterpreted per algorithm —
// Drop becomes "panic this leg", Delay becomes "stall this leg for
// 1..MaxDelay units of Unit before solving". Arc i of the plan is algorithm
// i in mst.Algorithms() order (see ChaosArc), so a plan can, e.g., panic
// the primary 100% of the time while delaying the backup. The Kruskal
// fallback is never injected: it is the safety net under test.
type Chaos struct {
	// Plan drives the injector; Plan.Seed makes runs reproducible.
	Plan fault.Plan
	// Unit is the duration of one delay round (default 2ms).
	Unit time.Duration
}

// ChaosArc returns the fault-plan arc index that targets alg, for building
// Plan.Arcs overrides.
func ChaosArc(alg mst.Algorithm) int64 {
	for i, a := range mst.Algorithms() {
		if a == alg {
			return int64(i)
		}
	}
	return int64(len(mst.Algorithms())) // unknown algorithms share a spare arc
}

// chaosInjector serializes fault.Injector (which is single-goroutine) for
// the runner's concurrent legs.
type chaosInjector struct {
	mu   sync.Mutex
	inj  *fault.Injector
	unit time.Duration
}

func newChaosInjector(c *Chaos) *chaosInjector {
	if c == nil {
		return nil
	}
	unit := c.Unit
	if unit <= 0 {
		unit = 2 * time.Millisecond
	}
	return &chaosInjector{inj: fault.New(c.Plan), unit: unit}
}

// strike rolls the plan's dice for one leg running alg: it either panics
// (simulating a crashing algorithm; the leg's recover turns it into a
// *par.PanicError like any real worker panic), sleeps an injected delay
// (interruptibly — a cancelled ctx cuts the stall short), or does nothing.
func (ci *chaosInjector) strike(ctx context.Context, alg mst.Algorithm) {
	if ci == nil {
		return
	}
	ci.mu.Lock()
	drop, _, delay := ci.inj.Transmit(ChaosArc(alg))
	ci.mu.Unlock()
	if drop {
		panic(fmt.Sprintf("resilient: chaos-injected panic in %s", alg))
	}
	if delay > 0 {
		t := time.NewTimer(time.Duration(delay) * ci.unit)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
	}
}
