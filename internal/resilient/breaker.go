package resilient

import (
	"sync"
	"time"
)

// BreakerState is one circuit breaker's position.
type BreakerState int32

// The breaker states. A closed breaker admits every request; an open one
// admits none until its cooldown elapses; a half-open one admits a single
// probe whose outcome decides between closing and re-opening.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String names the state for metrics and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "breaker(?)"
}

// breaker is a per-algorithm circuit breaker. Panics, verification
// failures, and deadline blow-throughs count as failures; TripAfter
// consecutive failures open it. After Cooldown it admits one probe
// (half-open): a probe success closes it, a probe failure re-opens it for
// another full cooldown. Cancellations of hedge losers are not failures and
// must not be recorded.
type breaker struct {
	tripAfter int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when state last became open
	probing  bool      // a half-open probe is in flight
	trips    int64     // lifetime open transitions
}

func newBreaker(tripAfter int, cooldown time.Duration, now func() time.Time) *breaker {
	if tripAfter <= 0 {
		tripAfter = 3
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{tripAfter: tripAfter, cooldown: cooldown, now: now}
}

// allow reports whether a request may use this algorithm now. probe is true
// when the admission is the half-open state's single trial; the caller must
// report the trial's outcome with record.
func (b *breaker) allow() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false, false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true, true
	default: // BreakerHalfOpen
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// record reports one run's outcome. Returns true when this outcome tripped
// the breaker open (the caller counts the trip exactly once).
func (b *breaker) record(success bool) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if success {
			b.failures = 0
			return false
		}
		b.failures++
		if b.failures >= b.tripAfter {
			b.open()
			return true
		}
		return false
	case BreakerHalfOpen:
		b.probing = false
		if success {
			b.state = BreakerClosed
			b.failures = 0
			return false
		}
		b.open()
		return true
	default: // BreakerOpen: a straggler from before the trip; keep the count fresh
		if !success {
			b.openedAt = b.now()
		}
		return false
	}
}

// abortProbe returns a half-open probe slot without an outcome — used when
// the probe leg was cancelled as a hedge loser, which says nothing about
// the algorithm's health.
func (b *breaker) abortProbe() {
	b.mu.Lock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

// open transitions to the open state. Callers hold b.mu.
func (b *breaker) open() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.failures = 0
	b.probing = false
	b.trips++
}

// snapshot returns the current state and lifetime trip count.
func (b *breaker) snapshot() (BreakerState, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	// Surface cooldown expiry as half-open so operators see "probing soon"
	// rather than a stale "open".
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen, b.trips
	}
	return b.state, b.trips
}
