package resilient

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"llpmst/internal/graph"
	"llpmst/internal/mst"
	"llpmst/internal/obs"
	"llpmst/internal/par"
)

// Config tunes a Runner. The zero value is serviceable: adaptive hedging
// with a 1ms floor, auto-picked portfolio, breakers tripping after 3
// consecutive failures with a 5s cooldown, a concurrency gate of
// 2×GOMAXPROCS, no memory budget, and no sampled minimality verification.
type Config struct {
	// Primary and Backup name the portfolio. Empty = auto: the runner picks
	// by graph density (very dense graphs lead with the semiring sparse-
	// matrix backend, dense with the Prim family, sparse with the Boruvka
	// family — the paper's §VII split) and reorders by learned per-bucket
	// latency once it has samples.
	Primary mst.Algorithm
	Backup  mst.Algorithm

	// Workers is the per-solve goroutine count; <= 0 means GOMAXPROCS.
	Workers int

	// DefaultDeadline bounds solves whose context has no deadline of its
	// own. 0 = unbounded.
	DefaultDeadline time.Duration

	// HedgeDelay, when > 0, is a fixed delay before the backup launches.
	// When 0 the delay is adaptive: the primary's learned tail latency for
	// the graph's size bucket, clamped to [HedgeFloor, HedgeCeil].
	HedgeDelay time.Duration
	// HedgeFloor and HedgeCeil clamp the adaptive delay (defaults 1ms and
	// 1s). The floor also serves as the cold-start delay before any
	// latencies are learned.
	HedgeFloor time.Duration
	HedgeCeil  time.Duration
	// DisableHedge turns hedging off: the backup runs only after the
	// primary fails.
	DisableHedge bool

	// VerifyRate is the fraction of winning forests additionally checked
	// for minimality with mst.VerifyMinimum (structural CheckForest runs on
	// every winner regardless). 0 disables sampling; 1 verifies every solve.
	// A verification failure trips the winner's breaker and re-solves on a
	// different algorithm.
	VerifyRate float64

	// MaxConcurrent bounds admitted solves. 0 = 2×GOMAXPROCS; < 0 =
	// unbounded.
	MaxConcurrent int
	// MemoryBudgetBytes bounds the summed scratch estimates
	// (mst.EstimateScratchBytes, doubled for the hedge leg) of admitted
	// solves. 0 = unlimited.
	MemoryBudgetBytes int64

	// BreakerTripAfter is the consecutive-failure count that opens an
	// algorithm's breaker (default 3); BreakerCooldown is how long it stays
	// open before a half-open probe (default 5s).
	BreakerTripAfter int
	BreakerCooldown  time.Duration

	// Observer receives the runner's counters (hedge.launched, hedge.won,
	// breaker.open, admit.shed, verify.failed, fallback.used) and is passed
	// through to the algorithms' own instrumentation. When nil, a Collector
	// carried by the solve's context (obs.NewContext) is used.
	Observer obs.Collector

	// Chaos, when non-nil, injects seeded panics and delays into portfolio
	// legs (never into the Kruskal fallback). For soak tests.
	Chaos *Chaos
}

// Result reports how a solve was answered, alongside the forest.
type Result struct {
	// Forest is the verified minimum spanning forest.
	Forest *mst.Forest
	// Algorithm produced the returned forest (mst.AlgKruskal when the
	// fallback answered).
	Algorithm mst.Algorithm
	// Hedged reports that a backup leg was launched while the primary ran.
	Hedged bool
	// HedgeWon reports that the hedge leg's forest was the one returned.
	HedgeWon bool
	// FallbackUsed reports that the sequential Kruskal safety net answered.
	FallbackUsed bool
	// Verified reports that the returned forest passed a sampled
	// mst.VerifyMinimum in addition to the structural check.
	Verified bool
	// Attempts counts algorithm runs consumed (portfolio legs + fallback).
	Attempts int
	// Elapsed is the solve's wall time inside the runner.
	Elapsed time.Duration
}

// Stats is a snapshot of a Runner's lifetime counters.
type Stats struct {
	Solves          int64 // admitted solve calls
	Shed            int64 // requests rejected by admission control
	LegsLaunched    int64 // portfolio legs started
	HedgesLaunched  int64 // legs started while another leg was in flight
	HedgeWins       int64 // hedge legs whose forest was returned
	FallbacksUsed   int64 // solves answered by sequential Kruskal
	VerifyFailures  int64 // CheckForest or sampled VerifyMinimum rejections
	BreakerTrips    int64 // breaker open transitions
	LosersCancelled int64 // losing legs that observed hedge cancellation
	LosersCompleted int64 // losing legs that finished before noticing it
}

// BreakerStatus is one algorithm's breaker position for reports.
type BreakerStatus struct {
	Algorithm mst.Algorithm
	State     BreakerState
	Trips     int64
}

// Runner is the resilient execution engine: admission control, circuit
// breakers, hedged portfolio execution, a verification gate, and a
// sequential fallback, in that order. Safe for concurrent use; one Runner
// serves a whole process.
type Runner struct {
	cfg   Config
	adm   *admission
	lat   *latencyTracker
	chaos *chaosInjector

	mu       sync.Mutex
	breakers map[mst.Algorithm]*breaker

	// wg tracks every leg goroutine (including hedge losers still draining
	// after their solve was answered); Drain waits on it for graceful
	// shutdown.
	wg sync.WaitGroup

	verifyCtr atomic.Uint64

	solves, shed, legs, hedges, hedgeWins atomic.Int64
	fallbacks, verifyFails, trips         atomic.Int64
	losersCancelled, losersCompleted      atomic.Int64
}

// New builds a Runner from cfg.
func New(cfg Config) *Runner {
	if cfg.HedgeFloor <= 0 {
		cfg.HedgeFloor = time.Millisecond
	}
	if cfg.HedgeCeil <= 0 {
		cfg.HedgeCeil = time.Second
	}
	maxc := cfg.MaxConcurrent
	if maxc == 0 {
		maxc = 2 * par.Workers(0)
	}
	if maxc < 0 {
		maxc = 0 // unbounded gate
	}
	return &Runner{
		cfg:      cfg,
		adm:      newAdmission(maxc, cfg.MemoryBudgetBytes),
		lat:      newLatencyTracker(),
		chaos:    newChaosInjector(cfg.Chaos),
		breakers: make(map[mst.Algorithm]*breaker),
	}
}

// Stats returns a snapshot of the runner's lifetime counters.
func (r *Runner) Stats() Stats {
	return Stats{
		Solves:          r.solves.Load(),
		Shed:            r.shed.Load(),
		LegsLaunched:    r.legs.Load(),
		HedgesLaunched:  r.hedges.Load(),
		HedgeWins:       r.hedgeWins.Load(),
		FallbacksUsed:   r.fallbacks.Load(),
		VerifyFailures:  r.verifyFails.Load(),
		BreakerTrips:    r.trips.Load(),
		LosersCancelled: r.losersCancelled.Load(),
		LosersCompleted: r.losersCompleted.Load(),
	}
}

// Breakers returns every algorithm breaker's current status, sorted by
// algorithm name for stable reports.
func (r *Runner) Breakers() []BreakerStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]BreakerStatus, 0, len(r.breakers))
	for _, alg := range mst.Algorithms() {
		if b, ok := r.breakers[alg]; ok {
			st, trips := b.snapshot()
			out = append(out, BreakerStatus{Algorithm: alg, State: st, Trips: trips})
		}
	}
	return out
}

// Drain blocks until every leg goroutine has exited (hedge losers observe
// their cancellation promptly, so this is bounded by the slowest in-flight
// solve), or until ctx expires.
func (r *Runner) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (r *Runner) breakerFor(alg mst.Algorithm) *breaker {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.breakers[alg]
	if b == nil {
		b = newBreaker(r.cfg.BreakerTripAfter, r.cfg.BreakerCooldown, nil)
		r.breakers[alg] = b
	}
	return b
}

// collector resolves the run's Collector: the configured one combined with
// any Collector carried by ctx (obs.NewContext). Tee collapses nil sides,
// so with no per-request collector this is exactly the configured Observer,
// and with no Observer it is exactly the context's. The serving layer uses
// the context side to attach a per-request FlightRecorder whose round
// summary lands in the request's trace.
func (r *Runner) collector(ctx context.Context) obs.Collector {
	return obs.Tee(r.cfg.Observer, obs.FromContext(ctx))
}

// legNopEnd is countsOnly's shared span closer, so Span never allocates.
var legNopEnd = func() {}

// countsOnly forwards counters and gauges to col but drops spans, round
// marks, and worker attribution. Count and Gauge are safe for concurrent
// use on every Collector (the FlightRecorder claims ring slots with an
// atomic add), but a cursor's Span open/close tracking is per-goroutine
// state — two hedge legs running the same algorithm phases concurrently
// against one recorder would corrupt it. The runner therefore gives
// concurrent legs this counters-only view; exact scheduler/algorithm
// counters still land in /metrics.
type countsOnly struct{ col obs.Collector }

func (c countsOnly) Span(string) func()             { return legNopEnd }
func (c countsOnly) Count(ctr obs.Counter, d int64) { c.col.Count(ctr, d) }
func (c countsOnly) Gauge(g obs.Gauge, v int64)     { c.col.Gauge(g, v) }

// Round forwards round marks: MarkRound is an atomic ring claim on the
// FlightRecorder (unlike cursor spans it has no per-goroutine state), so
// concurrent legs marking rounds is safe, and the per-request recorder a
// trace attaches needs the marks to segment its round summary.
func (c countsOnly) Round(r int64) { obs.MarkRound(c.col, r) }

// primFamily reports whether alg belongs to the Prim family (heap-driven,
// the paper's dense-graph winners).
func primFamily(alg mst.Algorithm) bool {
	switch alg {
	case mst.AlgPrim, mst.AlgPrimLazy, mst.AlgLLPPrim, mst.AlgLLPPrimParallel, mst.AlgLLPPrimAsync:
		return true
	}
	return false
}

// pick chooses the portfolio order for g: configured algorithms when set,
// else a density heuristic (very dense → the semiring sparse-matrix
// backend, whose regular row streaming wins exactly when rows are long;
// dense → Prim family first; sparse → Boruvka family first, the §VII
// split), then a swap when the learned per-bucket latencies say the backup
// is actually faster here.
func (r *Runner) pick(g *graph.CSR, bucket int) (primary, backup mst.Algorithm) {
	primary, backup = r.cfg.Primary, r.cfg.Backup
	dense := g.NumEdges() >= 4*g.NumVertices()
	veryDense := g.NumEdges() >= 16*g.NumVertices()
	if primary == "" {
		switch {
		case veryDense:
			primary = mst.AlgSemiringBoruvka
		case dense:
			primary = mst.AlgLLPPrimAsync
		default:
			primary = mst.AlgLLPBoruvka
		}
	}
	if backup == "" {
		if primFamily(primary) {
			backup = mst.AlgLLPBoruvka
		} else {
			backup = mst.AlgLLPPrimAsync
		}
	}
	if backup == primary {
		backup = ""
		return
	}
	if r.cfg.Primary == "" || r.cfg.Backup == "" {
		pm, okP := r.lat.mean(primary, bucket)
		bm, okB := r.lat.mean(backup, bucket)
		if okP && okB && bm < pm {
			primary, backup = backup, primary
		}
	}
	return
}

// shouldVerify implements the sampled minimality gate with a deterministic
// stride (every round(1/rate)-th admitted solve).
func (r *Runner) shouldVerify() bool {
	rate := r.cfg.VerifyRate
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	interval := uint64(math.Round(1 / rate))
	if interval < 1 {
		interval = 1
	}
	return r.verifyCtr.Add(1)%interval == 0
}

// legOutcome is one portfolio leg's result.
type legOutcome struct {
	alg     mst.Algorithm
	forest  *mst.Forest // non-nil and CheckForest-clean iff err == nil
	err     error
	hedge   bool // launched while another leg was in flight
	elapsed time.Duration
	span    obs.Span // the leg's trace span, already ended; race() marks the winner
}

// Solve answers one MSF request through the full resilience pipeline. It
// returns a structurally verified forest or a typed error — never a silent
// partial result. Rejections match errors.Is(err, ErrOverloaded); deadline
// exhaustion matches context.DeadlineExceeded.
//
// When ctx carries a trace ref (obs.ContextWithTrace) the pipeline is
// recorded as a "resilient.solve" span with one "resilient.leg" child per
// portfolio leg, hedge legs and the winner marked.
func (r *Runner) Solve(ctx context.Context, g *graph.CSR) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sp := obs.TraceRefFromContext(ctx).Start("resilient.solve")
	res, err := r.solve(ctx, sp, g)
	if sp.Valid() {
		sp.SetInt("attempts", int64(res.Attempts))
		if res.Algorithm != "" {
			sp.SetAttr("winner", string(res.Algorithm))
		}
		if res.Hedged {
			sp.SetInt("hedged", 1)
		}
		if res.HedgeWon {
			sp.SetInt("hedge_won", 1)
		}
		if res.FallbackUsed {
			sp.SetInt("fallback", 1)
		}
		switch {
		case err == nil:
			sp.SetAttr("outcome", "ok")
		case errors.Is(err, ErrOverloaded):
			// Load shedding is the admission gate working as designed, not a
			// fault: record it without forcing the trace into the error tail.
			sp.SetAttr("outcome", "shed")
		default:
			sp.SetErrorString(err.Error())
		}
	}
	sp.End()
	return res, err
}

func (r *Runner) solve(ctx context.Context, sp obs.Span, g *graph.CSR) (Result, error) {
	if g == nil {
		return Result{}, errors.New("resilient: nil graph")
	}
	col := obs.Or(r.collector(ctx))
	start := time.Now()
	if r.cfg.DefaultDeadline > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, r.cfg.DefaultDeadline)
			defer cancel()
		}
	}

	release, err := r.adm.admit(g.NumVertices(), g.NumEdges(), par.Workers(r.cfg.Workers))
	if err != nil {
		r.shed.Add(1)
		col.Count(obs.CtrAdmitShed, 1)
		return Result{}, err
	}
	defer release()
	r.solves.Add(1)

	bucket := sizeBucket(g)
	primary, backup := r.pick(g, bucket)
	if sp.Valid() {
		sp.SetAttr("primary", string(primary))
		if backup != "" {
			sp.SetAttr("backup", string(backup))
		}
	}
	legRef := sp.Ref()

	res := Result{}
	banned := make(map[mst.Algorithm]bool, 2)
	var legErrs []error
	// The verify loop: a winner that fails the sampled minimality check is
	// discarded, its algorithm banned for this request, and the remaining
	// portfolio re-raced. Two passes bound the work (portfolio size is 2).
	for pass := 0; pass < 2 && ctx.Err() == nil; pass++ {
		algs := make([]mst.Algorithm, 0, 2)
		for _, a := range []mst.Algorithm{primary, backup} {
			if a != "" && !banned[a] {
				algs = append(algs, a)
			}
		}
		if len(algs) == 0 {
			break
		}
		win, errs := r.race(ctx, col, legRef, g, bucket, algs, &res)
		legErrs = append(legErrs, errs...)
		if win == nil {
			break
		}
		if r.shouldVerify() {
			if verr := mst.VerifyMinimum(g, win.forest); verr != nil {
				r.verifyFails.Add(1)
				col.Count(obs.CtrVerifyFailed, 1)
				if r.breakerFor(win.alg).record(false) {
					r.trips.Add(1)
					col.Count(obs.CtrBreakerOpen, 1)
				}
				banned[win.alg] = true
				legErrs = append(legErrs, fmt.Errorf("resilient: %s forest failed minimality verification: %w", win.alg, verr))
				continue
			}
			res.Verified = true
		}
		res.Forest = win.forest
		res.Algorithm = win.alg
		if win.hedge {
			res.HedgeWon = true
			r.hedgeWins.Add(1)
			col.Count(obs.CtrHedgeWon, 1)
		}
		res.Elapsed = time.Since(start)
		return res, nil
	}

	// The portfolio is exhausted (every leg panicked, timed out, or failed
	// verification). Degrade to sequential Kruskal inside what remains of
	// the budget — it has no breaker and no chaos: it is the safety net.
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("resilient: deadline exhausted before a sound forest was produced: %w", errors.Join(append(legErrs, err)...))
	}
	res.FallbackUsed = true
	res.Attempts++
	r.fallbacks.Add(1)
	col.Count(obs.CtrFallbackUsed, 1)
	fsp := legRef.Start("resilient.fallback")
	fsp.SetAttr("alg", string(mst.AlgKruskal))
	f, err := mst.Run(mst.AlgKruskal, g, mst.Options{Ctx: ctx, Metrics: nil, Observer: countsOnly{col}})
	fsp.SetError(err)
	fsp.End()
	if err != nil {
		return Result{}, fmt.Errorf("resilient: fallback kruskal failed: %w", errors.Join(append(legErrs, err)...))
	}
	if cerr := mst.CheckForest(g, f); cerr != nil {
		r.verifyFails.Add(1)
		col.Count(obs.CtrVerifyFailed, 1)
		return Result{}, fmt.Errorf("resilient: fallback kruskal produced an unsound forest: %w", errors.Join(append(legErrs, cerr)...))
	}
	res.Forest = f
	res.Algorithm = mst.AlgKruskal
	res.Elapsed = time.Since(start)
	return res, nil
}

// race runs one hedged pass over algs: the first allowed algorithm starts
// immediately, the next starts after the hedge delay (or at once when the
// first fails), and the first CheckForest-clean forest wins; the loser's
// context is cancelled. Returns the winner (nil if every leg failed) and
// the losing legs' errors.
func (r *Runner) race(ctx context.Context, col obs.Collector, ref obs.TraceRef, g *graph.CSR, bucket int, algs []mst.Algorithm, res *Result) (*legOutcome, []error) {
	legCtx, cancelLegs := context.WithCancel(ctx)
	defer cancelLegs()
	results := make(chan legOutcome, len(algs))
	// decided tells late-finishing legs that their cancellation was a hedge
	// loss (stats), not a caller abort.
	var decided atomic.Bool

	pending, next := 0, 0
	launch := func() bool {
		for next < len(algs) {
			alg := algs[next]
			next++
			b := r.breakerFor(alg)
			ok, probe := b.allow()
			if !ok {
				continue
			}
			hedge := pending > 0
			if hedge {
				r.hedges.Add(1)
				col.Count(obs.CtrHedgeLaunched, 1)
				res.Hedged = true
			}
			pending++
			res.Attempts++
			r.legs.Add(1)
			r.wg.Add(1)
			go r.runLeg(legCtx, col, ref, g, alg, bucket, hedge, probe, &decided, results)
			return true
		}
		return false
	}

	if !launch() {
		return nil, nil // every breaker open; caller falls back
	}
	var hedgeC <-chan time.Time
	if next < len(algs) && !r.cfg.DisableHedge {
		delay := r.cfg.HedgeDelay
		if delay <= 0 {
			delay = r.lat.hedgeDelay(algs[0], bucket, r.cfg.HedgeFloor, r.cfg.HedgeCeil)
		}
		// Never schedule the hedge after the deadline has already consumed
		// the request: fire by mid-budget at the latest.
		if dl, has := ctx.Deadline(); has {
			if rem := time.Until(dl); rem > 0 && delay > rem/2 {
				delay = rem / 2
			}
		}
		t := time.NewTimer(delay)
		defer t.Stop()
		hedgeC = t.C
	}

	var errs []error
	for pending > 0 {
		select {
		case <-hedgeC:
			hedgeC = nil
			launch()
		case out := <-results:
			pending--
			if out.err == nil {
				decided.Store(true)
				cancelLegs()
				// Only the receiving side knows which sound leg arrived
				// first, so the winner mark lands here, after the leg span
				// ended. That is safe: the attribute write is ordered before
				// the trace can seal (this select precedes Solve's return,
				// which precedes the root span's Finish).
				out.span.SetAttr("leg", "winner")
				return &out, errs
			}
			errs = append(errs, out.err)
			if pending == 0 {
				hedgeC = nil
				launch() // sequential retry on the remaining algorithms
			}
		case <-ctx.Done():
			// Request deadline while waiting: the legs see the same ctx and
			// will drain on their own (r.wg tracks them).
			decided.Store(false)
			return nil, append(errs, ctx.Err())
		}
	}
	return nil, errs
}

// runLeg executes one portfolio leg: chaos strike, the algorithm itself
// (panics recovered into typed errors), the structural verification gate,
// then breaker/latency/stat accounting. It always sends exactly one
// legOutcome and never blocks (the results channel has one slot per leg).
func (r *Runner) runLeg(ctx context.Context, col obs.Collector, ref obs.TraceRef, g *graph.CSR, alg mst.Algorithm, bucket int, hedge, probe bool, decided *atomic.Bool, results chan<- legOutcome) {
	defer r.wg.Done()
	// The leg span is started from a goroutine the request does not join
	// (hedge losers outlive the response); the trace store's generation
	// check makes this safe even if the slot has been recycled by then.
	sp := ref.Start("resilient.leg")
	sp.SetAttr("alg", string(alg))
	if hedge {
		sp.SetInt("hedge", 1)
	}
	if probe {
		sp.SetAttr("breaker", "half-open")
	}
	start := time.Now()
	var f *mst.Forest
	var err error
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				// A chaos strike or a bug outside the par runtime's own
				// recovery: convert like any worker panic.
				err = fmt.Errorf("resilient: %s: %w", alg, par.AsPanicError(rec, -1))
				f = nil
			}
		}()
		r.chaos.strike(ctx, alg)
		f, err = mst.RunCtx(ctx, alg, g, mst.Options{Workers: r.cfg.Workers, Observer: countsOnly{col}})
	}()
	elapsed := time.Since(start)

	checkFailed := false
	if err == nil {
		if f == nil {
			err = fmt.Errorf("resilient: %s returned no forest", alg)
		} else if cerr := mst.CheckForest(g, f); cerr != nil {
			checkFailed = true
			err = fmt.Errorf("resilient: %s produced an unsound forest: %w", alg, cerr)
		}
	}

	b := r.breakerFor(alg)
	switch {
	case err == nil:
		r.lat.observe(alg, bucket, elapsed)
		b.record(true)
		sp.SetAttr("outcome", "ok")
		if decided.Load() {
			r.losersCompleted.Add(1) // finished sound, but after the winner
			sp.SetAttr("leg", "loser")
		}
	case errors.Is(err, context.Canceled):
		// Cancelled, not failed: either a hedge loss (the winner's cancel)
		// or the caller giving up. Neither is the algorithm's fault.
		if probe {
			b.abortProbe()
		}
		sp.SetAttr("outcome", "cancelled")
		if decided.Load() {
			r.losersCancelled.Add(1)
			sp.SetAttr("leg", "loser")
		}
	default:
		// Panic, unsound forest, or a deadline blow-through: breaker
		// pressure.
		if checkFailed {
			r.verifyFails.Add(1)
			col.Count(obs.CtrVerifyFailed, 1)
		}
		if b.record(false) {
			r.trips.Add(1)
			col.Count(obs.CtrBreakerOpen, 1)
		}
		sp.SetAttr("outcome", "failed")
		sp.SetErrorString(err.Error())
	}
	sp.End()
	results <- legOutcome{alg: alg, forest: f, err: err, hedge: hedge, elapsed: elapsed, span: sp}
}
