package resilient

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"llpmst/internal/fault"
	"llpmst/internal/graph"
	"llpmst/internal/mst"
)

// soakGraph draws one random graph from a seeded morphology family,
// mirroring the runtime's differential stress corpus: sparse graphs (deep
// trees, long chains), dense graphs (write-min contention), disconnected
// graphs (per-component restarts), and multigraphs (parallel edges and
// heavy weight ties).
func soakGraph(family string, seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	var n, m int
	switch family {
	case "sparse":
		n = 50 + rng.Intn(250)
		m = n + rng.Intn(n/2+1)
	case "dense":
		n = 30 + rng.Intn(90)
		m = n * (3 + rng.Intn(6))
	case "disconnected":
		n = 100 + rng.Intn(200)
		m = n / 2
	default: // "multi"
		n = 5 + rng.Intn(20)
		m = n * 10
	}
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if u == v {
			continue
		}
		var w float32
		if family == "multi" {
			w = float32(rng.Intn(4))
		} else {
			w = rng.Float32() * 100
		}
		edges = append(edges, graph.Edge{U: u, V: v, W: w})
	}
	return graph.MustFromEdges(1, n, edges)
}

// TestDifferentialSoakUnderChaos is the resilience counterpart of the
// runtime's differential stress suite: the full 52-graph corpus is pushed
// through the resilient pipeline while seeded chaos panics and delays both
// portfolio legs. The contract under fire: every answer is either the exact
// Kruskal-canonical forest or a typed error — never a silent partial
// result. Run under -race this doubles as the race-cleanliness proof for
// the hedged execution paths.
func TestDifferentialSoakUnderChaos(t *testing.T) {
	families := []string{"sparse", "dense", "disconnected", "multi"}
	perFamily := 13 // 4*13 = 52 graphs
	if testing.Short() {
		perFamily = 4
	}

	r := New(Config{
		Workers:         2,
		DefaultDeadline: 30 * time.Second,
		HedgeDelay:      500 * time.Microsecond,
		VerifyRate:      0.25,
		// Short cooldown so breakers tripped by chaos panics recover and
		// keep probing across the corpus instead of parking every solve on
		// the fallback.
		BreakerCooldown: 50 * time.Millisecond,
		Chaos: &Chaos{
			// Every leg has a 30% chance to panic and a 30% chance to stall
			// 1..2ms — enough churn to exercise retry, breaker, hedge, and
			// fallback paths across the corpus.
			Plan: fault.Plan{
				Seed:    7,
				Default: fault.Probs{Drop: 0.3, Delay: 0.3, MaxDelay: 2},
			},
			Unit: time.Millisecond,
		},
	})

	sawFallback, sawHedge := false, false
	for _, family := range families {
		for i := 0; i < perFamily; i++ {
			seed := int64(1000*i) + int64(len(family))
			t.Run(fmt.Sprintf("%s/%d", family, i), func(t *testing.T) {
				g := soakGraph(family, seed)
				oracle := mst.Kruskal(g)
				if err := mst.CheckForest(g, oracle); err != nil {
					t.Fatalf("kruskal oracle invalid: %v", err)
				}
				res, err := r.Solve(context.Background(), g)
				if err != nil {
					// A typed, inspectable failure is an acceptable outcome
					// under chaos; anything untyped is a contract breach.
					if !errors.Is(err, ErrOverloaded) &&
						!errors.Is(err, context.DeadlineExceeded) &&
						!errors.Is(err, context.Canceled) {
						t.Fatalf("untyped error under chaos: %v", err)
					}
					return
				}
				if res.Forest == nil {
					t.Fatal("nil forest with nil error")
				}
				if !res.Forest.Equal(oracle) {
					t.Fatalf("%s answered a non-canonical forest (%d vs %d edges, weight %g vs %g)",
						res.Algorithm, len(res.Forest.EdgeIDs), len(oracle.EdgeIDs),
						res.Forest.Weight, oracle.Weight)
				}
				sawFallback = sawFallback || res.FallbackUsed
				sawHedge = sawHedge || res.Hedged
			})
		}
	}

	st := r.Stats()
	if st.BreakerTrips == 0 {
		t.Errorf("chaos at 30%% panic rate should have tripped a breaker at least once: %+v", st)
	}
	if !sawHedge && !sawFallback {
		t.Errorf("soak exercised neither the hedge nor the fallback path: %+v", st)
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := r.Drain(dctx); err != nil {
		t.Fatalf("drain did not finish: %v", err)
	}
}
