package resilient

import (
	"errors"
	"fmt"
	"sync/atomic"

	"llpmst/internal/mst"
)

// ErrOverloaded is the sentinel every load-shedding rejection matches:
// errors.Is(err, ErrOverloaded) is true for any *OverloadError. Callers
// should treat it as retryable (HTTP 503 + Retry-After).
var ErrOverloaded = errors.New("resilient: overloaded")

// OverloadError is the typed rejection admission control returns instead of
// queueing work the process cannot afford. It unwraps to ErrOverloaded.
type OverloadError struct {
	// Reason is "concurrency" (the bounded gate is full) or "memory" (the
	// request's estimated scratch does not fit the remaining budget).
	Reason string
	// InFlight is the number of admitted solves at rejection time.
	InFlight int
	// EstimatedBytes is the request's scratch estimate (memory sheds only).
	EstimatedBytes int64
	// BudgetBytes is the configured memory budget (memory sheds only).
	BudgetBytes int64
}

// Error describes the shed decision.
func (e *OverloadError) Error() string {
	if e.Reason == "memory" {
		return fmt.Sprintf("resilient: overloaded: request needs ~%d bytes of scratch, budget %d with %d solves in flight",
			e.EstimatedBytes, e.BudgetBytes, e.InFlight)
	}
	return fmt.Sprintf("resilient: overloaded: %d solves in flight at the concurrency limit", e.InFlight)
}

// Is makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// admission is the front gate: a bounded-concurrency semaphore plus a
// memory budget priced by mst.EstimateScratchBytes. Admission is
// all-or-nothing and non-blocking — a request that does not fit is shed
// immediately with a typed *OverloadError rather than queued, keeping the
// server's latency profile flat under overload.
type admission struct {
	slots       chan struct{} // nil = unbounded
	budgetBytes int64         // 0 = unlimited
	inUseBytes  atomic.Int64
	inFlight    atomic.Int64
}

func newAdmission(maxConcurrent int, budgetBytes int64) *admission {
	a := &admission{budgetBytes: budgetBytes}
	if maxConcurrent > 0 {
		a.slots = make(chan struct{}, maxConcurrent)
	}
	return a
}

// admit tries to reserve a slot and the request's scratch estimate.
// On success the returned release func must be called exactly once.
func (a *admission) admit(n, m, workers int) (release func(), err error) {
	if a.slots != nil {
		select {
		case a.slots <- struct{}{}:
		default:
			return nil, &OverloadError{Reason: "concurrency", InFlight: int(a.inFlight.Load())}
		}
	}
	// Two legs of a hedged solve can hold scratch at once, so price both;
	// the estimate is a ceiling, not an accounting of live bytes.
	est := 2 * mst.EstimateScratchBytes(n, m, workers)
	if a.budgetBytes > 0 {
		for {
			used := a.inUseBytes.Load()
			if used+est > a.budgetBytes {
				if a.slots != nil {
					<-a.slots
				}
				return nil, &OverloadError{
					Reason: "memory", InFlight: int(a.inFlight.Load()),
					EstimatedBytes: est, BudgetBytes: a.budgetBytes,
				}
			}
			if a.inUseBytes.CompareAndSwap(used, used+est) {
				break
			}
		}
	}
	a.inFlight.Add(1)
	var released atomic.Bool
	return func() {
		if !released.CompareAndSwap(false, true) {
			return
		}
		a.inFlight.Add(-1)
		if a.budgetBytes > 0 {
			a.inUseBytes.Add(-est)
		}
		if a.slots != nil {
			<-a.slots
		}
	}, nil
}
