package resilient

import (
	"context"
	"runtime"
	"testing"
	"time"

	"llpmst/internal/fault"
	"llpmst/internal/gen"
	"llpmst/internal/mst"
)

// TestHedgedSolvesNoGoroutineLeakAndLoserCancellation runs a long sequence
// of hedged solves whose primary is forced to stall far past the hedge
// delay, so every solve launches a backup that wins. Two properties must
// hold afterwards: the goroutine count settles back to (about) the pre-run
// level — no leg leaks — and every losing leg accounted for its hedge loss
// by observing its context's cancellation (the stall is seconds long, so a
// loser that did not see the cancel would still be asleep).
func TestHedgedSolvesNoGoroutineLeakAndLoserCancellation(t *testing.T) {
	const solves = 200
	g := gen.ErdosRenyi(1, 300, 1200, gen.WeightUniform, 41)
	oracle := mst.Kruskal(g)

	primary, backup := mst.AlgLLPBoruvka, mst.AlgLLPPrimAsync
	r := New(Config{
		Primary:    primary,
		Backup:     backup,
		Workers:    2,
		HedgeDelay: time.Millisecond,
		Chaos: &Chaos{
			// The primary always stalls 1..2 units of one second: it can
			// never finish before the backup, so its only way out is the
			// hedge-loss cancellation.
			Plan: fault.Plan{
				Seed: 42,
				Arcs: map[int64]fault.Probs{
					ChaosArc(primary): {Delay: 1, MaxDelay: 2},
				},
			},
			Unit: time.Second,
		},
	})

	before := runtime.NumGoroutine()
	for i := 0; i < solves; i++ {
		res, err := r.Solve(context.Background(), g)
		if err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
		if !res.Hedged || !res.HedgeWon || res.Algorithm != backup {
			t.Fatalf("solve %d: want a hedge win by %s, got %+v", i, backup, res)
		}
		if !res.Forest.Equal(oracle) {
			t.Fatalf("solve %d: forest differs from oracle", i)
		}
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := r.Drain(dctx); err != nil {
		t.Fatalf("drain did not finish: %v", err)
	}

	st := r.Stats()
	if st.HedgesLaunched != solves || st.HedgeWins != solves {
		t.Fatalf("want %d hedges launched and won, got %+v", solves, st)
	}
	if st.LosersCancelled != solves {
		t.Fatalf("every losing leg must observe ctx cancellation: %d of %d did (completed: %d)",
			st.LosersCancelled, solves, st.LosersCompleted)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle after %d hedged solves: before=%d after=%d",
		solves, before, runtime.NumGoroutine())
}
