// Package resilient is the execution layer that keeps an MSF service
// answering under slow, panicking, or memory-hungry solves. It composes the
// mechanisms the runtime packages already provide — cooperative
// cancellation (internal/par.Canceller), panic isolation
// (par.PanicError), verification (mst.CheckForest / mst.VerifyMinimum),
// scratch sizing (mst.EstimateScratchBytes), and observability
// (internal/obs) — into one request path:
//
//	admission → breaker → hedged portfolio → verify → fallback
//
// Admission control sheds work the process cannot afford (a bounded
// concurrency gate plus a memory budget priced by workspace sizing),
// returning the typed *OverloadError. Per-algorithm circuit breakers take
// repeatedly failing algorithms out of the rotation and probe them back in
// after a cooldown. The hedged runner exploits the paper's central
// observation — the LLP-derived algorithms compute the same fixed point
// with very different latency profiles per input — by racing a backup
// algorithm against a slow primary after an adaptive delay learned from
// per-algorithm latency EWMAs keyed by graph-size bucket; the first sound
// forest wins and the loser is cancelled. A verification gate checks every
// winner structurally and a configurable sample of winners for minimality;
// failures trip the breaker and re-solve on a different algorithm. When the
// whole portfolio fails inside the request deadline, the runner degrades to
// sequential Kruskal rather than failing the request — a caller gets a
// verified forest or a typed error, never a silent partial result.
package resilient
