package resilient

import (
	"math/bits"
	"sync"
	"time"

	"llpmst/internal/mst"
)

// latencyTracker learns per-algorithm latency profiles keyed by graph-size
// bucket (log2 of n+m, so one bucket spans a factor-of-two size band). For
// each (algorithm, bucket) cell it maintains an exponentially weighted
// moving average of the latency and of its absolute deviation — a cheap,
// O(1)-memory stand-in for a tail quantile: mean + k·dev tracks a high
// percentile of well-behaved latency distributions and adapts when an
// algorithm's profile shifts. The hedged runner uses it twice: to order the
// portfolio (fastest learned algorithm first) and to pick the hedge delay
// (fire the backup when the primary exceeds its learned tail).
type latencyTracker struct {
	mu    sync.Mutex
	cells map[latKey]*latCell
}

type latKey struct {
	alg    mst.Algorithm
	bucket int
}

type latCell struct {
	mean float64 // EWMA of latency (ns)
	dev  float64 // EWMA of |sample - mean| (ns)
	n    int64   // samples observed
}

// ewmaAlpha is the smoothing factor: ~the last 8 samples dominate, so the
// tracker follows workload shifts within a few requests.
const ewmaAlpha = 0.25

// devMultiplier scales the learned deviation into the tail estimate:
// mean + 4·dev sits near p99 for exponential-ish service times.
const devMultiplier = 4.0

func newLatencyTracker() *latencyTracker {
	return &latencyTracker{cells: make(map[latKey]*latCell)}
}

// sizeBucket buckets a graph by log2(n+m).
func sizeBucket(g sized) int { return bits.Len(uint(g.NumVertices() + g.NumEdges())) }

// sized is the fragment of graph.CSR the tracker needs (kept tiny for
// tests).
type sized interface {
	NumVertices() int
	NumEdges() int
}

// observe records one successful solve's latency.
func (t *latencyTracker) observe(alg mst.Algorithm, bucket int, d time.Duration) {
	ns := float64(d)
	if ns < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	k := latKey{alg, bucket}
	c := t.cells[k]
	if c == nil {
		c = &latCell{mean: ns}
		t.cells[k] = c
	}
	diff := ns - c.mean
	c.mean += ewmaAlpha * diff
	if diff < 0 {
		diff = -diff
	}
	c.dev += ewmaAlpha * (diff - c.dev)
	c.n++
}

// tail returns the learned tail-latency estimate (mean + k·dev) for the
// cell, and whether enough samples exist to trust it.
func (t *latencyTracker) tail(alg mst.Algorithm, bucket int) (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.cells[latKey{alg, bucket}]
	if c == nil || c.n < 3 {
		return 0, false
	}
	return time.Duration(c.mean + devMultiplier*c.dev), true
}

// mean returns the learned mean latency for the cell, and whether any
// samples exist.
func (t *latencyTracker) mean(alg mst.Algorithm, bucket int) (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.cells[latKey{alg, bucket}]
	if c == nil || c.n == 0 {
		return 0, false
	}
	return time.Duration(c.mean), true
}

// hedgeDelay converts the learned tail for (alg, bucket) into a hedge
// delay clamped to [floor, ceil]. Before the tracker has data it returns
// floor — hedging eagerly while cold costs some duplicate work but bounds
// tail latency from the first request.
func (t *latencyTracker) hedgeDelay(alg mst.Algorithm, bucket int, floor, ceil time.Duration) time.Duration {
	d, ok := t.tail(alg, bucket)
	if !ok || d < floor {
		return floor
	}
	if ceil > 0 && d > ceil {
		return ceil
	}
	return d
}
