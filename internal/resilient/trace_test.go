package resilient

import (
	"context"
	"testing"
	"time"

	"llpmst/internal/fault"
	"llpmst/internal/gen"
	"llpmst/internal/mst"
	"llpmst/internal/obs"
)

// waitTrace polls for a trace to seal: hedge-loser spans keep a trace open
// past Solve's return, so the seal lags the response by the loser's
// cancellation latency.
func waitTrace(t *testing.T, st *obs.TraceStore, id obs.TraceID) obs.TraceData {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if d, ok := st.Get(id); ok {
			return d
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("trace %v never sealed", id)
	return obs.TraceData{}
}

// TestHedgedSolvesEmitConsistentTraces drives the leak test's harness — a
// stalled primary forcing a hedge win on every solve — with a trace per
// request. The losing leg emits its span from a separate goroutine after
// the winner has already returned, which is exactly the concurrent-span
// scenario the packed trace state has to survive (run under -race in CI).
func TestHedgedSolvesEmitConsistentTraces(t *testing.T) {
	const solves = 200
	g := gen.ErdosRenyi(1, 300, 1200, gen.WeightUniform, 41)

	primary, backup := mst.AlgLLPBoruvka, mst.AlgLLPPrimAsync
	r := New(Config{
		Primary:    primary,
		Backup:     backup,
		Workers:    2,
		HedgeDelay: time.Millisecond,
		Chaos: &Chaos{
			Plan: fault.Plan{
				Seed: 42,
				Arcs: map[int64]fault.Probs{
					ChaosArc(primary): {Delay: 1, MaxDelay: 2},
				},
			},
			Unit: time.Second,
		},
	})
	st := obs.NewTraceStore(obs.TraceStoreConfig{
		Capacity: solves + 8, MaxActive: 64, SpanCap: 32, SlowWarmup: 1 << 30,
	})

	ids := make([]obs.TraceID, 0, solves)
	for i := 0; i < solves; i++ {
		root := st.StartTrace("solve", obs.TraceID{}, obs.SpanID{}, obs.FlagSampled)
		ctx := obs.ContextWithTrace(context.Background(), root.Ref())
		res, err := r.Solve(ctx, g)
		if err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
		if !res.Hedged || !res.HedgeWon {
			t.Fatalf("solve %d: want a hedge win, got %+v", i, res)
		}
		ids = append(ids, root.TraceID())
		root.Finish()
	}

	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := r.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	for i, id := range ids {
		d := waitTrace(t, st, id)
		var winners, losers, solveSpans int
		for _, sp := range d.Spans {
			switch sp.Name {
			case "resilient.solve":
				solveSpans++
				if sp.Attrs["winner"] != string(backup) {
					t.Fatalf("trace %d: solve span winner = %v, want %s", i, sp.Attrs["winner"], backup)
				}
				if sp.Attrs["hedged"] != int64(1) {
					t.Fatalf("trace %d: solve span not marked hedged: %v", i, sp.Attrs)
				}
			case "resilient.leg":
				switch sp.Attrs["leg"] {
				case "winner":
					winners++
					if sp.Attrs["alg"] != string(backup) {
						t.Fatalf("trace %d: winner leg alg = %v, want %s", i, sp.Attrs["alg"], backup)
					}
				case "loser":
					losers++
					if sp.Attrs["outcome"] != "cancelled" {
						t.Fatalf("trace %d: loser leg outcome = %v, want cancelled", i, sp.Attrs["outcome"])
					}
				default:
					t.Fatalf("trace %d: leg span with no winner/loser mark: %v", i, sp.Attrs)
				}
			}
		}
		if solveSpans != 1 || winners != 1 || losers != 1 {
			t.Fatalf("trace %d: solve=%d winner=%d loser=%d spans, want 1/1/1 (spans: %+v)",
				i, solveSpans, winners, losers, d.Spans)
		}
	}
}
