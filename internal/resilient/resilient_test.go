package resilient

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"llpmst/internal/fault"
	"llpmst/internal/gen"
	"llpmst/internal/graph"
	"llpmst/internal/mst"
	"llpmst/internal/obs"
	"llpmst/internal/par"
)

// fakeClock is an injectable breaker clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerTransitions(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(3, time.Second, clk.now)

	if ok, probe := b.allow(); !ok || probe {
		t.Fatal("closed breaker must allow without probing")
	}
	if b.record(false) || b.record(false) {
		t.Fatal("breaker tripped before the threshold")
	}
	if !b.record(false) {
		t.Fatal("third consecutive failure must trip the breaker")
	}
	if st, trips := b.snapshot(); st != BreakerOpen || trips != 1 {
		t.Fatalf("state %v trips %d after trip; want open/1", st, trips)
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("open breaker admitted a request before cooldown")
	}

	clk.advance(time.Second)
	ok, probe := b.allow()
	if !ok || !probe {
		t.Fatalf("cooldown elapsed: want one half-open probe, got ok=%v probe=%v", ok, probe)
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("second request admitted while a probe is in flight")
	}
	if b.record(true) {
		t.Fatal("probe success reported as a trip")
	}
	if st, _ := b.snapshot(); st != BreakerClosed {
		t.Fatalf("probe success left state %v; want closed", st)
	}

	// A success resets the consecutive-failure count.
	b.record(false)
	b.record(false)
	b.record(true)
	if b.record(false) || b.record(false) {
		t.Fatal("failure count not reset by success")
	}

	// Probe failure re-opens for a fresh cooldown.
	if !b.record(false) {
		t.Fatal("want trip")
	}
	clk.advance(time.Second)
	if ok, probe := b.allow(); !ok || !probe {
		t.Fatal("want probe after second cooldown")
	}
	if !b.record(false) {
		t.Fatal("probe failure must re-open (a trip)")
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("probe failure must restart the cooldown")
	}

	// abortProbe frees the slot with no outcome.
	clk.advance(time.Second)
	if ok, probe := b.allow(); !ok || !probe {
		t.Fatal("want probe")
	}
	b.abortProbe()
	if ok, probe := b.allow(); !ok || !probe {
		t.Fatal("aborted probe must free the half-open slot")
	}
}

func TestLatencyTrackerLearnsAndClamps(t *testing.T) {
	lt := newLatencyTracker()
	alg := mst.AlgLLPBoruvka
	if _, ok := lt.tail(alg, 10); ok {
		t.Fatal("tail with no samples")
	}
	if d := lt.hedgeDelay(alg, 10, time.Millisecond, time.Second); d != time.Millisecond {
		t.Fatalf("cold hedge delay %v; want the floor", d)
	}
	for i := 0; i < 20; i++ {
		lt.observe(alg, 10, 10*time.Millisecond)
	}
	tail, ok := lt.tail(alg, 10)
	if !ok {
		t.Fatal("no tail after 20 samples")
	}
	if tail < 9*time.Millisecond || tail > 30*time.Millisecond {
		t.Fatalf("tail %v implausible for a constant 10ms stream", tail)
	}
	if d := lt.hedgeDelay(alg, 10, time.Millisecond, 5*time.Millisecond); d != 5*time.Millisecond {
		t.Fatalf("hedge delay %v; want clamped to the 5ms ceiling", d)
	}
	// Other buckets and algorithms stay independent.
	if _, ok := lt.tail(alg, 11); ok {
		t.Fatal("bucket 11 contaminated")
	}
	if _, ok := lt.tail(mst.AlgLLPPrimAsync, 10); ok {
		t.Fatal("other algorithm contaminated")
	}
}

func TestAdmissionConcurrencyShed(t *testing.T) {
	a := newAdmission(2, 0)
	r1, err := a.admit(100, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.admit(100, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.admit(100, 100, 2)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third admit: %v; want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "concurrency" {
		t.Fatalf("want *OverloadError{concurrency}, got %#v", err)
	}
	r1()
	r1() // double release is a no-op, not a corrupted gate
	r3, err := a.admit(100, 100, 2)
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	r2()
	r3()
}

func TestAdmissionMemoryShed(t *testing.T) {
	n, m := 10_000, 50_000
	need := 2 * mst.EstimateScratchBytes(n, m, 4)
	a := newAdmission(0, need+need/2) // room for one request, not two
	r1, err := a.admit(n, m, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.admit(n, m, 4)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want memory shed, got %v", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "memory" || oe.BudgetBytes == 0 || oe.EstimatedBytes == 0 {
		t.Fatalf("bad overload detail: %#v", oe)
	}
	r1()
	r2, err := a.admit(n, m, 4)
	if err != nil {
		t.Fatalf("budget not returned on release: %v", err)
	}
	r2()
}

// oracle computes the Kruskal reference forest.
func oracle(t *testing.T, g *graph.CSR) *mst.Forest {
	t.Helper()
	f := mst.Kruskal(g)
	if err := mst.CheckForest(g, f); err != nil {
		t.Fatalf("kruskal oracle invalid: %v", err)
	}
	return f
}

// TestPickDensitySplit pins the auto portfolio's density heuristic: sparse
// graphs lead with LLP-Boruvka, dense with LLP-Prim-Async, and very dense
// (m >= 16n) with the semiring sparse-matrix backend; the backup always
// comes from the other family. Explicit configuration overrides all of it.
func TestPickDensitySplit(t *testing.T) {
	r := New(Config{})
	cases := []struct {
		name            string
		g               *graph.CSR
		primary, backup mst.Algorithm
	}{
		{"sparse", gen.ErdosRenyi(1, 400, 900, gen.WeightUniform, 3), mst.AlgLLPBoruvka, mst.AlgLLPPrimAsync},
		{"dense", gen.ErdosRenyi(1, 200, 1600, gen.WeightUniform, 4), mst.AlgLLPPrimAsync, mst.AlgLLPBoruvka},
		{"very-dense", gen.ErdosRenyi(1, 100, 3200, gen.WeightUniform, 5), mst.AlgSemiringBoruvka, mst.AlgLLPPrimAsync},
	}
	for _, tc := range cases {
		primary, backup := r.pick(tc.g, sizeBucket(tc.g))
		if primary != tc.primary || backup != tc.backup {
			t.Errorf("%s: pick = (%s, %s), want (%s, %s)", tc.name, primary, backup, tc.primary, tc.backup)
		}
	}
	cfg := New(Config{Primary: mst.AlgKruskal, Backup: mst.AlgPrim})
	if primary, backup := cfg.pick(cases[2].g, 0); primary != mst.AlgKruskal || backup != mst.AlgPrim {
		t.Errorf("configured pick = (%s, %s), want (kruskal, prim)", primary, backup)
	}
}

func TestSolveMatchesKruskalAcrossShapes(t *testing.T) {
	r := New(Config{Workers: 2, VerifyRate: 1})
	graphs := []*graph.CSR{
		gen.ErdosRenyi(1, 400, 900, gen.WeightUniform, 3),  // sparse
		gen.ErdosRenyi(1, 120, 2400, gen.WeightUniform, 4), // dense
		gen.RoadNetwork(1, 14, 14, 0.2, 5),                 // grid-ish
		graph.MustFromEdges(1, 5, nil),                     // edgeless
		gen.ErdosRenyi(1, 300, 80, gen.WeightInteger, 6),   // disconnected
	}
	for i, g := range graphs {
		want := oracle(t, g)
		res, err := r.Solve(context.Background(), g)
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		if !res.Forest.Equal(want) {
			t.Fatalf("graph %d: forest differs from oracle", i)
		}
		if !res.Verified {
			t.Fatalf("graph %d: VerifyRate=1 but result not verified", i)
		}
		if res.FallbackUsed {
			t.Fatalf("graph %d: healthy portfolio used the fallback", i)
		}
	}
	if st := r.Stats(); st.Solves != int64(len(graphs)) || st.Shed != 0 {
		t.Fatalf("stats %+v", st)
	}
	if err := r.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestSolveShedsAtConcurrencyLimit(t *testing.T) {
	r := New(Config{MaxConcurrent: 1, Workers: 1})
	release, err := r.adm.admit(10, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	g := gen.ErdosRenyi(1, 50, 100, gen.WeightUniform, 7)
	_, err = r.Solve(context.Background(), g)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if st := r.Stats(); st.Shed != 1 {
		t.Fatalf("shed not counted: %+v", st)
	}
	release()
	if _, err := r.Solve(context.Background(), g); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestSolveShedsOverMemoryBudget(t *testing.T) {
	g := gen.ErdosRenyi(1, 2000, 8000, gen.WeightUniform, 8)
	need := 2 * mst.EstimateScratchBytes(g.NumVertices(), g.NumEdges(), 1)
	r := New(Config{Workers: 1, MemoryBudgetBytes: need / 2})
	_, err := r.Solve(context.Background(), g)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "memory" {
		t.Fatalf("want memory overload, got %v", err)
	}
	small := gen.ErdosRenyi(1, 20, 40, gen.WeightUniform, 9)
	if _, err := r.Solve(context.Background(), small); err != nil {
		t.Fatalf("small request must still fit: %v", err)
	}
}

func TestSolvePreCancelledContext(t *testing.T) {
	r := New(Config{Workers: 2})
	g := gen.ErdosRenyi(1, 200, 600, gen.WeightUniform, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.Solve(ctx, g)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
}

func TestSolveVerifySamplingStride(t *testing.T) {
	r := New(Config{VerifyRate: 0.25})
	hits := 0
	for i := 0; i < 100; i++ {
		if r.shouldVerify() {
			hits++
		}
	}
	if hits != 25 {
		t.Fatalf("VerifyRate=0.25 verified %d/100 solves; want exactly 25 (deterministic stride)", hits)
	}
	if New(Config{}).shouldVerify() {
		t.Fatal("VerifyRate=0 must never verify")
	}
}

// TestChaosAcceptance is the PR's acceptance scenario: a fault plan that
// panics the primary algorithm 100% of the time and delays the backup.
// RunResilient must still return a CheckForest-clean, weight-correct forest
// within the request deadline, and the breaker trips must be visible
// through the flight recorder's Prometheus export.
func TestChaosAcceptance(t *testing.T) {
	flight := obs.NewFlightRecorder(0, 0)
	primary, backup := mst.AlgLLPBoruvka, mst.AlgLLPPrimAsync
	cfg := Config{
		Primary:          primary,
		Backup:           backup,
		Workers:          2,
		HedgeDelay:       time.Millisecond,
		BreakerTripAfter: 2,
		BreakerCooldown:  time.Minute,
		Observer:         flight,
		VerifyRate:       1,
		Chaos: &Chaos{
			Unit: time.Millisecond,
			Plan: fault.Plan{
				Seed: 42,
				Arcs: map[int64]fault.Probs{
					ChaosArc(primary): {Drop: 1},               // every primary leg panics
					ChaosArc(backup):  {Delay: 1, MaxDelay: 3}, // backup stalls 1-3ms first
				},
			},
		},
	}
	r := New(cfg)
	g := gen.ErdosRenyi(1, 800, 3200, gen.WeightUniform, 11)
	want := oracle(t, g)

	for i := 0; i < 6; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		start := time.Now()
		res, err := r.Solve(ctx, g)
		elapsed := time.Since(start)
		cancel()
		if err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
		if elapsed > 5*time.Second {
			t.Fatalf("solve %d blew the deadline: %v", i, elapsed)
		}
		if !res.Forest.Equal(want) || res.Forest.Weight != want.Weight {
			t.Fatalf("solve %d: wrong forest", i)
		}
		if err := mst.CheckForest(g, res.Forest); err != nil {
			t.Fatalf("solve %d: unsound forest: %v", i, err)
		}
		if res.Algorithm != backup && res.Algorithm != mst.AlgKruskal {
			t.Fatalf("solve %d: returned by %s; the panicking primary cannot win", i, res.Algorithm)
		}
	}
	if err := r.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	st := r.Stats()
	if st.BreakerTrips == 0 {
		t.Fatalf("primary panicked every run but never tripped: %+v", st)
	}
	var open bool
	for _, bs := range r.Breakers() {
		if bs.Algorithm == primary && bs.State != BreakerClosed && bs.Trips > 0 {
			open = true
		}
	}
	if !open {
		t.Fatalf("primary breaker not open: %+v", r.Breakers())
	}

	var sb strings.Builder
	if err := flight.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	metrics := sb.String()
	if !strings.Contains(metrics, `counter="breaker.open"`) {
		t.Fatalf("/metrics payload does not report breaker.open trips:\n%s", metrics)
	}
	if !strings.Contains(metrics, `llpmst_events_total`) {
		t.Fatalf("no event counters in /metrics payload:\n%s", metrics)
	}
}

// TestHedgeSlowPrimaryBackupWins forces a slow (but healthy) primary and
// checks the hedge path end to end: the backup launches after the hedge
// delay, wins, the loser observes its cancellation, and stats agree.
func TestHedgeSlowPrimaryBackupWins(t *testing.T) {
	primary, backup := mst.AlgLLPBoruvka, mst.AlgParallelBoruvka
	r := New(Config{
		Primary:    primary,
		Backup:     backup,
		Workers:    2,
		HedgeDelay: time.Millisecond,
		Chaos: &Chaos{
			Unit: 20 * time.Millisecond,
			Plan: fault.Plan{
				Seed: 7,
				Arcs: map[int64]fault.Probs{
					ChaosArc(primary): {Delay: 1, MaxDelay: 1}, // primary stalls 20ms
				},
			},
		},
	})
	g := gen.ErdosRenyi(1, 500, 2000, gen.WeightUniform, 12)
	want := oracle(t, g)
	res, err := r.Solve(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Forest.Equal(want) {
		t.Fatal("wrong forest")
	}
	if !res.Hedged || !res.HedgeWon || res.Algorithm != backup {
		t.Fatalf("want a hedge win by %s, got %+v", backup, res)
	}
	if err := r.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.HedgesLaunched != 1 || st.HedgeWins != 1 {
		t.Fatalf("hedge stats wrong: %+v", st)
	}
	if st.LosersCancelled+st.LosersCompleted != 1 {
		t.Fatalf("the losing primary was neither cancelled nor completed: %+v", st)
	}
}

// TestSolveDeadlineExhaustedTypedError pins the failure contract when
// nothing can answer in time: a typed error wrapping DeadlineExceeded, no
// partial forest.
func TestSolveDeadlineExhaustedTypedError(t *testing.T) {
	r := New(Config{
		Workers: 2,
		Chaos: &Chaos{
			Unit: time.Second,
			Plan: fault.Plan{Seed: 1, Default: fault.Probs{Delay: 1, MaxDelay: 5}}, // stall every leg for seconds
		},
	})
	g := gen.ErdosRenyi(1, 300, 900, gen.WeightUniform, 13)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	res, err := r.Solve(ctx, g)
	if err == nil {
		t.Fatalf("want deadline error, got result %+v", res)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap DeadlineExceeded", err)
	}
	if res.Forest != nil {
		t.Fatal("failed solve leaked a partial forest")
	}
	if err := r.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestFallbackWhenPortfolioPanics opens every portfolio breaker by
// panicking both algorithms; the solve must still be answered — by Kruskal.
func TestFallbackWhenPortfolioPanics(t *testing.T) {
	r := New(Config{
		Primary:          mst.AlgLLPBoruvka,
		Backup:           mst.AlgLLPPrimAsync,
		Workers:          2,
		BreakerTripAfter: 2,
		BreakerCooldown:  time.Minute,
		Chaos: &Chaos{
			Unit: time.Millisecond,
			Plan: fault.Plan{Seed: 3, Default: fault.Probs{Drop: 1}}, // every leg panics
		},
	})
	g := gen.ErdosRenyi(1, 400, 1200, gen.WeightUniform, 14)
	want := oracle(t, g)
	for i := 0; i < 4; i++ {
		res, err := r.Solve(context.Background(), g)
		if err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
		if !res.Forest.Equal(want) {
			t.Fatalf("solve %d: wrong forest", i)
		}
		if !res.FallbackUsed || res.Algorithm != mst.AlgKruskal {
			t.Fatalf("solve %d: want kruskal fallback, got %+v", i, res)
		}
	}
	if err := r.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.FallbacksUsed != 4 || st.BreakerTrips == 0 {
		t.Fatalf("stats %+v", st)
	}
	// A panic error must surface as par.PanicError through the leg plumbing.
	results := make(chan legOutcome, 1)
	var decided atomic.Bool
	r.wg.Add(1)
	go r.runLeg(context.Background(), obs.Nop{}, obs.TraceRef{}, g, mst.AlgLLPBoruvka, sizeBucket(g), false, false, &decided, results)
	out := <-results
	var pe *par.PanicError
	if out.err == nil || !errors.As(out.err, &pe) {
		t.Fatalf("chaos panic not surfaced as *par.PanicError: %v", out.err)
	}
}
