package mst

import (
	"llpmst/internal/graph"
	"llpmst/internal/par"
)

// Boruvka implements Algorithm 3 literally: in each round, label the
// connected components of (V, T) with a BFS from the least-numbered
// unvisited vertex, scan all edges to find the minimum-weight outgoing edge
// (mwe) of every component, add all mwe's to T, and repeat until no
// component has an outgoing edge. Handles disconnected inputs (the minimum
// spanning forest) out of the box, as the paper notes.
func Boruvka(g *graph.CSR) *Forest { return boruvka(g, nil) }

func boruvka(g *graph.CSR, mtr *WorkMetrics) *Forest {
	n := g.NumVertices()
	var rounds int64
	m := g.NumEdges()
	edges := g.Edges()
	inT := make([]bool, m)
	ids := make([]uint32, 0, n)
	cid := make([]uint32, n)
	best := make([]uint64, n)
	// Adjacency of the tree subgraph (rebuilt each round for the BFS).
	tAdj := make([][]uint32, n)
	queue := make([]uint32, 0, n)

	for {
		rounds++
		// BFS component labelling over (V, T).
		for v := range tAdj {
			tAdj[v] = tAdj[v][:0]
		}
		for _, id := range ids {
			e := edges[id]
			tAdj[e.U] = append(tAdj[e.U], e.V)
			tAdj[e.V] = append(tAdj[e.V], e.U)
		}
		const unvisited = ^uint32(0)
		for i := range cid {
			cid[i] = unvisited
		}
		for i := 0; i < n; i++ {
			if cid[i] != unvisited {
				continue
			}
			root := uint32(i)
			cid[i] = root
			queue = append(queue[:0], root)
			for len(queue) > 0 {
				v := queue[len(queue)-1]
				queue = queue[:len(queue)-1]
				for _, t := range tAdj[v] {
					if cid[t] == unvisited {
						cid[t] = root
						queue = append(queue, t)
					}
				}
			}
		}
		// Minimum outgoing edge per component.
		for i := range best {
			best[i] = par.InfKey
		}
		for id := range edges {
			e := &edges[id]
			cu, cv := cid[e.U], cid[e.V]
			if cu == cv {
				continue
			}
			key := par.PackKey(e.W, uint32(id))
			if key < best[cu] {
				best[cu] = key
			}
			if key < best[cv] {
				best[cv] = key
			}
		}
		// Add the mwe's (an edge can be the mwe of both sides; inT dedups).
		added := false
		for i := 0; i < n; i++ {
			if uint32(i) != cid[i] || best[i] == par.InfKey {
				continue
			}
			id := par.KeyID(best[i])
			if !inT[id] {
				inT[id] = true
				ids = append(ids, id)
				added = true
			}
		}
		if !added {
			if mtr != nil {
				*mtr = WorkMetrics{Rounds: rounds}
			}
			return newForest(g, ids)
		}
	}
}
