package mst

import (
	"context"
	"fmt"

	"llpmst/internal/graph"
	"llpmst/internal/obs"
	"llpmst/internal/par"
)

// Cancellation protocol shared by the parallel algorithms.
//
// Every algorithm that takes Options polls opts.Ctx cooperatively — at
// phase boundaries with Canceller.Poll and inside per-edge/per-vertex loops
// with the strided Canceller.Stride — and, when cancelled, stops and
// returns the forest built so far together with the context's error.
//
// The partial forest is always structurally sound (a subset of MSF edge
// choices made from fully completed phases: a phase whose writes were only
// partially applied is never consumed, because the poll between phases
// aborts first), but it is of course not spanning. Callers distinguish the
// cases by the error: nil error means the complete canonical MSF.

// interrupted wraps a cancellation error with the algorithm name and how
// far the run got, preserving errors.Is(err, context.Canceled /
// DeadlineExceeded) through %w.
func interrupted(alg Algorithm, cc *par.Canceller, have, want int) error {
	err := cc.Err()
	if err == nil {
		// Poll observed Done but Err is read on a racing path; fall back to
		// the canonical error rather than fabricating one.
		err = context.Canceled
	}
	return fmt.Errorf("mst: %s interrupted with %d/%d forest edges chosen: %w", alg, have, want, err)
}

// ctxErr returns ctx's error, tolerating a nil ctx.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// canceller builds the run's Canceller from Options (inert when no context
// is configured).
func (o Options) canceller() *par.Canceller { return par.NewCanceller(o.Ctx) }

// collector resolves the run's Collector: the explicit Options.Observer if
// set, else one carried by Options.Ctx, else the free no-op.
func (o Options) collector() obs.Collector {
	if o.Observer != nil {
		return o.Observer
	}
	return obs.FromContext(o.Ctx)
}

// RunCtx is Run under ctx: the context is installed into opts (overriding
// any Options.Ctx already set) and cancellation surfaces as a partial
// forest plus a non-nil error wrapping ctx.Err(). A pre-cancelled context
// returns before any work is done.
func RunCtx(ctx context.Context, alg Algorithm, g *graph.CSR, opts Options) (*Forest, error) {
	if ctx != nil {
		opts.Ctx = ctx
	}
	return Run(alg, g, opts)
}
