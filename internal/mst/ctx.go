package mst

import (
	"context"
	"fmt"
	"slices"

	"llpmst/internal/graph"
	"llpmst/internal/obs"
	"llpmst/internal/par"
)

// Cancellation protocol shared by the parallel algorithms.
//
// Every algorithm that takes Options polls opts.Ctx cooperatively — at
// phase boundaries with Canceller.Poll and inside per-edge/per-vertex loops
// with the strided Canceller.Stride — and, when cancelled, stops and
// returns the forest built so far together with the context's error.
//
// The partial forest is always structurally sound (a subset of MSF edge
// choices made from fully completed phases: a phase whose writes were only
// partially applied is never consumed, because the poll between phases
// aborts first), but it is of course not spanning. Callers distinguish the
// cases by the error: nil error means the complete canonical MSF.

// Panic protocol, mirroring the cancellation protocol.
//
// The parallel runtime (internal/par, internal/sched) recovers worker
// panics, drains the remaining workers, and re-raises the first panic as a
// *par.PanicError on the algorithm goroutine (or returns it as an error
// from the scheduler's Obs/Ctx entry points). Each of the five parallel
// algorithms converts that into an ordinary error with recoverPanic: the
// caller gets the partial forest built so far plus an error wrapping the
// *par.PanicError (reachable via errors.As), and the process survives.
//
// The partial forest is sound for the same reason as under cancellation:
// edges enter ids either individually justified (CAS-won minimum-weight
// edges, heap-popped minimum cut edges) or in batches consumed only after
// the phase that produced them completed — and the runtime re-raises a
// phase's panic before its results are assigned.

// panicked wraps a recovered worker panic with the algorithm name and how
// far the run got, preserving errors.As(err, **par.PanicError) through %w.
func panicked(alg Algorithm, pe *par.PanicError, have, want int) error {
	return fmt.Errorf("mst: %s aborted by worker panic with %d/%d forest edges chosen: %w", alg, have, want, pe)
}

// recoverPanic is the deferred panic-to-error conversion shared by the
// parallel algorithms. It must be registered before any defer that can
// panic (e.g. a span end) — only the workspace release defer, which must
// outlive it because ids points into workspace memory, comes earlier.
// f/err must point at the algorithm's named results. ids points at the
// slice of individually sound edge choices accumulated so far; it is
// cloned, never retained, so the forest stays valid after the workspace is
// reused.
func recoverPanic(alg Algorithm, g *graph.CSR, ids *[]uint32, want int, f **Forest, err *error) {
	r := recover()
	if r == nil {
		return
	}
	pe := par.AsPanicError(r, -1)
	*f = newForest(g, slices.Clone(*ids))
	*err = panicked(alg, pe, len(*ids), want)
}

// interrupted wraps a cancellation error with the algorithm name and how
// far the run got, preserving errors.Is(err, context.Canceled /
// DeadlineExceeded) through %w.
func interrupted(alg Algorithm, cc *par.Canceller, have, want int) error {
	err := cc.Err()
	if err == nil {
		// Poll observed Done but Err is read on a racing path; fall back to
		// the canonical error rather than fabricating one.
		err = context.Canceled
	}
	return fmt.Errorf("mst: %s interrupted with %d/%d forest edges chosen: %w", alg, have, want, err)
}

// ctxErr returns ctx's error, tolerating a nil ctx.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// canceller builds the run's Canceller from Options (inert when no context
// is configured).
func (o Options) canceller() *par.Canceller { return par.NewCanceller(o.Ctx) }

// collector resolves the run's Collector: the explicit Options.Observer if
// set, else one carried by Options.Ctx, else the free no-op.
func (o Options) collector() obs.Collector {
	if o.Observer != nil {
		return o.Observer
	}
	return obs.FromContext(o.Ctx)
}

// RunCtx is Run under ctx: the context is installed into opts (overriding
// any Options.Ctx already set) and cancellation surfaces as a partial
// forest plus a non-nil error wrapping ctx.Err(). A pre-cancelled context
// returns before any work is done.
func RunCtx(ctx context.Context, alg Algorithm, g *graph.CSR, opts Options) (*Forest, error) {
	if ctx != nil {
		opts.Ctx = ctx
	}
	return Run(alg, g, opts)
}
