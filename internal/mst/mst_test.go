package mst

import (
	"math/rand"
	"slices"
	"testing"

	"llpmst/internal/gen"
	"llpmst/internal/graph"
	"llpmst/internal/llp"
)

// runAll runs every algorithm on g and returns the forests keyed by name.
func runAll(t *testing.T, g *graph.CSR, opts Options) map[Algorithm]*Forest {
	t.Helper()
	out := make(map[Algorithm]*Forest)
	for _, alg := range Algorithms() {
		f, err := Run(alg, g, opts)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		out[alg] = f
	}
	out["prim-pairing"] = PrimPairing(g)
	return out
}

// requireAllEqualAndValid cross-checks every produced forest against the
// Kruskal oracle and the structural verifier.
func requireAllEqualAndValid(t *testing.T, g *graph.CSR, forests map[Algorithm]*Forest) {
	t.Helper()
	oracle := forests[AlgKruskal]
	if err := CheckForest(g, oracle); err != nil {
		t.Fatalf("kruskal oracle invalid: %v", err)
	}
	for alg, f := range forests {
		if err := CheckForest(g, f); err != nil {
			t.Errorf("%s: invalid forest: %v", alg, err)
			continue
		}
		if !f.Equal(oracle) {
			t.Errorf("%s: edge set differs from kruskal oracle (%d vs %d edges, weight %g vs %g)",
				alg, len(f.EdgeIDs), len(oracle.EdgeIDs), f.Weight, oracle.Weight)
		}
	}
}

func TestPaperFigure1AllAlgorithms(t *testing.T) {
	g := gen.PaperFigure1()
	forests := runAll(t, g, Options{Workers: 2})
	requireAllEqualAndValid(t, g, forests)
	f := forests[AlgLLPPrim]
	// The paper's MST is the edges with weights {2, 3, 4, 7}, total 16.
	if f.Weight != 16 {
		t.Fatalf("MST weight %g, want 16", f.Weight)
	}
	var weights []float32
	for _, id := range f.EdgeIDs {
		weights = append(weights, g.Edge(id).W)
	}
	slices.Sort(weights)
	if !slices.Equal(weights, []float32{2, 3, 4, 7}) {
		t.Fatalf("MST edge weights %v, want [2 3 4 7]", weights)
	}
	if err := VerifyMinimum(g, f); err != nil {
		t.Fatal(err)
	}
}

func TestAllAlgorithmsOnGeneratorZoo(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.CSR
	}{
		{"rmat", gen.RMAT(1, 9, 8, gen.WeightUniform, 1)},
		{"rmat-int-weights", gen.RMAT(1, 8, 8, gen.WeightInteger, 2)},
		{"road", gen.RoadNetwork(1, 24, 24, 0.25, 3)},
		{"road-tree", gen.RoadNetwork(1, 16, 16, 0, 4)},
		{"er", gen.ErdosRenyi(1, 400, 2000, gen.WeightUniform, 5)},
		{"er-ties", gen.ErdosRenyi(1, 300, 3000, gen.WeightInteger, 6)},
		{"geometric", gen.Geometric(1, 500, 2*gen.ConnectivityRadius(500), 7)},
		{"cycle", gen.Cycle(50, 8)},
		{"star", gen.Star(64)},
		{"complete", gen.Complete(24, 9)},
		{"caterpillar", gen.Caterpillar(20, 4, 10)},
		{"binary-tree", gen.BinaryTree(127, 11)},
		{"disconnected", gen.Disconnected(5, 30, 12)},
		{"path", gen.Path(100, nil)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			forests := runAll(t, tc.g, Options{Workers: 4})
			requireAllEqualAndValid(t, tc.g, forests)
			if err := VerifyMinimum(tc.g, forests[AlgKruskal]); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDegenerateGraphs(t *testing.T) {
	empty := graph.MustFromEdges(1, 0, nil)
	single := graph.MustFromEdges(1, 1, nil)
	isolated := graph.MustFromEdges(1, 7, nil)
	twoVerts := graph.MustFromEdges(1, 2, []graph.Edge{{U: 0, V: 1, W: 3}})
	multi := graph.MustFromEdges(1, 2, []graph.Edge{{U: 0, V: 1, W: 3}, {U: 0, V: 1, W: 1}, {U: 1, V: 0, W: 2}})
	for _, tc := range []struct {
		name  string
		g     *graph.CSR
		edges int
	}{
		{"empty", empty, 0},
		{"single-vertex", single, 0},
		{"isolated-vertices", isolated, 0},
		{"one-edge", twoVerts, 1},
		{"parallel-edges", multi, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, alg := range Algorithms() {
				f, err := Run(alg, tc.g, Options{Workers: 3})
				if err != nil {
					t.Fatalf("%s: %v", alg, err)
				}
				if len(f.EdgeIDs) != tc.edges {
					t.Fatalf("%s: %d edges, want %d", alg, len(f.EdgeIDs), tc.edges)
				}
				if err := CheckForest(tc.g, f); err != nil {
					t.Fatalf("%s: %v", alg, err)
				}
			}
		})
	}
	// The parallel-edge MST must pick the weight-1 edge.
	f := Kruskal(multi)
	if multi.Edge(f.EdgeIDs[0]).W != 1 {
		t.Fatalf("picked weight %v, want 1", multi.Edge(f.EdgeIDs[0]).W)
	}
}

func TestTieBreakingIsCanonical(t *testing.T) {
	// All weights equal: the MSF must consist of the lowest edge ids that
	// form a forest, because ties break by edge id.
	edges := []graph.Edge{
		{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 5}, {U: 2, V: 0, W: 5},
		{U: 2, V: 3, W: 5}, {U: 3, V: 0, W: 5},
	}
	g := graph.MustFromEdges(1, 4, edges)
	want := []uint32{0, 1, 3} // ids 0,1 span {0,1,2}; id 2 closes a cycle; id 3 adds vertex 3
	forests := runAll(t, g, Options{Workers: 2})
	for alg, f := range forests {
		if !slices.Equal(f.EdgeIDs, want) {
			t.Errorf("%s: edge ids %v, want %v", alg, f.EdgeIDs, want)
		}
	}
}

func TestRandomGraphsPropertyAllAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(120)
		m := rng.Intn(4 * n)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			w := float32(rng.Intn(20)) // heavy ties on purpose
			edges = append(edges, graph.Edge{
				U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n)), W: w,
			})
		}
		g := graph.MustFromEdges(1, n, edges)
		oracle := Kruskal(g)
		if err := VerifyMinimum(g, oracle); err != nil {
			t.Fatalf("trial %d: oracle not minimal: %v", trial, err)
		}
		opts := Options{Workers: 1 + rng.Intn(4)}
		for _, alg := range Algorithms() {
			f, err := Run(alg, g, opts)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg, err)
			}
			if !f.Equal(oracle) {
				t.Fatalf("trial %d: %s differs from oracle (n=%d m=%d)", trial, alg, n, g.NumEdges())
			}
		}
	}
}

func TestLLPPrimAblations(t *testing.T) {
	g := gen.RMAT(1, 9, 8, gen.WeightUniform, 21)
	oracle := Kruskal(g)
	for _, opts := range []Options{
		{NoEarlyFix: true},
		{NoStaging: true},
		{NoEarlyFix: true, NoStaging: true},
		{Workers: 4, NoEarlyFix: true},
		{Workers: 4, NoStaging: true},
	} {
		if f := must(LLPPrim(g, opts)); !f.Equal(oracle) {
			t.Fatalf("sequential ablation %+v broke correctness", opts)
		}
		if f := must(LLPPrimParallel(g, opts)); !f.Equal(oracle) {
			t.Fatalf("parallel ablation %+v broke correctness", opts)
		}
	}
}

func TestLLPBoruvkaJumpModes(t *testing.T) {
	g := gen.RoadNetwork(1, 32, 32, 0.3, 31)
	oracle := Kruskal(g)
	for _, mode := range []llp.Mode{llp.ModeAsync, llp.ModeRound, llp.ModeSequential} {
		f := must(LLPBoruvka(g, Options{Workers: 4, JumpMode: mode}))
		if !f.Equal(oracle) {
			t.Fatalf("jump mode %v broke correctness", mode)
		}
	}
}

func TestParallelAlgorithmsManyWorkerCounts(t *testing.T) {
	g := gen.ErdosRenyi(1, 1000, 8000, gen.WeightUniform, 41)
	oracle := Kruskal(g)
	for _, w := range []int{1, 2, 3, 8, 16} {
		opts := Options{Workers: w}
		for _, alg := range []Algorithm{AlgLLPPrimParallel, AlgParallelBoruvka, AlgLLPBoruvka, AlgFilterKruskal} {
			f, err := Run(alg, g, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !f.Equal(oracle) {
				t.Fatalf("%s with %d workers differs from oracle", alg, w)
			}
		}
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	if _, err := Run("nope", gen.Star(3), Options{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestForestAccessors(t *testing.T) {
	g := gen.PaperFigure1()
	f := Prim(g)
	if !f.Spanning() {
		t.Fatal("MST of connected graph should span")
	}
	if f.String() == "" {
		t.Fatal("empty String()")
	}
	d := gen.Disconnected(3, 5, 1)
	fd := Prim(d)
	if fd.Spanning() || fd.Trees != 3 {
		t.Fatalf("disconnected forest: trees=%d spanning=%v", fd.Trees, fd.Spanning())
	}
}

func TestMinWeightEdges(t *testing.T) {
	g := gen.PaperFigure1()
	mwe := minWeightEdges(2, g)
	// Per the paper's table: min incident weights are a:4 b:3 c:3 d:2 e:2.
	want := []float32{4, 3, 3, 2, 2}
	for v, key := range mwe {
		w := g.Edge(keyID(key)).W
		if w != want[v] {
			t.Fatalf("mwe[%d] weight %v, want %v", v, w, want[v])
		}
	}
	iso := graph.MustFromEdges(1, 3, []graph.Edge{{U: 0, V: 1, W: 1}})
	m2 := minWeightEdges(1, iso)
	if m2[2] != ^uint64(0) {
		t.Fatal("isolated vertex should have InfKey mwe")
	}
}

func keyID(k uint64) uint32 { return uint32(k) }
