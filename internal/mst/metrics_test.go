package mst

import (
	"strings"
	"testing"

	"llpmst/internal/gen"
	"llpmst/internal/graph"
)

// TestLLPPrimDoesLessHeapWorkThanPrim checks the paper's central mechanism
// claim for LLP-Prim (§V.A / abstract): it "reduces the number of heap
// operations required by Prim by allowing edges to be selected without
// entering the heap". This is the machine-independent form of Fig. 2.
func TestLLPPrimDoesLessHeapWorkThanPrim(t *testing.T) {
	graphs := map[string]*graph.CSR{
		"road": gen.RoadNetwork(1, 64, 64, 0.2, 1),
		"rmat": gen.RMAT(1, 11, 16, gen.WeightUniform, 1),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			var prim, llpPrim WorkMetrics
			if _, err := Run(AlgPrim, g, Options{Metrics: &prim}); err != nil {
				t.Fatal(err)
			}
			LLPPrim(g, Options{Metrics: &llpPrim})
			if llpPrim.EarlyFixes == 0 {
				t.Fatal("LLP-Prim performed no early fixes")
			}
			if llpPrim.HeapOps() >= prim.HeapOps() {
				t.Fatalf("LLP-Prim heap ops %d not below Prim's %d", llpPrim.HeapOps(), prim.HeapOps())
			}
			// Every fixed vertex is fixed exactly once, one way or the other.
			fixes := llpPrim.EarlyFixes + llpPrim.HeapFixes
			comps := g.NumVertices() - int(fixes)
			if comps < 1 {
				t.Fatalf("fix count %d exceeds n-1", fixes)
			}
			t.Logf("%s: prim heap ops=%d, llp-prim heap ops=%d (early fixes=%d, %0.f%% of vertices)",
				name, prim.HeapOps(), llpPrim.HeapOps(), llpPrim.EarlyFixes,
				100*float64(llpPrim.EarlyFixes)/float64(g.NumVertices()))
		})
	}
}

func TestAblationCountersRespond(t *testing.T) {
	g := gen.RoadNetwork(1, 48, 48, 0.2, 3)
	var full, noEarly, noStaging WorkMetrics
	LLPPrim(g, Options{Metrics: &full})
	LLPPrim(g, Options{NoEarlyFix: true, Metrics: &noEarly})
	LLPPrim(g, Options{NoStaging: true, Metrics: &noStaging})

	if noEarly.EarlyFixes != 0 {
		t.Fatal("NoEarlyFix still early-fixed")
	}
	if noEarly.HeapOps() <= full.HeapOps() {
		t.Fatalf("disabling early fix should raise heap traffic: %d vs %d",
			noEarly.HeapOps(), full.HeapOps())
	}
	// Without staging, every relaxation becomes a push; with staging,
	// pushes are at most one per vertex per R-drain epoch.
	if noStaging.HeapPushes < full.HeapPushes {
		t.Fatalf("disabling staging should not reduce pushes: %d vs %d",
			noStaging.HeapPushes, full.HeapPushes)
	}
}

func TestParallelLLPPrimCounters(t *testing.T) {
	g := gen.RMAT(1, 10, 8, gen.WeightUniform, 5)
	var m WorkMetrics
	LLPPrimParallel(g, Options{Workers: 4, Metrics: &m})
	if m.EarlyFixes == 0 {
		t.Fatal("no early fixes recorded")
	}
	oracle := Kruskal(g)
	if int(m.EarlyFixes+m.HeapFixes) != len(oracle.EdgeIDs) {
		t.Fatalf("fixes %d+%d != tree edges %d", m.EarlyFixes, m.HeapFixes, len(oracle.EdgeIDs))
	}
}

func TestBoruvkaFamilyRoundCounters(t *testing.T) {
	g := gen.RoadNetwork(1, 64, 64, 0.2, 7)
	var seq, par, llpB WorkMetrics
	if _, err := Run(AlgBoruvka, g, Options{Metrics: &seq}); err != nil {
		t.Fatal(err)
	}
	ParallelBoruvka(g, Options{Workers: 4, Metrics: &par})
	LLPBoruvka(g, Options{Workers: 4, Metrics: &llpB})
	// Boruvka halves (at least) the component count per round: <= log2(n)+1
	// rounds, and at least 2 for any nontrivial graph.
	n := g.NumVertices()
	maxRounds := int64(2)
	for 1<<maxRounds < n {
		maxRounds++
	}
	for name, m := range map[string]*WorkMetrics{"boruvka": &seq, "boruvka-par": &par, "llp-boruvka": &llpB} {
		if m.Rounds < 2 || m.Rounds > maxRounds {
			t.Fatalf("%s: %d rounds outside [2, %d]", name, m.Rounds, maxRounds)
		}
	}
	if llpB.JumpAdvances == 0 || llpB.JumpRounds == 0 {
		t.Fatal("LLP-Boruvka recorded no pointer jumping")
	}
	if par.Unions != int64(n-1) {
		t.Fatalf("parallel boruvka unions %d, want %d", par.Unions, n-1)
	}
}

func TestKruskalCounters(t *testing.T) {
	g := gen.Complete(20, 3)
	var m WorkMetrics
	if _, err := Run(AlgKruskal, g, Options{Metrics: &m}); err != nil {
		t.Fatal(err)
	}
	if m.Unions != 19 || m.Rounds != 1 {
		t.Fatalf("kruskal metrics %+v", m)
	}
}

func TestWorkMetricsAddAndString(t *testing.T) {
	a := WorkMetrics{HeapPushes: 1, HeapPops: 2, StalePops: 3, EarlyFixes: 4,
		HeapFixes: 5, Relaxations: 6, Rounds: 7, JumpRounds: 8, JumpAdvances: 9, Unions: 10}
	b := a
	b.Add(a)
	if b.HeapPushes != 2 || b.Unions != 20 || b.JumpAdvances != 18 {
		t.Fatalf("Add wrong: %+v", b)
	}
	if a.HeapOps() != 3 {
		t.Fatalf("HeapOps = %d", a.HeapOps())
	}
	s := a.String()
	for _, frag := range []string{"push=1", "earlyFix=4", "unions=10"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String missing %q: %s", frag, s)
		}
	}
}
