package mst

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"llpmst/internal/graph"
)

// stressGraph draws one random graph from a seeded morphology family. The
// families deliberately cover the structural hazards of the parallel
// algorithms: sparse graphs (deep trees, long pointer-jumping chains),
// dense graphs (write-min contention), disconnected graphs (per-component
// restarts), and multigraphs (parallel edges and self-loop-adjacent
// tie-breaks on packed keys).
func stressGraph(family string, seed int64) *graph.CSR {
	rng := rand.New(rand.NewSource(seed))
	var n, m int
	switch family {
	case "sparse":
		n = 50 + rng.Intn(250)
		m = n + rng.Intn(n/2+1) // barely above a tree
	case "dense":
		n = 30 + rng.Intn(90)
		m = n * (3 + rng.Intn(6))
	case "disconnected":
		n = 100 + rng.Intn(200)
		m = n / 2 // far below connectivity
	default: // "multi": few vertices, many parallel edges and ties
		n = 5 + rng.Intn(20)
		m = n * 10
	}
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if u == v {
			continue // self-loops are dropped by the builder anyway
		}
		var w float32
		if family == "multi" {
			w = float32(rng.Intn(4)) // heavy ties: exercises canonical keys
		} else {
			w = rng.Float32() * 100
		}
		edges = append(edges, graph.Edge{U: u, V: v, W: w})
	}
	return graph.MustFromEdges(1, n, edges)
}

// TestStressDifferentialAllAlgorithms is the differential stress suite: 50
// seeded random graphs across four morphology families, every algorithm at
// worker counts {1, 2, GOMAXPROCS}, each run required to produce the exact
// canonical forest of the Kruskal oracle. Run under -race this doubles as
// the race-cleanliness proof for the parallel runtime.
func TestStressDifferentialAllAlgorithms(t *testing.T) {
	families := []string{"sparse", "dense", "disconnected", "multi"}
	perFamily := 13 // 4*13 = 52 graphs
	if testing.Short() {
		perFamily = 4
	}
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, family := range families {
		for i := 0; i < perFamily; i++ {
			seed := int64(1000*i) + int64(len(family)) // deterministic per cell
			t.Run(fmt.Sprintf("%s/%d", family, i), func(t *testing.T) {
				g := stressGraph(family, seed)
				oracle := Kruskal(g)
				if err := CheckForest(g, oracle); err != nil {
					t.Fatalf("kruskal oracle invalid: %v", err)
				}
				for _, p := range workerCounts {
					for _, alg := range Algorithms() {
						f, err := Run(alg, g, Options{Workers: p})
						if err != nil {
							t.Fatalf("%s p=%d: %v", alg, p, err)
						}
						if !f.Equal(oracle) {
							t.Errorf("%s p=%d: forest differs from oracle (%d vs %d edges, weight %g vs %g)",
								alg, p, len(f.EdgeIDs), len(oracle.EdgeIDs), f.Weight, oracle.Weight)
						}
					}
				}
			})
		}
	}
}
