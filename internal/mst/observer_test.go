package mst

import (
	"context"
	"testing"

	"llpmst/internal/gen"
	"llpmst/internal/obs"
)

// TestObserverCountersMatchWorkMetrics cross-checks the two telemetry
// channels: the counters streamed to an Observer must agree with the
// WorkMetrics totals the algorithms have always reported.
func TestObserverCountersMatchWorkMetrics(t *testing.T) {
	g := gen.ErdosRenyi(1, 1000, 8000, gen.WeightUniform, 21)

	t.Run("llp-boruvka-rounds", func(t *testing.T) {
		rec := obs.NewRecording()
		var m WorkMetrics
		if _, err := LLPBoruvka(g, Options{Workers: 2, Observer: rec, Metrics: &m}); err != nil {
			t.Fatal(err)
		}
		if got := rec.Counter(obs.CtrRounds); got != m.Rounds {
			t.Errorf("observer rounds %d != WorkMetrics.Rounds %d", got, m.Rounds)
		}
		if got := rec.Counter(obs.CtrJumpRounds); got != m.JumpRounds {
			t.Errorf("observer jump rounds %d != WorkMetrics.JumpRounds %d", got, m.JumpRounds)
		}
		if got := rec.Counter(obs.CtrJumpAdvances); got != m.JumpAdvances {
			t.Errorf("observer jump advances %d != WorkMetrics.JumpAdvances %d", got, m.JumpAdvances)
		}
		if rec.GaugeMax(obs.GaugeLiveEdges) != int64(g.NumEdges()) {
			t.Errorf("live-edge gauge max %d, want first-round %d", rec.GaugeMax(obs.GaugeLiveEdges), g.NumEdges())
		}
	})

	t.Run("parallel-boruvka-rounds", func(t *testing.T) {
		rec := obs.NewRecording()
		var m WorkMetrics
		if _, err := ParallelBoruvka(g, Options{Workers: 2, Observer: rec, Metrics: &m}); err != nil {
			t.Fatal(err)
		}
		if got := rec.Counter(obs.CtrRounds); got != m.Rounds {
			t.Errorf("observer rounds %d != WorkMetrics.Rounds %d", got, m.Rounds)
		}
	})

	t.Run("llp-prim-heap", func(t *testing.T) {
		rec := obs.NewRecording()
		var m WorkMetrics
		if _, err := LLPPrim(g, Options{Observer: rec, Metrics: &m}); err != nil {
			t.Fatal(err)
		}
		if got := rec.Counter(obs.CtrHeapPush); got != m.HeapPushes {
			t.Errorf("observer heap pushes %d != WorkMetrics.HeapPushes %d", got, m.HeapPushes)
		}
		if got := rec.Counter(obs.CtrHeapPop); got != m.HeapPops {
			t.Errorf("observer heap pops %d != WorkMetrics.HeapPops %d", got, m.HeapPops)
		}
		if got := rec.Counter(obs.CtrEarlyFix); got != m.EarlyFixes {
			t.Errorf("observer early fixes %d != WorkMetrics.EarlyFixes %d", got, m.EarlyFixes)
		}
	})
}

// TestObserverSpansCoverAlgorithms checks every ctx-aware algorithm emits
// its top-level span, and that a collector carried on the context (instead
// of Options.Observer) is found too.
func TestObserverSpansCoverAlgorithms(t *testing.T) {
	g := gen.RoadNetwork(1, 16, 16, 0.2, 22)
	want := map[Algorithm]string{
		AlgLLPPrim:         "llp-prim",
		AlgLLPPrimParallel: "llp-prim-par",
		AlgLLPPrimAsync:    "llp-prim-async",
		AlgParallelBoruvka: "boruvka-par",
		AlgLLPBoruvka:      "llp-boruvka",
		AlgSemiringBoruvka: "semi-boruvka",
	}
	for alg, span := range want {
		rec := obs.NewRecording()
		ctx := obs.NewContext(context.Background(), rec)
		if _, err := RunCtx(ctx, alg, g, Options{Workers: 2}); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		found := false
		for _, s := range rec.Spans() {
			if s.Name == span {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: span %q not recorded via ctx-carried collector (got %v)", alg, span, spanNames(rec))
		}
	}
}

func spanNames(rec *obs.Recording) []string {
	var names []string
	for _, s := range rec.Spans() {
		names = append(names, s.Name)
	}
	return names
}

// TestObserverPrecedence: Options.Observer wins over a ctx-carried
// collector, so callers can scope one run's telemetry without rebuilding
// their context.
func TestObserverPrecedence(t *testing.T) {
	g := gen.RoadNetwork(1, 8, 8, 0.2, 23)
	direct := obs.NewRecording()
	carried := obs.NewRecording()
	ctx := obs.NewContext(context.Background(), carried)
	if _, err := RunCtx(ctx, AlgLLPBoruvka, g, Options{Workers: 2, Observer: direct}); err != nil {
		t.Fatal(err)
	}
	if direct.Counter(obs.CtrRounds) == 0 {
		t.Error("Options.Observer saw no rounds")
	}
	if carried.Counter(obs.CtrRounds) != 0 {
		t.Error("ctx-carried collector observed a run that set Options.Observer")
	}
}
