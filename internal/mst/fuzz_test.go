package mst

import (
	"testing"

	"llpmst/internal/graph"
)

// FuzzDifferentialMSF decodes arbitrary bytes into a small weighted graph
// and differential-checks the parallel backends — including the semiring
// (sparse-matrix) Boruvka — against the Kruskal oracle. The decoder is
// deliberately permissive (endpoints wrap modulo n, weights come from a
// small integer range so ties are dense), so the fuzzer explores tie-heavy,
// multi-edge, self-loop-adjacent shapes that generators rarely emit.
//
// Run with `go test -run xxx -fuzz=FuzzDifferentialMSF ./internal/mst`; the
// seed corpus below doubles as a regression suite under plain `go test`.
func FuzzDifferentialMSF(f *testing.F) {
	f.Add([]byte{4, 0, 1, 3, 1, 2, 3, 2, 3, 3, 0, 2, 7})
	f.Add([]byte{2, 0, 1, 0, 0, 1, 0, 1, 0, 0})
	f.Add([]byte{8, 0, 7, 1, 1, 6, 1, 2, 5, 1, 3, 4, 1})
	f.Add([]byte{1})
	f.Add([]byte{16, 0, 0, 0})
	f.Fuzz(func(t *testing.T, in []byte) {
		if len(in) == 0 || len(in) > 1<<12 {
			return
		}
		n := int(in[0]%63) + 1
		in = in[1:]
		edges := make([]graph.Edge, 0, len(in)/3)
		for len(in) >= 3 {
			u := uint32(in[0]) % uint32(n)
			v := uint32(in[1]) % uint32(n)
			w := float32(in[2] % 16)
			in = in[3:]
			edges = append(edges, graph.Edge{U: u, V: v, W: w})
		}
		g, err := graph.FromEdges(1, n, edges)
		if err != nil {
			return
		}
		oracle := Kruskal(g)
		for _, alg := range []Algorithm{AlgSemiringBoruvka, AlgLLPBoruvka, AlgLLPPrimAsync} {
			forest, err := Run(alg, g, Options{Workers: 2})
			if err != nil {
				t.Fatalf("%s: %v", alg, err)
			}
			if !forest.Equal(oracle) {
				t.Fatalf("%s differs from kruskal on n=%d m=%d: %s vs %s",
					alg, g.NumVertices(), g.NumEdges(), forest, oracle)
			}
		}
	})
}
