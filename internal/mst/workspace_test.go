package mst

import (
	"fmt"
	"testing"

	"llpmst/internal/graph"
)

// parallelAlgs are the algorithms that draw scratch from Options.Workspace.
var parallelAlgs = []Algorithm{
	AlgLLPPrim, AlgLLPPrimParallel, AlgLLPPrimAsync, AlgParallelBoruvka, AlgLLPBoruvka,
	AlgSemiringBoruvka,
}

// TestWorkspaceReuseDifferential reuses ONE workspace across every parallel
// algorithm, worker count, and a spread of stress graphs of varying shape
// and size, requiring each run to reproduce the Kruskal oracle exactly. This
// is the correctness half of the workspace contract: buffers grown by one
// graph and dirtied by one algorithm must not leak state into the next run
// (the race suite additionally poisons buffers on every acquire).
func TestWorkspaceReuseDifferential(t *testing.T) {
	ws := NewWorkspace()
	families := []string{"sparse", "dense", "disconnected", "multi"}
	perFamily := 6
	if testing.Short() {
		perFamily = 2
	}
	type kept struct {
		name   string
		forest *Forest
		oracle *Forest
	}
	var all []kept
	for _, family := range families {
		for i := 0; i < perFamily; i++ {
			g := stressGraph(family, int64(2000*i)+int64(len(family)))
			oracle := Kruskal(g)
			for _, p := range []int{1, 2} {
				for _, alg := range parallelAlgs {
					f, err := Run(alg, g, Options{Workers: p, Workspace: ws})
					if err != nil {
						t.Fatalf("%s/%d %s p=%d: %v", family, i, alg, p, err)
					}
					if !f.Equal(oracle) {
						t.Fatalf("%s/%d %s p=%d: forest differs from oracle (%d vs %d edges)",
							family, i, alg, p, len(f.EdgeIDs), len(oracle.EdgeIDs))
					}
					all = append(all, kept{fmt.Sprintf("%s/%d/%s/p=%d", family, i, alg, p), f, oracle})
				}
			}
		}
	}
	// Forests must not alias workspace memory: every forest returned above
	// must still match its oracle after all the later runs reused the arena.
	for _, k := range all {
		if !k.forest.Equal(k.oracle) {
			t.Fatalf("%s: forest mutated by later workspace reuse", k.name)
		}
	}
}

// TestWorkspaceSteadyStateAllocs pins the tentpole's quantitative promise:
// with a warm reused Workspace, each algorithm's per-call allocations are a
// small constant (the returned Forest, its cloned edge-id slice, and a few
// O(rounds) driver constants) — independent of n and m.
func TestWorkspaceSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	g := stressGraph("sparse", 42)
	// Bounds are ~2x the measured steady state (see BENCH_perf.json), so
	// they catch a regression to per-element allocation without flaking on
	// a round or two of variance. llp-boruvka's bound is largest because
	// its pointer-jumping driver allocates O(log n) small constants per
	// contraction round.
	bounds := map[Algorithm]float64{
		AlgLLPPrim:         8,
		AlgLLPPrimParallel: 12,
		AlgLLPPrimAsync:    16,
		AlgParallelBoruvka: 32,
		AlgLLPBoruvka:      96,
		AlgSemiringBoruvka: 96,
	}
	for _, alg := range parallelAlgs {
		t.Run(string(alg), func(t *testing.T) {
			ws := NewWorkspace()
			opts := Options{Workers: 1, Workspace: ws}
			// First call grows the arena and is allowed to allocate freely.
			warm := must(Run(alg, g, opts))
			oracle := Kruskal(g)
			if !warm.Equal(oracle) {
				t.Fatalf("warm-up forest differs from oracle")
			}
			var sink *Forest
			n := testing.AllocsPerRun(10, func() {
				sink = must(Run(alg, g, opts))
			})
			if n > bounds[alg] {
				t.Errorf("steady-state allocs/run = %v, want <= %v", n, bounds[alg])
			}
			if !sink.Equal(oracle) {
				t.Fatalf("steady-state forest differs from oracle")
			}
		})
	}
}

// TestWorkspaceConcurrentUsePanics: sharing one workspace across two
// simultaneous runs must fail loudly, not corrupt both runs.
func TestWorkspaceConcurrentUsePanics(t *testing.T) {
	g := stressGraph("sparse", 7)
	ws := NewWorkspace()
	ws.acquire() // simulate a run in flight
	defer ws.release()
	defer func() {
		if recover() == nil {
			t.Fatal("second run on a busy workspace did not panic")
		}
	}()
	_, _ = Run(AlgLLPPrim, g, Options{Workers: 1, Workspace: ws})
}

// TestWorkspaceDoubleReleasePanics: releasing an idle workspace is a bug in
// the runtime's defer discipline and must be loud.
func TestWorkspaceDoubleReleasePanics(t *testing.T) {
	ws := NewWorkspace()
	ws.acquire()
	ws.release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	ws.release()
}

// TestWorkspacePoolDefault: with Options.Workspace nil the algorithms draw
// from the internal pool; repeated runs stay correct (the pooled arenas are
// dirtied by every prior run) and the workspace-using algorithms agree with
// the oracle.
func TestWorkspacePoolDefault(t *testing.T) {
	for i := 0; i < 3; i++ {
		g := stressGraph("dense", int64(i))
		oracle := Kruskal(g)
		for _, alg := range parallelAlgs {
			f, err := Run(alg, g, Options{Workers: 2})
			if err != nil {
				t.Fatalf("iter %d %s: %v", i, alg, err)
			}
			if !f.Equal(oracle) {
				t.Fatalf("iter %d %s: forest differs from oracle", i, alg)
			}
		}
	}
}

// TestWorkspaceGrowShrinkGrow: a workspace sized by a large graph must
// still produce correct results on a smaller one (stale tail state beyond
// the resliced length must be invisible), and vice versa.
func TestWorkspaceGrowShrinkGrow(t *testing.T) {
	ws := NewWorkspace()
	big := stressGraph("dense", 11)
	small := stressGraph("multi", 12)
	sequence := []*graph.CSR{big, small, big, small}
	for round, g := range sequence {
		oracle := Kruskal(g)
		for _, alg := range parallelAlgs {
			f, err := Run(alg, g, Options{Workers: 1, Workspace: ws})
			if err != nil {
				t.Fatalf("round %d %s: %v", round, alg, err)
			}
			if !f.Equal(oracle) {
				t.Fatalf("round %d %s: forest differs after resize", round, alg)
			}
		}
	}
}

// TestEstimateScratchBytes pins the estimator's contract: monotone in every
// dimension, zero-safe, and a sound upper-bound proxy — the estimate for a
// graph must dominate the bytes a cold workspace actually allocates to
// serve it (the quantity an admission controller budgets against).
func TestEstimateScratchBytes(t *testing.T) {
	if got := EstimateScratchBytes(0, 0, 0); got <= 0 {
		t.Fatalf("empty-input estimate %d; want positive (per-worker floor)", got)
	}
	base := EstimateScratchBytes(1000, 5000, 4)
	if EstimateScratchBytes(2000, 5000, 4) <= base {
		t.Fatal("estimate not monotone in n")
	}
	if EstimateScratchBytes(1000, 10000, 4) <= base {
		t.Fatal("estimate not monotone in m")
	}
	if EstimateScratchBytes(1000, 5000, 8) <= base {
		t.Fatal("estimate not monotone in workers")
	}

	g := graph.MustFromEdges(1, 3000, func() []graph.Edge {
		edges := make([]graph.Edge, 0, 12000)
		for i := 0; i < 12000; i++ {
			u, v := uint32(i%3000), uint32((i*7+1)%3000)
			if u != v {
				edges = append(edges, graph.Edge{U: u, V: v, W: float32(i%97) + 1})
			}
		}
		return edges
	}())
	est := EstimateScratchBytes(g.NumVertices(), g.NumEdges(), 4)
	for _, alg := range parallelAlgs {
		ws := NewWorkspace()
		// First run grows every buffer the algorithm touches; the arena then
		// holds its steady-state footprint.
		if _, err := Run(alg, g, Options{Workers: 4, Workspace: ws}); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		held := int64(8*len(ws.keys) +
			4*(len(ws.flagsA)+len(ws.flagsB)+len(ws.vertsA)+len(ws.vertsB)+len(ws.vertsC)) +
			4*len(ws.vIdx) + len(ws.boolsA) + len(ws.boolsB) +
			4*(len(ws.ids)+len(ws.bag)+len(ws.stage)+len(ws.picks)) +
			8*len(ws.recs) +
			16*(len(ws.cedges)+len(ws.cspare)) +
			4*(len(ws.eIDs)+len(ws.eSpare)+len(ws.eFlags)) +
			8*len(ws.counters))
		if held > est {
			t.Fatalf("%s: workspace holds %d bytes of slice scratch, estimate %d does not cover it", alg, held, est)
		}
	}
}
