package mst

// Determinism stress: the parallel algorithms race internally (CAS fixing,
// atomic write-min, work stealing), but lattice-linearity and the unique
// key order mean the *output* must be identical on every run, at every
// worker count, under every scheduler. These tests hammer that promise.

import (
	"testing"

	"llpmst/internal/gen"
	"llpmst/internal/graph"
)

func TestParallelDeterminismStress(t *testing.T) {
	graphs := map[string]*graph.CSR{
		"rmat":  gen.RMAT(1, 10, 8, gen.WeightUniform, 71),
		"road":  gen.RoadNetwork(1, 32, 32, 0.25, 72),
		"ties":  gen.ErdosRenyi(1, 600, 4000, gen.WeightInteger, 73),
		"multi": gen.Disconnected(5, 40, 74),
	}
	for name, g := range graphs {
		oracle := Kruskal(g)
		runs := 8
		for i := 0; i < runs; i++ {
			workers := 1 + (i*3)%7
			opts := Options{Workers: workers}
			if f := must(LLPPrimParallel(g, opts)); !f.Equal(oracle) {
				t.Fatalf("%s run %d (w=%d): llp-prim-par nondeterministic", name, i, workers)
			}
			if f := must(LLPPrimAsync(g, opts)); !f.Equal(oracle) {
				t.Fatalf("%s run %d (w=%d): llp-prim-async nondeterministic", name, i, workers)
			}
			if f := must(ParallelBoruvka(g, opts)); !f.Equal(oracle) {
				t.Fatalf("%s run %d (w=%d): boruvka-par nondeterministic", name, i, workers)
			}
			if f := must(LLPBoruvka(g, opts)); !f.Equal(oracle) {
				t.Fatalf("%s run %d (w=%d): llp-boruvka nondeterministic", name, i, workers)
			}
			if f := must(SemiringBoruvka(g, opts)); !f.Equal(oracle) {
				t.Fatalf("%s run %d (w=%d): semi-boruvka nondeterministic", name, i, workers)
			}
			if f := FilterKruskal(g, opts); !f.Equal(oracle) {
				t.Fatalf("%s run %d (w=%d): filter-kruskal nondeterministic", name, i, workers)
			}
			if f := KKT(g, Options{Workers: workers, Seed: int64(i)}); !f.Equal(oracle) {
				t.Fatalf("%s run %d: kkt seed-dependent output", name, i)
			}
		}
	}
}

func TestAblationsPreserveDeterminism(t *testing.T) {
	g := gen.RMAT(1, 9, 8, gen.WeightUniform, 75)
	oracle := Kruskal(g)
	for i := 0; i < 5; i++ {
		for _, opts := range []Options{
			{Workers: 4, NoEarlyFix: true},
			{Workers: 4, NoStaging: true},
			{Workers: 4, NoEarlyFix: true, NoStaging: true},
		} {
			if f := must(LLPPrimParallel(g, opts)); !f.Equal(oracle) {
				t.Fatalf("ablation %+v nondeterministic or wrong", opts)
			}
			if f := must(LLPPrimAsync(g, opts)); !f.Equal(oracle) {
				t.Fatalf("async ablation %+v nondeterministic or wrong", opts)
			}
		}
	}
}
