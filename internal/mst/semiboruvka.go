package mst

import (
	"errors"
	"slices"
	"sync/atomic"

	"llpmst/internal/graph"
	"llpmst/internal/llp"
	"llpmst/internal/obs"
	"llpmst/internal/par"
)

// shardArcTarget sizes the semiring SpMV's row shards: each shard covers
// roughly this many matrix entries (8 KiB of packed keys — comfortably
// inside L1), so a shard is one cache-resident unit of work and skewed
// degree distributions (one giant scale-free row next to thousands of tiny
// ones) balance through the work-stealing scheduler rather than through a
// static split.
const shardArcTarget = 1024

// SemiringBoruvka is the sparse-matrix (GraphBLAS-style) Boruvka backend:
// the Baer–Kanakagiri–Solomonik formulation of MSF rounds as min-plus
// semiring linear algebra, specialized to this repo's packed (weight, edge
// id) key order. Each round:
//
//  1. builds the contracted graph's adjacency matrix in row-major form — a
//     component-indexed permutation of the live edge list (count per row,
//     exclusive scan, scatter), not an explicit matrix product;
//  2. computes the selection vector y = A ⊕.⊗ 1 — a min-plus SpMV in which
//     row r's reduction is a branch-free packed min over its contiguous
//     entries (par.MinRowsInto: no atomics anywhere in the row loop,
//     because each row has exactly one writer). Rows are blocked into
//     cache-sized shards (~shardArcTarget entries) handed out via the
//     sched work-stealing bag, so skewed rows do not serialize the sweep;
//  3. hooks: G[r] is the far endpoint of r's selected edge, with the
//     paper's mutual-minimum symmetry break (keys are globally unique, so
//     mutuality is y[r] == y[w]); each selected edge id is collected once;
//  4. shortcuts the selection vector to rooted stars by LLP pointer
//     jumping (the same forbidden(j) ≡ G[j] ≠ G[G[j]] instance LLP-Boruvka
//     uses, on the driver selected by opts.JumpMode);
//  5. contracts by implicit relabel: star roots become the next round's
//     row indices and surviving edges are compacted into the ping-pong
//     buffer with par.FilterMapInto.
//
// Because the reduction is over canonical packed keys, the selected edge is
// the true (weight, id)-minimum of every row, so the produced forest is the
// same unique MSF as Kruskal's, edge for edge.
//
// Cancellation (opts.Ctx) and worker panics follow the package protocol:
// polls at phase boundaries and strided inside the sweeps, partial forests
// only from fully completed hook phases, panics converted to *par.PanicError
// (see ctx.go). All scratch comes from the Workspace, so warm steady-state
// runs allocate O(1).
func SemiringBoruvka(g *graph.CSR, opts Options) (f *Forest, err error) {
	p := opts.workers()
	n := g.NumVertices()
	ws, release := opts.workspace()
	defer release()
	ids := ws.idsBuf(n)[:0]
	defer recoverPanic(AlgSemiringBoruvka, g, &ids, n-1, &f, &err)
	m := g.NumEdges()
	cc := opts.canceller()
	col := opts.collector()
	defer col.Span("semi-boruvka")()

	edges := ws.cedgesBuf(m)
	par.ForEach(p, m, 4096, func(i int) {
		e := g.Edge(uint32(i))
		edges[i] = cedge{u: e.U, v: e.V, key: par.PackKey(e.W, uint32(i))}
	})
	spare := ws.cspareBuf(m) // ping-pong buffer for contraction

	// Scratch, acquired once at full size and re-sliced as the matrix
	// shrinks. eIndex maps a canonical edge id (the low half of a packed
	// key, so also of a SpMV result) back to the edge's position in the
	// live list — how a row minimum is turned back into endpoints.
	rowOffFull := ws.rowOffBuf(n + 1)
	arcKeys := ws.arcKeysBuf(2 * m)
	eIndex := ws.eIDsBuf(m)
	cursorFull := ws.flagsABuf(n)
	yFull := ws.keysBuf(n)
	GFull := ws.vertsABuf(n)
	newID := ws.vertsBBuf(n)
	rootsBuf := ws.vertsCBuf(n)
	shardRows := ws.stageBuf(n) // shard b starts at row shardRows[b]
	counters := ws.countersBuf(p)
	bag := ws.asyncBagBuf()

	// Per-round slices and the phase bodies reading them, hoisted out of
	// the round loop (the bodies capture by reference) so steady-state
	// rounds allocate nothing.
	var (
		off     []int64
		cur     []uint32
		y       []uint64
		gv      []uint32
		nid     []uint32
		roots   []uint32
		nShards int
		nv      int
	)
	countBody := func(i int) {
		if cc.Stride(i) {
			return
		}
		e := &edges[i]
		atomic.AddInt64(&off[e.u], 1)
		atomic.AddInt64(&off[e.v], 1)
	}
	scatterBody := func(i int) {
		if cc.Stride(i) {
			return
		}
		e := &edges[i]
		// The per-row cursor orders entries nondeterministically under
		// contention, but min is order-independent and keys are unique, so
		// y — and everything after it — is deterministic anyway.
		arcKeys[off[e.u]+int64(atomic.AddUint32(&cur[e.u], 1))-1] = e.key
		arcKeys[off[e.v]+int64(atomic.AddUint32(&cur[e.v], 1))-1] = e.key
		eIndex[par.KeyID(e.key)] = uint32(i)
	}
	// Single-worker runs take plain-increment variants of the build bodies:
	// with one writer the atomic RMWs buy nothing, and dropping them takes
	// four uncontended-but-serializing instructions out of the per-edge
	// build cost.
	countFn, scatterFn := countBody, scatterBody
	if p == 1 {
		countFn = func(i int) {
			if cc.Stride(i) {
				return
			}
			e := &edges[i]
			off[e.u]++
			off[e.v]++
		}
		scatterFn = func(i int) {
			if cc.Stride(i) {
				return
			}
			e := &edges[i]
			pu := off[e.u] + int64(cur[e.u])
			cur[e.u]++
			pv := off[e.v] + int64(cur[e.v])
			cur[e.v]++
			arcKeys[pu] = e.key
			arcKeys[pv] = e.key
			eIndex[par.KeyID(e.key)] = uint32(i)
		}
	}
	spmvShard := func(b uint32, _ func(uint32)) {
		lo := int(shardRows[b])
		hi := nv
		if int(b)+1 < nShards {
			hi = int(shardRows[b+1])
		}
		if cc.Stride(lo) {
			return
		}
		par.MinRowsInto(y[lo:hi], off[lo:hi+1], arcKeys)
	}
	// Hook chunks run under the executing worker's attributed collector
	// view, like LLP-Boruvka's parent phase, so flight recordings show
	// which worker hooked which share of the rows.
	hookBody := func(w, lo, hi int, out []uint32) []uint32 {
		endChunk := obs.ForWorker(col, w).Span("semi-boruvka.hook.chunk")
		defer endChunk()
		for r := lo; r < hi; r++ {
			if cc.Stride(r) {
				break
			}
			yr := y[r]
			if yr == par.InfKey {
				gv[r] = uint32(r) // empty row: isolated component
				continue
			}
			e := &edges[eIndex[par.KeyID(yr)]]
			w := e.u
			if w == uint32(r) {
				w = e.v
			}
			mutual := y[w] == yr
			if mutual && uint32(r) < w {
				gv[r] = uint32(r) // paper's tie-break: r roots itself
			} else {
				gv[r] = w
			}
			if !mutual || uint32(r) < w {
				out = append(out, par.KeyID(yr))
			}
		}
		return out
	}
	isRoot := func(v int) bool { return gv[v] == uint32(v) }
	nidScatter := func(i int) { nid[roots[i]] = uint32(i) }
	contractEdge := func(e cedge) (cedge, bool) {
		gu, gw := gv[e.u], gv[e.v]
		if gu == gw {
			return cedge{}, false
		}
		return cedge{u: nid[gu], v: nid[gw], key: e.key}, true
	}

	nv = n
	var rounds, jumpRounds, jumpAdvances int64
	cancelled := false
	for len(edges) > 0 {
		if cc.Poll() {
			cancelled = true
			break
		}
		rounds++
		obs.MarkRound(col, rounds)
		col.Count(obs.CtrRounds, 1)
		col.Gauge(obs.GaugeLiveEdges, int64(len(edges)))
		// Phase 1: materialize this round's matrix rows — the implicit
		// relabel. Count entries per row, exclusive-scan into offsets,
		// scatter each edge's key into both endpoint rows.
		buildSpan := col.Span("semi-boruvka.build")
		off = rowOffFull[:nv+1]
		par.Fill(p, off[:nv], 0)
		cur = cursorFull[:nv]
		par.Fill(p, cur, 0)
		par.ForEach(p, len(edges), 2048, countFn)
		off[nv] = par.ExclusiveScan(p, off[:nv])
		par.ForEach(p, len(edges), 2048, scatterFn)
		// Block rows into cache-sized shards: cut whenever the running
		// entry count passes the target, so each shard is one L1-resident
		// reduction unit regardless of how skewed the rows are.
		shards := shardRows[:0]
		shards = append(shards, 0)
		var acc int64
		for r := 0; r < nv-1; r++ {
			if acc += off[r+1] - off[r]; acc >= shardArcTarget {
				shards = append(shards, uint32(r+1))
				acc = 0
			}
		}
		nShards = len(shards)
		seed := ws.bagBuf(nShards)
		for b := range seed {
			seed[b] = uint32(b)
		}
		buildSpan()
		// A cancel inside phase 1 leaves the rows incomplete; the SpMV
		// must not reduce them.
		if cc.Poll() {
			cancelled = true
			break
		}
		// Phase 2: the min-plus SpMV. Shards go through the work-stealing
		// bag; each owns a contiguous row range, so no atomics are needed
		// in the reduction.
		spmvSpan := col.Span("semi-boruvka.spmv")
		y = yFull[:nv]
		serr := bag.ForEachObs(opts.Ctx, p, seed, spmvShard, col)
		spmvSpan()
		col.Count(obs.CtrSemiSpmvRows, int64(nv))
		col.Count(obs.CtrSemiSpmvArcs, 2*int64(len(edges)))
		col.Count(obs.CtrSemiShards, int64(nShards))
		if serr != nil {
			// A worker panic (already drained and boxed by the scheduler)
			// funnels through the deferred recover above, so there is a
			// single conversion path; anything else is cancellation.
			var pe *par.PanicError
			if errors.As(serr, &pe) {
				panic(pe)
			}
			cancelled = true
			break
		}
		if cc.Poll() {
			cancelled = true
			break
		}
		// Phase 3: hook on the selection vector, collecting each chosen
		// edge exactly once (mutual pairs: the smaller row reports).
		hookSpan := col.Span("semi-boruvka.hook")
		gv = GFull[:nv]
		chosen := par.ForCollectIntoW(p, nv, 2048, ws.picks, hookBody)
		hookSpan()
		// Hooks made before a mid-phase cancel are sound (the SpMV was
		// complete), so they may join the partial result.
		ids = append(ids, chosen...)
		ws.picks = chosen[:0] // keep grown capacity for the next round
		if cc.Poll() {
			cancelled = true
			break
		}
		// Phase 4: shortcut the selection vector to rooted stars.
		jumpSpan := col.Span("semi-boruvka.jump")
		jst, jumpErr := llp.RunCtx(opts.Ctx, opts.JumpMode, p, ws.jumpBuf(gv))
		jumpSpan()
		jumpRounds += int64(jst.Rounds)
		jumpAdvances += jst.Advances
		col.Count(obs.CtrJumpRounds, int64(jst.Rounds))
		col.Count(obs.CtrJumpAdvances, jst.Advances)
		if jumpErr != nil || cc.Poll() {
			cancelled = true
			break
		}
		// Phase 5: contract by relabel. Star roots become the next round's
		// row indices; surviving cross edges compact into the spare buffer.
		contractSpan := col.Span("semi-boruvka.contract")
		roots = par.PackIndexInto(p, nv, rootsBuf, counters, isRoot)
		nid = newID[:nv]
		par.ForEach(p, len(roots), 8192, nidScatter)
		dst := par.FilterMapInto(p, spare, edges, counters, contractEdge)
		spare = edges[:cap(edges)]
		edges = dst
		nv = len(roots)
		contractSpan()
	}
	if opts.Metrics != nil {
		*opts.Metrics = WorkMetrics{
			Rounds: rounds, JumpRounds: jumpRounds, JumpAdvances: jumpAdvances,
		}
	}
	f = newForest(g, slices.Clone(ids))
	if cancelled {
		return f, interrupted(AlgSemiringBoruvka, cc, len(ids), n-1)
	}
	return f, nil
}
