package mst

import (
	"fmt"

	"llpmst/internal/graph"
	"llpmst/internal/par"
)

// Incremental maintains a minimum spanning forest under online edge
// insertions — the dynamic counterpart of the batch algorithms, built on the
// same cycle property the verifier and KKT use: a new edge (u,v) enters the
// forest iff u and v are in different trees, or the heaviest edge on their
// current tree path is heavier than the new edge (which it then replaces).
//
// The forest is stored as parent pointers with path reversal ("evert") on
// linking, so each insertion costs O(length of the affected tree path) —
// worst case O(n), typically far less. Weights share the packed
// (weight, insertion id) total order with the rest of the package, so the
// maintained forest is exactly the canonical MSF of the inserted edge set
// (tests cross-check against Kruskal after every insertion).
type Incremental struct {
	n         int
	parent    []int32  // parent vertex, -1 at roots
	parentKey []uint64 // packed key of the edge to parent
	inForest  map[uint64]bool
	edgeCount int
	nextID    uint32
	weightSum float64
	edgeByKey map[uint64][2]uint32 // key -> endpoints
	scratchU  []int32              // reusable path buffers
	scratchV  []int32
	scratchK  []uint64 // reusable key buffer for ForestEdgesInto
}

// NewIncremental creates an empty forest over n vertices.
func NewIncremental(n int) *Incremental {
	inc := &Incremental{
		n:         n,
		parent:    make([]int32, n),
		parentKey: make([]uint64, n),
		inForest:  make(map[uint64]bool),
		edgeByKey: make(map[uint64][2]uint32),
	}
	for i := range inc.parent {
		inc.parent[i] = -1
	}
	return inc
}

// N returns the number of vertices.
func (inc *Incremental) N() int { return inc.n }

// Edges returns the number of forest edges.
func (inc *Incremental) Edges() int { return inc.edgeCount }

// Weight returns the total weight of the current forest.
func (inc *Incremental) Weight() float64 { return inc.weightSum }

// Insert offers the edge (u, v, w) to the forest and reports whether the
// forest changed (the edge was added, possibly evicting a heavier one).
// Ties with previously inserted equal weights break toward the earlier
// insertion, matching the canonical (weight, id) order. Self-loops are
// rejected with ok=false.
func (inc *Incremental) Insert(u, v uint32, w float32) (ok bool, err error) {
	if int(u) >= inc.n || int(v) >= inc.n {
		return false, fmt.Errorf("mst: incremental insert (%d,%d) out of range (n=%d)", u, v, inc.n)
	}
	if w < 0 || w != w {
		return false, fmt.Errorf("mst: incremental insert with invalid weight %v", w)
	}
	if u == v {
		return false, nil
	}
	key := par.PackKey(w, inc.nextID)
	inc.nextID++
	added, _, _ := inc.insertKeyed(u, v, key)
	return added, nil
}

// InsertKeyed offers an edge under a caller-supplied packed (weight, id) key
// — the streaming engine's entry point, where edge identities must survive
// deletes, snapshots, and WAL replay. It reports whether the edge entered
// the forest and, if a heavier cycle edge was evicted to make room, that
// edge's key. Keys must be unique across live edges; the weight is carried
// by the key itself (par.KeyWeight). Endpoints are validated like Insert.
func (inc *Incremental) InsertKeyed(u, v uint32, key uint64) (added bool, evicted uint64, hadEvict bool, err error) {
	if int(u) >= inc.n || int(v) >= inc.n {
		return false, 0, false, fmt.Errorf("mst: incremental insert (%d,%d) out of range (n=%d)", u, v, inc.n)
	}
	if w := par.KeyWeight(key); w < 0 || w != w {
		return false, 0, false, fmt.Errorf("mst: incremental insert with invalid weight %v", w)
	}
	if u == v {
		return false, 0, false, nil
	}
	if _, dup := inc.edgeByKey[key]; dup {
		return false, 0, false, fmt.Errorf("mst: incremental insert reuses live key %#x", key)
	}
	added, evicted, hadEvict = inc.insertKeyed(u, v, key)
	return added, evicted, hadEvict, nil
}

// insertKeyed is the cycle-property core shared by Insert and InsertKeyed:
// link when the endpoints are in different trees, otherwise replace the
// heaviest path edge if the offer beats it.
func (inc *Incremental) insertKeyed(u, v uint32, key uint64) (added bool, evicted uint64, hadEvict bool) {
	w := par.KeyWeight(key)
	pu := inc.pathToRoot(u, &inc.scratchU)
	pv := inc.pathToRoot(v, &inc.scratchV)
	rootU, rootV := pu[len(pu)-1], pv[len(pv)-1]
	if rootU != rootV {
		// Different trees: link. Re-root u's tree at u, then hang it off v.
		inc.evert(u)
		inc.parent[u] = int32(v)
		inc.parentKey[u] = key
		inc.addEdge(key, u, v, w)
		return true, 0, false
	}
	// Same tree: find the heaviest edge on the path u..v. Trim the shared
	// root-side suffix to isolate the u..lca..v path.
	i, j := len(pu)-1, len(pv)-1
	for i > 0 && j > 0 && pu[i-1] == pv[j-1] {
		i--
		j--
	}
	var maxKey uint64
	var maxChild int32 = -1
	for k := 0; k < i; k++ { // edges pu[k] -> parent
		if pk := inc.parentKey[pu[k]]; pk > maxKey {
			maxKey, maxChild = pk, pu[k]
		}
	}
	for k := 0; k < j; k++ {
		if pk := inc.parentKey[pv[k]]; pk > maxKey {
			maxKey, maxChild = pk, pv[k]
		}
	}
	if maxChild < 0 || maxKey < key {
		return false, 0, false // new edge is the heaviest on its cycle
	}
	// Swap: cut the heaviest path edge, then link u-v.
	inc.removeEdge(maxKey)
	inc.parent[maxChild] = -1
	inc.parentKey[maxChild] = 0
	inc.evert(u)
	inc.parent[u] = int32(v)
	inc.parentKey[u] = key
	inc.addEdge(key, u, v, w)
	return true, maxKey, true
}

// Cut removes the forest edge with the given key, splitting its tree in
// two, and returns the edge's endpoints. ok is false when no forest edge
// has that key (the forest is unchanged).
func (inc *Incremental) Cut(key uint64) (u, v uint32, ok bool) {
	ends, ok := inc.edgeByKey[key]
	if !ok {
		return 0, 0, false
	}
	u, v = ends[0], ends[1]
	// The parent pointer runs in one of the two directions, depending on
	// the everts since linking.
	child := u
	if !(inc.parent[u] >= 0 && uint32(inc.parent[u]) == v && inc.parentKey[u] == key) {
		child = v
	}
	inc.parent[child] = -1
	inc.parentKey[child] = 0
	inc.removeEdge(key)
	return u, v, true
}

// HasEdge reports whether the forest currently contains the edge with the
// given key.
func (inc *Incremental) HasEdge(key uint64) bool { return inc.inForest[key] }

// ForestEdges returns the current forest as edges sorted by the canonical
// (weight, insertion id) order.
func (inc *Incremental) ForestEdges() []graph.Edge {
	return inc.ForestEdgesInto(nil)
}

// ForestEdgesInto appends the current forest to buf[:0] in the canonical
// (weight, insertion id) order and returns the result. With a buf of
// sufficient capacity it allocates nothing (the key scratch is kept inside
// the structure), so a serving path polling the forest pays zero steady-
// state allocations.
func (inc *Incremental) ForestEdgesInto(buf []graph.Edge) []graph.Edge {
	keys := inc.scratchK[:0]
	for k := range inc.inForest {
		keys = append(keys, k)
	}
	inc.scratchK = keys
	par.SortUint64(1, keys)
	out := buf[:0]
	for _, k := range keys {
		ends := inc.edgeByKey[k]
		out = append(out, graph.Edge{U: ends[0], V: ends[1], W: par.KeyWeight(k)})
	}
	return out
}

// Trees returns the number of trees (including isolated vertices).
func (inc *Incremental) Trees() int { return inc.n - inc.edgeCount }

// Connected reports whether u and v are currently in the same tree.
// Out-of-range vertices are in no tree, so they connect to nothing — the
// query answers false instead of indexing out of bounds.
func (inc *Incremental) Connected(u, v uint32) bool {
	if int(u) >= inc.n || int(v) >= inc.n {
		return false
	}
	pu := inc.pathToRoot(u, &inc.scratchU)
	pv := inc.pathToRoot(v, &inc.scratchV)
	return pu[len(pu)-1] == pv[len(pv)-1]
}

func (inc *Incremental) addEdge(key uint64, u, v uint32, w float32) {
	inc.inForest[key] = true
	inc.edgeByKey[key] = [2]uint32{u, v}
	inc.edgeCount++
	inc.weightSum += float64(w)
}

func (inc *Incremental) removeEdge(key uint64) {
	delete(inc.inForest, key)
	delete(inc.edgeByKey, key)
	inc.edgeCount--
	inc.weightSum -= float64(par.KeyWeight(key))
}

// pathToRoot returns the vertices from v (inclusive) to its root
// (inclusive), reusing the provided buffer.
func (inc *Incremental) pathToRoot(v uint32, buf *[]int32) []int32 {
	path := (*buf)[:0]
	cur := int32(v)
	for {
		path = append(path, cur)
		p := inc.parent[cur]
		if p < 0 {
			break
		}
		cur = p
	}
	*buf = path
	return path
}

// evert re-roots v's tree at v by reversing the parent pointers (and edge
// keys) along the v-to-root path.
func (inc *Incremental) evert(v uint32) {
	cur := int32(v)
	var prev int32 = -1
	var prevKey uint64
	for cur >= 0 {
		next := inc.parent[cur]
		nextKey := inc.parentKey[cur]
		inc.parent[cur] = prev
		inc.parentKey[cur] = prevKey
		prev, prevKey = cur, nextKey
		cur = next
	}
}
