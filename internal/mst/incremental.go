package mst

import (
	"fmt"

	"llpmst/internal/graph"
	"llpmst/internal/par"
)

// Incremental maintains a minimum spanning forest under online edge
// insertions — the dynamic counterpart of the batch algorithms, built on the
// same cycle property the verifier and KKT use: a new edge (u,v) enters the
// forest iff u and v are in different trees, or the heaviest edge on their
// current tree path is heavier than the new edge (which it then replaces).
//
// The forest is stored as parent pointers with path reversal ("evert") on
// linking, so each insertion costs O(length of the affected tree path) —
// worst case O(n), typically far less. Weights share the packed
// (weight, insertion id) total order with the rest of the package, so the
// maintained forest is exactly the canonical MSF of the inserted edge set
// (tests cross-check against Kruskal after every insertion).
type Incremental struct {
	n         int
	parent    []int32  // parent vertex, -1 at roots
	parentKey []uint64 // packed key of the edge to parent
	inForest  map[uint64]bool
	edgeCount int
	nextID    uint32
	weightSum float64
	edgeByKey map[uint64][2]uint32 // key -> endpoints
	scratchU  []int32              // reusable path buffers
	scratchV  []int32
}

// NewIncremental creates an empty forest over n vertices.
func NewIncremental(n int) *Incremental {
	inc := &Incremental{
		n:         n,
		parent:    make([]int32, n),
		parentKey: make([]uint64, n),
		inForest:  make(map[uint64]bool),
		edgeByKey: make(map[uint64][2]uint32),
	}
	for i := range inc.parent {
		inc.parent[i] = -1
	}
	return inc
}

// N returns the number of vertices.
func (inc *Incremental) N() int { return inc.n }

// Edges returns the number of forest edges.
func (inc *Incremental) Edges() int { return inc.edgeCount }

// Weight returns the total weight of the current forest.
func (inc *Incremental) Weight() float64 { return inc.weightSum }

// Insert offers the edge (u, v, w) to the forest and reports whether the
// forest changed (the edge was added, possibly evicting a heavier one).
// Ties with previously inserted equal weights break toward the earlier
// insertion, matching the canonical (weight, id) order. Self-loops are
// rejected with ok=false.
func (inc *Incremental) Insert(u, v uint32, w float32) (ok bool, err error) {
	if int(u) >= inc.n || int(v) >= inc.n {
		return false, fmt.Errorf("mst: incremental insert (%d,%d) out of range (n=%d)", u, v, inc.n)
	}
	if w < 0 || w != w {
		return false, fmt.Errorf("mst: incremental insert with invalid weight %v", w)
	}
	if u == v {
		return false, nil
	}
	key := par.PackKey(w, inc.nextID)
	inc.nextID++

	pu := inc.pathToRoot(u, &inc.scratchU)
	pv := inc.pathToRoot(v, &inc.scratchV)
	rootU, rootV := pu[len(pu)-1], pv[len(pv)-1]
	if rootU != rootV {
		// Different trees: link. Re-root u's tree at u, then hang it off v.
		inc.evert(u)
		inc.parent[u] = int32(v)
		inc.parentKey[u] = key
		inc.addEdge(key, u, v, w)
		return true, nil
	}
	// Same tree: find the heaviest edge on the path u..v. Trim the shared
	// root-side suffix to isolate the u..lca..v path.
	i, j := len(pu)-1, len(pv)-1
	for i > 0 && j > 0 && pu[i-1] == pv[j-1] {
		i--
		j--
	}
	var maxKey uint64
	var maxChild int32 = -1
	for k := 0; k < i; k++ { // edges pu[k] -> parent
		if pk := inc.parentKey[pu[k]]; pk > maxKey {
			maxKey, maxChild = pk, pu[k]
		}
	}
	for k := 0; k < j; k++ {
		if pk := inc.parentKey[pv[k]]; pk > maxKey {
			maxKey, maxChild = pk, pv[k]
		}
	}
	if maxChild < 0 || maxKey < key {
		return false, nil // new edge is the heaviest on its cycle
	}
	// Swap: cut the heaviest path edge, then link u-v.
	inc.removeEdge(maxKey)
	inc.parent[maxChild] = -1
	inc.parentKey[maxChild] = 0
	inc.evert(u)
	inc.parent[u] = int32(v)
	inc.parentKey[u] = key
	inc.addEdge(key, u, v, w)
	return true, nil
}

// ForestEdges returns the current forest as edges sorted by the canonical
// (weight, insertion id) order.
func (inc *Incremental) ForestEdges() []graph.Edge {
	keys := make([]uint64, 0, inc.edgeCount)
	for k := range inc.inForest {
		keys = append(keys, k)
	}
	par.SortUint64(1, keys)
	out := make([]graph.Edge, 0, inc.edgeCount)
	for _, k := range keys {
		ends := inc.edgeByKey[k]
		out = append(out, graph.Edge{U: ends[0], V: ends[1], W: par.KeyWeight(k)})
	}
	return out
}

// Trees returns the number of trees (including isolated vertices).
func (inc *Incremental) Trees() int { return inc.n - inc.edgeCount }

// Connected reports whether u and v are currently in the same tree.
func (inc *Incremental) Connected(u, v uint32) bool {
	pu := inc.pathToRoot(u, &inc.scratchU)
	pv := inc.pathToRoot(v, &inc.scratchV)
	return pu[len(pu)-1] == pv[len(pv)-1]
}

func (inc *Incremental) addEdge(key uint64, u, v uint32, w float32) {
	inc.inForest[key] = true
	inc.edgeByKey[key] = [2]uint32{u, v}
	inc.edgeCount++
	inc.weightSum += float64(w)
}

func (inc *Incremental) removeEdge(key uint64) {
	delete(inc.inForest, key)
	delete(inc.edgeByKey, key)
	inc.edgeCount--
	inc.weightSum -= float64(par.KeyWeight(key))
}

// pathToRoot returns the vertices from v (inclusive) to its root
// (inclusive), reusing the provided buffer.
func (inc *Incremental) pathToRoot(v uint32, buf *[]int32) []int32 {
	path := (*buf)[:0]
	cur := int32(v)
	for {
		path = append(path, cur)
		p := inc.parent[cur]
		if p < 0 {
			break
		}
		cur = p
	}
	*buf = path
	return path
}

// evert re-roots v's tree at v by reversing the parent pointers (and edge
// keys) along the v-to-root path.
func (inc *Incremental) evert(v uint32) {
	cur := int32(v)
	var prev int32 = -1
	var prevKey uint64
	for cur >= 0 {
		next := inc.parent[cur]
		nextKey := inc.parentKey[cur]
		inc.parent[cur] = prev
		inc.parentKey[cur] = prevKey
		prev, prevKey = cur, nextKey
		cur = next
	}
}
