//go:build race

package mst

// raceEnabled gates workspace buffer poisoning: under `go test -race`,
// acquiring a workspace first fills its buffers with junk so stale-state
// bugs surface deterministically in the race suite.
const raceEnabled = true
