package mst

import (
	"llpmst/internal/graph"
	"llpmst/internal/par"
	"llpmst/internal/unionfind"
)

// Kruskal is the classic sort-then-scan algorithm (§III): sort all edges by
// the packed total order and add each edge that joins two different
// union-find components. Serves as an additional baseline and as the
// correctness oracle for the test suite.
func Kruskal(g *graph.CSR) *Forest { return kruskal(g, nil) }

func kruskal(g *graph.CSR, mtr *WorkMetrics) *Forest {
	m := g.NumEdges()
	keys := make([]uint64, m)
	for i := 0; i < m; i++ {
		keys[i] = g.EdgeKey(uint32(i))
	}
	par.SortUint64(1, keys)
	uf := unionfind.New(g.NumVertices())
	ids := make([]uint32, 0, g.NumVertices())
	for _, key := range keys {
		id := par.KeyID(key)
		e := g.Edge(id)
		if uf.Union(e.U, e.V) {
			ids = append(ids, id)
		}
	}
	if mtr != nil {
		*mtr = WorkMetrics{Rounds: 1, Unions: int64(len(ids))}
	}
	return newForest(g, ids)
}

// FilterKruskal is the parallel filter-Kruskal variant (Osipov, Sanders,
// Singler): partition edges around a pivot, recurse on the light half, then
// *filter* the heavy half in parallel — dropping edges whose endpoints the
// light recursion already connected — before recursing on what survives.
// Sorting, partitioning and filtering are parallel; the union-find scan of
// each base case is sequential (a lock-free union-find answers the parallel
// Same queries during filtering). Included because Kruskal is the third
// classical algorithm §III discusses and a natural extra baseline for the
// harness.
func FilterKruskal(g *graph.CSR, opts Options) *Forest {
	p := opts.workers()
	n := g.NumVertices()
	m := g.NumEdges()
	keys := make([]uint64, m)
	par.ForEach(p, m, 8192, func(i int) { keys[i] = g.EdgeKey(uint32(i)) })
	uf := unionfind.NewConcurrent(n)
	ids := make([]uint32, 0, n)
	joined := 0
	target := 0 // n - number of components; unknown upfront, tracked lazily

	// Base case threshold: below this, sort and scan beats partitioning.
	threshold := m / (4 * p)
	if threshold < 1<<12 {
		threshold = 1 << 12
	}

	var recurse func(keys []uint64)
	base := func(keys []uint64) {
		par.SortUint64(p, keys)
		for _, key := range keys {
			id := par.KeyID(key)
			e := g.Edge(id)
			if uf.Union(e.U, e.V) {
				ids = append(ids, id)
				joined++
			}
		}
	}
	recurse = func(keys []uint64) {
		if len(keys) == 0 || joined >= target {
			return
		}
		if len(keys) <= threshold {
			base(keys)
			return
		}
		pivot := medianOfThree(keys)
		light := par.PackFunc(p, keys, func(k uint64) bool { return k <= pivot })
		if len(light) == len(keys) {
			// Degenerate pivot (the maximum); fall back to the base case
			// rather than recursing on an unshrunk problem.
			base(keys)
			return
		}
		heavy := par.PackFunc(p, keys, func(k uint64) bool { return k > pivot })
		recurse(light)
		if joined >= target {
			return
		}
		// Filter: drop heavy edges already connected by the light half.
		survivors := par.PackFunc(p, heavy, func(k uint64) bool {
			e := g.Edge(par.KeyID(k))
			return !uf.Same(e.U, e.V)
		})
		recurse(survivors)
	}
	target = n - 1 // upper bound; early exit just stops sooner when reached
	recurse(keys)
	return newForest(g, ids)
}

func medianOfThree(keys []uint64) uint64 {
	a, b, c := keys[0], keys[len(keys)/2], keys[len(keys)-1]
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}
