package mst

import (
	"fmt"
	"math/bits"

	"llpmst/internal/graph"
	"llpmst/internal/par"
	"llpmst/internal/unionfind"
)

// CheckForest verifies structural validity of a forest for graph g: edge ids
// in range and duplicate-free, acyclic, exactly n - #components(g) edges
// (i.e. spanning within every component), and consistent Weight/Trees/N
// fields. It does NOT check minimality; see VerifyMinimum.
func CheckForest(g *graph.CSR, f *Forest) error {
	n := g.NumVertices()
	if f.N != n {
		return fmt.Errorf("verify: forest.N = %d, graph has %d vertices", f.N, n)
	}
	uf := unionfind.New(n)
	var weight float64
	prev := int64(-1)
	for _, id := range f.EdgeIDs {
		if int(id) >= g.NumEdges() {
			return fmt.Errorf("verify: edge id %d out of range", id)
		}
		if int64(id) <= prev {
			return fmt.Errorf("verify: edge ids not sorted/unique at %d", id)
		}
		prev = int64(id)
		e := g.Edge(id)
		if !uf.Union(e.U, e.V) {
			return fmt.Errorf("verify: edge %d (%d,%d) creates a cycle", id, e.U, e.V)
		}
		weight += float64(e.W)
	}
	_, comps := g.Components()
	if want := n - comps; len(f.EdgeIDs) != want {
		return fmt.Errorf("verify: %d edges, want n - #components = %d", len(f.EdgeIDs), want)
	}
	if f.Trees != comps {
		return fmt.Errorf("verify: forest.Trees = %d, graph has %d components", f.Trees, comps)
	}
	if weight != f.Weight {
		return fmt.Errorf("verify: forest.Weight = %g, edges sum to %g", f.Weight, weight)
	}
	return nil
}

// VerifyMinimum verifies that f is the minimum spanning forest of g using
// the cycle property: for every non-forest edge e = (u,v), the maximum
// packed key on the forest path between u and v must be smaller than e's
// key. Path maxima are answered with binary lifting (O(n log n) space,
// O(log n) per query), so the whole check is O((n + m) log n) — the
// deterministic analogue of the linear-time verifiers §III cites.
func VerifyMinimum(g *graph.CSR, f *Forest) error {
	if err := CheckForest(g, f); err != nil {
		return err
	}
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	lift := newPathMaxIndex(g, f)
	inForest := make([]bool, g.NumEdges())
	for _, id := range f.EdgeIDs {
		inForest[id] = true
	}
	violations := par.ForCollect(0, g.NumEdges(), 4096, func(lo, hi int, out []error) []error {
		for id := lo; id < hi; id++ {
			if inForest[id] {
				continue
			}
			e := g.Edge(uint32(id))
			key := g.EdgeKey(uint32(id))
			pathMax, sameTree := lift.pathMax(e.U, e.V)
			if !sameTree {
				// A graph edge always connects vertices of one component,
				// which CheckForest proved the forest spans.
				out = append(out, fmt.Errorf("verify: endpoints of edge %d in different trees", id))
				continue
			}
			if pathMax > key {
				out = append(out, fmt.Errorf(
					"verify: cycle property violated: non-forest edge %d (key %d) is lighter than forest path max %d",
					id, key, pathMax))
			}
		}
		return out
	})
	if len(violations) > 0 {
		return violations[0]
	}
	return nil
}

// pathMaxIndex answers max-key-on-forest-path queries with binary lifting.
type pathMaxIndex struct {
	depth []int32
	root  []uint32
	up    [][]uint32 // up[l][v]: 2^l-th ancestor
	mx    [][]uint64 // mx[l][v]: max key on the 2^l-step path upwards
}

func newPathMaxIndex(g *graph.CSR, f *Forest) *pathMaxIndex {
	fedges := make([]cedge, len(f.EdgeIDs))
	for i, id := range f.EdgeIDs {
		e := g.Edge(id)
		fedges[i] = cedge{u: e.U, v: e.V, key: g.EdgeKey(id)}
	}
	return newPathMaxFromEdges(g.NumVertices(), fedges)
}

// newPathMaxFromEdges builds the index for a forest given as an explicit
// edge list over vertices [0, n) — the form KKT's F-heavy filter needs,
// where the forest lives in a contracted vertex space.
func newPathMaxFromEdges(n int, fedges []cedge) *pathMaxIndex {
	// Forest adjacency.
	adjOff := make([]int32, n+1)
	for _, e := range fedges {
		adjOff[e.u+1]++
		adjOff[e.v+1]++
	}
	for i := 0; i < n; i++ {
		adjOff[i+1] += adjOff[i]
	}
	type half struct {
		to  uint32
		key uint64
	}
	adj := make([]half, adjOff[n])
	cursor := make([]int32, n)
	copy(cursor, adjOff[:n])
	for _, e := range fedges {
		adj[cursor[e.u]] = half{e.v, e.key}
		cursor[e.u]++
		adj[cursor[e.v]] = half{e.u, e.key}
		cursor[e.v]++
	}
	levels := 1
	for 1<<levels < n {
		levels++
	}
	idx := &pathMaxIndex{
		depth: make([]int32, n),
		root:  make([]uint32, n),
		up:    make([][]uint32, levels),
		mx:    make([][]uint64, levels),
	}
	for l := range idx.up {
		idx.up[l] = make([]uint32, n)
		idx.mx[l] = make([]uint64, n)
	}
	// Root every tree with an iterative BFS, filling level 0.
	const unseen = ^uint32(0)
	for i := range idx.root {
		idx.root[i] = unseen
	}
	queue := make([]uint32, 0, 1024)
	for s := 0; s < n; s++ {
		if idx.root[s] != unseen {
			continue
		}
		idx.root[s] = uint32(s)
		idx.up[0][s] = uint32(s)
		idx.mx[0][s] = 0
		idx.depth[s] = 0
		queue = append(queue[:0], uint32(s))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, h := range adj[adjOff[v]:adjOff[v+1]] {
				if idx.root[h.to] != unseen {
					continue
				}
				idx.root[h.to] = uint32(s)
				idx.depth[h.to] = idx.depth[v] + 1
				idx.up[0][h.to] = v
				idx.mx[0][h.to] = h.key
				queue = append(queue, h.to)
			}
		}
	}
	for l := 1; l < levels; l++ {
		prevUp, prevMx := idx.up[l-1], idx.mx[l-1]
		curUp, curMx := idx.up[l], idx.mx[l]
		par.ForEach(0, n, 8192, func(v int) {
			mid := prevUp[v]
			curUp[v] = prevUp[mid]
			curMx[v] = max(prevMx[v], prevMx[mid])
		})
	}
	return idx
}

// pathMax returns the maximum key on the forest path between u and v and
// whether they are in the same tree.
func (idx *pathMaxIndex) pathMax(u, v uint32) (uint64, bool) {
	if idx.root[u] != idx.root[v] {
		return 0, false
	}
	var best uint64
	// Equalize depths.
	if idx.depth[u] < idx.depth[v] {
		u, v = v, u
	}
	diff := idx.depth[u] - idx.depth[v]
	for diff != 0 {
		l := bits.TrailingZeros32(uint32(diff))
		best = max(best, idx.mx[l][u])
		u = idx.up[l][u]
		diff &= diff - 1
	}
	if u == v {
		return best, true
	}
	for l := len(idx.up) - 1; l >= 0; l-- {
		if idx.up[l][u] != idx.up[l][v] {
			best = max(best, idx.mx[l][u], idx.mx[l][v])
			u, v = idx.up[l][u], idx.up[l][v]
		}
	}
	best = max(best, idx.mx[0][u], idx.mx[0][v])
	return best, true
}
