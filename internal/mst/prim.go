package mst

import (
	"llpmst/internal/graph"
	"llpmst/internal/par"
	"llpmst/internal/pq"
)

// Prim implements Algorithm 2: grow one fragment at a time from each
// unvisited source, always fixing the non-fixed vertex with the smallest
// tentative cost, using an indexed binary heap with decrease-key
// (H.insertOrAdjust). Runs over every component, so disconnected inputs
// yield the minimum spanning forest.
func Prim(g *graph.CSR) *Forest { return primIndexed(g, nil) }

func primIndexed(g *graph.CSR, mtr *WorkMetrics) *Forest {
	n := g.NumVertices()
	fixed := make([]bool, n)
	dist := make([]uint64, n)
	parentEdge := make([]uint32, n)
	for i := range dist {
		dist[i] = par.InfKey
	}
	h := pq.NewIndexedHeap(n)
	ids := make([]uint32, 0, n)
	var pushes, pops, relaxations int64
	for s := 0; s < n; s++ {
		if fixed[s] {
			continue
		}
		dist[s] = 0
		h.InsertOrDecrease(uint32(s), 0)
		pushes++
		for !h.Empty() {
			j, _ := h.PopMin()
			pops++
			fixed[j] = true
			if j != uint32(s) {
				ids = append(ids, parentEdge[j])
			}
			lo, hi := g.ArcRange(j)
			for a := lo; a < hi; a++ {
				k := g.Target(a)
				if fixed[k] {
					continue
				}
				if key := g.ArcKey(a); key < dist[k] {
					dist[k] = key
					parentEdge[k] = g.ArcEdgeID(a)
					h.InsertOrDecrease(k, key)
					pushes++
					relaxations++
				}
			}
		}
	}
	if mtr != nil {
		*mtr = WorkMetrics{
			HeapPushes: pushes, HeapPops: pops,
			HeapFixes: pops, Relaxations: relaxations,
		}
	}
	return newForest(g, ids)
}

// PrimLazy implements the simplified variant §IV analyses: instead of
// adjusting keys in place, every relaxation pushes a fresh (key, vertex)
// entry, and stale pops (already-fixed vertices) are skipped. Same
// O(m log n) bound with a larger heap; kept as a baseline because LLP-Prim's
// heap H has the same lazy discipline.
func PrimLazy(g *graph.CSR) *Forest { return primLazy(g, nil) }

func primLazy(g *graph.CSR, mtr *WorkMetrics) *Forest {
	n := g.NumVertices()
	fixed := make([]bool, n)
	dist := make([]uint64, n)
	parentEdge := make([]uint32, n)
	for i := range dist {
		dist[i] = par.InfKey
	}
	h := pq.NewLazyHeap(n)
	ids := make([]uint32, 0, n)
	var pushes, pops, stale, relaxations int64
	for s := 0; s < n; s++ {
		if fixed[s] {
			continue
		}
		dist[s] = 0
		h.Push(uint32(s), 0)
		pushes++
		for !h.Empty() {
			j, key := h.PopMin()
			pops++
			if fixed[j] || key != dist[j] {
				stale++
				continue // stale entry
			}
			fixed[j] = true
			if j != uint32(s) {
				ids = append(ids, parentEdge[j])
			}
			lo, hi := g.ArcRange(j)
			for a := lo; a < hi; a++ {
				k := g.Target(a)
				if fixed[k] {
					continue
				}
				if key := g.ArcKey(a); key < dist[k] {
					dist[k] = key
					parentEdge[k] = g.ArcEdgeID(a)
					h.Push(k, key)
					pushes++
					relaxations++
				}
			}
		}
	}
	if mtr != nil {
		*mtr = WorkMetrics{
			HeapPushes: pushes, HeapPops: pops, StalePops: stale,
			HeapFixes: pops - stale, Relaxations: relaxations,
		}
	}
	return newForest(g, ids)
}

// PrimPairing is Prim's algorithm on a pairing heap with true decrease-key;
// used by the heap-choice ablation benchmark.
func PrimPairing(g *graph.CSR) *Forest {
	n := g.NumVertices()
	fixed := make([]bool, n)
	nodes := make([]*pq.PairingNode, n)
	parentEdge := make([]uint32, n)
	var h pq.PairingHeap
	ids := make([]uint32, 0, n)
	for s := 0; s < n; s++ {
		if fixed[s] {
			continue
		}
		nodes[s] = h.Push(uint32(s), 0)
		for !h.Empty() {
			j, _ := h.PopMin()
			nodes[j] = nil
			if fixed[j] {
				continue
			}
			fixed[j] = true
			if j != uint32(s) {
				ids = append(ids, parentEdge[j])
			}
			lo, hi := g.ArcRange(j)
			for a := lo; a < hi; a++ {
				k := g.Target(a)
				if fixed[k] {
					continue
				}
				key := g.ArcKey(a)
				switch {
				case nodes[k] == nil:
					nodes[k] = h.Push(k, key)
					parentEdge[k] = g.ArcEdgeID(a)
				case key < nodes[k].Key():
					h.DecreaseKey(nodes[k], key)
					parentEdge[k] = g.ArcEdgeID(a)
				}
			}
		}
	}
	return newForest(g, ids)
}
