package mst

import (
	"slices"
	"sync/atomic"

	"llpmst/internal/graph"
	"llpmst/internal/obs"
	"llpmst/internal/par"
)

// waveRec carries one frontier-expansion outcome of LLPPrimParallel:
// eid == qMark flags a Q candidate, anything else a newly fixed vertex and
// its tree edge.
type waveRec struct{ v, eid uint32 }

// qMark is the waveRec.eid sentinel for "staged for Q, not fixed".
const qMark = ^uint32(0)

// LLP-Prim (Algorithm 5, "early fixing"). The state vector G of the LLP
// formulation (Algorithm 4) — each vertex's currently proposed parent edge —
// is realized here as the packed dist[] key: the low 32 bits of a vertex's
// tentative key are exactly its proposed parent edge id, so advancing G[j]
// and relaxing dist[j] are the same operation.
//
// A vertex becomes fixed in one of the two ways §V.A enumerates:
//
//  1. as the nearest neighbor of the fixed fragment (a heap pop — classic
//     Prim), or
//  2. through a minimum weight edge (MWE): while exploring the arcs of a
//     fixed vertex j, a non-fixed neighbor k is fixed immediately if the arc
//     is j's or k's minimum-weight edge. Such edges are always in the MSF
//     (they are first-round Boruvka edges), so no heap traffic is needed and
//     the fixing can cascade: k joins the bag R and is explored in turn.
//
// Relaxations discovered while draining R are staged in the set Q and pushed
// into the heap only when R empties — Algorithm 5's device for avoiding
// insertOrAdjust churn while the bag is hot. Both optimizations have
// ablation switches in Options.
//
// The fixed set always forms a subtree of the (unique) MSF of its component:
// early fixing adds minimum-incident edges, heap pops add minimum cut edges,
// and each newly fixed vertex contributes exactly one edge. That invariant
// is why LLP-Prim(1T) performs strictly less heap work than Prim on the same
// input, the effect Fig. 2 measures.

// LLPPrim runs the sequential (1-thread) LLP-Prim of Algorithm 5.
// Disconnected inputs are handled by restarting from each unvisited vertex,
// producing the minimum spanning forest. Cancellation via opts.Ctx is
// polled once per explored vertex; a cancelled run returns the partial
// forest plus a non-nil error, and a panic (e.g. from an Observer) is
// converted into a *par.PanicError the same way (see recoverPanic).
func LLPPrim(g *graph.CSR, opts Options) (f *Forest, err error) {
	n := g.NumVertices()
	ws, release := opts.workspace()
	defer release()
	ids := ws.idsBuf(n)[:0]
	defer recoverPanic(AlgLLPPrim, g, &ids, n-1, &f, &err)
	mwe := minWeightEdges(1, g)
	earlyFix := !opts.NoEarlyFix
	staging := !opts.NoStaging
	cc := opts.canceller()
	col := opts.collector()
	defer col.Span("llp-prim")()

	fixed := ws.boolsABuf(n)
	clear(fixed)
	dist := ws.keysBuf(n)
	for i := range dist {
		dist[i] = par.InfKey
	}
	h := ws.heapBuf()
	r := ws.bagBuf(n)[:0]   // the bag R of fixed, unexplored vertices
	q := ws.stageBuf(n)[:0] // the staging set Q
	inQ := ws.boolsBBuf(n)
	clear(inQ)
	var pushes, pops, stale, early, heapFixes, relaxations int64
	var ePushes, ePops, eEarly int64 // counts already streamed to col
	var wave, bagHW int64
	step := 0 // work-item index for strided cancellation polls
	// flush streams the not-yet-emitted counter deltas and refreshes the
	// metrics snapshot. It is called once per wave (so round-aware
	// collectors see the early-fix vs heap-pop mix per wave) and once at
	// exit; the emitted-so-far bookkeeping keeps the streamed totals
	// identical to WorkMetrics no matter how often it runs.
	flush := func() {
		if d := pushes - ePushes; d != 0 {
			col.Count(obs.CtrHeapPush, d)
			ePushes = pushes
		}
		if d := pops - ePops; d != 0 {
			col.Count(obs.CtrHeapPop, d)
			ePops = pops
		}
		if d := early - eEarly; d != 0 {
			col.Count(obs.CtrEarlyFix, d)
			eEarly = early
		}
		if opts.Metrics != nil {
			*opts.Metrics = WorkMetrics{
				HeapPushes: pushes, HeapPops: pops, StalePops: stale,
				EarlyFixes: early, HeapFixes: heapFixes, Relaxations: relaxations,
			}
		}
	}

	for s := 0; s < n; s++ {
		if fixed[s] {
			continue
		}
		if cc.Stride(step) {
			goto cancelled
		}
		fixed[s] = true
		r = append(r[:0], uint32(s))
		for {
			// One wave: drain the bag, flush Q, fix one vertex off the heap.
			wave++
			obs.MarkRound(col, wave)
			bagHW = int64(len(r))
			// Drain R: explore fixed vertices, cascading MWE fixings.
			for len(r) > 0 {
				if l := int64(len(r)); l > bagHW {
					bagHW = l
				}
				if step++; cc.Stride(step) {
					goto cancelled
				}
				j := r[len(r)-1]
				r = r[:len(r)-1]
				mweJ := mwe[j]
				lo, hi := g.ArcRange(j)
				for a := lo; a < hi; a++ {
					k := g.Target(a)
					if fixed[k] {
						continue
					}
					key := g.ArcKey(a)
					// Early fix via j's own mwe: a register compare.
					if earlyFix && key == mweJ {
						fixed[k] = true
						ids = append(ids, g.ArcEdgeID(a))
						r = append(r, k)
						early++
						continue
					}
					if key < dist[k] {
						// Early fix via k's mwe. The check can live inside
						// the improvement branch: key == mwe[k] implies
						// key < dist[k], because every other k-incident key
						// exceeds mwe[k] and this arc — the only one that
						// could have written dist[k] = mwe[k] — is explored
						// exactly once, now.
						if earlyFix && key == mwe[k] {
							fixed[k] = true
							ids = append(ids, g.ArcEdgeID(a))
							r = append(r, k)
							early++
							continue
						}
						dist[k] = key
						relaxations++
						if staging {
							if !inQ[k] {
								inQ[k] = true
								q = append(q, k)
							}
						} else {
							h.Push(k, key)
							pushes++
						}
					}
				}
			}
			// R drained: flush Q into the heap.
			if staging {
				for _, k := range q {
					inQ[k] = false
					if !fixed[k] {
						h.Push(k, dist[k])
						pushes++
					}
				}
				q = q[:0]
			}
			// Fix the nearest neighbor of the fragment, if any.
			fixedOne := false
			for !h.Empty() {
				if step++; cc.Stride(step) {
					goto cancelled
				}
				k, key := h.PopMin()
				pops++
				if fixed[k] || key != dist[k] {
					stale++
					continue // stale entry
				}
				fixed[k] = true
				ids = append(ids, par.KeyID(key))
				r = append(r, k)
				heapFixes++
				fixedOne = true
				break
			}
			col.Gauge(obs.GaugeFrontier, bagHW)
			col.Gauge(obs.GaugeHeapSize, int64(h.Len()))
			flush()
			if !fixedOne {
				break // component complete
			}
		}
	}
	flush()
	return newForest(g, slices.Clone(ids)), nil

cancelled:
	flush()
	return newForest(g, slices.Clone(ids)), interrupted(AlgLLPPrim, cc, len(ids), n-1)
}

// LLPPrimParallel runs Algorithm 5 with the bag R processed by
// opts.Workers goroutines: the vertices of R form a frontier whose arcs are
// explored in parallel ("If R consists of multiple vertices then all of them
// can be explored in parallel", §V.A). Fixing races are resolved with a CAS
// per vertex, tentative keys with atomic write-min; the heap is touched only
// in the sequential region between frontier waves, where Q is flushed.
// Cancellation via opts.Ctx is polled between waves and (strided) inside
// them; a cancelled run returns the partial forest plus a non-nil error. A
// worker panic, re-raised by the par runtime after all workers have joined,
// is converted into a *par.PanicError with the same partial-forest contract
// (see recoverPanic).
func LLPPrimParallel(g *graph.CSR, opts Options) (f *Forest, err error) {
	n := g.NumVertices()
	ws, release := opts.workspace()
	defer release()
	ids := ws.idsBuf(n)[:0]
	defer recoverPanic(AlgLLPPrimParallel, g, &ids, n-1, &f, &err)
	p := opts.workers()
	mwe := minWeightEdges(p, g)
	earlyFix := !opts.NoEarlyFix
	staging := !opts.NoStaging
	cc := opts.canceller()
	col := opts.collector()
	defer col.Span("llp-prim-par")()

	fixed := ws.flagsABuf(n) // atomic 0/1
	par.Fill(p, fixed, 0)
	dist := ws.keysBuf(n) // atomic packed keys
	par.FillKeys(p, dist, par.InfKey)
	inQ := ws.flagsBBuf(n) // atomic 0/1
	par.Fill(p, inQ, 0)
	h := ws.heapBuf()
	qbuf := ws.stageBuf(n)[:0]

	frontier := ws.bagBuf(n)[:0]
	// The wave body is hoisted out of the round loop (capturing the current
	// wave through the variable) so steady-state rounds allocate nothing.
	// Each chunk runs under the executing worker's attributed collector
	// view: the chunk's exploration span and early-fix count land on that
	// worker's track. The driver deliberately does NOT emit CtrEarlyFix —
	// a chunk's non-qMark records are exactly the CAS-won fixings the
	// driver later counts into WorkMetrics, so the streamed total already
	// matches and double emission would break observer/metrics consistency.
	var wave []uint32
	waveBody := func(w, lo, hi int, out []waveRec) []waveRec {
		wcol := obs.ForWorker(col, w)
		endChunk := wcol.Span("llp-prim-par.wave")
		var chunkEarly int64
		for i := lo; i < hi; i++ {
			if cc.Stride(i) {
				break
			}
			j := wave[i]
			mweJ := mwe[j]
			alo, ahi := g.ArcRange(j)
			for a := alo; a < ahi; a++ {
				k := g.Target(a)
				if atomic.LoadUint32(&fixed[k]) == 1 {
					continue
				}
				key := g.ArcKey(a)
				if earlyFix && key == mweJ {
					if atomic.CompareAndSwapUint32(&fixed[k], 0, 1) {
						out = append(out, waveRec{k, g.ArcEdgeID(a)})
						chunkEarly++
					}
					continue
				}
				// Early fix via k's own mwe (the paper's other half of "this
				// edge could be the minimum weight edge for z or for k").
				if earlyFix && key == mwe[k] {
					if atomic.CompareAndSwapUint32(&fixed[k], 0, 1) {
						out = append(out, waveRec{k, g.ArcEdgeID(a)})
						chunkEarly++
					}
					continue
				}
				if par.WriteMin(&dist[k], key) {
					if !staging {
						// Ablation: no dedup — every improvement becomes a
						// heap push, re-creating the churn Q avoids.
						out = append(out, waveRec{k, qMark})
					} else if atomic.CompareAndSwapUint32(&inQ[k], 0, 1) {
						out = append(out, waveRec{k, qMark})
					}
				}
			}
		}
		if chunkEarly != 0 {
			wcol.Count(obs.CtrEarlyFix, chunkEarly)
		}
		endChunk()
		return out
	}
	var pushes, pops, stale, early, heapFixes int64
	var ePushes, ePops int64 // counts already streamed to col
	var waveNo int64
	step := 0 // work-item index for strided cancellation polls in the heap loop
	// flush streams the not-yet-emitted heap counter deltas (early fixes
	// are streamed by the wave chunks, attributed to workers) and
	// refreshes the metrics snapshot; called once per wave and at exit.
	flush := func() {
		if d := pushes - ePushes; d != 0 {
			col.Count(obs.CtrHeapPush, d)
			ePushes = pushes
		}
		if d := pops - ePops; d != 0 {
			col.Count(obs.CtrHeapPop, d)
			ePops = pops
		}
		if opts.Metrics != nil {
			*opts.Metrics = WorkMetrics{
				HeapPushes: pushes, HeapPops: pops, StalePops: stale,
				EarlyFixes: early, HeapFixes: heapFixes,
			}
		}
	}
	for s := 0; s < n; s++ {
		if atomic.LoadUint32(&fixed[s]) == 1 {
			continue
		}
		if cc.Stride(s) {
			goto cancelled
		}
		fixed[s] = 1
		frontier = append(frontier[:0], uint32(s))
		for {
			for len(frontier) > 0 {
				if cc.Poll() {
					goto cancelled
				}
				waveNo++
				obs.MarkRound(col, waveNo)
				col.Gauge(obs.GaugeFrontier, int64(len(frontier)))
				wave = frontier
				out := par.ForCollectIntoW(p, len(wave), 32, ws.recs, waveBody)
				ws.recs = out[:0] // keep grown capacity for the next wave
				frontier = frontier[:0]
				for _, r := range out {
					if r.eid == qMark {
						qbuf = append(qbuf, r.v)
					} else {
						ids = append(ids, r.eid)
						frontier = append(frontier, r.v)
						early++
					}
				}
			}
			// Sequential region (post-barrier): flush Q, then fix the
			// nearest neighbor of the fragment.
			for _, k := range qbuf {
				if staging {
					inQ[k] = 0
				}
				if fixed[k] == 0 {
					h.Push(k, dist[k])
					pushes++
				}
			}
			qbuf = qbuf[:0]
			col.Gauge(obs.GaugeHeapSize, int64(h.Len()))
			fixedOne := false
			for !h.Empty() {
				if step++; cc.Stride(step) {
					goto cancelled
				}
				k, key := h.PopMin()
				pops++
				if fixed[k] == 1 || key != dist[k] {
					stale++
					continue
				}
				fixed[k] = 1
				ids = append(ids, par.KeyID(key))
				frontier = append(frontier, k)
				heapFixes++
				fixedOne = true
				break
			}
			flush()
			if !fixedOne {
				break
			}
		}
	}
	flush()
	return newForest(g, slices.Clone(ids)), nil

cancelled:
	flush()
	return newForest(g, slices.Clone(ids)), interrupted(AlgLLPPrimParallel, cc, len(ids), n-1)
}
