package mst

import (
	"sync"
	"sync/atomic"

	"llpmst/internal/llp"
	"llpmst/internal/par"
	"llpmst/internal/pq"
	"llpmst/internal/sched"
	"llpmst/internal/unionfind"
)

// Workspace is an arena of reusable scratch buffers for the parallel MSF
// algorithms. Every call to LLPPrim, LLPPrimParallel, LLPPrimAsync,
// ParallelBoruvka, LLPBoruvka, or SemiringBoruvka needs O(n+m) scratch
// state (tentative-key
// arrays, fixed flags, contraction ping-pong edge buffers, heaps, work
// bags); without a workspace that state is allocated per call and becomes
// garbage at return — exactly the overhead a server answering repeated MSF
// queries cannot afford. Pass a Workspace through Options.Workspace and the
// algorithms draw all of it from here instead: buffers grow lazily to the
// largest (n, m, workers) seen and are then reused as-is, so
// second-and-later calls allocate O(1) memory (the returned Forest and its
// exact-size edge-id slice are the only per-call allocations).
//
// A Workspace is NOT safe for concurrent use: it is one run's scratch
// state. Concurrent callers either keep one Workspace per goroutine or
// leave Options.Workspace nil, in which case the algorithms draw from an
// internal sync.Pool — per-P reuse with no coordination, the right default
// for concurrent servers. Sharing one Workspace across two simultaneous
// runs is detected by a busy flag and panics rather than corrupting both
// runs' state.
//
// The returned Forest never aliases workspace memory; it remains valid
// after the workspace is reused or dropped.
//
// Under `go test -race`, acquiring a workspace poisons its buffers with a
// junk pattern first, so an algorithm that wrongly assumes make()-zeroed
// scratch reads garbage and fails loudly in the race suite instead of
// working by accident on a fresh arena.
type Workspace struct {
	busy atomic.Bool

	// Per-vertex scratch (sized to n).
	keys   []uint64 // tentative packed keys: dist / best
	flagsA []uint32 // atomic 0/1 or labels: fixed / comp
	flagsB []uint32 // atomic 0/1: inQ
	vertsA []uint32 // component labels: G (LLP-Boruvka parents)
	vertsB []uint32 // relabel targets: newID
	vertsC []uint32 // star roots of the current contraction round
	vIdx   []int32  // best-edge index: bestIdx
	boolsA []bool   // sequential fixed flags
	boolsB []bool   // sequential inQ flags
	ids    []uint32 // chosen forest edge ids (≤ n-1)
	bag    []uint32 // bag R / frontier / scheduler seed
	stage  []uint32 // staging set Q
	picks  []uint32 // per-round collected winners / roots
	recs   []waveRec

	// Per-edge scratch (sized to m).
	cedges []cedge  // contracted edge list
	cspare []cedge  // contraction ping-pong target
	eIDs   []uint32 // live edge ids / canonical-id -> row-entry index
	eSpare []uint32 // live-edge compaction ping-pong target
	eFlags []uint32 // atomic 0/1 per edge: inT

	// Semiring (sparse-matrix) scratch: the per-round row structure of the
	// contracted adjacency matrix (sized to n+1 and 2m).
	rowOff  []int64  // row offsets into arcKeys (CSR-style, nv+1 live)
	arcKeys []uint64 // row-major packed (weight, id) matrix entries

	// Per-worker cache-line-padded counter block (sized to workers).
	counters []int64

	// Reusable sub-structures.
	heap     *pq.LazyHeap
	jump     *llp.PointerJump
	uf       *unionfind.Concurrent
	asyncBag sched.Bag[uint32]
}

// NewWorkspace returns an empty Workspace. Buffers are grown on first use;
// the zero value is equally valid.
func NewWorkspace() *Workspace { return &Workspace{} }

// EstimateScratchBytes returns the steady-state scratch footprint, in
// bytes, that one run of the parallel algorithms on an (n vertices, m
// edges, workers goroutines) input draws from its Workspace. The estimate
// is computed from the arena's own buffer inventory above — per-vertex
// (keys, flag words, label arrays, bags), per-edge (contraction ping-pong
// cedge pairs, live-id compaction pairs, edge flags), per-worker padded
// counters, and the reusable heap/union-find sub-structures — so it tracks
// the real allocation behavior rather than a hand-tuned constant.
// Admission controllers use it to decide whether a request's scratch fits a
// memory budget before any of it is allocated.
func EstimateScratchBytes(n, m, workers int) int64 {
	if n < 0 {
		n = 0
	}
	if m < 0 {
		m = 0
	}
	if workers < 1 {
		workers = 1
	}
	const (
		cedgeBytes   = 16 // u, v uint32 + key uint64
		waveRecBytes = 8  // v, eid uint32
	)
	perVertex := int64(8 + // keys
		4*5 + // flagsA, flagsB, vertsA, vertsB, vertsC
		4 + // vIdx
		2 + // boolsA, boolsB
		4*4 + // ids, bag, stage, picks
		waveRecBytes + // recs (one wave record per fixed vertex)
		8 + // union-find parent+rank words
		8 + // pointer-jump shadow state
		8) // semiring row offsets
	perEdge := int64(2*cedgeBytes + // cedges + cspare
		2*4 + // eIDs + eSpare
		4 + // eFlags
		2*8 + // semiring matrix entries (one per arc, two per edge)
		16) // lazy-heap entries (worst case: every arc relaxation staged)
	perWorker := int64(8*par.PadStride) + 512 // counters + scheduler deque headers
	return int64(n)*perVertex + int64(m)*perEdge + int64(workers)*perWorker
}

// workspacePool backs the nil-Options.Workspace default: algorithms borrow
// a Workspace for the duration of one run and return it, so a server
// hammering the package concurrently gets per-P buffer reuse for free.
var workspacePool = sync.Pool{New: func() any { return new(Workspace) }}

// workspace resolves the run's Workspace: the caller's (acquired, panics on
// concurrent sharing) or a pooled one. release must be called exactly once
// when the run no longer touches the buffers — after every parallel worker
// has joined, which the par/sched runtimes guarantee even on panic.
func (o Options) workspace() (ws *Workspace, release func()) {
	if o.Workspace != nil {
		ws = o.Workspace
		ws.acquire()
		return ws, ws.release
	}
	ws = workspacePool.Get().(*Workspace)
	ws.acquire()
	return ws, func() {
		ws.release()
		workspacePool.Put(ws)
	}
}

// acquire marks the workspace busy (panicking if it already is) and, in
// race-enabled builds, poisons all current buffers.
func (w *Workspace) acquire() {
	if !w.busy.CompareAndSwap(false, true) {
		panic("mst: Workspace used by two runs concurrently; use one Workspace per goroutine")
	}
	if raceEnabled {
		w.poison()
	}
}

func (w *Workspace) release() {
	if !w.busy.CompareAndSwap(true, false) {
		panic("mst: Workspace released twice")
	}
}

// poison overwrites every buffer with a recognizable junk pattern. Only
// called under the race detector (see workspace_race.go): correctness must
// come from explicit initialization, never from reuse of a previous run's
// state or from make() zeroing.
func (w *Workspace) poison() {
	const p64 = 0xDEADBEEFDEADBEEF
	const p32 = uint32(0xDEADBEEF)
	for i := range w.keys {
		w.keys[i] = p64
	}
	for _, s := range [][]uint32{w.flagsA, w.flagsB, w.vertsA, w.vertsB, w.vertsC, w.ids, w.bag, w.stage, w.picks, w.eIDs, w.eSpare, w.eFlags} {
		for i := range s {
			s[i] = p32
		}
	}
	for i := range w.vIdx {
		w.vIdx[i] = -0x5EED
	}
	for i := range w.boolsA {
		w.boolsA[i] = true
	}
	for i := range w.boolsB {
		w.boolsB[i] = true
	}
	for i := range w.cedges {
		w.cedges[i] = cedge{u: p32, v: p32, key: p64}
	}
	for i := range w.cspare {
		w.cspare[i] = cedge{u: p32, v: p32, key: p64}
	}
	for i := range w.counters {
		w.counters[i] = -1
	}
	for i := range w.rowOff {
		w.rowOff[i] = -0x5EED
	}
	for i := range w.arcKeys {
		w.arcKeys[i] = p64
	}
	for i := range w.recs {
		w.recs[i] = waveRec{v: p32, eid: p32}
	}
}

// grow returns (*s)[:n], reallocating only when capacity is insufficient.
// Contents are unspecified; callers initialize what they read.
func grow[T any](s *[]T, n int) []T {
	if cap(*s) < n {
		*s = make([]T, n)
	}
	*s = (*s)[:n]
	return *s
}

// The acquire methods below hand out the named buffer at the requested
// size. They are trivially cheap after the first (largest) run.

func (w *Workspace) keysBuf(n int) []uint64   { return grow(&w.keys, n) }
func (w *Workspace) flagsABuf(n int) []uint32 { return grow(&w.flagsA, n) }
func (w *Workspace) flagsBBuf(n int) []uint32 { return grow(&w.flagsB, n) }
func (w *Workspace) vertsABuf(n int) []uint32 { return grow(&w.vertsA, n) }
func (w *Workspace) vertsBBuf(n int) []uint32 { return grow(&w.vertsB, n) }
func (w *Workspace) vertsCBuf(n int) []uint32 { return grow(&w.vertsC, n) }
func (w *Workspace) vIdxBuf(n int) []int32    { return grow(&w.vIdx, n) }
func (w *Workspace) boolsABuf(n int) []bool   { return grow(&w.boolsA, n) }
func (w *Workspace) boolsBBuf(n int) []bool   { return grow(&w.boolsB, n) }
func (w *Workspace) idsBuf(n int) []uint32    { return grow(&w.ids, n) }
func (w *Workspace) bagBuf(n int) []uint32    { return grow(&w.bag, n) }
func (w *Workspace) stageBuf(n int) []uint32  { return grow(&w.stage, n) }
func (w *Workspace) cedgesBuf(m int) []cedge  { return grow(&w.cedges, m) }
func (w *Workspace) cspareBuf(m int) []cedge  { return grow(&w.cspare, m) }
func (w *Workspace) eIDsBuf(m int) []uint32   { return grow(&w.eIDs, m) }
func (w *Workspace) eSpareBuf(m int) []uint32 { return grow(&w.eSpare, m) }
func (w *Workspace) eFlagsBuf(m int) []uint32 { return grow(&w.eFlags, m) }

// rowOffBuf returns the semiring backend's row-offset table (n+1 entries
// for an n-row matrix); arcKeysBuf returns its row-major entry array (two
// entries per undirected edge).
func (w *Workspace) rowOffBuf(n int) []int64    { return grow(&w.rowOff, n) }
func (w *Workspace) arcKeysBuf(m2 int) []uint64 { return grow(&w.arcKeys, m2) }

// countersBuf returns the padded per-worker counter block for p workers
// (par.PadStride int64s per worker — one cache line each).
func (w *Workspace) countersBuf(p int) []int64 { return grow(&w.counters, p*par.PadStride) }

// heapBuf returns the reusable lazy heap, emptied.
func (w *Workspace) heapBuf() *pq.LazyHeap {
	if w.heap == nil {
		w.heap = pq.NewLazyHeap(64)
	}
	w.heap.Reset()
	return w.heap
}

// jumpBuf returns the reusable pointer-jumping LLP instance over parent.
func (w *Workspace) jumpBuf(parent []uint32) *llp.PointerJump {
	if w.jump == nil {
		w.jump = llp.NewPointerJump(parent)
		return w.jump
	}
	w.jump.Reset(parent)
	return w.jump
}

// asyncBagBuf returns the reusable work bag for the sched-driven variant.
func (w *Workspace) asyncBagBuf() *sched.Bag[uint32] { return &w.asyncBag }

// ufBuf returns the reusable concurrent union-find, reset to n singletons.
func (w *Workspace) ufBuf(n int) *unionfind.Concurrent {
	if w.uf == nil {
		w.uf = unionfind.NewConcurrent(n)
		return w.uf
	}
	w.uf.Reset(n)
	return w.uf
}
