package mst

import (
	"slices"
	"testing"

	"llpmst/internal/gen"
	"llpmst/internal/graph"
)

func TestCheckForestRejectsCorruptions(t *testing.T) {
	g := gen.Complete(12, 5)
	good := Kruskal(g)
	if err := CheckForest(g, good); err != nil {
		t.Fatalf("good forest rejected: %v", err)
	}

	corrupt := func(mutate func(f *Forest)) *Forest {
		f := &Forest{
			N:       good.N,
			EdgeIDs: slices.Clone(good.EdgeIDs),
			Weight:  good.Weight,
			Trees:   good.Trees,
		}
		mutate(f)
		return f
	}

	cases := []struct {
		name   string
		forest *Forest
	}{
		{"wrong-n", corrupt(func(f *Forest) { f.N++ })},
		{"edge-out-of-range", corrupt(func(f *Forest) { f.EdgeIDs[0] = uint32(g.NumEdges()) })},
		{"duplicate-edge", corrupt(func(f *Forest) { f.EdgeIDs[1] = f.EdgeIDs[0] })},
		{"missing-edge", corrupt(func(f *Forest) { f.EdgeIDs = f.EdgeIDs[:len(f.EdgeIDs)-1] })},
		{"wrong-weight", corrupt(func(f *Forest) { f.Weight += 1 })},
		{"wrong-trees", corrupt(func(f *Forest) { f.Trees++ })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := CheckForest(g, tc.forest); err == nil {
				t.Fatal("corrupt forest accepted")
			}
		})
	}
}

func TestCheckForestRejectsCycle(t *testing.T) {
	// 4 vertices in a cycle; a "forest" containing all 4 cycle edges.
	g := gen.Cycle(4, 1)
	ids := []uint32{0, 1, 2, 3}
	var w float64
	for _, id := range ids {
		w += float64(g.Edge(id).W)
	}
	f := &Forest{N: 4, EdgeIDs: ids, Weight: w, Trees: 0}
	if err := CheckForest(g, f); err == nil {
		t.Fatal("cyclic edge set accepted")
	}
}

func TestVerifyMinimumRejectsNonMinimalSpanningTree(t *testing.T) {
	// Build a spanning tree that is valid but not minimal: take Kruskal's
	// MST, remove its heaviest edge, and reconnect the two sides with a
	// strictly heavier non-tree edge.
	g := gen.Complete(10, 7)
	mst := Kruskal(g)
	inTree := make([]bool, g.NumEdges())
	for _, id := range mst.EdgeIDs {
		inTree[id] = true
	}
	// Heaviest tree edge by key.
	var heavyIdx int
	var heavyKey uint64
	for i, id := range mst.EdgeIDs {
		if k := g.EdgeKey(id); k > heavyKey {
			heavyKey, heavyIdx = k, i
		}
	}
	removed := mst.EdgeIDs[heavyIdx]
	rest := slices.Delete(slices.Clone(mst.EdgeIDs), heavyIdx, heavyIdx+1)
	// Find the two components of the tree minus the removed edge.
	sub := graph.MustFromEdges(1, g.NumVertices(), edgesOf(g, rest))
	labels, _ := sub.Components()
	e := g.Edge(removed)
	// A non-tree edge crossing the same cut, heavier than the removed edge.
	var swap uint32
	found := false
	for id := 0; id < g.NumEdges(); id++ {
		if inTree[id] {
			continue
		}
		c := g.Edge(uint32(id))
		if labels[c.U] != labels[c.V] && g.EdgeKey(uint32(id)) > heavyKey {
			swap, found = uint32(id), true
			break
		}
	}
	if !found {
		t.Skip("no heavier crossing edge in this instance")
	}
	bad := append(rest, swap)
	slices.Sort(bad)
	var w float64
	for _, id := range bad {
		w += float64(g.Edge(id).W)
	}
	f := &Forest{N: g.NumVertices(), EdgeIDs: bad, Weight: w, Trees: 1}
	if err := CheckForest(g, f); err != nil {
		t.Fatalf("swapped tree should still be a valid spanning tree: %v", err)
	}
	if err := VerifyMinimum(g, f); err == nil {
		t.Fatal("non-minimal spanning tree accepted as minimal")
	}
	_ = e
}

func edgesOf(g *graph.CSR, ids []uint32) []graph.Edge {
	out := make([]graph.Edge, 0, len(ids))
	for _, id := range ids {
		out = append(out, g.Edge(id))
	}
	return out
}

func TestVerifyMinimumAcceptsAllAlgorithmsOnBiggerGraph(t *testing.T) {
	g := gen.RMAT(1, 10, 8, gen.WeightUniform, 77)
	for _, alg := range Algorithms() {
		f, err := Run(alg, g, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyMinimum(g, f); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}
}

func TestVerifyMinimumEmptyAndTiny(t *testing.T) {
	empty := graph.MustFromEdges(1, 0, nil)
	if err := VerifyMinimum(empty, Kruskal(empty)); err != nil {
		t.Fatal(err)
	}
	single := graph.MustFromEdges(1, 1, nil)
	if err := VerifyMinimum(single, Kruskal(single)); err != nil {
		t.Fatal(err)
	}
	pair := graph.MustFromEdges(1, 2, []graph.Edge{{U: 0, V: 1, W: 9}})
	if err := VerifyMinimum(pair, Kruskal(pair)); err != nil {
		t.Fatal(err)
	}
}

func TestPathMaxIndexQueries(t *testing.T) {
	// Path 0-1-2-3-4 with weights 10, 20, 30, 40: max on path(0,4) = 40.
	g := gen.Path(5, []float32{10, 20, 30, 40})
	f := Kruskal(g)
	idx := newPathMaxIndex(g, f)
	tests := []struct {
		u, v uint32
		want float32
	}{
		{0, 4, 40}, {0, 1, 10}, {1, 3, 30}, {4, 0, 40}, {2, 2, 0},
	}
	for _, tc := range tests {
		key, same := idx.pathMax(tc.u, tc.v)
		if !same {
			t.Fatalf("path(%d,%d): not same tree", tc.u, tc.v)
		}
		if tc.u == tc.v {
			if key != 0 {
				t.Fatalf("path(%d,%d) = %d, want 0", tc.u, tc.v, key)
			}
			continue
		}
		if got := g.Edge(keyID(key)).W; got != tc.want {
			t.Fatalf("path(%d,%d) max weight %v, want %v", tc.u, tc.v, got, tc.want)
		}
	}
	// Different trees.
	d := gen.Disconnected(2, 4, 3)
	fd := Kruskal(d)
	idx2 := newPathMaxIndex(d, fd)
	if _, same := idx2.pathMax(0, 5); same {
		t.Fatal("vertices in different trees reported as connected")
	}
}
