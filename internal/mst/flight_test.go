package mst

import (
	"testing"

	"llpmst/internal/gen"
	"llpmst/internal/obs"
)

// TestFlightRecorderCountersMatchWorkMetrics repeats the observer/metrics
// consistency check against the flight recorder: the per-wave delta
// streaming must sum to exactly the WorkMetrics totals, with worker
// attribution changing where counts land but never how much is counted.
func TestFlightRecorderCountersMatchWorkMetrics(t *testing.T) {
	g := gen.ErdosRenyi(1, 1000, 8000, gen.WeightUniform, 21)
	for _, alg := range []Algorithm{
		AlgLLPPrim, AlgLLPPrimParallel, AlgLLPPrimAsync,
		AlgParallelBoruvka, AlgLLPBoruvka,
	} {
		t.Run(string(alg), func(t *testing.T) {
			rec := obs.NewFlightRecorder(2, 1<<16)
			var m WorkMetrics
			if _, err := Run(alg, g, Options{Workers: 2, Observer: rec, Metrics: &m}); err != nil {
				t.Fatal(err)
			}
			checks := []struct {
				ctr  obs.Counter
				want int64
			}{
				{obs.CtrRounds, m.Rounds},
				{obs.CtrJumpRounds, m.JumpRounds},
				{obs.CtrJumpAdvances, m.JumpAdvances},
				{obs.CtrHeapPush, m.HeapPushes},
				{obs.CtrHeapPop, m.HeapPops},
				{obs.CtrEarlyFix, m.EarlyFixes},
			}
			for _, c := range checks {
				if got := rec.Counter(c.ctr); got != c.want {
					t.Errorf("streamed %s = %d, WorkMetrics says %d", c.ctr, got, c.want)
				}
			}
		})
	}
}

// TestFlightRecorderRoundSeriesFromAlgorithms drives real runs and checks
// the convergence view the tentpole exists for: the Boruvka families must
// produce one segment per contraction round with strictly decreasing live
// edges, and the Prim families one segment per wave with early-fix /
// heap-pop activity recorded.
func TestFlightRecorderRoundSeriesFromAlgorithms(t *testing.T) {
	g := gen.ErdosRenyi(1, 500, 4000, gen.WeightUniform, 33)

	t.Run("llp-boruvka", func(t *testing.T) {
		rec := obs.NewFlightRecorder(2, 1<<16)
		var m WorkMetrics
		if _, err := LLPBoruvka(g, Options{Workers: 2, Observer: rec, Metrics: &m}); err != nil {
			t.Fatal(err)
		}
		series := rec.RoundSeries()
		if int64(len(series)) != m.Rounds {
			t.Fatalf("round series has %d segments, run had %d rounds", len(series), m.Rounds)
		}
		prev := int64(g.NumEdges()) + 1
		var jumpAdvances int64
		for i, rs := range series {
			if rs.Round != int64(i+1) {
				t.Fatalf("segment %d carries round %d", i, rs.Round)
			}
			live, ok := rs.Gauge(obs.GaugeLiveEdges)
			if !ok {
				t.Fatalf("round %d has no live-edge sample", rs.Round)
			}
			if live >= prev {
				t.Fatalf("live edges did not shrink: round %d has %d, previous %d", rs.Round, live, prev)
			}
			prev = live
			if rs.Counter(obs.CtrRounds) != 1 {
				t.Fatalf("round %d segment contains %d round counts", rs.Round, rs.Counter(obs.CtrRounds))
			}
			jumpAdvances += rs.Counter(obs.CtrJumpAdvances)
		}
		if jumpAdvances != m.JumpAdvances {
			t.Errorf("per-round jump advances sum to %d, WorkMetrics says %d", jumpAdvances, m.JumpAdvances)
		}
	})

	t.Run("llp-prim", func(t *testing.T) {
		rec := obs.NewFlightRecorder(1, 1<<16)
		var m WorkMetrics
		if _, err := LLPPrim(g, Options{Observer: rec, Metrics: &m}); err != nil {
			t.Fatal(err)
		}
		series := rec.RoundSeries()
		if len(series) == 0 {
			t.Fatal("no wave segments recorded")
		}
		var early, pops int64
		for _, rs := range series {
			early += rs.Counter(obs.CtrEarlyFix)
			pops += rs.Counter(obs.CtrHeapPop)
		}
		if early != m.EarlyFixes {
			t.Errorf("per-wave early fixes sum to %d, WorkMetrics says %d", early, m.EarlyFixes)
		}
		if pops != m.HeapPops {
			t.Errorf("per-wave heap pops sum to %d, WorkMetrics says %d", pops, m.HeapPops)
		}
	})
}

// TestFlightRecorderWorkerSpans checks that parallel runs actually put
// chunk spans on worker tracks — the "one track per worker" acceptance
// criterion, exercised end to end.
func TestFlightRecorderWorkerSpans(t *testing.T) {
	g := gen.ErdosRenyi(1, 3000, 30000, gen.WeightUniform, 7)
	rec := obs.NewFlightRecorder(4, 1<<16)
	if _, err := LLPBoruvka(g, Options{Workers: 4, Observer: rec}); err != nil {
		t.Fatal(err)
	}
	workers := map[int16]bool{}
	for _, e := range rec.Events() {
		if e.Kind == obs.EvSpanEnd && rec.SpanName(e.ID) == "llp-boruvka.parents.chunk" {
			workers[e.Worker] = true
		}
	}
	if len(workers) < 2 {
		t.Fatalf("parent chunk spans on %d worker tracks, want >= 2 (%v)", len(workers), workers)
	}
	if _, ok := rec.SpanSummary("llp-boruvka.parents.chunk"); !ok {
		t.Fatal("no latency digest for the chunk span")
	}
}

// TestFlightRecorderSteadyStateAllocs: the enabled recorder must not
// reintroduce per-element allocation — a warm-workspace run with a flight
// recorder attached stays within the PR 3 per-algorithm bounds (the
// recorder's ring writes are allocation-free; only the driver's O(rounds)
// constants remain).
func TestFlightRecorderSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	g := stressGraph("sparse", 42)
	bounds := map[Algorithm]float64{
		AlgLLPPrim:         8,
		AlgLLPPrimParallel: 12,
		AlgLLPPrimAsync:    16,
		AlgParallelBoruvka: 32,
		AlgLLPBoruvka:      96,
	}
	for alg, bound := range bounds {
		t.Run(string(alg), func(t *testing.T) {
			rec := obs.NewFlightRecorder(1, 1<<16)
			ws := NewWorkspace()
			opts := Options{Workers: 1, Workspace: ws, Observer: rec}
			// Warm the workspace and the recorder's span intern table.
			if _, err := Run(alg, g, opts); err != nil {
				t.Fatal(err)
			}
			n := testing.AllocsPerRun(10, func() {
				if _, err := Run(alg, g, opts); err != nil {
					t.Fatal(err)
				}
			})
			if n > bound {
				t.Errorf("steady-state allocs/run with recorder = %v, want <= %v", n, bound)
			}
		})
	}
}
