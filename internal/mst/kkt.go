package mst

import (
	"math/rand"

	"llpmst/internal/graph"
	"llpmst/internal/par"
	"llpmst/internal/unionfind"
)

// KKT implements the Karger–Klein–Tarjan randomized expected-linear-time
// minimum spanning forest algorithm — the §III lineage ("a randomized
// linear time algorithm was proposed by Karger... later demonstrated to run
// in linear time... with Klein, Tarjan") the paper names as the comparison
// target for its future work. Each level:
//
//  1. runs two Boruvka contraction steps (every chosen edge is an MSF edge;
//     the vertex count at least halves per step);
//  2. samples the surviving edges independently with probability 1/2;
//  3. recursively computes the sample's MSF F;
//  4. discards every F-heavy edge — an edge whose endpoints F connects by a
//     path of everywhere-lighter edges cannot be in the MSF (cycle
//     property), checked with the same binary-lifting path-maximum index
//     the verifier uses;
//  5. recurses on the F-light survivors.
//
// The sampling lemma bounds the expected number of F-light edges by the
// contracted vertex count, giving expected O(m + n) work. The result is
// still the unique canonical MSF: randomness affects only the work, never
// the output (tests run multiple seeds against the Kruskal oracle).
//
// The coin flips come from Options.Seed, so runs are reproducible.
func KKT(g *graph.CSR, opts Options) *Forest {
	m := g.NumEdges()
	edges := make([]cedge, m)
	for i := 0; i < m; i++ {
		e := g.Edge(uint32(i))
		edges[i] = cedge{u: e.U, v: e.V, key: par.PackKey(e.W, uint32(i))}
	}
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x6b6b74)) // "kkt"
	k := &kktState{rng: rng, marks: make([]bool, m)}
	ids := k.msf(g.NumVertices(), edges)
	if opts.Metrics != nil {
		*opts.Metrics = WorkMetrics{Rounds: k.levels}
	}
	return newForest(g, ids)
}

// kktBaseSize is the subproblem size below which sort-and-scan Kruskal
// beats another level of sampling.
const kktBaseSize = 1 << 10

type kktState struct {
	rng    *rand.Rand
	marks  []bool // indexed by original edge id; scratch for set membership
	levels int64
}

// msf returns the original edge ids of the minimum spanning forest of the
// given contracted multigraph (vertices [0, nv), edges with canonical keys).
func (k *kktState) msf(nv int, edges []cedge) []uint32 {
	k.levels++
	if len(edges) == 0 {
		return nil
	}
	if len(edges) <= kktBaseSize {
		return kruskalEdges(nv, edges)
	}
	// Step 1: two Boruvka contraction rounds.
	var chosen []uint32
	for step := 0; step < 2 && len(edges) > 0; step++ {
		var picked []uint32
		nv, edges, picked = boruvkaStep(nv, edges)
		chosen = append(chosen, picked...)
	}
	if len(edges) == 0 {
		return chosen
	}
	// Step 2: sample edges with probability 1/2.
	sample := make([]cedge, 0, len(edges)/2+16)
	var bits uint64
	var left int
	for _, e := range edges {
		if left == 0 {
			bits = k.rng.Uint64()
			left = 64
		}
		if bits&1 == 1 {
			sample = append(sample, e)
		}
		bits >>= 1
		left--
	}
	// Step 3: the sample's MSF, recursively.
	fIDs := k.msf(nv, sample)
	// Step 4: rebuild F in the current vertex space and drop F-heavy edges.
	for _, id := range fIDs {
		k.marks[id] = true
	}
	fedges := make([]cedge, 0, len(fIDs))
	for _, e := range sample {
		if k.marks[par.KeyID(e.key)] {
			fedges = append(fedges, e)
		}
	}
	idx := newPathMaxFromEdges(nv, fedges)
	light := make([]cedge, 0, nv)
	for _, e := range edges {
		if k.marks[par.KeyID(e.key)] {
			light = append(light, e) // F edges are light by definition
			continue
		}
		pathMax, sameTree := idx.pathMax(e.u, e.v)
		if !sameTree || e.key < pathMax {
			light = append(light, e)
		}
	}
	for _, id := range fIDs {
		k.marks[id] = false
	}
	// Step 5: recurse on the light survivors.
	return append(chosen, k.msf(nv, light)...)
}

// kruskalEdges is the base case: sort-and-scan Kruskal over a contracted
// edge list, returning original edge ids.
func kruskalEdges(nv int, edges []cedge) []uint32 {
	keysByEdge := make(map[uint64]cedge, len(edges))
	keys := make([]uint64, len(edges))
	for i, e := range edges {
		keys[i] = e.key
		keysByEdge[e.key] = e
	}
	par.SortUint64(1, keys)
	uf := unionfind.New(nv)
	var ids []uint32
	for _, key := range keys {
		e := keysByEdge[key]
		if uf.Union(e.u, e.v) {
			ids = append(ids, par.KeyID(key))
		}
	}
	return ids
}

// boruvkaStep performs one Boruvka contraction round on a contracted
// multigraph: every vertex picks its minimum incident edge, mutual picks
// are symmetry-broken into rooted trees, trees are flattened and
// contracted. Returns the new vertex count, the relabelled surviving cross
// edges, and the original ids of the chosen MSF edges. Sequential — used by
// KKT's recursion, where subproblem parallelism comes from the caller.
func boruvkaStep(nv int, edges []cedge) (int, []cedge, []uint32) {
	best := make([]uint64, nv)
	for i := range best {
		best[i] = par.InfKey
	}
	for _, e := range edges {
		if e.key < best[e.u] {
			best[e.u] = e.key
		}
		if e.key < best[e.v] {
			best[e.v] = e.key
		}
	}
	bestIdx := make([]int32, nv)
	for i := range bestIdx {
		bestIdx[i] = -1
	}
	for i := range edges {
		e := &edges[i]
		if best[e.u] == e.key {
			bestIdx[e.u] = int32(i)
		}
		if best[e.v] == e.key {
			bestIdx[e.v] = int32(i)
		}
	}
	G := make([]uint32, nv)
	var chosen []uint32
	for v := 0; v < nv; v++ {
		bi := bestIdx[v]
		if bi < 0 {
			G[v] = uint32(v)
			continue
		}
		e := &edges[bi]
		w := e.u
		if w == uint32(v) {
			w = e.v
		}
		mutual := bestIdx[w] == bi
		if mutual && uint32(v) < w {
			G[v] = uint32(v)
		} else {
			G[v] = w
		}
		if !mutual || uint32(v) < w {
			chosen = append(chosen, par.KeyID(e.key))
		}
	}
	// Flatten to stars (sequential pointer jumping).
	for v := 0; v < nv; v++ {
		for G[v] != G[G[v]] {
			G[v] = G[G[v]]
		}
	}
	// Contract.
	newID := make([]uint32, nv)
	next := uint32(0)
	for v := 0; v < nv; v++ {
		if G[v] == uint32(v) {
			newID[v] = next
			next++
		}
	}
	// Fresh slice: callers keep reading the input list (e.g. KKT's sample)
	// after contraction, so it must not be clobbered in place.
	out := make([]cedge, 0, len(edges)/2)
	for _, e := range edges {
		gu, gv := G[e.u], G[e.v]
		if gu != gv {
			out = append(out, cedge{u: newID[gu], v: newID[gv], key: e.key})
		}
	}
	return int(next), out, chosen
}
