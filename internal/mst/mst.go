package mst

import (
	"context"
	"fmt"
	"slices"

	"llpmst/internal/graph"
	"llpmst/internal/llp"
	"llpmst/internal/obs"
	"llpmst/internal/par"
)

// Forest is a minimum spanning forest: the canonical edge ids of the chosen
// edges (sorted ascending), their total weight, and the number of trees
// (connected components of the input, counting isolated vertices).
type Forest struct {
	// N is the number of vertices of the input graph.
	N int
	// EdgeIDs are the chosen edges' canonical ids, sorted ascending.
	EdgeIDs []uint32
	// Weight is the total weight of the chosen edges (float64 accumulation).
	Weight float64
	// Trees is the number of trees in the forest, i.e. the number of
	// connected components of the input graph.
	Trees int
}

// ForestFromEdgeIDs materializes a Forest from a raw edge id list (e.g. the
// ids a distributed GHS run elects), leaving the caller's slice untouched.
// The ids are trusted to form a forest; use CheckForest to verify.
func ForestFromEdgeIDs(g *graph.CSR, ids []uint32) *Forest {
	return newForest(g, slices.Clone(ids))
}

// newForest canonicalizes a raw edge id list into a Forest.
func newForest(g *graph.CSR, ids []uint32) *Forest {
	slices.Sort(ids)
	var w float64
	for _, id := range ids {
		w += float64(g.Edge(id).W)
	}
	return &Forest{
		N:       g.NumVertices(),
		EdgeIDs: ids,
		Weight:  w,
		Trees:   g.NumVertices() - len(ids),
	}
}

// Equal reports whether two forests choose exactly the same edge set.
func (f *Forest) Equal(other *Forest) bool {
	return f.N == other.N && slices.Equal(f.EdgeIDs, other.EdgeIDs)
}

// String summarizes the forest.
func (f *Forest) String() string {
	return fmt.Sprintf("forest{n=%d edges=%d trees=%d weight=%g}", f.N, len(f.EdgeIDs), f.Trees, f.Weight)
}

// Spanning reports whether the forest spans a connected input as a single
// tree.
func (f *Forest) Spanning() bool { return f.Trees == 1 }

// ParentArray returns the forest as rooted parent pointers: parent[v] is
// v's parent vertex on the path to its tree's root, and -1 at roots. The
// tree containing root is rooted there; every other tree is rooted at its
// smallest vertex id. This is the "parent structure of the minimum spanning
// tree" Algorithm 2 maintains, reconstructed from the edge set by BFS.
func (f *Forest) ParentArray(g *graph.CSR, root uint32) []int32 {
	n := g.NumVertices()
	adjOff := make([]int32, n+1)
	for _, id := range f.EdgeIDs {
		e := g.Edge(id)
		adjOff[e.U+1]++
		adjOff[e.V+1]++
	}
	for i := 0; i < n; i++ {
		adjOff[i+1] += adjOff[i]
	}
	adj := make([]uint32, adjOff[n])
	cursor := make([]int32, n)
	copy(cursor, adjOff[:n])
	for _, id := range f.EdgeIDs {
		e := g.Edge(id)
		adj[cursor[e.U]] = e.V
		cursor[e.U]++
		adj[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	const unseen = int32(-2)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = unseen
	}
	queue := make([]uint32, 0, 1024)
	bfs := func(s uint32) {
		parent[s] = -1
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, t := range adj[adjOff[v]:adjOff[v+1]] {
				if parent[t] == unseen {
					parent[t] = int32(v)
					queue = append(queue, t)
				}
			}
		}
	}
	if int(root) < n {
		bfs(root)
	}
	for s := uint32(0); int(s) < n; s++ {
		if parent[s] == unseen {
			bfs(s)
		}
	}
	return parent
}

// Options configures the parallel algorithms and the ablation switches for
// the design choices DESIGN.md calls out. The zero value is the default
// configuration with Workers = GOMAXPROCS.
type Options struct {
	// Workers is the number of goroutines; <= 0 means GOMAXPROCS.
	Workers int

	// NoEarlyFix disables LLP-Prim's MWE early fixing (ablation): vertices
	// are then only fixed by heap pops, degenerating LLP-Prim into a lazy
	// Prim. Measures the contribution of §V.A's "second way of becoming
	// fixed".
	NoEarlyFix bool

	// NoStaging disables LLP-Prim's Q staging set (ablation): relaxations
	// push into the heap immediately instead of waiting for the R set to
	// drain, re-creating the heap churn the paper's Q set avoids.
	NoStaging bool

	// JumpMode selects the LLP driver for LLP-Boruvka's pointer jumping.
	// Default is llp.ModeAsync, the paper's "little or no synchronization"
	// mode; llp.ModeRound gives the barrier-synchronized variant and
	// llp.ModeSequential a serial one (for the ablation bench).
	JumpMode llp.Mode

	// Metrics, when non-nil, receives machine-independent operation counts
	// for the run (heap traffic, early fixes, rounds, ...). See WorkMetrics.
	Metrics *WorkMetrics

	// Ctx, when non-nil, is polled cooperatively by the algorithms: at
	// phase boundaries and (strided) at work-item granularity in the
	// parallel inner loops. A cancelled run stops promptly and returns the
	// partial forest built so far plus an error wrapping ctx.Err(). A nil
	// Ctx costs nothing. See RunCtx for the usual entry point.
	Ctx context.Context

	// Observer, when non-nil, receives phase spans and scheduler/algorithm
	// counters for the run (see internal/obs). When nil, a Collector
	// carried by Ctx (obs.NewContext) is used, else the free no-op — the
	// hot paths are instrumented unconditionally at no cost.
	Observer obs.Collector

	// Seed feeds the randomized algorithms (KKT's sampling coins). Runs are
	// reproducible for a fixed seed; the produced forest is the same unique
	// MSF for every seed — randomness only affects the work.
	Seed int64

	// Workspace, when non-nil, supplies all O(n+m) scratch state of the
	// parallel algorithms from a reusable arena instead of fresh
	// allocations, so a caller running repeated queries reaches O(1)
	// steady-state allocations per run (see Workspace). When nil, scratch
	// is drawn from an internal sync.Pool — still reused across calls
	// process-wide, and safe for any number of concurrent runs. A
	// Workspace serves one run at a time; sharing it across simultaneous
	// runs panics.
	Workspace *Workspace
}

func (o Options) workers() int { return par.Workers(o.Workers) }

// Algorithm identifies one of the implemented MSF algorithms, for harness
// registries.
type Algorithm string

// The implemented algorithms.
const (
	AlgPrim            Algorithm = "prim"           // Algorithm 2, indexed heap
	AlgPrimLazy        Algorithm = "prim-lazy"      // §IV simplified analysis variant
	AlgLLPPrim         Algorithm = "llp-prim"       // Algorithm 5, sequential (1T)
	AlgLLPPrimParallel Algorithm = "llp-prim-par"   // Algorithm 5, parallel frontier waves
	AlgLLPPrimAsync    Algorithm = "llp-prim-async" // Algorithm 5, async work-stealing bag
	AlgBoruvka         Algorithm = "boruvka"        // Algorithm 3, sequential BFS-based
	AlgParallelBoruvka Algorithm = "boruvka-par"    // GBBS-style parallel baseline
	AlgLLPBoruvka      Algorithm = "llp-boruvka"    // Algorithm 6
	AlgSemiringBoruvka Algorithm = "semi-boruvka"   // min-plus sparse-matrix backend
	AlgKruskal         Algorithm = "kruskal"        // sort + union-find
	AlgFilterKruskal   Algorithm = "filter-kruskal" // parallel filter variant
	AlgKKT             Algorithm = "kkt"            // Karger-Klein-Tarjan randomized linear-time
)

// Algorithms lists every implemented algorithm in presentation order.
func Algorithms() []Algorithm {
	return []Algorithm{
		AlgPrim, AlgPrimLazy, AlgLLPPrim, AlgLLPPrimParallel, AlgLLPPrimAsync,
		AlgBoruvka, AlgParallelBoruvka, AlgLLPBoruvka, AlgSemiringBoruvka,
		AlgKruskal, AlgFilterKruskal, AlgKKT,
	}
}

// Run dispatches to the named algorithm, honoring opts.Metrics for the
// algorithms whose public helper takes no Options. A pre-cancelled opts.Ctx
// returns before any work; cancellation granularity beyond that is
// per-algorithm — the LLP/parallel family polls at work-item granularity,
// the sequential baselines (Prim, Kruskal, ...) only between whole runs.
func Run(alg Algorithm, g *graph.CSR, opts Options) (*Forest, error) {
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, fmt.Errorf("mst: %s: %w", alg, err)
	}
	switch alg {
	case AlgPrim:
		return primIndexed(g, opts.Metrics), nil
	case AlgPrimLazy:
		return primLazy(g, opts.Metrics), nil
	case AlgLLPPrim:
		return LLPPrim(g, opts)
	case AlgLLPPrimParallel:
		return LLPPrimParallel(g, opts)
	case AlgLLPPrimAsync:
		return LLPPrimAsync(g, opts)
	case AlgBoruvka:
		return boruvka(g, opts.Metrics), nil
	case AlgParallelBoruvka:
		return ParallelBoruvka(g, opts)
	case AlgLLPBoruvka:
		return LLPBoruvka(g, opts)
	case AlgSemiringBoruvka:
		return SemiringBoruvka(g, opts)
	case AlgKruskal:
		return kruskal(g, opts.Metrics), nil
	case AlgFilterKruskal:
		return FilterKruskal(g, opts), nil
	case AlgKKT:
		return KKT(g, opts), nil
	default:
		return nil, fmt.Errorf("mst: unknown algorithm %q", alg)
	}
}

// minWeightEdges returns mwe[v]: the packed key of the minimum-weight edge
// incident to each vertex (InfKey for isolated vertices). §V.A: "this
// algorithm requires every vertex to know its minimum weight edge... the
// set MWE can be computed when the graph is input" — so it is computed once
// per graph and cached (see graph.CSR.MinArcKeys).
func minWeightEdges(p int, g *graph.CSR) []uint64 {
	return g.MinArcKeys(p)
}
