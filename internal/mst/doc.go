// Package mst implements the paper's contribution and its baselines: the
// minimum spanning forest algorithms LLP-Prim (Algorithm 5) and LLP-Boruvka
// (Algorithm 6), the classical Prim (Algorithm 2, indexed-heap and lazy-heap
// variants), sequential Boruvka (Algorithm 3), a GBBS-style parallel Boruvka
// baseline, a semiring (sparse-matrix) Boruvka whose per-round minimum-edge
// selection is a min-plus SpMV over the contracted graph's adjacency matrix,
// Kruskal and Filter-Kruskal, the randomized KKT algorithm, and two
// verifiers.
//
// Every algorithm produces the same unique minimum spanning forest, because
// all comparisons use the packed (weight, edge id) total order — the paper's
// "make weights unique by incorporating identities" device. The test suite
// exploits this: all algorithms are cross-checked edge-for-edge.
//
// # Choosing a backend
//
// Run and RunCtx dispatch on an Algorithm constant; Algorithms() enumerates
// the registered set. As a rule of thumb:
//
//   - AlgKruskal / AlgFilterKruskal: sequential oracles; FilterKruskal wins
//     when most edges are heavier than the forest.
//   - AlgPrim / AlgPrimLazy / AlgBoruvka: textbook baselines (Algorithms 2
//     and 3 of the paper).
//   - AlgLLPPrim, AlgLLPPrimParallel, AlgLLPPrimAsync: the paper's
//     LLP-Prim family — fixed-point advance on the vertex lattice, from
//     sequential to fully asynchronous.
//   - AlgParallelBoruvka / AlgLLPBoruvka: pointer-based parallel Boruvka
//     (GBBS-style write-min, and the paper's LLP formulation).
//   - AlgSemiringBoruvka: the sparse-matrix formulation — branch-free
//     row-blocked min reductions with no atomics in the inner loop; it
//     shines on dense graphs and is the resilient portfolio's pick when
//     m >= 16n.
//   - AlgKKT: randomized linear-work Karger–Klein–Tarjan.
//
// Parallel algorithms draw all O(n+m) scratch from an Options.Workspace
// arena (or a pooled default), so steady-state runs allocate O(1); see
// Workspace and EstimateScratchBytes.
package mst
