//go:build !race

package mst

// raceEnabled gates workspace buffer poisoning; in normal builds acquiring
// a workspace touches nothing, keeping reuse O(1).
const raceEnabled = false
