package mst

import (
	"math/rand"
	"testing"

	"llpmst/internal/graph"
	"llpmst/internal/par"
)

// bruteForceMSF enumerates every subset of edges of size n - #components and
// returns the cheapest one (by total packed key, so the tie-break matches
// the library's canonical order) that is a spanning forest. Exponential —
// usable only for tiny graphs — but entirely independent of the union-find,
// heap and key machinery the real algorithms share, so it breaks the
// circularity of cross-checking the algorithms only against each other.
func bruteForceMSF(t *testing.T, g *graph.CSR) []uint32 {
	t.Helper()
	n := g.NumVertices()
	m := g.NumEdges()
	if m > 22 {
		t.Fatalf("brute force limited to 22 edges, got %d", m)
	}
	_, comps := g.Components()
	want := n - comps
	var bestKeys []uint64
	var best []uint32
	// Iterate over all edge subsets via bitmask.
	for mask := 0; mask < 1<<m; mask++ {
		if popcount(mask) != want {
			continue
		}
		// Check forest: union endpoints with a tiny DSU.
		parent := make([]int, n)
		for i := range parent {
			parent[i] = i
		}
		find := func(x int) int {
			for parent[x] != x {
				x = parent[x]
			}
			return x
		}
		acyclic := true
		keys := make([]uint64, 0, want)
		for id := 0; id < m && acyclic; id++ {
			if mask&(1<<id) == 0 {
				continue
			}
			e := g.Edge(uint32(id))
			ru, rv := find(int(e.U)), find(int(e.V))
			if ru == rv {
				acyclic = false
				break
			}
			parent[ru] = rv
			keys = append(keys, g.EdgeKey(uint32(id)))
		}
		if !acyclic {
			continue
		}
		// Acyclic with exactly n - comps edges => spanning forest. The
		// canonical MSF is the basis whose ascending key sequence is
		// lexicographically smallest (the matroid greedy optimum), which
		// both minimizes total weight and fixes the tie-break. Keys were
		// appended in ascending id order but weights vary, so sort.
		sortKeys(keys)
		if bestKeys == nil || lexLess(keys, bestKeys) {
			bestKeys = keys
			best = maskToIDs(mask, m)
		}
	}
	return best
}

func sortKeys(k []uint64) {
	for i := 1; i < len(k); i++ {
		for j := i; j > 0 && k[j] < k[j-1]; j-- {
			k[j], k[j-1] = k[j-1], k[j]
		}
	}
}

func lexLess(a, b []uint64) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

func maskToIDs(mask, m int) []uint32 {
	var ids []uint32
	for id := 0; id < m; id++ {
		if mask&(1<<id) != 0 {
			ids = append(ids, uint32(id))
		}
	}
	return ids
}

func TestAllAlgorithmsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(6)
		m := rng.Intn(13)
		edges := make([]graph.Edge, 0, m)
		for i := 0; i < m; i++ {
			u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
			if u == v {
				continue
			}
			// Small weight range to force plenty of exact ties.
			edges = append(edges, graph.Edge{U: u, V: v, W: float32(1 + rng.Intn(5))})
		}
		g := graph.MustFromEdges(1, n, edges)
		want := bruteForceMSF(t, g)
		var wantWeight float64
		for _, id := range want {
			wantWeight += float64(g.Edge(id).W)
		}
		for _, alg := range Algorithms() {
			f, err := Run(alg, g, Options{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			if len(f.EdgeIDs) != len(want) {
				t.Fatalf("trial %d %s: %d edges, brute force %d", trial, alg, len(f.EdgeIDs), len(want))
			}
			if f.Weight != wantWeight {
				t.Fatalf("trial %d %s: weight %g, brute force %g", trial, alg, f.Weight, wantWeight)
			}
		}
		// The canonical tie-break (min edge ids among equal-weight forests)
		// must match the brute-force lexicographic minimum exactly.
		oracle := Kruskal(g)
		for i, id := range oracle.EdgeIDs {
			if want[i] != id {
				t.Fatalf("trial %d: canonical edge set %v, brute force %v", trial, oracle.EdgeIDs, want)
			}
		}
	}
}

// TestBruteForceOracleSelfCheck pins the brute-force helper on a known
// instance (the paper's Fig. 1 graph).
func TestBruteForceOracleSelfCheck(t *testing.T) {
	g := graph.MustFromEdges(1, 5, []graph.Edge{
		{U: 0, V: 2, W: 4}, {U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 3},
		{U: 1, V: 3, W: 7}, {U: 2, V: 3, W: 9}, {U: 2, V: 4, W: 11},
		{U: 3, V: 4, W: 2},
	})
	ids := bruteForceMSF(t, g)
	var w float64
	for _, id := range ids {
		w += float64(g.Edge(id).W)
	}
	if w != 16 || len(ids) != 4 {
		t.Fatalf("brute force found weight %g with %d edges, want 16 with 4", w, len(ids))
	}
}

var _ = par.InfKey // keep par import for the key helpers above
