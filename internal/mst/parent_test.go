package mst

import (
	"testing"

	"llpmst/internal/gen"
)

func TestParentArrayRootedAtRequestedVertex(t *testing.T) {
	g := gen.PaperFigure1()
	f := Prim(g)
	parent := f.ParentArray(g, 0)
	if parent[0] != -1 {
		t.Fatalf("root parent = %d, want -1", parent[0])
	}
	// Every non-root must reach the root, and each step must be a forest
	// edge.
	inForest := map[[2]uint32]bool{}
	for _, id := range f.EdgeIDs {
		e := g.Edge(id)
		inForest[[2]uint32{e.U, e.V}] = true
		inForest[[2]uint32{e.V, e.U}] = true
	}
	for v := uint32(1); int(v) < g.NumVertices(); v++ {
		steps := 0
		cur := v
		for parent[cur] != -1 {
			p := uint32(parent[cur])
			if !inForest[[2]uint32{cur, p}] {
				t.Fatalf("parent step (%d -> %d) is not a forest edge", cur, p)
			}
			cur = p
			if steps++; steps > g.NumVertices() {
				t.Fatal("parent pointers contain a cycle")
			}
		}
		if cur != 0 {
			t.Fatalf("vertex %d reaches root %d, want 0", v, cur)
		}
	}
}

func TestParentArrayForests(t *testing.T) {
	g := gen.Disconnected(3, 10, 5)
	f := Kruskal(g)
	parent := f.ParentArray(g, 0)
	roots := 0
	for _, p := range parent {
		if p == -1 {
			roots++
		}
	}
	if roots != 3 {
		t.Fatalf("%d roots, want 3 (one per tree)", roots)
	}
	// Secondary trees root at their smallest vertex: components are
	// [0,10), [10,20), [20,30).
	if parent[10] != -1 || parent[20] != -1 {
		t.Fatalf("secondary roots wrong: parent[10]=%d parent[20]=%d", parent[10], parent[20])
	}
	// Out-of-range root falls back to smallest-id roots everywhere.
	p2 := f.ParentArray(g, 9999)
	if p2[0] != -1 {
		t.Fatal("fallback rooting broken")
	}
}

func TestParentArrayEmpty(t *testing.T) {
	g := gen.Star(1)
	f := Kruskal(g)
	parent := f.ParentArray(g, 0)
	if len(parent) != 1 || parent[0] != -1 {
		t.Fatalf("singleton parent array %v", parent)
	}
}
