package mst

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"llpmst/internal/gen"
	"llpmst/internal/graph"
)

// ctxAlgs are the algorithms with cooperative cancellation support.
var ctxAlgs = []Algorithm{
	AlgLLPPrim, AlgLLPPrimParallel, AlgLLPPrimAsync, AlgParallelBoruvka, AlgLLPBoruvka,
	AlgSemiringBoruvka,
}

func TestRunCtxPreCancelledDoesNoWork(t *testing.T) {
	g := gen.ErdosRenyi(1, 500, 2500, gen.WeightUniform, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range ctxAlgs {
		f, err := RunCtx(ctx, alg, g, Options{Workers: 2})
		if err == nil {
			t.Fatalf("%s: pre-cancelled ctx returned nil error", alg)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: error %v does not wrap context.Canceled", alg, err)
		}
		if f != nil {
			t.Fatalf("%s: pre-cancelled ctx returned a forest (%d edges); want nil, no work done",
				alg, len(f.EdgeIDs))
		}
	}
}

func TestRunCtxNilAndBackgroundAreInert(t *testing.T) {
	g := gen.RoadNetwork(1, 16, 16, 0.2, 8)
	oracle := Kruskal(g)
	for _, alg := range ctxAlgs {
		f, err := RunCtx(context.Background(), alg, g, Options{Workers: 2})
		if err != nil {
			t.Fatalf("%s: background ctx errored: %v", alg, err)
		}
		if !f.Equal(oracle) {
			t.Fatalf("%s: background ctx changed the result", alg)
		}
		f, err = Run(alg, g, Options{Workers: 2}) // nil ctx in Options
		if err != nil || !f.Equal(oracle) {
			t.Fatalf("%s: nil ctx run wrong (err=%v)", alg, err)
		}
	}
}

// TestRunCtxCancelMidRun cancels each algorithm mid-flight and checks the
// three-part contract: a prompt return, an error wrapping context.Canceled,
// and a partial forest that is a subset of the canonical MSF.
func TestRunCtxCancelMidRun(t *testing.T) {
	g := gen.ErdosRenyi(1, 2000, 20000, gen.WeightUniform, 9)
	oracle := Kruskal(g)
	inMSF := make(map[uint32]bool, len(oracle.EdgeIDs))
	for _, id := range oracle.EdgeIDs {
		inMSF[id] = true
	}
	for _, alg := range ctxAlgs {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			// Cancel at a random-ish point mid-run; even when the run wins the
			// race and completes, the nil-error path must then hold.
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(200 * time.Microsecond)
				cancel()
			}()
			start := time.Now()
			f, err := RunCtx(ctx, alg, g, Options{Workers: 2})
			elapsed := time.Since(start)
			if elapsed > 5*time.Second {
				t.Fatalf("cancelled run took %v", elapsed)
			}
			if err != nil {
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("error %v does not wrap context.Canceled", err)
				}
				for _, id := range f.EdgeIDs {
					if !inMSF[id] {
						t.Fatalf("partial forest contains non-MSF edge %d", id)
					}
				}
			} else if !f.Equal(oracle) {
				t.Fatalf("uncancelled run produced a wrong forest")
			}
		})
	}
}

// TestRunCtxCancelNoGoroutineLeak checks that a cancelled parallel run
// tears down all its workers: the goroutine count settles back to (about)
// the pre-run level.
func TestRunCtxCancelNoGoroutineLeak(t *testing.T) {
	g := gen.ErdosRenyi(1, 2000, 20000, gen.WeightUniform, 10)
	before := runtime.NumGoroutine()
	for _, alg := range []Algorithm{AlgLLPPrimParallel, AlgLLPPrimAsync, AlgParallelBoruvka, AlgLLPBoruvka, AlgSemiringBoruvka} {
		for i := 0; i < 5; i++ {
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(100 * time.Microsecond)
				cancel()
			}()
			_, _ = RunCtx(ctx, alg, g, Options{Workers: 4})
			cancel()
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestRunCtxDeadline exercises the DeadlineExceeded path (the -timeout flag
// of mstbench) as distinct from explicit cancellation.
func TestRunCtxDeadline(t *testing.T) {
	g := gen.ErdosRenyi(1, 2000, 20000, gen.WeightUniform, 11)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := RunCtx(ctx, AlgLLPBoruvka, g, Options{Workers: 2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
}

// TestInterruptedErrorShape pins the error message contract: algorithm
// name, progress fraction, and the wrapped cause.
func TestInterruptedErrorShape(t *testing.T) {
	g := graph.MustFromEdges(1, 3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, AlgLLPPrim, g, Options{})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want wrapped context.Canceled, got %v", err)
	}
}
