package mst

import (
	"slices"

	"llpmst/internal/graph"
	"llpmst/internal/llp"
	"llpmst/internal/obs"
	"llpmst/internal/par"
)

// cedge is a contracted edge: endpoints in the current round's vertex space
// plus the canonical packed key (whose low bits are the original edge id).
type cedge struct {
	u, v uint32
	key  uint64
}

// LLPBoruvka implements Algorithm 6. Each round of the (here iteratively
// unrolled) recursion runs on a contracted graph whose vertices are the
// previous round's components:
//
//  1. every vertex picks its minimum-weight incident edge (mwe) in parallel
//     (atomic write-min, then a race-free winner pass — keys are unique);
//  2. parents are chosen with the paper's symmetry break: G[v] = w for
//     mwe(v) = (v, w), except when the choice is mutual and v < w, in which
//     case v roots itself. G is then a forest of rooted trees in which edge
//     weights strictly decrease towards the root (Lemma 3/4);
//  3. the rooted trees are flattened to rooted stars by the LLP pointer-
//     jumping instance (forbidden(j) ≡ G[j] ≠ G[G[j]], advance(j): G[j] :=
//     G[G[j]]) run on the driver selected by opts.JumpMode — by default the
//     barrier-free Async driver, the "little to no synchronization within a
//     round" the paper emphasizes;
//  4. components are contracted: star roots become the next round's
//     vertices, intra-component edges are discarded, and surviving edges are
//     relabelled into a ping-pong buffer (no per-round allocation).
//
// Unlike ParallelBoruvka there is no shared union-find: component identity
// is carried entirely by the G array and resolved by pointer jumping.
//
// Cancellation via opts.Ctx is polled at every phase boundary, (strided)
// inside the per-edge phase loops, and between pointer-jumping sweeps; a
// cancelled run returns the forest edges chosen so far plus a non-nil
// error. Parent choices are only consumed when the preceding mwe phase ran
// to completion, so the partial forest is always a subset of the canonical
// MSF. A worker panic, re-raised by the par runtime after all workers have
// joined (and before the panicking phase's results are assigned), is
// converted into a *par.PanicError under the same partial-forest contract
// (see recoverPanic).
func LLPBoruvka(g *graph.CSR, opts Options) (f *Forest, err error) {
	p := opts.workers()
	n := g.NumVertices()
	ws, release := opts.workspace()
	defer release()
	ids := ws.idsBuf(n)[:0]
	defer recoverPanic(AlgLLPBoruvka, g, &ids, n-1, &f, &err)
	m := g.NumEdges()
	cc := opts.canceller()
	col := opts.collector()
	defer col.Span("llp-boruvka")()

	edges := ws.cedgesBuf(m)
	par.ForEach(p, m, 4096, func(i int) {
		e := g.Edge(uint32(i))
		edges[i] = cedge{u: e.U, v: e.V, key: par.PackKey(e.W, uint32(i))}
	})
	spare := ws.cspareBuf(m) // ping-pong buffer for contraction

	// Vertex-indexed scratch, acquired once at full size and re-sliced as
	// the contracted graph shrinks.
	best := ws.keysBuf(n)
	bestIdx := ws.vIdxBuf(n)
	G := ws.vertsABuf(n)
	newID := ws.vertsBBuf(n)
	rootsBuf := ws.vertsCBuf(n)
	counters := ws.countersBuf(p)

	// Per-round slices and the phase bodies reading them, hoisted out of the
	// round loop (the bodies capture the variables by reference) so
	// steady-state rounds allocate nothing.
	var (
		bst   []uint64
		bidx  []int32
		gv    []uint32
		nid   []uint32
		roots []uint32
	)
	mweBody := func(i int) {
		if cc.Stride(i) {
			return
		}
		e := &edges[i]
		par.WriteMin(&bst[e.u], e.key)
		par.WriteMin(&bst[e.v], e.key)
	}
	bidxClear := func(v int) { bidx[v] = -1 }
	winnerBody := func(i int) {
		e := &edges[i]
		if bst[e.u] == e.key {
			bidx[e.u] = int32(i)
		}
		if bst[e.v] == e.key {
			bidx[e.v] = int32(i)
		}
	}
	// Parent chunks run under the executing worker's attributed collector
	// view, so flight recordings show which worker chose which share of the
	// parents (the chunk span, not the driver's phase span, lands on the
	// worker's track).
	parentBody := func(w, lo, hi int, out []uint32) []uint32 {
		endChunk := obs.ForWorker(col, w).Span("llp-boruvka.parents.chunk")
		defer endChunk()
		for v := lo; v < hi; v++ {
			if cc.Stride(v) {
				break
			}
			bi := bidx[v]
			if bi < 0 {
				gv[v] = uint32(v) // isolated in the contracted graph
				continue
			}
			e := &edges[bi]
			w := e.u
			if w == uint32(v) {
				w = e.v
			}
			mutual := bidx[w] == bi
			if mutual && uint32(v) < w {
				gv[v] = uint32(v) // paper's tie-break: v roots itself
			} else {
				gv[v] = w
			}
			if !mutual || uint32(v) < w {
				out = append(out, par.KeyID(e.key))
			}
		}
		return out
	}
	isRoot := func(v int) bool { return gv[v] == uint32(v) }
	nidScatter := func(i int) { nid[roots[i]] = uint32(i) }
	contractEdge := func(e cedge) (cedge, bool) {
		gu, gw := gv[e.u], gv[e.v]
		if gu == gw {
			return cedge{}, false
		}
		return cedge{u: nid[gu], v: nid[gw], key: e.key}, true
	}

	nv := n
	var rounds, jumpRounds, jumpAdvances int64
	cancelled := false
	for len(edges) > 0 {
		if cc.Poll() {
			cancelled = true
			break
		}
		rounds++
		// The round mark comes first so every event below — including the
		// round's own counter — lands in this round's segment.
		obs.MarkRound(col, rounds)
		col.Count(obs.CtrRounds, 1)
		col.Gauge(obs.GaugeLiveEdges, int64(len(edges)))
		// Phase 1: mwe per current vertex.
		mweSpan := col.Span("llp-boruvka.mwe")
		bst = best[:nv]
		par.FillKeys(p, bst, par.InfKey)
		par.ForEach(p, len(edges), 2048, mweBody)
		// Winner pass: bestIdx[v] = index (into edges) of v's mwe. Keys are
		// unique, so each cell has exactly one writer — no atomics needed.
		bidx = bestIdx[:nv]
		par.ForEach(p, nv, 8192, bidxClear)
		par.ForEach(p, len(edges), 2048, winnerBody)
		mweSpan()
		// A cancel inside phase 1 leaves bst/bidx incomplete; the parent
		// phase must not consume them, or its choices need not be MSF edges.
		if cc.Poll() {
			cancelled = true
			break
		}
		// Phase 2: choose parents with the symmetry break, and collect each
		// chosen edge exactly once (mutual pairs: the smaller endpoint
		// reports; non-mutual: the choosing endpoint reports).
		parentSpan := col.Span("llp-boruvka.parents")
		gv = G[:nv]
		chosen := par.ForCollectIntoW(p, nv, 2048, ws.picks, parentBody)
		parentSpan()
		// Choices made before a mid-parent-phase cancel are sound (the mwe
		// phase was complete), so they may join the partial result.
		ids = append(ids, chosen...)
		ws.picks = chosen[:0] // keep grown capacity for the next round
		if cc.Poll() {
			cancelled = true
			break
		}
		// Phase 3: rooted trees -> rooted stars via LLP pointer jumping.
		jumpSpan := col.Span("llp-boruvka.jump")
		jst, jumpErr := llp.RunCtx(opts.Ctx, opts.JumpMode, p, ws.jumpBuf(gv))
		jumpSpan()
		jumpRounds += int64(jst.Rounds)
		jumpAdvances += jst.Advances
		col.Count(obs.CtrJumpRounds, int64(jst.Rounds))
		col.Count(obs.CtrJumpAdvances, jst.Advances)
		// An interrupted jump leaves non-star trees in gv; contraction must
		// not run on them.
		if jumpErr != nil || cc.Poll() {
			cancelled = true
			break
		}
		// Phase 4: contract. Star roots become next round's vertices;
		// surviving cross edges are relabelled into the spare buffer via
		// per-worker chunk counts + prefix sum (see par.FilterMapInto).
		contractSpan := col.Span("llp-boruvka.contract")
		roots = par.PackIndexInto(p, nv, rootsBuf, counters, isRoot)
		nid = newID[:nv]
		par.ForEach(p, len(roots), 8192, nidScatter)
		dst := par.FilterMapInto(p, spare, edges, counters, contractEdge)
		spare = edges[:cap(edges)]
		edges = dst
		nv = len(roots)
		contractSpan()
	}
	if opts.Metrics != nil {
		*opts.Metrics = WorkMetrics{
			Rounds: rounds, JumpRounds: jumpRounds, JumpAdvances: jumpAdvances,
		}
	}
	f = newForest(g, slices.Clone(ids))
	if cancelled {
		return f, interrupted(AlgLLPBoruvka, cc, len(ids), n-1)
	}
	return f, nil
}
