package mst

import (
	"errors"
	"slices"
	"sync/atomic"

	"llpmst/internal/graph"
	"llpmst/internal/obs"
	"llpmst/internal/par"
)

// LLPPrimAsync is Algorithm 5 with the bag R scheduled by the Galois-style
// asynchronous work-stealing executor (internal/sched) instead of
// barrier-synchronized frontier waves: workers pull fixed vertices from R,
// explore their arcs, CAS-fix MWE neighbors and push them straight back
// into the bag — no synchronization between explorations, exactly the
// paper's "the inner loop keeps processing the set R till it becomes
// empty... If R consists of multiple vertices then all of them can be
// explored in parallel". The heap phase between bag quiescences is
// sequential, as in the other variants.
//
// Compared to LLPPrimParallel (frontier waves), the async bag avoids one
// barrier per wave at the cost of per-item queue traffic; the ablation
// benchmark compares the two schedules.
//
// Cancellation via opts.Ctx is polled inside the scheduler at work-item
// granularity and in the sequential heap region; a cancelled run returns
// the partial forest plus a non-nil error. opts.Observer (or a collector
// on opts.Ctx) receives the scheduler's push/pop/steal counters and queue
// depth gauge alongside the heap counters.
//
// A worker panic, returned by the scheduler as a *par.PanicError after all
// workers have joined, is converted into an error with the same
// partial-forest contract: every id written through the atomic cursor is an
// individually sound MSF edge (a CAS-won minimum-weight edge or a
// heap-popped minimum cut edge), so the snapshot taken after the join is a
// subset of the canonical MSF.
func LLPPrimAsync(g *graph.CSR, opts Options) (f *Forest, err error) {
	n := g.NumVertices()
	p := opts.workers()
	ws, release := opts.workspace()
	defer release()

	// Concurrent accumulators: chosen tree edges and the staging set Q,
	// claimed by atomic cursor into preallocated arrays.
	ids := ws.idsBuf(n) // at most n-1 tree edges
	var idCursor atomic.Int64
	qbuf := ws.stageBuf(n)
	var qCursor atomic.Int64
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		pe := par.AsPanicError(r, -1)
		chosen := slices.Clone(ids[:idCursor.Load()])
		f = newForest(g, chosen)
		err = panicked(AlgLLPPrimAsync, pe, len(chosen), n-1)
	}()

	mwe := minWeightEdges(p, g)
	earlyFix := !opts.NoEarlyFix
	cc := opts.canceller()
	col := opts.collector()
	defer col.Span("llp-prim-async")()

	fixed := ws.flagsABuf(n) // atomic 0/1
	par.Fill(p, fixed, 0)
	dist := ws.keysBuf(n) // atomic packed keys
	par.FillKeys(p, dist, par.InfKey)
	inQ := ws.flagsBBuf(n) // atomic 0/1
	par.Fill(p, inQ, 0)

	h := ws.heapBuf()
	bag := ws.asyncBagBuf()
	var pushes, pops, stale, heapFixes int64
	var ePushes, ePops, eEarly int64 // counts already streamed to col
	var cycle int64
	step := 0 // work-item index for strided cancellation polls
	// flush streams the not-yet-emitted counter deltas; called once per
	// bag-quiescence cycle (so round-aware collectors see per-cycle early
	// fix vs heap traffic) and from finish. Early fixes are derived: every
	// chosen edge that was not a heap fix was an early CAS fix.
	flush := func() {
		early := idCursor.Load() - heapFixes
		if d := pushes - ePushes; d != 0 {
			col.Count(obs.CtrHeapPush, d)
			ePushes = pushes
		}
		if d := pops - ePops; d != 0 {
			col.Count(obs.CtrHeapPop, d)
			ePops = pops
		}
		if d := early - eEarly; d != 0 {
			col.Count(obs.CtrEarlyFix, d)
			eEarly = early
		}
	}
	finish := func(cancelled bool) (*Forest, error) {
		chosen := slices.Clone(ids[:idCursor.Load()])
		early := idCursor.Load() - heapFixes
		flush()
		if opts.Metrics != nil {
			*opts.Metrics = WorkMetrics{
				HeapPushes: pushes, HeapPops: pops, StalePops: stale,
				EarlyFixes: early, HeapFixes: heapFixes,
			}
		}
		f := newForest(g, chosen)
		if cancelled {
			return f, interrupted(AlgLLPPrimAsync, cc, len(chosen), n-1)
		}
		return f, nil
	}

	explore := func(j uint32, push func(uint32)) {
		mweJ := mwe[j]
		lo, hi := g.ArcRange(j)
		for a := lo; a < hi; a++ {
			k := g.Target(a)
			if atomic.LoadUint32(&fixed[k]) == 1 {
				continue
			}
			key := g.ArcKey(a)
			if earlyFix && (key == mweJ || key == mwe[k]) {
				if atomic.CompareAndSwapUint32(&fixed[k], 0, 1) {
					ids[idCursor.Add(1)-1] = g.ArcEdgeID(a)
					push(k)
				}
				continue
			}
			if par.WriteMin(&dist[k], key) {
				// Q staging is integral here: the inQ dedup bounds the
				// concurrent buffer at one slot per vertex, so the
				// NoStaging ablation applies only to the other variants.
				if atomic.CompareAndSwapUint32(&inQ[k], 0, 1) {
					qbuf[qCursor.Add(1)-1] = k
				}
			}
		}
	}

	for s := 0; s < n; s++ {
		if atomic.LoadUint32(&fixed[s]) == 1 {
			continue
		}
		if cc.Stride(s) {
			return finish(true)
		}
		fixed[s] = 1
		seed := ws.bagBuf(1)
		seed[0] = uint32(s)
		for {
			// One cycle: drive the bag to quiescence, flush Q, fix one
			// vertex off the heap. Each cycle is a round segment for
			// round-aware collectors.
			cycle++
			obs.MarkRound(col, cycle)
			if serr := bag.ForEachObs(opts.Ctx, p, seed, explore, col); serr != nil {
				// A worker panic (already drained and boxed by the scheduler)
				// funnels through the deferred recover above, so there is a
				// single conversion path; anything else is cancellation.
				var pe *par.PanicError
				if errors.As(serr, &pe) {
					panic(pe)
				}
				return finish(true)
			}
			// Quiescent: flush Q into the heap, then fix the fragment's
			// nearest neighbor.
			q := qbuf[:qCursor.Load()]
			for _, k := range q {
				inQ[k] = 0
				if fixed[k] == 0 {
					h.Push(k, dist[k])
					pushes++
				}
			}
			qCursor.Store(0)
			col.Gauge(obs.GaugeHeapSize, int64(h.Len()))
			fixedOne := false
			for !h.Empty() {
				if step++; cc.Stride(step) {
					return finish(true)
				}
				k, key := h.PopMin()
				pops++
				if fixed[k] == 1 || key != dist[k] {
					stale++
					continue
				}
				fixed[k] = 1
				ids[idCursor.Add(1)-1] = par.KeyID(key)
				seed = append(seed[:0], k)
				heapFixes++
				fixedOne = true
				break
			}
			flush()
			if !fixedOne {
				break
			}
		}
	}
	return finish(false)
}
