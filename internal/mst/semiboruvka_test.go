package mst

import (
	"math/rand"
	"runtime"
	"testing"

	"llpmst/internal/gen"
	"llpmst/internal/graph"
	"llpmst/internal/obs"
)

// semiTestEdges builds a deterministic edge list with a deliberately tiny
// weight range so ties are everywhere: the packed (weight, id) key order is
// the only thing standing between the backend and a nondeterministic forest.
func semiTestEdges(n, m int, seed int64) []graph.Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, m)
	// A random spanning tree first, so the graph is connected and the MSF
	// is a spanning tree of exactly n-1 edges.
	for v := 1; v < n; v++ {
		u := uint32(rng.Intn(v))
		edges = append(edges, graph.Edge{U: u, V: uint32(v), W: float32(rng.Intn(8))})
	}
	for len(edges) < m {
		u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v, W: float32(rng.Intn(8))})
	}
	return edges
}

// TestSemiringBoruvkaPermutedInputAgreesWithKruskal pins the determinism
// contract at its sharpest: shuffling the input edge list permutes the
// canonical edge ids, yet for every permutation the semiring backend must
// return edge-for-edge the same forest as Kruskal run on that same
// permutation — at every worker count. Heavy ties (weights drawn from
// {0..7}) make this fail loudly if the packed-key tie-break ever diverges
// from Kruskal's (weight, id) order.
func TestSemiringBoruvkaPermutedInputAgreesWithKruskal(t *testing.T) {
	const n, m = 600, 4000
	base := semiTestEdges(n, m, 91)
	workerSets := []int{1, 2, runtime.GOMAXPROCS(0)}
	for shuffle := int64(0); shuffle < 5; shuffle++ {
		edges := make([]graph.Edge, len(base))
		copy(edges, base)
		rand.New(rand.NewSource(1000+shuffle)).Shuffle(len(edges), func(i, j int) {
			edges[i], edges[j] = edges[j], edges[i]
		})
		g := graph.MustFromEdges(1, n, edges)
		oracle := Kruskal(g)
		if len(oracle.EdgeIDs) != n-1 {
			t.Fatalf("shuffle %d: oracle is not a spanning tree (%d edges)", shuffle, len(oracle.EdgeIDs))
		}
		for _, p := range workerSets {
			f := must(SemiringBoruvka(g, Options{Workers: p}))
			if !f.Equal(oracle) {
				t.Fatalf("shuffle %d w=%d: semi-boruvka forest differs from Kruskal on permuted input (%d vs %d edges, weight %g vs %g)",
					shuffle, p, len(f.EdgeIDs), len(oracle.EdgeIDs), f.Weight, oracle.Weight)
			}
		}
	}
}

// TestSemiringBoruvkaHubRows exercises the shard cutter on pathologically
// skewed row lengths: one hub whose row alone spans many shards
// (degree >> shardArcTarget), plus a long path so contraction takes several
// rounds. The row-blocked SpMV must still select the true minimum of the
// hub's row, and the shard counter must show the hub was actually split.
func TestSemiringBoruvkaHubRows(t *testing.T) {
	const leaves = 4 * shardArcTarget
	n := leaves + 1
	edges := make([]graph.Edge, 0, 2*leaves)
	for v := 1; v <= leaves; v++ {
		edges = append(edges, graph.Edge{U: 0, V: uint32(v), W: float32(1000 + v%97)})
	}
	for v := 1; v < leaves; v++ {
		edges = append(edges, graph.Edge{U: uint32(v), V: uint32(v + 1), W: float32(v % 13)})
	}
	g := graph.MustFromEdges(1, n, edges)
	oracle := Kruskal(g)
	rec := obs.NewRecording()
	f := must(SemiringBoruvka(g, Options{Workers: 2, Observer: rec}))
	if !f.Equal(oracle) {
		t.Fatalf("hub graph: semi-boruvka differs from Kruskal (weight %g vs %g)", f.Weight, oracle.Weight)
	}
	// First round alone has 2m arcs; the hub row has 4*shardArcTarget of
	// them, so the cutter must have produced several shards.
	if got := rec.Counter(obs.CtrSemiShards); got < 4 {
		t.Errorf("semi.shards = %d; want >= 4 (hub row should span multiple shards)", got)
	}
}

// TestSemiringBoruvkaCounters checks the backend's telemetry contract: the
// first round scans every vertex row and both directed copies of every live
// edge, so the cumulative counters are bounded below by n and 2m, and the
// top-level span plus per-phase spans appear in a recording.
func TestSemiringBoruvkaCounters(t *testing.T) {
	g := gen.ErdosRenyi(1, 800, 6000, gen.WeightUniform, 92)
	rec := obs.NewRecording()
	var m WorkMetrics
	if _, err := SemiringBoruvka(g, Options{Workers: 2, Observer: rec, Metrics: &m}); err != nil {
		t.Fatal(err)
	}
	if got := rec.Counter(obs.CtrSemiSpmvRows); got < int64(g.NumVertices()) {
		t.Errorf("semi.spmv.rows = %d; want >= n = %d", got, g.NumVertices())
	}
	if got := rec.Counter(obs.CtrSemiSpmvArcs); got < int64(2*g.NumEdges()) {
		t.Errorf("semi.spmv.arcs = %d; want >= 2m = %d", got, 2*g.NumEdges())
	}
	if got := rec.Counter(obs.CtrSemiShards); got <= 0 {
		t.Errorf("semi.shards = %d; want > 0", got)
	}
	if got := rec.Counter(obs.CtrRounds); got != m.Rounds || m.Rounds <= 0 {
		t.Errorf("observer rounds %d, WorkMetrics.Rounds %d; want equal and positive", got, m.Rounds)
	}
	want := map[string]bool{
		"semi-boruvka":          false,
		"semi-boruvka.build":    false,
		"semi-boruvka.spmv":     false,
		"semi-boruvka.hook":     false,
		"semi-boruvka.contract": false,
	}
	for _, s := range rec.Spans() {
		if _, ok := want[s.Name]; ok {
			want[s.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("span %q not recorded (got %v)", name, spanNames(rec))
		}
	}
}
