package mst

import "fmt"

// WorkMetrics counts machine-independent operations, the quantities behind
// the paper's performance arguments: §V.A claims LLP-Prim "reduces the
// number of heap operations required by Prim by allowing edges to be
// selected without entering the heap", and §VI that LLP-Boruvka needs
// "little to no synchronization" per round. Pass a *WorkMetrics in
// Options.Metrics (or use Run) to collect them; counting costs a few
// register increments and does not perturb the measured algorithms.
//
// Fields are filled only where they make sense for the algorithm that ran;
// the rest stay zero.
type WorkMetrics struct {
	// HeapPushes counts insertions (including insertOrAdjust that inserted
	// or decreased).
	HeapPushes int64
	// HeapPops counts removals, including stale ones.
	HeapPops int64
	// StalePops counts pops discarded because the vertex was already fixed
	// or the entry's key was outdated (lazy heaps only).
	StalePops int64
	// EarlyFixes counts vertices fixed through a minimum-weight edge
	// (LLP-Prim's "second way", §V.A) — fixings that bypassed the heap.
	EarlyFixes int64
	// HeapFixes counts vertices fixed by a heap pop (classic Prim's only
	// way).
	HeapFixes int64
	// Relaxations counts tentative-distance improvements.
	Relaxations int64
	// Rounds counts outer rounds (Boruvka-family: contraction rounds).
	Rounds int64
	// JumpRounds counts LLP pointer-jumping sweeps (LLP-Boruvka).
	JumpRounds int64
	// JumpAdvances counts pointer-jump advance operations (LLP-Boruvka).
	JumpAdvances int64
	// Unions counts union-find Union calls that merged (ParallelBoruvka,
	// Kruskal family).
	Unions int64
}

// Add accumulates other into m.
func (m *WorkMetrics) Add(other WorkMetrics) {
	m.HeapPushes += other.HeapPushes
	m.HeapPops += other.HeapPops
	m.StalePops += other.StalePops
	m.EarlyFixes += other.EarlyFixes
	m.HeapFixes += other.HeapFixes
	m.Relaxations += other.Relaxations
	m.Rounds += other.Rounds
	m.JumpRounds += other.JumpRounds
	m.JumpAdvances += other.JumpAdvances
	m.Unions += other.Unions
}

// HeapOps returns total heap traffic (pushes + pops).
func (m *WorkMetrics) HeapOps() int64 { return m.HeapPushes + m.HeapPops }

// String renders the non-zero counters.
func (m *WorkMetrics) String() string {
	return fmt.Sprintf(
		"work{push=%d pop=%d stale=%d earlyFix=%d heapFix=%d relax=%d rounds=%d jumpRounds=%d jumpAdv=%d unions=%d}",
		m.HeapPushes, m.HeapPops, m.StalePops, m.EarlyFixes, m.HeapFixes,
		m.Relaxations, m.Rounds, m.JumpRounds, m.JumpAdvances, m.Unions)
}
