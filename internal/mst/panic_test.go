package mst

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"llpmst/internal/gen"
	"llpmst/internal/obs"
	"llpmst/internal/par"
)

// bombCollector panics on the fuse-th collector call. Observers are
// arbitrary user code invoked from inside the algorithms (driver side) and
// from scheduler workers (counter flushes), so a panicking one exercises
// the whole panic-isolation path end to end.
type bombCollector struct {
	obs.Nop
	fuse atomic.Int64
}

func (b *bombCollector) tick() {
	if b.fuse.Add(-1) == 0 {
		panic("observer bomb")
	}
}

func (b *bombCollector) Span(name string) func()  { b.tick(); return func() { b.tick() } }
func (b *bombCollector) Count(obs.Counter, int64) { b.tick() }
func (b *bombCollector) Gauge(obs.Gauge, int64)   { b.tick() }

// TestPanicSurfacesAsErrorWithSoundForest is the acceptance test for panic
// isolation: for each of the five parallel algorithms, an injected panic
// surfaces as an error wrapping *par.PanicError (the process survives), the
// partial forest contains only canonical-MSF edges, and no goroutines leak.
func TestPanicSurfacesAsErrorWithSoundForest(t *testing.T) {
	g := gen.ErdosRenyi(1, 2000, 20000, gen.WeightUniform, 21)
	oracle := Kruskal(g)
	inMSF := make(map[uint32]bool, len(oracle.EdgeIDs))
	for _, id := range oracle.EdgeIDs {
		inMSF[id] = true
	}
	before := runtime.NumGoroutine()
	for _, alg := range ctxAlgs {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			// Several fuse settings land the panic in different phases
			// (span open, mid-run gauges/counters, final flush).
			for _, fuse := range []int64{1, 3, 7, 50} {
				bomb := &bombCollector{}
				bomb.fuse.Store(fuse)
				f, err := Run(alg, g, Options{Workers: 4, Observer: bomb})
				if bomb.fuse.Load() > 0 {
					// The run finished before the fuse burned down; the
					// clean-path contract must then hold.
					if err != nil || !f.Equal(oracle) {
						t.Fatalf("fuse=%d: unexploded run wrong (err=%v)", fuse, err)
					}
					continue
				}
				if err == nil {
					t.Fatalf("fuse=%d: panic did not surface as an error", fuse)
				}
				var pe *par.PanicError
				if !errors.As(err, &pe) {
					t.Fatalf("fuse=%d: error %T does not wrap *par.PanicError: %v", fuse, err, err)
				}
				if pe.Value != "observer bomb" {
					t.Fatalf("fuse=%d: Value = %v", fuse, pe.Value)
				}
				if f == nil {
					t.Fatalf("fuse=%d: no partial forest returned", fuse)
				}
				for _, id := range f.EdgeIDs {
					if !inMSF[id] {
						t.Fatalf("fuse=%d: partial forest contains non-MSF edge %d", fuse, id)
					}
				}
			}
		})
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestPanicErrorShape pins the error message contract: algorithm name,
// progress fraction, and the wrapped panic.
func TestPanicErrorShape(t *testing.T) {
	pe := &par.PanicError{Value: "x", Item: 3}
	err := panicked(AlgLLPBoruvka, pe, 5, 9)
	want := "mst: llp-boruvka aborted by worker panic with 5/9 forest edges chosen: par: worker panic on item 3: x"
	if err.Error() != want {
		t.Fatalf("error = %q\nwant    %q", err.Error(), want)
	}
	var got *par.PanicError
	if !errors.As(err, &got) || got != pe {
		t.Fatal("wrapped *par.PanicError not reachable via errors.As")
	}
}
