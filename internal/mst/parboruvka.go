package mst

import (
	"sync/atomic"

	"llpmst/internal/graph"
	"llpmst/internal/par"
	"llpmst/internal/unionfind"
)

// ParallelBoruvka is the GBBS-style parallel Boruvka baseline the paper
// compares LLP-Boruvka against (§VII, "a fast parallel implementation of
// Boruvka"): rounds of
//
//  1. atomic write-min of every live cross edge into its two endpoint
//     components' best-edge cells,
//  2. adding each component's winning edge (CAS-deduplicated — an edge can
//     win for both sides) and uniting the endpoints in a lock-free
//     union-find,
//  3. relabelling vertices to their component root and compacting the live
//     edge array, discarding intra-component edges.
//
// Synchronization profile: a barrier between each phase and a union-find
// shared by all workers — exactly the costs LLP-Boruvka's rooted-star
// formulation avoids (no union-find; symmetry breaking plus pointer jumping
// instead).
func ParallelBoruvka(g *graph.CSR, opts Options) *Forest {
	p := opts.workers()
	n := g.NumVertices()
	m := g.NumEdges()
	edges := g.Edges()

	uf := unionfind.NewConcurrent(n)
	comp := make([]uint32, n)
	par.ForEach(p, n, 8192, func(v int) { comp[v] = uint32(v) })
	best := make([]uint64, n)
	inT := make([]uint32, m) // atomic 0/1
	alive := make([]uint32, m)
	par.ForEach(p, m, 8192, func(i int) { alive[i] = uint32(i) })
	ids := make([]uint32, 0, n)
	var rounds int64

	for len(alive) > 0 {
		rounds++
		par.FillKeys(p, best, par.InfKey)
		// Phase 1: write-min every live cross edge into both components.
		par.ForEach(p, len(alive), 2048, func(i int) {
			id := alive[i]
			e := &edges[id]
			cu, cv := comp[e.U], comp[e.V]
			if cu == cv {
				return
			}
			key := par.PackKey(e.W, id)
			par.WriteMin(&best[cu], key)
			par.WriteMin(&best[cv], key)
		})
		// Phase 2: per component root, add the winner and unite. comp[]
		// still holds the pre-union labels, so roots are stable here.
		won := par.ForCollect(p, n, 2048, func(lo, hi int, out []uint32) []uint32 {
			for v := lo; v < hi; v++ {
				if comp[v] != uint32(v) || best[v] == par.InfKey {
					continue
				}
				id := par.KeyID(best[v])
				e := &edges[id]
				uf.Union(e.U, e.V)
				if atomic.CompareAndSwapUint32(&inT[id], 0, 1) {
					out = append(out, id)
				}
			}
			return out
		})
		if len(won) == 0 {
			break
		}
		ids = append(ids, won...)
		// Phase 3: relabel and compact.
		par.ForEach(p, n, 4096, func(v int) { comp[v] = uf.Find(uint32(v)) })
		alive = par.ForCollect(p, len(alive), 4096, func(lo, hi int, out []uint32) []uint32 {
			for i := lo; i < hi; i++ {
				id := alive[i]
				e := &edges[id]
				if comp[e.U] != comp[e.V] {
					out = append(out, id)
				}
			}
			return out
		})
	}
	if opts.Metrics != nil {
		*opts.Metrics = WorkMetrics{Rounds: rounds, Unions: int64(len(ids))}
	}
	return newForest(g, ids)
}
