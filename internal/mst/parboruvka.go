package mst

import (
	"slices"
	"sync/atomic"

	"llpmst/internal/graph"
	"llpmst/internal/obs"
	"llpmst/internal/par"
)

// ParallelBoruvka is the GBBS-style parallel Boruvka baseline the paper
// compares LLP-Boruvka against (§VII, "a fast parallel implementation of
// Boruvka"): rounds of
//
//  1. atomic write-min of every live cross edge into its two endpoint
//     components' best-edge cells,
//  2. adding each component's winning edge (CAS-deduplicated — an edge can
//     win for both sides) and uniting the endpoints in a lock-free
//     union-find,
//  3. relabelling vertices to their component root and compacting the live
//     edge array, discarding intra-component edges.
//
// Synchronization profile: a barrier between each phase and a union-find
// shared by all workers — exactly the costs LLP-Boruvka's rooted-star
// formulation avoids (no union-find; symmetry breaking plus pointer jumping
// instead).
//
// Cancellation via opts.Ctx is polled at every phase boundary and (strided)
// inside the per-edge phase loops; a cancelled run returns the forest edges
// chosen in completed rounds plus a non-nil error. Phase-2 winners are only
// consumed when phase 1 ran to completion, so the partial forest is always
// a subset of the canonical MSF. A worker panic, re-raised by the par
// runtime after all workers have joined (and before the panicking phase's
// results are assigned), is converted into a *par.PanicError under the same
// partial-forest contract (see recoverPanic).
func ParallelBoruvka(g *graph.CSR, opts Options) (f *Forest, err error) {
	p := opts.workers()
	n := g.NumVertices()
	ws, release := opts.workspace()
	defer release()
	ids := ws.idsBuf(n)[:0]
	defer recoverPanic(AlgParallelBoruvka, g, &ids, n-1, &f, &err)
	m := g.NumEdges()
	edges := g.Edges()
	cc := opts.canceller()
	col := opts.collector()
	defer col.Span("boruvka-par")()

	uf := ws.ufBuf(n)
	comp := ws.flagsABuf(n)
	par.ForEach(p, n, 8192, func(v int) { comp[v] = uint32(v) })
	best := ws.keysBuf(n)
	inT := ws.eFlagsBuf(m) // atomic 0/1
	par.Fill(p, inT, 0)
	alive := ws.eIDsBuf(m)
	par.ForEach(p, m, 8192, func(i int) { alive[i] = uint32(i) })
	spareIDs := ws.eSpareBuf(m) // compaction ping-pong target
	counters := ws.countersBuf(p)
	var rounds int64

	// Phase bodies are hoisted out of the round loop (alive is captured by
	// reference) so steady-state rounds allocate nothing.
	writeMinBody := func(i int) {
		if cc.Stride(i) {
			return
		}
		id := alive[i]
		e := &edges[id]
		cu, cv := comp[e.U], comp[e.V]
		if cu == cv {
			return
		}
		key := par.PackKey(e.W, id)
		par.WriteMin(&best[cu], key)
		par.WriteMin(&best[cv], key)
	}
	// Winner chunks run under the executing worker's attributed collector
	// view, putting each worker's share of the winner pass on its own track
	// in flight recordings.
	winnerBody := func(w, lo, hi int, out []uint32) []uint32 {
		endChunk := obs.ForWorker(col, w).Span("boruvka-par.winners.chunk")
		defer endChunk()
		for v := lo; v < hi; v++ {
			if cc.Stride(v) {
				break
			}
			if comp[v] != uint32(v) || best[v] == par.InfKey {
				continue
			}
			id := par.KeyID(best[v])
			e := &edges[id]
			uf.Union(e.U, e.V)
			if atomic.CompareAndSwapUint32(&inT[id], 0, 1) {
				out = append(out, id)
			}
		}
		return out
	}
	relabelBody := func(v int) { comp[v] = uf.Find(uint32(v)) }
	keepCross := func(id uint32) bool {
		e := &edges[id]
		return comp[e.U] != comp[e.V]
	}

	cancelled := false
	for len(alive) > 0 {
		if cc.Poll() {
			cancelled = true
			break
		}
		rounds++
		// Mark the round before its events so they land in its segment.
		obs.MarkRound(col, rounds)
		col.Count(obs.CtrRounds, 1)
		col.Gauge(obs.GaugeLiveEdges, int64(len(alive)))
		roundSpan := col.Span("boruvka-par.round")
		par.FillKeys(p, best, par.InfKey)
		// Phase 1: write-min every live cross edge into both components.
		par.ForEach(p, len(alive), 2048, writeMinBody)
		// A cancel inside phase 1 leaves best[] incomplete; phase 2 must not
		// consume it, or the "winners" need not be MSF edges.
		if cc.Poll() {
			cancelled = true
			roundSpan()
			break
		}
		// Phase 2: per component root, add the winner and unite. comp[]
		// still holds the pre-union labels, so roots are stable here.
		won := par.ForCollectIntoW(p, n, 2048, ws.picks, winnerBody)
		// Winners chosen before a mid-phase-2 cancel are sound (phase 1 was
		// complete), so they may join the partial result.
		ids = append(ids, won...)
		ws.picks = won[:0] // keep grown capacity for the next round
		if cc.Poll() {
			cancelled = true
			roundSpan()
			break
		}
		if len(won) == 0 {
			roundSpan()
			break
		}
		// Phase 3: relabel, then compact the live edge array into the spare
		// buffer via per-worker chunk counts + prefix sum (no channel or
		// atomic-append contention; see par.FilterInto) and ping-pong.
		par.ForEach(p, n, 4096, relabelBody)
		kept := par.FilterInto(p, spareIDs, alive, counters, keepCross)
		spareIDs = alive[:cap(alive)]
		alive = kept
		roundSpan()
		if cc.Poll() {
			cancelled = true
			break
		}
	}
	if opts.Metrics != nil {
		*opts.Metrics = WorkMetrics{Rounds: rounds, Unions: int64(len(ids))}
	}
	f = newForest(g, slices.Clone(ids))
	if cancelled {
		return f, interrupted(AlgParallelBoruvka, cc, len(ids), n-1)
	}
	return f, nil
}
