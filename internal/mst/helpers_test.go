package mst

// must unwraps a (*Forest, error) return in tests that run without a
// cancellable context, where a non-nil error is a test bug.
func must(f *Forest, err error) *Forest {
	if err != nil {
		panic("unexpected error: " + err.Error())
	}
	return f
}
