package mst

import (
	"math/rand"
	"testing"

	"llpmst/internal/graph"
	"llpmst/internal/par"
)

func TestIncrementalMatchesKruskalAfterEveryInsertion(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 60
	inc := NewIncremental(n)
	var inserted []graph.Edge
	for step := 0; step < 600; step++ {
		u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		w := float32(rng.Intn(30)) // deliberate ties
		changed, err := inc.Insert(u, v, w)
		if err != nil {
			t.Fatal(err)
		}
		if u != v {
			inserted = append(inserted, graph.Edge{U: u, V: v, W: w})
		} else if changed {
			t.Fatal("self-loop changed the forest")
		}
		// Oracle: batch Kruskal on everything inserted so far. Edge ids in
		// the batch graph equal insertion order, matching Incremental's
		// tie-break.
		cp := make([]graph.Edge, len(inserted))
		copy(cp, inserted)
		g := graph.MustFromEdges(1, n, cp)
		want := Kruskal(g)
		if inc.Edges() != len(want.EdgeIDs) {
			t.Fatalf("step %d: %d forest edges, oracle %d", step, inc.Edges(), len(want.EdgeIDs))
		}
		if inc.Weight() != want.Weight {
			t.Fatalf("step %d: weight %g, oracle %g", step, inc.Weight(), want.Weight)
		}
		if inc.Trees() != want.Trees {
			t.Fatalf("step %d: trees %d, oracle %d", step, inc.Trees(), want.Trees)
		}
	}
	// Full edge-set equality at the end (weights + endpoints as multiset).
	g := graph.MustFromEdges(1, n, inserted)
	want := Kruskal(g)
	got := inc.ForestEdges()
	if len(got) != len(want.EdgeIDs) {
		t.Fatalf("%d edges, want %d", len(got), len(want.EdgeIDs))
	}
	type canon struct {
		u, v uint32
		w    float32
	}
	counts := map[canon]int{}
	for _, e := range got {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		counts[canon{u, v, e.W}]++
	}
	for _, id := range want.EdgeIDs {
		e := g.Edge(id)
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		counts[canon{u, v, e.W}]--
	}
	for c, k := range counts {
		if k != 0 {
			t.Fatalf("edge multiset differs at %+v (%+d)", c, k)
		}
	}
}

func TestIncrementalBasics(t *testing.T) {
	inc := NewIncremental(4)
	if inc.N() != 4 || inc.Edges() != 0 || inc.Trees() != 4 {
		t.Fatal("fresh state wrong")
	}
	if inc.Connected(0, 1) {
		t.Fatal("fresh vertices connected")
	}
	ok, err := inc.Insert(0, 1, 5)
	if err != nil || !ok {
		t.Fatalf("insert: %v %v", ok, err)
	}
	if !inc.Connected(0, 1) || inc.Connected(0, 2) {
		t.Fatal("connectivity wrong")
	}
	// Cycle edge heavier than everything: rejected.
	inc.Insert(1, 2, 3)
	inc.Insert(2, 0, 9)
	if inc.Edges() != 2 || inc.Weight() != 8 {
		t.Fatalf("edges=%d weight=%v", inc.Edges(), inc.Weight())
	}
	// Cycle edge lighter than the max on the path: swap happens.
	ok, _ = inc.Insert(2, 0, 1)
	if !ok || inc.Weight() != 4 {
		t.Fatalf("swap failed: weight=%v", inc.Weight())
	}
}

func TestIncrementalErrors(t *testing.T) {
	inc := NewIncremental(2)
	if _, err := inc.Insert(0, 5, 1); err == nil {
		t.Fatal("out of range accepted")
	}
	if _, err := inc.Insert(0, 1, -2); err == nil {
		t.Fatal("negative weight accepted")
	}
	nan := float32(0)
	nan /= nan
	if _, err := inc.Insert(0, 1, nan); err == nil {
		t.Fatal("NaN accepted")
	}
	ok, err := inc.Insert(1, 1, 1)
	if err != nil || ok {
		t.Fatal("self-loop should be a silent no-op")
	}
}

func TestIncrementalEqualWeightsPreferEarlierInsertion(t *testing.T) {
	inc := NewIncremental(3)
	inc.Insert(0, 1, 7) // id 0
	inc.Insert(1, 2, 7) // id 1
	// Same weight closing the cycle: later id loses the tie.
	ok, _ := inc.Insert(2, 0, 7)
	if ok {
		t.Fatal("equal-weight later edge should not displace earlier ones")
	}
	edges := inc.ForestEdges()
	if len(edges) != 2 || edges[0].U != 0 || edges[0].V != 1 {
		t.Fatalf("forest %v", edges)
	}
}

func TestIncrementalConnectedOutOfRange(t *testing.T) {
	inc := NewIncremental(4)
	if _, err := inc.Insert(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Regression: these used to index parent[v] unchecked and panic.
	for _, q := range [][2]uint32{{0, 4}, {4, 0}, {7, 9}, {1 << 30, 2}} {
		if inc.Connected(q[0], q[1]) {
			t.Fatalf("Connected(%d,%d) = true for out-of-range query", q[0], q[1])
		}
	}
	if !inc.Connected(0, 1) {
		t.Fatal("Connected(0,1) = false after inserting the edge")
	}
}

func TestIncrementalForestEdgesIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 128
	inc := NewIncremental(n)
	for i := 0; i < 4*n; i++ {
		if _, err := inc.Insert(uint32(rng.Intn(n)), uint32(rng.Intn(n)), float32(rng.Intn(50))); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]graph.Edge, 0, n)
	inc.ForestEdgesInto(buf) // warm the internal key scratch
	allocs := testing.AllocsPerRun(20, func() {
		buf = inc.ForestEdgesInto(buf)
	})
	if allocs != 0 {
		t.Fatalf("ForestEdgesInto allocates %v per call, want 0", allocs)
	}
	if len(buf) != inc.Edges() {
		t.Fatalf("ForestEdgesInto returned %d edges, forest has %d", len(buf), inc.Edges())
	}
	want := inc.ForestEdges()
	for i, e := range buf {
		if e != want[i] {
			t.Fatalf("edge %d differs: into=%+v fresh=%+v", i, e, want[i])
		}
	}
}

func TestIncrementalCutAndKeyedInsert(t *testing.T) {
	// Maintain a forest through keyed inserts and cuts, checking the
	// reported evictions and the cut endpoints against the live state.
	inc := NewIncremental(5)
	keyOf := func(w float32, id uint32) uint64 { return par.PackKey(w, id) }

	k01 := keyOf(1, 0)
	var evicted uint64
	added, _, had, err := inc.InsertKeyed(0, 1, k01)
	if err != nil || !added || had {
		t.Fatalf("link 0-1: added=%v evict=%v err=%v", added, had, err)
	}
	k12 := keyOf(5, 1)
	if added, _, _, _ := inc.InsertKeyed(1, 2, k12); !added {
		t.Fatal("link 1-2 rejected")
	}
	// 0-2 with weight 3 closes a cycle whose heaviest edge is 1-2 (w=5):
	// the offer must evict exactly k12.
	k02 := keyOf(3, 2)
	added, evicted, had, err = inc.InsertKeyed(0, 2, k02)
	if err != nil || !added || !had || evicted != k12 {
		t.Fatalf("insert 0-2: added=%v evicted=%#x (want %#x) err=%v", added, evicted, k12, err)
	}
	if inc.HasEdge(k12) || !inc.HasEdge(k01) || !inc.HasEdge(k02) {
		t.Fatal("forest membership after eviction is wrong")
	}
	// Reusing a live key must be rejected.
	if _, _, _, err := inc.InsertKeyed(3, 4, k01); err == nil {
		t.Fatal("InsertKeyed accepted a duplicate live key")
	}
	// Cut 0-2 and verify endpoints and membership.
	u, v, ok := inc.Cut(k02)
	if !ok || u != 0 || v != 2 {
		t.Fatalf("Cut(k02) = (%d,%d,%v), want (0,2,true)", u, v, ok)
	}
	if inc.HasEdge(k02) || inc.Connected(0, 2) {
		t.Fatal("0-2 still present or connected after Cut")
	}
	if !inc.Connected(0, 1) {
		t.Fatal("Cut detached an unrelated edge")
	}
	if _, _, ok := inc.Cut(k02); ok {
		t.Fatal("double Cut reported ok")
	}
	if inc.Edges() != 1 {
		t.Fatalf("edge count %d after cuts, want 1", inc.Edges())
	}
}
