package mst

import (
	"testing"

	"llpmst/internal/gen"
)

func TestKKTManySeedsSameForest(t *testing.T) {
	g := gen.RMAT(1, 11, 8, gen.WeightUniform, 13)
	oracle := Kruskal(g)
	for seed := int64(0); seed < 10; seed++ {
		f := KKT(g, Options{Seed: seed})
		if !f.Equal(oracle) {
			t.Fatalf("seed %d: KKT differs from oracle", seed)
		}
	}
}

func TestKKTOnLargerGraphWithRecursion(t *testing.T) {
	// Big enough to recurse several levels past the base case.
	g := gen.ErdosRenyi(1, 1<<13, 1<<16, gen.WeightUniform, 3)
	var m WorkMetrics
	f := KKT(g, Options{Metrics: &m, Seed: 1})
	if !f.Equal(Kruskal(g)) {
		t.Fatal("KKT differs from oracle")
	}
	if m.Rounds < 3 {
		t.Fatalf("expected multiple recursion levels, got %d", m.Rounds)
	}
	if err := VerifyMinimum(g, f); err != nil {
		t.Fatal(err)
	}
}

func TestKKTDisconnectedAndDegenerate(t *testing.T) {
	d := gen.Disconnected(6, 50, 5)
	if !KKT(d, Options{}).Equal(Kruskal(d)) {
		t.Fatal("KKT wrong on disconnected graph")
	}
	star := gen.Star(2000)
	if !KKT(star, Options{}).Equal(Kruskal(star)) {
		t.Fatal("KKT wrong on star")
	}
}

func TestBoruvkaStepInvariants(t *testing.T) {
	g := gen.Cycle(100, 1)
	edges := make([]cedge, g.NumEdges())
	for i := range edges {
		e := g.Edge(uint32(i))
		edges[i] = cedge{u: e.U, v: e.V, key: g.EdgeKey(uint32(i))}
	}
	nv, rest, chosen := boruvkaStep(100, edges)
	// Boruvka at least halves the vertex count on a graph with no isolated
	// vertices.
	if nv > 50 {
		t.Fatalf("nv = %d after one step on a 100-cycle, want <= 50", nv)
	}
	if len(chosen) < 50 {
		t.Fatalf("chose %d edges, want >= 50", len(chosen))
	}
	// Every surviving edge is a cross edge in the new space.
	for _, e := range rest {
		if e.u == e.v {
			t.Fatal("intra-component edge survived contraction")
		}
		if int(e.u) >= nv || int(e.v) >= nv {
			t.Fatal("edge endpoint outside contracted space")
		}
	}
	// Chosen edges are distinct.
	seen := map[uint32]bool{}
	for _, id := range chosen {
		if seen[id] {
			t.Fatalf("edge %d chosen twice", id)
		}
		seen[id] = true
	}
}

func TestKruskalEdgesBaseCase(t *testing.T) {
	edges := []cedge{
		{u: 0, v: 1, key: 30}, {u: 1, v: 2, key: 10}, {u: 0, v: 2, key: 20},
	}
	ids := kruskalEdges(3, edges)
	if len(ids) != 2 {
		t.Fatalf("%d edges, want 2", len(ids))
	}
	// Keys 10 and 20 win; their low 32 bits are the ids 10, 20.
	if ids[0] != 10 || ids[1] != 20 {
		t.Fatalf("ids %v, want [10 20]", ids)
	}
}
