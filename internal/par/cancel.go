package par

import (
	"context"
	"sync/atomic"
)

// Canceller polls a context from hot loops at a cost the loops can afford.
// Cancellation in this runtime is cooperative: workers never block on the
// context, they poll it — at work-item granularity in the schedulers,
// strided every 2^10 items in tight per-edge loops, and at every phase
// boundary. Once one poll observes cancellation the sticky flag makes every
// later check a single atomic load, so all workers of a parallel region
// quiesce within one stride of each other.
//
// A Canceller built from a nil context, context.Background(), or any other
// context that can never be cancelled (Done() == nil) is inert: Active
// reports false and every check is a nil comparison. The zero value is
// likewise inert.
type Canceller struct {
	ctx     context.Context
	done    <-chan struct{}
	stopped atomic.Bool
}

// strideMask spaces the context polls of Stride: one real poll every 1024
// items keeps worst-case cancellation latency in the microseconds while the
// per-item cost stays a mask test.
const strideMask = 1<<10 - 1

// inert is the shared Canceller for contexts that can never be cancelled.
// It is never mutated (Poll exits before touching stopped when done is
// nil), so sharing one instance across all uncancellable runs is safe and
// keeps NewCanceller allocation-free on the common nil-context path.
var inert Canceller

// NewCanceller wraps ctx (which may be nil) for cooperative polling.
// Uncancellable contexts (nil, context.Background(), any Done() == nil)
// share a single inert instance, so building a Canceller costs nothing
// unless cancellation is actually possible.
func NewCanceller(ctx context.Context) *Canceller {
	if ctx == nil {
		return &inert
	}
	done := ctx.Done()
	if done == nil {
		return &inert
	}
	return &Canceller{ctx: ctx, done: done}
}

// Active reports whether cancellation is possible at all. Loops may use it
// to pick an uninstrumented fast path.
func (c *Canceller) Active() bool { return c != nil && c.done != nil }

// Poll checks the context now and reports whether the run is cancelled.
// Intended for phase boundaries and scheduler idle loops.
func (c *Canceller) Poll() bool {
	if c == nil || c.done == nil {
		return false
	}
	if c.stopped.Load() {
		return true
	}
	select {
	case <-c.done:
		c.stopped.Store(true)
		return true
	default:
		return false
	}
}

// Stride is the per-item check for tight loops: a nil test, then a sticky
// atomic load, and a real context poll only every 1024th item index.
func (c *Canceller) Stride(i int) bool {
	if c == nil || c.done == nil {
		return false
	}
	if c.stopped.Load() {
		return true
	}
	if i&strideMask != 0 {
		return false
	}
	return c.Poll()
}

// Err returns the context's error: non-nil exactly when the context is
// cancelled or past its deadline. Safe on an inert Canceller.
func (c *Canceller) Err() error {
	if c == nil || c.ctx == nil {
		return nil
	}
	return c.ctx.Err()
}
