package par

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count settles back to (about)
// before, failing the test otherwise — the no-leak half of the panic
// contract.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestForPanicRethrow(t *testing.T) {
	before := runtime.NumGoroutine()
	var processed atomic.Int64
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("For swallowed the worker panic")
			}
			pe, ok := r.(*PanicError)
			if !ok {
				t.Fatalf("re-raised %T, want *PanicError", r)
			}
			if pe.Value != "boom" {
				t.Fatalf("Value = %v, want boom", pe.Value)
			}
			if !strings.Contains(string(pe.Stack), "TestForPanicRethrow") {
				t.Fatalf("Stack does not show the panic site:\n%s", pe.Stack)
			}
		}()
		For(4, 100_000, 64, func(lo, hi int) {
			if lo == 1024 {
				panic("boom")
			}
			processed.Add(int64(hi - lo))
		})
	}()
	waitGoroutines(t, before)
	if processed.Load() == 0 {
		t.Fatal("no chunks processed before the rethrow")
	}
}

func TestForEachPanicValueIsError(t *testing.T) {
	sentinel := errors.New("worker exploded")
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("re-raised %T, want *PanicError", r)
		}
		// Unwrap exposes an error-typed panic value to errors.Is.
		if !errors.Is(pe, sentinel) {
			t.Fatalf("errors.Is failed to reach %v through %v", sentinel, pe)
		}
	}()
	ForEach(4, 50_000, 64, func(i int) {
		if i == 30_000 {
			panic(sentinel)
		}
	})
	t.Fatal("panic did not propagate")
}

func TestDoPanicItemIndex(t *testing.T) {
	before := runtime.NumGoroutine()
	defer waitGoroutines(t, before)
	defer func() {
		pe, ok := recover().(*PanicError)
		if !ok {
			t.Fatal("Do did not re-raise a *PanicError")
		}
		if pe.Item != 2 {
			t.Fatalf("Item = %d, want 2 (the panicking thunk's index)", pe.Item)
		}
	}()
	Do(4,
		func() {},
		func() {},
		func() { panic("thunk 2") },
		func() {},
	)
	t.Fatal("panic did not propagate")
}

func TestAsPanicErrorPassthrough(t *testing.T) {
	orig := &PanicError{Value: "x", Item: 7, Stack: []byte("s")}
	if got := AsPanicError(orig, 99); got != orig {
		t.Fatalf("AsPanicError rewrapped an existing *PanicError: %+v", got)
	}
	got := AsPanicError("y", 3)
	if got.Value != "y" || got.Item != 3 || len(got.Stack) == 0 {
		t.Fatalf("AsPanicError wrapped wrong: %+v", got)
	}
}

func TestPanicBoxFirstWinsAndCounts(t *testing.T) {
	var box PanicBox
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			box.Capture(i, i)
		}(i)
	}
	wg.Wait()
	if box.Err() == nil {
		t.Fatal("no panic recorded")
	}
	if n := box.Count(); n != 8 {
		t.Fatalf("Count = %d, want 8", n)
	}
	box.Capture(nil, 0) // nil recover result is a no-op
	if n := box.Count(); n != 8 {
		t.Fatalf("Count after nil capture = %d, want 8", n)
	}
	var empty PanicBox
	if empty.Err() != nil || empty.Count() != 0 {
		t.Fatal("zero-value box not empty")
	}
	empty.Rethrow() // must be a no-op
}
