package par

// Parallel reductions over index ranges. Used for graph statistics and for
// the termination checks of round-synchronous LLP drivers.

// ReduceInt64 reduces f(i) over [0, n) with the associative, commutative
// combine function and the given identity, using p workers.
func ReduceInt64(p, n int, identity int64, f func(i int) int64, combine func(a, b int64) int64) int64 {
	return reduceChunks(p, n, identity, f, combine)
}

// SumInt64 returns the sum of f(i) for i in [0, n) computed with p workers.
func SumInt64(p, n int, f func(i int) int64) int64 {
	return reduceChunks(p, n, 0, f, func(a, b int64) int64 { return a + b })
}

// MaxInt64 returns the maximum of f(i) for i in [0, n), or identity if n==0.
func MaxInt64(p, n int, identity int64, f func(i int) int64) int64 {
	return reduceChunks(p, n, identity, f, func(a, b int64) int64 {
		if a > b {
			return a
		}
		return b
	})
}

// CountTrue returns how many i in [0, n) satisfy pred.
func CountTrue(p, n int, pred func(i int) bool) int64 {
	return SumInt64(p, n, func(i int) int64 {
		if pred(i) {
			return 1
		}
		return 0
	})
}

// Any reports whether pred(i) holds for at least one i in [0, n). It may
// evaluate pred on all indices (no early exit across workers), which is fine
// for the dense checks it is used for.
func Any(p, n int, pred func(i int) bool) bool {
	return CountTrue(p, n, pred) > 0
}

// reduceChunks evaluates the reduction chunk-wise: each worker-chunk reduces
// locally, then the per-chunk results are folded sequentially. Per-chunk
// results are delivered through a channel to avoid sharing accumulators.
func reduceChunks(p, n int, identity int64, f func(i int) int64, combine func(a, b int64) int64) int64 {
	p = Workers(p)
	if p == 1 || n <= DefaultGrain {
		acc := identity
		for i := 0; i < n; i++ {
			acc = combine(acc, f(i))
		}
		return acc
	}
	nchunks := (n + DefaultGrain - 1) / DefaultGrain
	results := make(chan int64, nchunks)
	For(p, n, DefaultGrain, func(lo, hi int) {
		acc := identity
		for i := lo; i < hi; i++ {
			acc = combine(acc, f(i))
		}
		results <- acc
	})
	close(results)
	acc := identity
	for v := range results {
		acc = combine(acc, v)
	}
	return acc
}
