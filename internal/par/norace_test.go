//go:build !race

package par

const raceTestEnabled = false
