package par

// Min-plus (tropical) semiring reduction kernels.
//
// The sparse-matrix MSF formulation (Baer–Kanakagiri–Solomonik) turns each
// Boruvka round's "every component picks its minimum outgoing edge" into a
// min-plus SpMV: y[r] = ⊕_a A[r][a] where ⊕ is min over the packed
// (weight, edge id) keys of atomicmin.go. Because the matrix rows are
// materialized contiguously and each row has exactly one owner, the
// reduction needs no atomics — unlike the WriteMin scatter the
// pointer-based algorithms use — and the inner loop is a regular forward
// stream over a []uint64, the raw-speed property the formulation is for.

// minReduceUnroll is MinKeys' unroll factor: four independent accumulators
// hide the latency of the serial min dependency chain (each lane's
// compare-select depends only on its own previous value, so a superscalar
// core retires all four per cycle group).
const minReduceUnroll = 4

// MinKeys returns the minimum of keys under the packed (weight, id) total
// order, and InfKey for an empty slice. The loop body is branch-free: the
// builtin integer min compiles to compare+conditional-select, so throughput
// does not depend on the input's ordering (a sorted-descending row costs
// the same as a sorted-ascending one — no branch mispredictions).
func MinKeys(keys []uint64) uint64 {
	m0, m1, m2, m3 := InfKey, InfKey, InfKey, InfKey
	i := 0
	for ; i+minReduceUnroll <= len(keys); i += minReduceUnroll {
		m0 = min(m0, keys[i])
		m1 = min(m1, keys[i+1])
		m2 = min(m2, keys[i+2])
		m3 = min(m3, keys[i+3])
	}
	for ; i < len(keys); i++ {
		m0 = min(m0, keys[i])
	}
	return min(min(m0, m1), min(m2, m3))
}

// MinRowsInto reduces consecutive key rows into y: row r spans
// keys[off[r]:off[r+1]] and y[r] receives its MinKeys (InfKey for an empty
// row). off must be non-decreasing with len(off) == len(y)+1; its values
// index keys directly, so a shard reduces rows [lo, hi) of a larger matrix
// by passing y[lo:hi], off[lo:hi+1], and the full key array. Disjoint
// shards then write disjoint y ranges and the whole sweep is race-free
// without atomics.
func MinRowsInto(y []uint64, off []int64, keys []uint64) {
	for r := range y {
		y[r] = MinKeys(keys[off[r]:off[r+1]])
	}
}
