package par

// Prefix sums (scans). Parallel Boruvka's contraction step and the CSR
// builders need exclusive prefix sums over per-vertex counts; on large inputs
// these are computed with the standard two-pass blocked algorithm.

// ExclusiveScan replaces s with its exclusive prefix sum and returns the
// total. s[i] becomes sum(s[0:i]); the former grand total is the return
// value. Runs on p workers using a two-pass blocked scan when profitable.
func ExclusiveScan(p int, s []int64) int64 {
	n := len(s)
	p = Workers(p)
	const blockMin = 1 << 14
	if p == 1 || n < 2*blockMin {
		var sum int64
		for i := range s {
			v := s[i]
			s[i] = sum
			sum += v
		}
		return sum
	}
	nb := p * 4
	if max := n / blockMin; nb > max {
		nb = max
	}
	bsz := (n + nb - 1) / nb
	sums := make([]int64, nb)
	// Pass 1: per-block totals.
	ForEach(p, nb, 1, func(b int) {
		lo, hi := b*bsz, (b+1)*bsz
		if hi > n {
			hi = n
		}
		var t int64
		for i := lo; i < hi; i++ {
			t += s[i]
		}
		sums[b] = t
	})
	// Scan block totals sequentially (nb is tiny).
	var total int64
	for b := range sums {
		t := sums[b]
		sums[b] = total
		total += t
	}
	// Pass 2: local exclusive scan seeded with the block offset.
	ForEach(p, nb, 1, func(b int) {
		lo, hi := b*bsz, (b+1)*bsz
		if hi > n {
			hi = n
		}
		run := sums[b]
		for i := lo; i < hi; i++ {
			v := s[i]
			s[i] = run
			run += v
		}
	})
	return total
}

// CountingScan computes, with p workers, the exclusive prefix sum of counts
// produced by count(i) over [0, n), returning the offsets slice (length n+1,
// offsets[n] = total). It is the "histogram then scan" idiom used to build
// CSR structures and to compact subsets.
func CountingScan(p, n int, count func(i int) int64) []int64 {
	offsets := make([]int64, n+1)
	ForEach(p, n, 4096, func(i int) { offsets[i] = count(i) })
	total := ExclusiveScan(p, offsets[:n])
	offsets[n] = total
	return offsets
}

// Pack copies the elements of src whose keep flag is set into a fresh slice,
// preserving order, using p workers. keep[i] governs src[i].
func Pack[T any](p int, src []T, keep []bool) []T {
	n := len(src)
	offsets := CountingScan(p, n, func(i int) int64 {
		if keep[i] {
			return 1
		}
		return 0
	})
	out := make([]T, offsets[n])
	ForEach(p, n, 4096, func(i int) {
		if keep[i] {
			out[offsets[i]] = src[i]
		}
	})
	return out
}

// PackFunc copies the elements of src satisfying keep into a fresh slice,
// preserving order, using p workers. keep must be pure (it is evaluated
// twice per element: count pass and copy pass).
func PackFunc[T any](p int, src []T, keep func(T) bool) []T {
	n := len(src)
	offsets := CountingScan(p, n, func(i int) int64 {
		if keep(src[i]) {
			return 1
		}
		return 0
	})
	out := make([]T, offsets[n])
	ForEach(p, n, 4096, func(i int) {
		if keep(src[i]) {
			out[offsets[i]] = src[i]
		}
	})
	return out
}

// PackIndex returns the indices i in [0, n) for which keep(i) is true, in
// increasing order, computed with p workers.
func PackIndex(p, n int, keep func(i int) bool) []uint32 {
	offsets := CountingScan(p, n, func(i int) int64 {
		if keep(i) {
			return 1
		}
		return 0
	})
	out := make([]uint32, offsets[n])
	ForEach(p, n, 4096, func(i int) {
		if keep(i) {
			out[offsets[i]] = uint32(i)
		}
	})
	return out
}
