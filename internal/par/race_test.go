//go:build race

package par

// raceTestEnabled gates allocation-count assertions, which the race
// detector's instrumentation can perturb.
const raceTestEnabled = true
