package par

import (
	"slices"
	"sort"
)

// Parallel sorting. Kruskal and the contraction steps sort edge arrays; on
// large inputs we use a chunked merge sort: p sorted runs produced with the
// stdlib sort, then pairwise parallel merges. Stable enough for our use
// (keys are unique packed (weight,id) values).

const sortSeqCutoff = 1 << 13

// SortUint64 sorts s ascending using up to p workers.
func SortUint64(p int, s []uint64) {
	p = Workers(p)
	if p == 1 || len(s) <= sortSeqCutoff {
		slices.Sort(s)
		return
	}
	mergeSortU64(p, s, make([]uint64, len(s)))
}

func mergeSortU64(p int, s, tmp []uint64) {
	if p <= 1 || len(s) <= sortSeqCutoff {
		slices.Sort(s)
		return
	}
	mid := len(s) / 2
	Do(2,
		func() { mergeSortU64(p/2, s[:mid], tmp[:mid]) },
		func() { mergeSortU64(p-p/2, s[mid:], tmp[mid:]) },
	)
	copy(tmp, s)
	mergeU64(tmp[:mid], tmp[mid:], s)
}

func mergeU64(a, b, out []uint64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out[k] = a[i]
			i++
		} else {
			out[k] = b[j]
			j++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}

// SortFunc sorts s with the given strict-weak less function using up to p
// workers (parallel merge sort over stdlib-sorted runs).
func SortFunc[T any](p int, s []T, less func(a, b T) bool) {
	p = Workers(p)
	if p == 1 || len(s) <= sortSeqCutoff {
		sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
		return
	}
	mergeSortFunc(p, s, make([]T, len(s)), less)
}

func mergeSortFunc[T any](p int, s, tmp []T, less func(a, b T) bool) {
	if p <= 1 || len(s) <= sortSeqCutoff {
		sort.Slice(s, func(i, j int) bool { return less(s[i], s[j]) })
		return
	}
	mid := len(s) / 2
	Do(2,
		func() { mergeSortFunc(p/2, s[:mid], tmp[:mid], less) },
		func() { mergeSortFunc(p-p/2, s[mid:], tmp[mid:], less) },
	)
	copy(tmp, s)
	a, b := tmp[:mid], tmp[mid:]
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			s[k] = b[j]
			j++
		} else {
			s[k] = a[i]
			i++
		}
		k++
	}
	copy(s[k:], a[i:])
	copy(s[k+len(a)-i:], b[j:])
}
