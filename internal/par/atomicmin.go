package par

import (
	"math"
	"sync/atomic"
)

// Packed (weight, id) keys.
//
// The paper assumes distinct edge weights and suggests breaking ties with
// endpoint identities. We realize that total order as a single uint64:
// the high 32 bits are the IEEE-754 bit pattern of the (finite, non-negative)
// float32 weight — whose unsigned integer order coincides with numeric order —
// and the low 32 bits are the canonical undirected edge id. Two distinct
// edges therefore always compare differently, and the whole key supports
// lock-free atomic minimum via compare-and-swap, which is the fine-grained
// primitive GBBS-style parallel Boruvka is built on.

// InfKey is the identity element for atomic minimum: larger than every packed
// key of a real edge.
const InfKey uint64 = math.MaxUint64

// PackKey packs a finite non-negative float32 weight and a 32-bit edge id
// into a totally ordered uint64 key. Keys order first by weight, then by id.
func PackKey(w float32, id uint32) uint64 {
	return uint64(math.Float32bits(w))<<32 | uint64(id)
}

// UnpackKey is the inverse of PackKey.
func UnpackKey(k uint64) (w float32, id uint32) {
	return math.Float32frombits(uint32(k >> 32)), uint32(k)
}

// KeyWeight extracts only the weight of a packed key.
func KeyWeight(k uint64) float32 { return math.Float32frombits(uint32(k >> 32)) }

// KeyID extracts only the edge id of a packed key.
func KeyID(k uint64) uint32 { return uint32(k) }

// WriteMin atomically sets *addr = min(*addr, val) and reports whether val
// became the new minimum. The classic priority-update primitive: contended
// writes that lose the race do nothing, so it scales under high fan-in.
func WriteMin(addr *uint64, val uint64) bool {
	for {
		old := atomic.LoadUint64(addr)
		if val >= old {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, val) {
			return true
		}
	}
}

// WriteMax atomically sets *addr = max(*addr, val) and reports whether val
// became the new maximum.
func WriteMax(addr *uint64, val uint64) bool {
	for {
		old := atomic.LoadUint64(addr)
		if val <= old {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, val) {
			return true
		}
	}
}

// WriteMinU32 atomically sets *addr = min(*addr, val) on a uint32 cell.
func WriteMinU32(addr *uint32, val uint32) bool {
	for {
		old := atomic.LoadUint32(addr)
		if val >= old {
			return false
		}
		if atomic.CompareAndSwapUint32(addr, old, val) {
			return true
		}
	}
}

// FillKeys sets every element of s to k, in parallel with p workers.
func FillKeys(p int, s []uint64, k uint64) { Fill(p, s, k) }
