package par

// ForCollect runs body over chunks of [0, n) with p workers; each chunk
// appends results to a fresh local buffer that body returns, and ForCollect
// concatenates all buffers into one slice. Chunk order within the result is
// unspecified (parallel frontier expansion does not need it).
func ForCollect[T any](p, n, grain int, body func(lo, hi int, out []T) []T) []T {
	if n <= 0 {
		return nil
	}
	p = Workers(p)
	if grain <= 0 {
		grain = DefaultGrain
	}
	if p == 1 || n <= grain {
		return body(0, n, nil)
	}
	nchunks := (n + grain - 1) / grain
	results := make(chan []T, nchunks)
	For(p, n, grain, func(lo, hi int) {
		results <- body(lo, hi, nil)
	})
	close(results)
	var total int
	bufs := make([][]T, 0, nchunks)
	for b := range results {
		bufs = append(bufs, b)
		total += len(b)
	}
	out := make([]T, 0, total)
	for _, b := range bufs {
		out = append(out, b...)
	}
	return out
}
