package par

// ForCollect runs body over chunks of [0, n) with p workers; each chunk
// appends results to a fresh local buffer that body returns, and ForCollect
// concatenates all buffers into one slice. Chunk order within the result is
// unspecified (parallel frontier expansion does not need it).
func ForCollect[T any](p, n, grain int, body func(lo, hi int, out []T) []T) []T {
	return ForCollectInto(p, n, grain, nil, body)
}

// ForCollectInto is ForCollect accumulating into buf's storage: the
// sequential fast path (one worker, or the whole range below the grain)
// appends into buf[:0] directly, and the parallel path concatenates the
// per-chunk buffers into buf when its capacity suffices. A caller that
// keeps the returned slice's capacity for the next call (ws pattern:
// buf = ForCollectInto(p, n, g, buf, body)[:0] ... ) reaches zero
// steady-state allocations on the sequential path. buf's contents are
// overwritten; it must not alias anything body reads.
func ForCollectInto[T any](p, n, grain int, buf []T, body func(lo, hi int, out []T) []T) []T {
	if n <= 0 {
		return buf[:0]
	}
	p = Workers(p)
	if grain <= 0 {
		grain = DefaultGrain
	}
	if p == 1 || n <= grain {
		return body(0, n, buf[:0])
	}
	nchunks := (n + grain - 1) / grain
	results := make(chan []T, nchunks)
	For(p, n, grain, func(lo, hi int) {
		results <- body(lo, hi, nil)
	})
	close(results)
	var total int
	bufs := make([][]T, 0, nchunks)
	for b := range results {
		bufs = append(bufs, b)
		total += len(b)
	}
	out := buf[:0]
	if cap(out) < total {
		out = make([]T, 0, total)
	}
	for _, b := range bufs {
		out = append(out, b...)
	}
	return out
}

// ForCollectIntoW is ForCollectInto with the worker's index passed to body
// (see ForW): body(w, lo, hi, out) may attribute its side effects — span
// timings, counter deltas — to worker w. The sequential fast path passes
// w = 0 and appends into buf[:0] directly, preserving ForCollectInto's
// zero-steady-state-allocation property.
func ForCollectIntoW[T any](p, n, grain int, buf []T, body func(w, lo, hi int, out []T) []T) []T {
	if n <= 0 {
		return buf[:0]
	}
	p = Workers(p)
	if grain <= 0 {
		grain = DefaultGrain
	}
	if p == 1 || n <= grain {
		return body(0, 0, n, buf[:0])
	}
	nchunks := (n + grain - 1) / grain
	results := make(chan []T, nchunks)
	ForW(p, n, grain, func(w, lo, hi int) {
		results <- body(w, lo, hi, nil)
	})
	close(results)
	var total int
	bufs := make([][]T, 0, nchunks)
	for b := range results {
		bufs = append(bufs, b)
		total += len(b)
	}
	out := buf[:0]
	if cap(out) < total {
		out = make([]T, 0, total)
	}
	for _, b := range bufs {
		out = append(out, b...)
	}
	return out
}
