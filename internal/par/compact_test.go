package par

import (
	"math/rand"
	"slices"
	"testing"
)

// refFilterMap is the sequential oracle for the *Into compactions.
func refFilterMap(src []int, f func(int) (int, bool)) []int {
	var out []int
	for _, x := range src {
		if d, ok := f(x); ok {
			out = append(out, d)
		}
	}
	return out
}

func TestFilterMapIntoMatchesSequential(t *testing.T) {
	f := func(x int) (int, bool) { return x * 2, x%3 != 0 }
	for _, p := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 2, 7, 100, 1 << 14} {
			src := make([]int, n)
			for i := range src {
				src[i] = rand.Intn(1000)
			}
			want := refFilterMap(src, f)
			got := FilterMapInto(p, nil, src, nil, f)
			if !slices.Equal(got, want) {
				t.Fatalf("p=%d n=%d: FilterMapInto mismatch (%d vs %d elems)", p, n, len(got), len(want))
			}
		}
	}
}

func TestFilterMapIntoReusesDst(t *testing.T) {
	src := make([]int, 4096)
	for i := range src {
		src[i] = i
	}
	f := func(x int) (int, bool) { return x, x%2 == 0 }
	dst := make([]int, 0, len(src))
	pad := PadBlock(nil, Workers(4))
	for round := 0; round < 3; round++ {
		out := FilterMapInto(4, dst, src, pad, f)
		if len(out) != 2048 {
			t.Fatalf("round %d: kept %d, want 2048", round, len(out))
		}
		if &out[:1][0] != &dst[:1][0] {
			t.Fatalf("round %d: output did not reuse dst storage", round)
		}
		dst = out[:0]
	}
}

func TestFilterIntoKeepsInputOrder(t *testing.T) {
	src := []int{9, 1, 8, 2, 7, 3, 6, 4, 5}
	got := FilterInto(4, nil, src, nil, func(x int) bool { return x >= 5 })
	want := []int{9, 8, 7, 6, 5}
	if !slices.Equal(got, want) {
		t.Fatalf("FilterInto = %v, want %v", got, want)
	}
}

func TestPackIndexIntoMatchesPackIndex(t *testing.T) {
	keep := func(i int) bool { return i%5 == 0 || i%7 == 0 }
	for _, p := range []int{1, 2, 4, 8} {
		for _, n := range []int{0, 1, 10, 1000, 1 << 14} {
			want := PackIndex(p, n, keep)
			got := PackIndexInto(p, n, nil, nil, keep)
			if !slices.Equal(got, want) {
				t.Fatalf("p=%d n=%d: PackIndexInto differs from PackIndex", p, n)
			}
		}
	}
}

func TestSequentialCompactionPathsAllocationFree(t *testing.T) {
	if raceTestEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	// The p=1 paths of the *Into helpers append into dst directly; with
	// pre-sized buffers that must be allocation-free — the property the
	// Boruvka contraction loops depend on.
	src := make([]uint32, 4096)
	for i := range src {
		src[i] = uint32(i)
	}
	dst := make([]uint32, 0, len(src))
	pad := PadBlock(nil, 1)
	keep := func(x uint32) bool { return x%2 == 0 }
	if n := testing.AllocsPerRun(20, func() {
		dst = FilterInto(1, dst, src, pad, keep)[:0]
	}); n != 0 {
		t.Fatalf("sequential FilterInto allocated %v times per run", n)
	}
	idx := make([]uint32, 0, len(src))
	keepIdx := func(i int) bool { return i%3 == 0 }
	if n := testing.AllocsPerRun(20, func() {
		idx = PackIndexInto(1, len(src), idx, pad, keepIdx)[:0]
	}); n != 0 {
		t.Fatalf("sequential PackIndexInto allocated %v times per run", n)
	}
}

func TestForCollectIntoSequentialReusesBuf(t *testing.T) {
	body := func(lo, hi int, out []int) []int {
		for i := lo; i < hi; i++ {
			if i%2 == 0 {
				out = append(out, i)
			}
		}
		return out
	}
	buf := make([]int, 0, 600)
	if !raceTestEnabled {
		if n := testing.AllocsPerRun(20, func() {
			buf = ForCollectInto(1, 1000, 64, buf, body)[:0]
		}); n != 0 {
			t.Fatalf("sequential ForCollectInto allocated %v times per run", n)
		}
	}
	got := ForCollectInto(1, 1000, 64, buf, body)
	if len(got) != 500 || got[0] != 0 || got[499] != 998 {
		t.Fatalf("ForCollectInto result wrong: len=%d", len(got))
	}
}

func TestForCollectIntoParallelMatchesSequential(t *testing.T) {
	body := func(lo, hi int, out []uint32) []uint32 {
		for i := lo; i < hi; i++ {
			if i%7 == 0 {
				out = append(out, uint32(i))
			}
		}
		return out
	}
	want := ForCollectInto(1, 1<<14, 128, nil, body)
	got := ForCollectInto(8, 1<<14, 128, make([]uint32, 0, 1<<12), body)
	slices.Sort(got) // parallel chunk order is unspecified
	if !slices.Equal(got, want) {
		t.Fatalf("parallel ForCollectInto differs: %d vs %d elems", len(got), len(want))
	}
}

func TestFillSequentialAndParallel(t *testing.T) {
	for _, p := range []int{1, 4} {
		for _, n := range []int{0, 1, 100, 8192, 8193, 1 << 15} {
			s := make([]int32, n)
			Fill(p, s, -7)
			for i, v := range s {
				if v != -7 {
					t.Fatalf("p=%d n=%d: s[%d] = %d", p, n, i, v)
				}
			}
		}
	}
	s := make([]uint64, 4096)
	if !raceTestEnabled {
		if n := testing.AllocsPerRun(20, func() { Fill(1, s, InfKey) }); n != 0 {
			t.Fatalf("sequential Fill allocated %v times per run", n)
		}
	}
}

func TestPadBlockAndChunkBounds(t *testing.T) {
	pad := PadBlock(nil, 4)
	if len(pad) != 4*PadStride {
		t.Fatalf("PadBlock len = %d", len(pad))
	}
	if got := PadBlock(pad, 2); &got[0] != &pad[0] {
		t.Fatal("PadBlock did not reuse sufficient storage")
	}
	// Chunks tile [0, n) exactly.
	for _, n := range []int{1, 7, 8, 100} {
		p := 3
		at := 0
		for w := 0; w < p; w++ {
			lo, hi := chunkBounds(w, p, n)
			if lo != at || hi < lo {
				t.Fatalf("n=%d w=%d: bounds [%d,%d) not contiguous at %d", n, w, lo, hi, at)
			}
			at = hi
		}
		if at != n {
			t.Fatalf("n=%d: chunks cover up to %d", n, at)
		}
	}
}
