package par

// Workspace-friendly compaction. The Pack* helpers in scan.go allocate an
// offsets array of length n+1 per call; the *Into variants here instead
// split the input into one contiguous chunk per worker, have each worker
// count its survivors into a cache-line-padded counter block, prefix-sum
// the p counts sequentially (p is tiny), and scatter. The output order is
// identical to the allocating variants (stable, input order), no channel or
// atomic append is involved, and a caller that reuses dst and pad performs
// zero allocations in steady state — the compaction discipline the
// Boruvka-family contraction loops need to stay allocation-free across
// rounds.

// PadStride is the int64 spacing between per-worker slots in a padded
// counter block: 8 int64s = 64 bytes, one cache line, so two workers
// bumping their counts never false-share.
const PadStride = 8

// PadBlock returns a counter block with one cache-line-padded slot for each
// of p workers, reusing pad when it is large enough.
func PadBlock(pad []int64, p int) []int64 {
	if need := p * PadStride; cap(pad) < need {
		return make([]int64, need)
	} else {
		return pad[:need]
	}
}

// chunkBounds splits [0, n) into p contiguous chunks and returns chunk w's
// bounds. The first n%p chunks are one element longer.
func chunkBounds(w, p, n int) (lo, hi int) {
	size, rem := n/p, n%p
	lo = w*size + min(w, rem)
	hi = lo + size
	if w < rem {
		hi++
	}
	return lo, hi
}

// scanPad turns the per-worker counts in pad into exclusive offsets and
// returns the total. Sequential: the block has p entries.
func scanPad(pad []int64, p int) int64 {
	var total int64
	for w := 0; w < p; w++ {
		c := pad[w*PadStride]
		pad[w*PadStride] = total
		total += c
	}
	return total
}

// FilterMapInto writes f's accepted transforms of src, in input order, into
// dst (grown when too small, resliced otherwise) and returns the filled
// slice. f must be pure: it is evaluated twice per element, once counting
// and once writing. pad is the padded per-worker counter block (see
// PadBlock; nil allocates a transient one). dst must not alias src.
func FilterMapInto[S, D any](p int, dst []D, src []S, pad []int64, f func(S) (D, bool)) []D {
	n := len(src)
	if n == 0 {
		return dst[:0]
	}
	p = Workers(p)
	if p > n {
		p = n
	}
	if p == 1 {
		dst = dst[:0]
		for i := range src {
			if d, ok := f(src[i]); ok {
				dst = append(dst, d)
			}
		}
		return dst
	}
	pad = PadBlock(pad, p)
	ForEach(p, p, 1, func(w int) {
		lo, hi := chunkBounds(w, p, n)
		var c int64
		for i := lo; i < hi; i++ {
			if _, ok := f(src[i]); ok {
				c++
			}
		}
		pad[w*PadStride] = c
	})
	total := scanPad(pad, p)
	if int64(cap(dst)) < total {
		dst = make([]D, total)
	} else {
		dst = dst[:total]
	}
	ForEach(p, p, 1, func(w int) {
		lo, hi := chunkBounds(w, p, n)
		at := pad[w*PadStride]
		for i := lo; i < hi; i++ {
			if d, ok := f(src[i]); ok {
				dst[at] = d
				at++
			}
		}
	})
	return dst
}

// FilterInto is FilterMapInto with the identity transform: the elements of
// src satisfying keep, in input order. The sequential path appends directly
// (no adapter closure), so it is allocation-free with a sufficient dst.
func FilterInto[T any](p int, dst, src []T, pad []int64, keep func(T) bool) []T {
	if Workers(p) == 1 || len(src) <= 1 {
		dst = dst[:0]
		for i := range src {
			if keep(src[i]) {
				dst = append(dst, src[i])
			}
		}
		return dst
	}
	return FilterMapInto(p, dst, src, pad, func(x T) (T, bool) { return x, keep(x) })
}

// PackIndexInto is PackIndex writing into dst with a caller counter block:
// the indices i in [0, n) satisfying keep, in increasing order. Zero
// allocations when dst and pad are large enough.
func PackIndexInto(p, n int, dst []uint32, pad []int64, keep func(i int) bool) []uint32 {
	if n == 0 {
		return dst[:0]
	}
	p = Workers(p)
	if p > n {
		p = n
	}
	if p == 1 {
		dst = dst[:0]
		for i := 0; i < n; i++ {
			if keep(i) {
				dst = append(dst, uint32(i))
			}
		}
		return dst
	}
	pad = PadBlock(pad, p)
	ForEach(p, p, 1, func(w int) {
		lo, hi := chunkBounds(w, p, n)
		var c int64
		for i := lo; i < hi; i++ {
			if keep(i) {
				c++
			}
		}
		pad[w*PadStride] = c
	})
	total := scanPad(pad, p)
	if int64(cap(dst)) < total {
		dst = make([]uint32, total)
	} else {
		dst = dst[:total]
	}
	ForEach(p, p, 1, func(w int) {
		lo, hi := chunkBounds(w, p, n)
		at := pad[w*PadStride]
		for i := lo; i < hi; i++ {
			if keep(i) {
				dst[at] = uint32(i)
				at++
			}
		}
	})
	return dst
}

// Fill sets every element of s to v, in parallel with p workers. The
// sequential cases loop inline and allocate nothing.
func Fill[T any](p int, s []T, v T) {
	n := len(s)
	if Workers(p) == 1 || n <= 8192 {
		for i := range s {
			s[i] = v
		}
		return
	}
	For(p, n, 8192, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s[i] = v
		}
	})
}
