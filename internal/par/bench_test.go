package par

import (
	"math/rand"
	"testing"
)

// Microbenchmarks for the runtime primitives every algorithm leans on.

func BenchmarkForStatic(b *testing.B) {
	const n = 1 << 20
	data := make([]int64, n)
	b.SetBytes(n * 8)
	for i := 0; i < b.N; i++ {
		For(0, n, 1<<14, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				data[j]++
			}
		})
	}
}

func BenchmarkWriteMinUncontended(b *testing.B) {
	cells := make([]uint64, 1<<16)
	FillKeys(1, cells, InfKey)
	rng := rand.New(rand.NewSource(1))
	vals := make([]uint64, 1<<16)
	for i := range vals {
		vals[i] = rng.Uint64() >> 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range cells {
			WriteMin(&cells[j], vals[j])
		}
	}
}

func BenchmarkWriteMinContended(b *testing.B) {
	// All workers hammer 64 cells — the worst case for the CAS loop.
	cells := make([]uint64, 64)
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(2))
		i := 0
		for pb.Next() {
			WriteMin(&cells[i&63], rng.Uint64())
			i++
		}
	})
}

func BenchmarkExclusiveScan(b *testing.B) {
	const n = 1 << 20
	src := make([]int64, n)
	for i := range src {
		src[i] = int64(i & 7)
	}
	work := make([]int64, n)
	b.SetBytes(n * 8)
	for i := 0; i < b.N; i++ {
		copy(work, src)
		ExclusiveScan(0, work)
	}
}

func BenchmarkSortUint64(b *testing.B) {
	const n = 1 << 18
	rng := rand.New(rand.NewSource(3))
	src := make([]uint64, n)
	for i := range src {
		src[i] = rng.Uint64()
	}
	work := make([]uint64, n)
	b.SetBytes(n * 8)
	for i := 0; i < b.N; i++ {
		copy(work, src)
		SortUint64(0, work)
	}
}

func BenchmarkPackFunc(b *testing.B) {
	const n = 1 << 19
	src := make([]uint32, n)
	for i := range src {
		src[i] = uint32(i)
	}
	b.SetBytes(n * 4)
	for i := 0; i < b.N; i++ {
		out := PackFunc(0, src, func(x uint32) bool { return x%3 == 0 })
		if len(out) == 0 {
			b.Fatal("empty pack")
		}
	}
}
