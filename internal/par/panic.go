package par

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// Worker panics.
//
// A goroutine that panics without a recover kills the whole process — for a
// library runtime that may be hosting a service, an unacceptable failure
// mode. Every goroutine this package spawns therefore recovers panics from
// its body, converts the first one into a *PanicError (capturing the stack
// and the work-item index being processed), lets the remaining workers
// finish their current chunks, joins all of them, and only then re-raises
// the *PanicError on the calling goroutine. The guarantees callers get:
//
//   - no goroutine leaks: every worker has exited before the panic
//     propagates;
//   - a single, typed panic value: concurrent panics collapse to the first
//     one observed (the others are counted, not lost silently);
//   - an intact stack trace of the original panic site in PanicError.Stack.
//
// Callers with an error return (the schedulers' Ctx/Obs variants, the MST
// algorithms) recover the re-raised *PanicError once more and surface it as
// an ordinary error; plain callers crash exactly as before, just with all
// workers drained.

// PanicError reports a panic recovered from a parallel worker. It is the
// payload re-raised by the par loops and returned (as an error) by the
// scheduler and algorithm entry points with an error result.
type PanicError struct {
	// Value is the value originally passed to panic.
	Value any
	// Item is the work-item index (or chunk start) the worker was
	// processing, -1 when unknown.
	Item int
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

// Error formats the panic with its origin; the full stack is in Stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("par: worker panic on item %d: %v", e.Item, e.Value)
}

// Unwrap exposes a panic value that was itself an error, so errors.Is/As
// reach through (e.g. a panicked context error).
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// AsPanicError wraps a recovered value into a *PanicError. A value that
// already is one (a panic crossing a second runtime layer) is passed
// through unchanged, keeping the original stack and item.
func AsPanicError(r any, item int) *PanicError {
	if pe, ok := r.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: r, Item: item, Stack: debug.Stack()}
}

// PanicBox collects the first panic of a parallel region. The zero value is
// ready to use; it is written by any worker and read by the region's owner
// after all workers joined.
type PanicBox struct {
	mu    sync.Mutex
	first *PanicError
	extra int // panics after the first, collapsed into the count
}

// Capture recovers a pending panic on the calling goroutine (it must be
// invoked directly from a deferred function) and records it. Reports
// whether a panic was captured.
func (b *PanicBox) Capture(r any, item int) {
	if r == nil {
		return
	}
	pe := AsPanicError(r, item)
	b.mu.Lock()
	if b.first == nil {
		b.first = pe
	} else {
		b.extra++
	}
	b.mu.Unlock()
}

// Reset clears the box for reuse. Call only between parallel regions, never
// while workers may still Capture.
func (b *PanicBox) Reset() {
	b.mu.Lock()
	b.first = nil
	b.extra = 0
	b.mu.Unlock()
}

// Err returns the recorded panic, nil if none. Call only after the region's
// workers have joined.
func (b *PanicBox) Err() *PanicError {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.first
}

// Count returns how many panics were captured in total.
func (b *PanicBox) Count() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.first == nil {
		return 0
	}
	return 1 + b.extra
}

// Rethrow re-raises the recorded panic on the caller, if any.
func (b *PanicBox) Rethrow() {
	if pe := b.Err(); pe != nil {
		panic(pe)
	}
}
