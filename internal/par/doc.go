// Package par provides the shared-memory parallel runtime used by every
// algorithm in this repository. It is the Go substitute for the Galois and
// GBBS C++ runtimes the paper builds on: dynamically load-balanced parallel
// loops, parallel prefix sums, parallel sorting, parallel reductions,
// workspace-friendly compaction, and atomic-minimum updates on packed
// (weight, id) keys.
//
// # Worker counts and grain sizes
//
// All entry points take an explicit worker count p. p <= 0 means
// runtime.GOMAXPROCS(0). Every function degrades to a plain sequential loop
// when p == 1 or when the input is below the grain size, so single-threaded
// callers pay no synchronization cost — and, on the sequential paths, no
// allocations: the fast paths run the body inline instead of spawning
// wrapped goroutine closures. This property is load-bearing for the
// zero-allocation workspace contract of internal/mst (see
// mst.Options.Workspace) and is pinned by allocation-count tests.
//
// Dynamically scheduled loops (For, ForEach) hand out chunks of grain
// indices through a shared atomic counter, which load-balances irregular
// work such as graph traversals; DefaultGrain amortizes that atomic over a
// few microseconds of work.
//
// # Families of helpers
//
//   - Loops: For (range chunks), ForEach (per index), Do (fixed thunks).
//   - Reductions: SumInt64, MaxInt64, ReduceInt64, CountTrue, Any.
//   - Scans and compaction: ExclusiveScan, CountingScan, Pack, PackIndex,
//     and the *Into variants (FilterInto, FilterMapInto, PackIndexInto,
//     ForCollectInto) that write into caller-owned buffers with
//     cache-line-padded per-worker counter blocks (PadBlock, PadStride) so
//     steady-state callers allocate nothing.
//   - Sorting: SortUint64, SortFunc.
//   - Atomic keys: PackKey/UnpackKey pack a float32 weight and an edge id
//     into one totally ordered uint64; WriteMin/WriteMax/WriteMinU32 are the
//     lock-free priority-update primitives of GBBS-style parallel Boruvka.
//   - Cancellation: Canceller turns a context.Context into a strided,
//     amortized poll usable from inner loops (see cancel.go).
//   - Panic containment: PanicBox collects the first worker panic of a
//     parallel region; every goroutine the package spawns recovers, joins,
//     and re-raises a single typed *PanicError (see panic.go).
package par
