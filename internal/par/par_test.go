package par

import (
	"math"
	"math/rand"
	"slices"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestWorkers(t *testing.T) {
	if Workers(0) < 1 {
		t.Fatalf("Workers(0) = %d, want >= 1", Workers(0))
	}
	if Workers(-3) < 1 {
		t.Fatalf("Workers(-3) = %d, want >= 1", Workers(-3))
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d, want 7", got)
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		for _, n := range []int{0, 1, 5, 1000, 10000} {
			hits := make([]int32, n)
			For(p, n, 64, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("p=%d n=%d: index %d visited %d times", p, n, i, h)
				}
			}
		}
	}
}

func TestForEach(t *testing.T) {
	const n = 4096
	var sum atomic.Int64
	ForEach(4, n, 16, func(i int) { sum.Add(int64(i)) })
	want := int64(n*(n-1)) / 2
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	called := false
	For(4, 0, 0, func(lo, hi int) { called = true })
	For(4, -5, 0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for non-positive n")
	}
}

func TestDoRunsAllThunks(t *testing.T) {
	var count atomic.Int32
	thunks := make([]func(), 17)
	for i := range thunks {
		thunks[i] = func() { count.Add(1) }
	}
	Do(4, thunks...)
	if count.Load() != 17 {
		t.Fatalf("ran %d thunks, want 17", count.Load())
	}
}

func TestPackKeyOrderMatchesWeightOrder(t *testing.T) {
	f := func(a, b float32, ida, idb uint32) bool {
		a, b = float32(math.Abs(float64(a))), float32(math.Abs(float64(b)))
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) || math.IsInf(float64(a), 0) || math.IsInf(float64(b), 0) {
			return true
		}
		ka, kb := PackKey(a, ida), PackKey(b, idb)
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return (ka < kb) == (ida < idb) && (ka == kb) == (ida == idb)
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestPackKeyRoundTrip(t *testing.T) {
	f := func(w float32, id uint32) bool {
		w = float32(math.Abs(float64(w)))
		if math.IsNaN(float64(w)) {
			return true
		}
		gw, gid := UnpackKey(PackKey(w, id))
		return gw == w && gid == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyAccessors(t *testing.T) {
	k := PackKey(3.5, 42)
	if KeyWeight(k) != 3.5 || KeyID(k) != 42 {
		t.Fatalf("accessors: got (%v, %v), want (3.5, 42)", KeyWeight(k), KeyID(k))
	}
	if k >= InfKey {
		t.Fatal("real key must be below InfKey")
	}
}

func TestWriteMinConcurrent(t *testing.T) {
	cell := InfKey
	const n = 10000
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = PackKey(rand.Float32()*100, uint32(i))
	}
	min := slices.Min(vals)
	ForEach(8, n, 8, func(i int) { WriteMin(&cell, vals[i]) })
	if cell != min {
		t.Fatalf("WriteMin result %d, want %d", cell, min)
	}
}

func TestWriteMinReturnsWhetherImproved(t *testing.T) {
	cell := PackKey(5, 0)
	if WriteMin(&cell, PackKey(7, 0)) {
		t.Fatal("WriteMin claimed improvement with larger value")
	}
	if !WriteMin(&cell, PackKey(3, 0)) {
		t.Fatal("WriteMin denied improvement with smaller value")
	}
	if w, _ := UnpackKey(cell); w != 3 {
		t.Fatalf("cell weight %v, want 3", w)
	}
}

func TestWriteMaxConcurrent(t *testing.T) {
	var cell uint64
	const n = 5000
	ForEach(8, n, 8, func(i int) { WriteMax(&cell, uint64(i)) })
	if cell != n-1 {
		t.Fatalf("WriteMax result %d, want %d", cell, n-1)
	}
}

func TestWriteMinU32(t *testing.T) {
	cell := uint32(math.MaxUint32)
	ForEach(8, 5000, 8, func(i int) { WriteMinU32(&cell, uint32(i+1)) })
	if cell != 1 {
		t.Fatalf("WriteMinU32 result %d, want 1", cell)
	}
}

func TestFillKeys(t *testing.T) {
	s := make([]uint64, 100000)
	FillKeys(4, s, InfKey)
	for i, v := range s {
		if v != InfKey {
			t.Fatalf("s[%d] = %d, want InfKey", i, v)
		}
	}
}

func TestExclusiveScanMatchesSequential(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, 1 << 15, 1<<16 + 7} {
		s := make([]int64, n)
		want := make([]int64, n)
		var sum int64
		for i := range s {
			s[i] = int64(rand.Intn(10))
			want[i] = sum
			sum += s[i]
		}
		got := ExclusiveScan(4, s)
		if got != sum {
			t.Fatalf("n=%d: total %d, want %d", n, got, sum)
		}
		if !slices.Equal(s, want) {
			t.Fatalf("n=%d: scan mismatch", n)
		}
	}
}

func TestCountingScan(t *testing.T) {
	offsets := CountingScan(4, 10, func(i int) int64 { return int64(i) })
	if len(offsets) != 11 {
		t.Fatalf("len = %d, want 11", len(offsets))
	}
	want := int64(0)
	for i := 0; i <= 10; i++ {
		if offsets[i] != want {
			t.Fatalf("offsets[%d] = %d, want %d", i, offsets[i], want)
		}
		want += int64(i)
	}
}

func TestPack(t *testing.T) {
	n := 1 << 15
	src := make([]int, n)
	keep := make([]bool, n)
	var want []int
	for i := range src {
		src[i] = i
		keep[i] = i%3 == 0
		if keep[i] {
			want = append(want, i)
		}
	}
	got := Pack(4, src, keep)
	if !slices.Equal(got, want) {
		t.Fatalf("Pack mismatch: got %d elems, want %d", len(got), len(want))
	}
}

func TestPackIndex(t *testing.T) {
	got := PackIndex(4, 10, func(i int) bool { return i%2 == 1 })
	want := []uint32{1, 3, 5, 7, 9}
	if !slices.Equal(got, want) {
		t.Fatalf("PackIndex = %v, want %v", got, want)
	}
}

func TestSortUint64(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, 1 << 16} {
		s := make([]uint64, n)
		for i := range s {
			s[i] = rand.Uint64()
		}
		want := slices.Clone(s)
		slices.Sort(want)
		SortUint64(4, s)
		if !slices.Equal(s, want) {
			t.Fatalf("n=%d: parallel sort differs from sequential", n)
		}
	}
}

func TestSortFunc(t *testing.T) {
	n := 1 << 16
	s := make([]int32, n)
	for i := range s {
		s[i] = rand.Int31n(1000)
	}
	want := slices.Clone(s)
	slices.Sort(want)
	SortFunc(4, s, func(a, b int32) bool { return a < b })
	if !slices.Equal(s, want) {
		t.Fatal("SortFunc differs from sequential sort")
	}
}

func TestSortUint64Property(t *testing.T) {
	f := func(s []uint64) bool {
		got := slices.Clone(s)
		SortUint64(3, got)
		want := slices.Clone(s)
		slices.Sort(want)
		return slices.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSumInt64(t *testing.T) {
	n := 1 << 15
	got := SumInt64(4, n, func(i int) int64 { return int64(i) })
	if want := int64(n) * int64(n-1) / 2; got != want {
		t.Fatalf("SumInt64 = %d, want %d", got, want)
	}
}

func TestMaxInt64(t *testing.T) {
	got := MaxInt64(4, 1<<15, math.MinInt64, func(i int) int64 { return int64((i * 7919) % 100003) })
	var want int64
	for i := 0; i < 1<<15; i++ {
		if v := int64((i * 7919) % 100003); v > want {
			want = v
		}
	}
	if got != want {
		t.Fatalf("MaxInt64 = %d, want %d", got, want)
	}
}

func TestCountTrueAndAny(t *testing.T) {
	n := 10000
	if got := CountTrue(4, n, func(i int) bool { return i%10 == 0 }); got != 1000 {
		t.Fatalf("CountTrue = %d, want 1000", got)
	}
	if !Any(4, n, func(i int) bool { return i == n-1 }) {
		t.Fatal("Any missed the last index")
	}
	if Any(4, n, func(i int) bool { return false }) {
		t.Fatal("Any found a nonexistent index")
	}
	if Any(4, 0, func(i int) bool { return true }) {
		t.Fatal("Any on empty range")
	}
}

func TestReduceInt64Min(t *testing.T) {
	got := ReduceInt64(4, 1000, math.MaxInt64,
		func(i int) int64 { return int64(1000 - i) },
		func(a, b int64) int64 {
			if a < b {
				return a
			}
			return b
		})
	if got != 1 {
		t.Fatalf("min reduce = %d, want 1", got)
	}
}

func TestForCollect(t *testing.T) {
	got := ForCollect(4, 10000, 64, func(lo, hi int, out []int) []int {
		for i := lo; i < hi; i++ {
			if i%7 == 0 {
				out = append(out, i)
			}
		}
		return out
	})
	slices.Sort(got)
	var want []int
	for i := 0; i < 10000; i += 7 {
		want = append(want, i)
	}
	if !slices.Equal(got, want) {
		t.Fatalf("ForCollect: got %d elems, want %d", len(got), len(want))
	}
	if r := ForCollect(4, 0, 0, func(lo, hi int, out []int) []int { return append(out, 1) }); r != nil {
		t.Fatal("ForCollect on empty range returned elements")
	}
}
