package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the smallest amount of work a worker grabs at once in
// dynamically scheduled loops. Chosen so that the atomic fetch-add that
// hands out chunks is amortized over a few microseconds of work.
const DefaultGrain = 1024

// Workers normalizes a requested worker count: values <= 0 mean
// runtime.GOMAXPROCS(0), everything else is returned unchanged.
func Workers(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// For runs body over the index range [0, n) using p workers. The range is
// handed out in chunks of size grain (DefaultGrain if grain <= 0) through a
// shared atomic counter, which gives dynamic load balancing for irregular
// work such as graph traversals. body must be safe to call concurrently on
// disjoint ranges.
func For(p, n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p = Workers(p)
	if grain <= 0 {
		grain = DefaultGrain
	}
	if p == 1 || n <= grain {
		body(0, n)
		return
	}
	if max := (n + grain - 1) / grain; p > max {
		p = max
	}
	var next atomic.Int64
	var panics PanicBox
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			cur := -1
			defer wg.Done()
			defer func() { panics.Capture(recover(), cur) }()
			for {
				lo := int(next.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				cur = lo
				body(lo, hi)
			}
		}()
	}
	wg.Wait()
	// A worker panic is re-raised here, on the caller, only after every
	// worker has exited (a panicking worker stops; its unclaimed chunks are
	// still processed by the survivors, so non-panicking work completes).
	panics.Rethrow()
}

// ForW is For with the worker's index passed to body: body(w, lo, hi) may
// use w (in [0, p)) to select per-worker state — an attributed collector
// shard, a padded counter cell — without any further coordination. The
// sequential fast path passes w = 0. Chunk scheduling is identical to For.
func ForW(p, n, grain int, body func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	p = Workers(p)
	if grain <= 0 {
		grain = DefaultGrain
	}
	if p == 1 || n <= grain {
		body(0, 0, n)
		return
	}
	if max := (n + grain - 1) / grain; p > max {
		p = max
	}
	var next atomic.Int64
	var panics PanicBox
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(self int) {
			cur := -1
			defer wg.Done()
			defer func() { panics.Capture(recover(), cur) }()
			for {
				lo := int(next.Add(int64(grain))) - grain
				if lo >= n {
					return
				}
				hi := lo + grain
				if hi > n {
					hi = n
				}
				cur = lo
				body(self, lo, hi)
			}
		}(w)
	}
	wg.Wait()
	panics.Rethrow()
}

// ForEach runs body(i) for every i in [0, n) using p workers. Convenience
// wrapper over For for element-wise loops. The sequential cases loop inline
// rather than going through For, so they allocate nothing (no wrapper
// closure) — algorithms calling ForEach once per round rely on this.
func ForEach(p, n, grain int, body func(i int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	if Workers(p) == 1 || n <= grain {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	For(p, n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Do runs the given thunks concurrently on up to p workers and waits for all
// of them. Used for small fixed fan-outs (e.g. sorting halves).
func Do(p int, thunks ...func()) {
	p = Workers(p)
	if p == 1 || len(thunks) == 1 {
		for _, t := range thunks {
			t()
		}
		return
	}
	var panics PanicBox
	var wg sync.WaitGroup
	sem := make(chan struct{}, p)
	for i, t := range thunks {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, f func()) {
			defer func() { <-sem; wg.Done() }()
			defer func() { panics.Capture(recover(), i) }()
			f()
		}(i, t)
	}
	wg.Wait()
	panics.Rethrow()
}
