package unionfind

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestUFBasic(t *testing.T) {
	u := New(5)
	if u.Count() != 5 {
		t.Fatalf("Count = %d", u.Count())
	}
	if !u.Union(0, 1) || !u.Union(2, 3) {
		t.Fatal("fresh unions should succeed")
	}
	if u.Union(0, 1) {
		t.Fatal("repeat union should fail")
	}
	if !u.Same(0, 1) || u.Same(1, 2) {
		t.Fatal("Same wrong")
	}
	u.Union(1, 3)
	if !u.Same(0, 2) {
		t.Fatal("transitivity broken")
	}
	if u.Count() != 2 {
		t.Fatalf("Count = %d, want 2", u.Count())
	}
}

func TestUFReset(t *testing.T) {
	u := New(4)
	u.Union(0, 1)
	u.Union(2, 3)
	u.Reset()
	if u.Count() != 4 || u.Same(0, 1) {
		t.Fatal("Reset incomplete")
	}
}

func TestUFFindIdempotentAndCanonical(t *testing.T) {
	f := func(ops [][2]uint8) bool {
		const n = 32
		u := New(n)
		for _, op := range ops {
			u.Union(uint32(op[0])%n, uint32(op[1])%n)
		}
		// Find is idempotent and roots are self-parented.
		for x := uint32(0); x < n; x++ {
			r := u.Find(x)
			if u.Find(r) != r || u.Find(x) != r {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUFAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 200
	u := New(n)
	// Naive labels.
	label := make([]int, n)
	for i := range label {
		label[i] = i
	}
	relabel := func(from, to int) {
		for i := range label {
			if label[i] == from {
				label[i] = to
			}
		}
	}
	for i := 0; i < 2000; i++ {
		a, b := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		wantNew := label[a] != label[b]
		gotNew := u.Union(a, b)
		if wantNew != gotNew {
			t.Fatalf("op %d: Union(%d,%d) = %v, want %v", i, a, b, gotNew, wantNew)
		}
		if wantNew {
			relabel(label[a], label[b])
		}
		// Spot-check equivalences.
		x, y := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		if u.Same(x, y) != (label[x] == label[y]) {
			t.Fatalf("op %d: Same(%d,%d) disagrees with oracle", i, x, y)
		}
	}
}

func TestConcurrentSequentialSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 300
	c := NewConcurrent(n)
	u := New(n)
	for i := 0; i < 3000; i++ {
		a, b := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		if got, want := c.Union(a, b), u.Union(a, b); got != want {
			t.Fatalf("op %d: Union(%d,%d) = %v, oracle %v", i, a, b, got, want)
		}
	}
	if c.Count() != u.Count() {
		t.Fatalf("Count = %d, oracle %d", c.Count(), u.Count())
	}
	for x := uint32(0); x < n; x++ {
		for y := uint32(0); y < n; y += 7 {
			if c.Same(x, y) != u.Same(x, y) {
				t.Fatalf("Same(%d,%d) disagrees", x, y)
			}
		}
	}
}

func TestConcurrentParallelUnionsFormOneComponent(t *testing.T) {
	const n = 1 << 12
	c := NewConcurrent(n)
	var wg sync.WaitGroup
	// 8 goroutines union random pairs plus a chain guaranteeing full
	// connectivity.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < n; i++ {
				c.Union(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
			}
		}(int64(w))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i+1 < n; i++ {
			c.Union(uint32(i), uint32(i+1))
		}
	}()
	wg.Wait()
	if got := c.Count(); got != 1 {
		t.Fatalf("Count = %d, want 1", got)
	}
	root := c.Find(0)
	for x := uint32(1); x < n; x++ {
		if c.Find(x) != root {
			t.Fatalf("element %d not in the single component", x)
		}
	}
}

func TestConcurrentExactlyOneWinnerPerMerge(t *testing.T) {
	// If k goroutines all union the same pair, exactly one must report
	// having performed the merge.
	for trial := 0; trial < 50; trial++ {
		c := NewConcurrent(4)
		var wins [16]bool
		var wg sync.WaitGroup
		for w := 0; w < 16; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wins[w] = c.Union(1, 2)
			}(w)
		}
		wg.Wait()
		count := 0
		for _, w := range wins {
			if w {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("trial %d: %d winners, want exactly 1", trial, count)
		}
	}
}

func TestConcurrentLen(t *testing.T) {
	if NewConcurrent(17).Len() != 17 {
		t.Fatal("Len wrong")
	}
}

func TestConcurrentReset(t *testing.T) {
	c := NewConcurrent(8)
	c.Union(0, 1)
	c.Union(2, 3)

	// Reset to the same size: all prior merges forgotten.
	c.Reset(8)
	if c.Count() != 8 || c.Same(0, 1) || c.Same(2, 3) {
		t.Fatal("Reset(8) did not restore singletons")
	}

	// Shrink: reuses storage, still singletons.
	c.Reset(3)
	if c.Len() != 3 || c.Count() != 3 {
		t.Fatalf("after Reset(3): Len=%d Count=%d", c.Len(), c.Count())
	}

	// Grow past capacity: fresh storage, correct semantics.
	c.Reset(100)
	if c.Len() != 100 || c.Count() != 100 {
		t.Fatalf("after Reset(100): Len=%d Count=%d", c.Len(), c.Count())
	}
	c.Union(50, 99)
	if !c.Same(50, 99) || c.Same(0, 50) {
		t.Fatal("union after grow Reset broken")
	}

	// A shrink Reset within capacity must not allocate.
	c.Reset(100)
	if n := testing.AllocsPerRun(20, func() { c.Reset(64) }); n != 0 {
		t.Fatalf("Reset within capacity allocated %v times per run", n)
	}
}

func BenchmarkUFUnionFind(b *testing.B) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(1))
	pairs := make([][2]uint32, n)
	for i := range pairs {
		pairs[i] = [2]uint32{uint32(rng.Intn(n)), uint32(rng.Intn(n))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := New(n)
		for _, p := range pairs {
			u.Union(p[0], p[1])
		}
	}
}

func BenchmarkConcurrentUnionFind(b *testing.B) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(1))
	pairs := make([][2]uint32, n)
	for i := range pairs {
		pairs[i] = [2]uint32{uint32(rng.Intn(n)), uint32(rng.Intn(n))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := NewConcurrent(n)
		for _, p := range pairs {
			u.Union(p[0], p[1])
		}
	}
}
