package unionfind

import "sync/atomic"

// Concurrent is a lock-free disjoint-set forest safe for use from many
// goroutines, using the link-by-index rule: a root may only ever acquire a
// parent with a *larger* id, installed by compare-and-swap. That monotone
// rule makes the structure linearizable without ranks (Goel et al. / the
// simplified Jayanti–Tarjan scheme); path halving keeps chains short in
// practice. Used by parallel Kruskal and by the cross-check harness against
// the sequential UF.
type Concurrent struct {
	parent []atomic.Uint32
}

// NewConcurrent returns a Concurrent union-find over n singleton elements.
func NewConcurrent(n int) *Concurrent {
	c := &Concurrent{parent: make([]atomic.Uint32, n)}
	for i := range c.parent {
		c.parent[i].Store(uint32(i))
	}
	return c
}

// Find returns the canonical representative of x's set, applying path
// halving along the way. Concurrent unions may change the representative;
// the return value was x's root at some point during the call.
func (c *Concurrent) Find(x uint32) uint32 {
	for {
		p := c.parent[x].Load()
		if p == x {
			return x
		}
		gp := c.parent[p].Load()
		if gp == p {
			return p
		}
		// Path halving: try to splice x up to its grandparent. A failed CAS
		// just means someone else improved the path; carry on.
		c.parent[x].CompareAndSwap(p, gp)
		x = gp
	}
}

// Union merges the sets of a and b; returns true if this call performed the
// merge (i.e. they were distinct when it succeeded).
func (c *Concurrent) Union(a, b uint32) bool {
	for {
		ra, rb := c.Find(a), c.Find(b)
		if ra == rb {
			return false
		}
		// Link the smaller-id root under the larger-id root. Only roots are
		// linked, and only to larger ids, so no cycles can form.
		if ra > rb {
			ra, rb = rb, ra
		}
		if c.parent[ra].CompareAndSwap(ra, rb) {
			return true
		}
		// ra stopped being a root underneath us; retry with fresh roots.
	}
}

// Same reports whether a and b are currently in the same set. With
// concurrent unions in flight the answer is transient, as with any
// concurrent set structure; once all unions complete it is exact.
func (c *Concurrent) Same(a, b uint32) bool {
	for {
		ra, rb := c.Find(a), c.Find(b)
		if ra == rb {
			return true
		}
		// ra may have been linked while we computed rb; confirm it is still
		// a root, otherwise retry.
		if c.parent[ra].Load() == ra {
			return false
		}
	}
}

// Count returns the number of disjoint sets. Only meaningful when no unions
// are concurrently in flight. O(n).
func (c *Concurrent) Count() int {
	count := 0
	for i := range c.parent {
		if c.parent[i].Load() == uint32(i) {
			count++
		}
	}
	return count
}

// Len returns the number of elements.
func (c *Concurrent) Len() int { return len(c.parent) }

// Reset returns the structure to n singleton sets, reusing storage when it
// is large enough. Must not race with any other method; reusing one
// Concurrent across runs this way keeps repeated queries allocation-free.
func (c *Concurrent) Reset(n int) {
	if cap(c.parent) < n {
		c.parent = make([]atomic.Uint32, n)
	}
	c.parent = c.parent[:n]
	for i := range c.parent {
		c.parent[i].Store(uint32(i))
	}
}
