// Package unionfind provides disjoint-set structures: a sequential
// union-by-rank/path-compression implementation (Kruskal, verifiers, graph
// generators) and a lock-free concurrent version built on CAS linking
// (parallel Kruskal and the contraction bookkeeping of parallel Boruvka).
package unionfind

// UF is the classic sequential disjoint-set forest with union by rank and
// path compression. Not safe for concurrent use; see Concurrent.
type UF struct {
	parent []uint32
	rank   []uint8
	count  int // number of disjoint sets
}

// New returns a UF over n singleton elements.
func New(n int) *UF {
	u := &UF{
		parent: make([]uint32, n),
		rank:   make([]uint8, n),
		count:  n,
	}
	for i := range u.parent {
		u.parent[i] = uint32(i)
	}
	return u
}

// Find returns the canonical representative of x's set.
func (u *UF) Find(x uint32) uint32 {
	root := x
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[x] != root {
		u.parent[x], x = root, u.parent[x]
	}
	return root
}

// Union merges the sets of a and b; returns true if they were distinct.
func (u *UF) Union(a, b uint32) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.count--
	return true
}

// Same reports whether a and b are in the same set.
func (u *UF) Same(a, b uint32) bool { return u.Find(a) == u.Find(b) }

// Count returns the current number of disjoint sets.
func (u *UF) Count() int { return u.count }

// Reset returns every element to its own singleton set, reusing storage.
func (u *UF) Reset() {
	for i := range u.parent {
		u.parent[i] = uint32(i)
		u.rank[i] = 0
	}
	u.count = len(u.parent)
}
