package llp

import (
	"math/rand"
	"testing"

	"llpmst/internal/matching"
)

// clears reports whether, at the given prices, every buyer with non-empty
// demand can be matched to a demanded item (market clearing condition).
func clears(value [][]int64, prices []int64) bool {
	n := len(value)
	b := matching.Bipartite{NL: n, NR: n, Adj: make([][]uint32, n)}
	demanding := 0
	for buyer := 0; buyer < n; buyer++ {
		best := int64(-1)
		for item := 0; item < n; item++ {
			if u := value[buyer][item] - prices[item]; u > best {
				best = u
			}
		}
		if best < 0 {
			continue
		}
		demanding++
		for item := 0; item < n; item++ {
			if value[buyer][item]-prices[item] == best {
				b.Adj[buyer] = append(b.Adj[buyer], uint32(item))
			}
		}
	}
	matchL, _ := matching.MaxMatching(b)
	matched := 0
	for buyer := 0; buyer < n; buyer++ {
		if matchL[buyer] >= 0 {
			matched++
		}
	}
	return matched == demanding
}

func TestMarketClearingTextbookInstance(t *testing.T) {
	// Competitive 3x3 instance: everyone's favorite is item 0 at zero
	// prices, so the auction must raise prices before the market clears.
	value := [][]int64{
		{6, 2, 1},
		{6, 3, 2},
		{6, 3, 3},
	}
	prices, assign, st := SolveMarketClearing(value)
	if !clears(value, prices) {
		t.Fatalf("prices %v do not clear", prices)
	}
	if st.Advances == 0 {
		t.Fatal("no advances on a competitive instance")
	}
	// All three buyers must be assigned distinct items.
	seen := map[int32]bool{}
	for b, it := range assign {
		if it < 0 {
			t.Fatalf("buyer %d unassigned", b)
		}
		if seen[it] {
			t.Fatalf("item %d assigned twice", it)
		}
		seen[it] = true
	}
}

func TestMarketClearingMinimalityBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(2) // 2..3 buyers/items
		maxV := int64(4)
		value := make([][]int64, n)
		for b := range value {
			value[b] = make([]int64, n)
			for i := range value[b] {
				value[b][i] = int64(rng.Intn(int(maxV + 1)))
			}
		}
		prices, _, _ := SolveMarketClearing(value)
		if !clears(value, prices) {
			t.Fatalf("trial %d: prices %v do not clear %v", trial, prices, value)
		}
		// Brute force the componentwise-minimum clearing vector.
		bound := maxV + 1
		min := make([]int64, n)
		for i := range min {
			min[i] = bound
		}
		var enum func(i int, p []int64)
		found := false
		enum = func(i int, p []int64) {
			if i == n {
				if clears(value, p) {
					found = true
					for k := range p {
						if p[k] < min[k] {
							min[k] = p[k]
						}
					}
				}
				return
			}
			for v := int64(0); v <= bound; v++ {
				p[i] = v
				enum(i+1, p)
			}
		}
		enum(0, make([]int64, n))
		if !found {
			t.Fatalf("trial %d: no clearing vector exists?!", trial)
		}
		// The Walrasian price lattice guarantees the componentwise min of
		// clearing vectors is itself clearing and is THE minimum; ours must
		// match it.
		for i := range prices {
			if prices[i] != min[i] {
				t.Fatalf("trial %d: prices %v, brute-force minimum %v (values %v)",
					trial, prices, min, value)
			}
		}
	}
}

func TestMarketClearingZeroCompetition(t *testing.T) {
	// Distinct favorite items: clearing at zero prices, no advances.
	value := [][]int64{
		{9, 0, 0},
		{0, 9, 0},
		{0, 0, 9},
	}
	prices, assign, st := SolveMarketClearing(value)
	for i, p := range prices {
		if p != 0 {
			t.Fatalf("price[%d] = %d, want 0", i, p)
		}
	}
	if st.Advances != 0 {
		t.Fatalf("advances = %d, want 0", st.Advances)
	}
	for b, it := range assign {
		if int(it) != b {
			t.Fatalf("assignment %v not identity", assign)
		}
	}
}

func TestMaxMatchingAndHallViolator(t *testing.T) {
	// Left 0,1 both only like right 0: max matching 1, violator {0,1}->{0}.
	b := matching.Bipartite{NL: 2, NR: 2, Adj: [][]uint32{{0}, {0}}}
	matchL, matchR := matching.MaxMatching(b)
	matched := 0
	for _, m := range matchL {
		if m >= 0 {
			matched++
		}
	}
	if matched != 1 {
		t.Fatalf("matching size %d, want 1", matched)
	}
	left, right := matching.HallViolator(b, matchL, matchR)
	if len(left) != 2 || len(right) != 1 || right[0] != 0 {
		t.Fatalf("violator left=%v right=%v", left, right)
	}
	// Perfect matching: no violator.
	b2 := matching.Bipartite{NL: 2, NR: 2, Adj: [][]uint32{{0, 1}, {1}}}
	mL2, mR2 := matching.MaxMatching(b2)
	if l, r := matching.HallViolator(b2, mL2, mR2); l != nil || r != nil {
		t.Fatalf("violator on perfectly matchable graph: %v %v", l, r)
	}
}

func TestMaxMatchingRandomAgainstFlowOracle(t *testing.T) {
	// Oracle: simple augmenting-path matching (Kuhn's) — different algorithm,
	// same size.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		nl, nr := 1+rng.Intn(12), 1+rng.Intn(12)
		b := matching.Bipartite{NL: nl, NR: nr, Adj: make([][]uint32, nl)}
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				if rng.Intn(3) == 0 {
					b.Adj[l] = append(b.Adj[l], uint32(r))
				}
			}
		}
		matchL, _ := matching.MaxMatching(b)
		got := 0
		for _, m := range matchL {
			if m >= 0 {
				got++
			}
		}
		want := kuhnSize(b)
		if got != want {
			t.Fatalf("trial %d: hopcroft-karp %d, kuhn %d", trial, got, want)
		}
	}
}

func kuhnSize(b matching.Bipartite) int {
	matchR := make([]int, b.NR)
	for i := range matchR {
		matchR[i] = -1
	}
	var try func(l int, seen []bool) bool
	try = func(l int, seen []bool) bool {
		for _, r := range b.Adj[l] {
			if seen[r] {
				continue
			}
			seen[r] = true
			if matchR[r] < 0 || try(matchR[r], seen) {
				matchR[r] = l
				return true
			}
		}
		return false
	}
	size := 0
	for l := 0; l < b.NL; l++ {
		if try(l, make([]bool, b.NR)) {
			size++
		}
	}
	return size
}
