package llp

import (
	"context"
	"sync/atomic"
)

// Pointer jumping as an LLP instance — the inner loop of LLP-Boruvka (§VI):
// given a forest of rooted trees encoded as a parent array (roots point to
// themselves), index j is forbidden while G[j] != G[G[j]], and advances by
// G[j] := G[G[j]]. At the fixpoint every vertex points directly at its
// root: the trees have become stars.
//
// State cells are accessed atomically so the Async driver's racing reads
// are well-defined; Lemma 3's invariant (G[v] stays reachable from v in the
// original forest) holds under any interleaving of these advances, which is
// why the paper can run this "in parallel and without synchronization".

// PointerJump wraps a parent array as a Predicate.
type PointerJump struct {
	parent []uint32
}

// NewPointerJump wraps parent (roots must satisfy parent[r] == r). The array
// is advanced in place.
func NewPointerJump(parent []uint32) *PointerJump {
	return &PointerJump{parent: parent}
}

// Reset points the instance at a new parent array, so one PointerJump (and
// its interface boxing) can be reused across contraction rounds instead of
// allocating a fresh instance per round (see mst.Workspace).
func (p *PointerJump) Reset(parent []uint32) { p.parent = parent }

// N implements Predicate.
func (p *PointerJump) N() int { return len(p.parent) }

// Forbidden implements Predicate: j is forbidden while its parent is not a
// root, i.e. G[j] != G[G[j]].
func (p *PointerJump) Forbidden(j int) bool {
	g := atomic.LoadUint32(&p.parent[j])
	gg := atomic.LoadUint32(&p.parent[g])
	return g != gg
}

// Advance implements Predicate: G[j] := G[G[j]].
func (p *PointerJump) Advance(j int) {
	g := atomic.LoadUint32(&p.parent[j])
	gg := atomic.LoadUint32(&p.parent[g])
	atomic.StoreUint32(&p.parent[j], gg)
}

// Parent returns the underlying array.
func (p *PointerJump) Parent() []uint32 { return p.parent }

// Stars runs pointer jumping to the fixpoint with the given driver and
// returns the driver stats. Afterwards parent[j] is the root of j's tree
// for every j.
func Stars(mode Mode, workers int, parent []uint32) Stats {
	return Run(mode, workers, NewPointerJump(parent))
}

// StarsCtx is Stars with cooperative cancellation between sweeps. On a nil
// or non-cancellable context it is exactly Stars. A non-nil error means the
// fixpoint was not reached: parent may still contain non-star trees (though
// every parent[j] remains an ancestor of j, per Lemma 3).
func StarsCtx(ctx context.Context, mode Mode, workers int, parent []uint32) (Stats, error) {
	return RunCtx(ctx, mode, workers, NewPointerJump(parent))
}
