package llp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"llpmst/internal/gen"
	"llpmst/internal/graph"
)

var allModes = []struct {
	name string
	mode Mode
}{
	{"sequential", ModeSequential},
	{"round", ModeRound},
	{"async", ModeAsync},
}

// counterPred is a toy lattice: G[j] must reach target[j], advancing by 1.
type counterPred struct {
	g, target []int
}

func (c *counterPred) N() int               { return len(c.g) }
func (c *counterPred) Forbidden(j int) bool { return c.g[j] < c.target[j] }
func (c *counterPred) Advance(j int)        { c.g[j]++ }

func TestDriversReachFixpointOnToyLattice(t *testing.T) {
	for _, m := range allModes {
		t.Run(m.name, func(t *testing.T) {
			target := []int{0, 3, 1, 7, 2}
			pred := &counterPred{g: make([]int, 5), target: target}
			var st Stats
			if m.mode == ModeSequential {
				st = Run(m.mode, 1, pred)
			} else {
				// Parallel drivers need independent cells — true here.
				st = Run(m.mode, 4, pred)
			}
			for j, v := range pred.g {
				if v != target[j] {
					t.Fatalf("G[%d] = %d, want %d", j, v, target[j])
				}
			}
			if st.Advances != 13 {
				t.Fatalf("Advances = %d, want 13", st.Advances)
			}
			if st.Rounds < 2 {
				t.Fatalf("Rounds = %d, want >= 2", st.Rounds)
			}
		})
	}
}

func TestPointerJumpMakesStars(t *testing.T) {
	// A chain 0 <- 1 <- 2 <- ... <- n-1 (parent[i] = i-1, parent[0] = 0).
	for _, m := range allModes {
		t.Run(m.name, func(t *testing.T) {
			n := 1000
			parent := make([]uint32, n)
			for i := 1; i < n; i++ {
				parent[i] = uint32(i - 1)
			}
			st := Stars(m.mode, 4, parent)
			for i, p := range parent {
				if p != 0 {
					t.Fatalf("parent[%d] = %d, want 0", i, p)
				}
			}
			if st.Advances == 0 {
				t.Fatal("no advances recorded")
			}
			// Pointer jumping doubles distances: O(log n) rounds expected
			// for the parallel drivers (plus the final empty round).
			if m.mode == ModeRound && st.Rounds > 13 {
				t.Fatalf("round driver took %d rounds on a 1000-chain, want <= 13", st.Rounds)
			}
		})
	}
}

func TestPointerJumpRandomForests(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		// Random forest: parent[i] < i or self.
		parent := make([]uint32, n)
		for i := 1; i < n; i++ {
			if rng.Intn(4) == 0 {
				parent[i] = uint32(i) // root
			} else {
				parent[i] = uint32(rng.Intn(i))
			}
		}
		// Reference roots.
		root := func(x int) uint32 {
			for parent[x] != uint32(x) {
				x = int(parent[x])
			}
			return uint32(x)
		}
		want := make([]uint32, n)
		for i := range want {
			want[i] = root(i)
		}
		cp := make([]uint32, n)
		copy(cp, parent)
		Stars(ModeAsync, 4, cp)
		for i := range cp {
			if cp[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func dijkstraRef(g *graph.CSR, src uint32) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	for {
		best := -1
		for v := 0; v < n; v++ {
			if !done[v] && dist[v] < math.Inf(1) && (best < 0 || dist[v] < dist[best]) {
				best = v
			}
		}
		if best < 0 {
			return dist
		}
		done[best] = true
		lo, hi := g.ArcRange(uint32(best))
		for a := lo; a < hi; a++ {
			if d := dist[best] + float64(g.ArcWeight(a)); d < dist[g.Target(a)] {
				dist[g.Target(a)] = d
			}
		}
	}
}

func TestShortestPathsMatchesDijkstra(t *testing.T) {
	g := gen.ErdosRenyi(1, 200, 800, gen.WeightInteger, 7)
	want := dijkstraRef(g, 0)
	for _, m := range allModes {
		t.Run(m.name, func(t *testing.T) {
			got, st := SolveShortestPaths(m.mode, 4, g, 0)
			for v := range got {
				if got[v] != want[v] {
					t.Fatalf("dist[%d] = %v, want %v", v, got[v], want[v])
				}
			}
			if st.Rounds == 0 {
				t.Fatal("no rounds recorded")
			}
		})
	}
}

func TestShortestPathsPaperGraph(t *testing.T) {
	g := gen.PaperFigure1()
	dist, _ := SolveShortestPaths(ModeSequential, 1, g, 0)
	want := []float64{0, 5, 4, 12, 14}
	for v, d := range dist {
		if d != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, d, want[v])
		}
	}
}

func TestShortestPathsDisconnected(t *testing.T) {
	g := gen.Disconnected(2, 5, 1)
	dist, _ := SolveShortestPaths(ModeAsync, 2, g, 0)
	for v := 5; v < 10; v++ {
		if !math.IsInf(dist[v], 1) {
			t.Fatalf("dist[%d] = %v, want +inf", v, dist[v])
		}
	}
	for v := 0; v < 5; v++ {
		if math.IsInf(dist[v], 1) {
			t.Fatalf("dist[%d] unreachable within its component", v)
		}
	}
}

func TestComponentsMatchBFS(t *testing.T) {
	g := gen.Disconnected(5, 20, 3)
	wantLabels, wantCount := g.Components()
	for _, m := range allModes {
		t.Run(m.name, func(t *testing.T) {
			got, _ := SolveComponents(m.mode, 4, g)
			// Labels must induce the same partition.
			seen := map[uint32]bool{}
			for v := range got {
				seen[got[v]] = true
				for u := range got {
					same := wantLabels[v] == wantLabels[u]
					if (got[v] == got[u]) != same {
						t.Fatalf("partition mismatch at %d,%d", v, u)
					}
				}
			}
			if len(seen) != wantCount {
				t.Fatalf("%d labels, want %d", len(seen), wantCount)
			}
			// Min-label: every label is the min id of its component.
			for v := range got {
				if got[v] > uint32(v) {
					t.Fatalf("label[%d] = %d exceeds vertex id", v, got[v])
				}
			}
		})
	}
}

func TestComponentsOnConnectedGraph(t *testing.T) {
	g := gen.RoadNetwork(1, 20, 20, 0.2, 1)
	labels, _ := SolveComponents(ModeAsync, 4, g)
	for v, l := range labels {
		if l != 0 {
			t.Fatalf("label[%d] = %d, want 0 on a connected graph", v, l)
		}
	}
}

func TestEmptyPredicates(t *testing.T) {
	pred := &counterPred{}
	st := Sequential(pred)
	if st.Advances != 0 {
		t.Fatal("advances on empty lattice")
	}
	st = RoundParallel(2, pred)
	if st.Advances != 0 {
		t.Fatal("advances on empty lattice (round)")
	}
	st = Async(2, pred)
	if st.Advances != 0 {
		t.Fatal("advances on empty lattice (async)")
	}
}
