// Package llp implements the generic Lattice Linear Predicate detection
// algorithm (Algorithm 1 of the paper): given a predicate B over an
// n-dimensional lattice of states, repeatedly advance every *forbidden*
// index until none remains, at which point the state vector is the least
// element satisfying B.
//
// Three drivers are provided with identical fixpoint semantics:
//
//   - Sequential: one thread scans indices round-robin.
//   - RoundParallel: rounds with a barrier — detect all forbidden indices in
//     parallel, then advance them all in parallel. Deterministic round count.
//   - Async: workers sweep chunks and advance forbidden indices as they find
//     them, with no barrier between detection and advancing — the "little or
//     no synchronization" mode §VI highlights for LLP-Boruvka's pointer
//     jumping. Requires the instance's Forbidden/Advance to be safe under
//     concurrent invocation on distinct indices with racing reads (use
//     atomics in the instance's state).
//
// Instances in this package: pointer jumping (rooted trees → rooted stars,
// the inner LLP of LLP-Boruvka), single-source shortest paths (the
// LLP-Bellman-Ford of Garg's SPAA'20 paper, showing framework generality),
// and connected components by minimum-label propagation. The MST algorithms
// in internal/mst are specializations of this engine, as the paper's
// Algorithms 5 and 6 are of its Algorithm 1.
package llp

import (
	"context"
	"fmt"
	"sync/atomic"

	"llpmst/internal/par"
)

// Predicate is a lattice-linear predicate over indices 0..N()-1.
//
// Forbidden(j) must report whether index j is forbidden in the current
// state: unless G[j] advances, B can never hold. Advance(j) must move G[j]
// up the lattice so that, after finitely many advances, j is no longer
// forbidden. The engine guarantees Advance(j) is only called when
// Forbidden(j) was observed true.
type Predicate interface {
	// N returns the number of lattice indices.
	N() int
	// Forbidden reports whether index j must advance.
	Forbidden(j int) bool
	// Advance moves index j up the lattice.
	Advance(j int)
}

// Stats reports what a driver did.
type Stats struct {
	Rounds   int   // full sweeps over the index set
	Advances int64 // total Advance calls
}

// Sequential runs the LLP algorithm with a single thread: sweep all indices,
// advancing each forbidden one, until a sweep makes no advances. Returns
// driver statistics.
func Sequential(pred Predicate) Stats {
	n := pred.N()
	var st Stats
	for {
		st.Rounds++
		advanced := false
		for j := 0; j < n; j++ {
			if pred.Forbidden(j) {
				pred.Advance(j)
				st.Advances++
				advanced = true
			}
		}
		if !advanced {
			return st
		}
	}
}

// RoundParallel runs the LLP algorithm in barrier-synchronized rounds on
// workers goroutines: each round first collects the forbidden set in
// parallel, then advances every member in parallel. This is the literal
// reading of Algorithm 1's "for all j such that forbidden(G, j, B) in
// parallel". Forbidden must be safe to call concurrently with other
// Forbidden calls, and Advance with other Advance calls on distinct
// indices.
func RoundParallel(workers int, pred Predicate) Stats {
	n := pred.N()
	var st Stats
	for {
		st.Rounds++
		forbidden := par.PackIndex(workers, n, func(j int) bool { return pred.Forbidden(j) })
		if len(forbidden) == 0 {
			return st
		}
		par.ForEach(workers, len(forbidden), 256, func(i int) {
			pred.Advance(int(forbidden[i]))
		})
		st.Advances += int64(len(forbidden))
	}
}

// Async runs the LLP algorithm with workers goroutines sweeping chunks of
// the index set and advancing forbidden indices immediately, without a
// detection/advance barrier. Sweeps repeat until one full sweep observes no
// forbidden index. The instance must tolerate concurrent Forbidden/Advance
// on distinct indices, including reads of cells being advanced (atomics in
// the instance state); lattice-linearity makes such stale reads harmless —
// an index advanced on stale information is advanced again later.
func Async(workers int, pred Predicate) Stats {
	n := pred.N()
	var st Stats
	var advances atomic.Int64
	var advanced atomic.Bool
	// One sweep closure for the whole fixpoint loop, so repeated sweeps
	// (and repeated Async calls per contraction round) allocate nothing.
	sweep := func(lo, hi int) {
		local := int64(0)
		for j := lo; j < hi; j++ {
			if pred.Forbidden(j) {
				pred.Advance(j)
				local++
			}
		}
		if local > 0 {
			advances.Add(local)
			advanced.Store(true)
		}
	}
	for {
		st.Rounds++
		advanced.Store(false)
		par.For(workers, n, 512, sweep)
		if !advanced.Load() {
			st.Advances = advances.Load()
			return st
		}
	}
}

// Mode selects an LLP driver.
type Mode int

const (
	// ModeAsync runs the barrier-free parallel driver. It is the zero value
	// because it is the paper's default for LLP-Boruvka's pointer jumping.
	ModeAsync Mode = iota
	// ModeRound runs the barrier-synchronized parallel driver.
	ModeRound
	// ModeSequential runs the single-threaded driver.
	ModeSequential
)

// Run dispatches to the driver selected by mode.
func Run(mode Mode, workers int, pred Predicate) Stats {
	switch mode {
	case ModeRound:
		return RoundParallel(workers, pred)
	case ModeSequential:
		return Sequential(pred)
	default:
		return Async(workers, pred)
	}
}

// RunCtx is Run with cooperative cancellation: the context is polled
// between sweeps/rounds of whichever driver mode selects (a sweep over the
// index set is the natural quantum — aborting mid-sweep would leave the
// fixpoint iteration's progress guarantees intact anyway, but sweeps are
// short and keeping them atomic keeps the round counts meaningful). On
// cancellation the state vector holds a partially advanced (still
// lattice-consistent) state and the error wraps ctx.Err().
func RunCtx(ctx context.Context, mode Mode, workers int, pred Predicate) (Stats, error) {
	cc := par.NewCanceller(ctx)
	if !cc.Active() {
		return Run(mode, workers, pred), nil
	}
	n := pred.N()
	var st Stats
	for {
		if cc.Poll() {
			return st, fmt.Errorf("llp: driver interrupted after %d rounds: %w", st.Rounds, cc.Err())
		}
		st.Rounds++
		var advances int64
		switch mode {
		case ModeSequential:
			for j := 0; j < n; j++ {
				if cc.Stride(j) {
					break
				}
				if pred.Forbidden(j) {
					pred.Advance(j)
					advances++
				}
			}
		case ModeRound:
			forbidden := par.PackIndex(workers, n, func(j int) bool { return pred.Forbidden(j) })
			par.ForEach(workers, len(forbidden), 256, func(i int) {
				if cc.Stride(i) {
					return
				}
				pred.Advance(int(forbidden[i]))
			})
			advances = int64(len(forbidden))
		default:
			var adv atomic.Int64
			par.For(workers, n, 512, func(lo, hi int) {
				local := int64(0)
				for j := lo; j < hi; j++ {
					if cc.Stride(j) {
						break
					}
					if pred.Forbidden(j) {
						pred.Advance(j)
						local++
					}
				}
				adv.Add(local)
			})
			advances = adv.Load()
		}
		st.Advances += advances
		if advances == 0 {
			if cc.Poll() {
				// A cancelled sweep observes no advances without being at
				// the fixpoint; report the interruption, not convergence.
				return st, fmt.Errorf("llp: driver interrupted after %d rounds: %w", st.Rounds, cc.Err())
			}
			return st, nil
		}
	}
}
