package llp

import (
	"math"
	"sync/atomic"

	"llpmst/internal/graph"
	"llpmst/internal/sched"
)

// Delta-stepping single-source shortest paths on the OBIM-style ordered
// scheduler (internal/sched): tentative distances are relaxed bucket by
// bucket of width delta, items within a bucket running in parallel. This is
// the practical middle ground between the LLP sweeps (Bellman-Ford, many
// re-relaxations) and the priority driver at delta = 0 (Dijkstra, strictly
// sequential order): the same spectrum the paper's runtime substrate
// (Galois) exposes through its ordered executors.

// DeltaStepping computes shortest-path distances from source with bucket
// width delta (> 0) using p workers. Distances are exact for finite,
// non-negative weights; unreachable vertices get +Inf.
func DeltaStepping(p int, g *graph.CSR, source uint32, delta float32) []float64 {
	if delta <= 0 {
		delta = 1
	}
	n := g.NumVertices()
	dist := make([]uint64, n) // float64 bits, atomic
	inf := math.Float64bits(math.Inf(1))
	for i := range dist {
		dist[i] = inf
	}
	dist[source] = math.Float64bits(0)

	type item struct {
		v uint32
		d float64
	}
	bucket := func(it item) uint64 { return uint64(it.d / float64(delta)) }
	relax := func(to uint32, nd float64, push func(item)) {
		for {
			old := atomic.LoadUint64(&dist[to])
			if nd >= math.Float64frombits(old) {
				return
			}
			if atomic.CompareAndSwapUint64(&dist[to], old, math.Float64bits(nd)) {
				push(item{to, nd})
				return
			}
		}
	}
	sched.ForEachOrdered(p, []item{{source, 0}}, bucket, func(it item, push func(item)) {
		// Stale entries: a better relaxation exists (or already settled
		// lower); only process entries matching the current distance.
		if math.Float64frombits(atomic.LoadUint64(&dist[it.v])) != it.d {
			return
		}
		lo, hi := g.ArcRange(it.v)
		for a := lo; a < hi; a++ {
			relax(g.Target(a), it.d+float64(g.ArcWeight(a)), push)
		}
	})
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(dist[i])
	}
	return out
}
