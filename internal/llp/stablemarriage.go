package llp

import "sync/atomic"

// Stable marriage as an LLP instance — one of the problems the paper's §III
// lists as derivable from the LLP algorithm ("variants of Gale-Shapley
// algorithm for stable marriage"). The lattice is the vector of proposal
// indices: G[m] is the position in man m's preference list he currently
// proposes to. A man is forbidden while his current woman prefers some
// other man who is also proposing to her; he advances by moving one step
// down his list. The fixpoint is the man-optimal stable matching, and the
// advances of different men commute — the lattice-linearity that lets all
// three drivers (including the barrier-free one) find the same matching.

// StableMarriage is the LLP predicate for the stable marriage problem with
// n men and n women.
type StableMarriage struct {
	n int
	// prefM[m] is man m's preference list: woman ids, best first.
	prefM [][]uint32
	// rankW[w][m] is woman w's rank of man m (lower = preferred).
	rankW [][]uint32
	// g[m] is the current index into prefM[m] (atomic).
	g []uint32
}

// NewStableMarriage creates the predicate. prefM[m] must be a permutation
// of 0..n-1 for every man m, and prefW[w] likewise for every woman.
func NewStableMarriage(prefM, prefW [][]uint32) *StableMarriage {
	n := len(prefM)
	sm := &StableMarriage{
		n:     n,
		prefM: prefM,
		rankW: make([][]uint32, n),
		g:     make([]uint32, n),
	}
	for w := 0; w < n; w++ {
		sm.rankW[w] = make([]uint32, n)
		for rank, m := range prefW[w] {
			sm.rankW[w][m] = uint32(rank)
		}
	}
	return sm
}

// N implements Predicate.
func (sm *StableMarriage) N() int { return sm.n }

// currentWoman returns the woman man m currently proposes to.
func (sm *StableMarriage) currentWoman(m int) uint32 {
	return sm.prefM[m][atomic.LoadUint32(&sm.g[m])]
}

// Forbidden implements Predicate: man j is forbidden while his current
// woman prefers another man who is also currently proposing to her.
func (sm *StableMarriage) Forbidden(j int) bool {
	w := sm.currentWoman(j)
	myRank := sm.rankW[w][j]
	for i := 0; i < sm.n; i++ {
		if i != j && sm.currentWoman(i) == w && sm.rankW[w][i] < myRank {
			return true
		}
	}
	return false
}

// Advance implements Predicate: move to the next preference. A man can be
// rejected at most n-1 times, so the index stays in range for solvable
// instances (complete preference lists always are).
func (sm *StableMarriage) Advance(j int) {
	atomic.AddUint32(&sm.g[j], 1)
}

// Matching returns, after a driver reached the fixpoint, the woman matched
// to each man.
func (sm *StableMarriage) Matching() []uint32 {
	out := make([]uint32, sm.n)
	for m := 0; m < sm.n; m++ {
		out[m] = sm.currentWoman(m)
	}
	return out
}

// SolveStableMarriage runs the instance to its fixpoint and returns the
// man-optimal stable matching: match[m] = woman assigned to man m.
func SolveStableMarriage(mode Mode, workers int, prefM, prefW [][]uint32) ([]uint32, Stats) {
	sm := NewStableMarriage(prefM, prefW)
	st := Run(mode, workers, sm)
	return sm.Matching(), st
}

// IsStableMatching checks that match (match[m] = woman of man m) is a
// perfect matching with no blocking pair: no man m and woman w who both
// prefer each other over their assigned partners. Used as the test oracle.
func IsStableMatching(prefM, prefW [][]uint32, match []uint32) bool {
	n := len(prefM)
	husband := make([]int, n)
	for i := range husband {
		husband[i] = -1
	}
	for m, w := range match {
		if int(w) >= n || husband[w] >= 0 {
			return false // not a matching
		}
		husband[w] = m
	}
	rankM := make([][]uint32, n)
	for m := 0; m < n; m++ {
		rankM[m] = make([]uint32, n)
		for rank, w := range prefM[m] {
			rankM[m][w] = uint32(rank)
		}
	}
	rankW := make([][]uint32, n)
	for w := 0; w < n; w++ {
		rankW[w] = make([]uint32, n)
		for rank, m := range prefW[w] {
			rankW[w][m] = uint32(rank)
		}
	}
	for m := 0; m < n; m++ {
		for w := 0; w < n; w++ {
			if uint32(w) == match[m] {
				continue
			}
			// Blocking pair: m prefers w over his match, and w prefers m
			// over her husband.
			if rankM[m][w] < rankM[m][match[m]] && rankW[w][m] < rankW[w][husband[w]] {
				return false
			}
		}
	}
	return true
}
