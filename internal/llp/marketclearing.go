package llp

import (
	"llpmst/internal/matching"
)

// Market clearing prices as an LLP instance — the Demange-Gale-Sotomayor
// ascending auction, the last of the problems the paper's §III lists as
// derivable from the LLP algorithm ("Gale-Demange-Sotomayor algorithm for
// the market clearing prices").
//
// n buyers bid on n items with integer valuations value[b][i]. The lattice
// is the integer price vector ascending from zero; at prices p, buyer b
// demands the items maximizing value[b][i] - p[i] (if the best utility is
// negative the buyer demands nothing). An item is forbidden when it lies in
// the neighborhood of a constricted (Hall-violating) buyer set of the
// demand graph — prices of over-demanded items must rise — and advances by
// +1. The fixpoint is the componentwise-minimum market-clearing price
// vector, at which the demand graph has a perfect-on-buyers matching.
//
// Forbidden is computed from a maximum matching + alternating-path Hall
// violator (internal/matching). This instance's forbidden test is global —
// each evaluation sees the whole demand graph — so the sequential driver is
// the natural one; it is nevertheless a faithful Algorithm 1 instance:
// advance all forbidden indices, repeat until none.

// MarketClearing is the LLP predicate for minimum Walrasian prices.
type MarketClearing struct {
	n      int
	value  [][]int64
	prices []int64

	// Round cache: forbidden items of the current price vector. Rebuilt
	// whenever prices change.
	dirty     bool
	forbidden []bool
}

// NewMarketClearing creates the predicate for a square market (len(value)
// buyers, each with len(value) item valuations).
func NewMarketClearing(value [][]int64) *MarketClearing {
	return &MarketClearing{
		n:         len(value),
		value:     value,
		prices:    make([]int64, len(value)),
		forbidden: make([]bool, len(value)),
		dirty:     true,
	}
}

// N implements Predicate (indices are items).
func (mc *MarketClearing) N() int { return mc.n }

// demandGraph builds the bipartite demand graph at current prices.
func (mc *MarketClearing) demandGraph() matching.Bipartite {
	b := matching.Bipartite{NL: mc.n, NR: mc.n, Adj: make([][]uint32, mc.n)}
	for buyer := 0; buyer < mc.n; buyer++ {
		best := int64(-1) // empty demand if all utilities negative
		for item := 0; item < mc.n; item++ {
			if u := mc.value[buyer][item] - mc.prices[item]; u > best {
				best = u
			}
		}
		if best < 0 {
			continue
		}
		for item := 0; item < mc.n; item++ {
			if mc.value[buyer][item]-mc.prices[item] == best {
				b.Adj[buyer] = append(b.Adj[buyer], uint32(item))
			}
		}
	}
	return b
}

func (mc *MarketClearing) refresh() {
	if !mc.dirty {
		return
	}
	for i := range mc.forbidden {
		mc.forbidden[i] = false
	}
	dg := mc.demandGraph()
	matchL, matchR := matching.MaxMatching(dg)
	// Only buyers with non-empty demand need matching; a buyer priced out
	// entirely never constrains prices.
	unmatchedDemanding := false
	for buyer := 0; buyer < mc.n; buyer++ {
		if matchL[buyer] < 0 && len(dg.Adj[buyer]) > 0 {
			unmatchedDemanding = true
			break
		}
	}
	if unmatchedDemanding {
		_, items := matching.HallViolator(dg, matchL, matchR)
		for _, it := range items {
			mc.forbidden[it] = true
		}
	}
	mc.dirty = false
}

// Forbidden implements Predicate: item j is over-demanded at the current
// prices.
func (mc *MarketClearing) Forbidden(j int) bool {
	mc.refresh()
	return mc.forbidden[j]
}

// Advance implements Predicate: raise the item's price by one.
func (mc *MarketClearing) Advance(j int) {
	mc.prices[j]++
	mc.dirty = true
}

// Prices returns the current price vector.
func (mc *MarketClearing) Prices() []int64 { return mc.prices }

// Assignment returns, at clearing prices, a maximum matching of buyers to
// items (buyer -> item, -1 for priced-out buyers).
func (mc *MarketClearing) Assignment() []int32 {
	dg := mc.demandGraph()
	matchL, _ := matching.MaxMatching(dg)
	return matchL
}

// SolveMarketClearing runs the auction to its fixpoint and returns the
// minimum clearing prices and a clearing assignment.
func SolveMarketClearing(value [][]int64) ([]int64, []int32, Stats) {
	mc := NewMarketClearing(value)
	st := Sequential(mc)
	return mc.Prices(), mc.Assignment(), st
}
