package llp

import (
	"sync/atomic"

	"llpmst/internal/graph"
)

// Connected components by minimum-label propagation as an LLP instance:
// every vertex starts labelled with its own id; a vertex is forbidden while
// a neighbor carries a smaller label, and advances to the smallest label in
// its closed neighborhood. The fixpoint labels every vertex with the
// minimum vertex id of its component. A second LLP demo instance, and a
// handy parallel component labeller for tests.

// Components is the LLP predicate for connected-component labelling.
type Components struct {
	g     *graph.CSR
	label []uint32 // atomic
}

// NewComponents creates the predicate with label[v] = v.
func NewComponents(g *graph.CSR) *Components {
	c := &Components{g: g, label: make([]uint32, g.NumVertices())}
	for i := range c.label {
		c.label[i] = uint32(i)
	}
	return c
}

// N implements Predicate.
func (c *Components) N() int { return c.g.NumVertices() }

// Forbidden implements Predicate.
func (c *Components) Forbidden(j int) bool {
	lj := atomic.LoadUint32(&c.label[j])
	lo, hi := c.g.ArcRange(uint32(j))
	for a := lo; a < hi; a++ {
		if atomic.LoadUint32(&c.label[c.g.Target(a)]) < lj {
			return true
		}
	}
	return false
}

// Advance implements Predicate: adopt the minimum neighboring label.
// Monotone decrease under CAS.
func (c *Components) Advance(j int) {
	best := atomic.LoadUint32(&c.label[j])
	lo, hi := c.g.ArcRange(uint32(j))
	for a := lo; a < hi; a++ {
		if l := atomic.LoadUint32(&c.label[c.g.Target(a)]); l < best {
			best = l
		}
	}
	for {
		old := atomic.LoadUint32(&c.label[j])
		if old <= best {
			return
		}
		if atomic.CompareAndSwapUint32(&c.label[j], old, best) {
			return
		}
	}
}

// Labels returns the label vector.
func (c *Components) Labels() []uint32 { return c.label }

// SolveComponents runs the instance to its fixpoint and returns the label
// vector: label[v] is the minimum vertex id in v's component.
func SolveComponents(mode Mode, workers int, g *graph.CSR) ([]uint32, Stats) {
	c := NewComponents(g)
	st := Run(mode, workers, c)
	return c.Labels(), st
}
