package llp

import (
	"math/rand"
	"slices"
	"testing"
)

func randomPrefs(rng *rand.Rand, n int) [][]uint32 {
	prefs := make([][]uint32, n)
	for i := range prefs {
		prefs[i] = make([]uint32, n)
		for j := range prefs[i] {
			prefs[i][j] = uint32(j)
		}
		rng.Shuffle(n, func(a, b int) {
			prefs[i][a], prefs[i][b] = prefs[i][b], prefs[i][a]
		})
	}
	return prefs
}

// galeShapleyRef is the textbook deferred-acceptance oracle, returning the
// man-optimal matching.
func galeShapleyRef(prefM, prefW [][]uint32) []uint32 {
	n := len(prefM)
	rankW := make([][]uint32, n)
	for w := 0; w < n; w++ {
		rankW[w] = make([]uint32, n)
		for rank, m := range prefW[w] {
			rankW[w][m] = uint32(rank)
		}
	}
	next := make([]int, n)
	husband := make([]int, n)
	for i := range husband {
		husband[i] = -1
	}
	free := make([]int, 0, n)
	for m := n - 1; m >= 0; m-- {
		free = append(free, m)
	}
	for len(free) > 0 {
		m := free[len(free)-1]
		free = free[:len(free)-1]
		w := prefM[m][next[m]]
		next[m]++
		switch {
		case husband[w] < 0:
			husband[w] = m
		case rankW[w][m] < rankW[w][husband[w]]:
			free = append(free, husband[w])
			husband[w] = m
		default:
			free = append(free, m)
		}
	}
	match := make([]uint32, n)
	for w, m := range husband {
		match[m] = uint32(w)
	}
	return match
}

func TestStableMarriageMatchesGaleShapley(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		prefM := randomPrefs(rng, n)
		prefW := randomPrefs(rng, n)
		want := galeShapleyRef(prefM, prefW)
		for _, m := range allModes {
			got, _ := SolveStableMarriage(m.mode, 4, prefM, prefW)
			if !slices.Equal(got, want) {
				t.Fatalf("trial %d mode %s: matching %v, want %v", trial, m.name, got, want)
			}
			if !IsStableMatching(prefM, prefW, got) {
				t.Fatalf("trial %d mode %s: matching not stable", trial, m.name)
			}
		}
	}
}

func TestStableMarriageIdentityPreferences(t *testing.T) {
	// Everyone prefers partner with their own index: matching is identity,
	// no one is ever forbidden after initialization.
	n := 10
	prefM := randomPrefs(rand.New(rand.NewSource(2)), n)
	for i := range prefM {
		slices.Sort(prefM[i])
		// rotate so man i's first choice is woman i
		for prefM[i][0] != uint32(i) {
			first := prefM[i][0]
			prefM[i] = append(prefM[i][1:], first)
		}
	}
	prefW := make([][]uint32, n)
	for w := range prefW {
		prefW[w] = make([]uint32, n)
		for m := range prefW[w] {
			prefW[w][m] = uint32((m + w) % n)
		}
	}
	match, st := SolveStableMarriage(ModeSequential, 1, prefM, prefW)
	for m, w := range match {
		if int(w) != m {
			t.Fatalf("match[%d] = %d, want identity", m, w)
		}
	}
	if st.Advances != 0 {
		t.Fatalf("identity instance needed %d advances, want 0", st.Advances)
	}
}

func TestStableMarriageLatinSquareWorstCase(t *testing.T) {
	// A contentious instance: every man has the identical preference list,
	// so all n men initially propose to woman 0 and rejections cascade —
	// Θ(n²) advances.
	n := 30
	prefM := make([][]uint32, n)
	prefW := make([][]uint32, n)
	for i := 0; i < n; i++ {
		prefM[i] = make([]uint32, n)
		prefW[i] = make([]uint32, n)
		for k := 0; k < n; k++ {
			prefM[i][k] = uint32(k)
			prefW[i][k] = uint32((i + 1 + k) % n)
		}
	}
	want := galeShapleyRef(prefM, prefW)
	got, st := SolveStableMarriage(ModeAsync, 4, prefM, prefW)
	if !slices.Equal(got, want) {
		t.Fatalf("matching %v, want %v", got, want)
	}
	if st.Advances == 0 {
		t.Fatal("worst case should require advances")
	}
	if !IsStableMatching(prefM, prefW, got) {
		t.Fatal("unstable")
	}
}

func TestIsStableMatchingDetectsProblems(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 8
	prefM := randomPrefs(rng, n)
	prefW := randomPrefs(rng, n)
	good := galeShapleyRef(prefM, prefW)
	if !IsStableMatching(prefM, prefW, good) {
		t.Fatal("oracle matching rejected")
	}
	// Not a matching: two men share a woman.
	bad := slices.Clone(good)
	bad[0] = bad[1]
	if IsStableMatching(prefM, prefW, bad) {
		t.Fatal("non-matching accepted")
	}
	// Out of range.
	bad2 := slices.Clone(good)
	bad2[0] = uint32(n)
	if IsStableMatching(prefM, prefW, bad2) {
		t.Fatal("out-of-range accepted")
	}
	// A random permutation is almost surely unstable for random prefs;
	// search for one that differs from the stable matching.
	foundUnstable := false
	for trial := 0; trial < 50 && !foundUnstable; trial++ {
		perm := rng.Perm(n)
		cand := make([]uint32, n)
		for m, w := range perm {
			cand[m] = uint32(w)
		}
		if !slices.Equal(cand, good) && !IsStableMatching(prefM, prefW, cand) {
			foundUnstable = true
		}
	}
	if !foundUnstable {
		t.Fatal("never found an unstable permutation; oracle suspicious")
	}
}
