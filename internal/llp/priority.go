package llp

import (
	"math"
	"sync/atomic"

	"llpmst/internal/graph"
	"llpmst/internal/par"
)

// Priority-ordered LLP evaluation. The SPAA'20 predicate-detection paper the
// authors build on ([15] in §III) shows Dijkstra's algorithm is the LLP
// Bellman-Ford predicate evaluated in a particular order: always advance the
// forbidden index whose advance target is smallest. This file provides that
// evaluation strategy as a generic driver.
//
// With delta == 0 only the minimum-priority forbidden indices advance each
// round — for shortest paths with non-negative weights this is exactly
// Dijkstra's settling order, and every index advances at most once (the
// tests assert it). With delta > 0 the driver advances the whole priority
// window [min, min+delta], trading re-advances for fewer rounds — the
// delta-stepping idea. delta == ^uint64(0) degenerates to the
// round-synchronous driver.

// PriorityPredicate extends Predicate with an advance-target priority.
// Priority(j) is only evaluated on indices observed forbidden and must
// return the position the index would advance to (lower = more urgent).
type PriorityPredicate interface {
	Predicate
	Priority(j int) uint64
}

// RunPriority runs the LLP algorithm advancing, each round, only the
// forbidden indices whose priority lies within delta of the round minimum.
func RunPriority(workers int, pred PriorityPredicate, delta uint64) Stats {
	n := pred.N()
	var st Stats
	type cand struct {
		j  uint32
		pr uint64
	}
	for {
		st.Rounds++
		cands := par.ForCollect(workers, n, 512, func(lo, hi int, out []cand) []cand {
			for j := lo; j < hi; j++ {
				if pred.Forbidden(j) {
					out = append(out, cand{uint32(j), pred.Priority(j)})
				}
			}
			return out
		})
		if len(cands) == 0 {
			return st
		}
		minPr := cands[0].pr
		for _, c := range cands[1:] {
			if c.pr < minPr {
				minPr = c.pr
			}
		}
		threshold := minPr + delta
		if threshold < minPr { // overflow: advance everything
			threshold = math.MaxUint64
		}
		advanced := 0
		// Advance the window in parallel; indices are distinct, and window
		// members' advances commute by lattice-linearity.
		par.ForEach(workers, len(cands), 256, func(i int) {
			if cands[i].pr <= threshold {
				pred.Advance(int(cands[i].j))
			}
		})
		for _, c := range cands {
			if c.pr <= threshold {
				advanced++
			}
		}
		st.Advances += int64(advanced)
	}
}

// Priority implements PriorityPredicate for ShortestPaths: the best offer
// any neighbor currently makes, i.e. the distance the vertex would advance
// to. Evaluating the minimum-priority vertices first reproduces Dijkstra's
// settling order.
func (sp *ShortestPaths) Priority(j int) uint64 {
	best := math.Inf(1)
	lo, hi := sp.g.ArcRange(uint32(j))
	for a := lo; a < hi; a++ {
		if d := sp.load(sp.g.Target(a)) + float64(sp.g.ArcWeight(a)); d < best {
			best = d
		}
	}
	return math.Float64bits(best)
}

// Priority implements PriorityPredicate for Components: the label the
// vertex would adopt. Smallest labels propagate first.
func (c *Components) Priority(j int) uint64 {
	best := ^uint64(0)
	lo, hi := c.g.ArcRange(uint32(j))
	for a := lo; a < hi; a++ {
		if l := uint64(atomic.LoadUint32(&c.label[c.g.Target(a)])); l < best {
			best = l
		}
	}
	return best
}

// SolveShortestPathsDijkstra runs the shortest-path instance under the
// priority driver with delta == 0 — the LLP derivation of Dijkstra's
// algorithm. Returns the distances and the driver stats; Stats.Advances
// equals the number of settled (reachable, non-source) vertices.
func SolveShortestPathsDijkstra(workers int, g *graph.CSR, source uint32) ([]float64, Stats) {
	sp := NewShortestPaths(g, source)
	st := RunPriority(workers, sp, 0)
	return sp.Distances(), st
}
