package llp

import (
	"math"
	"sync/atomic"

	"llpmst/internal/graph"
)

// LLP single-source shortest paths — the LLP-Bellman-Ford instance from
// Garg's SPAA'20 predicate-detection paper, included to demonstrate that the
// same engine that runs the paper's MST algorithms covers other
// combinatorial optimization problems (the paper's stated future work).
//
// The lattice is the vector of tentative distances descending from +inf;
// vertex j is forbidden while some neighbor offers a shorter path, and
// advances to the best offer. The fixpoint is the shortest-path distance
// vector. Distances are stored as atomic uint64 bit patterns of float64 so
// the Async driver's racing reads are defined; for non-negative weights the
// bit patterns order like the values.

// ShortestPaths is the LLP predicate for single-source shortest paths on an
// undirected non-negatively weighted graph.
type ShortestPaths struct {
	g      *graph.CSR
	source uint32
	dist   []uint64 // float64 bits, atomic
}

// NewShortestPaths creates the predicate with all distances +inf except the
// source at 0.
func NewShortestPaths(g *graph.CSR, source uint32) *ShortestPaths {
	sp := &ShortestPaths{
		g:      g,
		source: source,
		dist:   make([]uint64, g.NumVertices()),
	}
	inf := math.Float64bits(math.Inf(1))
	for i := range sp.dist {
		sp.dist[i] = inf
	}
	sp.dist[source] = math.Float64bits(0)
	return sp
}

// N implements Predicate.
func (sp *ShortestPaths) N() int { return sp.g.NumVertices() }

func (sp *ShortestPaths) load(v uint32) float64 {
	return math.Float64frombits(atomic.LoadUint64(&sp.dist[v]))
}

// Forbidden implements Predicate: j is forbidden while a neighbor offers a
// strictly shorter path.
func (sp *ShortestPaths) Forbidden(j int) bool {
	dj := sp.load(uint32(j))
	lo, hi := sp.g.ArcRange(uint32(j))
	for a := lo; a < hi; a++ {
		if sp.load(sp.g.Target(a))+float64(sp.g.ArcWeight(a)) < dj {
			return true
		}
	}
	return false
}

// Advance implements Predicate: take the best current offer. A racing
// improvement at a neighbor just means j will be forbidden again later;
// monotonicity (distances only decrease) gives convergence.
func (sp *ShortestPaths) Advance(j int) {
	best := sp.load(uint32(j))
	lo, hi := sp.g.ArcRange(uint32(j))
	for a := lo; a < hi; a++ {
		if d := sp.load(sp.g.Target(a)) + float64(sp.g.ArcWeight(a)); d < best {
			best = d
		}
	}
	// Monotone decrease under CAS so concurrent advances never raise the
	// value.
	for {
		old := atomic.LoadUint64(&sp.dist[j])
		if math.Float64frombits(old) <= best {
			return
		}
		if atomic.CompareAndSwapUint64(&sp.dist[j], old, math.Float64bits(best)) {
			return
		}
	}
}

// Distances returns the distance vector (valid after a driver reached the
// fixpoint). Unreachable vertices hold +inf.
func (sp *ShortestPaths) Distances() []float64 {
	out := make([]float64, len(sp.dist))
	for i := range out {
		out[i] = sp.load(uint32(i))
	}
	return out
}

// SolveShortestPaths runs the instance to its fixpoint and returns the
// distance vector.
func SolveShortestPaths(mode Mode, workers int, g *graph.CSR, source uint32) ([]float64, Stats) {
	sp := NewShortestPaths(g, source)
	st := Run(mode, workers, sp)
	return sp.Distances(), st
}
