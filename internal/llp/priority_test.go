package llp

import (
	"math"
	"testing"

	"llpmst/internal/gen"
)

func TestPriorityDriverIsDijkstra(t *testing.T) {
	g := gen.RoadNetwork(1, 32, 32, 0.25, 17)
	want := dijkstraRef(g, 0)
	dist, st := SolveShortestPathsDijkstra(2, g, 0)
	for v := range dist {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, dist[v], want[v])
		}
	}
	// The Dijkstra property: each reachable non-source vertex settles in
	// exactly one advance.
	reachable := 0
	for _, d := range want {
		if !math.IsInf(d, 1) {
			reachable++
		}
	}
	if st.Advances != int64(reachable-1) {
		t.Fatalf("advances = %d, want %d (one per settled vertex)", st.Advances, reachable-1)
	}
}

func TestPriorityDriverDoesLessWorkThanSweeps(t *testing.T) {
	g := gen.RoadNetwork(1, 24, 24, 0.3, 23)
	spA := NewShortestPaths(g, 0)
	stAsync := Async(2, spA)
	spP := NewShortestPaths(g, 0)
	stPrio := RunPriority(2, spP, 0)
	dA, dP := spA.Distances(), spP.Distances()
	for v := range dA {
		if dA[v] != dP[v] {
			t.Fatalf("drivers disagree at %d", v)
		}
	}
	// Sweep drivers re-advance vertices as better offers arrive; the
	// Dijkstra order never does. On a high-diameter road graph the gap is
	// large.
	if stPrio.Advances >= stAsync.Advances {
		t.Fatalf("priority driver advances (%d) not below async driver (%d)",
			stPrio.Advances, stAsync.Advances)
	}
}

func TestPriorityDriverDeltaWindow(t *testing.T) {
	g := gen.ErdosRenyi(1, 300, 1500, gen.WeightInteger, 29)
	want := dijkstraRef(g, 0)
	for _, delta := range []uint64{0, math.Float64bits(500), ^uint64(0)} {
		sp := NewShortestPaths(g, 0)
		st := RunPriority(2, sp, delta)
		for v, d := range sp.Distances() {
			if d != want[v] {
				t.Fatalf("delta=%d: dist[%d] = %v, want %v", delta, v, d, want[v])
			}
		}
		if st.Rounds == 0 {
			t.Fatal("no rounds recorded")
		}
	}
	// Wider windows need no more rounds than delta=0.
	sp0 := NewShortestPaths(g, 0)
	st0 := RunPriority(2, sp0, 0)
	spInf := NewShortestPaths(g, 0)
	stInf := RunPriority(2, spInf, ^uint64(0))
	if stInf.Rounds > st0.Rounds {
		t.Fatalf("full-window rounds %d exceed delta=0 rounds %d", stInf.Rounds, st0.Rounds)
	}
}

func TestPriorityDriverComponents(t *testing.T) {
	g := gen.Disconnected(4, 25, 31)
	c := NewComponents(g)
	st := RunPriority(2, c, 0)
	wantLabels, _ := g.Components()
	got := c.Labels()
	for v := range got {
		for u := range got {
			if (got[v] == got[u]) != (wantLabels[v] == wantLabels[u]) {
				t.Fatalf("partition mismatch at %d,%d", v, u)
			}
		}
	}
	if st.Advances == 0 {
		t.Fatal("no advances")
	}
}

func TestPriorityDriverEmpty(t *testing.T) {
	g := gen.Star(1)
	sp := NewShortestPaths(g, 0)
	st := RunPriority(2, sp, 0)
	if st.Advances != 0 {
		t.Fatal("advances on trivial graph")
	}
}
