package llp

import (
	"math"
	"testing"

	"llpmst/internal/gen"
)

func TestDeltaSteppingMatchesDijkstra(t *testing.T) {
	for _, deltaFactor := range []float32{0.5, 1, 10, 1e9} {
		g := gen.RoadNetwork(1, 20, 20, 0.3, 41)
		want := dijkstraRef(g, 0)
		got := DeltaStepping(4, g, 0, 100*deltaFactor)
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("delta=%v: dist[%d] = %v, want %v", deltaFactor, v, got[v], want[v])
			}
		}
	}
}

func TestDeltaSteppingDisconnectedAndDegenerate(t *testing.T) {
	d := gen.Disconnected(3, 8, 2)
	got := DeltaStepping(2, d, 0, 50)
	for v := 8; v < 24; v++ {
		if !math.IsInf(got[v], 1) {
			t.Fatalf("dist[%d] = %v, want +Inf", v, got[v])
		}
	}
	// Bad delta clamps instead of dividing by zero.
	single := gen.Star(1)
	if out := DeltaStepping(1, single, 0, 0); out[0] != 0 {
		t.Fatal("delta clamp broken")
	}
}

func TestDeltaSteppingDenseGraph(t *testing.T) {
	g := gen.ErdosRenyi(1, 500, 4000, gen.WeightUniform, 43)
	want := dijkstraRef(g, 7)
	got := DeltaStepping(4, g, 7, 0.05)
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %v, want %v", v, got[v], want[v])
		}
	}
}
