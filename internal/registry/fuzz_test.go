package registry

import (
	"bytes"
	"errors"
	"testing"

	"llpmst/internal/gen"
	"llpmst/internal/graph"
)

// FuzzRegistryPut drives arbitrary bytes through the registration path.
// Three properties, whatever the input:
//
//   - PutData never panics;
//   - a failed put leaks nothing — Get afterwards misses exactly as if the
//     call had never happened;
//   - inputs accepted as binary (GPLL magic) are bit-stable: one encode of
//     the registered snapshot is a fixed point of decode∘encode, so the
//     binary format neither loses nor invents information on the way
//     through the registry.
func FuzzRegistryPut(f *testing.F) {
	f.Add([]byte("p sp 3 4\na 1 2 10\na 2 1 10\na 2 3 20\na 3 2 20\n"))
	f.Add([]byte("not a graph at all"))
	f.Add([]byte("GPLL"))
	f.Add([]byte{})
	var seed bytes.Buffer
	if err := graph.WriteBinary(&seed, gen.ErdosRenyi(1, 20, 60, gen.WeightUniform, 1)); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add(seed.Bytes()[:len(seed.Bytes())-3])                    // truncated edge list
	f.Add(append(append([]byte{}, seed.Bytes()...), 0xde, 0xad)) // trailing junk

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		r := New(Config{Workers: 1})
		info, err := r.PutData("fuzz", bytes.NewReader(data))
		if err != nil {
			if _, gerr := r.Get("fuzz"); !errors.Is(gerr, ErrNotFound) {
				t.Fatalf("failed put leaked a partial registration: %v", gerr)
			}
			if st := r.Stats(); st.Graphs != 0 || st.ResidentBytes != 0 || st.Puts != 0 {
				t.Fatalf("failed put left state behind: %+v", st)
			}
			return
		}

		got, gerr := r.Get("fuzz")
		if gerr != nil || got != info {
			t.Fatalf("get after put: %+v, %v (want %+v)", got, gerr, info)
		}
		g, _, serr := r.Snapshot("fuzz", info.Version)
		if serr != nil {
			t.Fatalf("snapshot after put: %v", serr)
		}
		if g.NumVertices() != info.Vertices || g.NumEdges() != info.Edges {
			t.Fatalf("snapshot disagrees with info: %d/%d vs %+v", g.NumVertices(), g.NumEdges(), info)
		}

		if bytes.HasPrefix(data, binaryMagic) {
			var enc1 bytes.Buffer
			if err := graph.WriteBinary(&enc1, g); err != nil {
				t.Fatalf("re-encode of accepted binary graph failed: %v", err)
			}
			g2, err := graph.ReadBinary(1, bytes.NewReader(enc1.Bytes()))
			if err != nil {
				t.Fatalf("decode of own encoding failed: %v", err)
			}
			var enc2 bytes.Buffer
			if err := graph.WriteBinary(&enc2, g2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
				t.Fatal("GPLL round trip is not bit-stable")
			}
		}
	})
}
