package registry

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"llpmst/internal/gen"
	"llpmst/internal/graph"
	"llpmst/internal/mst"
)

// corpusGraph draws the i-th graph of the metamorphic corpus: a rotation
// through the generator families so the cache correctness property is
// checked across sparse, dense, scale-free, and geometric morphologies.
func corpusGraph(i int) *graph.CSR {
	seed := int64(100 + i)
	switch i % 5 {
	case 0:
		return gen.ErdosRenyi(1, 150+10*i, 600+40*i, gen.WeightUniform, seed)
	case 1:
		return gen.RMAT(1, 7, 8, gen.WeightUniform, seed)
	case 2:
		return gen.RoadNetwork(1, 10, 10, 0.3, seed)
	case 3:
		return gen.Geometric(1, 120, gen.ConnectivityRadius(120), seed)
	default:
		return gen.PreferentialAttachment(1, 150, 3, seed)
	}
}

// permuteEdges rebuilds g with its edge list in a shuffled order. The graph
// is the same abstract weighted graph, but every canonical edge id changes,
// so any accidental reuse of version-1 state for version 2 produces forests
// that fail the fresh oracle.
func permuteEdges(t *testing.T, g *graph.CSR, seed int64) *graph.CSR {
	t.Helper()
	edges := append([]graph.Edge(nil), g.Edges()...)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	perm, err := graph.FromEdges(1, g.NumVertices(), edges)
	if err != nil {
		t.Fatalf("permuted rebuild: %v", err)
	}
	return perm
}

// TestMetamorphicCacheCorrectness is the cache-correctness battery: for
// each corpus graph, register → solve → solve again (cached) → re-register
// an edge-permuted version → solve. Every answer must match the Kruskal
// oracle of the exact graph it was computed for, the cached and fresh
// answers must agree, and the version bump must invalidate the old entry.
func TestMetamorphicCacheCorrectness(t *testing.T) {
	graphs := 20
	if testing.Short() {
		graphs = 8
	}
	sol := algSolver(t)
	for i := 0; i < graphs; i++ {
		i := i
		t.Run(fmt.Sprintf("graph%02d", i), func(t *testing.T) {
			r := New(Config{Solver: sol})
			g := corpusGraph(i)
			oracle := mst.Kruskal(g)
			id := fmt.Sprintf("g%02d", i)

			if _, err := r.Put(id, g); err != nil {
				t.Fatal(err)
			}
			fresh, err := r.Solve(context.Background(), "t", id, 0, SolveOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !fresh.Forest.Equal(oracle) {
				t.Fatalf("fresh solve differs from oracle: %v vs %v", fresh.Forest, oracle)
			}
			cached, err := r.Solve(context.Background(), "t", id, 0, SolveOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !cached.Cached {
				t.Fatal("second solve missed the cache")
			}
			if !cached.Forest.Equal(oracle) {
				t.Fatalf("cached solve differs from oracle: %v vs %v", cached.Forest, oracle)
			}

			// Metamorphic step: same abstract graph, permuted edge order.
			perm := permuteEdges(t, g, int64(1000+i))
			permOracle := mst.Kruskal(perm)
			info, err := r.Put(id, perm)
			if err != nil {
				t.Fatal(err)
			}
			if info.Version != 2 {
				t.Fatalf("version after re-register = %d, want 2", info.Version)
			}

			after, err := r.Solve(context.Background(), "t", id, 0, SolveOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if after.Cached {
				t.Fatal("version bump did not invalidate the cache entry")
			}
			if after.Version != 2 {
				t.Fatalf("solve after re-register answered version %d", after.Version)
			}
			if !after.Forest.Equal(permOracle) {
				t.Fatalf("post-permutation solve differs from its oracle: %v vs %v", after.Forest, permOracle)
			}

			// The permutation preserved the abstract MSF: same edge count,
			// same total weight up to float accumulation order.
			if len(after.Forest.EdgeIDs) != len(oracle.EdgeIDs) {
				t.Fatalf("forest size changed under permutation: %d vs %d", len(after.Forest.EdgeIDs), len(oracle.EdgeIDs))
			}
			if d := math.Abs(after.Forest.Weight - oracle.Weight); d > 1e-6*math.Max(1, math.Abs(oracle.Weight)) {
				t.Fatalf("forest weight changed under permutation: %g vs %g", after.Forest.Weight, oracle.Weight)
			}

			// The superseded version is gone, not silently remapped.
			if _, err := r.Solve(context.Background(), "t", id, 1, SolveOptions{}); !errors.Is(err, ErrNotFound) {
				t.Fatalf("superseded version still answered: %v", err)
			}
		})
	}
}
