package registry

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"llpmst/internal/graph"
)

// binaryMagic is the on-wire prefix of the compact binary format: the
// little-endian encoding of graph's LLPG magic word reads "GPLL" as raw
// bytes, which is what arrives first on a socket or at the head of a file.
var binaryMagic = []byte("GPLL")

// Decode sniffs r's leading magic and parses either the binary .llpg format
// or DIMACS .gr text into a validated CSR built with the given worker count.
// It is the single ingestion path for the registry and for mstserve uploads,
// so fuzzing Decode covers both.
func Decode(workers int, r io.Reader) (*graph.CSR, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, err := br.Peek(len(binaryMagic))
	if err != nil && len(magic) == 0 {
		return nil, fmt.Errorf("registry: empty graph data: %w", err)
	}
	if bytes.Equal(magic, binaryMagic) {
		return graph.ReadBinary(workers, br)
	}
	return graph.ReadDIMACS(workers, br)
}
