package registry

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"io"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"llpmst/internal/graph"
	"llpmst/internal/mst"
	"llpmst/internal/obs"
	"llpmst/internal/resilient"
)

// Solver answers one minimum-spanning-forest request. *resilient.Runner
// satisfies it; tests substitute counting or failing solvers.
type Solver interface {
	Solve(ctx context.Context, g *graph.CSR) (resilient.Result, error)
}

// Config tunes a Registry. Solver is the only field without a serviceable
// zero value (a Registry built without one still registers graphs; Solve
// returns an error).
type Config struct {
	// Solver executes cache-miss solves (normally the process's shared
	// resilient Runner).
	Solver Solver
	// Workers is the CSR build parallelism for PutData decoding; <= 0 means
	// GOMAXPROCS.
	Workers int
	// MemoryBudgetBytes LRU-bounds the summed resident cost of snapshots
	// (CSR bytes plus the single-worker mst.EstimateScratchBytes a solve of
	// the graph needs). 0 = unbounded.
	MemoryBudgetBytes int64
	// SolveTimeout bounds each underlying solve. The solve runs on a
	// context detached from the requesting client, so this — not the
	// client's patience — is what limits shared work. 0 = unbounded.
	SolveTimeout time.Duration
	// DefaultQuota applies to tenants without a TenantQuotas entry; the
	// zero Quota means unlimited.
	DefaultQuota Quota
	// TenantQuotas overrides DefaultQuota per tenant.
	TenantQuotas map[string]Quota
	// Observer receives the registry's counters (registry.put,
	// registry.cache.hit/miss, registry.solve, registry.singleflight.shared,
	// registry.evict, quota.shed). Nil = no observation.
	Observer obs.Collector
	// Clock overrides time.Now for quota tests.
	Clock func() time.Time
}

// GraphInfo is one snapshot's metadata.
type GraphInfo struct {
	ID       string `json:"id"`
	Version  uint64 `json:"version"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	// Bytes is the snapshot's resident-cost estimate charged against the
	// memory budget.
	Bytes int64 `json:"bytes"`
}

// SolveOptions discriminate cache entries beyond (id, version). Key is an
// opaque caller-chosen string: requests whose option sets must not share a
// cached result use different keys.
type SolveOptions struct {
	Key string
}

// SolveResult is a registry solve answer: the resilient result plus where
// it came from.
type SolveResult struct {
	resilient.Result
	GraphID  string
	Version  uint64
	Vertices int
	Edges    int
	// Cached reports the answer came from the completed-result cache.
	Cached bool
	// Shared reports the request joined another request's in-flight solve.
	Shared bool
}

// Stats is a snapshot of a Registry's lifetime counters and residency.
type Stats struct {
	Graphs        int   // resident snapshots
	ResidentBytes int64 // summed snapshot cost
	CachedResults int   // completed results currently cached
	Puts          int64 // registrations (new ids + version bumps)
	Hits          int64 // solves answered from the result cache
	Misses        int64 // solves that launched an underlying solve
	Shared        int64 // solves that joined an in-flight solve
	Solves        int64 // underlying solver calls
	Evictions     int64 // snapshots evicted by the memory bound
	QuotaShed     int64 // solves rejected by per-tenant quotas
}

// entry is one id's resident snapshot.
type entry struct {
	id      string
	version uint64
	g       *graph.CSR
	bytes   int64
	// pins counts in-flight solves reading g; a pinned entry is never
	// evicted.
	pins int
	elem *list.Element
}

// resultKey identifies one cacheable solve.
type resultKey struct {
	id      string
	version uint64
	opts    string
}

// flight is one in-progress underlying solve that any number of requests
// wait on.
type flight struct {
	done            chan struct{}
	res             resilient.Result
	err             error
	vertices, edges int
	// leaderTrace is the trace ID of the request that launched this flight
	// (zero when the leader was un-traced). Waiters that join the flight
	// record it on their own span, so the two traces are joinable.
	leaderTrace obs.TraceID
}

// Registry is the named-graph store. Safe for concurrent use; one Registry
// serves a whole process.
type Registry struct {
	cfg Config
	col obs.Collector
	qts *quotas

	mu      sync.Mutex
	graphs  map[string]*entry
	lru     *list.List // *entry, front = most recently used
	bytes   int64
	results map[resultKey]SolveResult
	flights map[resultKey]*flight

	// wg tracks flight goroutines; Drain waits on it.
	wg sync.WaitGroup

	puts, hits, misses, shared   atomic.Int64
	solves, evictions, quotaShed atomic.Int64
}

// New builds a Registry from cfg.
func New(cfg Config) *Registry {
	now := cfg.Clock
	if now == nil {
		now = time.Now
	}
	return &Registry{
		cfg:     cfg,
		col:     obs.Or(cfg.Observer),
		qts:     newQuotas(cfg.DefaultQuota, cfg.TenantQuotas, now),
		graphs:  make(map[string]*entry),
		lru:     list.New(),
		results: make(map[resultKey]SolveResult),
		flights: make(map[resultKey]*flight),
	}
}

// idPattern bounds graph ids to URL-path-safe names.
var idPattern = regexp.MustCompile(`^[A-Za-z0-9._-]{1,128}$`)

// ValidateID reports whether id is an acceptable graph name.
func ValidateID(id string) error {
	if !idPattern.MatchString(id) {
		return fmt.Errorf("registry: bad graph id %q (want 1-128 chars of [A-Za-z0-9._-])", id)
	}
	return nil
}

// snapshotBytes prices one resident snapshot: the CSR's own arrays (edge
// records plus both arc directions plus offsets) and the single-worker
// scratch estimate a solve of it needs — the graph is resident precisely so
// it can be solved.
func snapshotBytes(g *graph.CSR) int64 {
	n, m := int64(g.NumVertices()), int64(g.NumEdges())
	const edgeRec = 12 // U, V uint32 + W float32
	const arcRec = 12  // target uint32 + weight float32 + eid uint32
	csr := m*edgeRec + 2*m*arcRec + (n+1)*8
	return csr + mst.EstimateScratchBytes(int(n), int(m), 1)
}

// Put registers g under id, superseding any previous version: the returned
// version is strictly greater than every earlier one for this id, and every
// cached result of the previous version is invalidated before Put returns.
// Other ids' cache entries are untouched.
func (r *Registry) Put(id string, g *graph.CSR) (GraphInfo, error) {
	if err := ValidateID(id); err != nil {
		return GraphInfo{}, err
	}
	if g == nil {
		return GraphInfo{}, errors.New("registry: nil graph")
	}
	cost := snapshotBytes(g)
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.graphs[id]
	if e == nil {
		e = &entry{id: id}
		e.elem = r.lru.PushFront(e)
		r.graphs[id] = e
	} else {
		r.bytes -= e.bytes
		r.lru.MoveToFront(e.elem)
		r.invalidateLocked(id)
	}
	e.version++
	e.g = g
	e.bytes = cost
	r.bytes += cost
	r.puts.Add(1)
	r.col.Count(obs.CtrRegistryPut, 1)
	r.evictLocked(e)
	return GraphInfo{ID: id, Version: e.version, Vertices: g.NumVertices(), Edges: g.NumEdges(), Bytes: cost}, nil
}

// PutData decodes data (binary .llpg or DIMACS .gr, sniffed by magic) and
// registers it under id. A decode failure registers nothing: a Get after a
// failed PutData misses exactly as before the call.
func (r *Registry) PutData(id string, data io.Reader) (GraphInfo, error) {
	if err := ValidateID(id); err != nil {
		return GraphInfo{}, err
	}
	g, err := Decode(r.cfg.Workers, data)
	if err != nil {
		return GraphInfo{}, err
	}
	return r.Put(id, g)
}

// Get returns id's current snapshot metadata.
func (r *Registry) Get(id string) (GraphInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.graphs[id]
	if e == nil {
		return GraphInfo{}, &NotFoundError{ID: id}
	}
	return e.info(), nil
}

// Snapshot returns id's resident CSR. version 0 means latest; a non-zero
// version must match the resident one (older snapshots are not retained).
func (r *Registry) Snapshot(id string, version uint64) (*graph.CSR, GraphInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.graphs[id]
	if e == nil {
		return nil, GraphInfo{}, &NotFoundError{ID: id}
	}
	if version != 0 && version != e.version {
		return nil, GraphInfo{}, &NotFoundError{ID: id, Version: version}
	}
	return e.g, e.info(), nil
}

// List returns every resident snapshot's metadata, sorted by id.
func (r *Registry) List() []GraphInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]GraphInfo, 0, len(r.graphs))
	for _, e := range r.graphs {
		out = append(out, e.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Delete removes id's snapshot and cached results. In-flight solves of it
// finish normally (they hold their own reference) but their results are not
// cached.
func (r *Registry) Delete(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.graphs[id]
	if e == nil {
		return &NotFoundError{ID: id}
	}
	r.removeLocked(e)
	return nil
}

func (e *entry) info() GraphInfo {
	return GraphInfo{ID: e.id, Version: e.version, Vertices: e.g.NumVertices(), Edges: e.g.NumEdges(), Bytes: e.bytes}
}

// invalidateLocked drops every cached result for id, any version.
func (r *Registry) invalidateLocked(id string) {
	for k := range r.results {
		if k.id == id {
			delete(r.results, k)
		}
	}
}

// removeLocked unregisters e entirely.
func (r *Registry) removeLocked(e *entry) {
	delete(r.graphs, e.id)
	r.lru.Remove(e.elem)
	r.bytes -= e.bytes
	r.invalidateLocked(e.id)
}

// evictLocked enforces the memory budget: least-recently-used first,
// skipping pinned entries and keep (the snapshot the caller just touched —
// a Put must never evict its own graph, however large). When everything
// else is pinned the registry runs over budget rather than evicting under a
// live solve.
func (r *Registry) evictLocked(keep *entry) {
	if r.cfg.MemoryBudgetBytes <= 0 {
		return
	}
	for r.bytes > r.cfg.MemoryBudgetBytes {
		var victim *entry
		for el := r.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*entry)
			if e != keep && e.pins == 0 {
				victim = e
				break
			}
		}
		if victim == nil {
			return
		}
		r.removeLocked(victim)
		r.evictions.Add(1)
		r.col.Count(obs.CtrRegistryEvict, 1)
	}
}

// Solve answers one request for graph id at the given version (0 = latest)
// on behalf of tenant. The order of gates: quota (typed *QuotaError),
// lookup (typed *NotFoundError), result cache, singleflight join, and only
// then an underlying Solver call. A caller whose ctx expires while waiting
// gets ctx's error; the shared solve keeps running for the other waiters
// and its result is cached.
//
// When ctx carries a trace ref (obs.ContextWithTrace), the gates are
// recorded as a "registry.solve" span annotated cache=hit|miss|shared; a
// waiter that joins another request's flight records the leader's trace ID,
// and a leader's flight runs under a "registry.flight" child span that the
// underlying resilient solve parents to.
func (r *Registry) Solve(ctx context.Context, tenant, id string, version uint64, opts SolveOptions) (SolveResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sp := obs.TraceRefFromContext(ctx).Start("registry.solve")
	if sp.Valid() {
		sp.SetAttr("graph", id)
		if tenant != "" {
			sp.SetAttr("tenant", tenant)
		}
		// Children (the flight, and through it the resilient pipeline) hang
		// below this span, not the HTTP root.
		ctx = obs.ContextWithTrace(ctx, sp.Ref())
	}
	res, err := r.solveTraced(ctx, sp, tenant, id, version, opts)
	if sp.Valid() {
		switch {
		case err == nil:
			switch {
			case res.Cached:
				sp.SetAttr("cache", "hit")
			case res.Shared:
				sp.SetAttr("cache", "shared")
			default:
				sp.SetAttr("cache", "miss")
			}
			sp.SetInt("version", int64(res.Version))
		case errors.As(err, new(*QuotaError)):
			sp.SetAttr("outcome", "quota-shed")
		case errors.As(err, new(*NotFoundError)):
			sp.SetAttr("outcome", "not-found")
		case ctx.Err() != nil && errors.Is(err, ctx.Err()):
			sp.SetAttr("outcome", "caller-gone")
		default:
			sp.SetErrorString(err.Error())
		}
	}
	sp.End()
	return res, err
}

func (r *Registry) solveTraced(ctx context.Context, sp obs.Span, tenant, id string, version uint64, opts SolveOptions) (SolveResult, error) {
	if retry, ok := r.qts.take(tenant); !ok {
		r.quotaShed.Add(1)
		r.col.Count(obs.CtrQuotaShed, 1)
		return SolveResult{}, &QuotaError{Tenant: tenant, RetryAfter: retry}
	}

	r.mu.Lock()
	e := r.graphs[id]
	if e == nil {
		r.mu.Unlock()
		return SolveResult{}, &NotFoundError{ID: id}
	}
	if version == 0 {
		version = e.version
	}
	if version != e.version {
		r.mu.Unlock()
		return SolveResult{}, &NotFoundError{ID: id, Version: version}
	}
	r.lru.MoveToFront(e.elem)
	k := resultKey{id: id, version: version, opts: opts.Key}
	if cached, ok := r.results[k]; ok {
		r.hits.Add(1)
		r.col.Count(obs.CtrRegistryHit, 1)
		cached.Cached = true
		r.mu.Unlock()
		return cached, nil
	}
	f := r.flights[k]
	joined := f != nil
	if joined {
		r.shared.Add(1)
		r.col.Count(obs.CtrRegistryShared, 1)
		// Link this waiter's span to the leader's trace so a slow shared
		// solve is attributable from either side.
		if sp.Valid() && !f.leaderTrace.IsZero() {
			sp.SetAttr("leader_trace", f.leaderTrace.String())
		}
	} else {
		if r.cfg.Solver == nil {
			r.mu.Unlock()
			return SolveResult{}, errors.New("registry: no solver configured")
		}
		f = &flight{done: make(chan struct{}), vertices: e.g.NumVertices(), edges: e.g.NumEdges(), leaderTrace: sp.TraceID()}
		r.flights[k] = f
		e.pins++
		r.misses.Add(1)
		r.col.Count(obs.CtrRegistryMiss, 1)
		r.solves.Add(1)
		r.col.Count(obs.CtrRegistrySolve, 1)
		g := e.g
		r.wg.Add(1)
		go r.runFlight(ctx, g, e, k, f)
	}
	r.mu.Unlock()

	select {
	case <-f.done:
		if f.err != nil {
			return SolveResult{}, f.err
		}
		return SolveResult{
			Result: f.res, GraphID: id, Version: version,
			Vertices: f.vertices, Edges: f.edges, Shared: joined,
		}, nil
	case <-ctx.Done():
		return SolveResult{}, ctx.Err()
	}
}

// runFlight executes one underlying solve on a context detached from the
// triggering request (values flow, cancellation does not), bounded only by
// the registry's SolveTimeout, then publishes the outcome to every waiter
// and into the result cache — unless the snapshot was superseded or
// deleted while the solve ran, in which case the stale result is served to
// the current waiters but not cached.
func (r *Registry) runFlight(ctx context.Context, g *graph.CSR, e *entry, k resultKey, f *flight) {
	defer r.wg.Done()
	sctx := context.WithoutCancel(ctx)
	if r.cfg.SolveTimeout > 0 {
		var cancel context.CancelFunc
		sctx, cancel = context.WithTimeout(sctx, r.cfg.SolveTimeout)
		defer cancel()
	}
	// WithoutCancel preserved values, so the leader's trace ref (and any
	// per-request collector) flows into the detached solve.
	fsp := obs.TraceRefFromContext(sctx).Start("registry.flight")
	if fsp.Valid() {
		fsp.SetAttr("graph", k.id)
		sctx = obs.ContextWithTrace(sctx, fsp.Ref())
	}
	res, err := r.cfg.Solver.Solve(sctx, g)
	if err != nil && !errors.Is(err, resilient.ErrOverloaded) {
		fsp.SetErrorString(err.Error())
	}
	fsp.End()
	f.res, f.err = res, err

	r.mu.Lock()
	e.pins--
	delete(r.flights, k)
	if err == nil {
		if cur := r.graphs[k.id]; cur == e && e.version == k.version {
			r.results[k] = SolveResult{
				Result: res, GraphID: k.id, Version: k.version,
				Vertices: f.vertices, Edges: f.edges,
			}
		}
	}
	// The pin just dropped; if a Put during the solve left us over budget,
	// settle it now.
	r.evictLocked(nil)
	r.mu.Unlock()
	close(f.done)
}

// Drain blocks until every in-flight solve goroutine has exited, or until
// ctx expires.
func (r *Registry) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats returns a snapshot of the registry's counters and residency.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	graphs, bytes, cached := len(r.graphs), r.bytes, len(r.results)
	r.mu.Unlock()
	return Stats{
		Graphs:        graphs,
		ResidentBytes: bytes,
		CachedResults: cached,
		Puts:          r.puts.Load(),
		Hits:          r.hits.Load(),
		Misses:        r.misses.Load(),
		Shared:        r.shared.Load(),
		Solves:        r.solves.Load(),
		Evictions:     r.evictions.Load(),
		QuotaShed:     r.quotaShed.Load(),
	}
}
