package registry

import (
	"context"
	"sync"
	"testing"

	"llpmst/internal/obs"
)

// TestSingleflightLinksWaiterTraceToLeader checks the trace joinability
// contract: when a waiter's solve collapses onto another request's
// in-flight solve, the waiter's trace records the leader's trace ID, and
// the leader's trace contains the registry.flight span that did the work.
func TestSingleflightLinksWaiterTraceToLeader(t *testing.T) {
	blocker := &countingSolver{block: make(chan struct{})}
	r := New(Config{Solver: blocker})
	if _, err := r.Put("g", testGraph(7)); err != nil {
		t.Fatal(err)
	}
	st := obs.NewTraceStore(obs.TraceStoreConfig{Capacity: 8, SlowWarmup: 1 << 30})

	solveTraced := func(name string) (obs.TraceID, SolveResult, error) {
		root := st.StartTrace(name, obs.TraceID{}, obs.SpanID{}, obs.FlagSampled)
		ctx := obs.ContextWithTrace(context.Background(), root.Ref())
		res, err := r.Solve(ctx, "tenant", "g", 0, SolveOptions{})
		id := root.TraceID()
		root.Finish()
		return id, res, err
	}

	// Leader starts first and parks inside the blocked solver.
	var leaderID obs.TraceID
	var leaderRes SolveResult
	var leaderErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		leaderID, leaderRes, leaderErr = solveTraced("leader")
	}()
	waitFor(t, func() bool { return blocker.calls.Load() == 1 })

	// Waiter joins the same flight, then the solver is released.
	var waiterID obs.TraceID
	var waiterRes SolveResult
	var waiterErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		waiterID, waiterRes, waiterErr = solveTraced("waiter")
	}()
	waitFor(t, func() bool { return r.Stats().Shared >= 1 })
	close(blocker.block)
	wg.Wait()

	if leaderErr != nil || waiterErr != nil {
		t.Fatalf("solve errors: leader=%v waiter=%v", leaderErr, waiterErr)
	}
	if !waiterRes.Shared && !leaderRes.Shared {
		t.Fatalf("no solve was marked shared: leader=%+v waiter=%+v", leaderRes, waiterRes)
	}
	// The roles can land either way (both goroutines race to create the
	// flight); identify them by the Shared bit.
	sharedID, ownID := waiterID, leaderID
	if leaderRes.Shared {
		sharedID, ownID = leaderID, waiterID
	}

	shared, ok := st.Get(sharedID)
	if !ok {
		t.Fatalf("waiter trace not kept")
	}
	var link string
	for _, sp := range shared.Spans {
		if sp.Name == "registry.solve" {
			if v, ok := sp.Attrs["leader_trace"].(string); ok {
				link = v
			}
		}
	}
	if link != ownID.String() {
		t.Fatalf("waiter's leader_trace = %q, want leader's trace ID %q", link, ownID.String())
	}

	own, ok := st.Get(ownID)
	if !ok {
		t.Fatalf("leader trace not kept")
	}
	var flightSpans int
	for _, sp := range own.Spans {
		if sp.Name == "registry.flight" {
			flightSpans++
		}
	}
	if flightSpans != 1 {
		t.Fatalf("leader trace has %d registry.flight spans, want 1 (spans: %+v)", flightSpans, own.Spans)
	}
}
