package registry

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"llpmst/internal/gen"
	"llpmst/internal/resilient"
)

// The hot-graph benchmarks quantify what the result cache buys: the same
// registered graph solved repeatedly from parallel clients, once with the
// cache doing its job and once with every request forced to miss (a unique
// options key per request). The ratio is the EXPERIMENTS.md "hot graph"
// table.
func benchRegistry(b *testing.B) (*Registry, *resilient.Runner) {
	b.Helper()
	runner := resilient.New(resilient.Config{})
	r := New(Config{Solver: runner})
	g := gen.ErdosRenyi(0, 50_000, 200_000, gen.WeightUniform, 42)
	if _, err := r.Put("hot", g); err != nil {
		b.Fatal(err)
	}
	return r, runner
}

func BenchmarkHotGraphSolveCached(b *testing.B) {
	r, runner := benchRegistry(b)
	defer runner.Drain(context.Background())
	// Warm the cache so every measured request is a hit.
	if _, err := r.Solve(context.Background(), "bench", "hot", 0, SolveOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := r.Solve(context.Background(), "bench", "hot", 0, SolveOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkHotGraphSolveUncached(b *testing.B) {
	r, runner := benchRegistry(b)
	defer runner.Drain(context.Background())
	var key atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			opts := SolveOptions{Key: fmt.Sprintf("k%d", key.Add(1))}
			if _, err := r.Solve(context.Background(), "bench", "hot", 0, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
