package registry

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"llpmst/internal/gen"
	"llpmst/internal/graph"
	"llpmst/internal/mst"
	"llpmst/internal/resilient"
)

// funcSolver adapts a function to the Solver interface.
type funcSolver func(ctx context.Context, g *graph.CSR) (resilient.Result, error)

func (f funcSolver) Solve(ctx context.Context, g *graph.CSR) (resilient.Result, error) {
	return f(ctx, g)
}

// algSolver solves with a real parallel algorithm and structurally checks
// the forest, mimicking what the resilient runner guarantees.
func algSolver(t *testing.T) Solver {
	return funcSolver(func(ctx context.Context, g *graph.CSR) (resilient.Result, error) {
		f, err := mst.RunCtx(ctx, mst.AlgLLPBoruvka, g, mst.Options{Workers: 2})
		if err != nil {
			return resilient.Result{}, err
		}
		if err := mst.CheckForest(g, f); err != nil {
			t.Errorf("solver produced unsound forest: %v", err)
			return resilient.Result{}, err
		}
		return resilient.Result{Forest: f, Algorithm: mst.AlgLLPBoruvka}, nil
	})
}

// countingSolver counts underlying calls and, when block is non-nil, parks
// every solve until the channel is closed.
type countingSolver struct {
	calls atomic.Int64
	block chan struct{}
}

func (s *countingSolver) Solve(ctx context.Context, g *graph.CSR) (resilient.Result, error) {
	s.calls.Add(1)
	if s.block != nil {
		select {
		case <-s.block:
		case <-ctx.Done():
			return resilient.Result{}, ctx.Err()
		}
	}
	f := mst.Kruskal(g)
	return resilient.Result{Forest: f, Algorithm: mst.AlgKruskal}, nil
}

func testGraph(seed int64) *graph.CSR {
	return gen.ErdosRenyi(1, 120, 480, gen.WeightUniform, seed)
}

func TestPutGetVersioningAndDelete(t *testing.T) {
	r := New(Config{Solver: algSolver(t)})
	g1, g2 := testGraph(1), testGraph(2)

	info, err := r.Put("roads", g1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.Vertices != g1.NumVertices() || info.Edges != g1.NumEdges() {
		t.Fatalf("bad info: %+v", info)
	}
	if info.Bytes <= 0 {
		t.Fatalf("non-positive resident cost: %+v", info)
	}

	got, err := r.Get("roads")
	if err != nil || got != info {
		t.Fatalf("get: %+v, %v (want %+v)", got, err, info)
	}

	// Re-registering bumps the version monotonically.
	info2, err := r.Put("roads", g2)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Version != 2 {
		t.Fatalf("version after re-put = %d, want 2", info2.Version)
	}

	// Snapshot: latest by 0, exact match required otherwise.
	if _, inf, err := r.Snapshot("roads", 0); err != nil || inf.Version != 2 {
		t.Fatalf("snapshot latest: %+v, %v", inf, err)
	}
	if _, _, err := r.Snapshot("roads", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("snapshot of superseded version: err = %v, want ErrNotFound", err)
	}

	if list := r.List(); len(list) != 1 || list[0].ID != "roads" {
		t.Fatalf("list: %+v", list)
	}

	if err := r.Delete("roads"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("roads"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete: %v", err)
	}
	if err := r.Delete("roads"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if st := r.Stats(); st.Graphs != 0 || st.ResidentBytes != 0 {
		t.Fatalf("stats after delete: %+v", st)
	}
}

func TestPutRejectsBadInput(t *testing.T) {
	r := New(Config{})
	if _, err := r.Put("", testGraph(1)); err == nil {
		t.Fatal("empty id accepted")
	}
	if _, err := r.Put("a/b", testGraph(1)); err == nil {
		t.Fatal("slash id accepted")
	}
	if _, err := r.Put("ok", nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	if st := r.Stats(); st.Puts != 0 || st.Graphs != 0 {
		t.Fatalf("failed puts left state: %+v", st)
	}
}

func TestSolveCachesAndInvalidatesOnRePut(t *testing.T) {
	sol := &countingSolver{}
	r := New(Config{Solver: sol})
	g := testGraph(3)
	oracle := mst.Kruskal(g)
	if _, err := r.Put("g", g); err != nil {
		t.Fatal(err)
	}

	res, err := r.Solve(context.Background(), "t1", "g", 0, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached || res.Shared || res.Version != 1 {
		t.Fatalf("first solve flags wrong: %+v", res)
	}
	if res.Forest.Weight != oracle.Weight {
		t.Fatalf("weight %g, want %g", res.Forest.Weight, oracle.Weight)
	}

	res2, err := r.Solve(context.Background(), "t1", "g", 0, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached || res2.Forest.Weight != oracle.Weight {
		t.Fatalf("second solve not served from cache: %+v", res2)
	}
	if got := sol.calls.Load(); got != 1 {
		t.Fatalf("underlying solves = %d, want 1", got)
	}

	// A different options key is a distinct cache entry.
	res3, err := r.Solve(context.Background(), "t1", "g", 0, SolveOptions{Key: "other"})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Cached {
		t.Fatal("distinct options key hit the cache")
	}
	if got := sol.calls.Load(); got != 2 {
		t.Fatalf("underlying solves = %d, want 2", got)
	}

	// Re-registering the same id invalidates its entries...
	if _, err := r.Put("g", testGraph(4)); err != nil {
		t.Fatal(err)
	}
	res4, err := r.Solve(context.Background(), "t1", "g", 0, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res4.Cached || res4.Version != 2 {
		t.Fatalf("solve after re-put served stale: %+v", res4)
	}
	// ...and pinning the old version explicitly now misses.
	if _, err := r.Solve(context.Background(), "t1", "g", 1, SolveOptions{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("solve of superseded version: %v", err)
	}
}

func TestRePutInvalidatesOnlyThatID(t *testing.T) {
	sol := &countingSolver{}
	r := New(Config{Solver: sol})
	for _, id := range []string{"a", "b"} {
		if _, err := r.Put(id, testGraph(5)); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Solve(context.Background(), "t", id, 0, SolveOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Put("a", testGraph(6)); err != nil {
		t.Fatal(err)
	}
	res, err := r.Solve(context.Background(), "t", "b", 0, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("re-put of id a invalidated id b's cache entry")
	}
}

func TestSolveErrorsPropagateAndAreNotCached(t *testing.T) {
	var calls atomic.Int64
	boom := errors.New("boom")
	r := New(Config{Solver: funcSolver(func(context.Context, *graph.CSR) (resilient.Result, error) {
		calls.Add(1)
		return resilient.Result{}, boom
	})})
	if _, err := r.Put("g", testGraph(7)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := r.Solve(context.Background(), "t", "g", 0, SolveOptions{}); !errors.Is(err, boom) {
			t.Fatalf("solve %d: %v", i, err)
		}
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("failed solves must not be cached: %d calls, want 2", got)
	}
	if st := r.Stats(); st.CachedResults != 0 {
		t.Fatalf("error result cached: %+v", st)
	}
}

func TestSolveUnknownGraphAndNilSolver(t *testing.T) {
	r := New(Config{Solver: algSolver(t)})
	if _, err := r.Solve(context.Background(), "t", "nope", 0, SolveOptions{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown graph: %v", err)
	}
	var nf *NotFoundError
	_, err := r.Solve(context.Background(), "t", "nope", 0, SolveOptions{})
	if !errors.As(err, &nf) || nf.ID != "nope" {
		t.Fatalf("not a typed NotFoundError: %v", err)
	}

	r2 := New(Config{})
	if _, err := r2.Put("g", testGraph(8)); err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Solve(context.Background(), "t", "g", 0, SolveOptions{}); err == nil {
		t.Fatal("nil solver did not error")
	}
}

// TestWaiterCancellationDoesNotAbortSharedSolve: a waiter that gives up
// gets its context error, but the detached flight finishes and lands in the
// cache for everyone after it.
func TestWaiterCancellationDoesNotAbortSharedSolve(t *testing.T) {
	sol := &countingSolver{block: make(chan struct{})}
	r := New(Config{Solver: sol})
	if _, err := r.Put("g", testGraph(9)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := r.Solve(ctx, "t", "g", 0, SolveOptions{})
		errc <- err
	}()
	waitFor(t, func() bool { return r.Stats().Misses == 1 })
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: %v", err)
	}

	close(sol.block)
	if err := r.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := r.Solve(context.Background(), "t", "g", 0, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Fatal("flight abandoned by its waiter was not cached")
	}
	if got := sol.calls.Load(); got != 1 {
		t.Fatalf("underlying solves = %d, want 1", got)
	}
}

// TestLRUEvictionNeverEvictsPinnedGraph sets a budget that fits roughly two
// snapshots, pins the oldest with a parked in-flight solve, and registers
// more graphs: eviction must take the least-recently-used unpinned
// snapshots and leave the pinned one resident throughout.
func TestLRUEvictionNeverEvictsPinnedGraph(t *testing.T) {
	sol := &countingSolver{block: make(chan struct{})}
	g := testGraph(10)
	unit := snapshotBytes(g)
	r := New(Config{Solver: sol, MemoryBudgetBytes: 2*unit + unit/2})

	if _, err := r.Put("pinned", g); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := r.Solve(context.Background(), "t", "pinned", 0, SolveOptions{})
		errc <- err
	}()
	waitFor(t, func() bool { return r.Stats().Misses == 1 })

	// Each Put fits two snapshots; "pinned" is always the LRU victim
	// candidate but must be skipped while its solve is parked.
	for _, id := range []string{"b", "c", "d"} {
		if _, err := r.Put(id, testGraph(11)); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Get("pinned"); err != nil {
			t.Fatalf("pinned graph evicted after put %q: %v", id, err)
		}
	}
	st := r.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under memory pressure: %+v", st)
	}
	if st.ResidentBytes > r.cfg.MemoryBudgetBytes+unit {
		t.Fatalf("resident bytes way over budget: %+v", st)
	}
	// "b" and "c" are the unpinned LRU tail; at least one must be gone.
	if _, errB := r.Get("b"); errB == nil {
		if _, errC := r.Get("c"); errC == nil {
			t.Fatal("no unpinned graph was evicted")
		}
	}

	close(sol.block)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if err := r.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// With the pin gone, the next Put may finally evict "pinned".
	if _, err := r.Put("e", testGraph(12)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("pinned"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unpinned LRU graph survived further pressure: %v", err)
	}
}

// TestEvictionDropsCachedResults: an evicted snapshot's cached solves go
// with it, so a later re-register starts cold instead of serving a forest
// for a graph that is no longer the one registered.
func TestEvictionDropsCachedResults(t *testing.T) {
	sol := &countingSolver{}
	g := testGraph(13)
	unit := snapshotBytes(g)
	r := New(Config{Solver: sol, MemoryBudgetBytes: unit + unit/2})
	if _, err := r.Put("a", g); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Solve(context.Background(), "t", "a", 0, SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("b", testGraph(14)); err != nil { // evicts "a"
		t.Fatal(err)
	}
	if _, err := r.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("a still resident: %v", err)
	}
	if st := r.Stats(); st.CachedResults != 0 {
		t.Fatalf("evicted graph left cached results: %+v", st)
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatal("condition not reached within 5s")
}
