package registry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock is an injectable, manually advanced clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func TestQuotaBurstThenRefillBoundary(t *testing.T) {
	clk := newFakeClock()
	q := newQuotas(Quota{Rate: 1, Burst: 2}, nil, clk.now)

	// The burst is available immediately.
	for i := 0; i < 2; i++ {
		if _, ok := q.take("t"); !ok {
			t.Fatalf("burst take %d rejected", i)
		}
	}
	retry, ok := q.take("t")
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry-after %v, want (0, 1s]", retry)
	}

	// 999ms refills 0.999 tokens: still short of one.
	clk.advance(999 * time.Millisecond)
	if retry, ok := q.take("t"); ok {
		t.Fatal("admitted at 0.999 tokens")
	} else if retry <= 0 || retry > 2*time.Millisecond {
		t.Fatalf("boundary retry-after %v, want ~1ms", retry)
	}

	// The final millisecond crosses the boundary.
	clk.advance(time.Millisecond)
	if _, ok := q.take("t"); !ok {
		t.Fatal("rejected with a full token")
	}
	// And the bucket is empty again immediately after.
	if _, ok := q.take("t"); ok {
		t.Fatal("admitted twice off one refilled token")
	}
}

func TestQuotaCapsAtBurstAndDefaultsBurst(t *testing.T) {
	clk := newFakeClock()
	q := newQuotas(Quota{Rate: 10, Burst: 3}, nil, clk.now)
	for i := 0; i < 3; i++ {
		if _, ok := q.take("t"); !ok {
			t.Fatalf("burst take %d rejected", i)
		}
	}
	// An hour idle refills to the cap, not rate*3600.
	clk.advance(time.Hour)
	admitted := 0
	for {
		if _, ok := q.take("t"); !ok {
			break
		}
		admitted++
		if admitted > 10 {
			break
		}
	}
	if admitted != 3 {
		t.Fatalf("admitted %d after long idle, want burst cap 3", admitted)
	}

	// Burst <= 0 defaults to max(1, rate).
	if got := (Quota{Rate: 5}).normalize().Burst; got != 5 {
		t.Fatalf("default burst %g, want 5", got)
	}
	if got := (Quota{Rate: 0.2}).normalize().Burst; got != 1 {
		t.Fatalf("default burst %g, want 1", got)
	}
}

func TestQuotaTenantsAreIsolated(t *testing.T) {
	clk := newFakeClock()
	sol := &countingSolver{}
	r := New(Config{
		Solver:       sol,
		DefaultQuota: Quota{Rate: 1, Burst: 1},
		TenantQuotas: map[string]Quota{"vip": {Rate: 1000, Burst: 1000}, "free": {}},
		Clock:        clk.now,
	})
	if _, err := r.Put("g", testGraph(20)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Tenant A burns its single token...
	if _, err := r.Solve(ctx, "a", "g", 0, SolveOptions{}); err != nil {
		t.Fatal(err)
	}
	_, err := r.Solve(ctx, "a", "g", 0, SolveOptions{})
	var qe *QuotaError
	if !errors.As(err, &qe) || !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("want typed QuotaError, got %v", err)
	}
	if qe.Tenant != "a" || qe.RetryAfter <= 0 {
		t.Fatalf("quota error fields: %+v", qe)
	}

	// ...without touching tenant B, the vip override, or the unlimited
	// "free" override (zero per-tenant quota = no limit).
	if _, err := r.Solve(ctx, "b", "g", 0, SolveOptions{}); err != nil {
		t.Fatalf("tenant b rejected after a's exhaustion: %v", err)
	}
	for i := 0; i < 50; i++ {
		if _, err := r.Solve(ctx, "vip", "g", 0, SolveOptions{}); err != nil {
			t.Fatalf("vip solve %d: %v", i, err)
		}
		if _, err := r.Solve(ctx, "free", "g", 0, SolveOptions{}); err != nil {
			t.Fatalf("free solve %d: %v", i, err)
		}
	}
	if st := r.Stats(); st.QuotaShed != 1 {
		t.Fatalf("quota shed count %d, want 1", st.QuotaShed)
	}

	// A quota rejection never reaches the solver (the one underlying call
	// belongs to the very first, admitted solve).
	if got := sol.calls.Load(); got != 1 {
		t.Fatalf("underlying solves = %d, want 1", got)
	}
}
