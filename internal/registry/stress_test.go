package registry

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"llpmst/internal/mst"
	"llpmst/internal/obs"
)

// TestSingleflightCollapses500ConcurrentSolves is the hot-graph acceptance
// property: 500 goroutines racing solves of the same (id, version) perform
// exactly one underlying solve — counter-verified through obs — return
// identical forests, and leak no goroutines. The solver parks until every
// racer has either launched the flight or joined it, so the collapse is
// exercised at full width, not just whatever slice of the 500 happened to
// overlap.
func TestSingleflightCollapses500ConcurrentSolves(t *testing.T) {
	const racers = 500
	before := runtime.NumGoroutine()

	rec := obs.NewRecording()
	sol := &countingSolver{block: make(chan struct{})}
	r := New(Config{Solver: sol, Observer: rec})
	g := testGraph(30)
	oracle := mst.Kruskal(g)
	if _, err := r.Put("hot", g); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	results := make([]SolveResult, racers)
	errs := make([]error, racers)
	start := make(chan struct{})
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i], errs[i] = r.Solve(context.Background(), "t", "hot", 0, SolveOptions{})
		}(i)
	}
	close(start)

	// Hold the solver parked until all 500 are accounted for as the one
	// miss plus 499 joiners, then let the single flight finish.
	waitFor(t, func() bool {
		st := r.Stats()
		return st.Misses+st.Shared == racers
	})
	close(sol.block)
	wg.Wait()
	if err := r.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	leaders := 0
	for i := 0; i < racers; i++ {
		if errs[i] != nil {
			t.Fatalf("racer %d: %v", i, errs[i])
		}
		res := results[i]
		if res.Forest == nil || res.Forest.Weight != oracle.Weight || len(res.Forest.EdgeIDs) != len(oracle.EdgeIDs) {
			t.Fatalf("racer %d forest differs from oracle: %+v", i, res.Forest)
		}
		if res.Cached {
			t.Fatalf("racer %d served from the completed cache while the solver was parked", i)
		}
		if !res.Shared {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d racers launched flights, want exactly 1", leaders)
	}

	if got := sol.calls.Load(); got != 1 {
		t.Fatalf("underlying solver calls = %d, want 1", got)
	}
	// The same property, observed from outside through the obs counters.
	if got := rec.Counter(obs.CtrRegistrySolve); got != 1 {
		t.Fatalf("registry.solve counter = %d, want 1", got)
	}
	if got := rec.Counter(obs.CtrRegistryMiss); got != 1 {
		t.Fatalf("registry.cache.miss counter = %d, want 1", got)
	}
	if got := rec.Counter(obs.CtrRegistryShared); got != racers-1 {
		t.Fatalf("registry.singleflight.shared counter = %d, want %d", got, racers-1)
	}

	// A straggler arriving after the flight completed is a plain cache hit.
	res, err := r.Solve(context.Background(), "t", "hot", 0, SolveOptions{})
	if err != nil || !res.Cached {
		t.Fatalf("post-race solve: %+v, %v", res, err)
	}
	if got := rec.Counter(obs.CtrRegistryHit); got != 1 {
		t.Fatalf("registry.cache.hit counter = %d, want 1", got)
	}

	// No goroutine leaks: the count settles back to (about) the pre-run
	// level once the racers and the flight are done.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+3 {
			return
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
