package registry

import (
	"errors"
	"fmt"
	"time"
)

// ErrNotFound is the sentinel every missing-graph lookup matches:
// errors.Is(err, ErrNotFound) is true for any *NotFoundError. Callers map it
// to HTTP 404.
var ErrNotFound = errors.New("registry: graph not found")

// ErrQuotaExceeded is the sentinel every per-tenant quota rejection matches:
// errors.Is(err, ErrQuotaExceeded) is true for any *QuotaError. Callers map
// it to HTTP 429 with a Retry-After header.
var ErrQuotaExceeded = errors.New("registry: tenant quota exceeded")

// NotFoundError is the typed miss a lookup returns. Version is 0 when the id
// itself is unknown, and the requested version when the id exists but that
// snapshot is gone (superseded by a later Put, or evicted by the LRU bound).
type NotFoundError struct {
	ID      string
	Version uint64
}

// Error describes the miss.
func (e *NotFoundError) Error() string {
	if e.Version != 0 {
		return fmt.Sprintf("registry: graph %q version %d not resident (superseded or evicted)", e.ID, e.Version)
	}
	return fmt.Sprintf("registry: graph %q not found", e.ID)
}

// Is makes errors.Is(err, ErrNotFound) match.
func (e *NotFoundError) Is(target error) bool { return target == ErrNotFound }

// QuotaError is the typed rejection a tenant receives when its token bucket
// is empty. It unwraps to ErrQuotaExceeded.
type QuotaError struct {
	// Tenant is the rejected tenant's identity.
	Tenant string
	// RetryAfter is how long until the bucket refills enough for one
	// request; HTTP front-ends round it up into a Retry-After header.
	RetryAfter time.Duration
}

// Error describes the rejection.
func (e *QuotaError) Error() string {
	return fmt.Sprintf("registry: tenant %q over quota, retry in %v", e.Tenant, e.RetryAfter)
}

// Is makes errors.Is(err, ErrQuotaExceeded) match.
func (e *QuotaError) Is(target error) bool { return target == ErrQuotaExceeded }
