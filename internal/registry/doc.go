// Package registry holds named, preprocessed graphs resident in memory so
// that serving a hot graph costs one solve no matter how many concurrent
// clients ask for it.
//
// Three mechanisms stack:
//
//   - Snapshots: each Put stores an immutable CSR under a (id, version)
//     pair with a monotonically increasing version per id. Only the latest
//     version stays resident; superseded snapshots — and their cached
//     results — vanish atomically with the Put that replaced them. Total
//     resident bytes are LRU-bounded: when a Put pushes the registry over
//     its memory budget, the least-recently-used unpinned snapshots are
//     evicted (a snapshot with an in-flight solve is pinned and never
//     evicted under it).
//   - Result cache + singleflight: Solve is keyed by (id, version, options
//     key). A completed solve is cached until its version is superseded or
//     its snapshot evicted; concurrent misses for the same key collapse
//     into one underlying Solver call whose result every waiter shares.
//     The underlying solve runs on a detached context, so one impatient
//     client cancelling cannot abort the work the other waiters still
//     want.
//   - Quotas: every Solve first spends a token from its tenant's bucket.
//     An empty bucket rejects with a typed *QuotaError (HTTP 429) without
//     touching the solver, so one tenant's flood sheds at that tenant's
//     limit instead of consuming the global admission gate.
package registry
