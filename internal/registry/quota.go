package registry

import (
	"math"
	"sync"
	"time"
)

// Quota is one tenant's token-bucket allowance. Rate is the steady-state
// refill in requests per second; Burst is the bucket capacity (how far a
// tenant may briefly exceed the rate). The zero Quota means "unlimited".
type Quota struct {
	Rate  float64
	Burst float64
}

func (q Quota) limited() bool { return q.Rate > 0 }

// normalize fills the burst default: at least one request, and never below
// the per-second rate (a burst smaller than the rate would throttle below
// the configured steady state).
func (q Quota) normalize() Quota {
	if q.Burst < 1 {
		q.Burst = math.Max(1, q.Rate)
	}
	return q
}

// bucket is one tenant's live token bucket. Buckets start full so a new
// tenant gets its burst immediately.
type bucket struct {
	tokens float64
	last   time.Time
}

// quotas owns every tenant's bucket under one mutex; quota checks are a
// handful of float ops, so a single lock is not a bottleneck next to a
// solve.
type quotas struct {
	def     Quota
	perTen  map[string]Quota
	now     func() time.Time
	mu      sync.Mutex
	buckets map[string]*bucket
}

func newQuotas(def Quota, perTenant map[string]Quota, now func() time.Time) *quotas {
	q := &quotas{def: def.normalize(), now: now, buckets: make(map[string]*bucket)}
	if len(perTenant) > 0 {
		q.perTen = make(map[string]Quota, len(perTenant))
		for t, quo := range perTenant {
			q.perTen[t] = quo.normalize()
		}
	}
	return q
}

// limitFor resolves the tenant's quota: an explicit per-tenant entry wins,
// else the default.
func (q *quotas) limitFor(tenant string) Quota {
	if quo, ok := q.perTen[tenant]; ok {
		return quo
	}
	return q.def
}

// take spends one token from tenant's bucket. On rejection it returns the
// time until the bucket holds a full token again.
func (q *quotas) take(tenant string) (retryAfter time.Duration, ok bool) {
	limit := q.limitFor(tenant)
	if !limit.limited() {
		return 0, true
	}
	now := q.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: limit.Burst, last: now}
		q.buckets[tenant] = b
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens = math.Min(limit.Burst, b.tokens+limit.Rate*dt.Seconds())
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	need := (1 - b.tokens) / limit.Rate
	return time.Duration(need * float64(time.Second)), false
}
