// Package sched provides Galois-style data-driven schedulers: workers pull
// items from a concurrent work bag, process them, and push newly discovered
// work back, until global quiescence. The paper's LLP-Prim runs on exactly
// this kind of runtime ("We use the Galois Library as our underlying runtime
// framework", §VII) — its R set is an unordered bag whose elements "can be
// explored in parallel" in any order.
//
// # Schedulers
//
// Two schedulers are provided:
//
//   - ForEachAsync: unordered, per-worker LIFO queues with work stealing —
//     the Galois do_all/for_each analogue.
//   - ForEachOrdered: priority-level-synchronous — the OBIM
//     (ordered-by-integer-metric) analogue, processing the minimum-priority
//     level in parallel before moving on.
//
// Each has a context-aware variant (ForEachAsyncCtx, ForEachOrderedCtx)
// that polls for cancellation at work-item granularity and returns
// context.Context's error when the run is abandoned with work left in the
// bag, and an observed variant (ForEachAsyncObs, ForEachOrderedObs) that
// additionally reports scheduler traffic — pushes, pops, steals, queue
// depth — to an obs.Collector. Workers accumulate counts locally and flush
// once at exit, so observation does not perturb the schedule.
//
// # Reusable bags
//
// The one-shot entry points allocate their queues per call. A caller that
// drives the scheduler repeatedly (the per-component loop of LLP-Prim's
// async variant, a server answering repeated queries) instead keeps a
// Bag[T] and calls its ForEachObs method: queue and stack storage, the
// panic box, and the single-worker path's closures all live in the Bag and
// are reused, so a warm Bag runs without allocating. A Bag is one run's
// state — never share one across concurrent runs. mst.Workspace embeds a
// Bag per workspace for exactly this purpose.
//
// # Failure containment
//
// A panic in process stops the run: the first panic is captured as a
// *par.PanicError, every other worker exits cleanly at its next item
// boundary, and the error is surfaced once all workers have joined — the
// plain entry points re-raise it, the Ctx/Obs variants return it. Either
// way no goroutine leaks and no pushed work is silently dropped without
// the caller learning the run was aborted.
package sched
