package sched

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"llpmst/internal/obs"
	"llpmst/internal/par"
)

// ForEachAsync processes the initial items and everything pushed during
// processing, on p workers, in no particular order. process receives the
// item and a push function that may only be called from within that process
// invocation. Each pushed item is processed exactly once. Returns when all
// work has drained (quiescence).
//
// A panic in process stops the run: the first panic is captured as a
// *par.PanicError, every other worker exits cleanly at its next item
// boundary, and the PanicError is re-raised here once all workers have
// joined — so even a crashing caller never leaks goroutines. Use the
// Ctx/Obs variants to receive the panic as an ordinary error instead.
func ForEachAsync[T any](p int, initial []T, process func(item T, push func(T))) {
	var bag Bag[T]
	_, pe := forEachAsync(&bag, nil, p, initial, process, obs.Nop{})
	if pe != nil {
		panic(pe)
	}
}

// ForEachAsyncCtx is ForEachAsync with cooperative cancellation: every
// worker polls ctx at work-item granularity (strided in the hot loop, every
// iteration when idle) and abandons the bag once the context is cancelled.
// Returns nil when the bag drained to quiescence, and ctx's error when the
// run was abandoned with items unprocessed. A collector attached to ctx via
// obs.NewContext is honored.
func ForEachAsyncCtx[T any](ctx context.Context, p int, initial []T, process func(item T, push func(T))) error {
	return ForEachAsyncObs(ctx, p, initial, process, obs.FromContext(ctx))
}

// ForEachAsyncObs is ForEachAsyncCtx reporting scheduler traffic to col:
// CtrSchedPush/CtrSchedPop item totals (initial items count as pushes),
// CtrSchedSteal successful steals, and the maximum per-worker queue depth
// as GaugeQueueDepth. col may be nil.
//
// A panic in process is recovered (reported as CtrSchedPanics), the
// remaining workers exit at their next item boundary, and the first panic
// is returned as a *par.PanicError once all workers have joined. A run that
// both panicked and was cancelled reports the panic.
func ForEachAsyncObs[T any](ctx context.Context, p int, initial []T, process func(item T, push func(T)), col obs.Collector) error {
	var bag Bag[T]
	return bag.ForEachObs(ctx, p, initial, process, col)
}

// Bag is a reusable arena for the async scheduler: the single-worker stack
// and the per-worker steal queues live here and keep their capacity across
// runs, so a caller that drives the scheduler repeatedly (LLP-Prim's bag R
// restarts once per heap fix; mst.Workspace holds one Bag for exactly this)
// pays no per-run queue allocations after the first. The zero value is
// ready to use. A Bag serves one run at a time; the package-level
// ForEachAsync* entry points use a fresh Bag per call and stay safe for
// concurrent use.
type Bag[T any] struct {
	stack  []T
	queues []workQueue[T]

	// Single-worker run state. Living in the Bag (rather than as locals that
	// escape into per-run closures) makes repeated single-worker runs
	// allocation-free: push and runOne are built once and read the current
	// run's process/panics through the receiver.
	process func(item T, push func(T))
	push    func(T)
	runOne  func(i int, x T) bool
	pushes  int64
	panics  par.PanicBox
}

// ForEachObs is ForEachAsyncObs drawing scheduler storage from the bag.
func (b *Bag[T]) ForEachObs(ctx context.Context, p int, initial []T, process func(item T, push func(T)), col obs.Collector) error {
	cc := par.NewCanceller(ctx)
	aborted, pe := forEachAsync(b, cc, p, initial, process, obs.Or(col))
	if pe != nil {
		return pe
	}
	if aborted {
		return cc.Err()
	}
	return nil
}

// runSingle is the single-worker engine: a plain LIFO stack, no goroutines.
// push appends through the shared b.stack header, so pushes during
// processing of the last item (when the loop just resliced the stack to
// empty) land in the same field the loop condition reads — no work is lost;
// the regression test TestForEachAsyncPushDuringLastItem pins this. All run
// state lives in Bag fields, so a warm Bag runs without allocating.
func (b *Bag[T]) runSingle(cc *par.Canceller, initial []T, process func(item T, push func(T)), col obs.Collector) (aborted bool, perr *par.PanicError) {
	defer col.Span("sched.async")()
	b.panics.Reset()
	b.process = process
	if b.push == nil {
		b.push = func(x T) { b.pushes++; b.stack = append(b.stack, x) }
		b.runOne = func(i int, x T) (panicked bool) {
			defer func() {
				if r := recover(); r != nil {
					b.panics.Capture(r, i)
					panicked = true
				}
			}()
			b.process(x, b.push)
			return false
		}
	}
	b.stack = append(b.stack[:0], initial...)
	b.pushes = int64(len(initial))
	var pops, depth int64
	// Return the (possibly grown) storage to the bag and drop the process
	// reference however this run ends, so the next run starts clean.
	defer func() { b.stack = b.stack[:0]; b.process = nil }()
	for i := 0; len(b.stack) > 0; i++ {
		if cc.Stride(i) {
			aborted = true
			break
		}
		if l := int64(len(b.stack)); l > depth {
			depth = l
		}
		x := b.stack[len(b.stack)-1]
		b.stack = b.stack[:len(b.stack)-1]
		pops++
		if b.runOne(i, x) {
			aborted = len(b.stack) > 0
			break
		}
	}
	// Flush through the worker-0 view so round/worker-aware collectors
	// (obs.FlightRecorder) attribute the single worker's traffic correctly;
	// plain collectors pass through unchanged.
	wcol := obs.ForWorker(col, 0)
	wcol.Count(obs.CtrSchedPush, b.pushes)
	wcol.Count(obs.CtrSchedPop, pops)
	wcol.Count(obs.CtrSchedPanics, int64(b.panics.Count()))
	wcol.Gauge(obs.GaugeQueueDepth, depth)
	return aborted, b.panics.Err()
}

// forEachAsync is the shared engine. It reports whether the run was
// abandoned before quiescence (always false with an inert canceller and no
// panic) and the first worker panic, if any.
func forEachAsync[T any](b *Bag[T], cc *par.Canceller, p int, initial []T, process func(item T, push func(T)), col obs.Collector) (aborted bool, perr *par.PanicError) {
	p = par.Workers(p)
	if p == 1 {
		return b.runSingle(cc, initial, process, col)
	}
	var panics par.PanicBox
	defer col.Span("sched.async")()
	col.Count(obs.CtrSchedPush, int64(len(initial)))
	var pending atomic.Int64
	pending.Store(int64(len(initial)))
	var stopped atomic.Bool
	if cap(b.queues) < p {
		b.queues = make([]workQueue[T], p)
	}
	queues := b.queues[:p]
	for i := range queues {
		// Reused queues may hold items abandoned by a cancelled run; this
		// run must start empty (capacity is kept).
		clear(queues[i].items)
		queues[i].items = queues[i].items[:0]
	}
	for i, x := range initial {
		q := &queues[i%p]
		q.items = append(q.items, x)
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(self int) {
			defer wg.Done()
			// Registered before the flush defer below, so it runs after it:
			// a panic raised by the flush itself (col is arbitrary user code)
			// is boxed too instead of killing the process.
			defer func() { panics.Capture(recover(), -1) }()
			my := &queues[self]
			// wcol is this worker's attributed view of the collector: a
			// flight recorder hands back the worker's own shard (events carry
			// the worker id, writes stay on the worker's cache lines), plain
			// collectors pass through unchanged.
			wcol := obs.ForWorker(col, self)
			endWorker := wcol.Span("sched.worker")
			var pushes, pops, steals, depth int64
			items := 0
			defer func() {
				// Innermost-registered defers run first, so a panicking
				// process unwinds through this recovery before the counter
				// flush below — the flush always happens, and the worker
				// exits cleanly either way (no goroutine is ever leaked).
				if r := recover(); r != nil {
					panics.Capture(r, items-1)
					stopped.Store(true)
				}
				wcol.Count(obs.CtrSchedPush, pushes)
				wcol.Count(obs.CtrSchedPop, pops)
				wcol.Count(obs.CtrSchedSteal, steals)
				wcol.Gauge(obs.GaugeQueueDepth, depth)
				endWorker()
			}()
			push := func(x T) {
				pending.Add(1)
				pushes++
				if l := int64(my.push(x)); l > depth {
					depth = l
				}
			}
			for i := 0; ; i++ {
				// A sibling's panic (or a cancel observed by a sibling) stops
				// this worker at its next item boundary: mid-item state is
				// never torn, the current process call always completes.
				if stopped.Load() {
					return
				}
				if cc.Stride(i) {
					stopped.Store(true)
					return
				}
				x, ok := my.pop()
				if !ok {
					x, ok = steal(queues, self)
					if ok {
						steals++
					}
				}
				if ok {
					pops++
					items++
					process(x, push)
					pending.Add(-1)
					continue
				}
				if pending.Load() == 0 || stopped.Load() {
					return
				}
				// Idle: poll the context every spin, not just every stride —
				// an idle worker must notice a cancelled run promptly even
				// when the remaining items are hoarded by a stuck sibling.
				if cc.Poll() {
					stopped.Store(true)
					return
				}
				runtime.Gosched()
			}
		}(w)
	}
	wg.Wait()
	if n := panics.Count(); n > 0 {
		col.Count(obs.CtrSchedPanics, int64(n))
	}
	// pending > 0 means items were abandoned in the queues.
	return pending.Load() > 0, panics.Err()
}

// workQueue is one worker's LIFO queue. The owner pushes and pops at the
// tail; thieves take from the head. A plain mutex keeps it simple — the
// queues are touched once per item, and items carry real work.
type workQueue[T any] struct {
	mu    sync.Mutex
	items []T
	_     [40]byte // pad to a cache line to avoid false sharing
}

// push appends x and returns the resulting queue length (for depth gauges).
func (q *workQueue[T]) push(x T) int {
	q.mu.Lock()
	q.items = append(q.items, x)
	n := len(q.items)
	q.mu.Unlock()
	return n
}

func (q *workQueue[T]) pop() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero T
	n := len(q.items)
	if n == 0 {
		return zero, false
	}
	x := q.items[n-1]
	q.items[n-1] = zero
	q.items = q.items[:n-1]
	return x, true
}

// stealHalf removes the first half (head side) of the victim's queue.
func (q *workQueue[T]) stealHalf() []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.items)
	if n == 0 {
		return nil
	}
	k := (n + 1) / 2
	got := make([]T, k)
	copy(got, q.items[:k])
	rest := copy(q.items, q.items[k:])
	var zero T
	for i := rest; i < n; i++ {
		q.items[i] = zero
	}
	q.items = q.items[:rest]
	return got
}

func steal[T any](queues []workQueue[T], self int) (T, bool) {
	var zero T
	p := len(queues)
	for off := 1; off < p; off++ {
		victim := (self + off) % p
		got := queues[victim].stealHalf()
		if len(got) == 0 {
			continue
		}
		my := &queues[self]
		my.mu.Lock()
		my.items = append(my.items, got[:len(got)-1]...)
		my.mu.Unlock()
		return got[len(got)-1], true
	}
	return zero, false
}

// ForEachOrdered processes items level-synchronously by priority: the
// minimum-priority level runs (in parallel on p workers) to exhaustion —
// items pushed at a priority at or below the current level join it — before
// the next level starts. This is the OBIM-style schedule under which
// priority-guided algorithms (Dijkstra-like relaxations) do near-minimal
// work. prio must be stable for a given item; push may only be called from
// within process.
//
// Worker panics follow the ForEachAsync contract: the first one is re-raised
// here as a *par.PanicError after every worker has joined.
func ForEachOrdered[T any](p int, initial []T, prio func(T) uint64, process func(item T, push func(T))) {
	_, pe := forEachOrdered(nil, p, initial, prio, process, obs.Nop{})
	if pe != nil {
		panic(pe)
	}
}

// ForEachOrderedCtx is ForEachOrdered with cooperative cancellation,
// polled between level batches and (strided) per item. Returns nil on
// quiescence and ctx's error when the run was abandoned. A collector
// attached to ctx via obs.NewContext is honored.
func ForEachOrderedCtx[T any](ctx context.Context, p int, initial []T, prio func(T) uint64, process func(item T, push func(T))) error {
	return ForEachOrderedObs(ctx, p, initial, prio, process, obs.FromContext(ctx))
}

// ForEachOrderedObs is ForEachOrderedCtx reporting scheduler traffic to
// col: CtrSchedLevels priority levels opened, CtrSchedPush/CtrSchedPop item
// totals, and each level's batch size as GaugeFrontier. col may be nil.
//
// A panic in process is recovered (reported as CtrSchedPanics) and returned
// as a *par.PanicError once all workers have joined; a run that both
// panicked and was cancelled reports the panic.
func ForEachOrderedObs[T any](ctx context.Context, p int, initial []T, prio func(T) uint64, process func(item T, push func(T)), col obs.Collector) error {
	cc := par.NewCanceller(ctx)
	aborted, pe := forEachOrdered(cc, p, initial, prio, process, obs.Or(col))
	if pe != nil {
		return pe
	}
	if aborted {
		return cc.Err()
	}
	return nil
}

func forEachOrdered[T any](cc *par.Canceller, p int, initial []T, prio func(T) uint64, process func(item T, push func(T)), col obs.Collector) (aborted bool, perr *par.PanicError) {
	defer col.Span("sched.ordered")()
	// The level batches run through par.ForCollect, which re-raises a worker
	// panic on this goroutine only after all its workers have joined; catch
	// it here so the Obs/Ctx variants can hand it back as an error.
	defer func() {
		if r := recover(); r != nil {
			perr = par.AsPanicError(r, -1)
			col.Count(obs.CtrSchedPanics, 1)
			aborted = true
		}
	}()
	bins := map[uint64][]T{}
	for _, x := range initial {
		bins[prio(x)] = append(bins[prio(x)], x)
	}
	col.Count(obs.CtrSchedPush, int64(len(initial)))
	var levels int64
	for len(bins) > 0 {
		if cc.Poll() {
			return true, nil
		}
		// Find the minimum priority level.
		first := true
		var cur uint64
		for pr := range bins {
			if first || pr < cur {
				cur, first = pr, false
			}
		}
		level := bins[cur]
		delete(bins, cur)
		col.Count(obs.CtrSchedLevels, 1)
		levels++
		// Each priority level is one "round" of the level-synchronous
		// schedule; round-aware collectors segment their series here.
		obs.MarkRound(col, levels)
		for len(level) > 0 {
			if cc.Poll() {
				return true, nil
			}
			col.Gauge(obs.GaugeFrontier, int64(len(level)))
			type pushed struct {
				pr uint64
				x  T
			}
			var pushes atomic.Int64
			out := par.ForCollect(p, len(level), 64, func(lo, hi int, out []pushed) []pushed {
				n := int64(0)
				for i := lo; i < hi; i++ {
					if cc.Stride(i) {
						break
					}
					process(level[i], func(x T) {
						n++
						out = append(out, pushed{prio(x), x})
					})
				}
				pushes.Add(n)
				return out
			})
			col.Count(obs.CtrSchedPop, int64(len(level)))
			col.Count(obs.CtrSchedPush, pushes.Load())
			level = level[:0]
			for _, u := range out {
				if u.pr <= cur {
					level = append(level, u.x)
				} else {
					bins[u.pr] = append(bins[u.pr], u.x)
				}
			}
		}
	}
	return false, nil
}
