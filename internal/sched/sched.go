// Package sched provides Galois-style data-driven schedulers: workers pull
// items from a concurrent work bag, process them, and push newly discovered
// work back, until global quiescence. The paper's LLP-Prim runs on exactly
// this kind of runtime ("We use the Galois Library as our underlying runtime
// framework", §VII) — its R set is an unordered bag whose elements "can be
// explored in parallel" in any order.
//
// Two schedulers are provided:
//
//   - ForEachAsync: unordered, per-worker LIFO queues with work stealing —
//     the Galois do_all/for_each analogue.
//   - ForEachOrdered: priority-level-synchronous — the OBIM
//     (ordered-by-integer-metric) analogue, processing the minimum-priority
//     level in parallel before moving on.
package sched

import (
	"runtime"
	"sync"
	"sync/atomic"

	"llpmst/internal/par"
)

// ForEachAsync processes the initial items and everything pushed during
// processing, on p workers, in no particular order. process receives the
// item and a push function that may only be called from within that process
// invocation. Each pushed item is processed exactly once. Returns when all
// work has drained (quiescence).
func ForEachAsync[T any](p int, initial []T, process func(item T, push func(T))) {
	p = par.Workers(p)
	if p == 1 {
		stack := make([]T, len(initial))
		copy(stack, initial)
		push := func(x T) { stack = append(stack, x) }
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			process(x, push)
		}
		return
	}
	var pending atomic.Int64
	pending.Store(int64(len(initial)))
	queues := make([]workQueue[T], p)
	for i, x := range initial {
		q := &queues[i%p]
		q.items = append(q.items, x)
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(self int) {
			defer wg.Done()
			my := &queues[self]
			push := func(x T) {
				pending.Add(1)
				my.push(x)
			}
			for {
				x, ok := my.pop()
				if !ok {
					x, ok = steal(queues, self)
				}
				if ok {
					process(x, push)
					pending.Add(-1)
					continue
				}
				if pending.Load() == 0 {
					return
				}
				runtime.Gosched()
			}
		}(w)
	}
	wg.Wait()
}

// workQueue is one worker's LIFO queue. The owner pushes and pops at the
// tail; thieves take from the head. A plain mutex keeps it simple — the
// queues are touched once per item, and items carry real work.
type workQueue[T any] struct {
	mu    sync.Mutex
	items []T
	_     [40]byte // pad to a cache line to avoid false sharing
}

func (q *workQueue[T]) push(x T) {
	q.mu.Lock()
	q.items = append(q.items, x)
	q.mu.Unlock()
}

func (q *workQueue[T]) pop() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero T
	n := len(q.items)
	if n == 0 {
		return zero, false
	}
	x := q.items[n-1]
	q.items[n-1] = zero
	q.items = q.items[:n-1]
	return x, true
}

// stealHalf removes the first half (head side) of the victim's queue.
func (q *workQueue[T]) stealHalf() []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.items)
	if n == 0 {
		return nil
	}
	k := (n + 1) / 2
	got := make([]T, k)
	copy(got, q.items[:k])
	rest := copy(q.items, q.items[k:])
	var zero T
	for i := rest; i < n; i++ {
		q.items[i] = zero
	}
	q.items = q.items[:rest]
	return got
}

func steal[T any](queues []workQueue[T], self int) (T, bool) {
	var zero T
	p := len(queues)
	for off := 1; off < p; off++ {
		victim := (self + off) % p
		got := queues[victim].stealHalf()
		if len(got) == 0 {
			continue
		}
		my := &queues[self]
		my.mu.Lock()
		my.items = append(my.items, got[:len(got)-1]...)
		my.mu.Unlock()
		return got[len(got)-1], true
	}
	return zero, false
}

// ForEachOrdered processes items level-synchronously by priority: the
// minimum-priority level runs (in parallel on p workers) to exhaustion —
// items pushed at a priority at or below the current level join it — before
// the next level starts. This is the OBIM-style schedule under which
// priority-guided algorithms (Dijkstra-like relaxations) do near-minimal
// work. prio must be stable for a given item; push may only be called from
// within process.
func ForEachOrdered[T any](p int, initial []T, prio func(T) uint64, process func(item T, push func(T))) {
	bins := map[uint64][]T{}
	for _, x := range initial {
		bins[prio(x)] = append(bins[prio(x)], x)
	}
	for len(bins) > 0 {
		// Find the minimum priority level.
		first := true
		var cur uint64
		for pr := range bins {
			if first || pr < cur {
				cur, first = pr, false
			}
		}
		level := bins[cur]
		delete(bins, cur)
		for len(level) > 0 {
			type pushed struct {
				pr uint64
				x  T
			}
			out := par.ForCollect(p, len(level), 64, func(lo, hi int, out []pushed) []pushed {
				for i := lo; i < hi; i++ {
					process(level[i], func(x T) {
						out = append(out, pushed{prio(x), x})
					})
				}
				return out
			})
			level = level[:0]
			for _, u := range out {
				if u.pr <= cur {
					level = append(level, u.x)
				} else {
					bins[u.pr] = append(bins[u.pr], u.x)
				}
			}
		}
	}
}
