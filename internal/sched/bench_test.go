package sched

import (
	"sync/atomic"
	"testing"

	"llpmst/internal/gen"
)

func BenchmarkForEachAsyncFlat(b *testing.B) {
	const n = 1 << 16
	initial := make([]int, n)
	for i := range initial {
		initial[i] = i
	}
	var sink atomic.Int64
	b.SetBytes(n * 8)
	for i := 0; i < b.N; i++ {
		ForEachAsync(0, initial, func(x int, push func(int)) {
			sink.Add(int64(x & 1))
		})
	}
}

func BenchmarkForEachAsyncBFS(b *testing.B) {
	g := gen.RoadNetwork(0, 64, 64, 0.2, 42)
	n := g.NumVertices()
	b.SetBytes(int64(g.NumEdges()))
	for i := 0; i < b.N; i++ {
		visited := make([]int32, n)
		visited[0] = 1
		ForEachAsync(0, []uint32{0}, func(v uint32, push func(uint32)) {
			lo, hi := g.ArcRange(v)
			for a := lo; a < hi; a++ {
				to := g.Target(a)
				if atomic.CompareAndSwapInt32(&visited[to], 0, 1) {
					push(to)
				}
			}
		})
	}
}

func BenchmarkForEachOrderedBuckets(b *testing.B) {
	const n = 1 << 14
	items := make([]uint64, n)
	for i := range items {
		items[i] = uint64(i % 64)
	}
	for i := 0; i < b.N; i++ {
		var count atomic.Int64
		ForEachOrdered(0, items, func(x uint64) uint64 { return x }, func(x uint64, push func(uint64)) {
			count.Add(1)
		})
		if count.Load() != n {
			b.Fatal("missed items")
		}
	}
}
