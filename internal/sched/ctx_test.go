package sched

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"llpmst/internal/obs"
)

// Regression for the single-worker path: push appends through a
// closure-captured slice header while the drain loop reslices the same
// variable. A push during processing of the *last* item (stack just
// resliced to length 0) must still be observed by the loop condition —
// i.e. no pushed work may be lost, each item processed exactly once.
func TestForEachAsyncPushDuringLastItem(t *testing.T) {
	const chain = 100
	seen := make(map[int]int)
	ForEachAsync(1, []int{0}, func(x int, push func(int)) {
		seen[x]++
		// Every item is the last one on the stack when processed; each
		// pushes its successor, so the whole chain exists only through
		// pushes that happen at stack length zero.
		if x < chain {
			push(x + 1)
		}
	})
	for i := 0; i <= chain; i++ {
		if seen[i] != 1 {
			t.Fatalf("item %d processed %d times, want exactly once", i, seen[i])
		}
	}
}

// The same shape with a reallocation forced mid-run: pushes grow the stack
// past its initial capacity, so append moves the backing array while the
// loop is mid-iteration.
func TestForEachAsyncPushGrowsStack(t *testing.T) {
	var processed atomic.Int64
	initial := []int{0, 1, 2, 3}
	ForEachAsync(1, initial, func(x int, push func(int)) {
		processed.Add(1)
		if x < 64 {
			push(x + 64) // fan out well past the initial capacity
		}
	})
	// 4 initial + 4 pushed (only x<64 pushes; pushed items are >= 64).
	if got := processed.Load(); got != 8 {
		t.Fatalf("processed %d items, want 8", got)
	}
}

func TestForEachAsyncCtxDrainsWithoutCancel(t *testing.T) {
	for _, p := range []int{1, 4} {
		var n atomic.Int64
		err := ForEachAsyncCtx(context.Background(), p, []int{1, 2, 3}, func(x int, push func(int)) {
			if n.Add(1); x < 50 {
				push(x + 10)
			}
		})
		if err != nil {
			t.Fatalf("p=%d: unexpected error %v", p, err)
		}
	}
}

func TestForEachAsyncCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, p := range []int{1, 4} {
		var n atomic.Int64
		err := ForEachAsyncCtx(ctx, p, []int{1, 2, 3}, func(x int, push func(int)) { n.Add(1) })
		if err == nil {
			t.Fatalf("p=%d: no error from pre-cancelled context", p)
		}
		// The strided poll fires on item index 0, so at most a handful of
		// items may slip through before the flag sticks; with 3 items and a
		// pre-cancelled context none should.
		if n.Load() != 0 {
			t.Fatalf("p=%d: pre-cancelled run processed %d items", p, n.Load())
		}
	}
}

func TestForEachAsyncCtxCancelMidRun(t *testing.T) {
	for _, p := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var n atomic.Int64
		start := time.Now()
		// Self-sustaining workload: every item pushes two more. Without
		// cancellation this never quiesces; the run can only end through ctx.
		err := ForEachAsyncCtx(ctx, p, []int{1}, func(x int, push func(int)) {
			if n.Add(1) == 2000 {
				cancel()
			}
			push(x + 1)
			push(x + 2)
		})
		if err == nil {
			t.Fatalf("p=%d: cancelled run returned nil error", p)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("p=%d: cancelled run took %v", p, elapsed)
		}
		cancel()
	}
}

func TestForEachAsyncCtxNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		var n atomic.Int64
		_ = ForEachAsyncCtx(ctx, 4, []int{1}, func(x int, push func(int)) {
			if n.Add(1) == 500 {
				cancel()
			}
			push(x + 1)
		})
		cancel()
	}
	// Workers are joined by wg.Wait before return, so the count settles
	// immediately modulo runtime noise.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+2 {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: before=%d now=%d", before, g)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestForEachAsyncObsCounters(t *testing.T) {
	for _, p := range []int{1, 4} {
		rec := obs.NewRecording()
		var processed atomic.Int64
		err := ForEachAsyncObs(context.Background(), p, []int{0, 1, 2, 3}, func(x int, push func(int)) {
			processed.Add(1)
			if x < 100 {
				push(x + 4)
			}
		}, rec)
		if err != nil {
			t.Fatal(err)
		}
		// Conservation: every pushed item (initial included) is popped
		// exactly once at quiescence.
		if rec.Counter(obs.CtrSchedPush) != rec.Counter(obs.CtrSchedPop) {
			t.Fatalf("p=%d: push=%d pop=%d, want equal", p,
				rec.Counter(obs.CtrSchedPush), rec.Counter(obs.CtrSchedPop))
		}
		if rec.Counter(obs.CtrSchedPop) != processed.Load() {
			t.Fatalf("p=%d: pop=%d processed=%d", p, rec.Counter(obs.CtrSchedPop), processed.Load())
		}
		if rec.GaugeMax(obs.GaugeQueueDepth) < 1 {
			t.Fatalf("p=%d: queue depth gauge never reported", p)
		}
		if len(rec.Spans()) == 0 {
			t.Fatalf("p=%d: no scheduler span recorded", p)
		}
	}
}

func TestForEachOrderedCtx(t *testing.T) {
	// Drains normally.
	var order []uint64
	err := ForEachOrderedCtx(context.Background(), 1, []uint64{5, 1, 3},
		func(x uint64) uint64 { return x },
		func(x uint64, push func(uint64)) { order = append(order, x) })
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[2] != 5 {
		t.Fatalf("order = %v", order)
	}
	// Pre-cancelled: no work.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var n atomic.Int64
	err = ForEachOrderedCtx(ctx, 2, []uint64{5, 1, 3},
		func(x uint64) uint64 { return x },
		func(x uint64, push func(uint64)) { n.Add(1) })
	if err == nil {
		t.Fatal("no error from pre-cancelled ordered run")
	}
	if n.Load() != 0 {
		t.Fatalf("pre-cancelled ordered run processed %d items", n.Load())
	}
}

func TestForEachOrderedObsCounters(t *testing.T) {
	rec := obs.NewRecording()
	err := ForEachOrderedObs(context.Background(), 2, []uint64{7, 7, 2, 9},
		func(x uint64) uint64 { return x },
		func(x uint64, push func(uint64)) {
			if x == 2 {
				push(4)
			}
		}, rec)
	if err != nil {
		t.Fatal(err)
	}
	// Levels: 2, 4, 7, 9.
	if got := rec.Counter(obs.CtrSchedLevels); got != 4 {
		t.Fatalf("levels = %d, want 4", got)
	}
	if rec.Counter(obs.CtrSchedPush) != 5 || rec.Counter(obs.CtrSchedPop) != 5 {
		t.Fatalf("push=%d pop=%d, want 5/5",
			rec.Counter(obs.CtrSchedPush), rec.Counter(obs.CtrSchedPop))
	}
}
