package sched

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"llpmst/internal/gen"
)

func TestForEachAsyncProcessesEverythingOnce(t *testing.T) {
	for _, p := range []int{1, 2, 4, 8} {
		const n = 20000
		counts := make([]int32, n)
		initial := make([]int, 0, n)
		for i := 0; i < n; i++ {
			initial = append(initial, i)
		}
		ForEachAsync(p, initial, func(x int, push func(int)) {
			atomic.AddInt32(&counts[x], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("p=%d: item %d processed %d times", p, i, c)
			}
		}
	}
}

func TestForEachAsyncDynamicPushes(t *testing.T) {
	// BFS over a generated graph: each vertex processed exactly once, all
	// reachable vertices visited.
	g := gen.RoadNetwork(1, 40, 40, 0.3, 3)
	n := g.NumVertices()
	for _, p := range []int{1, 4} {
		visited := make([]int32, n)
		atomic.StoreInt32(&visited[0], 1)
		ForEachAsync(p, []uint32{0}, func(v uint32, push func(uint32)) {
			lo, hi := g.ArcRange(v)
			for a := lo; a < hi; a++ {
				to := g.Target(a)
				if atomic.CompareAndSwapInt32(&visited[to], 0, 1) {
					push(to)
				}
			}
		})
		for v, seen := range visited {
			if seen != 1 {
				t.Fatalf("p=%d: vertex %d not visited (connected graph)", p, v)
			}
		}
	}
}

func TestForEachAsyncEmpty(t *testing.T) {
	called := false
	ForEachAsync(4, nil, func(x int, push func(int)) { called = true })
	if called {
		t.Fatal("process called with no items")
	}
}

func TestForEachAsyncDeepChain(t *testing.T) {
	// Each item pushes the next: maximum dependency depth, exercises
	// stealing of a mostly-empty system.
	var sum atomic.Int64
	ForEachAsync(4, []int{10000}, func(x int, push func(int)) {
		sum.Add(1)
		if x > 1 {
			push(x - 1)
		}
	})
	if sum.Load() != 10000 {
		t.Fatalf("processed %d items, want 10000", sum.Load())
	}
}

func TestForEachOrderedRespectsLevels(t *testing.T) {
	// Items carry priorities; the schedule must never process a priority
	// level before a strictly smaller one that was present at the time.
	rng := rand.New(rand.NewSource(1))
	n := 5000
	items := make([]uint64, n)
	for i := range items {
		items[i] = uint64(rng.Intn(50))
	}
	var mu atomic.Uint64 // highest priority level seen so far
	violations := atomic.Int32{}
	ForEachOrdered(4, items, func(x uint64) uint64 { return x }, func(x uint64, push func(uint64)) {
		for {
			cur := mu.Load()
			if x < cur {
				violations.Add(1)
				return
			}
			if x == cur || mu.CompareAndSwap(cur, x) {
				return
			}
		}
	})
	if violations.Load() > 0 {
		t.Fatalf("%d priority inversions", violations.Load())
	}
}

func TestForEachOrderedPushIntoCurrentAndFutureLevels(t *testing.T) {
	// Seed one item at level 0; it pushes an item at level 0 (joins the
	// current level) and one at level 5 (a future level). All must run.
	var order []uint64
	var mu atomic.Int32
	appendOrder := func(x uint64) {
		for !mu.CompareAndSwap(0, 1) {
		}
		order = append(order, x)
		mu.Store(0)
	}
	first := true
	ForEachOrdered(2, []uint64{0}, func(x uint64) uint64 { return x }, func(x uint64, push func(uint64)) {
		appendOrder(x)
		if first {
			first = false
			push(0)
			push(5)
		}
	})
	if len(order) != 3 {
		t.Fatalf("processed %d items, want 3: %v", len(order), order)
	}
	if order[len(order)-1] != 5 {
		t.Fatalf("future level did not run last: %v", order)
	}
}

func TestForEachOrderedDijkstraStyle(t *testing.T) {
	// Use the ordered executor to run Dijkstra directly: settle vertices in
	// distance order, push neighbors with tentative distances.
	g := gen.RoadNetwork(1, 24, 24, 0.25, 9)
	n := g.NumVertices()
	const inf = ^uint64(0)
	dist := make([]uint64, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[0] = 0
	type item struct {
		v uint32
		d uint64
	}
	settled := make([]int32, n)
	ForEachOrdered(4, []item{{0, 0}},
		func(it item) uint64 { return it.d },
		func(it item, push func(item)) {
			if !atomic.CompareAndSwapInt32(&settled[it.v], 0, 1) {
				return // stale entry
			}
			lo, hi := g.ArcRange(it.v)
			for a := lo; a < hi; a++ {
				to := g.Target(a)
				nd := it.d + uint64(g.ArcWeight(a))
				for {
					old := atomic.LoadUint64(&dist[to])
					if nd >= old {
						break
					}
					if atomic.CompareAndSwapUint64(&dist[to], old, nd) {
						push(item{to, nd})
						break
					}
				}
			}
		})
	// Reference sequential Dijkstra on integer weights.
	want := make([]uint64, n)
	for i := range want {
		want[i] = inf
	}
	want[0] = 0
	done := make([]bool, n)
	for {
		best := -1
		for v := 0; v < n; v++ {
			if !done[v] && want[v] != inf && (best < 0 || want[v] < want[best]) {
				best = v
			}
		}
		if best < 0 {
			break
		}
		done[best] = true
		lo, hi := g.ArcRange(uint32(best))
		for a := lo; a < hi; a++ {
			to := g.Target(a)
			if d := want[best] + uint64(g.ArcWeight(a)); d < want[to] {
				want[to] = d
			}
		}
	}
	for v := range dist {
		if dist[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, dist[v], want[v])
		}
	}
}
