//go:build !race

package sched

const raceTestEnabled = false
