package sched

import (
	"context"
	"sync/atomic"
	"testing"

	"llpmst/internal/obs"
)

// A reused Bag must behave exactly like a fresh one: state from one run
// (stack storage, panic box, counters) must not leak into the next.
func TestBagReuseAcrossRuns(t *testing.T) {
	var bag Bag[int]
	for _, p := range []int{1, 4} {
		for run := 0; run < 5; run++ {
			var n atomic.Int64
			err := bag.ForEachObs(context.Background(), p, []int{0, 1, 2}, func(x int, push func(int)) {
				n.Add(1)
				if x < 30 {
					push(x + 3)
				}
			}, obs.Nop{})
			if err != nil {
				t.Fatalf("p=%d run %d: %v", p, run, err)
			}
			// Items 0..32, each exactly once.
			if got := n.Load(); got != 33 {
				t.Fatalf("p=%d run %d: processed %d items, want 33", p, run, got)
			}
		}
	}
}

// A panic in one run must surface as that run's error and must not poison a
// later run on the same Bag.
func TestBagReuseAfterPanic(t *testing.T) {
	var bag Bag[int]
	err := bag.ForEachObs(context.Background(), 1, []int{1, 2, 3}, func(x int, push func(int)) {
		if x == 2 {
			panic("boom")
		}
	}, obs.Nop{})
	if err == nil {
		t.Fatal("panicking run returned nil error")
	}
	var n atomic.Int64
	err = bag.ForEachObs(context.Background(), 1, []int{1, 2, 3}, func(x int, push func(int)) {
		n.Add(1)
	}, obs.Nop{})
	if err != nil {
		t.Fatalf("clean run after panic: %v", err)
	}
	if n.Load() != 3 {
		t.Fatalf("clean run processed %d items, want 3", n.Load())
	}
}

// The warm single-worker path must be allocation-free: all run state lives
// in Bag fields, so the only allocations in a steady-state caller are the
// caller's own. This is what keeps llp-prim-async at O(1) allocations per
// invocation with a reused workspace.
func TestBagSingleWorkerSteadyStateAllocs(t *testing.T) {
	if raceTestEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	var bag Bag[int]
	initial := []int{0}
	process := func(x int, push func(int)) {
		if x < 100 {
			push(x + 1)
		}
	}
	ctx := context.Background()
	// Warm up: first run grows the stack storage and builds the cached
	// closures.
	if err := bag.ForEachObs(ctx, 1, initial, process, obs.Nop{}); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(20, func() {
		if err := bag.ForEachObs(ctx, 1, initial, process, obs.Nop{}); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("warm single-worker Bag run allocated %v times per run", n)
	}
}

// The Bag engine honors cancellation like the one-shot entry points.
func TestBagCancellation(t *testing.T) {
	var bag Bag[int]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var n atomic.Int64
	err := bag.ForEachObs(ctx, 1, []int{1}, func(x int, push func(int)) { n.Add(1) }, obs.Nop{})
	if err == nil {
		t.Fatal("pre-cancelled Bag run returned nil error")
	}
	if n.Load() != 0 {
		t.Fatalf("pre-cancelled Bag run processed %d items", n.Load())
	}
}
