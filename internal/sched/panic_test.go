package sched

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"llpmst/internal/obs"
	"llpmst/internal/par"
)

// waitGoroutines polls until the goroutine count settles back to (about)
// before — the no-leak half of the panic contract.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: before=%d after=%d", before, runtime.NumGoroutine())
}

// seq returns [0, n) as initial work items.
func seq(n int) []int {
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	return items
}

func TestForEachAsyncObsPanic(t *testing.T) {
	for _, p := range []int{1, 4} {
		before := runtime.NumGoroutine()
		rec := obs.NewRecording()
		var processed atomic.Int64
		err := ForEachAsyncObs(context.Background(), p, seq(10_000), func(item int, push func(int)) {
			if item == 5_000 {
				panic("async boom")
			}
			processed.Add(1)
		}, rec)
		if err == nil {
			t.Fatalf("p=%d: panic did not surface as an error", p)
		}
		var pe *par.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("p=%d: error %T is not a *par.PanicError: %v", p, err, err)
		}
		if pe.Value != "async boom" {
			t.Fatalf("p=%d: Value = %v", p, pe.Value)
		}
		if rec.Counter(obs.CtrSchedPanics) < 1 {
			t.Fatalf("p=%d: CtrSchedPanics = %d, want >= 1", p, rec.Counter(obs.CtrSchedPanics))
		}
		waitGoroutines(t, before)
	}
}

func TestForEachAsyncPlainRepanics(t *testing.T) {
	before := runtime.NumGoroutine()
	defer waitGoroutines(t, before)
	defer func() {
		if _, ok := recover().(*par.PanicError); !ok {
			t.Fatal("ForEachAsync did not re-raise a *par.PanicError")
		}
	}()
	ForEachAsync(4, seq(10_000), func(item int, push func(int)) {
		if item == 5_000 {
			panic("plain boom")
		}
	})
	t.Fatal("panic did not propagate")
}

// TestForEachAsyncPanicBeatsCancel pins the precedence: a run that both
// panicked and was cancelled reports the panic.
func TestForEachAsyncPanicBeatsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	err := ForEachAsyncObs(ctx, 4, seq(10_000), func(item int, push func(int)) {
		if item == 5_000 {
			cancel()
			panic("boom then cancel")
		}
	}, nil)
	var pe *par.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want the panic to win over cancellation", err)
	}
}

// panicGaugeCol panics on the first Gauge call, which with p >= 2 happens
// only inside a worker's counter flush — exercising the guard that boxes
// panics raised by user collectors during the flush itself.
type panicGaugeCol struct {
	obs.Nop
	fired atomic.Bool
}

func (c *panicGaugeCol) Gauge(obs.Gauge, int64) {
	if c.fired.CompareAndSwap(false, true) {
		panic("collector boom")
	}
}

func TestForEachAsyncCollectorPanicInFlush(t *testing.T) {
	before := runtime.NumGoroutine()
	col := &panicGaugeCol{}
	err := ForEachAsyncObs(context.Background(), 4, seq(5_000), func(item int, push func(int)) {}, col)
	var pe *par.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("collector panic in worker flush not boxed: err=%v", err)
	}
	waitGoroutines(t, before)
}

func TestForEachOrderedObsPanic(t *testing.T) {
	for _, p := range []int{1, 4} {
		before := runtime.NumGoroutine()
		rec := obs.NewRecording()
		err := ForEachOrderedObs(context.Background(), p, seq(10_000),
			func(x int) uint64 { return uint64(x / 100) },
			func(item int, push func(int)) {
				if item == 7_000 {
					panic("ordered boom")
				}
			}, rec)
		if err == nil {
			t.Fatalf("p=%d: panic did not surface as an error", p)
		}
		var pe *par.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("p=%d: error %T is not a *par.PanicError: %v", p, err, err)
		}
		if rec.Counter(obs.CtrSchedPanics) < 1 {
			t.Fatalf("p=%d: CtrSchedPanics = %d, want >= 1", p, rec.Counter(obs.CtrSchedPanics))
		}
		waitGoroutines(t, before)
	}
}

func TestForEachOrderedPlainRepanics(t *testing.T) {
	defer func() {
		if _, ok := recover().(*par.PanicError); !ok {
			t.Fatal("ForEachOrdered did not re-raise a *par.PanicError")
		}
	}()
	ForEachOrdered(4, seq(10_000),
		func(x int) uint64 { return uint64(x) },
		func(item int, push func(int)) {
			if item == 9_999 {
				panic("ordered plain boom")
			}
		})
	t.Fatal("panic did not propagate")
}
