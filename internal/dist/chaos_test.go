package dist

import (
	"context"
	"errors"
	"slices"
	"testing"

	"llpmst/internal/fault"
	"llpmst/internal/gen"
	"llpmst/internal/graph"
	"llpmst/internal/mst"
	"llpmst/internal/obs"
)

// chaosPlan is the acceptance-criteria schedule: 20% drop, 10% duplication,
// inbox reordering, no crashes.
func chaosPlan(seed int64) fault.Plan {
	return fault.Plan{
		Seed:    seed,
		Default: fault.Probs{Drop: 0.2, Dup: 0.1, Reorder: true},
	}
}

func requireChaosMSF(t *testing.T, g *graph.CSR, plan fault.Plan) SimStats {
	t.Helper()
	ids, stats, err := RunGHSFaulty(context.Background(), g, plan)
	if err != nil {
		t.Fatal(err)
	}
	slices.Sort(ids)
	want := mst.Kruskal(g)
	if !slices.Equal(ids, want.EdgeIDs) {
		t.Fatalf("chaos MSF has %d edges, oracle %d; sets differ", len(ids), len(want.EdgeIDs))
	}
	return stats
}

// The reliable transport must mask drop/duplicate/reorder completely: every
// stress-suite graph elects exactly the canonical MSF.
func TestChaosExactMSF(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.CSR
	}{
		{"path", gen.Path(60, nil)},
		{"cycle", gen.Cycle(41, 3)},
		{"star", gen.Star(30)},
		{"complete", gen.Complete(16, 5)},
		{"road", gen.RoadNetwork(1, 12, 12, 0.3, 7)},
		{"rmat", gen.RMAT(1, 7, 8, gen.WeightUniform, 9)},
		{"rmat-ties", gen.RMAT(1, 6, 8, gen.WeightInteger, 10)},
		{"disconnected", gen.Disconnected(4, 12, 11)},
		{"caterpillar", gen.Caterpillar(10, 3, 13)},
		{"binary-tree", gen.BinaryTree(63, 15)},
	}
	var dropped, retransmits int64
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stats := requireChaosMSF(t, tc.g, chaosPlan(int64(100+i)))
			dropped += stats.Dropped
			retransmits += stats.Retransmits
			if stats.Messages == 0 && tc.g.NumEdges() > 0 {
				t.Fatal("no protocol messages delivered")
			}
		})
	}
	if dropped == 0 || retransmits == 0 {
		t.Fatalf("chaos suite injected no faults (dropped=%d retransmits=%d) — injector not wired",
			dropped, retransmits)
	}
}

// Delay faults (out-of-order cross-round delivery) must also be masked.
func TestChaosDelays(t *testing.T) {
	plan := fault.Plan{
		Seed:    9,
		Default: fault.Probs{Drop: 0.1, Dup: 0.1, Delay: 0.3, MaxDelay: 5, Reorder: true},
	}
	stats := requireChaosMSF(t, gen.RMAT(1, 8, 8, gen.WeightUniform, 3), plan)
	if stats.Delayed == 0 {
		t.Fatal("no delays injected")
	}
}

// Identical seed and fault schedule must reproduce byte-identical SimStats
// and an identical forest across runs.
func TestChaosDeterminism(t *testing.T) {
	g := gen.RMAT(1, 8, 8, gen.WeightUniform, 5)
	plan := fault.Plan{
		Seed:    1234,
		Default: fault.Probs{Drop: 0.25, Dup: 0.1, Delay: 0.2, MaxDelay: 4, Reorder: true},
	}
	var firstIDs []uint32
	var firstStats SimStats
	for run := 0; run < 3; run++ {
		ids, stats, err := RunGHSFaulty(context.Background(), g, plan)
		if err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			firstIDs, firstStats = ids, stats
			if stats.Dropped == 0 || stats.Retransmits == 0 {
				t.Fatalf("plan injected nothing: %+v", stats)
			}
			continue
		}
		if stats != firstStats {
			t.Fatalf("run %d stats diverged:\n  first %+v\n  now   %+v", run, firstStats, stats)
		}
		if !slices.Equal(ids, firstIDs) {
			t.Fatalf("run %d forest diverged", run)
		}
	}
}

// A crash-restart interval is an omission fault: the protocol must wait it
// out and still elect the exact canonical MSF with no error.
func TestCrashRestartMasked(t *testing.T) {
	g := gen.RMAT(1, 7, 8, gen.WeightUniform, 11)
	plan := fault.Plan{
		Seed:    5,
		Default: fault.Probs{Drop: 0.1, Dup: 0.05},
		Crashes: []fault.Crash{
			{Node: 3, At: 4, Restart: 20},
			{Node: 17, At: 10, Restart: 30},
		},
	}
	requireChaosMSF(t, g, plan)
}

// twoComponents builds two path components: A = 0-1-2-3 (weights 1,2,3) and
// B = 4-5-6-7 (weights 4,5,6). Edge ids follow input order.
func twoComponents(t *testing.T) *graph.CSR {
	t.Helper()
	return graph.MustFromEdges(1, 8, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 3},
		{U: 4, V: 5, W: 4}, {U: 5, V: 6, W: 5}, {U: 6, V: 7, W: 6},
	})
}

// A crash-stop must doom exactly the dead node's connected component:
// PartitionError lists the component's vertices precisely (split into Dead
// and Stranded), while the healthy component still elects its full MSF.
func TestCrashStopPartition(t *testing.T) {
	g := twoComponents(t)
	plan := fault.Plan{
		Seed:    3,
		Crashes: []fault.Crash{{Node: 5, At: 0}},
	}
	ids, _, err := RunGHSFaulty(context.Background(), g, plan)
	var pe *PartitionError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartitionError", err)
	}
	if !slices.Equal(pe.Dead, []uint32{5}) {
		t.Fatalf("Dead = %v, want [5]", pe.Dead)
	}
	if !slices.Equal(pe.Stranded, []uint32{4, 6, 7}) {
		t.Fatalf("Stranded = %v, want [4 6 7]", pe.Stranded)
	}
	slices.Sort(ids)
	if !slices.Equal(ids, []uint32{0, 1, 2}) {
		t.Fatalf("partial forest = %v, want the healthy component's MSF [0 1 2]", ids)
	}
	if !slices.Equal(pe.Elected, ids) {
		t.Fatalf("Elected = %v, want %v", pe.Elected, ids)
	}
	if pe.Error() == "" {
		t.Fatal("empty error message")
	}
}

// A mid-run crash-stop keeps earlier elections: every returned edge must be
// in the canonical MSF (cut-property soundness), the healthy component must
// finish exactly, and Dead+Stranded must still be exactly the crashed
// component.
func TestCrashStopMidRunSound(t *testing.T) {
	g := twoComponents(t)
	plan := fault.Plan{
		Seed:    3,
		Crashes: []fault.Crash{{Node: 7, At: 2}},
	}
	ids, _, err := RunGHSFaulty(context.Background(), g, plan)
	var pe *PartitionError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartitionError", err)
	}
	got := append(pe.Dead[:len(pe.Dead):len(pe.Dead)], pe.Stranded...)
	slices.Sort(got)
	if !slices.Equal(got, []uint32{4, 5, 6, 7}) {
		t.Fatalf("Dead+Stranded = %v, want exactly the crashed component [4 5 6 7]", got)
	}
	oracle := mst.Kruskal(g).EdgeIDs
	slices.Sort(ids)
	for _, id := range ids {
		if !slices.Contains(oracle, id) {
			t.Fatalf("elected edge %d is not in the canonical MSF", id)
		}
	}
	for _, id := range []uint32{0, 1, 2} {
		if !slices.Contains(ids, id) {
			t.Fatalf("healthy component incomplete: missing edge %d in %v", id, ids)
		}
	}
}

// A schedule that never delivers (drop probability 1) must be detected as a
// stall, not loop forever.
func TestChaosStallDetected(t *testing.T) {
	g := graph.MustFromEdges(1, 2, []graph.Edge{{U: 0, V: 1, W: 1}})
	plan := fault.Plan{Seed: 1, Default: fault.Probs{Drop: 1}}
	_, _, err := RunGHSFaulty(context.Background(), g, plan)
	if err == nil {
		t.Fatal("expected a stall error")
	}
}

// Cancellation must still work under chaos and take precedence over fault
// reporting.
func TestChaosCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := gen.RMAT(1, 7, 8, gen.WeightUniform, 2)
	ids, _, err := RunGHSFaulty(ctx, g, chaosPlan(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(ids) != 0 {
		t.Fatalf("pre-cancelled run elected %d edges", len(ids))
	}
}

// RunGHSFaulty must report the fault counters through the observability
// layer, matching SimStats.
func TestChaosObsCounters(t *testing.T) {
	rec := obs.NewRecording()
	ctx := obs.NewContext(context.Background(), rec)
	g := gen.RMAT(1, 7, 8, gen.WeightUniform, 4)
	_, stats, err := RunGHSFaulty(ctx, g, chaosPlan(8))
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		ctr  obs.Counter
		want int64
	}{
		{obs.CtrGHSRetransmits, stats.Retransmits},
		{obs.CtrFaultDropped, stats.Dropped},
		{obs.CtrFaultDuplicated, stats.Duplicated},
		{obs.CtrFaultDelayed, stats.Delayed},
	}
	for _, c := range checks {
		if got := rec.Counter(c.ctr); got != c.want {
			t.Fatalf("%s counter = %d, want %d", c.ctr, got, c.want)
		}
	}
	if stats.Retransmits == 0 || stats.Dropped == 0 {
		t.Fatalf("chaos plan injected nothing: %+v", stats)
	}
}
