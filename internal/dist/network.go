// Package dist implements a GHS-style distributed minimum spanning forest
// over a simulated synchronous message-passing network. The fragment
// machinery of the paper's §IV ("the notion of a fragment is crucial in
// understanding all MST algorithms") is Gallager-Humblet-Spira's, and the
// LLP framework itself grew out of distributed predicate detection (the
// paper's reference [1]); this package supplies that distributed sibling:
// nodes know only their incident edges and exchange messages with
// neighbors, in lockstep rounds.
//
// The simulation discipline: per round, every node reads its own state and
// the messages delivered to it, then emits messages over its incident
// edges. No node ever reads another node's state directly. The driver
// (an omniscient but passive scheduler, standard for synchronous models)
// sequences the protocol's phases and detects global termination.
package dist

import (
	"llpmst/internal/graph"
)

// Network wraps a graph as a synchronous message-passing system: arcs are
// directed channels, each round delivers every message sent in the previous
// round.
type Network struct {
	G *graph.CSR
	// reverse[a] is the arc dual to a: same undirected edge, opposite
	// direction. Sending "over" arc a delivers to Target(a), who sees the
	// message arrive on reverse[a].
	reverse []int64

	inbox  [][]Message // per node, current round
	outbox [][]Message // per node, next round
	Rounds int         // rounds executed
	Sent   int64       // total messages delivered
}

// Message is one payload in flight. Arc is the receiving node's arc the
// message arrived on (so the receiver can attribute it to a neighbor edge
// without knowing global ids).
type Message struct {
	Arc  int64
	Kind MsgKind
	A, B uint64
}

// MsgKind tags protocol messages.
type MsgKind uint8

// Protocol message kinds (see ghs.go).
const (
	MsgFrag MsgKind = iota + 1
	MsgReport
	MsgWinner
	MsgConnect
	MsgNewFrag
	MsgOrient
)

// NewNetwork builds the message fabric over g.
func NewNetwork(g *graph.CSR) *Network {
	n := g.NumVertices()
	return &Network{
		G:       g,
		reverse: pairArcs(g),
		inbox:   make([][]Message, n),
		outbox:  make([][]Message, n),
	}
}

// Send queues a message over arc a (from Source-of-a to Target-of-a) for
// delivery next round.
func (nw *Network) Send(a int64, kind MsgKind, x, y uint64) {
	to := nw.G.Target(a)
	nw.outbox[to] = append(nw.outbox[to], Message{Arc: nw.reverse[a], Kind: kind, A: x, B: y})
}

// Deliver advances one round: everything sent becomes readable, outboxes
// clear. Returns the number of messages delivered.
func (nw *Network) Deliver() int {
	nw.Rounds++
	delivered := 0
	for v := range nw.outbox {
		nw.inbox[v] = nw.inbox[v][:0]
		nw.inbox[v], nw.outbox[v] = nw.outbox[v], nw.inbox[v]
		delivered += len(nw.inbox[v])
	}
	nw.Sent += int64(delivered)
	return delivered
}

// Inbox returns node v's messages for the current round.
func (nw *Network) Inbox(v uint32) []Message { return nw.inbox[v] }

// Reverse returns the dual arc of a.
func (nw *Network) Reverse(a int64) int64 { return nw.reverse[a] }
