package dist

import (
	"context"
	"fmt"
	"sort"

	"llpmst/internal/fault"
	"llpmst/internal/graph"
	"llpmst/internal/obs"
	"llpmst/internal/par"
)

// MSF runs the synchronous GHS-style distributed minimum spanning forest
// protocol on the network of g and returns the chosen edge ids plus
// simulation statistics. The protocol is phase-structured distributed
// Boruvka, faithful to the fragment story of §IV:
//
//	each phase: (1) neighbors exchange fragment ids;
//	            (2) every node finds its cheapest crossing incident edge and
//	                the fragment convergecasts the minimum up its tree;
//	            (3) the root broadcasts the winning edge; its owner sends
//	                CONNECT over it;
//	            (4) mutual CONNECTs identify the core edge (the paper's
//	                symmetry break: the higher endpoint roots the merged
//	                fragment); the new fragment id floods the merge chain;
//	            (5) an orientation wave from the new root rebuilds parent
//	                pointers over the (now larger) fragment tree.
//
// Every step is message-driven: a node touches only its own state and its
// inbox. The driver sequences phases and observes quiescence, playing the
// omniscient-but-passive scheduler role standard in synchronous models.
//
// Like the shared-memory algorithms, ties break on packed (weight, edge id)
// keys, so the protocol elects exactly the canonical MSF.
func MSF(g *graph.CSR) ([]uint32, SimStats, error) {
	return RunGHS(context.Background(), g)
}

// RunGHS is MSF with cooperative cancellation and observability: ctx is
// polled at every phase boundary and between message rounds, and a
// collector carried on ctx (obs.NewContext) receives per-phase spans plus
// the ghs.phases / ghs.messages counters. A cancelled run returns the edge
// ids elected in completed sub-phases — always a subset of the canonical
// MSF, since an edge is only chosen after its fragment's convergecast
// finished — plus a non-nil error wrapping ctx.Err().
func RunGHS(ctx context.Context, g *graph.CSR) ([]uint32, SimStats, error) {
	return runGHS(ctx, g, NewNetwork(g))
}

// RunGHSFaulty is RunGHS over a lossy network: every transmission is
// subject to plan's drop/duplicate/delay/reorder probabilities and crash
// schedule, masked by FaultyNetwork's reliable transport (sequence numbers,
// acks, retransmission with backoff). Under any fault schedule that
// eventually delivers retransmissions and contains no crash-stop, the run
// elects exactly the canonical MSF — identical to the fault-free run, just
// over more rounds.
//
// Crash-restart intervals are omission faults (the node neither sends nor
// receives while down, state intact) and are fully masked: sub-phases wait
// for scheduled restarts. A crash-stop makes the dead node's entire
// connected component unreachable; the driver dooms that component (its
// nodes stop electing — a doomed fragment cannot be completed soundly) and
// the run returns a *PartitionError naming the dead and stranded vertices
// alongside the sound partial forest. The healthy components still elect
// exactly their canonical MSF restriction.
//
// The run is deterministic: identical graph + plan (seed included) gives a
// byte-identical forest and SimStats. A collector on ctx additionally
// receives the ghs.retransmits and fault.dropped/duplicated/delayed
// counters.
func RunGHSFaulty(ctx context.Context, g *graph.CSR, plan fault.Plan) ([]uint32, SimStats, error) {
	fn := NewFaultyNetwork(g, fault.New(plan))
	ids, st, err := runGHS(ctx, g, fn)
	fs, retransmits := fn.FaultStats()
	st.Retransmits = retransmits
	st.Dropped = fs.Dropped
	st.Duplicated = fs.Duplicated
	st.Delayed = fs.Delayed
	col := obs.FromContext(ctx)
	col.Count(obs.CtrGHSRetransmits, retransmits)
	col.Count(obs.CtrFaultDropped, fs.Dropped)
	col.Count(obs.CtrFaultDuplicated, fs.Duplicated)
	col.Count(obs.CtrFaultDelayed, fs.Delayed)
	return ids, st, err
}

// Watchdog tuning for runSubPhase: after kickEvery consecutive silent
// rounds that are not conclusive (unacked traffic or pending restarts), the
// driver kicks the fabric into immediate retransmission; after stallLimit
// such rounds it declares the run stalled (a fault schedule that never
// delivers, e.g. drop probability 1 on a needed arc).
const (
	kickEvery  = 8
	stallLimit = 1 << 20
)

func runGHS(ctx context.Context, g *graph.CSR, fab Fabric) ([]uint32, SimStats, error) {
	n := g.NumVertices()
	cc := par.NewCanceller(ctx)
	col := obs.FromContext(ctx)
	defer col.Span("ghs")()

	type nodeState struct {
		frag      uint32
		parentArc int64 // arc toward parent; -1 at roots
		active    bool

		// convergecast scratch
		localBest uint64
		acc       uint64
		pending   int
		reported  bool
		winner    uint64
		hasWinner bool

		// merge scratch
		connectArc int64 // arc CONNECT was sent on this phase (-1 none)
		newFrag    uint32
		hasNewFrag bool
		oriented   bool
	}
	nodes := make([]nodeState, n)
	branch := make([]bool, g.NumArcs())    // tree (fragment) edges, symmetric
	nbrFrag := make([]uint32, g.NumArcs()) // neighbor fragment per arc
	connRecv := make([]bool, g.NumArcs())  // CONNECT received on this arc this phase
	chosen := make([]bool, g.NumEdges())
	var result []uint32

	for v := range nodes {
		nodes[v] = nodeState{frag: uint32(v), parentArc: -1, active: true}
	}

	// Partition bookkeeping: crash-stop nodes and the components they doom.
	// A fragment containing a permanently dead node can never complete its
	// convergecast, and recomputing an MSF of the surviving subgraph would
	// be unsound (MSF(G − dead) need not be a subset of MSF(G)), so the
	// whole component stops electing: its prior elections used complete
	// convergecast information and stand.
	var dead []uint32
	doomed := make([]bool, n)
	var comp []uint32 // lazy component labels of g
	doomNewlyDead := func() {
		for _, v := range fab.NewlyDead() {
			dead = append(dead, v)
			if comp == nil {
				comp = components(g)
			}
			cv := comp[v]
			for w := uint32(0); int(w) < n; w++ {
				if comp[w] == cv && !doomed[w] {
					doomed[w] = true
					nodes[w].active = false
					fab.Drop(w)
				}
			}
		}
	}

	// runSubPhase drives handler rounds to quiescence: handler is invoked
	// for every live node each round (with that round's inbox) and must be
	// idempotent across rounds via its own guards. A round is conclusive
	// only when nothing was delivered AND the fabric is quiet (no unacked
	// traffic, no pending restart) — on a lossy fabric, silence alone just
	// means retransmissions are backing off, so the watchdog kicks them and
	// eventually declares a stall. Returns true when interrupted by ctx;
	// rounds are atomic (a started round always delivers its sends), so
	// node state stays consistent across an interruption.
	stalled := false
	runSubPhase := func(handler func(v uint32)) bool {
		idle := 0
		for {
			if cc.Poll() {
				return true
			}
			doomNewlyDead()
			for v := uint32(0); int(v) < n; v++ {
				if fab.Alive(v) {
					handler(v)
				}
			}
			if fab.Deliver() > 0 {
				idle = 0
				continue
			}
			if fab.Quiet() {
				return false
			}
			idle++
			if idle%kickEvery == 0 {
				fab.Kick()
			}
			if idle > stallLimit {
				stalled = true
				return false
			}
		}
	}
	// Message counts are streamed per phase as deltas of the fabric's
	// running total (round-aware collectors then see the per-phase message
	// curve); finishStats emits whatever the last partial phase added, so
	// the streamed total always equals SimStats.Messages.
	var eSent int64
	flushSent := func() {
		_, sent := fab.Counters()
		if d := sent - eSent; d != 0 {
			col.Count(obs.CtrGHSMessages, d)
			eSent = sent
		}
	}
	finishStats := func(phase int) SimStats {
		rounds, sent := fab.Counters()
		flushSent()
		return SimStats{Phases: phase, Rounds: rounds, Messages: sent}
	}

	maxPhases := 2
	for x := 1; x < n; x *= 2 {
		maxPhases++ // fragments at least halve per phase: log2(n)+2 bound
	}
	phase := 0
	cancelled := false
	for {
		if cc.Poll() {
			cancelled = true
			break
		}
		phase++
		// Each protocol phase is one round segment for round-aware
		// collectors; the still-active node count is the phase's shrinking
		// frontier (fragments at least halve, so it decays geometrically).
		obs.MarkRound(col, int64(phase))
		activeNodes := int64(0)
		for v := range nodes {
			if nodes[v].active {
				activeNodes++
			}
		}
		col.Gauge(obs.GaugeGHSActive, activeNodes)
		col.Count(obs.CtrGHSPhases, 1)
		phaseSpan := col.Span("ghs.phase")
		if phase > maxPhases+1 {
			phaseSpan()
			return nil, SimStats{}, fmt.Errorf("dist: protocol exceeded %d phases; protocol bug", maxPhases)
		}
		// ---- (1) fragment-id exchange ----
		// Handler-driven so that a lossy fabric can finish the exchange
		// with retransmissions: every active node announces its fragment id
		// once; the sub-phase ends only when every announcement has been
		// delivered and acknowledged, so nbrFrag is globally current.
		fragSent := make([]bool, n)
		aborted := runSubPhase(func(v uint32) {
			st := &nodes[v]
			if st.active && !fragSent[v] {
				fragSent[v] = true
				lo, hi := g.ArcRange(v)
				for a := lo; a < hi; a++ {
					fab.Send(a, MsgFrag, uint64(st.frag), 0)
				}
			}
			for _, m := range fab.Inbox(v) {
				if m.Kind == MsgFrag {
					nbrFrag[m.Arc] = uint32(m.A)
				}
			}
		})
		if aborted || stalled {
			cancelled = aborted
			phaseSpan()
			break
		}

		// ---- (2) local minima + convergecast ----
		for v := uint32(0); int(v) < n; v++ {
			st := &nodes[v]
			st.localBest = par.InfKey
			st.acc = par.InfKey
			st.reported = false
			st.hasWinner = false
			st.winner = par.InfKey
			st.connectArc = -1
			st.hasNewFrag = false
			st.oriented = false
			if !st.active {
				continue
			}
			lo, hi := g.ArcRange(v)
			st.pending = 0
			for a := lo; a < hi; a++ {
				if nbrFrag[a] != st.frag {
					if k := g.ArcKey(a); k < st.localBest {
						st.localBest = k
					}
				}
				if branch[a] && a != st.parentArc {
					st.pending++
				}
			}
			st.acc = st.localBest
		}
		aborted = runSubPhase(func(v uint32) {
			st := &nodes[v]
			if !st.active {
				return
			}
			for _, m := range fab.Inbox(v) {
				if m.Kind == MsgReport {
					if m.A < st.acc {
						st.acc = m.A
					}
					st.pending--
				}
			}
			if st.pending == 0 && !st.reported {
				st.reported = true
				if st.parentArc >= 0 {
					// parentArc is this node's own arc toward its parent, so
					// sending on it delivers upward.
					fab.Send(st.parentArc, MsgReport, st.acc, 0)
				} else {
					st.winner = st.acc // root learned the fragment MWOE
					st.hasWinner = true
				}
			}
		})
		if aborted || stalled {
			cancelled = aborted
			phaseSpan()
			break
		}

		// ---- (3) winner broadcast + CONNECT ----
		allDone := true
		handleWinner := func(v uint32, key uint64) {
			st := &nodes[v]
			st.winner = key
			st.hasWinner = true
			lo, hi := g.ArcRange(v)
			for a := lo; a < hi; a++ {
				// Forward only over this phase's intra-fragment tree arcs:
				// branch may already include connect edges added below,
				// which lead into foreign fragments.
				if branch[a] && a != st.parentArc && nbrFrag[a] == st.frag {
					fab.Send(a, MsgWinner, key, 0)
				}
			}
			if key == par.InfKey {
				st.active = false // fragment complete
				return
			}
			// If this node owns the winning edge, CONNECT over it.
			for a := lo; a < hi; a++ {
				if nbrFrag[a] != st.frag && g.ArcKey(a) == key {
					st.connectArc = a
					fab.Send(a, MsgConnect, uint64(st.frag), uint64(v))
					if !chosen[g.ArcEdgeID(a)] {
						chosen[g.ArcEdgeID(a)] = true
						result = append(result, g.ArcEdgeID(a))
					}
					branch[a] = true // the reverse side is set on CONNECT receipt
				}
			}
		}
		started := make([]bool, n)
		aborted = runSubPhase(func(v uint32) {
			st := &nodes[v]
			if st.parentArc < 0 && st.hasWinner && !started[v] && st.active {
				started[v] = true
				handleWinner(v, st.winner)
				// No return: same-round CONNECTs from neighbor fragments
				// must still be consumed below.
			}
			for _, m := range fab.Inbox(v) {
				switch m.Kind {
				case MsgWinner:
					if !started[v] {
						started[v] = true
						handleWinner(v, m.A)
					}
				case MsgConnect:
					connRecv[m.Arc] = true
					branch[m.Arc] = true
				}
			}
		})
		if aborted || stalled {
			// Edges already elected are fragment MWOEs (cut property: always
			// in the MSF), so the partial result stays sound.
			cancelled = aborted
			phaseSpan()
			break
		}
		for v := uint32(0); int(v) < n; v++ {
			if nodes[v].active {
				allDone = false
			}
		}
		if allDone {
			phaseSpan()
			break
		}

		// ---- (4) core detection + new-fragment flood ----
		// Core edge: CONNECT sent and received on the same arc. The higher
		// node id of the core edge roots the merged fragment and names it.
		floodStarted := make([]bool, n)
		aborted = runSubPhase(func(v uint32) {
			st := &nodes[v]
			if !floodStarted[v] && st.connectArc >= 0 && connRecv[st.connectArc] {
				other := g.Target(st.connectArc)
				newID := v
				if other > v {
					newID = other
				}
				floodStarted[v] = true
				st.hasNewFrag = true
				st.newFrag = newID
				// Flood over all fragment-tree arcs (including the fresh
				// connect edges).
				lo, hi := g.ArcRange(v)
				for a := lo; a < hi; a++ {
					if branch[a] {
						fab.Send(a, MsgNewFrag, uint64(newID), 0)
					}
				}
			}
			for _, m := range fab.Inbox(v) {
				if m.Kind != MsgNewFrag {
					continue
				}
				if !st.hasNewFrag {
					st.hasNewFrag = true
					st.newFrag = uint32(m.A)
					floodStarted[v] = true
					lo, hi := g.ArcRange(v)
					for a := lo; a < hi; a++ {
						if branch[a] && a != m.Arc {
							fab.Send(a, MsgNewFrag, m.A, 0)
						}
					}
				}
			}
		})
		if aborted || stalled {
			cancelled = aborted
			phaseSpan()
			break
		}
		for v := uint32(0); int(v) < n; v++ {
			st := &nodes[v]
			if st.hasNewFrag {
				st.frag = st.newFrag
			}
		}

		// ---- (5) orientation wave from the new roots ----
		orientStarted := make([]bool, n)
		for v := uint32(0); int(v) < n; v++ {
			st := &nodes[v]
			if !st.active {
				continue
			}
			st.parentArc = -2 // unset
			if st.hasNewFrag && st.newFrag == v {
				st.parentArc = -1 // new root
			}
		}
		aborted = runSubPhase(func(v uint32) {
			st := &nodes[v]
			if !st.active {
				return
			}
			if st.parentArc == -1 && !orientStarted[v] {
				orientStarted[v] = true
				lo, hi := g.ArcRange(v)
				for a := lo; a < hi; a++ {
					if branch[a] {
						fab.Send(a, MsgOrient, 0, 0)
					}
				}
			}
			for _, m := range fab.Inbox(v) {
				if m.Kind != MsgOrient {
					continue
				}
				if st.parentArc == -2 {
					st.parentArc = m.Arc
					lo, hi := g.ArcRange(v)
					for a := lo; a < hi; a++ {
						if branch[a] && a != m.Arc {
							fab.Send(a, MsgOrient, 0, 0)
						}
					}
				}
			}
		})
		if aborted || stalled {
			cancelled = aborted
			phaseSpan()
			break
		}
		// Clear per-phase arc scratch.
		for i := range connRecv {
			connRecv[i] = false
		}
		flushSent()
		phaseSpan()
	}
	st := finishStats(phase)
	if cancelled {
		return result, st, fmt.Errorf("dist: ghs interrupted after %d phases with %d edges elected: %w",
			phase, len(result), cc.Err())
	}
	if stalled {
		return result, st, fmt.Errorf("dist: ghs stalled after %d rounds with %d edges elected: "+
			"the fault schedule never delivers some retransmission", st.Rounds, len(result))
	}
	if len(dead) > 0 {
		var stranded []uint32
		isDead := make(map[uint32]bool, len(dead))
		for _, v := range dead {
			isDead[v] = true
		}
		for v := uint32(0); int(v) < n; v++ {
			if doomed[v] && !isDead[v] {
				stranded = append(stranded, v)
			}
		}
		sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
		elected := make([]uint32, len(result))
		copy(elected, result)
		return result, st, &PartitionError{Dead: dead, Stranded: stranded, Elected: elected}
	}
	return result, st, nil
}

// components labels the connected components of g by BFS: comp[v] is the
// smallest vertex id of v's component.
func components(g *graph.CSR) []uint32 {
	n := g.NumVertices()
	comp := make([]uint32, n)
	for v := range comp {
		comp[v] = uint32(n) // unvisited
	}
	queue := make([]uint32, 0, 1024)
	for s := uint32(0); int(s) < n; s++ {
		if comp[s] != uint32(n) {
			continue
		}
		comp[s] = s
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			lo, hi := g.ArcRange(v)
			for a := lo; a < hi; a++ {
				if t := g.Target(a); comp[t] == uint32(n) {
					comp[t] = s
					queue = append(queue, t)
				}
			}
		}
	}
	return comp
}

// SimStats reports the distributed protocol's costs. The struct is
// comparable (==), which the determinism tests use: identical seed and
// fault plan must reproduce identical stats.
type SimStats struct {
	Phases   int   // Boruvka phases
	Rounds   int   // synchronous message rounds
	Messages int64 // total protocol messages delivered (exactly-once)

	// Fault-run extras (zero on a perfect network).
	Retransmits int64 // transport retransmissions of unacked messages
	Dropped     int64 // transmissions lost by the injector
	Duplicated  int64 // transmissions duplicated by the injector
	Delayed     int64 // transmissions delayed by the injector
}
