package dist

import (
	"llpmst/internal/fault"
	"llpmst/internal/graph"
)

// FaultyNetwork is a lossy message fabric: every transmission consults a
// seeded fault.Injector (drop, duplicate, delay, reorder; node crashes) and
// a reliable transport masks the damage so the GHS handlers above it stay
// oblivious:
//
//   - every protocol message gets a per-directed-arc sequence number and is
//     held by the sender until acknowledged;
//   - receivers acknowledge every arrival and deduplicate by sequence
//     number (a contiguous low-water mark plus a sparse set for
//     out-of-order arrivals), so duplicates and retransmissions deliver
//     exactly once to the protocol;
//   - unacknowledged frames are retransmitted on a round-based timeout with
//     exponential backoff (Kick overrides the backoff, the driver's
//     watchdog action);
//   - frames addressed to a node that is down (crash-restart interval) wait
//     in flight and deliver after the restart; acks are ordinary
//     transmissions and subject to the same faults.
//
// Quiet() tells the driver when a silent round is conclusive: no
// unacknowledged frame is outstanding and no crashed node will restart.
// Crash-stop nodes never ack, so the driver dooms their components (Drop)
// to make quiescence reachable again.
//
// The fabric is single-threaded by design: the injector's RNG is consumed
// in deterministic (arc, round) order, making whole chaos runs replayable
// from the plan seed.
type FaultyNetwork struct {
	G       *graph.CSR
	inj     *fault.Injector
	reverse []int64

	round   int
	seqNext []uint32 // next sequence number per sender arc

	// Receiver-side dedup, indexed by the sender arc (unique per direction):
	// everything below contig[a] was accepted; seen[a] holds out-of-order
	// accepted sequence numbers >= contig[a].
	contig []uint32
	seen   []map[uint32]struct{}

	// Sender-side reliability: unacked frames per sender arc.
	pending   [][]pendingFrame
	pendCount int

	flights []flight // transmissions scheduled for future delivery
	spare   []flight // ping-pong buffer for Deliver's flight scan
	inbox   [][]Message
	dropped []bool // nodes removed by Drop (doomed components)

	Rounds      int   // rounds executed
	Sent        int64 // protocol messages delivered (exactly-once)
	Retransmits int64 // transport retransmissions
}

// pendingFrame is an unacknowledged protocol message awaiting its ack.
type pendingFrame struct {
	seq       uint32
	kind      MsgKind
	a, b      uint64
	nextRetry int
	backoff   int
}

// flight is one transmission in the air: a data frame or an ack, due at
// deliverAt. arc is the sender-side arc it travels over.
type flight struct {
	deliverAt int
	arc       int64
	seq       uint32
	kind      MsgKind
	a, b      uint64
	ack       bool
}

// Transport tuning: the ack round-trip over a clean fabric is 2 rounds, so
// the first retransmission waits rtoInitial rounds and backs off
// exponentially up to rtoMax.
const (
	rtoInitial = 4
	rtoMax     = 64
)

// NewFaultyNetwork builds the lossy fabric over g, injecting the faults of
// inj.
func NewFaultyNetwork(g *graph.CSR, inj *fault.Injector) *FaultyNetwork {
	n := g.NumVertices()
	na := g.NumArcs()
	return &FaultyNetwork{
		G:       g,
		inj:     inj,
		reverse: pairArcs(g),
		seqNext: make([]uint32, na),
		contig:  make([]uint32, na),
		seen:    make([]map[uint32]struct{}, na),
		pending: make([][]pendingFrame, na),
		inbox:   make([][]Message, n),
		dropped: make([]bool, n),
	}
}

// pairArcs computes the dual-arc table: reverse[a] is the arc of the same
// undirected edge in the opposite direction.
func pairArcs(g *graph.CSR) []int64 {
	reverse := make([]int64, g.NumArcs())
	first := make([]int64, g.NumEdges())
	for i := range first {
		first[i] = -1
	}
	n := g.NumVertices()
	for v := uint32(0); int(v) < n; v++ {
		lo, hi := g.ArcRange(v)
		for a := lo; a < hi; a++ {
			eid := g.ArcEdgeID(a)
			if first[eid] < 0 {
				first[eid] = a
			} else {
				reverse[a] = first[eid]
				reverse[first[eid]] = a
			}
		}
	}
	return reverse
}

// Send implements Fabric: the message is assigned the next sequence number
// of arc a, parked for retransmission, and transmitted once now.
func (fn *FaultyNetwork) Send(a int64, kind MsgKind, x, y uint64) {
	src := fn.G.Target(fn.reverse[a])
	if fn.dropped[src] || fn.dropped[fn.G.Target(a)] {
		return
	}
	seq := fn.seqNext[a]
	fn.seqNext[a]++
	fn.pending[a] = append(fn.pending[a], pendingFrame{
		seq: seq, kind: kind, a: x, b: y,
		nextRetry: fn.round + rtoInitial, backoff: rtoInitial,
	})
	fn.pendCount++
	fn.transmit(flight{arc: a, seq: seq, kind: kind, a: x, b: y})
}

// transmit rolls the injector's dice for one frame and schedules the
// surviving copies. fl.deliverAt is filled in here.
func (fn *FaultyNetwork) transmit(fl flight) {
	drop, dup, delay := fn.inj.Transmit(fl.arc)
	if drop {
		return
	}
	fl.deliverAt = fn.round + 1 + delay
	fn.flights = append(fn.flights, fl)
	if dup {
		fn.flights = append(fn.flights, fl)
	}
}

// Deliver implements Fabric: retransmit overdue frames, advance one round,
// move due flights into inboxes (deduplicating and acknowledging), and
// return how many protocol messages were newly delivered.
func (fn *FaultyNetwork) Deliver() int {
	fn.round++
	fn.Rounds = fn.round

	// Retransmission scan, in deterministic arc order.
	for a := range fn.pending {
		for i := range fn.pending[a] {
			p := &fn.pending[a][i]
			if p.nextRetry > fn.round {
				continue
			}
			fn.Retransmits++
			fn.transmit(flight{arc: int64(a), seq: p.seq, kind: p.kind, a: p.a, b: p.b})
			if p.backoff < rtoMax {
				p.backoff *= 2
			}
			p.nextRetry = fn.round + p.backoff
		}
	}

	for v := range fn.inbox {
		fn.inbox[v] = fn.inbox[v][:0]
	}
	delivered := 0
	// Scan into the spare buffer: processing a frame can transmit fresh
	// acks, which append to fn.flights — so fn.flights must not alias the
	// slice being iterated.
	old := fn.flights
	fn.flights = fn.spare[:0]
	for _, fl := range old {
		dst := fn.G.Target(fl.arc)
		src := fn.G.Target(fn.reverse[fl.arc])
		if fn.dropped[dst] || fn.dropped[src] {
			continue // doomed endpoints: discard
		}
		if fl.deliverAt > fn.round {
			fn.flights = append(fn.flights, fl)
			continue
		}
		if !fn.inj.Alive(dst, fn.round) {
			// The receiver is down: hold the frame and try again next
			// round (it survives a crash-restart interval this way).
			fl.deliverAt = fn.round + 1
			fn.flights = append(fn.flights, fl)
			continue
		}
		if fl.ack {
			fn.handleAck(fl)
			continue
		}
		if fn.accept(fl) {
			fn.inbox[dst] = append(fn.inbox[dst], Message{
				Arc: fn.reverse[fl.arc], Kind: fl.kind, A: fl.a, B: fl.b,
			})
			delivered++
		}
		// Acknowledge every arrival — duplicates too, in case the first
		// ack was lost. The ack travels the reverse arc and is itself
		// subject to faults (but never retransmitted: reliability lives
		// with the data frame).
		fn.transmit(flight{arc: fn.reverse[fl.arc], seq: fl.seq, ack: true})
	}
	fn.spare = old[:0]

	if fn.inj.Reordering() {
		for v := range fn.inbox {
			box := fn.inbox[v]
			fn.inj.Shuffle(len(box), func(i, j int) { box[i], box[j] = box[j], box[i] })
		}
	}
	fn.Sent += int64(delivered)
	return delivered
}

// accept deduplicates an arriving data frame by (arc, seq). It reports
// whether the frame is new (deliver to the protocol) as opposed to a
// duplicate (suppress, but still acknowledge).
func (fn *FaultyNetwork) accept(fl flight) bool {
	a := fl.arc
	if fl.seq < fn.contig[a] {
		return false
	}
	if _, dup := fn.seen[a][fl.seq]; dup {
		return false
	}
	if fl.seq == fn.contig[a] {
		fn.contig[a]++
		for {
			if _, ok := fn.seen[a][fn.contig[a]]; !ok {
				break
			}
			delete(fn.seen[a], fn.contig[a])
			fn.contig[a]++
		}
		return true
	}
	if fn.seen[a] == nil {
		fn.seen[a] = make(map[uint32]struct{})
	}
	fn.seen[a][fl.seq] = struct{}{}
	return true
}

// handleAck retires the pending frame the ack names. The ack traveled over
// the receiver's arc, so the data frame's sender arc is its reverse.
func (fn *FaultyNetwork) handleAck(fl flight) {
	a := fn.reverse[fl.arc]
	list := fn.pending[a]
	for i := range list {
		if list[i].seq == fl.seq {
			list[i] = list[len(list)-1]
			fn.pending[a] = list[:len(list)-1]
			fn.pendCount--
			return
		}
	}
}

// Inbox implements Fabric.
func (fn *FaultyNetwork) Inbox(v uint32) []Message { return fn.inbox[v] }

// Quiet implements Fabric: a silent round is conclusive only when every
// data frame has been acknowledged and no crashed node is scheduled to
// restart (a revived node produces and consumes messages, so quiescence
// before its restart would be premature — this is load-bearing for e.g. a
// convergecast leaf that is down with no traffic addressed to it).
func (fn *FaultyNetwork) Quiet() bool {
	return fn.pendCount == 0 && !fn.inj.RestartPending(fn.round)
}

// Alive implements Fabric.
func (fn *FaultyNetwork) Alive(v uint32) bool {
	return !fn.dropped[v] && fn.inj.Alive(v, fn.round)
}

// Kick implements Fabric: every unacked frame becomes due on the next
// round, overriding backoff.
func (fn *FaultyNetwork) Kick() {
	for a := range fn.pending {
		for i := range fn.pending[a] {
			fn.pending[a][i].nextRetry = fn.round
		}
	}
}

// NewlyDead implements Fabric.
func (fn *FaultyNetwork) NewlyDead() []uint32 { return fn.inj.NewlyDead(fn.round) }

// Drop implements Fabric: v's pending traffic is purged (in-flight frames
// touching v are discarded lazily in Deliver) and future sends to or from v
// are ignored.
func (fn *FaultyNetwork) Drop(v uint32) {
	if fn.dropped[v] {
		return
	}
	fn.dropped[v] = true
	lo, hi := fn.G.ArcRange(v)
	for a := lo; a < hi; a++ {
		for _, dir := range [2]int64{a, fn.reverse[a]} {
			if k := len(fn.pending[dir]); k > 0 {
				fn.pendCount -= k
				fn.pending[dir] = fn.pending[dir][:0]
			}
		}
	}
}

// Counters implements Fabric.
func (fn *FaultyNetwork) Counters() (int, int64) { return fn.Rounds, fn.Sent }

// FaultStats returns the injector's fault counts alongside the transport's
// retransmissions.
func (fn *FaultyNetwork) FaultStats() (stats fault.Stats, retransmits int64) {
	return fn.inj.Stats(), fn.Retransmits
}
