package dist

// Fabric is the message-passing substrate the GHS driver runs over. Two
// implementations exist: the perfect *Network (exactly-once, next-round,
// in-order delivery) and the lossy *FaultyNetwork (drop/duplicate/delay/
// reorder plus node crashes, masked by a reliable transport). The protocol
// handlers are identical over both; only the driver's quiescence test
// consults the fabric's extra methods.
type Fabric interface {
	// Send queues a message over arc a for delivery in a later round.
	Send(a int64, kind MsgKind, x, y uint64)
	// Deliver advances one round and returns how many protocol-visible
	// messages became readable (transport frames — acks, duplicates — do
	// not count).
	Deliver() int
	// Inbox returns node v's messages for the current round.
	Inbox(v uint32) []Message
	// Quiet reports whether a Deliver() == 0 round is conclusive: no
	// unacknowledged traffic is outstanding and no crashed node is
	// scheduled to restart. The perfect network is always quiet.
	Quiet() bool
	// Alive reports whether node v can act this round.
	Alive(v uint32) bool
	// Kick asks the fabric to retransmit all unacknowledged traffic on the
	// next round, overriding backoff — the driver's watchdog action for a
	// stalled sub-phase.
	Kick()
	// NewlyDead returns nodes that have crashed permanently (crash-stop)
	// since the last call, each reported exactly once.
	NewlyDead() []uint32
	// Drop removes node v from the fabric: pending and future traffic to
	// and from v is discarded. The driver calls it for every vertex of a
	// component doomed by a crash-stop, so that quiescence stays reachable.
	Drop(v uint32)
	// Counters returns the rounds executed and protocol messages delivered.
	Counters() (rounds int, delivered int64)
}

// Quiet implements Fabric: the perfect network has no outstanding traffic
// beyond its outboxes, which Deliver always drains.
func (nw *Network) Quiet() bool { return true }

// Alive implements Fabric: nodes never fail on the perfect network.
func (nw *Network) Alive(uint32) bool { return true }

// Kick implements Fabric as a no-op: nothing is ever retransmitted.
func (nw *Network) Kick() {}

// NewlyDead implements Fabric: no crashes on the perfect network.
func (nw *Network) NewlyDead() []uint32 { return nil }

// Drop implements Fabric as a no-op (never called: NewlyDead is empty).
func (nw *Network) Drop(uint32) {}

// Counters implements Fabric.
func (nw *Network) Counters() (int, int64) { return nw.Rounds, nw.Sent }
