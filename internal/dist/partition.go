package dist

import "fmt"

// PartitionError reports that crash-stop failures made part of the graph
// permanently unreachable mid-protocol. The run still returns a sound
// partial forest: every edge in Elected was a fragment minimum-weight
// outgoing edge chosen from a completed convergecast, so by the cut
// property it belongs to the canonical MSF of the original graph. The
// healthy components (those containing no dead node) finish their exact
// MSF restriction; the doomed components keep only the edges they elected
// before the crash.
//
// Note the stranded set is the rest of each dead node's entire connected
// component, not just vertices separated from some root: the minimum
// spanning forest of the surviving subgraph need not be a subset of the
// original MSF, so no sound election can continue anywhere a crash-stop
// occurred.
type PartitionError struct {
	// Dead lists the crash-stop nodes, ascending.
	Dead []uint32
	// Stranded lists the live vertices doomed alongside them (same
	// components, minus Dead), ascending.
	Stranded []uint32
	// Elected is the sound partial forest at the time the run ended — the
	// same edge ids the accompanying result slice carries.
	Elected []uint32
}

// Error implements error.
func (e *PartitionError) Error() string {
	return fmt.Sprintf("dist: network partitioned: %d node(s) crashed, stranding %d more; %d sound forest edge(s) elected",
		len(e.Dead), len(e.Stranded), len(e.Elected))
}
