package dist

import (
	"slices"
	"testing"

	"llpmst/internal/gen"
	"llpmst/internal/graph"
	"llpmst/internal/mst"
)

func requireCanonicalMSF(t *testing.T, g *graph.CSR) SimStats {
	t.Helper()
	ids, stats, err := MSF(g)
	if err != nil {
		t.Fatal(err)
	}
	slices.Sort(ids)
	want := mst.Kruskal(g)
	if !slices.Equal(ids, want.EdgeIDs) {
		t.Fatalf("distributed MSF has %d edges, oracle %d; sets differ", len(ids), len(want.EdgeIDs))
	}
	return stats
}

func TestGHSPaperGraph(t *testing.T) {
	g := gen.PaperFigure1()
	stats := requireCanonicalMSF(t, g)
	if stats.Phases < 2 {
		t.Fatalf("phases = %d, want >= 2 (the paper walks two Boruvka rounds)", stats.Phases)
	}
	if stats.Messages == 0 || stats.Rounds == 0 {
		t.Fatal("no message traffic recorded")
	}
}

func TestGHSGeneratorZoo(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.CSR
	}{
		{"path", gen.Path(60, nil)},
		{"cycle", gen.Cycle(41, 3)},
		{"star", gen.Star(30)},
		{"complete", gen.Complete(16, 5)},
		{"road", gen.RoadNetwork(1, 12, 12, 0.3, 7)},
		{"rmat", gen.RMAT(1, 7, 8, gen.WeightUniform, 9)},
		{"rmat-ties", gen.RMAT(1, 6, 8, gen.WeightInteger, 10)},
		{"disconnected", gen.Disconnected(4, 12, 11)},
		{"caterpillar", gen.Caterpillar(10, 3, 13)},
		{"binary-tree", gen.BinaryTree(63, 15)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			requireCanonicalMSF(t, tc.g)
		})
	}
}

func TestGHSDegenerate(t *testing.T) {
	empty := graph.MustFromEdges(1, 0, nil)
	if ids, _, err := MSF(empty); err != nil || len(ids) != 0 {
		t.Fatalf("empty graph: %v %v", ids, err)
	}
	single := graph.MustFromEdges(1, 1, nil)
	if ids, _, err := MSF(single); err != nil || len(ids) != 0 {
		t.Fatalf("single vertex: %v %v", ids, err)
	}
	isolated := graph.MustFromEdges(1, 5, nil)
	if ids, _, err := MSF(isolated); err != nil || len(ids) != 0 {
		t.Fatalf("isolated vertices: %v %v", ids, err)
	}
	pair := graph.MustFromEdges(1, 2, []graph.Edge{{U: 0, V: 1, W: 7}})
	ids, _, err := MSF(pair)
	if err != nil || len(ids) != 1 {
		t.Fatalf("single edge: %v %v", ids, err)
	}
}

func TestGHSPhaseBoundLogarithmic(t *testing.T) {
	// Fragments at least halve each phase: phases <= log2(n) + slack.
	g := gen.RoadNetwork(1, 20, 20, 0.2, 21)
	stats := requireCanonicalMSF(t, g)
	maxPhases := 2
	for x := 1; x < g.NumVertices(); x *= 2 {
		maxPhases++
	}
	if stats.Phases > maxPhases {
		t.Fatalf("phases = %d exceeds log bound %d", stats.Phases, maxPhases)
	}
	t.Logf("n=%d: %d phases, %d rounds, %d messages",
		g.NumVertices(), stats.Phases, stats.Rounds, stats.Messages)
}

func TestGHSRandomGraphsProperty(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		g := gen.ErdosRenyi(1, 80, 240, gen.WeightInteger, seed)
		requireCanonicalMSF(t, g)
	}
}

func TestNetworkPrimitives(t *testing.T) {
	g := gen.Path(3, nil) // 0-1-2
	nw := NewNetwork(g)
	// Reverse pairing: arc a (u->v) reversed is (v->u) on the same edge.
	for v := uint32(0); int(v) < g.NumVertices(); v++ {
		lo, hi := g.ArcRange(v)
		for a := lo; a < hi; a++ {
			r := nw.Reverse(a)
			if g.Target(r) != v {
				t.Fatalf("reverse of arc %d does not come back to %d", a, v)
			}
			if g.ArcEdgeID(r) != g.ArcEdgeID(a) {
				t.Fatal("reverse arc on different edge")
			}
		}
	}
	// Message delivery: send from 0 to 1, check receipt next round.
	lo, _ := g.ArcRange(0)
	nw.Send(lo, MsgFrag, 42, 7)
	if got := len(nw.Inbox(1)); got != 0 {
		t.Fatalf("message visible before Deliver: %d", got)
	}
	if n := nw.Deliver(); n != 1 {
		t.Fatalf("Deliver = %d, want 1", n)
	}
	in := nw.Inbox(1)
	if len(in) != 1 || in[0].Kind != MsgFrag || in[0].A != 42 || in[0].B != 7 {
		t.Fatalf("inbox wrong: %+v", in)
	}
	if g.Target(in[0].Arc) != 0 {
		t.Fatal("arrival arc does not point back at sender")
	}
	if n := nw.Deliver(); n != 0 {
		t.Fatalf("second Deliver = %d, want 0", n)
	}
	if len(nw.Inbox(1)) != 0 {
		t.Fatal("inbox not cleared")
	}
}
