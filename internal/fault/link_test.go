package fault

import "testing"

// TestLinkDeterminism: two links built from the same plan and arc must see
// the same outcome sequence; a sibling arc must see a different one.
func TestLinkDeterminism(t *testing.T) {
	plan := Plan{
		Seed:    42,
		Default: Probs{Drop: 0.3, Dup: 0.2, Delay: 0.2, MaxDelay: 3},
	}
	a1, a2, b := NewLink(plan, 0), NewLink(plan, 0), NewLink(plan, 1)
	sameAsSibling := true
	for i := 0; i < 200; i++ {
		o1, o2, ob := a1.Transmit(), a2.Transmit(), b.Transmit()
		if o1 != o2 {
			t.Fatalf("op %d: same link diverged: %+v vs %+v", i, o1, o2)
		}
		if o1 != ob {
			sameAsSibling = false
		}
	}
	if sameAsSibling {
		t.Fatal("sibling arcs produced identical fault streams (seeds not decorrelated)")
	}
	st := a1.Stats()
	if st.Dropped == 0 || st.Duplicated == 0 || st.Delayed == 0 {
		t.Fatalf("schedule injected nothing: %+v", st)
	}
}

// TestLinkPartitionWindow: a crash entry keyed by the arc index takes the
// link down for exactly the scheduled transmission ordinals.
func TestLinkPartitionWindow(t *testing.T) {
	l := NewLink(Plan{
		Crashes: []Crash{{Node: 3, At: 2, Restart: 5}},
	}, 3)
	for i := 0; i < 8; i++ {
		got := l.Transmit().Partitioned
		want := i >= 2 && i < 5
		if got != want {
			t.Fatalf("op %d: partitioned=%v, want %v", i, got, want)
		}
	}
	// A link on a different arc ignores the schedule.
	other := NewLink(Plan{Crashes: []Crash{{Node: 3, At: 0, Restart: 0}}}, 4)
	if other.Transmit().Partitioned {
		t.Fatal("crash entry for arc 3 partitioned arc 4")
	}
}
