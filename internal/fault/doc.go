// Package fault provides seeded, deterministic fault injection for the
// simulated distributed network (internal/dist). A Plan describes what can
// go wrong — per-arc message drop/duplicate/delay probabilities, round-level
// reordering, and crash schedules (crash-stop and crash-restart) — and an
// Injector turns the plan into a reproducible stream of fault decisions: the
// same seed and the same sequence of queries always yield the same faults,
// which is what makes chaos runs byte-for-byte replayable (the determinism
// tests in internal/dist pin this).
//
// # Division of labor
//
// The injector is intentionally passive: it only answers questions ("should
// this transmission drop?", "is this node alive at round r?"). The faulty
// network fabric (dist.FaultyNetwork) owns all protocol consequences —
// retransmission, deduplication, component dooming. The injector is not
// safe for concurrent use; the simulation driver is single-threaded, which
// is also what keeps the decision stream deterministic.
//
// # Public surface
//
// The root package re-exports Plan, Probs, and Crash as llpmst.FaultPlan,
// llpmst.FaultProbs, and llpmst.FaultCrash for use with
// llpmst.DistributedMSFFaulty; mstbench's -chaos/-chaos-seed flags build a
// Plan from the command line for the chaos experiment.
package fault
