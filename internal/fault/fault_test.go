package fault

import (
	"slices"
	"testing"
)

// Two injectors with the same plan must produce identical decision streams —
// the foundation of replayable chaos runs.
func TestTransmitDeterminism(t *testing.T) {
	plan := Plan{
		Seed:    42,
		Default: Probs{Drop: 0.2, Dup: 0.15, Delay: 0.3, MaxDelay: 6},
	}
	type decision struct {
		drop, dup bool
		delay     int
	}
	run := func() ([]decision, Stats) {
		in := New(plan)
		var out []decision
		for i := 0; i < 2000; i++ {
			d, u, dl := in.Transmit(int64(i % 7))
			out = append(out, decision{d, u, dl})
		}
		return out, in.Stats()
	}
	a, as := run()
	b, bs := run()
	if !slices.Equal(a, b) {
		t.Fatal("identical plans produced different decision streams")
	}
	if as != bs {
		t.Fatalf("stats diverged: %+v vs %+v", as, bs)
	}
	if as.Dropped == 0 || as.Duplicated == 0 || as.Delayed == 0 {
		t.Fatalf("expected all fault kinds to fire over 2000 transmissions: %+v", as)
	}
}

func TestArcOverrides(t *testing.T) {
	in := New(Plan{
		Seed: 1,
		Arcs: map[int64]Probs{5: {Drop: 1}},
	})
	for i := 0; i < 50; i++ {
		if drop, _, _ := in.Transmit(3); drop {
			t.Fatal("default (zero) probs dropped a transmission")
		}
		if drop, _, _ := in.Transmit(5); !drop {
			t.Fatal("arc override with Drop=1 failed to drop")
		}
	}
	if got := in.Stats().Dropped; got != 50 {
		t.Fatalf("Dropped = %d, want 50", got)
	}
}

func TestDelayBounds(t *testing.T) {
	in := New(Plan{Seed: 7, Default: Probs{Delay: 1}}) // MaxDelay defaults to 4
	for i := 0; i < 200; i++ {
		_, _, delay := in.Transmit(0)
		if delay < 1 || delay > 4 {
			t.Fatalf("delay = %d, want 1..4", delay)
		}
	}
}

func TestCrashSchedules(t *testing.T) {
	in := New(Plan{
		Seed: 1,
		Crashes: []Crash{
			{Node: 3, At: 5},              // crash-stop
			{Node: 7, At: 2, Restart: 10}, // crash-restart
		},
	})
	// Crash-stop: down from round 5 forever.
	for r, want := range map[int]bool{0: true, 4: true, 5: false, 100: false} {
		if got := in.Alive(3, r); got != want {
			t.Fatalf("Alive(3, %d) = %v, want %v", r, got, want)
		}
	}
	// Crash-restart: down exactly for rounds [2, 10).
	for r, want := range map[int]bool{1: true, 2: false, 9: false, 10: true, 50: true} {
		if got := in.Alive(7, r); got != want {
			t.Fatalf("Alive(7, %d) = %v, want %v", r, got, want)
		}
	}
	// Unscheduled nodes never fail.
	if !in.Alive(0, 1000) {
		t.Fatal("unscheduled node reported dead")
	}
	// RestartPending covers exactly node 7's down window.
	for r, want := range map[int]bool{1: false, 2: true, 9: true, 10: false, 20: false} {
		if got := in.RestartPending(r); got != want {
			t.Fatalf("RestartPending(%d) = %v, want %v", r, got, want)
		}
	}
}

func TestNewlyDeadOnceAndSorted(t *testing.T) {
	in := New(Plan{
		Seed: 1,
		Crashes: []Crash{
			{Node: 9, At: 3},
			{Node: 2, At: 3},
			{Node: 5, At: 1, Restart: 8}, // restart: never "dead"
			{Node: 6, At: 7},
		},
	})
	if got := in.NewlyDead(0); got != nil {
		t.Fatalf("NewlyDead(0) = %v, want nil", got)
	}
	if got := in.NewlyDead(4); !slices.Equal(got, []uint32{2, 9}) {
		t.Fatalf("NewlyDead(4) = %v, want [2 9]", got)
	}
	if got := in.NewlyDead(5); got != nil {
		t.Fatalf("NewlyDead(5) repeated reports: %v", got)
	}
	if got := in.NewlyDead(7); !slices.Equal(got, []uint32{6}) {
		t.Fatalf("NewlyDead(7) = %v, want [6]", got)
	}
}
