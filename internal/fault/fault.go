package fault

import (
	"math/rand"
	"sort"
)

// Probs configures the per-transmission fault probabilities of an arc.
// The zero value injects nothing.
type Probs struct {
	// Drop is the probability a transmission is lost.
	Drop float64
	// Dup is the probability a transmission is delivered twice.
	Dup float64
	// Delay is the probability a transmission is deferred by 1..MaxDelay
	// extra rounds.
	Delay float64
	// MaxDelay bounds the extra rounds of a delayed transmission
	// (default 4 when Delay > 0 and MaxDelay <= 0).
	MaxDelay int
	// Reorder shuffles the arrival order within each node's round inbox.
	Reorder bool
}

// Crash schedules one node failure. Restart <= At means the node never
// comes back (crash-stop); otherwise the node is down for rounds
// [At, Restart) and resumes with its state intact (crash-restart, i.e. an
// omission interval).
type Crash struct {
	// Node is the crashing node.
	Node uint32
	// At is the first round the node is down.
	At int
	// Restart is the first round the node is back up; <= At means never.
	Restart int
}

// Plan is a complete, self-contained fault schedule.
type Plan struct {
	// Seed feeds the injector's RNG; identical seeds (and identical query
	// sequences) reproduce identical fault streams.
	Seed int64
	// Default applies to every arc without an override.
	Default Probs
	// Arcs overrides Default for specific arcs (keyed by the sender-side
	// arc index of the simulated network).
	Arcs map[int64]Probs
	// Crashes is the node failure schedule.
	Crashes []Crash
}

// Stats counts the faults actually injected.
type Stats struct {
	Dropped    int64
	Duplicated int64
	Delayed    int64
}

// Injector answers fault queries for one simulation run. Create with New;
// not safe for concurrent use.
type Injector struct {
	plan     Plan
	rng      *rand.Rand
	stats    Stats
	reorder  bool
	reported map[uint32]bool // crash-stop nodes already returned by NewlyDead
}

// New builds an injector for plan. The plan is captured by value; the
// Crashes slice and Arcs map must not be mutated afterwards.
func New(plan Plan) *Injector {
	reorder := plan.Default.Reorder
	for _, p := range plan.Arcs {
		reorder = reorder || p.Reorder
	}
	return &Injector{
		plan:     plan,
		rng:      rand.New(rand.NewSource(plan.Seed)),
		reorder:  reorder,
		reported: make(map[uint32]bool),
	}
}

// ArcProbs returns the effective probabilities for arc a.
func (in *Injector) ArcProbs(a int64) Probs {
	if p, ok := in.plan.Arcs[a]; ok {
		return p
	}
	return in.plan.Default
}

// Transmit rolls the fault dice for one transmission over arc a. It returns
// whether the transmission is dropped, whether it is duplicated, and how
// many extra rounds its delivery is delayed (0 for on-time). A dropped
// transmission is neither duplicated nor delayed. Each call consumes RNG
// state, so the caller must query in a deterministic order.
func (in *Injector) Transmit(a int64) (drop, dup bool, delay int) {
	p := in.ArcProbs(a)
	if p.Drop > 0 && in.rng.Float64() < p.Drop {
		in.stats.Dropped++
		return true, false, 0
	}
	if p.Dup > 0 && in.rng.Float64() < p.Dup {
		in.stats.Duplicated++
		dup = true
	}
	if p.Delay > 0 && in.rng.Float64() < p.Delay {
		max := p.MaxDelay
		if max <= 0 {
			max = 4
		}
		delay = 1 + in.rng.Intn(max)
		in.stats.Delayed++
	}
	return false, dup, delay
}

// Reordering reports whether any arc has reordering enabled (the fabric
// then shuffles round inboxes via Shuffle).
func (in *Injector) Reordering() bool { return in.reorder }

// Shuffle applies a seeded permutation through swap, for inbox reordering.
func (in *Injector) Shuffle(n int, swap func(i, j int)) {
	if n > 1 {
		in.rng.Shuffle(n, swap)
	}
}

// Alive reports whether node v is up at round r under the crash schedule.
func (in *Injector) Alive(v uint32, r int) bool {
	for _, c := range in.plan.Crashes {
		if c.Node != v || r < c.At {
			continue
		}
		if c.Restart <= c.At || r < c.Restart {
			return false
		}
	}
	return true
}

// RestartPending reports whether some node is down at round r but scheduled
// to restart later — traffic quiescence is then inconclusive, because the
// revived node will produce and consume messages.
func (in *Injector) RestartPending(r int) bool {
	for _, c := range in.plan.Crashes {
		if c.Restart > c.At && r >= c.At && r < c.Restart {
			return true
		}
	}
	return false
}

// NewlyDead returns the crash-stop nodes whose crash round has been reached
// by round r and that have not been returned before, sorted ascending. The
// fabric uses this to doom unreachable components exactly once.
func (in *Injector) NewlyDead(r int) []uint32 {
	var out []uint32
	for _, c := range in.plan.Crashes {
		if c.Restart <= c.At && r >= c.At && !in.reported[c.Node] {
			in.reported[c.Node] = true
			out = append(out, c.Node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats returns the faults injected so far.
func (in *Injector) Stats() Stats { return in.stats }
