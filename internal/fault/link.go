package fault

import "sync"

// Outcome is the fault verdict for one link transmission.
type Outcome struct {
	// Partitioned means the link is down for this transmission (and will
	// stay down until the schedule's restart round, if any): the message
	// does not arrive and the sender should treat the peer as unreachable.
	Partitioned bool
	// Drop loses this one transmission without implying anything about the
	// link's future.
	Drop bool
	// Dup delivers the transmission twice.
	Dup bool
	// Delay holds the transmission back by that many link-local rounds
	// (deliveries slot in after later traffic — an out-of-order arrival).
	Delay int
}

// Link is the replication transport's view of one seeded lossy connection:
// a concurrency-safe wrapper over an Injector whose round clock is the
// link's own transmission ordinal. Drop/dup/delay probabilities come from
// the plan's arc probs (keyed by the link's arc index), and partition
// windows come from the plan's crash schedule (Node = arc index, rounds =
// transmission ordinals), so one Plan describes the whole replica fabric.
//
// Distinct links over the same Plan decorrelate their RNG streams by
// folding the arc index into the seed; identical plans therefore reproduce
// identical fault schedules link by link.
type Link struct {
	mu  sync.Mutex
	inj *Injector
	arc int64
	op  int
}

// NewLink builds the seeded fault schedule for arc within plan.
func NewLink(plan Plan, arc int64) *Link {
	plan.Seed = plan.Seed*1000003 + arc // decorrelate sibling links
	return &Link{inj: New(plan), arc: arc}
}

// Transmit rolls the fault dice for the link's next transmission. Each call
// advances the link's round clock, so outcomes are a deterministic function
// of the plan and the call ordinal alone.
func (l *Link) Transmit() Outcome {
	l.mu.Lock()
	defer l.mu.Unlock()
	op := l.op
	l.op++
	if !l.inj.Alive(uint32(l.arc), op) {
		return Outcome{Partitioned: true}
	}
	drop, dup, delay := l.inj.Transmit(l.arc)
	return Outcome{Drop: drop, Dup: dup, Delay: delay}
}

// Stats returns the faults injected so far.
func (l *Link) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inj.Stats()
}
