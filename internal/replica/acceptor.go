package replica

import (
	"fmt"
	"sync"
	"time"

	"llpmst/internal/stream"
)

// Acceptor is the follower side of the replication protocol: a thin gate
// in front of a stream engine that ingests shipped records and snapshots,
// tracks when the primary was last heard from (the lease input), and
// flips to read-only-for-replication once promoted.
type Acceptor struct {
	mu       sync.Mutex
	eng      *stream.Engine
	promoted bool
	last     time.Time
	now      func() time.Time
}

// NewAcceptor wraps eng as a replication follower.
func NewAcceptor(eng *stream.Engine) *Acceptor {
	return &Acceptor{eng: eng, now: time.Now}
}

// Engine returns the wrapped engine (reads are always served from it;
// after promotion, writes too).
func (a *Acceptor) Engine() *stream.Engine { return a.eng }

// Connect is the session handshake: verify the primary and follower agree
// on the graph's vertex count and report the follower's high-water mark.
func (a *Acceptor) Connect(vertices int) (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.promoted {
		return 0, ErrPromoted
	}
	if n := a.eng.Vertices(); n != vertices {
		return 0, fmt.Errorf("replica: primary has %d vertices, follower has %d", vertices, n)
	}
	a.last = a.now()
	return a.eng.LastBatch(), nil
}

// Ship ingests one framed WAL record (see stream.Engine.ApplyReplicated
// for the prev/duplicate/gap semantics). The record is fsync'd in the
// follower's log before the new high-water mark is returned.
func (a *Acceptor) Ship(prev uint64, rec []byte) (uint64, error) {
	a.mu.Lock()
	if a.promoted {
		a.mu.Unlock()
		return 0, ErrPromoted
	}
	a.last = a.now()
	a.mu.Unlock()
	return a.eng.ApplyReplicated(prev, rec)
}

// InstallSnapshot replaces the follower's state wholesale.
func (a *Acceptor) InstallSnapshot(data []byte) (uint64, error) {
	a.mu.Lock()
	if a.promoted {
		a.mu.Unlock()
		return 0, ErrPromoted
	}
	a.last = a.now()
	a.mu.Unlock()
	return a.eng.InstallSnapshot(data)
}

// Heartbeat records contact from the primary and returns the follower's
// high-water mark.
func (a *Acceptor) Heartbeat() (uint64, error) {
	a.mu.Lock()
	if a.promoted {
		a.mu.Unlock()
		return 0, ErrPromoted
	}
	a.last = a.now()
	a.mu.Unlock()
	return a.eng.LastBatch(), nil
}

// Promote flips the follower to primary duty: every later Ship,
// InstallSnapshot, Connect, or Heartbeat fails with ErrPromoted, so a
// deposed primary that comes back cannot overwrite the new timeline.
// Idempotent; returns the high-water mark the new primary starts from.
func (a *Acceptor) Promote() uint64 {
	a.mu.Lock()
	a.promoted = true
	a.mu.Unlock()
	return a.eng.LastBatch()
}

// Promoted reports whether Promote has been called.
func (a *Acceptor) Promoted() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.promoted
}

// SinceContact returns how long ago the primary was last heard from
// (connect, ship, snapshot, or heartbeat), or false if it never was.
// Serving layers compare this against their lease duration to report a
// follower as orphaned and eligible for promotion.
func (a *Acceptor) SinceContact() (time.Duration, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.last.IsZero() {
		return 0, false
	}
	return a.now().Sub(a.last), true
}
