// Package replica layers primary/follower replication over the stream
// engine's write-ahead log, so a stream survives the loss of the machine
// it runs on — the crash-stop failure model the LLP framework papers
// assume away is handled here, below the algorithm.
//
// # Protocol
//
// The unit of replication is the framed WAL record (length-prefixed,
// CRC-checked — see internal/stream). The primary installs itself as the
// engine's ReplicationGate: after a batch's record is durable in the
// primary's own log and before the batch is applied or acknowledged, the
// gate ships the record to every caught-up follower and waits for acks.
// A follower appends the bytes verbatim to its own WAL, fsyncs, and only
// then acks — so follower logs are byte-identical contiguous prefixes of
// the primary's log, and an ack always means "on my disk".
//
// Acknowledgement is governed by a replication Level:
//
//   - ReplicateNone: the primary's own fsync suffices (PR 7 semantics).
//   - ReplicateQuorum: a majority of the cluster (primary + followers)
//     must have the record durable.
//   - ReplicateAll: every configured follower must have it.
//
// If the quorum cannot be reached — too few followers connected, or ships
// time out — the gate fails with a *DegradedError, the engine rolls its
// local log back to the pre-append size, and the client sees a typed
// "read-only, retry later" rejection (503 + Retry-After over HTTP). A
// batch is therefore never acknowledged anywhere unless it is durable on
// a quorum; conversely a rejected batch is durable nowhere, so retrying
// the same batch ID is always safe. As everywhere in the stream stack,
// a retry must carry the identical ops: duplicate detection is by batch
// ID alone.
//
// # Catch-up
//
// Each follower runs a continuous catch-up loop on the primary: connect
// (with exponential backoff), learn the follower's high-water mark, and
// ship the missing WAL suffix record by record — or, when the primary has
// compacted its log past that mark (or the follower's log has diverged,
// e.g. it holds a record the quorum rolled back), a full snapshot that
// resets the follower. Once drained, the follower is marked current and
// joins the synchronous ack path; a heartbeat probes it between writes,
// and any ship or heartbeat failure demotes it back to catch-up. Shipped
// records carry the primary's expected predecessor mark, so a stale view
// can never create a gap in a follower's log: the follower rejects with
// stream.ErrOutOfOrder and catch-up re-runs.
//
// # Failover
//
// Promotion is explicit (an operator or supervisor calls Promote, or
// POST /streams/{id}/promote on mstserve): the follower stops accepting
// replicated records (further ships fail with ErrPromoted) and its engine
// serves writes. Because follower logs are contiguous prefixes, promoting
// the follower with the highest high-water mark preserves every batch any
// client was ever acked under ReplicateQuorum with a surviving majority.
//
// Transports are pluggable: Loopback wires a primary directly to in-process
// followers (optionally through a seeded fault.Link that drops, delays,
// duplicates, and partitions record traffic deterministically), and
// HTTPConn speaks to a follower-mode mstserve.
package replica
