package replica

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"llpmst/internal/fault"
	"llpmst/internal/graph"
	"llpmst/internal/mst"
	"llpmst/internal/stream"
)

// ---- oracle: plain ordered edge list with the stream's op semantics ----

type oracle struct {
	n     int
	edges []graph.Edge
}

func (o *oracle) apply(ops []stream.Op) {
	for _, op := range ops {
		if !op.Delete {
			o.edges = append(o.edges, graph.Edge{U: op.U, V: op.V, W: op.W})
			continue
		}
		for i, e := range o.edges {
			if e.W == op.W && ((e.U == op.U && e.V == op.V) || (e.U == op.V && e.V == op.U)) {
				o.edges = append(o.edges[:i], o.edges[i+1:]...)
				break
			}
		}
	}
}

// script builds a deterministic mixed insert/delete batch script.
func script(seed int64, n, batches, opsPer int) [][]stream.Op {
	rng := rand.New(rand.NewSource(seed))
	o := &oracle{n: n}
	out := make([][]stream.Op, batches)
	for b := range out {
		var ops []stream.Op
		for k := 0; k < opsPer; k++ {
			if len(o.edges) > 3 && rng.Intn(3) == 0 {
				pick := o.edges[rng.Intn(len(o.edges))]
				ops = append(ops, stream.Op{Delete: true, U: pick.U, V: pick.V, W: pick.W})
			} else {
				u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
				if u == v {
					v = (v + 1) % uint32(n)
				}
				ops = append(ops, stream.Op{U: u, V: v, W: float32(rng.Intn(25))})
			}
		}
		o.apply(ops)
		out[b] = ops
	}
	return out
}

func oracleAt(n int, sc [][]stream.Op, upto int) *oracle {
	o := &oracle{n: n}
	for _, ops := range sc[:upto] {
		o.apply(ops)
	}
	return o
}

type canonEdge struct {
	u, v uint32
	w    float32
}

func canon(u, v uint32, w float32) canonEdge {
	if u > v {
		u, v = v, u
	}
	return canonEdge{u, v, w}
}

func diffMultiset(tb testing.TB, what string, got, want []graph.Edge) {
	tb.Helper()
	counts := map[canonEdge]int{}
	for _, e := range got {
		counts[canon(e.U, e.V, e.W)]++
	}
	for _, e := range want {
		counts[canon(e.U, e.V, e.W)]--
	}
	for c, k := range counts {
		if k != 0 {
			tb.Fatalf("%s multiset differs at %+v (%+d)", what, c, k)
		}
	}
}

// checkForest asserts eng's forest is the canonical MSF of the oracle's
// live edges (Kruskal is the oracle algorithm) and the live sets agree.
func checkForest(tb testing.TB, eng *stream.Engine, o *oracle) {
	tb.Helper()
	cp := append([]graph.Edge(nil), o.edges...)
	g := graph.MustFromEdges(1, o.n, cp)
	want := mst.Kruskal(g)
	wantEdges := make([]graph.Edge, len(want.EdgeIDs))
	for i, id := range want.EdgeIDs {
		wantEdges[i] = g.Edge(id)
	}
	diffMultiset(tb, "forest", eng.Forest(), wantEdges)
	diffMultiset(tb, "live", eng.LiveEdges(), o.edges)
}

// ---- cluster plumbing ----

type clusterFollower struct {
	acc  *Acceptor
	dir  string
	link *fault.Link
}

type cluster struct {
	t       *testing.T
	eng     *stream.Engine
	primary *Primary
	dir     string
	fol     []*clusterFollower
}

// newCluster builds a primary engine plus followers wired over loopback
// connections. crashPlan drives the primary's replication crash points;
// linkPlan (arc = follower index) makes record traffic lossy.
func newCluster(t *testing.T, n int, level Level, followers int, crashPlan, linkPlan *fault.Plan) *cluster {
	t.Helper()
	c := &cluster{t: t, dir: t.TempDir()}
	eng, _, err := stream.Open(stream.Config{Vertices: n, Dir: c.dir, Sync: stream.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	c.eng = eng
	t.Cleanup(func() { eng.Close() })

	var specs []FollowerSpec
	for i := 0; i < followers; i++ {
		dir := t.TempDir()
		fe, _, err := stream.Open(stream.Config{Vertices: n, Dir: dir, Sync: stream.SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { fe.Close() })
		cf := &clusterFollower{acc: NewAcceptor(fe), dir: dir}
		var lb *Loopback
		if linkPlan != nil {
			cf.link = fault.NewLink(*linkPlan, int64(i))
			lb = NewLossyLoopback(cf.acc, cf.link)
		} else {
			lb = NewLoopback(cf.acc)
		}
		c.fol = append(c.fol, cf)
		specs = append(specs, FollowerSpec{Name: fmt.Sprintf("f%d", i), Dial: LoopbackDialer(lb)})
	}
	p, err := NewPrimary(eng, Config{
		Stream:       "s",
		Level:        level,
		AckTimeout:   2 * time.Second,
		Heartbeat:    2 * time.Millisecond,
		ReconnectMin: time.Millisecond,
		ReconnectMax: 20 * time.Millisecond,
		Fault:        crashPlan,
		Logf:         t.Logf,
	}, specs)
	if err != nil {
		t.Fatal(err)
	}
	c.primary = p
	t.Cleanup(func() { p.Close() })
	return c
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func (c *cluster) waitAllCurrent() {
	c.t.Helper()
	waitFor(c.t, "all followers current", func() bool {
		for _, st := range c.primary.Status() {
			if !st.Current {
				return false
			}
		}
		return true
	})
}

// ---- tests ----

// TestReplicationShipsEveryBatch: with a full quorum, every acked batch is
// on every follower, the logs are byte-identical, and all three forests
// equal the Kruskal oracle.
func TestReplicationShipsEveryBatch(t *testing.T) {
	const n, batches, opsPer, seed = 32, 25, 5, 3
	sc := script(seed, n, batches, opsPer)
	c := newCluster(t, n, ReplicateQuorum, 2, nil, nil)
	c.waitAllCurrent()
	for b := 0; b < batches; b++ {
		if _, err := c.eng.Apply(stream.Batch{ID: uint64(b + 1), Ops: sc[b]}); err != nil {
			t.Fatalf("batch %d: %v", b+1, err)
		}
	}
	want := oracleAt(n, sc, batches)
	checkForest(t, c.eng, want)
	for i, f := range c.fol {
		waitFor(t, "follower convergence", func() bool {
			return f.acc.Engine().LastBatch() == uint64(batches)
		})
		checkForest(t, f.acc.Engine(), want)
		// A quorum of 2/3 plus the catch-up loop means every batch lands
		// on every follower eventually; the logs must be byte-identical.
		pw, err := os.ReadFile(filepath.Join(c.dir, "wal.log"))
		if err != nil {
			t.Fatal(err)
		}
		fw, err := os.ReadFile(filepath.Join(f.dir, "wal.log"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pw, fw) {
			t.Fatalf("follower %d WAL (%d bytes) differs from primary's (%d bytes)", i, len(fw), len(pw))
		}
	}
}

// TestDegradedWriteRejectedTyped: a write that cannot reach its quorum is
// rejected with a typed *DegradedError, leaves no trace in the primary's
// log, and the same batch ID succeeds after the quorum recovers.
func TestDegradedWriteRejectedTyped(t *testing.T) {
	const n = 8
	dir := t.TempDir()
	eng, _, err := stream.Open(stream.Config{Vertices: n, Dir: dir, Sync: stream.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	fe, _, err := stream.Open(stream.Config{Vertices: n, Dir: t.TempDir(), Sync: stream.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	lb := NewLoopback(NewAcceptor(fe))
	var up atomic.Bool
	dial := func(context.Context) (Conn, error) {
		if !up.Load() {
			return nil, errors.New("follower down")
		}
		return lb, nil
	}
	p, err := NewPrimary(eng, Config{
		Stream: "s", Level: ReplicateAll, AckTimeout: time.Second,
		Heartbeat: 2 * time.Millisecond, ReconnectMin: time.Millisecond, ReconnectMax: 5 * time.Millisecond,
	}, []FollowerSpec{{Name: "f0", Dial: dial}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	batch := stream.Batch{ID: 1, Ops: []stream.Op{{U: 0, V: 1, W: 2}}}
	_, err = eng.Apply(batch)
	var de *DegradedError
	if !errors.As(err, &de) {
		t.Fatalf("below-quorum write returned %v, want *DegradedError", err)
	}
	if de.Need != 2 || de.Have != 1 {
		t.Fatalf("degraded error %+v, want need=2 have=1", de)
	}
	// Rejected means durable nowhere: the rolled-back log must be empty
	// and the high-water mark untouched.
	if hw := eng.LastBatch(); hw != 0 {
		t.Fatalf("rejected batch bumped high-water to %d", hw)
	}
	if st, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil || st.Size() != 0 {
		t.Fatalf("rejected batch left %v bytes in the log (err=%v)", st, err)
	}

	// Quorum recovers: the identical retry must succeed and replicate.
	up.Store(true)
	waitFor(t, "quorum recovery", p.Healthy)
	if _, err := eng.Apply(batch); err != nil {
		t.Fatalf("retry after recovery: %v", err)
	}
	waitFor(t, "follower convergence", func() bool { return fe.LastBatch() == 1 })
}

// TestFailoverSweep is the acceptance test: with quorum 2 of 3, crash the
// primary at every replication step boundary (before any ship, after
// exactly one follower, after all ships) of every batch. Promoting the
// furthest-ahead follower must preserve every client-acked batch, the
// promoted forest must equal the Kruskal oracle over its prefix, and the
// deposed primary's ships must be refused.
func TestFailoverSweep(t *testing.T) {
	const n, batches, opsPer, seed = 24, 10, 4, 9
	sc := script(seed, n, batches, opsPer)
	for _, node := range []uint32{FaultNodePreShip, FaultNodeMidShip, FaultNodePostShip} {
		for crashAt := 0; crashAt < batches; crashAt++ {
			crashPlan := &fault.Plan{Crashes: []fault.Crash{{Node: node, At: crashAt}}}
			c := newCluster(t, n, ReplicateQuorum, 2, crashPlan, nil)
			c.waitAllCurrent()

			acked := 0
			for b := 0; b < batches; b++ {
				_, err := c.eng.Apply(stream.Batch{ID: uint64(b + 1), Ops: sc[b]})
				if err != nil {
					if !errors.Is(err, stream.ErrCrashed) {
						t.Fatalf("node %d crash@%d batch %d: %v", node, crashAt, b+1, err)
					}
					break
				}
				acked++
			}
			if acked != crashAt {
				t.Fatalf("node %d crash@%d acked %d batches", node, crashAt, acked)
			}
			// The primary is dead: no write sneaks in post-crash.
			if _, err := c.eng.Apply(stream.Batch{ID: 999}); !errors.Is(err, stream.ErrCrashed) {
				t.Fatalf("node %d crash@%d: post-crash Apply = %v", node, crashAt, err)
			}
			c.primary.Close()

			// Promote the follower with the highest high-water mark.
			best := c.fol[0]
			for _, f := range c.fol[1:] {
				if f.acc.Engine().LastBatch() > best.acc.Engine().LastBatch() {
					best = f
				}
			}
			hw := best.acc.Promote()
			if hw < uint64(acked) {
				t.Fatalf("node %d crash@%d: promoted at %d, %d acked batches lost",
					node, crashAt, hw, uint64(acked)-hw)
			}
			if hw > uint64(acked+1) {
				t.Fatalf("node %d crash@%d: promoted at %d, beyond the in-flight batch %d",
					node, crashAt, hw, acked+1)
			}
			// The crashed batch may have reached the promoted follower
			// (durable-but-unacked); its forest must match the oracle over
			// exactly its own prefix.
			checkForest(t, best.acc.Engine(), oracleAt(n, sc, int(hw)))

			// A deposed primary's ships bounce off the new timeline.
			if _, err := best.acc.Ship(hw, nil); !errors.Is(err, ErrPromoted) {
				t.Fatalf("node %d crash@%d: ship to promoted follower = %v", node, crashAt, err)
			}
			if _, err := best.acc.Connect(n); !errors.Is(err, ErrPromoted) {
				t.Fatalf("node %d crash@%d: connect to promoted follower = %v", node, crashAt, err)
			}

			// Clients resume against the new primary: the in-flight batch's
			// retry either duplicates (it survived) or re-applies, and the
			// stream converges to the no-crash final state.
			ne := best.acc.Engine()
			for b := int(hw); b < batches; b++ {
				if _, err := ne.Apply(stream.Batch{ID: uint64(b + 1), Ops: sc[b]}); err != nil {
					t.Fatalf("node %d crash@%d: post-promotion batch %d: %v", node, crashAt, b+1, err)
				}
			}
			if acked > 0 {
				res, err := ne.Apply(stream.Batch{ID: uint64(acked), Ops: sc[acked-1]})
				if err != nil || !res.Duplicate {
					t.Fatalf("node %d crash@%d: acked batch retry res=%+v err=%v", node, crashAt, res, err)
				}
			}
			checkForest(t, ne, oracleAt(n, sc, batches))
		}
	}
}

// TestLossyCatchupConvergence: a follower fed through a seeded lossy link
// (drops, duplicates, delays/reorders, and a partition window) converges
// to the primary's exact forest, with duplicate deliveries absorbed
// idempotently.
func TestLossyCatchupConvergence(t *testing.T) {
	const n, batches, opsPer, seed = 40, 60, 5, 11
	sc := script(seed, n, batches, opsPer)
	linkPlan := &fault.Plan{
		Seed:    1234,
		Default: fault.Probs{Drop: 0.25, Dup: 0.2, Delay: 0.2, MaxDelay: 3},
		// A partition window in link rounds: the link is down for
		// transmissions 20..39 and comes back.
		Crashes: []fault.Crash{{Node: 0, At: 20, Restart: 40}},
	}
	// ReplicateNone: the primary acks on local durability and the lossy
	// follower trails behind through retries.
	c := newCluster(t, n, ReplicateNone, 1, nil, linkPlan)
	for b := 0; b < batches; b++ {
		if _, err := c.eng.Apply(stream.Batch{ID: uint64(b + 1), Ops: sc[b]}); err != nil {
			t.Fatalf("batch %d: %v", b+1, err)
		}
	}
	f := c.fol[0]
	waitFor(t, "lossy follower convergence", func() bool {
		return f.acc.Engine().LastBatch() == uint64(batches)
	})
	want := oracleAt(n, sc, batches)
	checkForest(t, c.eng, want)
	checkForest(t, f.acc.Engine(), want)

	st := f.link.Stats()
	if st.Dropped == 0 || st.Duplicated == 0 || st.Delayed == 0 {
		t.Fatalf("lossy schedule injected nothing interesting: %+v", st)
	}
	// Duplicate deliveries really happened and were absorbed idempotently
	// (the follower's duplicate counter is the engine-level proof).
	if f.acc.Engine().Stats().Duplicates == 0 {
		t.Fatalf("no duplicate deliveries reached the follower (link stats %+v)", st)
	}
}

// TestSnapshotCatchup: a follower that connects after the primary has
// compacted its WAL past the follower's mark is caught up with a full
// snapshot install, then converges over records.
func TestSnapshotCatchup(t *testing.T) {
	const n, batches, opsPer, seed = 32, 30, 5, 17
	sc := script(seed, n, batches, opsPer)
	dir := t.TempDir()
	eng, _, err := stream.Open(stream.Config{
		Vertices: n, Dir: dir, Sync: stream.SyncAlways, SnapshotEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// The primary runs ahead alone; its log compacts at batches 8, 16, 24.
	const preload = 20
	for b := 0; b < preload; b++ {
		if _, err := eng.Apply(stream.Batch{ID: uint64(b + 1), Ops: sc[b]}); err != nil {
			t.Fatal(err)
		}
	}

	fe, _, err := stream.Open(stream.Config{Vertices: n, Dir: t.TempDir(), Sync: stream.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer fe.Close()
	acc := NewAcceptor(fe)
	p, err := NewPrimary(eng, Config{
		Stream: "s", Level: ReplicateNone, AckTimeout: 2 * time.Second,
		Heartbeat: 2 * time.Millisecond, ReconnectMin: time.Millisecond, ReconnectMax: 10 * time.Millisecond,
	}, []FollowerSpec{{Name: "late", Dial: LoopbackDialer(NewLoopback(acc))}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	waitFor(t, "snapshot catch-up", func() bool { return fe.LastBatch() == preload })
	checkForest(t, fe, oracleAt(n, sc, preload))
	st := p.Status()[0]
	if st.CatchupSnapshots == 0 {
		t.Fatalf("late follower caught up without a snapshot install: %+v", st)
	}

	// Now stream the rest; the follower rides along over records.
	for b := preload; b < batches; b++ {
		if _, err := eng.Apply(stream.Batch{ID: uint64(b + 1), Ops: sc[b]}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "record convergence", func() bool { return fe.LastBatch() == batches })
	checkForest(t, fe, oracleAt(n, sc, batches))
}

// TestLevelSemantics pins the quorum arithmetic.
func TestLevelSemantics(t *testing.T) {
	cases := []struct {
		level     Level
		followers int
		need      int
	}{
		{ReplicateNone, 0, 1}, {ReplicateNone, 2, 1},
		{ReplicateQuorum, 1, 2}, {ReplicateQuorum, 2, 2}, {ReplicateQuorum, 4, 3},
		{ReplicateAll, 1, 2}, {ReplicateAll, 3, 4},
	}
	for _, c := range cases {
		if got := c.level.need(c.followers); got != c.need {
			t.Errorf("%v with %d followers: need %d, want %d", c.level, c.followers, got, c.need)
		}
	}
	for _, s := range []string{"none", "quorum", "all"} {
		l, err := ParseLevel(s)
		if err != nil || l.String() != s {
			t.Errorf("ParseLevel(%q) = %v, %v", s, l, err)
		}
	}
	if _, err := ParseLevel("most"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}
