package replica

import (
	"context"
	"errors"
	"sync"

	"llpmst/internal/fault"
)

// Transit errors a lossy loopback link reports to the shipping side. The
// record may or may not eventually arrive (a delayed copy is delivered
// later), so the primary must treat them as "ack lost", not "record lost".
var (
	errLinkPartitioned = errors.New("replica: link partitioned")
	errLinkDropped     = errors.New("replica: record dropped in transit")
	errLinkDelayed     = errors.New("replica: record delayed in transit")
)

// Loopback is an in-process Conn wired straight to an Acceptor, optionally
// through a seeded fault.Link that drops, duplicates, delays, and
// partitions record traffic deterministically. A delayed record is held
// back and delivered immediately before the next ship on the link — a
// deterministic stand-in for out-of-order arrival: the late copy shows up
// as a duplicate or a gap, exactly the hazards the follower's prev check
// and idempotent receive must absorb. Control traffic (connect, snapshot,
// heartbeat) is reliable; record traffic is where the protocol's
// interesting failure modes live.
type Loopback struct {
	acc *Acceptor

	mu   sync.Mutex
	link *fault.Link
	held []heldShip
}

type heldShip struct {
	prev uint64
	rec  []byte
}

// NewLoopback wires a direct (lossless) in-process connection to acc.
func NewLoopback(acc *Acceptor) *Loopback {
	return &Loopback{acc: acc}
}

// NewLossyLoopback wires a connection whose record traffic rolls fault
// outcomes on link.
func NewLossyLoopback(acc *Acceptor, link *fault.Link) *Loopback {
	return &Loopback{acc: acc, link: link}
}

// LoopbackDialer returns a Dialer that always reconnects to the same
// loopback connection.
func LoopbackDialer(l *Loopback) Dialer {
	return func(context.Context) (Conn, error) { return l, nil }
}

// Connect implements Conn.
func (l *Loopback) Connect(_ context.Context, vertices int) (uint64, error) {
	return l.acc.Connect(vertices)
}

// Ship implements Conn. With a fault link, held (delayed) records are
// delivered first, then the outcome for this transmission is rolled.
func (l *Loopback) Ship(_ context.Context, prev uint64, rec []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.link == nil {
		return l.acc.Ship(prev, rec)
	}
	l.flushHeld()
	o := l.link.Transmit()
	switch {
	case o.Partitioned:
		return 0, errLinkPartitioned
	case o.Drop:
		return 0, errLinkDropped
	case o.Delay > 0:
		l.held = append(l.held, heldShip{prev, append([]byte(nil), rec...)})
		return 0, errLinkDelayed
	case o.Dup:
		if _, err := l.acc.Ship(prev, rec); err != nil {
			return 0, err
		}
	}
	return l.acc.Ship(prev, rec)
}

// flushHeld delivers every held record (results discarded: the shipper
// already gave up on their acks).
func (l *Loopback) flushHeld() {
	for _, h := range l.held {
		_, _ = l.acc.Ship(h.prev, h.rec)
	}
	l.held = l.held[:0]
}

// InstallSnapshot implements Conn.
func (l *Loopback) InstallSnapshot(_ context.Context, data []byte) (uint64, error) {
	return l.acc.InstallSnapshot(data)
}

// Heartbeat implements Conn.
func (l *Loopback) Heartbeat(context.Context) (uint64, error) {
	return l.acc.Heartbeat()
}

// Close implements Conn; the loopback is reusable across sessions.
func (l *Loopback) Close() error { return nil }
