package replica

import (
	"context"
	"errors"
	"fmt"
)

// Level selects how many durable copies a batch needs before the primary
// acknowledges it.
type Level int

const (
	// ReplicateNone acknowledges on the primary's own durability alone;
	// followers still catch up asynchronously.
	ReplicateNone Level = iota
	// ReplicateQuorum acknowledges once a majority of the cluster
	// (primary plus configured followers) has the record fsync'd.
	ReplicateQuorum
	// ReplicateAll acknowledges only when every configured follower has
	// the record fsync'd.
	ReplicateAll
)

// String names the level the way the -replica-quorum flag spells it.
func (l Level) String() string {
	switch l {
	case ReplicateNone:
		return "none"
	case ReplicateQuorum:
		return "quorum"
	case ReplicateAll:
		return "all"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// ParseLevel parses "none", "quorum", or "all".
func ParseLevel(s string) (Level, error) {
	switch s {
	case "none":
		return ReplicateNone, nil
	case "quorum":
		return ReplicateQuorum, nil
	case "all":
		return ReplicateAll, nil
	}
	return 0, fmt.Errorf("replica: unknown replication level %q (want none, quorum, or all)", s)
}

// need returns the number of durable copies (counting the primary) the
// level demands in a cluster of 1 primary + followers nodes.
func (l Level) need(followers int) int {
	switch l {
	case ReplicateQuorum:
		return (1+followers)/2 + 1
	case ReplicateAll:
		return 1 + followers
	}
	return 1
}

// ErrPromoted is returned by a follower that has been promoted: it no
// longer accepts replicated records, because it is now a primary in its
// own right and the sender is deposed.
var ErrPromoted = errors.New("replica: follower has been promoted")

// DegradedError reports a write rejected because the replication quorum
// is not reachable: the batch is durable nowhere and was acknowledged to
// no one, and the same batch ID may be retried once the quorum recovers.
// Servers surface it as 503 + Retry-After.
type DegradedError struct {
	// Stream is the degraded stream's ID.
	Stream string
	// Need is the number of durable copies the level demands.
	Need int
	// Have is how many copies were actually achieved (counting the
	// primary's own).
	Have int
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("replica: stream %q degraded: %d of %d required copies durable; stream is read-only until quorum recovers",
		e.Stream, e.Have, e.Need)
}

// Conn is the primary's connection to one follower. Implementations must
// be safe for concurrent use: the synchronous ack path ships records
// while the follower's maintenance loop heartbeats.
type Conn interface {
	// Connect performs the session handshake: the follower checks the
	// vertex count matches its engine and returns its current high-water
	// batch ID, from which catch-up resumes.
	Connect(ctx context.Context, vertices int) (uint64, error)
	// Ship delivers one framed WAL record. prev is the high-water mark
	// the follower must currently be at for its log to stay a contiguous
	// prefix; the returned mark is the follower's high-water after the
	// call (>= the record's batch ID on success, including the duplicate
	// case). The follower fsyncs before returning.
	Ship(ctx context.Context, prev uint64, rec []byte) (uint64, error)
	// InstallSnapshot replaces the follower's entire state with snapshot
	// bytes and returns its new high-water mark.
	InstallSnapshot(ctx context.Context, data []byte) (uint64, error)
	// Heartbeat probes liveness and returns the follower's high-water mark.
	Heartbeat(ctx context.Context) (uint64, error)
	// Close releases the connection.
	Close() error
}

// Dialer opens a fresh connection to one follower.
type Dialer func(ctx context.Context) (Conn, error)
