package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"llpmst/internal/fault"
	"llpmst/internal/obs"
	"llpmst/internal/stream"
)

// Fault-injection node roles for crash-stop schedules on the primary's
// replication path (fault.Crash.Node). Rounds are 0-based gate invocation
// ordinals — one per batch that reaches the replication gate — so a crash
// can be scheduled at every step boundary of a specific batch's commit.
const (
	// FaultNodePreShip kills the primary after its local append but
	// before any follower has seen the record: the batch is durable only
	// on the (dead) primary and was never acknowledged.
	FaultNodePreShip uint32 = 10
	// FaultNodeMidShip kills the primary after the record reached exactly
	// one follower: below quorum (for 3 nodes), never acknowledged, but a
	// trace of the batch exists in the cluster.
	FaultNodeMidShip uint32 = 11
	// FaultNodePostShip kills the primary after every current follower
	// was shipped to but before the client acknowledgement: the batch may
	// be fully quorum-durable yet unacked — its retry against the
	// promoted follower must ack as a duplicate.
	FaultNodePostShip uint32 = 12
)

// Config configures a Primary.
type Config struct {
	// Stream is the replicated stream's ID (error messages, metrics).
	Stream string
	// Level is the ack durability level (default ReplicateNone).
	Level Level
	// AckTimeout bounds each ship and heartbeat call (default 5s).
	AckTimeout time.Duration
	// Heartbeat is the liveness probe cadence for current followers
	// (default 1s).
	Heartbeat time.Duration
	// ReconnectMin/ReconnectMax bound the exponential backoff between
	// reconnect attempts (defaults 25ms and 2s).
	ReconnectMin time.Duration
	ReconnectMax time.Duration
	// Observer receives replication counters and the lag gauge.
	Observer obs.Collector
	// Fault, when non-nil, drives deterministic crash-stop injection on
	// the replication path; see FaultNodePreShip et al.
	Fault *fault.Plan
	// Logf, when non-nil, receives one line per follower state change.
	Logf func(format string, args ...any)
}

// FollowerSpec names one follower and how to reach it.
type FollowerSpec struct {
	Name string
	Dial Dialer
}

// FollowerStatus is a point-in-time view of one follower for health and
// metrics endpoints.
type FollowerStatus struct {
	Name             string `json:"name"`
	Connected        bool   `json:"connected"`
	Current          bool   `json:"current"`
	HighWater        uint64 `json:"high_water"`
	Reconnects       uint64 `json:"reconnects"`
	CatchupRecords   uint64 `json:"catchup_records"`
	CatchupSnapshots uint64 `json:"catchup_snapshots"`
}

// errStopped ends a follower maintenance loop on Close.
var errStopped = errors.New("replica: primary closed")

type follower struct {
	name string
	dial Dialer
	kick chan struct{} // capacity 1: demotion signal from the gate

	// The fields below are guarded by Primary.mu.
	conn             Conn // non-nil while a session is established
	hw               uint64
	connected        bool
	current          bool
	reconnects       uint64
	catchupRecords   uint64
	catchupSnapshots uint64
}

// Primary replicates one engine's WAL to a set of followers and gates the
// engine's acknowledgements on the configured durability level. It owns a
// maintenance goroutine per follower (connect, catch up, heartbeat) and
// installs itself as the engine's ReplicationGate.
type Primary struct {
	cfg Config
	eng *stream.Engine
	col obs.Collector
	inj *fault.Injector

	mu         sync.Mutex
	followers  []*follower
	gateRounds int
	closed     bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewPrimary wires eng to its followers: it installs the replication gate
// and starts one maintenance loop per follower. Close detaches the gate
// and stops the loops.
func NewPrimary(eng *stream.Engine, cfg Config, specs []FollowerSpec) (*Primary, error) {
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 5 * time.Second
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.ReconnectMin <= 0 {
		cfg.ReconnectMin = 25 * time.Millisecond
	}
	if cfg.ReconnectMax < cfg.ReconnectMin {
		cfg.ReconnectMax = 2 * time.Second
	}
	if cfg.Level != ReplicateNone && len(specs) == 0 {
		return nil, fmt.Errorf("replica: level %v needs at least one follower", cfg.Level)
	}
	p := &Primary{
		cfg:  cfg,
		eng:  eng,
		col:  obs.Or(cfg.Observer),
		stop: make(chan struct{}),
	}
	if cfg.Fault != nil {
		p.inj = fault.New(*cfg.Fault)
	}
	for _, s := range specs {
		f := &follower{name: s.Name, dial: s.Dial, kick: make(chan struct{}, 1)}
		p.followers = append(p.followers, f)
	}
	eng.SetReplicationGate(p.gate)
	for _, f := range p.followers {
		p.wg.Add(1)
		go p.runFollower(f)
	}
	return p, nil
}

// Close detaches the gate (the engine acknowledges on local durability
// again) and stops every follower loop.
func (p *Primary) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	p.eng.SetReplicationGate(nil)
	close(p.stop)
	p.wg.Wait()
	return nil
}

// Need returns how many durable copies (counting the primary's) the
// configured level demands.
func (p *Primary) Need() int { return p.cfg.Level.need(len(p.followers)) }

// Level returns the configured durability level.
func (p *Primary) Level() Level { return p.cfg.Level }

// Status reports every follower's connection state and progress.
func (p *Primary) Status() []FollowerStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]FollowerStatus, len(p.followers))
	for i, f := range p.followers {
		out[i] = FollowerStatus{
			Name:             f.name,
			Connected:        f.connected,
			Current:          f.current,
			HighWater:        f.hw,
			Reconnects:       f.reconnects,
			CatchupRecords:   f.catchupRecords,
			CatchupSnapshots: f.catchupSnapshots,
		}
	}
	return out
}

// Healthy reports whether a write arriving now could reach its quorum.
func (p *Primary) Healthy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	have := 1
	for _, f := range p.followers {
		if f.current {
			have++
		}
	}
	return have >= p.cfg.Level.need(len(p.followers))
}

func (p *Primary) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}

// gate is the engine's ReplicationGate: ship rec to every current
// follower, demand the level's quorum of durable copies (counting the
// primary's own append, which already happened), and update the lag gauge.
// It runs under the engine's batch lock, so rounds are per-batch ordinals.
func (p *Primary) gate(ctx context.Context, ref obs.TraceRef, prev, id uint64, rec []byte) error {
	p.mu.Lock()
	round := p.gateRounds
	p.gateRounds++
	type target struct {
		f    *follower
		conn Conn
	}
	var targets []target
	for _, f := range p.followers {
		if f.current && f.conn != nil {
			targets = append(targets, target{f, f.conn})
		}
	}
	need := p.cfg.Level.need(len(p.followers))
	p.mu.Unlock()

	asp := ref.Start("replica.ack")
	asp.SetInt("batch", int64(id))
	asp.SetInt("need", int64(need))
	defer asp.End()

	if p.inj != nil && !p.inj.Alive(FaultNodePreShip, round) {
		asp.SetErrorString("injected crash before ship")
		return stream.ErrCrashed
	}
	if 1+len(targets) < need {
		p.col.Count(obs.CtrReplicaDegraded, 1)
		asp.SetErrorString("quorum unreachable before ship")
		return &DegradedError{Stream: p.cfg.Stream, Need: need, Have: 1 + len(targets)}
	}

	acks := 1 // the primary's own durable append
	for i, t := range targets {
		ssp := asp.Ref().Start("replica.ship")
		ssp.SetAttr("follower", t.f.name)
		ssp.SetInt("batch", int64(id))
		sctx, cancel := context.WithTimeout(ctx, p.cfg.AckTimeout)
		hw, err := t.conn.Ship(sctx, prev, rec)
		cancel()
		p.col.Count(obs.CtrReplicaShip, 1)
		switch {
		case err != nil:
			ssp.SetErrorString(err.Error())
			p.demote(t.f, fmt.Sprintf("ship batch %d: %v", id, err))
		case hw < id:
			// The follower acked a stale mark: it is behind and must
			// re-run catch-up before it counts again.
			ssp.SetErrorString(fmt.Sprintf("acked high-water %d < batch %d", hw, id))
			p.demote(t.f, fmt.Sprintf("ship batch %d: follower still at %d", id, hw))
		default:
			acks++
			p.col.Count(obs.CtrReplicaAck, 1)
			p.setHW(t.f, hw)
		}
		ssp.End()
		if i == 0 && p.inj != nil && !p.inj.Alive(FaultNodeMidShip, round) {
			asp.SetErrorString("injected crash mid-ship")
			return stream.ErrCrashed
		}
	}
	if p.inj != nil && !p.inj.Alive(FaultNodePostShip, round) {
		asp.SetErrorString("injected crash after ship")
		return stream.ErrCrashed
	}
	if acks < need {
		p.col.Count(obs.CtrReplicaDegraded, 1)
		asp.SetErrorString(fmt.Sprintf("%d of %d copies durable", acks, need))
		return &DegradedError{Stream: p.cfg.Stream, Need: need, Have: acks}
	}
	p.col.Gauge(obs.GaugeReplicaLag, p.lag(id))
	return nil
}

// lag is the furthest-behind follower's batch distance from id.
func (p *Primary) lag(id uint64) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var worst int64
	for _, f := range p.followers {
		if f.hw < id {
			if d := int64(id - f.hw); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// setHW records a follower's reported mark. Not monotonic on purpose: a
// diverged follower's mark drops when a snapshot resync rolls it back.
func (p *Primary) setHW(f *follower, hw uint64) {
	p.mu.Lock()
	f.hw = hw
	p.mu.Unlock()
}

// demote drops a follower out of the synchronous ack path and kicks its
// maintenance loop into reconnect + catch-up.
func (p *Primary) demote(f *follower, why string) {
	p.mu.Lock()
	was := f.current
	f.current = false
	p.mu.Unlock()
	if was {
		p.logf("replica: follower %s demoted: %s", f.name, why)
	}
	select {
	case f.kick <- struct{}{}:
	default:
	}
}

// runFollower is one follower's maintenance loop: dial with exponential
// backoff, catch the follower up from its high-water mark, mark it
// current, then heartbeat until something fails and the cycle restarts.
func (p *Primary) runFollower(f *follower) {
	defer p.wg.Done()
	backoff := p.cfg.ReconnectMin
	attempt := 0
	for {
		if attempt > 0 {
			p.col.Count(obs.CtrReplicaReconnects, 1)
			p.mu.Lock()
			f.reconnects++
			p.mu.Unlock()
			select {
			case <-p.stop:
				return
			case <-time.After(backoff):
			}
			backoff *= 2
			if backoff > p.cfg.ReconnectMax {
				backoff = p.cfg.ReconnectMax
			}
		}
		attempt++
		select {
		case <-p.stop:
			return
		default:
		}
		dctx, cancel := context.WithTimeout(context.Background(), p.cfg.AckTimeout)
		conn, err := f.dial(dctx)
		cancel()
		if err != nil {
			continue
		}
		hctx, cancel := context.WithTimeout(context.Background(), p.cfg.AckTimeout)
		hw, err := conn.Connect(hctx, p.eng.Vertices())
		cancel()
		if err != nil {
			conn.Close()
			if errors.Is(err, ErrPromoted) {
				p.logf("replica: follower %s is promoted; giving up on it", f.name)
				return
			}
			continue
		}
		backoff = p.cfg.ReconnectMin
		p.mu.Lock()
		f.conn = conn
		f.connected = true
		f.hw = hw
		p.mu.Unlock()
		drainKick(f.kick) // stale demotion signals belong to the old session
		p.logf("replica: follower %s connected at high-water %d", f.name, hw)

		err = p.session(f, conn, hw)

		p.mu.Lock()
		f.conn = nil
		f.connected = false
		f.current = false
		p.mu.Unlock()
		conn.Close()
		switch {
		case errors.Is(err, errStopped):
			return
		case errors.Is(err, ErrPromoted):
			p.logf("replica: follower %s is promoted; giving up on it", f.name)
			return
		default:
			p.logf("replica: follower %s session ended: %v", f.name, err)
		}
	}
}

// session drives one established connection: alternate catch-up (ship the
// WAL suffix past hw, or a snapshot when the log no longer reaches back
// that far) with current service (heartbeats between synchronous ships).
// It returns when the connection errors, the primary closes, or the
// follower reports itself promoted.
func (p *Primary) session(f *follower, conn Conn, hw uint64) error {
	for {
		// Catch up until the follower's log matches the engine's.
		for hw != p.eng.LastBatch() {
			if stopped(p.stop) {
				return errStopped
			}
			recs, compacted, err := p.eng.WALRecordsAbove(hw)
			if err != nil {
				return err
			}
			if compacted {
				data, err := p.eng.EncodeSnapshot()
				if err != nil {
					return err
				}
				sctx, cancel := context.WithTimeout(context.Background(), 10*p.cfg.AckTimeout)
				nhw, err := conn.InstallSnapshot(sctx, data)
				cancel()
				if err != nil {
					return fmt.Errorf("install snapshot: %w", err)
				}
				p.col.Count(obs.CtrReplicaCatchupSnapshots, 1)
				p.mu.Lock()
				f.catchupSnapshots++
				p.mu.Unlock()
				hw = nhw
				p.setHW(f, hw)
				continue
			}
			stale := false
			for _, rec := range recs {
				if stopped(p.stop) {
					return errStopped
				}
				sctx, cancel := context.WithTimeout(context.Background(), p.cfg.AckTimeout)
				nhw, serr := conn.Ship(sctx, hw, rec)
				cancel()
				p.col.Count(obs.CtrReplicaShip, 1)
				if serr != nil {
					if errors.Is(serr, stream.ErrOutOfOrder) {
						// Our view of its mark is stale; re-probe and retry.
						stale = true
						break
					}
					return fmt.Errorf("catch-up ship: %w", serr)
				}
				p.col.Count(obs.CtrReplicaAck, 1)
				p.col.Count(obs.CtrReplicaCatchupRecords, 1)
				p.mu.Lock()
				f.catchupRecords++
				p.mu.Unlock()
				hw = nhw
				p.setHW(f, hw)
			}
			if stale {
				hctx, cancel := context.WithTimeout(context.Background(), p.cfg.AckTimeout)
				nhw, herr := conn.Heartbeat(hctx)
				cancel()
				if herr != nil {
					return herr
				}
				hw = nhw
				p.setHW(f, hw)
			}
		}

		// Drained: join the synchronous ack path. A batch that commits in
		// the instant before this flag flips was not shipped here; the
		// next synchronous ship then fails its prev check and demotes us
		// straight back to catch-up — a missed beat, never a gap.
		p.mu.Lock()
		f.current = true
		f.hw = hw
		p.mu.Unlock()
		p.logf("replica: follower %s current at high-water %d", f.name, hw)

		hb := time.NewTicker(p.cfg.Heartbeat)
	serve:
		for {
			select {
			case <-p.stop:
				hb.Stop()
				return errStopped
			case <-f.kick:
				break serve
			case <-hb.C:
				hctx, cancel := context.WithTimeout(context.Background(), p.cfg.AckTimeout)
				nhw, err := conn.Heartbeat(hctx)
				cancel()
				if err != nil {
					hb.Stop()
					return fmt.Errorf("heartbeat: %w", err)
				}
				if nhw > p.eng.LastBatch() {
					// The follower is ahead of us: it holds a record the
					// quorum rolled back. Demote and resync it.
					p.demote(f, fmt.Sprintf("follower at %d is ahead of primary", nhw))
				}
			}
		}
		hb.Stop()
		// Demoted: measure where the follower actually is and catch up.
		hctx, cancel := context.WithTimeout(context.Background(), p.cfg.AckTimeout)
		nhw, err := conn.Heartbeat(hctx)
		cancel()
		if err != nil {
			return err
		}
		hw = nhw
		p.setHW(f, hw)
	}
}

func stopped(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

func drainKick(ch chan struct{}) {
	select {
	case <-ch:
	default:
	}
}
