package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"llpmst/internal/stream"
)

// HTTPConn speaks the replication protocol to a follower-mode mstserve:
//
//	POST {base}/replica/{stream}/connect   {"vertices": n}   -> {"high_water": h}
//	POST {base}/replica/{stream}/ship?prev=P   (raw record)  -> {"high_water": h}
//	POST {base}/replica/{stream}/snapshot      (raw snapshot)-> {"high_water": h}
//	GET  {base}/replica/{stream}/hw                          -> {"high_water": h}
//
// Protocol failures map back to the typed errors the primary's loops
// branch on: 409 Conflict is a contiguity violation (stream.ErrOutOfOrder,
// re-run catch-up) and 410 Gone means the follower was promoted.
type HTTPConn struct {
	base   string
	stream string
	client *http.Client
}

// NewHTTPConn builds a connection to the follower at base (scheme://host:port)
// for streamID. client may be nil for http.DefaultClient; per-call
// deadlines come from the caller's context.
func NewHTTPConn(base, streamID string, client *http.Client) *HTTPConn {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPConn{base: base, stream: streamID, client: client}
}

// HTTPDialer returns a Dialer for the follower at base. HTTP connections
// are stateless, so dialing is just construction; the Connect handshake
// does the real probing.
func HTTPDialer(base, streamID string, client *http.Client) Dialer {
	return func(context.Context) (Conn, error) {
		return NewHTTPConn(base, streamID, client), nil
	}
}

type hwResponse struct {
	HighWater uint64 `json:"high_water"`
	Error     string `json:"error"`
}

func (c *HTTPConn) url(op string) string {
	return c.base + "/replica/" + url.PathEscape(c.stream) + "/" + op
}

func (c *HTTPConn) do(ctx context.Context, method, u, contentType string, body []byte) (uint64, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, u, rd)
	if err != nil {
		return 0, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var hr hwResponse
	decodeErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&hr)
	switch resp.StatusCode {
	case http.StatusOK:
		if decodeErr != nil {
			return 0, fmt.Errorf("replica: bad response from %s: %v", u, decodeErr)
		}
		return hr.HighWater, nil
	case http.StatusConflict:
		return 0, fmt.Errorf("%w: %s", stream.ErrOutOfOrder, hr.Error)
	case http.StatusGone:
		return 0, ErrPromoted
	default:
		msg := hr.Error
		if msg == "" {
			msg = resp.Status
		}
		return 0, fmt.Errorf("replica: %s %s: %s", method, u, msg)
	}
}

// Connect implements Conn.
func (c *HTTPConn) Connect(ctx context.Context, vertices int) (uint64, error) {
	body, _ := json.Marshal(map[string]int{"vertices": vertices})
	return c.do(ctx, http.MethodPost, c.url("connect"), "application/json", body)
}

// Ship implements Conn.
func (c *HTTPConn) Ship(ctx context.Context, prev uint64, rec []byte) (uint64, error) {
	u := c.url("ship") + "?prev=" + strconv.FormatUint(prev, 10)
	return c.do(ctx, http.MethodPost, u, "application/octet-stream", rec)
}

// InstallSnapshot implements Conn.
func (c *HTTPConn) InstallSnapshot(ctx context.Context, data []byte) (uint64, error) {
	return c.do(ctx, http.MethodPost, c.url("snapshot"), "application/octet-stream", data)
}

// Heartbeat implements Conn.
func (c *HTTPConn) Heartbeat(ctx context.Context) (uint64, error) {
	return c.do(ctx, http.MethodGet, c.url("hw"), "", nil)
}

// Close implements Conn.
func (c *HTTPConn) Close() error { return nil }
