package replica

import (
	"fmt"
	"testing"
	"time"

	"llpmst/internal/stream"
)

// BenchmarkQuorumAck measures the client-visible commit latency of one
// small batch as the ack quorum widens: followers=0 is the PR 7
// single-node fsync baseline, followers=1/2 add one/two more durable
// copies on the synchronous path (loopback transport, so the cost is pure
// replication work — extra fsyncs — not network).
func BenchmarkQuorumAck(b *testing.B) {
	for _, followers := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("followers=%d", followers), func(b *testing.B) {
			eng, _, err := stream.Open(stream.Config{
				Vertices: 64, Dir: b.TempDir(), Sync: stream.SyncAlways,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			if followers > 0 {
				var specs []FollowerSpec
				for i := 0; i < followers; i++ {
					fe, _, err := stream.Open(stream.Config{
						Vertices: 64, Dir: b.TempDir(), Sync: stream.SyncAlways,
					})
					if err != nil {
						b.Fatal(err)
					}
					defer fe.Close()
					lb := NewLoopback(NewAcceptor(fe))
					specs = append(specs, FollowerSpec{Name: fmt.Sprintf("f%d", i), Dial: LoopbackDialer(lb)})
				}
				p, err := NewPrimary(eng, Config{
					Stream: "bench", Level: ReplicateAll, AckTimeout: 10 * time.Second,
					Heartbeat: 50 * time.Millisecond,
				}, specs)
				if err != nil {
					b.Fatal(err)
				}
				defer p.Close()
				deadline := time.Now().Add(10 * time.Second)
				for !p.Healthy() {
					if time.Now().After(deadline) {
						b.Fatal("followers never became current")
					}
					time.Sleep(time.Millisecond)
				}
			}
			ops := []stream.Op{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Apply(stream.Batch{ID: uint64(i + 1), Ops: ops}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
