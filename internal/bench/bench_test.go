package bench

import (
	"bytes"
	"strings"
	"testing"

	"llpmst/internal/mst"
)

func TestParseScale(t *testing.T) {
	for in, want := range map[string]Scale{
		"test": ScaleTest, "s": ScaleS, "small": ScaleS,
		"m": ScaleM, "medium": ScaleM, "l": ScaleL, "large": ScaleL,
	} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Fatalf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("accepted bad scale")
	}
	if ScaleS.String() != "s" || ScaleTest.String() != "test" {
		t.Fatal("Scale.String wrong")
	}
}

func TestDatasetsRegistry(t *testing.T) {
	ds := Datasets(ScaleTest)
	if len(ds) != 4 {
		t.Fatalf("%d datasets, want 4", len(ds))
	}
	names := map[string]bool{}
	for _, d := range ds {
		names[d.Name] = true
		g := cachedBuild(ScaleTest, d)
		if g.NumVertices() == 0 || g.NumEdges() == 0 {
			t.Fatalf("dataset %s is empty", d.Name)
		}
		// Cache must return the identical graph.
		if g2 := cachedBuild(ScaleTest, d); g2 != g {
			t.Fatalf("dataset %s not cached", d.Name)
		}
	}
	for _, want := range []string{"road", "rmat", "geo", "er"} {
		if !names[want] {
			t.Fatalf("missing dataset %q", want)
		}
	}
	if _, err := GetDataset(ScaleTest, "road"); err != nil {
		t.Fatal(err)
	}
	if _, err := GetDataset(ScaleTest, "nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestMeasureValidatesForest(t *testing.T) {
	g, err := GetDataset(ScaleTest, "road")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Measure(g, mst.AlgKruskal, mst.Options{Workers: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Millis <= 0 || r.Edges != g.NumVertices()-1 {
		t.Fatalf("bad result %+v", r)
	}
	if _, err := Measure(g, "bogus", mst.Options{}, 1); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
}

func TestTableI(t *testing.T) {
	var buf bytes.Buffer
	rs, err := TableI(&buf, ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("%d rows, want 4", len(rs))
	}
	out := buf.String()
	for _, want := range []string{"Table I", "road", "rmat", "USA-road"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig2(t *testing.T) {
	var buf bytes.Buffer
	rs, err := Fig2(&buf, ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 3 algorithms x 2 datasets.
	if len(rs) != 6 {
		t.Fatalf("%d rows, want 6", len(rs))
	}
	// All runs on the same dataset must agree on weight.
	byDS := map[string]float64{}
	for _, r := range rs {
		if w, ok := byDS[r.Dataset]; ok && w != r.Weight {
			t.Fatalf("weight disagreement on %s", r.Dataset)
		}
		byDS[r.Dataset] = r.Weight
		if r.Workers != 1 {
			t.Fatalf("fig2 must be single-threaded, got %d", r.Workers)
		}
	}
	if !strings.Contains(buf.String(), "Fig. 2") {
		t.Fatal("missing table title")
	}
}

func TestFig3(t *testing.T) {
	var buf bytes.Buffer
	threads := []int{1, 2}
	rs, err := Fig3(&buf, ScaleTest, 1, threads)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3*len(threads) {
		t.Fatalf("%d rows, want %d", len(rs), 3*len(threads))
	}
	for _, r := range rs {
		if r.Speedup <= 0 {
			t.Fatalf("missing speedup in %+v", r)
		}
	}
}

func TestFig4(t *testing.T) {
	var buf bytes.Buffer
	rs, err := Fig4(&buf, ScaleTest, 1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 3 datasets x 2 worker counts x 3 algorithms.
	if len(rs) != 18 {
		t.Fatalf("%d rows, want 18", len(rs))
	}
}

func TestSizeSweep(t *testing.T) {
	var buf bytes.Buffer
	rs, err := SizeSweep(&buf, ScaleTest, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 6 { // 1 scale x 2 datasets x 3 algorithms
		t.Fatalf("%d rows, want 6", len(rs))
	}
}

func TestAblation(t *testing.T) {
	var buf bytes.Buffer
	rs, err := Ablation(&buf, ScaleTest, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 18 { // 2 datasets x 9 variants
		t.Fatalf("%d rows, want 18", len(rs))
	}
	// Every variant on one dataset must produce the same forest weight.
	byDS := map[string]float64{}
	for _, r := range rs {
		if w, ok := byDS[r.Dataset]; ok && w != r.Weight {
			t.Fatalf("ablation variant %s changed the MSF weight on %s", r.Algorithm, r.Dataset)
		}
		byDS[r.Dataset] = r.Weight
	}
}

func TestWorkExperiment(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Work(&buf, ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 2 datasets x 6 algorithms
		t.Fatalf("%d rows, want 12", len(rows))
	}
	byKey := map[string]mst.WorkMetrics{}
	for _, r := range rows {
		byKey[r.Dataset+"/"+r.Algorithm] = r.Metrics
	}
	for _, ds := range []string{"road", "rmat"} {
		prim := byKey[ds+"/prim"]
		llp := byKey[ds+"/llp-prim"]
		if llp.HeapOps() >= prim.HeapOps() {
			t.Fatalf("%s: llp-prim heap ops %d not below prim %d", ds, llp.HeapOps(), prim.HeapOps())
		}
		if llp.EarlyFixes == 0 {
			t.Fatalf("%s: no early fixes", ds)
		}
		if byKey[ds+"/llp-boruvka"].JumpAdvances == 0 {
			t.Fatalf("%s: no jump advances", ds)
		}
	}
	if !strings.Contains(buf.String(), "heap-ops") {
		t.Fatal("missing table header")
	}
}

func TestDistributedExperiment(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Distributed(&buf, ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Stats.Phases < 1 || r.Stats.Messages == 0 {
			t.Fatalf("row %s has empty stats: %+v", r.Dataset, r.Stats)
		}
		maxPhases := 2
		for x := 1; x < r.Vertices; x *= 2 {
			maxPhases++
		}
		if r.Stats.Phases > maxPhases {
			t.Fatalf("%s: %d phases exceeds log bound %d", r.Dataset, r.Stats.Phases, maxPhases)
		}
	}
	if !strings.Contains(buf.String(), "GHS") {
		t.Fatal("missing table title")
	}
}

func TestPrintTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	PrintTable(&buf, "demo", []string{"a", "long-header"}, [][]string{
		{"xxxxxxx", "1"}, {"y", "2"},
	})
	out := buf.String()
	if !strings.Contains(out, "== demo ==") || !strings.Contains(out, "long-header") {
		t.Fatalf("bad table:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("table has %d lines, want 5:\n%s", len(lines), out)
	}
}
