package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"llpmst/internal/gen"
	"llpmst/internal/mst"
)

// Semi measures the semiring sparse-matrix backend against the pointer-based
// Boruvka implementations across a density sweep × workers sweep: the
// GraphBLAS-style formulation trades the pointer algorithms' atomic
// write-min scatter for regular row streaming, so its advantage should grow
// with average degree (longer matrix rows amortize the per-round relabel).
// The rows are what `mstbench -exp semi -json-out` snapshots into
// BENCH_semi.json; EXPERIMENTS.md reads that trajectory.
func Semi(w io.Writer, sc Scale, trials int) ([]Result, error) {
	return SemiCtx(context.Background(), w, sc, trials)
}

// SemiCtx is Semi under a context (see MeasureCtx).
func SemiCtx(ctx context.Context, w io.Writer, sc Scale, trials int) ([]Result, error) {
	procs := runtime.GOMAXPROCS(0)
	workerSets := []int{1, procs}
	if procs == 1 {
		workerSets = []int{1}
	}
	// LLP-Boruvka is each (density, workers) cell's baseline and so must be
	// measured first; the other two rows report speedup against it.
	algs := []mst.Algorithm{mst.AlgLLPBoruvka, mst.AlgParallelBoruvka, mst.AlgSemiringBoruvka}
	var n int
	switch sc {
	case ScaleTest:
		n = 1 << 10
	case ScaleS:
		n = 1 << 14
	case ScaleM:
		n = 1 << 16
	default: // ScaleL
		n = 1 << 17
	}
	// Density sweep: Erdos-Renyi at fixed n with average degree 2, 8, and
	// 32 (the same morphology `mstgen -type er` emits), landing one graph
	// in each of the portfolio's sparse / dense / very-dense buckets.
	degrees := []int{2, 8, 32}
	var results []Result
	for _, deg := range degrees {
		g := gen.ErdosRenyi(0, n, n*deg/2, gen.WeightUniform, 42)
		ds := fmt.Sprintf("er-deg%d", deg)
		for _, p := range workerSets {
			var base Result
			for _, alg := range algs {
				opts := mst.Options{Workers: p, Workspace: mst.NewWorkspace()}
				if _, err := mst.RunCtx(ctx, alg, g, opts); err != nil {
					return nil, err // warm-up: grow the workspace once, untimed
				}
				r, err := MeasureCtx(ctx, g, alg, opts, trials)
				if err != nil {
					return nil, err
				}
				r.Experiment, r.Dataset = "semi", ds
				switch {
				case alg == mst.AlgLLPBoruvka:
					base, r.Speedup = r, 1
				case base.Millis > 0:
					r.Speedup = base.Millis / r.Millis
				}
				results = append(results, r)
			}
		}
	}
	var rows [][]string
	for _, r := range results {
		rows = append(rows, []string{
			r.Dataset, r.Algorithm, fmt.Sprintf("%d", r.Workers),
			ms(r.Millis), fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%d", r.AllocsPerOp), fmt.Sprintf("%d", r.BytesPerOp),
		})
	}
	PrintTable(w, fmt.Sprintf("Semiring vs pointer-based Boruvka: density sweep x workers (n=%d, scale=%s, trials=%d, GOMAXPROCS=%d)", n, sc, trials, procs),
		[]string{"dataset", "algorithm", "workers", "time-ms", "vs-llp-boruvka", "allocs/op", "bytes/op"}, rows)
	return results, nil
}
