package bench

import (
	"context"
	"fmt"
	"io"
	"math"

	"llpmst/internal/dist"
	"llpmst/internal/gen"
	"llpmst/internal/graph"
)

// DistRow is one line of the distributed-protocol cost experiment.
type DistRow struct {
	Dataset  string
	Vertices int
	Edges    int
	Stats    dist.SimStats
}

// Distributed measures the GHS-style protocol's costs across growing road
// networks and a Kronecker graph: phases (should stay within log2 n),
// rounds, and total messages (the classic GHS bound is O(m + n log n)).
// Wall time is irrelevant here — the simulation is sequential — so this
// experiment is meaningful on any host.
func Distributed(w io.Writer, sc Scale) ([]DistRow, error) {
	return DistributedCtx(context.Background(), w, sc)
}

// DistributedCtx is Distributed under a context: the protocol simulation
// polls the context between message rounds (see dist.RunGHS).
func DistributedCtx(ctx context.Context, w io.Writer, sc Scale) ([]DistRow, error) {
	var graphs []struct {
		name string
		g    *graph.CSR
	}
	sides := []int{8, 16, 32}
	if sc >= ScaleS {
		sides = append(sides, 64)
	}
	for _, side := range sides {
		graphs = append(graphs, struct {
			name string
			g    *graph.CSR
		}{
			fmt.Sprintf("road-%dx%d", side, side),
			gen.RoadNetwork(0, side, side, 0.2, 42),
		})
	}
	graphs = append(graphs, struct {
		name string
		g    *graph.CSR
	}{"rmat-s8", gen.RMAT(0, 8, 8, gen.WeightUniform, 42)})

	var rows []DistRow
	var table [][]string
	for _, item := range graphs {
		ids, stats, err := dist.RunGHS(ctx, item.g)
		if err != nil {
			return nil, err
		}
		_, comps := item.g.Components()
		if len(ids) != item.g.NumVertices()-comps {
			return nil, fmt.Errorf("distributed MSF wrong size on %s", item.name)
		}
		rows = append(rows, DistRow{
			Dataset: item.name, Vertices: item.g.NumVertices(),
			Edges: item.g.NumEdges(), Stats: stats,
		})
		n := float64(item.g.NumVertices())
		m := float64(item.g.NumEdges())
		bound := m + n*math.Log2(n)
		table = append(table, []string{
			item.name,
			fmt.Sprintf("%d", item.g.NumVertices()),
			fmt.Sprintf("%d", item.g.NumEdges()),
			fmt.Sprintf("%d", stats.Phases),
			fmt.Sprintf("%.1f", math.Log2(n)),
			fmt.Sprintf("%d", stats.Rounds),
			fmt.Sprintf("%d", stats.Messages),
			fmt.Sprintf("%.2f", float64(stats.Messages)/bound),
		})
	}
	PrintTable(w, fmt.Sprintf("Distributed GHS-style protocol costs (scale=%s)", sc),
		[]string{"graph", "n", "m", "phases", "log2(n)", "rounds", "messages", "msgs/(m+n·log n)"},
		table)
	return rows, nil
}
