package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"slices"

	"llpmst/internal/dist"
	"llpmst/internal/fault"
	"llpmst/internal/gen"
	"llpmst/internal/graph"
)

// namedGraph pairs an experiment dataset with its display name.
type namedGraph struct {
	name string
	g    *graph.CSR
}

// distGraphs builds the distributed experiments' dataset suite: growing
// road networks plus a Kronecker graph.
func distGraphs(sc Scale) []namedGraph {
	var graphs []namedGraph
	sides := []int{8, 16, 32}
	if sc >= ScaleS {
		sides = append(sides, 64)
	}
	for _, side := range sides {
		graphs = append(graphs, namedGraph{
			fmt.Sprintf("road-%dx%d", side, side),
			gen.RoadNetwork(0, side, side, 0.2, 42),
		})
	}
	return append(graphs, namedGraph{"rmat-s8", gen.RMAT(0, 8, 8, gen.WeightUniform, 42)})
}

// DistRow is one line of the distributed-protocol cost experiment.
type DistRow struct {
	Dataset  string
	Vertices int
	Edges    int
	Stats    dist.SimStats
}

// Distributed measures the GHS-style protocol's costs across growing road
// networks and a Kronecker graph: phases (should stay within log2 n),
// rounds, and total messages (the classic GHS bound is O(m + n log n)).
// Wall time is irrelevant here — the simulation is sequential — so this
// experiment is meaningful on any host.
func Distributed(w io.Writer, sc Scale) ([]DistRow, error) {
	return DistributedCtx(context.Background(), w, sc)
}

// DistributedCtx is Distributed under a context: the protocol simulation
// polls the context between message rounds (see dist.RunGHS).
func DistributedCtx(ctx context.Context, w io.Writer, sc Scale) ([]DistRow, error) {
	graphs := distGraphs(sc)
	var rows []DistRow
	var table [][]string
	for _, item := range graphs {
		ids, stats, err := dist.RunGHS(ctx, item.g)
		if err != nil {
			return nil, err
		}
		_, comps := item.g.Components()
		if len(ids) != item.g.NumVertices()-comps {
			return nil, fmt.Errorf("distributed MSF wrong size on %s", item.name)
		}
		rows = append(rows, DistRow{
			Dataset: item.name, Vertices: item.g.NumVertices(),
			Edges: item.g.NumEdges(), Stats: stats,
		})
		n := float64(item.g.NumVertices())
		m := float64(item.g.NumEdges())
		bound := m + n*math.Log2(n)
		table = append(table, []string{
			item.name,
			fmt.Sprintf("%d", item.g.NumVertices()),
			fmt.Sprintf("%d", item.g.NumEdges()),
			fmt.Sprintf("%d", stats.Phases),
			fmt.Sprintf("%.1f", math.Log2(n)),
			fmt.Sprintf("%d", stats.Rounds),
			fmt.Sprintf("%d", stats.Messages),
			fmt.Sprintf("%.2f", float64(stats.Messages)/bound),
		})
	}
	PrintTable(w, fmt.Sprintf("Distributed GHS-style protocol costs (scale=%s)", sc),
		[]string{"graph", "n", "m", "phases", "log2(n)", "rounds", "messages", "msgs/(m+n·log n)"},
		table)
	return rows, nil
}

// ChaosRow is one line of the chaos experiment: the same protocol run clean
// and under a lossy network, with the transport's recovery costs.
type ChaosRow struct {
	Dataset     string
	Vertices    int
	Edges       int
	Clean       dist.SimStats
	Faulty      dist.SimStats
	RoundFactor float64 // faulty rounds / clean rounds
}

// ChaosCtx reruns the distributed experiment's graphs over a lossy network
// (20% drop, 10% duplication, inbox reordering, seeded by seed) and reports
// what fault recovery costs: retransmissions, injected faults, and the
// round-count slowdown versus the clean run. Every faulty run is checked to
// elect exactly the clean run's forest — the reliable transport must mask
// the chaos completely.
func ChaosCtx(ctx context.Context, w io.Writer, sc Scale, seed int64) ([]ChaosRow, error) {
	graphs := distGraphs(sc)
	plan := fault.Plan{
		Seed:    seed,
		Default: fault.Probs{Drop: 0.2, Dup: 0.1, Reorder: true},
	}
	var rows []ChaosRow
	var table [][]string
	for _, item := range graphs {
		cleanIDs, clean, err := dist.RunGHS(ctx, item.g)
		if err != nil {
			return nil, err
		}
		faultyIDs, faulty, err := dist.RunGHSFaulty(ctx, item.g, plan)
		if err != nil {
			return nil, err
		}
		slices.Sort(cleanIDs)
		slices.Sort(faultyIDs)
		if !slices.Equal(cleanIDs, faultyIDs) {
			return nil, fmt.Errorf("chaos run elected a different forest on %s", item.name)
		}
		factor := float64(faulty.Rounds) / float64(max(clean.Rounds, 1))
		rows = append(rows, ChaosRow{
			Dataset: item.name, Vertices: item.g.NumVertices(), Edges: item.g.NumEdges(),
			Clean: clean, Faulty: faulty, RoundFactor: factor,
		})
		table = append(table, []string{
			item.name,
			fmt.Sprintf("%d", item.g.NumVertices()),
			fmt.Sprintf("%d", clean.Rounds),
			fmt.Sprintf("%d", faulty.Rounds),
			fmt.Sprintf("%.1fx", factor),
			fmt.Sprintf("%d", faulty.Retransmits),
			fmt.Sprintf("%d", faulty.Dropped),
			fmt.Sprintf("%d", faulty.Duplicated),
		})
	}
	PrintTable(w, fmt.Sprintf("GHS under chaos: drop=0.2 dup=0.1 reorder (seed=%d, scale=%s)", seed, sc),
		[]string{"graph", "n", "clean rounds", "chaos rounds", "slowdown", "retransmits", "dropped", "duplicated"},
		table)
	return rows, nil
}
