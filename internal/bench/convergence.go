package bench

import (
	"context"
	"fmt"
	"io"

	"llpmst/internal/mst"
	"llpmst/internal/obs"
)

// Convergence reproduces the paper's convergence-dynamics view: one
// contraction-algorithm run per dataset with a flight recorder attached,
// printed as a per-round table (live edges entering the round, pointer-jump
// sweeps and advances spent flattening it). This is the data behind the
// claim that LLP-Boruvka's rounds shrink the edge set geometrically while
// each round needs only a handful of jump sweeps.
func Convergence(w io.Writer, sc Scale, workers int) ([]Result, error) {
	return ConvergenceCtx(context.Background(), w, sc, workers)
}

// ConvergenceCtx is Convergence under a context (cancellation stops between
// runs; a collector carried on ctx still sees every run, tee'd with the
// per-run recorder).
func ConvergenceCtx(ctx context.Context, w io.Writer, sc Scale, workers int) ([]Result, error) {
	algs := []mst.Algorithm{mst.AlgParallelBoruvka, mst.AlgLLPBoruvka}
	var results []Result
	var rows [][]string
	for _, ds := range []string{"road", "rmat"} {
		g, err := GetDataset(sc, ds)
		if err != nil {
			return nil, err
		}
		for _, alg := range algs {
			if err := ctx.Err(); err != nil {
				return results, err
			}
			rec := obs.NewFlightRecorder(workers, 1<<16)
			// Options.Observer would shadow a ctx-carried collector (that
			// precedence is deliberate elsewhere); here both should see the
			// run — the global -trace-out/-round-csv recorders must not go
			// blind because convergence attaches its own.
			opts := mst.Options{
				Workers:  workers,
				Observer: obs.Tee(obs.FromContext(ctx), rec),
			}
			if _, err := mst.RunCtx(ctx, alg, g, opts); err != nil {
				return results, err
			}
			for _, rs := range rec.RoundSeries() {
				live, _ := rs.Gauge(obs.GaugeLiveEdges)
				rows = append(rows, []string{
					ds, string(alg), fmt.Sprintf("%d", rs.Round),
					fmt.Sprintf("%d", live),
					fmt.Sprintf("%d", rs.Counter(obs.CtrJumpRounds)),
					fmt.Sprintf("%d", rs.Counter(obs.CtrJumpAdvances)),
					fmt.Sprintf("%.3f", float64(rs.End-rs.Start)/1e6),
				})
			}
			results = append(results, Result{
				Experiment: "conv", Dataset: ds, Algorithm: string(alg),
				Workers: workers, Edges: g.NumEdges(),
			})
		}
	}
	PrintTable(w, fmt.Sprintf("Convergence: per-round live edges and pointer-jump work (scale=%s, workers=%d)", sc, workers),
		[]string{"dataset", "algorithm", "round", "live-edges", "jump-sweeps", "jump-advances", "round-ms"}, rows)
	return results, nil
}
