// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§VII): the dataset registry standing in
// for Table I, the single- and multi-threaded comparisons of Figs. 2-4, the
// same-morphology size sweep described in §VII.C, and the ablation studies
// for the design choices DESIGN.md calls out.
//
// Each experiment returns structured []Result rows and renders the same
// rows as an aligned text table, so the CLI, the tests, and go test -bench
// all share one code path.
package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"llpmst/internal/gen"
	"llpmst/internal/graph"
	"llpmst/internal/mst"
)

// Scale selects dataset sizes. The paper runs 18-24M vertex graphs on a
// 48-vCPU machine; the default scales here are sized for a developer box,
// with ScaleL approaching paper-like behaviour on a large host.
type Scale int

const (
	// ScaleTest is for unit tests: ~1k vertices.
	ScaleTest Scale = iota
	// ScaleS is the default benchmark scale: ~65k-vertex graphs.
	ScaleS
	// ScaleM is ~260k vertices.
	ScaleM
	// ScaleL is ~1M vertices.
	ScaleL
)

// ParseScale maps a flag string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "test":
		return ScaleTest, nil
	case "s", "small":
		return ScaleS, nil
	case "m", "medium":
		return ScaleM, nil
	case "l", "large":
		return ScaleL, nil
	}
	return 0, fmt.Errorf("bench: unknown scale %q (want test|s|m|l)", s)
}

func (s Scale) String() string {
	switch s {
	case ScaleTest:
		return "test"
	case ScaleS:
		return "s"
	case ScaleM:
		return "m"
	case ScaleL:
		return "l"
	}
	return fmt.Sprintf("scale(%d)", int(s))
}

// Dataset is a named benchmark graph with its generator.
type Dataset struct {
	// Name identifies the dataset in reports ("road", "rmat", ...).
	Name string
	// Kind is the morphology label Table I uses ("road", "scalefree", ...).
	Kind string
	// Analogue names the paper dataset this stands in for.
	Analogue string
	// Build generates the graph with p workers.
	Build func(p int) *graph.CSR
}

// Datasets returns the registry for a scale. The first two entries are the
// Table I stand-ins (road network, Graph500 Kronecker); the rest are the
// extra morphologies used by Fig. 4 and the size sweep.
func Datasets(sc Scale) []Dataset {
	type dims struct {
		roadSide  int
		rmatScale int
		geoN      int
		erN, erM  int
	}
	var d dims
	switch sc {
	case ScaleTest:
		d = dims{roadSide: 32, rmatScale: 10, geoN: 1 << 10, erN: 1 << 10, erM: 1 << 13}
	case ScaleS:
		d = dims{roadSide: 256, rmatScale: 14, geoN: 1 << 14, erN: 1 << 14, erM: 1 << 17}
	case ScaleM:
		d = dims{roadSide: 512, rmatScale: 16, geoN: 1 << 16, erN: 1 << 16, erM: 1 << 19}
	default: // ScaleL
		d = dims{roadSide: 1024, rmatScale: 18, geoN: 1 << 18, erN: 1 << 18, erM: 1 << 21}
	}
	return []Dataset{
		{
			Name: "road", Kind: "road", Analogue: "USA-road-d.USA (23.9M v)",
			Build: func(p int) *graph.CSR {
				return gen.RoadNetwork(p, d.roadSide, d.roadSide, 0.2, 42)
			},
		},
		{
			Name: "rmat", Kind: "scalefree", Analogue: "graph500-s25-ef16 (18M v)",
			Build: func(p int) *graph.CSR {
				return gen.RMAT(p, d.rmatScale, 16, gen.WeightUniform, 42)
			},
		},
		{
			Name: "geo", Kind: "geometric", Analogue: "(denser morphology, §VII.C)",
			Build: func(p int) *graph.CSR {
				return gen.Geometric(p, d.geoN, 2*gen.ConnectivityRadius(d.geoN), 42)
			},
		},
		{
			Name: "er", Kind: "uniform", Analogue: "(uniform-degree morphology)",
			Build: func(p int) *graph.CSR {
				return gen.ErdosRenyi(p, d.erN, d.erM, gen.WeightUniform, 42)
			},
		},
	}
}

// GetDataset builds (or returns the cached) dataset by name at a scale.
func GetDataset(sc Scale, name string) (*graph.CSR, error) {
	for _, d := range Datasets(sc) {
		if d.Name == name {
			return cachedBuild(sc, d), nil
		}
	}
	return nil, fmt.Errorf("bench: unknown dataset %q", name)
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*graph.CSR{}
)

func cachedBuild(sc Scale, d Dataset) *graph.CSR {
	key := fmt.Sprintf("%s/%s", sc, d.Name)
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if g, ok := cache[key]; ok {
		return g
	}
	g := d.Build(0)
	cache[key] = g
	return g
}

// Result is one measured cell of a table or figure. The json tags define the
// schema of the BENCH_<experiment>.json trajectory files (see
// WriteJSONReports); renaming a tag is a schema change for every committed
// snapshot.
type Result struct {
	Experiment  string  `json:"experiment"`
	Dataset     string  `json:"dataset"`
	Algorithm   string  `json:"algorithm"`
	Workers     int     `json:"workers"`
	Millis      float64 `json:"best_ms"`       // best-of-trials wall time
	MedianMs    float64 `json:"median_ms"`     // median trial
	StddevMs    float64 `json:"stddev_ms"`     // sample standard deviation across trials
	Speedup     float64 `json:"speedup"`       // vs the row's declared baseline (0 if n/a)
	Edges       int     `json:"edges"`         // forest edges, as a sanity check
	Weight      float64 `json:"weight"`        // forest weight, as a sanity check
	AllocsPerOp int64   `json:"allocs_per_op"` // min-of-trials heap allocations per run
	BytesPerOp  int64   `json:"bytes_per_op"`  // min-of-trials heap bytes per run
}

// Measure runs the algorithm `trials` times and returns the best wall time,
// verifying the structural validity of the produced forest once.
func Measure(g *graph.CSR, alg mst.Algorithm, opts mst.Options, trials int) (Result, error) {
	return MeasureCtx(context.Background(), g, alg, opts, trials)
}

// MeasureCtx is Measure under a context: the context is installed into the
// run's Options (cancelling every trial cooperatively) and any collector it
// carries observes each trial's phases. A cancelled trial aborts the whole
// measurement with its error.
func MeasureCtx(ctx context.Context, g *graph.CSR, alg mst.Algorithm, opts mst.Options, trials int) (Result, error) {
	if trials < 1 {
		trials = 1
	}
	opts.Ctx = ctx
	var sample Sample
	var forest *mst.Forest
	var minAllocs, minBytes int64
	for t := 0; t < trials; t++ {
		// Mallocs/TotalAlloc deltas around the run give allocs/op and
		// bytes/op; the minimum across trials is the steady state (the first
		// trial pays any workspace growth). ReadMemStats sits outside the
		// timed region.
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		f, err := mst.Run(alg, g, opts)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return Result{}, err
		}
		sample.Add(elapsed)
		forest = f
		allocs := int64(after.Mallocs - before.Mallocs)
		bytes := int64(after.TotalAlloc - before.TotalAlloc)
		if t == 0 || allocs < minAllocs {
			minAllocs = allocs
		}
		if t == 0 || bytes < minBytes {
			minBytes = bytes
		}
	}
	if err := mst.CheckForest(g, forest); err != nil {
		return Result{}, fmt.Errorf("bench: %s produced an invalid forest: %w", alg, err)
	}
	return Result{
		Algorithm:   string(alg),
		Workers:     opts.Workers,
		Millis:      sample.Min(),
		MedianMs:    sample.Median(),
		StddevMs:    sample.Stddev(),
		Edges:       len(forest.EdgeIDs),
		Weight:      forest.Weight,
		AllocsPerOp: minAllocs,
		BytesPerOp:  minBytes,
	}, nil
}

// PrintTable renders rows as an aligned text table.
func PrintTable(w io.Writer, title string, headers []string, rows [][]string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

// sortResults orders rows for stable presentation.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Dataset != b.Dataset {
			return a.Dataset < b.Dataset
		}
		if a.Algorithm != b.Algorithm {
			return a.Algorithm < b.Algorithm
		}
		return a.Workers < b.Workers
	})
}

func ms(f float64) string { return fmt.Sprintf("%.2f", f) }

func now() time.Time { return time.Now() }

func since(t time.Time) float64 { return float64(time.Since(t)) / float64(time.Millisecond) }
