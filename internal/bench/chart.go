package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Terminal chart rendering so mstbench can draw the paper's figures as
// figures, not just tables: one braille-free ASCII line chart per series
// group, x = workers (log2-spaced like the paper's axes), y = time or
// speedup.

// Series is one labelled curve.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

const chartW, chartH = 64, 16

var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@'}

// RenderChart draws the series into an ASCII grid with a y-axis scale and a
// legend. X values are mapped linearly; callers pass log2(workers) for the
// paper-style thread axes. Y starts at 0 unless values are negative.
func RenderChart(w io.Writer, title, xlabel, ylabel string, series []Series) {
	fmt.Fprintf(w, "\n-- %s --\n", title)
	if len(series) == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(maxX, -1) {
		fmt.Fprintln(w, "(no points)")
		return
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	grid := make([][]byte, chartH)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", chartW))
	}
	plot := func(x, y float64, mark byte) {
		cx := int((x - minX) / (maxX - minX) * float64(chartW-1))
		cy := int((y - minY) / (maxY - minY) * float64(chartH-1))
		row := chartH - 1 - cy
		if row < 0 || row >= chartH || cx < 0 || cx >= chartW {
			return
		}
		grid[row][cx] = mark
	}
	for si, s := range series {
		mark := seriesMarks[si%len(seriesMarks)]
		// Linear interpolation between consecutive points for a line-ish look.
		for i := 0; i+1 < len(s.X); i++ {
			steps := 2 * chartW / max(1, len(s.X)-1)
			for t := 0; t <= steps; t++ {
				f := float64(t) / float64(steps)
				plot(s.X[i]+(s.X[i+1]-s.X[i])*f, s.Y[i]+(s.Y[i+1]-s.Y[i])*f, mark)
			}
		}
		for i := range s.X {
			plot(s.X[i], s.Y[i], mark)
		}
	}
	for i, row := range grid {
		yVal := maxY - (maxY-minY)*float64(i)/float64(chartH-1)
		fmt.Fprintf(w, "%8.2f |%s\n", yVal, string(row))
	}
	fmt.Fprintf(w, "%8s +%s\n", "", strings.Repeat("-", chartW))
	fmt.Fprintf(w, "%8s  %-*s%*s\n", "", chartW/2, fmt.Sprintf("%g", minX), chartW/2, fmt.Sprintf("%g", maxX))
	fmt.Fprintf(w, "          x: %s   y: %s\n", xlabel, ylabel)
	for si, s := range series {
		fmt.Fprintf(w, "          %c %s\n", seriesMarks[si%len(seriesMarks)], s.Label)
	}
}

// ChartFig3 renders the Fig. 3 results as a speedup chart (x = log2 workers).
func ChartFig3(w io.Writer, results []Result) {
	bySeries := map[string]*Series{}
	var order []string
	for _, r := range results {
		s, ok := bySeries[r.Algorithm]
		if !ok {
			s = &Series{Label: r.Algorithm}
			bySeries[r.Algorithm] = s
			order = append(order, r.Algorithm)
		}
		s.X = append(s.X, math.Log2(float64(r.Workers)))
		s.Y = append(s.Y, r.Speedup)
	}
	var series []Series
	for _, name := range order {
		series = append(series, *bySeries[name])
	}
	RenderChart(w, "Fig. 3 (chart): self-speedup vs workers, road network",
		"log2(workers)", "speedup", series)
}
