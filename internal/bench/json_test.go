package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func TestWriteJSONReports(t *testing.T) {
	dir := t.TempDir()
	rows := []Result{
		{Experiment: "perf", Dataset: "road", Algorithm: "prim", Workers: 1, Millis: 1.5, Speedup: 1, AllocsPerOp: 8},
		{Experiment: "perf", Dataset: "road", Algorithm: "llp-prim", Workers: 1, Millis: 1.0, Speedup: 1.5, AllocsPerOp: 4},
		{Experiment: "scaling", Dataset: "rmat", Algorithm: "llp-boruvka", Workers: 4, Millis: 2.0},
	}
	paths, err := WriteJSONReports(dir, rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("wrote %d files, want 2 (one per experiment)", len(paths))
	}
	// Sorted by experiment name, named BENCH_<experiment>.json.
	if filepath.Base(paths[0]) != "BENCH_perf.json" || filepath.Base(paths[1]) != "BENCH_scaling.json" {
		t.Fatalf("paths = %v", paths)
	}
	raw, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("BENCH_perf.json is not valid JSON: %v", err)
	}
	if rep.Experiment != "perf" || len(rep.Rows) != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.GoVersion != runtime.Version() || rep.GOMAXPROCS < 1 {
		t.Fatalf("environment header missing: %+v", rep)
	}
	if rep.Rows[1].Algorithm != "llp-prim" || rep.Rows[1].AllocsPerOp != 4 {
		t.Fatalf("row round-trip mismatch: %+v", rep.Rows[1])
	}
	if raw[len(raw)-1] != '\n' {
		t.Fatal("report file must end with a newline")
	}
}

func TestWriteJSONReportsEmpty(t *testing.T) {
	paths, err := WriteJSONReports(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 0 {
		t.Fatalf("wrote %d files for empty rows", len(paths))
	}
}
