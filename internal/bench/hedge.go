package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"llpmst/internal/fault"
	"llpmst/internal/resilient"
)

// HedgeRow is one row of the hedged tail-latency experiment: one dataset,
// one execution mode, and the latency distribution over repeated solves
// under injected stragglers.
type HedgeRow struct {
	Dataset   string
	Mode      string // "solo" (hedging disabled) or "hedged"
	Solves    int
	P50Ms     float64
	P95Ms     float64
	P99Ms     float64
	HedgeWins int
	Fallbacks int
}

// HedgeCtx measures how hedged portfolio execution reshapes the latency
// tail. Every leg of every solve has a seeded chance to stall (the chaos
// injector's delay fault — a stand-in for GC pauses, noisy neighbours, or
// unlucky scheduling). The "solo" mode must eat each stall; the "hedged"
// mode launches the backup algorithm after an adaptive delay and takes
// whichever finishes first. The medians should match (hedging is ~free off
// the tail) while p95/p99 collapse toward the un-stalled latency.
func HedgeCtx(ctx context.Context, w io.Writer, sc Scale, iters, workers int, seed int64) ([]HedgeRow, error) {
	if iters < 1 {
		iters = 40
	}
	var rows []HedgeRow
	for _, d := range Datasets(sc) {
		g := cachedBuild(sc, d)
		for _, mode := range []string{"solo", "hedged"} {
			r := resilient.New(resilient.Config{
				Workers:      workers,
				DisableHedge: mode == "solo",
				HedgeFloor:   500 * time.Microsecond,
				Chaos: &resilient.Chaos{
					// ~15% of legs stall 1..4 units: long enough to dominate
					// a solve, short enough to keep the experiment quick.
					Plan: fault.Plan{
						Seed:    seed,
						Default: fault.Probs{Delay: 0.15, MaxDelay: 4},
					},
					Unit: 5 * time.Millisecond,
				},
			})
			lat := make([]time.Duration, 0, iters)
			row := HedgeRow{Dataset: d.Name, Mode: mode}
			for i := 0; i < iters; i++ {
				if err := ctx.Err(); err != nil {
					return rows, err
				}
				res, err := r.Solve(ctx, g)
				if err != nil {
					return rows, fmt.Errorf("hedge %s/%s solve %d: %w", d.Name, mode, i, err)
				}
				lat = append(lat, res.Elapsed)
				if res.HedgeWon {
					row.HedgeWins++
				}
				if res.FallbackUsed {
					row.Fallbacks++
				}
			}
			drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			err := r.Drain(drainCtx)
			cancel()
			if err != nil {
				return rows, fmt.Errorf("hedge %s/%s drain: %w", d.Name, mode, err)
			}
			row.Solves = len(lat)
			row.P50Ms = percentileMs(lat, 0.50)
			row.P95Ms = percentileMs(lat, 0.95)
			row.P99Ms = percentileMs(lat, 0.99)
			rows = append(rows, row)
		}
	}

	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		table = append(table, []string{
			r.Dataset, r.Mode, fmt.Sprintf("%d", r.Solves),
			ms(r.P50Ms), ms(r.P95Ms), ms(r.P99Ms),
			fmt.Sprintf("%.0f%%", 100*float64(r.HedgeWins)/float64(max(r.Solves, 1))),
			fmt.Sprintf("%.0f%%", 100*float64(r.Fallbacks)/float64(max(r.Solves, 1))),
		})
	}
	PrintTable(w, "Hedged portfolio: tail latency under injected stragglers",
		[]string{"dataset", "mode", "solves", "p50 ms", "p95 ms", "p99 ms", "hedge-win", "fallback"}, table)
	return rows, nil
}

// percentileMs returns the p-th latency percentile in milliseconds
// (nearest-rank on a sorted copy).
func percentileMs(lat []time.Duration, p float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	s := make([]time.Duration, len(lat))
	copy(s, lat)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return float64(s[idx]) / float64(time.Millisecond)
}
