package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"llpmst/internal/mst"
)

func TestSampleStatistics(t *testing.T) {
	var s Sample
	if s.Min() != 0 || s.Median() != 0 || s.Mean() != 0 || s.Stddev() != 0 || s.RelSpread() != 0 {
		t.Fatal("empty sample should be all zeros")
	}
	for _, ms := range []float64{4, 2, 8, 6} {
		s.Add(time.Duration(ms * float64(time.Millisecond)))
	}
	if s.Min() != 2 {
		t.Fatalf("Min = %v", s.Min())
	}
	if s.Median() != 5 { // (4+6)/2
		t.Fatalf("Median = %v", s.Median())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %v", s.Mean())
	}
	want := math.Sqrt((9 + 1 + 9 + 1) / 3.0) // sample stddev of {4,2,8,6}
	if math.Abs(s.Stddev()-want) > 1e-9 {
		t.Fatalf("Stddev = %v, want %v", s.Stddev(), want)
	}
	if s.RelSpread() <= 0 {
		t.Fatal("RelSpread should be positive")
	}
	if !strings.Contains(s.String(), "med") {
		t.Fatal("String format wrong")
	}
	// Odd count median.
	s.Add(100 * time.Millisecond)
	if s.Median() != 6 {
		t.Fatalf("odd median = %v", s.Median())
	}
}

func TestMeasureFillsSpreadFields(t *testing.T) {
	g, err := GetDataset(ScaleTest, "road")
	if err != nil {
		t.Fatal(err)
	}
	r, err := Measure(g, mst.AlgKruskal, mst.Options{Workers: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.MedianMs < r.Millis {
		t.Fatalf("median %v below min %v", r.MedianMs, r.Millis)
	}
	if r.StddevMs < 0 {
		t.Fatal("negative stddev")
	}
}

func TestRenderChart(t *testing.T) {
	var buf bytes.Buffer
	RenderChart(&buf, "demo", "x", "y", []Series{
		{Label: "a", X: []float64{0, 1, 2}, Y: []float64{1, 2, 4}},
		{Label: "b", X: []float64{0, 1, 2}, Y: []float64{4, 2, 1}},
	})
	out := buf.String()
	for _, want := range []string{"-- demo --", "x: x", "y: y", "* a", "o b", "|"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines < chartH {
		t.Fatalf("chart has only %d lines", lines)
	}
}

func TestRenderChartDegenerate(t *testing.T) {
	var buf bytes.Buffer
	RenderChart(&buf, "empty", "x", "y", nil)
	if !strings.Contains(buf.String(), "(no data)") {
		t.Fatal("empty chart not handled")
	}
	buf.Reset()
	RenderChart(&buf, "nopoints", "x", "y", []Series{{Label: "a"}})
	if !strings.Contains(buf.String(), "(no points)") {
		t.Fatal("pointless chart not handled")
	}
	buf.Reset()
	// Single point: degenerate ranges must not divide by zero.
	RenderChart(&buf, "single", "x", "y", []Series{{Label: "a", X: []float64{1}, Y: []float64{5}}})
	if !strings.Contains(buf.String(), "* a") {
		t.Fatal("single-point chart broken")
	}
}

func TestChartFig3(t *testing.T) {
	var buf bytes.Buffer
	ChartFig3(&buf, []Result{
		{Algorithm: "a", Workers: 1, Speedup: 1},
		{Algorithm: "a", Workers: 2, Speedup: 1.8},
		{Algorithm: "b", Workers: 1, Speedup: 1},
		{Algorithm: "b", Workers: 2, Speedup: 0.9},
	})
	if !strings.Contains(buf.String(), "Fig. 3 (chart)") {
		t.Fatal("fig3 chart missing title")
	}
}
